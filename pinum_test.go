package pinum

import (
	"testing"

	"github.com/pinumdb/pinum/internal/workload"
)

func demoDB(t *testing.T) *Database {
	t.Helper()
	db := NewDatabase()
	db.MustTable(&Table{
		Name:     "customers",
		RowCount: 10_000,
		Columns: []*Column{
			{Name: "id", NDV: 10_000, Min: 1, Max: 10_000, NotNull: true},
			{Name: "region", NDV: 50, Min: 1, Max: 50},
		},
	})
	db.MustTable(&Table{
		Name:     "orders",
		RowCount: 200_000,
		Columns: []*Column{
			{Name: "id", NDV: 200_000, Min: 1, Max: 200_000, NotNull: true},
			{Name: "customer_id", NDV: 10_000, Min: 1, Max: 10_000, NotNull: true},
			{Name: "amount", NDV: 1000, Min: 1, Max: 1000},
		},
	})
	return db
}

const demoSQL = "SELECT orders.amount, customers.region FROM orders, customers " +
	"WHERE orders.customer_id = customers.id AND orders.amount BETWEEN 1 AND 10 " +
	"ORDER BY customers.region"

func TestFacadeEndToEnd(t *testing.T) {
	db := demoDB(t)
	q, err := db.ParseQuery(demoSQL, "demo")
	if err != nil {
		t.Fatal(err)
	}
	cache, err := db.BuildPlanCache(q)
	if err != nil {
		t.Fatal(err)
	}
	if cache.Stats.OptimizerCalls != 2 {
		t.Errorf("PINUM used %d calls, want 2", cache.Stats.OptimizerCalls)
	}
	ws := db.WhatIf()
	ix, err := ws.CreateIndex("orders", "amount", "customer_id")
	if err != nil {
		t.Fatal(err)
	}
	cfg := &Config{Indexes: []*Index{ix}}
	withIx, _, err := cache.Cost(cfg)
	if err != nil {
		t.Fatal(err)
	}
	without, _, err := cache.Cost(&Config{})
	if err != nil {
		t.Fatal(err)
	}
	if withIx > without {
		t.Errorf("index made the estimate worse: %f > %f", withIx, without)
	}
	// The cache estimate must match a direct optimizer call.
	direct, explain, err := db.Optimize(q, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if explain == "" {
		t.Error("empty explain output")
	}
	rel := withIx/direct - 1
	if rel > 0.1 || rel < -1e9 {
		t.Errorf("cache %f vs direct %f", withIx, direct)
	}
}

func TestFacadeAdvisor(t *testing.T) {
	db := demoDB(t)
	q, err := db.ParseQuery(demoSQL, "demo")
	if err != nil {
		t.Fatal(err)
	}
	adv := db.NewAdvisor(1 * GB)
	if err := adv.AddQuery(q, 1); err != nil {
		t.Fatal(err)
	}
	res, err := adv.Run()
	if err != nil {
		t.Fatal(err)
	}
	if res.FinalCost > res.BaseCost {
		t.Error("advisor increased the cost")
	}
}

func TestFacadeMaterializeAndExecute(t *testing.T) {
	star, err := workload.StarSchema(0.0002)
	if err != nil {
		t.Fatal(err)
	}
	db := NewDatabaseWith(star.Catalog, star.Stats)
	qs, err := star.Queries(42)
	if err != nil {
		t.Fatal(err)
	}
	mat, err := db.Materialize(3)
	if err != nil {
		t.Fatal(err)
	}
	rows, err := mat.Execute(qs[0], nil)
	if err != nil {
		t.Fatal(err)
	}
	ws := db.WhatIf()
	ix, err := ws.CreateIndex("fact", "fk_dim1_1", "m1", "m2")
	if err != nil {
		t.Fatal(err)
	}
	rows2, err := mat.Execute(qs[0], &Config{Indexes: []*Index{ix}})
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != len(rows2) {
		t.Errorf("indexed execution changed the result: %d vs %d rows", len(rows), len(rows2))
	}
}

func TestBuildPlanCachesMatchesSerial(t *testing.T) {
	star, err := workload.StarSchema(1.0)
	if err != nil {
		t.Fatal(err)
	}
	db := NewDatabaseWith(star.Catalog, star.Stats)
	qs, err := star.Queries(42)
	if err != nil {
		t.Fatal(err)
	}
	qs = qs[:5]
	batch, err := db.BuildPlanCaches(qs, WithWorkers(4))
	if err != nil {
		t.Fatal(err)
	}
	if len(batch) != len(qs) {
		t.Fatalf("got %d caches for %d queries", len(batch), len(qs))
	}
	for i, q := range qs {
		if batch[i].Q.Name != q.Name {
			t.Fatalf("cache %d belongs to %s, want %s (order not preserved)", i, batch[i].Q.Name, q.Name)
		}
		serial, err := db.BuildPlanCache(q)
		if err != nil {
			t.Fatal(err)
		}
		if batch[i].Stats.OptimizerCalls != serial.Stats.OptimizerCalls ||
			batch[i].Stats.PlansCached != serial.Stats.PlansCached {
			t.Errorf("%s: batch cache stats %+v != serial %+v", q.Name, batch[i].Stats, serial.Stats)
		}
		bc, _, err := batch[i].Cost(&Config{})
		if err != nil {
			t.Fatal(err)
		}
		sc, _, err := serial.Cost(&Config{})
		if err != nil {
			t.Fatal(err)
		}
		if bc != sc {
			t.Errorf("%s: batch base cost %v != serial %v", q.Name, bc, sc)
		}
	}
}

func TestBuildPlanCachesEmpty(t *testing.T) {
	db := demoDB(t)
	caches, err := db.BuildPlanCaches(nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(caches) != 0 {
		t.Errorf("got %d caches for an empty workload", len(caches))
	}
}

func TestParseQueryErrors(t *testing.T) {
	db := demoDB(t)
	if _, err := db.ParseQuery("SELECT nope FROM orders", "bad"); err == nil {
		t.Error("bad query accepted")
	}
	if _, err := db.ParseQuery("not sql", "bad"); err == nil {
		t.Error("garbage accepted")
	}
}

// TestSaveLoadCaches round-trips the public snapshot API: slim batch
// build, save, load, and bit-identical costs — plus rejection once the
// schema drifts.
func TestSaveLoadCaches(t *testing.T) {
	db := demoDB(t)
	q, err := db.ParseQuery(demoSQL, "demo")
	if err != nil {
		t.Fatal(err)
	}
	caches, err := db.BuildPlanCaches([]*Query{q}, WithSlim())
	if err != nil {
		t.Fatal(err)
	}
	if !caches[0].Slim() {
		t.Fatal("WithSlim built a tree-backed cache")
	}
	path := t.TempDir() + "/demo.pcache"
	if err := db.SaveCaches(path, caches); err != nil {
		t.Fatal(err)
	}
	loaded, err := db.LoadCaches(path, []*Query{q})
	if err != nil {
		t.Fatal(err)
	}
	ws := db.WhatIf()
	ix, err := ws.CreateIndex("orders", "amount", "customer_id")
	if err != nil {
		t.Fatal(err)
	}
	for _, cfg := range []*Config{{}, {Indexes: []*Index{ix}}} {
		want, _, err := caches[0].Cost(cfg)
		if err != nil {
			t.Fatal(err)
		}
		got, _, err := loaded[0].Cost(cfg)
		if err != nil {
			t.Fatal(err)
		}
		if got != want {
			t.Errorf("loaded cache cost %v, want %v", got, want)
		}
	}

	// A drifted environment must reject the snapshot.
	db.Catalog().Table("orders").RowCount *= 2
	if _, err := db.LoadCaches(path, []*Query{q}); err == nil {
		t.Error("LoadCaches accepted a snapshot after the catalog changed")
	}
}

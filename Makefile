# Local mirrors of the CI steps (.github/workflows/ci.yml).
#
#   make check   — everything CI runs that works offline
#   make lint    — the pinum-lint invariant suite alone
#   make static  — staticcheck + govulncheck (fetched at run time: network)

GO ?= go

.PHONY: build test race shuffle fuzz bench lint static fmt vet check

build:
	$(GO) build ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

shuffle:
	$(GO) test -shuffle=on ./...

fuzz:
	$(GO) test ./internal/optimizer -run=NONE -fuzz=FuzzOptimizeEquivalence -fuzztime=10s

bench:
	$(GO) test -run=NONE -bench=. -benchtime=1x ./...

# The invariant suite: determinism, sealed-cache immutability,
# cost-arithmetic locality, hot-path allocation discipline, directive
# hygiene. `go run ./cmd/pinum-lint -list` describes the analyzers.
lint:
	$(GO) run ./cmd/pinum-lint ./...

# Third-party checkers, fetched at run time (this module has no
# dependencies of its own); requires network, so CI-only by default.
static:
	$(GO) run honnef.co/go/tools/cmd/staticcheck@latest -checks SA ./...
	$(GO) run golang.org/x/vuln/cmd/govulncheck@latest ./...

fmt:
	@out=$$(gofmt -l .); if [ -n "$$out" ]; then \
		echo "gofmt needed on:"; echo "$$out"; exit 1; fi

vet:
	$(GO) vet ./...

check: fmt vet build lint test race shuffle

// Command pinum-explain optimizes one query over the built-in star schema
// and prints its plan, optionally under a what-if index configuration.
//
//	pinum-explain -q "SELECT fact.m1 FROM fact, dim1_1 WHERE fact.fk_dim1_1 = dim1_1.id ORDER BY dim1_1.a1"
//	pinum-explain -q "..." -ix "fact:fk_dim1_1,m1" -ix "dim1_1:a1,id"
//	pinum-explain -list       # print the generated 10-query workload
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"github.com/pinumdb/pinum"
	"github.com/pinumdb/pinum/internal/query"
	"github.com/pinumdb/pinum/internal/workload"
)

type indexFlags []string

func (f *indexFlags) String() string { return strings.Join(*f, "; ") }

func (f *indexFlags) Set(v string) error {
	*f = append(*f, v)
	return nil
}

func main() {
	var ixs indexFlags
	q := flag.String("q", "", "SQL query over the star schema")
	list := flag.Bool("list", false, "print the generated workload queries")
	seed := flag.Int64("seed", 42, "workload seed")
	flag.Var(&ixs, "ix", "what-if index, table:col1,col2,... (repeatable)")
	flag.Parse()

	star, err := workload.StarSchema(1.0)
	if err != nil {
		fatal(err)
	}
	db := pinum.NewDatabaseWith(star.Catalog, star.Stats)

	if *list {
		qs, err := star.Queries(*seed)
		if err != nil {
			fatal(err)
		}
		for _, qq := range qs {
			fmt.Printf("%s: %s\n\n", qq.Name, qq.SQL)
		}
		return
	}
	if *q == "" {
		fmt.Fprintln(os.Stderr, "usage: pinum-explain -q <sql> [-ix table:cols]...")
		os.Exit(2)
	}
	bound, err := db.ParseQuery(*q, "query")
	if err != nil {
		fatal(err)
	}
	ws := db.WhatIf()
	cfg := &query.Config{}
	for _, spec := range ixs {
		parts := strings.SplitN(spec, ":", 2)
		if len(parts) != 2 {
			fatal(fmt.Errorf("bad -ix %q, want table:col1,col2", spec))
		}
		ix, err := ws.CreateIndex(parts[0], strings.Split(parts[1], ",")...)
		if err != nil {
			fatal(err)
		}
		cfg.Indexes = append(cfg.Indexes, ix)
	}
	cost, explain, err := db.Optimize(bound, cfg)
	if err != nil {
		fatal(err)
	}
	fmt.Printf("cost: %.2f\n%s", cost, explain)
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "pinum-explain:", err)
	os.Exit(1)
}

// Command pinum-advisor runs the paper's §V-E index selection tool on the
// generated star-schema workload and prints the suggested indexes.
//
//	pinum-advisor -budget 5            # 5 GB budget, 10-query workload
//	pinum-advisor -budget 2 -max 6
//	pinum-advisor -workers 4           # bound the build/search worker pool
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"github.com/pinumdb/pinum"
	"github.com/pinumdb/pinum/internal/storage"
	"github.com/pinumdb/pinum/internal/workload"
)

func main() {
	budget := flag.Float64("budget", 5, "index space budget in GB")
	maxIdx := flag.Int("max", 0, "maximum number of indexes (0 = unlimited)")
	seed := flag.Int64("seed", 42, "workload seed")
	workers := flag.Int("workers", 0, "worker pool size for cache construction and the greedy search (0 = all CPUs, 1 = serial; results are identical at any setting)")
	flag.Parse()

	star, err := workload.StarSchema(1.0)
	if err != nil {
		fatal(err)
	}
	qs, err := star.Queries(*seed)
	if err != nil {
		fatal(err)
	}
	db := pinum.NewDatabaseWith(star.Catalog, star.Stats)
	adv := db.NewAdvisor(storage.BytesForGB(*budget))
	adv.MaxIndexes = *maxIdx
	adv.Parallelism = *workers

	start := time.Now()
	if err := adv.AddQueries(qs, nil); err != nil {
		fatal(err)
	}
	n := adv.GenerateCandidates()
	fmt.Printf("workload: %d queries; candidates: %d; caches built with %s\n",
		len(qs), n, time.Since(start).Round(time.Millisecond))
	if errs := adv.GenerationErrors(); len(errs) > 0 {
		fmt.Printf("WARNING: %d candidate generations failed (first: %v)\n", len(errs), errs[0])
	}

	res, err := adv.Run()
	if err != nil {
		fatal(err)
	}
	fmt.Printf("greedy selection: %d rounds over %d candidates in %s (no optimizer calls)\n",
		res.Rounds, res.CandidateCount, res.Duration.Round(time.Millisecond))
	visits := res.Engine.QueryEvals + res.Engine.QuerySkips
	pruned := 0.0
	if visits > 0 {
		pruned = float64(res.Engine.QuerySkips) / float64(visits)
	}
	fmt.Printf("cost engine: %d candidate evaluations; %d query deltas computed, %d skipped by the table index (%.0f%% pruned)\n\n",
		res.Engine.CandidateEvals, res.Engine.QueryEvals, res.Engine.QuerySkips, 100*pruned)
	fmt.Printf("suggested indexes (%.2f GB of %.2f GB budget):\n",
		storage.GigaBytes(res.TotalBytes), *budget)
	for i, ix := range res.Chosen {
		fmt.Printf("  %2d. %s  (%.2f GB)\n", i+1, ix.Key(), storage.GigaBytes(storage.IndexBytes(ix)))
	}
	fmt.Printf("\nestimated workload cost: %.0f → %.0f  (%.1f%% speedup; paper: 95%%)\n",
		res.BaseCost, res.FinalCost, 100*res.Speedup())
	fmt.Println("\nper-query estimates:")
	for _, q := range qs {
		e := res.PerQuery[q.Name]
		fmt.Printf("  %-4s %12.0f → %12.0f\n", q.Name, e[0], e[1])
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "pinum-advisor:", err)
	os.Exit(1)
}

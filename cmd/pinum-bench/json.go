// The -json mode: run the core performance suite through testing.Benchmark
// and emit a machine-readable BENCH_<label>.json, so CI can archive one
// artifact per run and the perf trajectory (ns/op, allocs/op) is tracked
// across PRs instead of eyeballed from logs.
package main

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"os"
	"runtime"
	"testing"
	"time"

	"github.com/pinumdb/pinum/internal/core"
	"github.com/pinumdb/pinum/internal/experiments"
	"github.com/pinumdb/pinum/internal/inum"
	"github.com/pinumdb/pinum/internal/optimizer"
	"github.com/pinumdb/pinum/internal/plancache"
	"github.com/pinumdb/pinum/internal/query"
	"github.com/pinumdb/pinum/internal/serve"
	"github.com/pinumdb/pinum/internal/whatif"
	"github.com/pinumdb/pinum/internal/workload"
)

// benchRecord is one benchmark's measurement in the JSON artifact.
type benchRecord struct {
	Name        string  `json:"name"`
	Iterations  int     `json:"iterations"`
	NsPerOp     float64 `json:"ns_per_op"`
	AllocsPerOp int64   `json:"allocs_per_op"`
	BytesPerOp  int64   `json:"bytes_per_op"`
}

// plannerTotals are the aggregated planner work counters from building
// the suite's slim cache set — the enumeration/frontier numbers the
// serving layer exports per tenant, archived here so planner-efficiency
// drift is visible across PRs next to the timing data.
type plannerTotals struct {
	EnumStates        int64 `json:"enum_states"`
	FrontierInserts   int64 `json:"frontier_inserts"`
	FrontierDrops     int64 `json:"frontier_drops"`
	FrontierEvictions int64 `json:"frontier_evictions"`
}

// benchReport is the BENCH_<label>.json document.
type benchReport struct {
	Label      string         `json:"label"`
	GOOS       string         `json:"goos"`
	GOARCH     string         `json:"goarch"`
	NumCPU     int            `json:"num_cpu"`
	Timestamp  time.Time      `json:"timestamp"`
	Benchmarks []benchRecord  `json:"benchmarks"`
	Planner    *plannerTotals `json:"planner_totals,omitempty"`
}

// runJSONBench executes the perf suite and writes BENCH_<label>.json to the
// working directory, returning the path written.
func runJSONBench(label string, seed int64) (string, error) {
	env, err := experiments.NewEnv(seed)
	if err != nil {
		return "", err
	}
	rep := &benchReport{
		Label:     label,
		GOOS:      runtime.GOOS,
		GOARCH:    runtime.GOARCH,
		NumCPU:    runtime.NumCPU(),
		Timestamp: time.Now().UTC(),
	}

	var failed []string
	measure := func(name string, fn func(b *testing.B)) {
		r := testing.Benchmark(func(b *testing.B) {
			b.ReportAllocs()
			fn(b)
		})
		// b.Fatal inside the closure aborts the run but testing.Benchmark
		// still returns a zero result; record the failure instead of
		// archiving a 0 ns/op data point with a green exit status.
		if r.N == 0 {
			failed = append(failed, name)
			return
		}
		rep.Benchmarks = append(rep.Benchmarks, benchRecord{
			Name:        name,
			Iterations:  r.N,
			NsPerOp:     float64(r.T.Nanoseconds()) / float64(r.N),
			AllocsPerOp: r.AllocsPerOp(),
			BytesPerOp:  r.AllocedBytesPerOp(),
		})
		fmt.Fprintf(os.Stderr, "  %-55s %12.0f ns/op %8d allocs/op\n",
			name, float64(r.T.Nanoseconds())/float64(r.N), r.AllocsPerOp())
	}

	// One representative query per join size: the ExportAll call under the
	// all-orders configuration (the heavier of core.Build's two calls),
	// fast planner vs the retained reference planner — the PR 3 headline.
	seen := map[int]bool{}
	for _, q := range env.Queries {
		if seen[len(q.Rels)] {
			continue
		}
		seen[len(q.Rels)] = true
		a, err := optimizer.NewAnalysis(q, env.Star.Stats, optimizer.DefaultCostParams())
		if err != nil {
			return "", err
		}
		cfg, err := inum.AllOrdersConfig(a, whatif.NewSession(env.Star.Catalog))
		if err != nil {
			return "", err
		}
		opt := optimizer.Options{EnableNestLoop: true, ExportAll: true}
		for _, mode := range []struct {
			name string
			call func(*optimizer.Analysis, *query.Config, optimizer.Options) (*optimizer.Result, error)
		}{
			{"fast", optimizer.Optimize},
			{"reference", optimizer.OptimizeReference},
		} {
			call := mode.call
			measure(fmt.Sprintf("OptimizeExportAll/tables=%d/%s", len(q.Rels), mode.name), func(b *testing.B) {
				for i := 0; i < b.N; i++ {
					if _, err := call(a, cfg, opt); err != nil {
						b.Fatal(err)
					}
				}
			})
		}

		// Whole-cache construction for the same query (two fast calls).
		measure(fmt.Sprintf("CacheBuild/tables=%d/PINUM", len(q.Rels)), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := core.Build(a, whatif.NewSession(env.Star.Catalog)); err != nil {
					b.Fatal(err)
				}
			}
		})
	}

	// Shape workloads: the chain and snowflake ExportAll calls the
	// connectivity-aware enumeration (DPccp) targets — their join graphs
	// are where the dense sweep wasted the most states. The dense clique
	// and wide-orders shapes stress the other two planner layers: the
	// retained-path dominance frontier (every subset connected, maximal
	// per-relation path population) and the wide-key fast-path lane
	// (interesting-order count past the packed planKey's 63-order cap).
	for _, shape := range []struct {
		label string
		spec  workload.ShapeSpec
	}{
		{"chain", workload.ShapeSpec{Shape: workload.ShapeChain, Rels: 7, Seed: seed}},
		{"snowflake", workload.ShapeSpec{Shape: workload.ShapeSnowflake, Rels: 7, Seed: seed}},
		{"clique-dense", workload.ShapeSpec{Shape: workload.ShapeClique, Rels: 5, Density: 1, Seed: seed}},
		{"wide-orders", workload.ShapeSpec{Shape: workload.ShapeWideOrders, Seed: seed}},
	} {
		spec := shape.spec
		cat, q, err := workload.ShapeQuery(spec)
		if err != nil {
			return "", err
		}
		a, err := optimizer.NewAnalysis(q, nil, optimizer.DefaultCostParams())
		if err != nil {
			return "", err
		}
		cfg := workload.ShapeAllOrdersConfig(cat, q)
		opt := optimizer.Options{EnableNestLoop: true, ExportAll: true}
		for _, mode := range []struct {
			name string
			call func(*optimizer.Analysis, *query.Config, optimizer.Options) (*optimizer.Result, error)
		}{
			{"fast", optimizer.Optimize},
			{"reference", optimizer.OptimizeReference},
		} {
			call := mode.call
			measure(fmt.Sprintf("OptimizeExportAll/shape=%s/tables=%d/%s", shape.label, len(q.Rels), mode.name), func(b *testing.B) {
				for i := 0; i < b.N; i++ {
					if _, err := call(a, cfg, opt); err != nil {
						b.Fatal(err)
					}
				}
			})
		}
	}

	// The 17-relation wide chain runs past the reference sweep's
	// 16-relation cap, so it measures the wide-key fast path alone. Only
	// the chain head is indexed: ExportAll's retained set is an antichain
	// over per-relation leaf choices, and indexing every relation would
	// make it exponential in the chain length in any planner.
	{
		cat, q, err := workload.ShapeQuery(workload.ShapeSpec{Shape: workload.ShapeWideChain, Rels: 17, Seed: seed})
		if err != nil {
			return "", err
		}
		a, err := optimizer.NewAnalysis(q, nil, optimizer.DefaultCostParams())
		if err != nil {
			return "", err
		}
		full := workload.ShapeAllOrdersConfig(cat, q)
		cfg := &query.Config{}
		head := map[string]bool{q.Rels[0].Table.Name: true, q.Rels[1].Table.Name: true, q.Rels[2].Table.Name: true}
		for _, ix := range full.Indexes {
			if head[ix.Table] {
				cfg.Indexes = append(cfg.Indexes, ix)
			}
		}
		opt := optimizer.Options{EnableNestLoop: true, ExportAll: true}
		measure(fmt.Sprintf("OptimizeExportAll/shape=wide-chain/tables=%d/fast", len(q.Rels)), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := optimizer.Optimize(a, cfg, opt); err != nil {
					b.Fatal(err)
				}
			}
		})
	}

	// The whole-workload batch build, serial and with all cores.
	analyses := make([]*optimizer.Analysis, len(env.Queries))
	for i, q := range env.Queries {
		a, err := optimizer.NewAnalysis(q, env.Star.Stats, optimizer.DefaultCostParams())
		if err != nil {
			return "", err
		}
		analyses[i] = a
	}
	workerCounts := []int{1}
	if n := runtime.GOMAXPROCS(0); n > 1 {
		workerCounts = append(workerCounts, n)
	}
	for _, workers := range workerCounts {
		workers := workers
		measure(fmt.Sprintf("BatchCacheBuild/workers=%d", workers), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := core.BuildAll(analyses, env.Star.Catalog, workers, false); err != nil {
					b.Fatal(err)
				}
			}
		})
	}

	// Snapshot + serving layer: these also diversify the suite away from
	// planner-dominated benchmarks, which is what makes the -compare
	// reference gate's median a meaningful anchor.
	slims, err := core.BuildAllSlim(analyses, env.Star.Catalog, 0)
	if err != nil {
		return "", err
	}
	var totals optimizer.PlannerStats
	for _, c := range slims {
		totals.Add(c.Stats.Planner)
	}
	rep.Planner = &plannerTotals{
		EnumStates:        int64(totals.EnumStates),
		FrontierInserts:   int64(totals.FrontierInserts),
		FrontierDrops:     int64(totals.FrontierDrops),
		FrontierEvictions: int64(totals.FrontierEvictions),
	}
	fmt.Fprintf(os.Stderr, "  planner totals: enum_states=%d frontier_inserts=%d drops=%d evictions=%d\n",
		totals.EnumStates, totals.FrontierInserts, totals.FrontierDrops, totals.FrontierEvictions)
	fp := plancache.Fingerprint(env.Star.Catalog, env.Star.Stats, optimizer.DefaultCostParams())
	snap := plancache.NewSnapshot(fp, slims)
	var snapBuf bytes.Buffer
	if err := plancache.Encode(&snapBuf, snap); err != nil {
		return "", err
	}
	snapBytes := snapBuf.Bytes()

	measure("SnapshotLoad/queries=10", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			dec, err := plancache.Decode(snapBytes)
			if err != nil {
				b.Fatal(err)
			}
			for qi := range dec.Queries {
				if _, err := plancache.ToCache(analyses[qi], dec.Queries[qi]); err != nil {
					b.Fatal(err)
				}
			}
		}
	})

	// Concurrent /whatif requests against a server running on a
	// snapshot-loaded cache set — the serving layer's request path end to
	// end (HTTP, config interning, fan-out cost evaluation).
	dec, err := plancache.Decode(snapBytes)
	if err != nil {
		return "", err
	}
	served := make([]*inum.Cache, len(env.Queries))
	for qi := range dec.Queries {
		if served[qi], err = plancache.ToCache(analyses[qi], dec.Queries[qi]); err != nil {
			return "", err
		}
	}
	srv, err := serve.New(serve.Config{
		Catalog:  env.Star.Catalog,
		Stats:    env.Star.Stats,
		Queries:  env.Queries,
		Analyses: analyses,
		Caches:   served,
	})
	if err != nil {
		return "", err
	}
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()
	whatIfBody := []byte(`{"indexes":[{"table":"fact","columns":["fk_dim1_1","m1"]},{"table":"dim1_1","columns":["a1","id"]}]}`)
	measure("ServeWhatIf/queries=10", func(b *testing.B) {
		b.RunParallel(func(pb *testing.PB) {
			for pb.Next() {
				resp, err := http.Post(ts.URL+"/whatif", "application/json", bytes.NewReader(whatIfBody))
				if err != nil {
					b.Fatal(err)
				}
				if resp.StatusCode != http.StatusOK {
					resp.Body.Close()
					b.Fatalf("/whatif status %d", resp.StatusCode)
				}
				if _, err := io.Copy(io.Discard, resp.Body); err != nil {
					b.Fatal(err)
				}
				resp.Body.Close()
			}
		})
	})

	if len(failed) > 0 {
		return "", fmt.Errorf("benchmarks failed: %v", failed)
	}

	path := fmt.Sprintf("BENCH_%s.json", label)
	data, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		return "", err
	}
	if err := os.WriteFile(path, append(data, '\n'), 0o644); err != nil {
		return "", err
	}
	return path, nil
}

// Command pinum-bench regenerates the paper's evaluation: every table and
// figure of §IV/§VI, printed in the same shape the paper reports.
//
//	pinum-bench            # run everything
//	pinum-bench -e e3      # run one experiment (e1..e6)
//	pinum-bench -quick     # reduced trial counts for a fast pass
//	pinum-bench -json PR3  # run the perf suite, write BENCH_PR3.json
//	pinum-bench -compare BENCH_PR3.json BENCH_ci.json
//	                       # fail on >20% ns/op regression per benchmark
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"github.com/pinumdb/pinum/internal/experiments"
)

func main() {
	exp := flag.String("e", "all", "experiment to run: e1, e2, e3, e4, e5, e6, or all")
	quick := flag.Bool("quick", false, "reduced trial counts")
	seed := flag.Int64("seed", 42, "workload generation seed")
	scale := flag.Float64("exec-scale", 0.0005, "materialisation scale for the execution experiment (1.0 = the paper's 10 GB)")
	workers := flag.Int("workers", 0, "worker pool size for the advisor's cache construction and greedy search in e4 (0 = all CPUs, 1 = serial; results are identical either way). e3 always times builds serially, in isolation, to stay faithful to the paper's methodology")
	jsonLabel := flag.String("json", "", "run the machine-readable perf suite instead of the experiments and write BENCH_<label>.json (per-benchmark ns/op, allocs/op)")
	compare := flag.Bool("compare", false, "compare two BENCH_<label>.json files (baseline, fresh) and fail on ns/op regression beyond -threshold")
	threshold := flag.Float64("threshold", 20, "ns/op regression threshold for -compare, in percent")
	flag.Parse()

	if *compare {
		args := flag.Args()
		if len(args) != 2 {
			fatal(fmt.Errorf("-compare needs exactly two arguments: <baseline.json> <fresh.json>"))
		}
		if err := runCompare(args[0], args[1], *threshold); err != nil {
			fatal(err)
		}
		return
	}

	if *jsonLabel != "" {
		path, err := runJSONBench(*jsonLabel, *seed)
		if err != nil {
			fatal(err)
		}
		fmt.Println("wrote", path)
		return
	}

	env, err := experiments.NewEnv(*seed)
	if err != nil {
		fatal(err)
	}
	env.Workers = *workers
	want := strings.ToLower(*exp)
	run := func(id string) bool { return want == "all" || want == id }

	trialsE1, cfgsE2 := 50, 1000
	if *quick {
		trialsE1, cfgsE2 = 20, 100
	}

	if run("e1") {
		r, err := experiments.RunE1(env, trialsE1)
		if err != nil {
			fatal(err)
		}
		fmt.Println(r)
	}
	if run("e2") {
		r, err := experiments.RunE2(env, cfgsE2, nil)
		if err != nil {
			fatal(err)
		}
		fmt.Println(r)
	}
	if run("e3") {
		r, err := experiments.RunE3(env, nil)
		if err != nil {
			fatal(err)
		}
		fmt.Println(r)
	}
	if run("e4") {
		r, err := experiments.RunE4(env, *scale, 5)
		if err != nil {
			fatal(err)
		}
		fmt.Println(r)
	}
	if run("e5") {
		r, err := experiments.RunE5(env)
		if err != nil {
			fatal(err)
		}
		fmt.Println(r)
	}
	if run("e6") {
		r, err := experiments.RunE6(env)
		if err != nil {
			fatal(err)
		}
		fmt.Println(r)
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "pinum-bench:", err)
	os.Exit(1)
}

// The -compare mode: read two BENCH_<label>.json artifacts (a committed
// baseline and a fresh run) and fail when any benchmark present in both
// regressed in ns/op by more than the threshold. This closes the loop the
// ROADMAP left open: artifacts were produced and archived per CI run, but
// nothing compared consecutive ones, so a shipped speedup could silently
// rot. Benchmarks that exist on only one side are reported but never fail
// the gate (new benchmarks appear, old ones retire).
//
// The two artifacts are routinely measured on different machines (a
// committed baseline vs a CI runner), so raw ns/op ratios carry a uniform
// hardware factor. A benchmark therefore fails the gate only when it
// exceeds the threshold on BOTH views of its delta: raw (new/old) and
// normalized by the suite-wide median ratio. A machine that is uniformly
// 40% slower shifts every raw ratio equally but no normalized one; a
// change that legitimately speeds up most of the suite shifts the median
// below 1 and inflates the untouched benchmarks' normalized deltas, but
// not their raw ones; a single benchmark regressing on comparable
// hardware — the signature of a code regression — moves both. The median
// is printed so a genuine across-the-board slowdown on identical hardware
// remains visible in the log even though it cannot trip the gate.
//
// Both views still share one blind spot: a regression broad enough to
// drag the median with it (most of the suite exercises the fast planner,
// so a planFast slowdown is exactly that shape). The third check closes
// it: for every <name>/fast benchmark with a <name>/reference sibling,
// the fast/reference ns/op ratio — measured within one run on one
// machine, hence hardware-invariant and independent of the suite median —
// must not grow by more than the threshold against the baseline's ratio.
//
// The fourth check targets the residual blind spot the ratio check left
// open: a slowdown in the shared cost arithmetic hits the fast and
// reference planners identically, so the fast/reference ratio stays flat
// while the planner benchmarks drag the suite median up and the raw∧norm
// rule waves everything through. The reference planner's own code is
// frozen (it exists as the equivalence oracle), so a reference benchmark
// has no legitimate way to move against the rest of the suite: its
// median-normalized delta alone gates it, with no raw-delta escape
// hatch. The median is anchored by the non-planner benchmarks (snapshot
// load, serve round-trips), which do not execute the planners' shared
// arithmetic per request, so an arithmetic slowdown cannot drag the
// median all the way to the reference ratios and hide there.
package main

import (
	"encoding/json"
	"fmt"
	"os"
	"sort"
	"strings"
)

func readReport(path string) (*benchReport, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	rep := &benchReport{}
	if err := json.Unmarshal(data, rep); err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	return rep, nil
}

// runCompare prints a per-benchmark comparison table and returns an error
// listing every benchmark whose ns/op grew by more than thresholdPct.
func runCompare(basePath, newPath string, thresholdPct float64) error {
	base, err := readReport(basePath)
	if err != nil {
		return err
	}
	fresh, err := readReport(newPath)
	if err != nil {
		return err
	}
	baseline := make(map[string]benchRecord, len(base.Benchmarks))
	for _, b := range base.Benchmarks {
		baseline[b.Name] = b
	}

	// Suite-wide median ns/op ratio: the uniform hardware factor between
	// the two runs, divided out of every per-benchmark delta below.
	var ratios []float64
	for _, nb := range fresh.Benchmarks {
		if ob, ok := baseline[nb.Name]; ok && ob.NsPerOp > 0 {
			ratios = append(ratios, nb.NsPerOp/ob.NsPerOp)
		}
	}
	median := 1.0
	if len(ratios) > 0 {
		sort.Float64s(ratios)
		median = ratios[len(ratios)/2]
		if len(ratios)%2 == 0 {
			median = (ratios[len(ratios)/2-1] + ratios[len(ratios)/2]) / 2
		}
	}

	fmt.Printf("comparing %s (%s) -> %s (%s), threshold +%.0f%% ns/op relative to the suite median ratio (%.2fx)\n",
		basePath, base.Label, newPath, fresh.Label, thresholdPct, median)
	var regressions []string
	// failedNames keeps each benchmark to a single regression line even
	// when several checks condemn it.
	failedNames := make(map[string]bool)
	fail := func(name, line string) {
		if failedNames[name] {
			return
		}
		failedNames[name] = true
		regressions = append(regressions, line)
	}
	matched := 0
	for _, nb := range fresh.Benchmarks {
		ob, ok := baseline[nb.Name]
		if !ok || ob.NsPerOp <= 0 {
			fmt.Printf("  %-55s %12.0f ns/op  (new, no baseline)\n", nb.Name, nb.NsPerOp)
			continue
		}
		matched++
		rawDelta := 100 * (nb.NsPerOp/ob.NsPerOp - 1)
		normDelta := 100 * (nb.NsPerOp/ob.NsPerOp/median - 1)
		verdict := "ok"
		if rawDelta > thresholdPct && normDelta > thresholdPct {
			verdict = "REGRESSION"
			fail(nb.Name, fmt.Sprintf("%s: %.0f -> %.0f ns/op (%+.1f%% raw, %+.1f%% vs suite median)",
				nb.Name, ob.NsPerOp, nb.NsPerOp, rawDelta, normDelta))
		}
		fmt.Printf("  %-55s %12.0f -> %12.0f ns/op  %+7.1f%% raw %+7.1f%% norm  %s\n",
			nb.Name, ob.NsPerOp, nb.NsPerOp, rawDelta, normDelta, verdict)
	}
	// Fast-vs-reference ratio gate (see the package comment): compare each
	// run's internal fast/reference ratio, which no hardware factor or
	// median shift can disturb.
	current := make(map[string]benchRecord, len(fresh.Benchmarks))
	for _, nb := range fresh.Benchmarks {
		current[nb.Name] = nb
	}
	const refSuffix, fastSuffix = "/reference", "/fast"
	for _, nb := range fresh.Benchmarks {
		if !strings.HasSuffix(nb.Name, fastSuffix) {
			continue
		}
		sibling := nb.Name[:len(nb.Name)-len(fastSuffix)] + refSuffix
		nr, ok1 := current[sibling]
		of, ok2 := baseline[nb.Name]
		or, ok3 := baseline[sibling]
		if !ok1 || !ok2 || !ok3 || nr.NsPerOp <= 0 || or.NsPerOp <= 0 || of.NsPerOp <= 0 {
			continue
		}
		baseRatio := of.NsPerOp / or.NsPerOp
		newRatio := nb.NsPerOp / nr.NsPerOp
		delta := 100 * (newRatio/baseRatio - 1)
		verdict := "ok"
		if delta > thresholdPct {
			verdict = "REGRESSION"
			fail(nb.Name, fmt.Sprintf("%s: fast/reference ratio %.3f -> %.3f (%+.1f%%)",
				nb.Name, baseRatio, newRatio, delta))
		}
		fmt.Printf("  %-55s fast/ref ratio %6.3f -> %6.3f  %+7.1f%%  %s\n",
			nb.Name, baseRatio, newRatio, delta, verdict)
	}

	// Reference-benchmark gate (the fourth check): frozen oracle code, so
	// a median-normalized regression is a shared-arithmetic regression
	// even when the raw delta could pass as a hardware factor.
	for _, nb := range fresh.Benchmarks {
		if !strings.HasSuffix(nb.Name, refSuffix) {
			continue
		}
		ob, ok := baseline[nb.Name]
		if !ok || ob.NsPerOp <= 0 {
			continue
		}
		normDelta := 100 * (nb.NsPerOp/ob.NsPerOp/median - 1)
		verdict := "ok"
		if normDelta > thresholdPct {
			verdict = "REGRESSION"
			fail(nb.Name, fmt.Sprintf("%s: %.0f -> %.0f ns/op (%+.1f%% vs suite median; reference code is frozen, so this is shared cost arithmetic)",
				nb.Name, ob.NsPerOp, nb.NsPerOp, normDelta))
		}
		fmt.Printf("  %-55s reference norm %+7.1f%%  %s\n", nb.Name, normDelta, verdict)
	}

	seen := make(map[string]bool, len(fresh.Benchmarks))
	for _, nb := range fresh.Benchmarks {
		seen[nb.Name] = true
	}
	var retired []string
	for name := range baseline {
		if !seen[name] {
			retired = append(retired, name)
		}
	}
	sort.Strings(retired)
	for _, name := range retired {
		fmt.Printf("  %-55s (baseline only, not run)\n", name)
	}

	if matched == 0 {
		return fmt.Errorf("no benchmark appears in both %s and %s", basePath, newPath)
	}
	if len(regressions) > 0 {
		msg := fmt.Sprintf("%d benchmark(s) regressed more than %.0f%% ns/op:", len(regressions), thresholdPct)
		for _, r := range regressions {
			msg += "\n  " + r
		}
		return fmt.Errorf("%s", msg)
	}
	fmt.Printf("%d benchmarks compared, none regressed more than %.0f%% vs the suite median\n", matched, thresholdPct)
	return nil
}

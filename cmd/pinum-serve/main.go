// Command pinum-serve is the what-if serving daemon: it loads (or builds
// and saves) a slim plan-cache snapshot for the star-schema workload,
// then answers configuration questions over HTTP with pure cost
// arithmetic — no optimizer calls per request. The snapshot is hot: a
// SIGHUP or POST /reload re-derives the statistics, rebuilds only what
// moved, and swaps the new snapshot in atomically while traffic keeps
// flowing; a failed reload leaves the old snapshot serving (degraded,
// with automatic retry).
//
//	pinum-serve -snapshot star.pcache                 # load or build+save, then serve
//	pinum-serve -snapshot star.pcache -save-exit      # build the snapshot and exit
//	pinum-serve -addr 127.0.0.1:8093                  # serve address
//	pinum-serve -stats-overrides drift.json           # {"table": rows} applied on every (re)load
//	pinum-serve -tenants roster.json -snapshot-dir d  # multi-tenant: one workload per roster entry
//	kill -HUP $(pidof pinum-serve)                    # trigger a hot reload (all resident tenants)
//
// Multi-tenant mode (-tenants) serves N workloads from one process. The
// roster is JSON:
//
//	{"tenants": [
//	  {"name": "acme", "seed": 42, "scale": 1.0,
//	   "stats_overrides": "acme-drift.json", "max_in_flight": 16},
//	  {"name": "globex", "seed": 43}
//	]}
//
// seed/scale default to the -seed/-scale flags. Requests route by the
// "tenant" body field or the X-Pinum-Tenant header; unrouted requests
// hit the first roster entry. -snapshot-dir names a snapshot store (one
// <tenant>.pcache per tenant, same format as -snapshot) consulted on
// every load; -tenant-cap bounds how many tenants hold live snapshot
// sets at once — past it, the least-recently-used tenant is evicted and
// cold-loads again on its next request. With -save-exit the roster's
// snapshots are all built/refreshed into the store, then the process
// exits.
//
// Endpoints (JSON in, JSON out):
//
//	POST /whatif     {"indexes":[{"table":"fact","columns":["a1"]}]}
//	POST /recommend  {"budget_gb":5,"max_indexes":0}
//	POST /explain    {"sql":"SELECT ...","indexes":[...]}
//	POST /reload     hot reload (?wait=1 synchronous, ?force=1 full rebuild, ?tenant= one tenant)
//	GET  /healthz    liveness + snapshot shape (always 200; status ok|degraded|starting; ?tenant= detail)
//	GET  /readyz     readiness (503 until the first snapshot; -strict-health adds degraded)
//	GET  /statz      per-endpoint latency/throughput + per-tenant reload/residency/admission counters
//	GET  /metrics    Prometheus text exposition (latency histograms, per-tenant counters, runtime gauges)
//	GET  /eventz     operational event ring (reloads, evictions, cold loads, panics, slow requests)
//
// /whatif and /recommend additionally accept per-request weight
// overrides ({"weights":[{"name":"q01","weight":3}]}); duplicate or
// unknown query names and non-positive weights are rejected with 400.
//
// Observability: requests carrying an X-Pinum-Trace header (or
// "trace": true in a compute body) get a per-span timing breakdown in
// the response's "trace" block. -log-format json switches every process
// and request log line to structured JSON with trace IDs; -slow-request
// sets the /eventz slow-request threshold; -pprof-addr serves
// net/http/pprof on a separate listener, isolated from the data plane.
//
// Lifecycle: the HTTP server runs with read/write/idle timeouts, compute
// requests run behind per-request deadlines (-request-timeout), panic
// recovery, bounded request bodies (-max-body-bytes → 413) and
// per-tenant admission control (-max-in-flight → 429, one tenant's storm
// never throttling another), and SIGTERM or SIGINT drains in-flight
// requests for up to -drain-timeout before exit. The PINUM_FAULTPOINTS
// environment variable (name=mode[:count] pairs, comma-separated) arms
// fault-injection points for robustness drills.
//
// CI's serve smoke uses the verify modes: after curling a served
// response to a file, -verify-whatif/-verify-recommend recompute the
// answer in-process from freshly built tree-backed caches (a plain
// advisor.Run for /recommend) and fail unless the served JSON matches
// byte for byte.
//
//	pinum-serve -verify-whatif req.json:resp.json
//	pinum-serve -verify-recommend req.json:resp.json
package main

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"log"
	"log/slog"
	"net/http"
	"net/http/pprof"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"github.com/pinumdb/pinum/internal/advisor"
	"github.com/pinumdb/pinum/internal/core"
	"github.com/pinumdb/pinum/internal/faultpoint"
	"github.com/pinumdb/pinum/internal/optimizer"
	"github.com/pinumdb/pinum/internal/plancache"
	"github.com/pinumdb/pinum/internal/serve"
	"github.com/pinumdb/pinum/internal/storage"
	"github.com/pinumdb/pinum/internal/workload"
)

func main() {
	addr := flag.String("addr", "127.0.0.1:8093", "listen address")
	seed := flag.Int64("seed", 42, "workload generation seed")
	scale := flag.Float64("scale", 1.0, "statistics scale (1.0 = the paper's 10 GB)")
	workers := flag.Int("workers", 0, "worker pool for request evaluation and snapshot builds (0 = all CPUs)")
	snapshot := flag.String("snapshot", "", "plan-cache snapshot path: loaded when present and fresh, else built and saved")
	saveExit := flag.Bool("save-exit", false, "build/refresh the snapshot and exit without serving")
	statsOverrides := flag.String("stats-overrides", "",
		`JSON file {"table": rows} re-read and applied on every (re)load — statistics drift injection`)
	tenantsPath := flag.String("tenants", "",
		`JSON tenant roster {"tenants":[{"name","seed","scale","stats_overrides","max_in_flight"}]} — multi-tenant mode`)
	snapshotDir := flag.String("snapshot-dir", "",
		"snapshot store directory for multi-tenant mode (one <tenant>.pcache per tenant)")
	tenantCap := flag.Int("tenant-cap", 0,
		"max tenants holding live snapshot sets at once; LRU eviction past it (0 = all resident)")
	requestTimeout := flag.Duration("request-timeout", serve.DefaultRequestTimeout,
		"per-request evaluation deadline for compute endpoints (negative = none)")
	maxInFlight := flag.Int("max-in-flight", serve.DefaultMaxInFlight,
		"max concurrently evaluating compute requests per tenant before 429 (negative = unlimited)")
	maxBodyBytes := flag.Int64("max-body-bytes", serve.DefaultMaxBodyBytes,
		"max request body size before 413 (negative = unlimited)")
	strictHealth := flag.Bool("strict-health", false, "make /readyz return 503 while the server is degraded")
	drainTimeout := flag.Duration("drain-timeout", 10*time.Second,
		"grace period for in-flight requests on SIGTERM/SIGINT")
	verifyWhatIf := flag.String("verify-whatif", "", "req.json:resp.json — recompute /whatif in-process and compare")
	verifyRecommend := flag.String("verify-recommend", "", "req.json:resp.json — recompute /recommend via a plain in-process Advisor.Run and compare")
	logFormat := flag.String("log-format", "text", "structured log format for request/event records: text or json")
	pprofAddr := flag.String("pprof-addr", "", "serve net/http/pprof on this address (separate listener; empty = disabled)")
	slowRequest := flag.Duration("slow-request", serve.DefaultSlowRequest,
		"requests slower than this are recorded in /eventz (negative = disabled)")
	flag.Parse()

	var handler slog.Handler
	switch *logFormat {
	case "text":
		handler = slog.NewTextHandler(os.Stderr, nil)
	case "json":
		handler = slog.NewJSONHandler(os.Stderr, nil)
		// Route the stdlib log lines (snapshot ready, SIGHUP, drained)
		// through the same handler so the process emits one format.
		log.SetFlags(0)
		log.SetOutput(slogWriter{slog.New(handler)})
	default:
		fatal(fmt.Errorf("unknown -log-format %q (want text or json)", *logFormat))
	}
	logger := slog.New(handler)

	if err := faultpoint.ConfigureFromEnv(os.Getenv("PINUM_FAULTPOINTS")); err != nil {
		fatal(err)
	}

	if *pprofAddr != "" {
		pm := http.NewServeMux()
		pm.HandleFunc("/debug/pprof/", pprof.Index)
		pm.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
		pm.HandleFunc("/debug/pprof/profile", pprof.Profile)
		pm.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
		pm.HandleFunc("/debug/pprof/trace", pprof.Trace)
		go func() {
			log.Printf("pprof listening on %s", *pprofAddr)
			if err := http.ListenAndServe(*pprofAddr, pm); err != nil {
				log.Printf("pprof listener failed: %v", err)
			}
		}()
	}

	loader := func() (*serve.Environment, error) {
		return loadEnvironment(*scale, *seed, *statsOverrides)
	}

	if *verifyWhatIf != "" || *verifyRecommend != "" {
		env, err := loader()
		if err != nil {
			fatal(err)
		}
		if err := verify(env, *workers, *verifyWhatIf, *verifyRecommend); err != nil {
			fatal(err)
		}
		fmt.Println("verify: served responses match the in-process results")
		return
	}

	var tenantCfgs []serve.TenantConfig
	if *tenantsPath != "" {
		var err error
		if tenantCfgs, err = loadTenantConfigs(*tenantsPath, *snapshotDir, *seed, *scale); err != nil {
			fatal(err)
		}
	}

	if *saveExit && *tenantsPath != "" {
		// Build/refresh every roster tenant's snapshot into the store.
		for _, tc := range tenantCfgs {
			env, err := tc.Loader()
			if err != nil {
				fatal(fmt.Errorf("tenant %s: %w", tc.Name, err))
			}
			buildStart := time.Now()
			_, buildReason, err := serve.LoadOrBuild(env.Catalog, env.Stats, env.Queries, env.Analyses, tc.SnapshotPath, *workers)
			if err != nil {
				fatal(fmt.Errorf("tenant %s: %w", tc.Name, err))
			}
			how := "loaded from " + tc.SnapshotPath
			if buildReason != "" {
				how = "built: " + buildReason
				if tc.SnapshotPath != "" {
					how += ", saved to " + tc.SnapshotPath
				}
			}
			log.Printf("tenant %s: snapshot ready in %v: %d queries (%s)",
				tc.Name, time.Since(buildStart).Round(time.Millisecond), len(env.Queries), how)
		}
		return
	}

	if *saveExit {
		env, err := loader()
		if err != nil {
			fatal(err)
		}
		buildStart := time.Now()
		caches, buildReason, err := serve.LoadOrBuild(env.Catalog, env.Stats, env.Queries, env.Analyses, *snapshot, *workers)
		if err != nil {
			fatal(err)
		}
		entries, bytesTotal := 0, int64(0)
		for _, c := range caches {
			m := c.MemStats()
			entries += m.Entries
			bytesTotal += m.TotalBytes()
		}
		how := "loaded from " + *snapshot
		if buildReason != "" {
			how = "built with 2 optimizer calls/query: " + buildReason
			if *snapshot != "" {
				how += ", saved to " + *snapshot
			}
		}
		log.Printf("caches ready in %v: %d queries, %d entries, ~%.1f KB (%s)",
			time.Since(buildStart).Round(time.Millisecond), len(env.Queries), entries, float64(bytesTotal)/1024, how)
		return
	}

	cfg := serve.Config{
		Workers:        *workers,
		MaxInFlight:    *maxInFlight,
		MaxBodyBytes:   *maxBodyBytes,
		RequestTimeout: *requestTimeout,
		StrictHealth:   *strictHealth,
		Logf:           log.Printf,
		Logger:         logger,
		SlowRequest:    *slowRequest,
	}
	if *tenantsPath != "" {
		cfg.Tenants = tenantCfgs
		cfg.MaxResident = *tenantCap
	} else {
		cfg.Loader = loader
		cfg.SnapshotPath = *snapshot
	}
	srv, err := serve.New(cfg)
	if err != nil {
		fatal(err)
	}
	defer srv.Close()

	// Warm the default tenant (the only one in single-tenant mode, the
	// first roster entry otherwise) so readiness means "can serve now";
	// other tenants cold-load lazily on their first request.
	loadStart := time.Now()
	out, err := srv.ReloadNow(false)
	if err != nil {
		fatal(fmt.Errorf("initial snapshot load: %w", err))
	}
	log.Printf("snapshot ready in %v: tenant=%s fingerprint=%s source=%s",
		time.Since(loadStart).Round(time.Millisecond), out.Tenant, out.Fingerprint, out.SnapshotSource)

	// WriteTimeout must outlast the slowest admitted request, or the
	// connection dies mid-response after a long (but successful) compute.
	writeTimeout := time.Minute
	if *requestTimeout > 0 && 2**requestTimeout > writeTimeout {
		writeTimeout = 2 * *requestTimeout
	}
	hs := &http.Server{
		Addr:              *addr,
		Handler:           srv.Handler(),
		ReadHeaderTimeout: 5 * time.Second,
		ReadTimeout:       30 * time.Second,
		WriteTimeout:      writeTimeout,
		IdleTimeout:       2 * time.Minute,
	}

	sigs := make(chan os.Signal, 2)
	signal.Notify(sigs, syscall.SIGHUP, syscall.SIGINT, syscall.SIGTERM)
	drained := make(chan struct{})
	go func() {
		for sig := range sigs {
			if sig == syscall.SIGHUP {
				log.Printf("SIGHUP: snapshot reload triggered")
				if !srv.TriggerReload(false) {
					log.Printf("reload already pending; SIGHUP coalesced")
				}
				continue
			}
			log.Printf("%v: draining in-flight requests (up to %v)", sig, *drainTimeout)
			ctx, cancel := context.WithTimeout(context.Background(), *drainTimeout)
			if err := hs.Shutdown(ctx); err != nil {
				log.Printf("drain cut short: %v", err)
			}
			cancel()
			close(drained)
			return
		}
	}()

	log.Printf("serving /whatif /recommend /explain /reload /healthz /readyz /statz /metrics /eventz on %s", *addr)
	if err := hs.ListenAndServe(); !errors.Is(err, http.ErrServerClosed) {
		fatal(err)
	}
	<-drained
	log.Printf("drained; exiting")
}

// tenantSpec is one roster entry in the -tenants file.
type tenantSpec struct {
	Name           string  `json:"name"`
	Seed           int64   `json:"seed"`
	Scale          float64 `json:"scale"`
	StatsOverrides string  `json:"stats_overrides"`
	MaxInFlight    int     `json:"max_in_flight"`
}

// loadTenantConfigs parses the roster and binds each entry to a loader
// closure and (when -snapshot-dir is set) its store snapshot path.
func loadTenantConfigs(path, snapshotDir string, defSeed int64, defScale float64) ([]serve.TenantConfig, error) {
	var roster struct {
		Tenants []tenantSpec `json:"tenants"`
	}
	if err := readJSON(path, &roster); err != nil {
		return nil, fmt.Errorf("tenant roster: %w", err)
	}
	if len(roster.Tenants) == 0 {
		return nil, fmt.Errorf("tenant roster %s: no tenants", path)
	}
	var store *plancache.Store
	if snapshotDir != "" {
		var err error
		if store, err = plancache.NewStore(snapshotDir); err != nil {
			return nil, err
		}
	}
	cfgs := make([]serve.TenantConfig, 0, len(roster.Tenants))
	for _, ts := range roster.Tenants {
		seed, scale, overrides := ts.Seed, ts.Scale, ts.StatsOverrides
		if seed == 0 {
			seed = defSeed
		}
		if scale == 0 {
			scale = defScale
		}
		snapPath := ""
		if store != nil {
			var err error
			if snapPath, err = store.Path(ts.Name); err != nil {
				return nil, fmt.Errorf("tenant roster %s: %w", path, err)
			}
		}
		cfgs = append(cfgs, serve.TenantConfig{
			Name: ts.Name,
			Loader: func() (*serve.Environment, error) {
				return loadEnvironment(scale, seed, overrides)
			},
			SnapshotPath: snapPath,
			MaxInFlight:  ts.MaxInFlight,
		})
	}
	return cfgs, nil
}

// loadEnvironment derives one consistent serving world from scratch: a
// fresh star schema at the given scale, the overrides file applied on
// top, and the analysed seed workload. Building everything anew on every
// call is what makes hot reloads safe — the environment a reload is
// assembling shares nothing mutable with the one traffic is reading.
func loadEnvironment(scale float64, seed int64, overridesPath string) (*serve.Environment, error) {
	star, err := workload.StarSchema(scale)
	if err != nil {
		return nil, err
	}
	if overridesPath != "" {
		data, err := os.ReadFile(overridesPath)
		if err != nil {
			return nil, fmt.Errorf("stats overrides: %w", err)
		}
		var overrides map[string]int64
		if err := json.Unmarshal(data, &overrides); err != nil {
			return nil, fmt.Errorf("stats overrides %s: %w", overridesPath, err)
		}
		for table, rows := range overrides {
			if err := star.SetTableRows(table, rows); err != nil {
				return nil, fmt.Errorf("stats overrides %s: %w", overridesPath, err)
			}
		}
	}
	queries, err := star.Queries(seed)
	if err != nil {
		return nil, err
	}
	analyses := make([]*optimizer.Analysis, len(queries))
	for i, q := range queries {
		if analyses[i], err = optimizer.NewAnalysis(q, star.Stats, optimizer.DefaultCostParams()); err != nil {
			return nil, err
		}
	}
	return &serve.Environment{
		Catalog:  star.Catalog,
		Stats:    star.Stats,
		Queries:  queries,
		Analyses: analyses,
	}, nil
}

// verify recomputes served responses from scratch — freshly built
// tree-backed caches for /whatif, a plain advisor.Run for /recommend —
// and byte-compares the JSON against the served bodies. It exercises the
// full snapshot+slim+serve pipeline against the unsliced in-process path.
func verify(env *serve.Environment, workers int, whatIfSpec, recommendSpec string) error {
	caches, err := core.BuildAll(env.Analyses, env.Catalog, workers, false)
	if err != nil {
		return err
	}

	if whatIfSpec != "" {
		reqPath, respPath, err := splitSpec(whatIfSpec)
		if err != nil {
			return err
		}
		var req serve.WhatIfRequest
		if err := readJSON(reqPath, &req); err != nil {
			return err
		}
		// An independent Server over the tree-backed caches prices the
		// request through the same arithmetic the daemon used on its
		// slim, snapshot-loaded caches; bit-identity means byte-equal
		// JSON.
		srv, err := serve.New(serve.Config{
			Catalog: env.Catalog, Stats: env.Stats,
			Queries: env.Queries, Analyses: env.Analyses, Caches: caches, Workers: workers,
		})
		if err != nil {
			return err
		}
		want, err := srv.WhatIf(&req)
		if err != nil {
			return err
		}
		if err := compareJSON("whatif", respPath, want); err != nil {
			return err
		}
	}

	if recommendSpec != "" {
		reqPath, respPath, err := splitSpec(recommendSpec)
		if err != nil {
			return err
		}
		var req serve.RecommendRequest
		if err := readJSON(reqPath, &req); err != nil {
			return err
		}
		ad := advisor.New(env.Catalog, env.Stats, storage.BytesForGB(req.BudgetGB))
		ad.Parallelism = workers
		ad.MaxIndexes = req.MaxIndexes
		for i, q := range env.Queries {
			if err := ad.AddPrepared(q, env.Analyses[i], caches[i], 1); err != nil {
				return err
			}
		}
		res, err := ad.Run()
		if err != nil {
			return err
		}
		if err := compareJSON("recommend", respPath, serve.RecommendResponseFrom(res, env.Queries)); err != nil {
			return err
		}
	}
	return nil
}

func splitSpec(spec string) (string, string, error) {
	i := strings.LastIndex(spec, ":")
	if i <= 0 || i == len(spec)-1 {
		return "", "", fmt.Errorf("bad verify spec %q, want req.json:resp.json", spec)
	}
	return spec[:i], spec[i+1:], nil
}

func readJSON(path string, v any) error {
	data, err := os.ReadFile(path)
	if err != nil {
		return err
	}
	dec := json.NewDecoder(bytes.NewReader(data))
	dec.DisallowUnknownFields()
	if err := dec.Decode(v); err != nil {
		return fmt.Errorf("%s: %w", path, err)
	}
	return nil
}

// compareJSON renders want exactly as the HTTP handlers do and diffs it
// against the served body on disk.
func compareJSON(what, servedPath string, want any) error {
	served, err := os.ReadFile(servedPath)
	if err != nil {
		return err
	}
	expect, err := serve.EncodeJSON(want)
	if err != nil {
		return err
	}
	if !bytes.Equal(bytes.TrimSpace(served), bytes.TrimSpace(expect)) {
		return fmt.Errorf("%s: served response %s differs from the in-process result:\n--- served ---\n%s\n--- in-process ---\n%s",
			what, servedPath, bytes.TrimSpace(served), bytes.TrimSpace(expect))
	}
	fmt.Printf("verify %s: %s matches the in-process result (%d bytes)\n", what, servedPath, len(expect))
	return nil
}

// slogWriter adapts the stdlib log package to a structured handler: one
// Write is one log line, re-emitted as an Info record.
type slogWriter struct{ l *slog.Logger }

func (w slogWriter) Write(p []byte) (int, error) {
	w.l.Info(strings.TrimSuffix(string(p), "\n"))
	return len(p), nil
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "pinum-serve:", err)
	os.Exit(1)
}

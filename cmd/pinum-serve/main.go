// Command pinum-serve is the what-if serving daemon: it loads (or builds
// and saves) a slim plan-cache snapshot for the star-schema workload once
// at startup, then answers configuration questions over HTTP with pure
// cost arithmetic — no optimizer calls per request.
//
//	pinum-serve -snapshot star.pcache                 # load or build+save, then serve
//	pinum-serve -snapshot star.pcache -save-exit      # build the snapshot and exit
//	pinum-serve -addr 127.0.0.1:8093                  # serve address
//
// Endpoints (JSON in, JSON out):
//
//	POST /whatif     {"indexes":[{"table":"fact","columns":["a1"]}]}
//	POST /recommend  {"budget_gb":5,"max_indexes":0}
//	POST /explain    {"sql":"SELECT ...","indexes":[...]}
//	GET  /healthz    liveness + cache shape
//	GET  /statz      per-endpoint latency/throughput counters
//
// CI's serve smoke uses the verify modes: after curling a served
// response to a file, -verify-whatif/-verify-recommend recompute the
// answer in-process from freshly built tree-backed caches (a plain
// advisor.Run for /recommend) and fail unless the served JSON matches
// byte for byte.
//
//	pinum-serve -verify-whatif req.json:resp.json
//	pinum-serve -verify-recommend req.json:resp.json
package main

import (
	"bytes"
	"encoding/json"
	"flag"
	"fmt"
	"log"
	"net/http"
	"os"
	"strings"
	"time"

	"github.com/pinumdb/pinum/internal/advisor"
	"github.com/pinumdb/pinum/internal/core"
	"github.com/pinumdb/pinum/internal/optimizer"
	"github.com/pinumdb/pinum/internal/query"
	"github.com/pinumdb/pinum/internal/serve"
	"github.com/pinumdb/pinum/internal/storage"
	"github.com/pinumdb/pinum/internal/workload"
)

func main() {
	addr := flag.String("addr", "127.0.0.1:8093", "listen address")
	seed := flag.Int64("seed", 42, "workload generation seed")
	scale := flag.Float64("scale", 1.0, "statistics scale (1.0 = the paper's 10 GB)")
	workers := flag.Int("workers", 0, "worker pool for request evaluation and snapshot builds (0 = all CPUs)")
	snapshot := flag.String("snapshot", "", "plan-cache snapshot path: loaded when present and fresh, else built and saved")
	saveExit := flag.Bool("save-exit", false, "build/refresh the snapshot and exit without serving")
	verifyWhatIf := flag.String("verify-whatif", "", "req.json:resp.json — recompute /whatif in-process and compare")
	verifyRecommend := flag.String("verify-recommend", "", "req.json:resp.json — recompute /recommend via a plain in-process Advisor.Run and compare")
	flag.Parse()

	star, err := workload.StarSchema(*scale)
	if err != nil {
		fatal(err)
	}
	queries, err := star.Queries(*seed)
	if err != nil {
		fatal(err)
	}
	analyses := make([]*optimizer.Analysis, len(queries))
	for i, q := range queries {
		if analyses[i], err = optimizer.NewAnalysis(q, star.Stats, optimizer.DefaultCostParams()); err != nil {
			fatal(err)
		}
	}

	if *verifyWhatIf != "" || *verifyRecommend != "" {
		if err := verify(star, queries, analyses, *workers, *verifyWhatIf, *verifyRecommend); err != nil {
			fatal(err)
		}
		fmt.Println("verify: served responses match the in-process results")
		return
	}

	buildStart := time.Now()
	caches, buildReason, err := serve.LoadOrBuild(star.Catalog, star.Stats, queries, analyses, *snapshot, *workers)
	if err != nil {
		fatal(err)
	}
	entries, bytesTotal := 0, int64(0)
	for _, c := range caches {
		m := c.MemStats()
		entries += m.Entries
		bytesTotal += m.TotalBytes()
	}
	how := "loaded from " + *snapshot
	if buildReason != "" {
		how = "built with 2 optimizer calls/query: " + buildReason
		if *snapshot != "" {
			how += ", saved to " + *snapshot
		}
	}
	log.Printf("caches ready in %v: %d queries, %d entries, ~%.1f KB (%s)",
		time.Since(buildStart).Round(time.Millisecond), len(queries), entries, float64(bytesTotal)/1024, how)
	if *saveExit {
		return
	}

	srv, err := serve.New(serve.Config{
		Catalog:  star.Catalog,
		Stats:    star.Stats,
		Queries:  queries,
		Analyses: analyses,
		Caches:   caches,
		Workers:  *workers,
	})
	if err != nil {
		fatal(err)
	}
	log.Printf("serving /whatif /recommend /explain /healthz /statz on %s", *addr)
	if err := http.ListenAndServe(*addr, srv.Handler()); err != nil {
		fatal(err)
	}
}

// verify recomputes served responses from scratch — freshly built
// tree-backed caches for /whatif, a plain advisor.Run for /recommend —
// and byte-compares the JSON against the served bodies. It exercises the
// full snapshot+slim+serve pipeline against the unsliced in-process path.
func verify(star *workload.Star, queries []*query.Query, analyses []*optimizer.Analysis,
	workers int, whatIfSpec, recommendSpec string) error {

	caches, err := core.BuildAll(analyses, star.Catalog, workers, false)
	if err != nil {
		return err
	}

	if whatIfSpec != "" {
		reqPath, respPath, err := splitSpec(whatIfSpec)
		if err != nil {
			return err
		}
		var req serve.WhatIfRequest
		if err := readJSON(reqPath, &req); err != nil {
			return err
		}
		// An independent Server over the tree-backed caches prices the
		// request through the same arithmetic the daemon used on its
		// slim, snapshot-loaded caches; bit-identity means byte-equal
		// JSON.
		srv, err := serve.New(serve.Config{
			Catalog: star.Catalog, Stats: star.Stats,
			Queries: queries, Analyses: analyses, Caches: caches, Workers: workers,
		})
		if err != nil {
			return err
		}
		want, err := srv.WhatIf(&req)
		if err != nil {
			return err
		}
		if err := compareJSON("whatif", respPath, want); err != nil {
			return err
		}
	}

	if recommendSpec != "" {
		reqPath, respPath, err := splitSpec(recommendSpec)
		if err != nil {
			return err
		}
		var req serve.RecommendRequest
		if err := readJSON(reqPath, &req); err != nil {
			return err
		}
		ad := advisor.New(star.Catalog, star.Stats, storage.BytesForGB(req.BudgetGB))
		ad.Parallelism = workers
		ad.MaxIndexes = req.MaxIndexes
		for i, q := range queries {
			if err := ad.AddPrepared(q, analyses[i], caches[i], 1); err != nil {
				return err
			}
		}
		res, err := ad.Run()
		if err != nil {
			return err
		}
		if err := compareJSON("recommend", respPath, serve.RecommendResponseFrom(res, queries)); err != nil {
			return err
		}
	}
	return nil
}

func splitSpec(spec string) (string, string, error) {
	i := strings.LastIndex(spec, ":")
	if i <= 0 || i == len(spec)-1 {
		return "", "", fmt.Errorf("bad verify spec %q, want req.json:resp.json", spec)
	}
	return spec[:i], spec[i+1:], nil
}

func readJSON(path string, v any) error {
	data, err := os.ReadFile(path)
	if err != nil {
		return err
	}
	dec := json.NewDecoder(bytes.NewReader(data))
	dec.DisallowUnknownFields()
	if err := dec.Decode(v); err != nil {
		return fmt.Errorf("%s: %w", path, err)
	}
	return nil
}

// compareJSON renders want exactly as the HTTP handlers do and diffs it
// against the served body on disk.
func compareJSON(what, servedPath string, want any) error {
	served, err := os.ReadFile(servedPath)
	if err != nil {
		return err
	}
	expect, err := serve.EncodeJSON(want)
	if err != nil {
		return err
	}
	if !bytes.Equal(bytes.TrimSpace(served), bytes.TrimSpace(expect)) {
		return fmt.Errorf("%s: served response %s differs from the in-process result:\n--- served ---\n%s\n--- in-process ---\n%s",
			what, servedPath, bytes.TrimSpace(served), bytes.TrimSpace(expect))
	}
	fmt.Printf("verify %s: %s matches the in-process result (%d bytes)\n", what, servedPath, len(expect))
	return nil
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "pinum-serve:", err)
	os.Exit(1)
}

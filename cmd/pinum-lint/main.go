// Command pinum-lint runs the repository's invariant analyzers
// (internal/lint) over the tree: determinism of result-affecting
// packages, immutability of sealed shared caches, cost-arithmetic
// locality, hot-path allocation discipline, and directive hygiene.
//
// Usage:
//
//	go run ./cmd/pinum-lint ./...          # the CI invocation
//	go run ./cmd/pinum-lint -list          # describe the analyzers
//	go run ./cmd/pinum-lint -run determinism,hotpath ./...
//
// Exit status: 0 clean, 1 findings, 2 load/usage errors. The process
// chdirs to the module root on startup (import resolution runs through
// the go tool), so it may be invoked from any directory inside the
// module.
package main

import (
	"flag"
	"fmt"
	"os"
	"os/exec"
	"path/filepath"
	"strings"

	"github.com/pinumdb/pinum/internal/lint"
)

func main() {
	list := flag.Bool("list", false, "describe the analyzers and exit")
	run := flag.String("run", "", "comma-separated analyzer names to run (default: all)")
	flag.Parse()

	analyzers := lint.All()
	if *list {
		for _, a := range analyzers {
			fmt.Printf("%-12s %s\n", a.Name, a.Doc)
		}
		return
	}
	if *run != "" {
		byName := make(map[string]*lint.Analyzer)
		for _, a := range analyzers {
			byName[a.Name] = a
		}
		analyzers = nil
		for _, name := range strings.Split(*run, ",") {
			a := byName[strings.TrimSpace(name)]
			if a == nil {
				fmt.Fprintf(os.Stderr, "pinum-lint: unknown analyzer %q (see -list)\n", name)
				os.Exit(2)
			}
			analyzers = append(analyzers, a)
		}
	}

	patterns := flag.Args()
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}

	root, err := moduleRoot()
	if err != nil {
		fmt.Fprintf(os.Stderr, "pinum-lint: %v\n", err)
		os.Exit(2)
	}
	if err := os.Chdir(root); err != nil {
		fmt.Fprintf(os.Stderr, "pinum-lint: %v\n", err)
		os.Exit(2)
	}

	loader := lint.NewLoader()
	pkgs, err := loader.Load(root, patterns)
	if err != nil {
		fmt.Fprintf(os.Stderr, "pinum-lint: %v\n", err)
		os.Exit(2)
	}

	findings := 0
	for _, pkg := range pkgs {
		diags, err := lint.Run(pkg, analyzers)
		if err != nil {
			fmt.Fprintf(os.Stderr, "pinum-lint: %v\n", err)
			os.Exit(2)
		}
		for _, d := range diags {
			pos := loader.Fset.Position(d.Pos)
			rel, rerr := filepath.Rel(root, pos.Filename)
			if rerr != nil {
				rel = pos.Filename
			}
			fmt.Printf("%s:%d:%d: %s [%s]\n", rel, pos.Line, pos.Column, d.Message, d.Analyzer)
			findings++
		}
	}
	if findings > 0 {
		fmt.Fprintf(os.Stderr, "pinum-lint: %d finding(s)\n", findings)
		os.Exit(1)
	}
}

// moduleRoot locates the directory of the main module's go.mod.
func moduleRoot() (string, error) {
	out, err := exec.Command("go", "env", "GOMOD").Output()
	if err != nil {
		return "", fmt.Errorf("go env GOMOD: %v", err)
	}
	gomod := strings.TrimSpace(string(out))
	if gomod == "" || gomod == os.DevNull {
		return "", fmt.Errorf("not inside a Go module (go env GOMOD is empty)")
	}
	return filepath.Dir(gomod), nil
}

// Package pinum is the public API of the PINUM library, a reproduction of
// "Caching All Plans with Just One Optimizer Call" (Dash, Alagiannis,
// Maier, Ailamaki — ICDE Workshops 2010).
//
// PINUM fills an INUM-style plan cache — the data structure that lets a
// physical-design tool estimate a query's cost under any index
// configuration with pure arithmetic — using just one optimizer call per
// nested-loop mode, by exporting the intermediate plans a bottom-up
// dynamic-programming optimizer builds anyway.
//
// The library bundles everything the paper's system needs, implemented
// from scratch: a statistics-driven catalog with what-if indexes, a
// PostgreSQL-style cost-based optimizer, the INUM baseline, the PINUM
// one-call cache construction, a greedy index advisor, and a small
// execution engine (heap files, B-trees, physical operators) for running
// the suggested designs on materialised data.
//
// Typical usage:
//
//	db := pinum.NewDatabase()
//	db.MustTable(&catalog.Table{...})
//	q, err := db.ParseQuery("SELECT ... FROM ...", "Q1")
//	cache, err := db.BuildPlanCache(q)       // 2 optimizer calls
//	cost, plan, err := cache.Cost(cfg)        // no optimizer calls
//
// or, for index selection:
//
//	adv := db.NewAdvisor(5 * pinum.GB)
//	err = adv.AddQuery(q, 1)                  // query with frequency weight
//	result, err := adv.Run()                  // incremental greedy search
//	fmt.Println(result.Engine.QueryEvals,     // delta evaluations performed
//		result.Engine.QuerySkips)             // pruned by the table index
//
// Whole workloads batch-build their caches across a worker pool:
//
//	caches, err := db.BuildPlanCaches(queries, pinum.WithWorkers(8))
package pinum

import (
	"fmt"

	"github.com/pinumdb/pinum/internal/advisor"
	"github.com/pinumdb/pinum/internal/catalog"
	"github.com/pinumdb/pinum/internal/core"
	"github.com/pinumdb/pinum/internal/costmatrix"
	"github.com/pinumdb/pinum/internal/data"
	"github.com/pinumdb/pinum/internal/executor"
	"github.com/pinumdb/pinum/internal/inum"
	"github.com/pinumdb/pinum/internal/optimizer"
	"github.com/pinumdb/pinum/internal/plancache"
	"github.com/pinumdb/pinum/internal/query"
	"github.com/pinumdb/pinum/internal/sql"
	"github.com/pinumdb/pinum/internal/stats"
	"github.com/pinumdb/pinum/internal/whatif"
)

// GB is one gigabyte (base-10, as the paper's budgets are).
const GB int64 = 1_000_000_000

// Re-exported core types, so downstream users need only this package plus
// internal/catalog for schema declarations.
type (
	// Query is a bound query ready for planning.
	Query = query.Query
	// Config is an index configuration (a set of indexes).
	Config = query.Config
	// Index describes a real or hypothetical index.
	Index = catalog.Index
	// Table describes a base relation.
	Table = catalog.Table
	// Column describes a table column.
	Column = catalog.Column
	// PlanCache is the INUM/PINUM plan cache with its linear cost model.
	PlanCache = inum.Cache
	// AdvisorResult reports an index-selection run.
	AdvisorResult = advisor.Result
	// EngineStats reports the work the advisor's incremental cost engine
	// performed during the greedy search (AdvisorResult.Engine): delta
	// evaluations computed vs. evaluations pruned by the table index.
	EngineStats = costmatrix.Stats
)

// Database is the top-level handle: a catalog, statistics, and the
// sessions built over them.
type Database struct {
	cat *catalog.Catalog
	st  *stats.Store
}

// NewDatabase returns an empty database.
func NewDatabase() *Database {
	return &Database{cat: catalog.New(), st: stats.NewStore()}
}

// NewDatabaseWith wraps an existing catalog and statistics store (the
// workload generators produce these).
func NewDatabaseWith(cat *catalog.Catalog, st *stats.Store) *Database {
	return &Database{cat: cat, st: st}
}

// Catalog exposes the underlying catalog.
func (db *Database) Catalog() *catalog.Catalog { return db.cat }

// Stats exposes the underlying statistics store.
func (db *Database) Stats() *stats.Store { return db.st }

// AddTable registers a table.
func (db *Database) AddTable(t *Table) error { return db.cat.AddTable(t) }

// MustTable registers a table, panicking on error (for declarative setup).
func (db *Database) MustTable(t *Table) {
	if err := db.cat.AddTable(t); err != nil {
		panic(err)
	}
}

// SetColumnStats installs statistics for table.column.
func (db *Database) SetColumnStats(table, column string, s *stats.ColumnStats) {
	db.st.Set(table, column, s)
}

// ParseQuery parses and binds a SQL text against the catalog.
func (db *Database) ParseQuery(sqlText, name string) (*Query, error) {
	stmt, err := sql.Parse(sqlText)
	if err != nil {
		return nil, err
	}
	return sql.Bind(stmt, db.cat, name)
}

// WhatIf opens a what-if session for declaring hypothetical indexes.
func (db *Database) WhatIf() *whatif.Session { return whatif.NewSession(db.cat) }

// Analyze derives the planning state for a query.
func (db *Database) Analyze(q *Query) (*optimizer.Analysis, error) {
	return optimizer.NewAnalysis(q, db.st, optimizer.DefaultCostParams())
}

// Optimize runs one conventional optimizer call under the configuration
// and returns the best plan, its cost, and an EXPLAIN rendering.
func (db *Database) Optimize(q *Query, cfg *Config) (cost float64, explain string, err error) {
	a, err := db.Analyze(q)
	if err != nil {
		return 0, "", err
	}
	res, err := optimizer.Optimize(a, cfg, optimizer.Options{EnableNestLoop: true})
	if err != nil {
		return 0, "", err
	}
	return res.Best.Cost, optimizer.Explain(res.Best, q), nil
}

// BuildPlanCache fills a plan cache the PINUM way: two optimizer calls,
// intermediate plans exported (paper §V-D).
func (db *Database) BuildPlanCache(q *Query) (*PlanCache, error) {
	a, err := db.Analyze(q)
	if err != nil {
		return nil, err
	}
	return core.Build(a, whatif.NewSession(db.cat))
}

// BuildOption configures batch plan-cache construction (BuildPlanCaches).
type BuildOption func(*buildOptions)

type buildOptions struct {
	workers int
	precise bool
	slim    bool
}

// WithWorkers bounds the construction worker pool. n <= 0 (the default)
// means one worker per available CPU.
func WithWorkers(n int) BuildOption {
	return func(o *buildOptions) { o.workers = n }
}

// WithPrecise enables the §V-D high-accuracy nested-loop refinement for
// every cache in the batch.
func WithPrecise() BuildOption {
	return func(o *buildOptions) { o.precise = true }
}

// WithSlim builds slim caches: each entry keeps only the INUM
// decomposition (combo, internal cost, per-relation leaf requirements)
// and drops the optimizer's path tree, cutting retained memory by several
// times on wide queries. Cost results are bit-identical to the default
// tree-backed caches; slim caches just cannot render EXPLAIN trees or
// feed the executor. SaveCaches/LoadCaches and the pinum-serve server
// work with slim caches.
func WithSlim() BuildOption {
	return func(o *buildOptions) { o.slim = true }
}

// BuildPlanCaches fills one PINUM plan cache per query across a bounded
// worker pool: each worker owns a private what-if session, and results are
// merged in query order, so caches[i] belongs to queries[i] and the output
// is deterministic regardless of scheduling. This is the batch entry point
// workload tools (the advisor, the experiment drivers) build on.
func (db *Database) BuildPlanCaches(queries []*Query, opts ...BuildOption) ([]*PlanCache, error) {
	var o buildOptions
	for _, f := range opts {
		f(&o)
	}
	analyses := make([]*optimizer.Analysis, len(queries))
	for i, q := range queries {
		a, err := db.Analyze(q)
		if err != nil {
			return nil, err
		}
		analyses[i] = a
	}
	return core.BuildAllWith(analyses, db.cat, o.workers, core.Builder(o.precise, o.slim))
}

// BuildPlanCacheSlim fills a slim plan cache: two optimizer calls, path
// trees dropped at export time (see WithSlim).
func (db *Database) BuildPlanCacheSlim(q *Query) (*PlanCache, error) {
	a, err := db.Analyze(q)
	if err != nil {
		return nil, err
	}
	return core.BuildSlim(a, whatif.NewSession(db.cat))
}

// CacheFingerprint identifies the environment plan caches are built
// under: the catalog, its statistics, and the default cost parameters.
// SaveCaches embeds it in every snapshot and LoadCaches rejects
// snapshots whose fingerprint no longer matches.
func (db *Database) CacheFingerprint() uint64 {
	return plancache.Fingerprint(db.cat, db.st, optimizer.DefaultCostParams())
}

// SaveCaches writes the caches' slim plan representation to a versioned,
// checksummed snapshot file, fingerprinted against this database's
// catalog, statistics and cost parameters. Both tree-backed and slim
// caches can be saved; only the INUM decomposition is stored either way.
func (db *Database) SaveCaches(path string, caches []*PlanCache) error {
	return plancache.Save(path, plancache.NewSnapshot(db.CacheFingerprint(), caches))
}

// LoadCaches reads a snapshot and reconstructs one slim plan cache per
// query, matched by query name, with no optimizer calls. The snapshot
// must carry this database's current fingerprint (a snapshot built
// against a drifted schema, statistics or cost parameters is rejected)
// and must cover every query by name with matching SQL text. Loaded
// caches answer Cost and BaseLeafCosts bit-identically to the caches
// that were saved.
func (db *Database) LoadCaches(path string, queries []*Query) ([]*PlanCache, error) {
	snap, err := plancache.Load(path, db.CacheFingerprint())
	if err != nil {
		return nil, err
	}
	analyses := make([]*optimizer.Analysis, len(queries))
	for i, q := range queries {
		if analyses[i], err = db.Analyze(q); err != nil {
			return nil, err
		}
	}
	return plancache.BuildCaches(snap, queries, analyses)
}

// BuildPlanCachePrecise fills the cache with the §V-D high-accuracy
// refinement (bigger cache, exact nested-loop costing).
func (db *Database) BuildPlanCachePrecise(q *Query) (*PlanCache, error) {
	a, err := db.Analyze(q)
	if err != nil {
		return nil, err
	}
	return core.BuildPrecise(a, whatif.NewSession(db.cat))
}

// BuildPlanCacheINUM fills the cache the conventional INUM way: one
// optimizer call per interesting order combination and nested-loop mode.
// It exists as the baseline the paper compares against.
func (db *Database) BuildPlanCacheINUM(q *Query) (*PlanCache, error) {
	a, err := db.Analyze(q)
	if err != nil {
		return nil, err
	}
	return inum.Build(a, whatif.NewSession(db.cat))
}

// NewAdvisor returns an index advisor with the given space budget.
func (db *Database) NewAdvisor(budgetBytes int64) *advisor.Advisor {
	return advisor.New(db.cat, db.st, budgetBytes)
}

// Materialize fills every table with deterministic synthetic data and
// returns an execution handle.
func (db *Database) Materialize(seed int64) (*Materialized, error) {
	d, err := data.Materialize(db.cat, seed)
	if err != nil {
		return nil, err
	}
	return &Materialized{db: db, data: d}, nil
}

// Materialized is a physically materialised database that can execute
// plans.
type Materialized struct {
	db   *Database
	data *data.Database
}

// Execute optimizes the query under cfg and runs the chosen plan,
// returning the result rows projected to the select list. Plans are chosen
// with the in-memory cost profile, matching the engine they run on.
func (m *Materialized) Execute(q *Query, cfg *Config) ([][]int64, error) {
	a, err := optimizer.NewAnalysis(q, m.db.st, optimizer.InMemoryCostParams())
	if err != nil {
		return nil, err
	}
	res, err := optimizer.Optimize(a, cfg, optimizer.Options{EnableNestLoop: true})
	if err != nil {
		return nil, err
	}
	ex := executor.New(m.data, q)
	rs, err := ex.Run(res.Best)
	if err != nil {
		return nil, err
	}
	return rs.Project(), nil
}

// Data exposes the underlying materialised tables and indexes.
func (m *Materialized) Data() *data.Database { return m.data }

// Version identifies the library release.
const Version = "1.0.0"

// String summarises the database handle.
func (db *Database) String() string {
	return fmt.Sprintf("pinum.Database(%d tables, %d indexes)",
		len(db.cat.Tables()), len(db.cat.AllIndexes()))
}

// Benchmarks regenerating the paper's tables and figures. One benchmark
// per experiment (E1–E5, see DESIGN.md §4), plus ablation benches for the
// design choices the paper discusses: INUM vs PINUM construction, the
// coarse vs precise nested-loop pruning of §V-D, and the cost of one cache
// lookup versus one optimizer call.
//
// Run with: go test -bench=. -benchmem
package pinum

import (
	"bytes"
	"fmt"
	"io"
	"math/rand"
	"net/http"
	"net/http/httptest"
	"runtime"
	"strings"
	"testing"

	"github.com/pinumdb/pinum/internal/advisor"
	"github.com/pinumdb/pinum/internal/core"
	"github.com/pinumdb/pinum/internal/experiments"
	"github.com/pinumdb/pinum/internal/inum"
	"github.com/pinumdb/pinum/internal/optimizer"
	"github.com/pinumdb/pinum/internal/plancache"
	"github.com/pinumdb/pinum/internal/query"
	"github.com/pinumdb/pinum/internal/serve"
	"github.com/pinumdb/pinum/internal/storage"
	"github.com/pinumdb/pinum/internal/whatif"
	"github.com/pinumdb/pinum/internal/workload"
)

// benchEnv caches the shared environment across benchmarks.
var benchEnv *experiments.Env

func env(b *testing.B) *experiments.Env {
	b.Helper()
	if benchEnv == nil {
		e, err := experiments.NewEnv(42)
		if err != nil {
			b.Fatal(err)
		}
		benchEnv = e
	}
	return benchEnv
}

func analysis(b *testing.B, e *experiments.Env, q *query.Query) *optimizer.Analysis {
	b.Helper()
	a, err := optimizer.NewAnalysis(q, e.Star.Stats, optimizer.DefaultCostParams())
	if err != nil {
		b.Fatal(err)
	}
	return a
}

// BenchmarkE1WhatIfAccuracy regenerates §VI-B: each iteration runs the full
// 50-trial what-if accuracy experiment.
func BenchmarkE1WhatIfAccuracy(b *testing.B) {
	e := env(b)
	for i := 0; i < b.N; i++ {
		r, err := experiments.RunE1(e, 50)
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			b.Logf("avg err %.3f%%, max err %.3f%%", 100*r.AvgError, 100*r.MaxError)
		}
	}
}

// BenchmarkE2CostAccuracy regenerates §VI-C at reduced trial count per
// iteration (the full 1000-config version runs via cmd/pinum-bench).
func BenchmarkE2CostAccuracy(b *testing.B) {
	e := env(b)
	for i := 0; i < b.N; i++ {
		r, err := experiments.RunE2(e, 100, e.Queries[:6])
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			b.Logf("\n%s", r)
		}
	}
}

// BenchmarkE3CacheConstruction regenerates Fig. 4/5 (per-query INUM vs
// PINUM construction and access-cost collection times).
func BenchmarkE3CacheConstruction(b *testing.B) {
	e := env(b)
	for i := 0; i < b.N; i++ {
		r, err := experiments.RunE3(e, e.Queries)
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			b.Logf("\n%s", r)
		}
	}
}

// BenchmarkE4IndexSelection regenerates Fig. 6/7: greedy selection under a
// 5 GB budget plus real executions on a scaled materialisation.
func BenchmarkE4IndexSelection(b *testing.B) {
	e := env(b)
	for i := 0; i < b.N; i++ {
		r, err := experiments.RunE4(e, 0.0005, 5)
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			b.Logf("\n%s", r)
		}
	}
}

// BenchmarkE5Redundancy regenerates the §IV analysis.
func BenchmarkE5Redundancy(b *testing.B) {
	e := env(b)
	for i := 0; i < b.N; i++ {
		r, err := experiments.RunE5(e)
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			b.Logf("\n%s", r)
		}
	}
}

// BenchmarkCacheBuild compares plan-cache construction per query and
// method: the two bar groups of Fig. 4, directly as sub-benchmarks.
func BenchmarkCacheBuild(b *testing.B) {
	e := env(b)
	for _, q := range e.Queries {
		q := q
		b.Run(fmt.Sprintf("%s-tables=%d/INUM", q.Name, len(q.Rels)), func(b *testing.B) {
			a := analysis(b, e, q)
			for i := 0; i < b.N; i++ {
				if _, err := inum.Build(a, whatif.NewSession(e.Star.Catalog)); err != nil {
					b.Fatal(err)
				}
			}
		})
		b.Run(fmt.Sprintf("%s-tables=%d/PINUM", q.Name, len(q.Rels)), func(b *testing.B) {
			a := analysis(b, e, q)
			for i := 0; i < b.N; i++ {
				if _, err := core.Build(a, whatif.NewSession(e.Star.Catalog)); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkAdvisorParallel compares the serial and parallel workload paths
// of the §V-E advisor: batch plan-cache construction (AddQueries) and the
// greedy candidate search (Run), each at Parallelism 1 versus all CPUs.
// Results are bit-identical at every setting; only wall-clock differs.
func BenchmarkAdvisorParallel(b *testing.B) {
	e := env(b)
	modes := []struct {
		name string
		par  int
	}{
		{"serial", 1},
		{fmt.Sprintf("parallel-%d", runtime.GOMAXPROCS(0)), runtime.GOMAXPROCS(0)},
	}
	for _, m := range modes {
		m := m
		b.Run("build/"+m.name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				ad := advisor.New(e.Star.Catalog, e.Star.Stats, storage.BytesForGB(5))
				ad.Parallelism = m.par
				if err := ad.AddQueries(e.Queries, nil); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
	for _, m := range modes {
		m := m
		b.Run("greedy/"+m.name, func(b *testing.B) {
			ad := advisor.New(e.Star.Catalog, e.Star.Stats, storage.BytesForGB(5))
			ad.Parallelism = m.par
			if err := ad.AddQueries(e.Queries, nil); err != nil {
				b.Fatal(err)
			}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := ad.Run(); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkGreedyWideCandidates measures the tentpole refactor: greedy
// selection over a wide candidate set (one single-column candidate per
// attribute column of every table, >100 in all) where most queries never
// touch a given candidate's table. "incremental" runs the costmatrix
// engine (Advisor.Run): each evaluation re-prices only the plans on the
// candidate's table, folding the candidate into the stored per-relation
// minima. "full-reprice" is the pre-engine search (Advisor.RunReference):
// every query × plan × leaf × chosen-index walk, per candidate, per round.
// Both return bit-identical results; only the arithmetic volume differs.
func BenchmarkGreedyWideCandidates(b *testing.B) {
	e := env(b)
	mk := func() *advisor.Advisor {
		ad := advisor.New(e.Star.Catalog, e.Star.Stats, storage.BytesForGB(5))
		ad.Parallelism = 1 // isolate the algorithmic speedup from the pool
		if err := ad.AddQueries(e.Queries, nil); err != nil {
			b.Fatal(err)
		}
		n := 0
		for _, t := range e.Star.Catalog.Tables() {
			for _, col := range t.Columns {
				if col.Name == "id" || strings.HasPrefix(col.Name, "fk_") {
					continue
				}
				ad.AddCandidate(storage.HypotheticalIndex(
					fmt.Sprintf("cand_%s_%s", t.Name, col.Name), t, []string{col.Name}))
				n++
			}
		}
		if n < 100 {
			b.Fatalf("only %d candidates, the wide-set benchmark needs >= 100", n)
		}
		return ad
	}
	b.Run("incremental", func(b *testing.B) {
		ad := mk()
		b.ResetTimer()
		var res *advisor.Result
		for i := 0; i < b.N; i++ {
			r, err := ad.Run()
			if err != nil {
				b.Fatal(err)
			}
			res = r
		}
		b.ReportMetric(float64(res.Engine.QueryEvals), "deltas")
		b.ReportMetric(float64(res.Engine.QuerySkips), "skips")
	})
	b.Run("full-reprice", func(b *testing.B) {
		ad := mk()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if _, err := ad.RunReference(); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// BenchmarkBatchCacheBuild measures the whole-workload cache construction
// path (core.BuildAll) at increasing worker counts.
func BenchmarkBatchCacheBuild(b *testing.B) {
	e := env(b)
	analyses := make([]*optimizer.Analysis, len(e.Queries))
	for i, q := range e.Queries {
		analyses[i] = analysis(b, e, q)
	}
	for _, workers := range []int{1, 2, 4, runtime.GOMAXPROCS(0)} {
		workers := workers
		b.Run(fmt.Sprintf("workers=%d", workers), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := core.BuildAll(analyses, e.Star.Catalog, workers, false); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkOptimizeExportAll measures one PINUM cache-construction
// optimizer call (ExportAll under the all-orders configuration, nested
// loops on — the heavier of core.Build's two calls) per query size, fast
// planner vs the retained reference planner. Both produce bit-identical
// results (see internal/optimizer's equivalence suite); only the work
// differs: clause bitsets vs per-split rescans, a dense DP table vs a
// map, interned plan keys vs strings, bucketed vs all-pairs subsumption,
// and deferred vs eager path materialisation.
func BenchmarkOptimizeExportAll(b *testing.B) {
	e := env(b)
	opt := optimizer.Options{EnableNestLoop: true, ExportAll: true}
	seen := map[int]bool{}
	for _, q := range e.Queries {
		if seen[len(q.Rels)] {
			continue // one representative per query size
		}
		seen[len(q.Rels)] = true
		a := analysis(b, e, q)
		cfg, err := inum.AllOrdersConfig(a, whatif.NewSession(e.Star.Catalog))
		if err != nil {
			b.Fatal(err)
		}
		for _, mode := range []struct {
			name string
			call func(*optimizer.Analysis, *query.Config, optimizer.Options) (*optimizer.Result, error)
		}{
			{"fast", optimizer.Optimize},
			{"reference", optimizer.OptimizeReference},
		} {
			mode := mode
			b.Run(fmt.Sprintf("tables=%d/%s", len(q.Rels), mode.name), func(b *testing.B) {
				b.ReportAllocs()
				for i := 0; i < b.N; i++ {
					if _, err := mode.call(a, cfg, opt); err != nil {
						b.Fatal(err)
					}
				}
			})
		}
	}
}

// BenchmarkOptimizeExportAllShapes measures the same cache-construction
// call on the workload shapes whose join graphs the dense DP sweep handled
// worst: the 7-relation chain and snowflake enumerate 56 and 84 csg-cmp
// pairs where the dense sweep walked 966 splits (plus 99 and 91 dead
// masks). The fast/reference gap here is the PR 4 headline; the star
// workload above bounds it from below (every fact-dimension subset is
// connected, so connectivity-awareness saves the least).
func BenchmarkOptimizeExportAllShapes(b *testing.B) {
	opt := optimizer.Options{EnableNestLoop: true, ExportAll: true}
	for _, shape := range []struct {
		label string
		spec  workload.ShapeSpec
	}{
		{"chain", workload.ShapeSpec{Shape: workload.ShapeChain, Rels: 7, Seed: 42}},
		{"snowflake", workload.ShapeSpec{Shape: workload.ShapeSnowflake, Rels: 7, Seed: 42}},
		// clique-dense exercises the retained-path bookkeeping (the
		// §V-D subsumption frontier) rather than the DP walk: every
		// relation subset is connected, so DPccp saves nothing and the
		// per-relation path population is maximal.
		{"clique-dense", workload.ShapeSpec{Shape: workload.ShapeClique, Rels: 5, Density: 1, Seed: 42}},
	} {
		spec := shape.spec
		cat, q, err := workload.ShapeQuery(spec)
		if err != nil {
			b.Fatal(err)
		}
		a, err := optimizer.NewAnalysis(q, nil, optimizer.DefaultCostParams())
		if err != nil {
			b.Fatal(err)
		}
		cfg := workload.ShapeAllOrdersConfig(cat, q)
		for _, mode := range []struct {
			name string
			call func(*optimizer.Analysis, *query.Config, optimizer.Options) (*optimizer.Result, error)
		}{
			{"fast", optimizer.Optimize},
			{"reference", optimizer.OptimizeReference},
		} {
			mode := mode
			b.Run(fmt.Sprintf("shape=%s/tables=%d/%s", shape.label, len(q.Rels), mode.name), func(b *testing.B) {
				b.ReportAllocs()
				var states int
				for i := 0; i < b.N; i++ {
					res, err := mode.call(a, cfg, opt)
					if err != nil {
						b.Fatal(err)
					}
					states = res.Stats.EnumStates
				}
				b.ReportMetric(float64(states), "dp-states")
			})
		}
	}
}

// BenchmarkOptimizeExportAllWide measures the wide-key fast-path lane:
// queries outside the packed planKey invariants (>16 relations, >63
// interesting orders per relation) that previously fell back to the ~4x
// slower reference sweep. The 17-relation wide chain indexes only its head
// relations — ExportAll's retained set is an antichain over per-relation
// leaf choices, so indexing every relation would make it exponential in
// the chain length in any planner — and runs fast-only (the reference
// sweep caps at 16 relations); wide-orders stays within the reference's
// reach and benchmarks both planners.
func BenchmarkOptimizeExportAllWide(b *testing.B) {
	opt := optimizer.Options{EnableNestLoop: true, ExportAll: true}

	bench := func(name string, a *optimizer.Analysis, cfg *query.Config,
		call func(*optimizer.Analysis, *query.Config, optimizer.Options) (*optimizer.Result, error)) {
		b.Run(name, func(b *testing.B) {
			b.ReportAllocs()
			var states int
			for i := 0; i < b.N; i++ {
				res, err := call(a, cfg, opt)
				if err != nil {
					b.Fatal(err)
				}
				states = res.Stats.EnumStates
			}
			b.ReportMetric(float64(states), "dp-states")
		})
	}

	{
		cat, q, err := workload.ShapeQuery(workload.ShapeSpec{Shape: workload.ShapeWideChain, Rels: 17, Seed: 93})
		if err != nil {
			b.Fatal(err)
		}
		a, err := optimizer.NewAnalysis(q, nil, optimizer.DefaultCostParams())
		if err != nil {
			b.Fatal(err)
		}
		full := workload.ShapeAllOrdersConfig(cat, q)
		cfg := &query.Config{}
		head := map[string]bool{q.Rels[0].Table.Name: true, q.Rels[1].Table.Name: true, q.Rels[2].Table.Name: true}
		for _, ix := range full.Indexes {
			if head[ix.Table] {
				cfg.Indexes = append(cfg.Indexes, ix)
			}
		}
		bench(fmt.Sprintf("shape=wide-chain/tables=%d/fast", len(q.Rels)), a, cfg, optimizer.Optimize)
	}

	{
		cat, q, err := workload.ShapeQuery(workload.ShapeSpec{Shape: workload.ShapeWideOrders, Seed: 91})
		if err != nil {
			b.Fatal(err)
		}
		a, err := optimizer.NewAnalysis(q, nil, optimizer.DefaultCostParams())
		if err != nil {
			b.Fatal(err)
		}
		cfg := workload.ShapeAllOrdersConfig(cat, q)
		bench(fmt.Sprintf("shape=wide-orders/tables=%d/fast", len(q.Rels)), a, cfg, optimizer.Optimize)
		bench(fmt.Sprintf("shape=wide-orders/tables=%d/reference", len(q.Rels)), a, cfg, optimizer.OptimizeReference)
	}
}

// BenchmarkAblationNLJPruning compares the paper's default coarse
// nested-loop pruning against the §V-D high-accuracy refinement ("a bigger
// plan cache and slower cost lookup").
func BenchmarkAblationNLJPruning(b *testing.B) {
	e := env(b)
	q := e.Queries[8] // the 6-way join
	for _, mode := range []struct {
		name  string
		build func(*optimizer.Analysis, *whatif.Session) (*inum.Cache, error)
	}{
		{"coarse", core.Build},
		{"precise", core.BuildPrecise},
	} {
		mode := mode
		b.Run(mode.name, func(b *testing.B) {
			a := analysis(b, e, q)
			var plans int
			for i := 0; i < b.N; i++ {
				c, err := mode.build(a, whatif.NewSession(e.Star.Catalog))
				if err != nil {
					b.Fatal(err)
				}
				plans = c.Stats.PlansCached
			}
			b.ReportMetric(float64(plans), "plans")
		})
	}
}

// BenchmarkCostLookupVsOptimizerCall quantifies the paper's motivation: a
// cache lookup replaces an optimizer call at a fraction of the cost.
func BenchmarkCostLookupVsOptimizerCall(b *testing.B) {
	e := env(b)
	q := e.Queries[6] // 5-way join
	a := analysis(b, e, q)
	cache, err := core.Build(a, whatif.NewSession(e.Star.Catalog))
	if err != nil {
		b.Fatal(err)
	}
	ws := whatif.NewSession(e.Star.Catalog)
	rng := rand.New(rand.NewSource(3))
	cfgs := make([]*query.Config, 64)
	for i := range cfgs {
		cfg, err := workload.RandomAtomicConfig(rng, a, ws, 0.7)
		if err != nil {
			b.Fatal(err)
		}
		cfgs[i] = cfg
	}
	b.Run("cache-lookup", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, _, err := cache.Cost(cfgs[i%len(cfgs)]); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("optimizer-call", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := optimizer.Optimize(a, cfgs[i%len(cfgs)], optimizer.Options{EnableNestLoop: true}); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// BenchmarkAccessCostCollection compares §V-C's batch access-cost hook
// against the naive one-call-per-index loop.
func BenchmarkAccessCostCollection(b *testing.B) {
	e := env(b)
	q := e.Queries[8]
	a := analysis(b, e, q)
	ws := whatif.NewSession(e.Star.Catalog)
	if _, _, err := workload.CandidateIndexes(a, ws); err != nil {
		b.Fatal(err)
	}
	cands := ws.Indexes()
	b.Run("naive", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			inum.CollectAccessCostsNaive(a, cands)
		}
	})
	b.Run("batch", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			core.CollectAccessCosts(a, cands)
		}
	})
}

// BenchmarkSlimCacheBuild compares tree-backed and slim cache
// construction on the widest workload query (the costs are identical;
// slim drops the retained trees at export time).
func BenchmarkSlimCacheBuild(b *testing.B) {
	e := env(b)
	q := e.Queries[9] // 7-way join
	a := analysis(b, e, q)
	b.Run("tree", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := core.Build(a, whatif.NewSession(e.Star.Catalog)); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("slim", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := core.BuildSlim(a, whatif.NewSession(e.Star.Catalog)); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// BenchmarkSnapshotRoundTrip measures the persistence codec: encoding the
// whole workload's slim caches and loading them back (decode + cache
// reconstruction), the work a serving process does once at startup.
func BenchmarkSnapshotRoundTrip(b *testing.B) {
	e := env(b)
	analyses := make([]*optimizer.Analysis, len(e.Queries))
	for i, q := range e.Queries {
		analyses[i] = analysis(b, e, q)
	}
	slims, err := core.BuildAllSlim(analyses, e.Star.Catalog, 0)
	if err != nil {
		b.Fatal(err)
	}
	snap := &plancache.Snapshot{}
	for _, c := range slims {
		snap.Queries = append(snap.Queries, plancache.FromCache(c))
	}
	var buf bytes.Buffer
	if err := plancache.Encode(&buf, snap); err != nil {
		b.Fatal(err)
	}
	data := buf.Bytes()
	b.Run("encode", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			var w bytes.Buffer
			if err := plancache.Encode(&w, snap); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("load", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			dec, err := plancache.Decode(data)
			if err != nil {
				b.Fatal(err)
			}
			for qi := range dec.Queries {
				if _, err := plancache.ToCache(analyses[qi], dec.Queries[qi]); err != nil {
					b.Fatal(err)
				}
			}
		}
	})
}

// BenchmarkServeWhatIf fires concurrent /whatif requests at a server
// running on snapshot-loaded slim caches — the serving layer's request
// path end to end.
func BenchmarkServeWhatIf(b *testing.B) {
	e := env(b)
	analyses := make([]*optimizer.Analysis, len(e.Queries))
	for i, q := range e.Queries {
		analyses[i] = analysis(b, e, q)
	}
	caches, err := core.BuildAllSlim(analyses, e.Star.Catalog, 0)
	if err != nil {
		b.Fatal(err)
	}
	srv, err := serve.New(serve.Config{
		Catalog:  e.Star.Catalog,
		Stats:    e.Star.Stats,
		Queries:  e.Queries,
		Analyses: analyses,
		Caches:   caches,
	})
	if err != nil {
		b.Fatal(err)
	}
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()
	body := []byte(`{"indexes":[{"table":"fact","columns":["fk_dim1_1","m1"]},{"table":"dim1_1","columns":["a1","id"]}]}`)
	b.ResetTimer()
	b.RunParallel(func(pb *testing.PB) {
		for pb.Next() {
			resp, err := http.Post(ts.URL+"/whatif", "application/json", bytes.NewReader(body))
			if err != nil {
				b.Fatal(err)
			}
			if resp.StatusCode != http.StatusOK {
				resp.Body.Close()
				b.Fatalf("/whatif status %d", resp.StatusCode)
			}
			if _, err := io.Copy(io.Discard, resp.Body); err != nil {
				b.Fatal(err)
			}
			resp.Body.Close()
		}
	})
}

module github.com/pinumdb/pinum

go 1.21

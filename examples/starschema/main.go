// Starschema reproduces the paper's core comparison on its own workload:
// build the plan cache for each of the 10 star-schema queries with
// conventional INUM (2 calls per interesting order combination) and with
// PINUM (2 calls total), and report construction times and call counts.
package main

import (
	"fmt"
	"log"
	"time"

	"github.com/pinumdb/pinum"
	"github.com/pinumdb/pinum/internal/workload"
)

func main() {
	star, err := workload.StarSchema(1.0)
	if err != nil {
		log.Fatal(err)
	}
	qs, err := star.Queries(42)
	if err != nil {
		log.Fatal(err)
	}
	db := pinum.NewDatabaseWith(star.Catalog, star.Stats)

	fmt.Println("query  tables  combos   INUM calls / time      PINUM calls / time     speedup")
	for _, q := range qs {
		in, err := db.BuildPlanCacheINUM(q)
		if err != nil {
			log.Fatal(err)
		}
		pin, err := db.BuildPlanCache(q)
		if err != nil {
			log.Fatal(err)
		}
		speed := float64(in.Stats.Duration) / float64(pin.Stats.Duration)
		fmt.Printf("%-5s  %6d  %6d   %5d / %-12v   %5d / %-12v  %6.1fx\n",
			q.Name, len(q.Rels), q.ComboCount(),
			in.Stats.OptimizerCalls, in.Stats.Duration.Round(time.Microsecond),
			pin.Stats.OptimizerCalls, pin.Stats.Duration.Round(time.Microsecond),
			speed)
	}
}

// Advisor runs the paper's index selection tool (§V-E) on the star-schema
// workload, then materialises a scaled-down copy of the database and
// executes one query with and without the suggested indexes to show the
// real effect.
package main

import (
	"fmt"
	"log"
	"time"

	"github.com/pinumdb/pinum"
	"github.com/pinumdb/pinum/internal/storage"
	"github.com/pinumdb/pinum/internal/workload"
)

func main() {
	star, err := workload.StarSchema(1.0)
	if err != nil {
		log.Fatal(err)
	}
	qs, err := star.Queries(42)
	if err != nil {
		log.Fatal(err)
	}
	db := pinum.NewDatabaseWith(star.Catalog, star.Stats)

	adv := db.NewAdvisor(5 * pinum.GB)
	for _, q := range qs {
		if err := adv.AddQuery(q, 1); err != nil {
			log.Fatal(err)
		}
	}
	res, err := adv.Run()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("examined %d candidates; suggested %d indexes using %.2f GB:\n",
		res.CandidateCount, len(res.Chosen), storage.GigaBytes(res.TotalBytes))
	for _, ix := range res.Chosen {
		fmt.Printf("  %s\n", ix.Key())
	}
	fmt.Printf("estimated workload speedup: %.1f%%\n\n", 100*res.Speedup())

	// Execute one query on a small materialised copy, before and after.
	small, err := workload.StarSchema(0.0005)
	if err != nil {
		log.Fatal(err)
	}
	smallQs, err := small.Queries(42)
	if err != nil {
		log.Fatal(err)
	}
	sdb := pinum.NewDatabaseWith(small.Catalog, small.Stats)
	mat, err := sdb.Materialize(7)
	if err != nil {
		log.Fatal(err)
	}
	ws := sdb.WhatIf()
	cfg := &pinum.Config{}
	for _, ix := range res.Chosen {
		nix, err := ws.CreateIndex(ix.Table, ix.Columns...)
		if err != nil {
			log.Fatal(err)
		}
		cfg.Indexes = append(cfg.Indexes, nix)
	}
	q := smallQs[6] // a 5-way join
	// Warm up both variants once so lazy B-tree builds are not timed
	// (indexes are built once and reused in a real deployment).
	if _, err := mat.Execute(q, nil); err != nil {
		log.Fatal(err)
	}
	if _, err := mat.Execute(q, cfg); err != nil {
		log.Fatal(err)
	}
	start := time.Now()
	rows, err := mat.Execute(q, nil)
	if err != nil {
		log.Fatal(err)
	}
	orig := time.Since(start)
	start = time.Now()
	rows2, err := mat.Execute(q, cfg)
	if err != nil {
		log.Fatal(err)
	}
	fast := time.Since(start)
	fmt.Printf("%s: %d rows; original %v, with suggested indexes %v\n",
		q.Name, len(rows), orig.Round(time.Microsecond), fast.Round(time.Microsecond))
	if len(rows) != len(rows2) {
		log.Fatalf("result mismatch: %d vs %d rows", len(rows), len(rows2))
	}
}

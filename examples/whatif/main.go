// Whatif demonstrates the §V-A what-if index interface and its accuracy:
// the cost of a query under a simulated (leaf-pages-only) index versus the
// same index "actually built" (internal B-tree pages included).
package main

import (
	"fmt"
	"log"
	"math"

	"github.com/pinumdb/pinum"
	"github.com/pinumdb/pinum/internal/optimizer"
	"github.com/pinumdb/pinum/internal/query"
	"github.com/pinumdb/pinum/internal/storage"
	"github.com/pinumdb/pinum/internal/workload"
)

func main() {
	star, err := workload.StarSchema(1.0)
	if err != nil {
		log.Fatal(err)
	}
	qs, err := star.Queries(42)
	if err != nil {
		log.Fatal(err)
	}
	db := pinum.NewDatabaseWith(star.Catalog, star.Stats)

	q := qs[4]
	fmt.Printf("query %s: %s\n\n", q.Name, q.SQL)
	a, err := db.Analyze(q)
	if err != nil {
		log.Fatal(err)
	}

	// A covering index relevant to the query: leads on the fact table's
	// join column, includes the filtered and selected measures.
	fact := star.Catalog.Table("fact")
	cols := []string{"fk_dim1_8", "m1", "m2", "fk_dim1_4"}

	hypo := storage.HypotheticalIndex("whatif_ix", fact, cols)
	built := storage.BuiltIndex("built_ix", fact, cols)
	fmt.Printf("index fact(%v):\n", cols)
	fmt.Printf("  what-if estimate: %d leaf pages (internal pages ignored, per §V-A)\n", hypo.LeafPages)
	fmt.Printf("  built:            %d leaf + %d internal pages, height %d\n\n",
		built.LeafPages, built.InternalPages, built.Height)

	for name, ix := range map[string]*pinum.Index{"what-if": hypo, "built": built} {
		res, err := optimizer.Optimize(a, &query.Config{Indexes: []*pinum.Index{ix}},
			optimizer.Options{EnableNestLoop: true})
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("cost with %-8s index: %.2f\n", name, res.Best.Cost)
	}

	r1, _ := optimizer.Optimize(a, &query.Config{Indexes: []*pinum.Index{hypo}}, optimizer.Options{EnableNestLoop: true})
	r2, _ := optimizer.Optimize(a, &query.Config{Indexes: []*pinum.Index{built}}, optimizer.Options{EnableNestLoop: true})
	errPct := 100 * math.Abs(r1.Best.Cost-r2.Best.Cost) / r2.Best.Cost
	fmt.Printf("\nwhat-if costing error: %.3f%%  (paper: 0.33%% average, 1.05%% max)\n", errPct)
}

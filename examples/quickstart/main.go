// Quickstart: declare a schema, parse a query, build a PINUM plan cache
// with two optimizer calls, and price index configurations without ever
// calling the optimizer again.
package main

import (
	"fmt"
	"log"

	"github.com/pinumdb/pinum"
)

func main() {
	db := pinum.NewDatabase()

	// A small orders/customers schema.
	db.MustTable(&pinum.Table{
		Name:     "customers",
		RowCount: 200_000,
		Columns: []*pinum.Column{
			{Name: "id", NDV: 200_000, Min: 1, Max: 200_000, NotNull: true},
			{Name: "region", NDV: 50, Min: 1, Max: 50},
			{Name: "segment", NDV: 10, Min: 1, Max: 10},
		},
	})
	db.MustTable(&pinum.Table{
		Name:     "orders",
		RowCount: 5_000_000,
		Columns: []*pinum.Column{
			{Name: "id", NDV: 5_000_000, Min: 1, Max: 5_000_000, NotNull: true},
			{Name: "customer_id", NDV: 200_000, Min: 1, Max: 200_000, NotNull: true},
			{Name: "amount", NDV: 10_000, Min: 1, Max: 10_000},
			{Name: "order_date", NDV: 2_000, Min: 1, Max: 2_000},
		},
	})

	q, err := db.ParseQuery(
		"SELECT orders.amount, customers.region "+
			"FROM orders, customers "+
			"WHERE orders.customer_id = customers.id AND orders.order_date BETWEEN 1900 AND 1919 "+
			"ORDER BY customers.region", "orders-by-region")
	if err != nil {
		log.Fatal(err)
	}

	// Build the plan cache: exactly two optimizer calls, regardless of
	// how many configurations we price afterwards.
	cache, err := db.BuildPlanCache(q)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("cache built with %d optimizer calls: %d plans for %d interesting order combinations\n\n",
		cache.Stats.OptimizerCalls, cache.Stats.PlansCached, cache.Stats.CombosEnumerated)

	// Price a few what-if configurations — pure arithmetic from here on.
	ws := db.WhatIf()
	mk := func(table string, cols ...string) *pinum.Index {
		ix, err := ws.CreateIndex(table, cols...)
		if err != nil {
			log.Fatal(err)
		}
		return ix
	}
	configs := map[string]*pinum.Config{
		"no indexes":         {},
		"orders(order_date)": {Indexes: []*pinum.Index{mk("orders", "order_date", "amount", "customer_id")}},
		"customers(region)":  {Indexes: []*pinum.Index{mk("customers", "region", "id")}},
		"both":               {Indexes: []*pinum.Index{mk("orders", "order_date", "amount", "customer_id"), mk("customers", "region", "id")}},
	}
	for name, cfg := range configs {
		cost, plan, err := cache.Cost(cfg)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-20s cost %12.0f   (winning combo %v)\n", name, cost, plan.Combo())
	}
}

// Package experiments implements the drivers that regenerate every table
// and figure of the paper's evaluation (§VI), printing rows in the same
// shape the paper reports:
//
//	E1  §VI-B  what-if index accuracy (cost with built vs simulated index)
//	E2  §VI-C  cost-model accuracy over random atomic configurations
//	E3  Fig. 4/5  cache-construction and access-cost collection times
//	E4  Fig. 6/7  index selection tool: execution time before/after
//	E5  §IV  optimizer-call redundancy (combinations vs unique plans)
package experiments

import (
	"fmt"
	"math"
	"math/rand"
	"sort"
	"strings"
	"time"

	"github.com/pinumdb/pinum/internal/advisor"
	"github.com/pinumdb/pinum/internal/catalog"
	"github.com/pinumdb/pinum/internal/core"
	"github.com/pinumdb/pinum/internal/data"
	"github.com/pinumdb/pinum/internal/executor"
	"github.com/pinumdb/pinum/internal/inum"
	"github.com/pinumdb/pinum/internal/optimizer"
	"github.com/pinumdb/pinum/internal/query"
	"github.com/pinumdb/pinum/internal/storage"
	"github.com/pinumdb/pinum/internal/whatif"
	"github.com/pinumdb/pinum/internal/workload"
)

// Env bundles the shared experimental environment: the 10 GB-scale star
// schema and the 10-query workload.
type Env struct {
	Star    *workload.Star
	Queries []*query.Query
	Seed    int64
	// Workers bounds the worker pools used for batch cache construction
	// and the advisor's parallel greedy search in E4 (0 = GOMAXPROCS,
	// 1 = serial). Selection results and cost estimates are identical at
	// every setting. E3 ignores it: its deliverable is isolated per-query
	// construction timings, which parallel builds would contaminate with
	// scheduler contention.
	Workers int
}

// NewEnv builds the standard environment (statistics at the paper's 10 GB
// scale; nothing is materialised).
func NewEnv(seed int64) (*Env, error) {
	s, err := workload.StarSchema(1.0)
	if err != nil {
		return nil, err
	}
	qs, err := s.Queries(seed)
	if err != nil {
		return nil, err
	}
	return &Env{Star: s, Queries: qs, Seed: seed}, nil
}

func (e *Env) analysis(q *query.Query) (*optimizer.Analysis, error) {
	return optimizer.NewAnalysis(q, e.Star.Stats, optimizer.DefaultCostParams())
}

// ---------------------------------------------------------------- E1 ----

// E1Row is one trial of the what-if accuracy experiment.
type E1Row struct {
	Query    string
	Config   string
	Actual   float64 // optimizer cost with measured (built) index sizes
	Estimate float64 // optimizer cost with leaf-only what-if sizes
	Error    float64 // |Estimate-Actual| / Actual
}

// E1Result aggregates the 50 trials of §VI-B.
type E1Result struct {
	Rows     []E1Row
	AvgError float64
	MaxError float64
}

// RunE1 repeats the paper's experiment: estimate query cost with the same
// index once simulated (what-if: leaf pages only) and once "implemented"
// (full B-tree: internal pages included), 50 times over random index sets.
func RunE1(env *Env, trials int) (*E1Result, error) {
	if trials <= 0 {
		trials = 50
	}
	rng := rand.New(rand.NewSource(env.Seed + 1))
	res := &E1Result{}
	for trial := 0; trial < trials; trial++ {
		q := env.Queries[rng.Intn(len(env.Queries))]
		a, err := env.analysis(q)
		if err != nil {
			return nil, err
		}
		ws := whatif.NewSession(env.Star.Catalog)
		cfg, err := workload.RandomAtomicConfig(rng, a, ws, 0.9)
		if err != nil {
			return nil, err
		}
		if len(cfg.Indexes) == 0 {
			continue
		}
		// The "actual" configuration replaces each leaf-only what-if
		// descriptor with a fully-built descriptor of the same key.
		actualCfg := &query.Config{}
		for _, ix := range cfg.Indexes {
			t := env.Star.Catalog.Table(ix.Table)
			actualCfg.Indexes = append(actualCfg.Indexes,
				storage.BuiltIndex(ix.Name+"_built", t, ix.Columns))
		}
		est, err := optimizer.Optimize(a, cfg, optimizer.Options{EnableNestLoop: true})
		if err != nil {
			return nil, err
		}
		act, err := optimizer.Optimize(a, actualCfg, optimizer.Options{EnableNestLoop: true})
		if err != nil {
			return nil, err
		}
		e := relErr(est.Best.Cost, act.Best.Cost)
		res.Rows = append(res.Rows, E1Row{
			Query: q.Name, Config: cfg.String(),
			Actual: act.Best.Cost, Estimate: est.Best.Cost, Error: e,
		})
	}
	for _, r := range res.Rows {
		res.AvgError += r.Error
		if r.Error > res.MaxError {
			res.MaxError = r.Error
		}
	}
	if len(res.Rows) > 0 {
		res.AvgError /= float64(len(res.Rows))
	}
	return res, nil
}

// String renders the E1 summary in the paper's terms.
func (r *E1Result) String() string {
	return fmt.Sprintf(
		"E1 what-if index accuracy (%d trials)\n"+
			"  average cost-estimation error: %.2f%%  (paper: 0.33%%)\n"+
			"  maximum cost-estimation error: %.2f%%  (paper: 1.05%%)\n",
		len(r.Rows), 100*r.AvgError, 100*r.MaxError)
}

// ---------------------------------------------------------------- E2 ----

// E2Row reports cost-model accuracy for one query.
type E2Row struct {
	Query       string
	Configs     int
	PinumAvgErr float64
	PinumMaxErr float64
	InumAvgErr  float64
	InumMaxErr  float64
}

// E2Result is the §VI-C table.
type E2Result struct {
	Rows []E2Row
}

// RunE2 compares the cached cost models against direct optimizer calls on
// random atomic configurations (the paper uses 1000 per query).
func RunE2(env *Env, configsPerQuery int, queries []*query.Query) (*E2Result, error) {
	if configsPerQuery <= 0 {
		configsPerQuery = 1000
	}
	if queries == nil {
		queries = env.Queries
	}
	rng := rand.New(rand.NewSource(env.Seed + 2))
	res := &E2Result{}
	for _, q := range queries {
		a, err := env.analysis(q)
		if err != nil {
			return nil, err
		}
		pin, err := core.Build(a, whatif.NewSession(env.Star.Catalog))
		if err != nil {
			return nil, err
		}
		in, err := inum.Build(a, whatif.NewSession(env.Star.Catalog))
		if err != nil {
			return nil, err
		}
		ws := whatif.NewSession(env.Star.Catalog)
		row := E2Row{Query: q.Name}
		for trial := 0; trial < configsPerQuery; trial++ {
			cfg, err := workload.RandomAtomicConfig(rng, a, ws, 0.7)
			if err != nil {
				return nil, err
			}
			opt, err := optimizer.Optimize(a, cfg, optimizer.Options{EnableNestLoop: true})
			if err != nil {
				return nil, err
			}
			want := opt.Best.Cost
			pc, _, err := pin.Cost(cfg)
			if err != nil {
				return nil, err
			}
			ic, _, err := in.Cost(cfg)
			if err != nil {
				return nil, err
			}
			pe, ie := relErr(pc, want), relErr(ic, want)
			row.Configs++
			row.PinumAvgErr += pe
			row.InumAvgErr += ie
			row.PinumMaxErr = math.Max(row.PinumMaxErr, pe)
			row.InumMaxErr = math.Max(row.InumMaxErr, ie)
		}
		if row.Configs > 0 {
			row.PinumAvgErr /= float64(row.Configs)
			row.InumAvgErr /= float64(row.Configs)
		}
		res.Rows = append(res.Rows, row)
	}
	return res, nil
}

// String renders the E2 table.
func (r *E2Result) String() string {
	var b strings.Builder
	b.WriteString("E2 cost-model accuracy vs direct optimizer calls\n")
	b.WriteString("  query  configs  PINUM avg/max err      INUM avg/max err\n")
	for _, row := range r.Rows {
		fmt.Fprintf(&b, "  %-5s  %7d  %6.2f%% / %6.2f%%     %6.2f%% / %6.2f%%\n",
			row.Query, row.Configs,
			100*row.PinumAvgErr, 100*row.PinumMaxErr,
			100*row.InumAvgErr, 100*row.InumMaxErr)
	}
	b.WriteString("  (paper, PINUM: six queries <1% error, three ≈4%, one ≈9%; INUM ≈7% average)\n")
	return b.String()
}

// ---------------------------------------------------------------- E3 ----

// E3Row reports construction costs for one query (one group of bars in
// Fig. 4/5).
type E3Row struct {
	Query  string
	Tables int
	Combos int

	InumCacheTime   time.Duration
	InumCacheCalls  int
	PinumCacheTime  time.Duration
	PinumCacheCalls int

	// Planner-work counters aggregated across each build's optimizer
	// calls: how many candidate paths the pruning screens discarded and
	// how many join-clause set computations the DP split enumeration
	// performed. These make the fast planner's work reduction (clause
	// bitsets consulted once per split, packed-key dedup, bucketed
	// subsumption) observable alongside the wall-clock columns.
	InumPlanner  optimizer.PlannerStats
	PinumPlanner optimizer.PlannerStats

	// PinumMem and SlimMem compare the retained memory of the tree-backed
	// PINUM cache against a slim build of the same query (identical
	// entries and costs, path trees dropped at export time). The ratio is
	// the slim-cache headline: peak cache bytes per query before/after.
	PinumMem inum.MemStats
	SlimMem  inum.MemStats

	InumAccessTime  time.Duration
	InumAccessCalls int
	PinumAccessTime time.Duration
	// AccessErrors counts optimizer failures across both access-cost
	// collections (AccessCostTable.Errors); a non-zero value means the
	// timing row is built from incomplete tables.
	AccessErrors int

	Candidates int
}

// Speedup ratios.
func (r *E3Row) CacheSpeedup() float64 {
	if r.PinumCacheTime <= 0 {
		return 0
	}
	return float64(r.InumCacheTime) / float64(r.PinumCacheTime)
}

func (r *E3Row) AccessSpeedup() float64 {
	if r.PinumAccessTime <= 0 {
		return 0
	}
	return float64(r.InumAccessTime) / float64(r.PinumAccessTime)
}

// MemSaving is the tree-vs-slim cache memory reduction factor.
func (r *E3Row) MemSaving() float64 {
	if r.SlimMem.TotalBytes() <= 0 {
		return 0
	}
	return float64(r.PinumMem.TotalBytes()) / float64(r.SlimMem.TotalBytes())
}

// E3Result is the Fig. 4/5 data.
type E3Result struct {
	Rows []E3Row
}

// RunE3 measures, per query, the wall-clock time to (a) fill the plan
// cache and (b) collect candidate-index access costs, with conventional
// INUM (one optimizer call per combination / per index) and with PINUM's
// hooks (two calls / one call). Builds are timed in isolation (one
// worker) so the reported durations reproduce the paper's per-query
// methodology; Env.Workers does not apply here.
func RunE3(env *Env, queries []*query.Query) (*E3Result, error) {
	if queries == nil {
		queries = env.Queries
	}
	res := &E3Result{}
	// Both cache flavours go through the batch builder, but with a single
	// worker: E3's deliverable is the paper's per-query construction
	// timing (Fig. 4/5), and timing each build in isolation — no sibling
	// builds competing for cores — is what keeps the absolute durations
	// and the INUM/PINUM ratio faithful to the paper's methodology.
	// Env.Workers deliberately does not apply here; it parallelizes E4's
	// advisor, where only results (identical at any setting) matter.
	analyses := make([]*optimizer.Analysis, len(queries))
	for i, q := range queries {
		a, err := env.analysis(q)
		if err != nil {
			return nil, err
		}
		analyses[i] = a
	}
	pins, err := core.BuildAll(analyses, env.Star.Catalog, 1, false)
	if err != nil {
		return nil, err
	}
	ins, err := core.BuildAllWith(analyses, env.Star.Catalog, 1, inum.Build)
	if err != nil {
		return nil, err
	}
	// Slim builds of the same queries, for the memory column only (their
	// timings are not reported; the paper's Fig. 4/5 methodology applies
	// to the two cache flavours above).
	slims, err := core.BuildAllWith(analyses, env.Star.Catalog, 1, core.BuildSlim)
	if err != nil {
		return nil, err
	}
	for qi, q := range queries {
		a := analyses[qi]
		row := E3Row{Query: q.Name, Tables: len(q.Rels), Combos: q.ComboCount()}

		// Only the build stats outlive this iteration; dropping the cache
		// references keeps peak memory at one pair of live caches, as the
		// old per-query build-then-drop loop did.
		row.PinumCacheTime = pins[qi].Stats.Duration
		row.PinumCacheCalls = pins[qi].Stats.OptimizerCalls
		row.PinumPlanner = pins[qi].Stats.Planner
		row.PinumMem = pins[qi].Stats.Mem
		pins[qi] = nil

		row.SlimMem = slims[qi].Stats.Mem
		slims[qi] = nil

		row.InumCacheTime = ins[qi].Stats.Duration
		row.InumCacheCalls = ins[qi].Stats.OptimizerCalls
		row.InumPlanner = ins[qi].Stats.Planner
		ins[qi] = nil

		// Candidate indexes for the access-cost lookup comparison.
		ws := whatif.NewSession(env.Star.Catalog)
		_, names, err := workload.CandidateIndexes(a, ws)
		if err != nil {
			return nil, err
		}
		var cands []*catalog.Index
		for _, ix := range ws.Indexes() {
			cands = append(cands, ix)
		}
		_ = names
		row.Candidates = len(cands)

		naive := inum.CollectAccessCostsNaive(a, cands)
		row.InumAccessTime = naive.Duration
		row.InumAccessCalls = naive.Calls

		batch := core.CollectAccessCosts(a, cands)
		row.PinumAccessTime = batch.Duration
		row.AccessErrors = naive.Errors + batch.Errors

		res.Rows = append(res.Rows, row)
	}
	return res, nil
}

// String renders the Fig. 4/5 table.
func (r *E3Result) String() string {
	var b strings.Builder
	b.WriteString("E3 cache-construction and access-cost collection times (Fig. 4/5)\n")
	b.WriteString("  query  tbl  combos  INUM cache (calls)    PINUM cache (calls)   speedup |  INUM access (calls)   PINUM access   speedup\n")
	for _, row := range r.Rows {
		fmt.Fprintf(&b, "  %-5s  %3d  %6d  %12v (%4d)  %12v (%4d)  %6.1fx | %12v (%4d)  %12v  %6.1fx\n",
			row.Query, row.Tables, row.Combos,
			row.InumCacheTime.Round(time.Microsecond), row.InumCacheCalls,
			row.PinumCacheTime.Round(time.Microsecond), row.PinumCacheCalls,
			row.CacheSpeedup(),
			row.InumAccessTime.Round(time.Microsecond), row.InumAccessCalls,
			row.PinumAccessTime.Round(time.Microsecond),
			row.AccessSpeedup())
		fmt.Fprintf(&b, "         planner work: INUM %d considered / %d pruned / %d clause lookups, PINUM %d / %d / %d\n",
			row.InumPlanner.PathsConsidered, row.InumPlanner.PathsPruned, row.InumPlanner.ClauseLookups,
			row.PinumPlanner.PathsConsidered, row.PinumPlanner.PathsPruned, row.PinumPlanner.ClauseLookups)
		fmt.Fprintf(&b, "         enumeration: %d DP states visited, %d disconnected masks skipped\n",
			row.PinumPlanner.EnumStates, row.PinumPlanner.MasksSkipped)
		fmt.Fprintf(&b, "         frontier: INUM %d inserts / %d dominated on arrival / %d evicted, PINUM %d / %d / %d\n",
			row.InumPlanner.FrontierInserts, row.InumPlanner.FrontierDrops, row.InumPlanner.FrontierEvictions,
			row.PinumPlanner.FrontierInserts, row.PinumPlanner.FrontierDrops, row.PinumPlanner.FrontierEvictions)
		fmt.Fprintf(&b, "         cache memory: tree %s | slim %s | %.1fx smaller\n",
			row.PinumMem, row.SlimMem, row.MemSaving())
		if row.AccessErrors > 0 {
			fmt.Fprintf(&b, "  %-5s  WARNING: %d optimizer failures during access-cost collection; timings above are from incomplete tables\n",
				row.Query, row.AccessErrors)
		}
	}
	b.WriteString("  (paper: PINUM ≥5–10x for cache construction, ~5x for access costs,\n")
	b.WriteString("   ≥2 orders of magnitude for queries joining >3 tables)\n")
	return b.String()
}

// ---------------------------------------------------------------- E4 ----

// E4Row is one query's execution time before/after index selection
// (Fig. 7).
type E4Row struct {
	Query    string
	Original time.Duration
	WithIdx  time.Duration
	EstBase  float64
	EstFinal float64
}

// E4Result is the index-selection experiment outcome.
type E4Result struct {
	Rows []E4Row
	// Chosen describes the advisor's suggested indexes.
	Chosen []string
	// BudgetBytes and UsedBytes report the space constraint.
	BudgetBytes, UsedBytes int64
	// AvgSpeedup is the mean per-query execution-time reduction.
	AvgSpeedup float64
	// EstSpeedup is the advisor's own cost-model speedup estimate.
	EstSpeedup float64
	// Scale is the materialisation scale used for executions.
	Scale float64
	// DeltaEvals and SkippedEvals report the incremental cost engine's
	// greedy-search work: per-query delta evaluations performed vs.
	// evaluations the table→queries index skipped outright.
	DeltaEvals, SkippedEvals int64
}

// RunE4 runs the §V-E index selection tool on the 10-query workload with
// the paper's 5 GB budget (chosen at full 10 GB-scale statistics), then
// measures real executions on a scaled-down materialised database with and
// without the suggested indexes.
func RunE4(env *Env, execScale float64, budgetGB float64) (*E4Result, error) {
	if execScale <= 0 {
		execScale = 0.001
	}
	if budgetGB <= 0 {
		budgetGB = 5
	}
	ad := advisor.New(env.Star.Catalog, env.Star.Stats, storage.BytesForGB(budgetGB))
	ad.Parallelism = env.Workers
	if err := ad.AddQueries(env.Queries, nil); err != nil {
		return nil, err
	}
	sel, err := ad.Run()
	if err != nil {
		return nil, err
	}

	// Materialise a scaled-down copy of the same schema for execution.
	small, err := workload.StarSchema(execScale)
	if err != nil {
		return nil, err
	}
	smallQs, err := small.Queries(env.Seed)
	if err != nil {
		return nil, err
	}
	db, err := data.Materialize(small.Catalog, env.Seed+7)
	if err != nil {
		return nil, err
	}

	// Transfer the chosen index definitions onto the scaled schema.
	ws := whatif.NewSession(small.Catalog)
	cfg := &query.Config{}
	for _, ix := range sel.Chosen {
		nix, err := ws.CreateIndex(ix.Table, ix.Columns...)
		if err != nil {
			return nil, err
		}
		cfg.Indexes = append(cfg.Indexes, nix)
	}

	res := &E4Result{
		BudgetBytes:  ad.BudgetBytes,
		UsedBytes:    sel.TotalBytes,
		EstSpeedup:   sel.Speedup(),
		Scale:        execScale,
		DeltaEvals:   sel.Engine.QueryEvals,
		SkippedEvals: sel.Engine.QuerySkips,
	}
	for _, ix := range sel.Chosen {
		res.Chosen = append(res.Chosen, ix.Key())
	}

	for _, q := range smallQs {
		// Plan the executed queries with the in-memory cost profile so
		// the chosen plans fit the substrate they actually run on.
		a, err := optimizer.NewAnalysis(q, small.Stats, optimizer.InMemoryCostParams())
		if err != nil {
			return nil, err
		}
		orig, err := timedRun(db, a, q, nil)
		if err != nil {
			return nil, fmt.Errorf("E4 %s original: %w", q.Name, err)
		}
		fast, err := timedRun(db, a, q, cfg)
		if err != nil {
			return nil, fmt.Errorf("E4 %s with indexes: %w", q.Name, err)
		}
		e := sel.PerQuery[q.Name]
		res.Rows = append(res.Rows, E4Row{
			Query: q.Name, Original: orig, WithIdx: fast,
			EstBase: e[0], EstFinal: e[1],
		})
	}
	n := 0
	for _, row := range res.Rows {
		if row.Original > 0 {
			res.AvgSpeedup += 1 - float64(row.WithIdx)/float64(row.Original)
			n++
		}
	}
	if n > 0 {
		res.AvgSpeedup /= float64(n)
	}
	return res, nil
}

// timedRun optimizes under cfg and executes the chosen plan, returning the
// best wall-clock execution time of three runs (plan time excluded, as in
// the paper's execution-time figure; the minimum suppresses scheduler and
// allocator noise at sub-millisecond scales).
func timedRun(db *data.Database, a *optimizer.Analysis, q *query.Query, cfg *query.Config) (time.Duration, error) {
	res, err := optimizer.Optimize(a, cfg, optimizer.Options{EnableNestLoop: true})
	if err != nil {
		return 0, err
	}
	// Pre-build any indexes the plan needs so index build time is not
	// charged to the execution (indexes are built once, used many times).
	if err := prebuildIndexes(db, res.Best); err != nil {
		return 0, err
	}
	ex := executor.New(db, q)
	best := time.Duration(0)
	for rep := 0; rep < 3; rep++ {
		start := time.Now()
		if _, err := ex.Run(res.Best); err != nil {
			return 0, err
		}
		d := time.Since(start)
		if best == 0 || d < best {
			best = d
		}
	}
	return best, nil
}

func prebuildIndexes(db *data.Database, p *optimizer.Path) error {
	if p == nil {
		return nil
	}
	if p.Index != nil {
		if _, err := db.BuildIndex(p.Index); err != nil {
			return err
		}
	}
	if err := prebuildIndexes(db, p.Child); err != nil {
		return err
	}
	if err := prebuildIndexes(db, p.Outer); err != nil {
		return err
	}
	return prebuildIndexes(db, p.Inner)
}

// String renders the Fig. 6/7 tables.
func (r *E4Result) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "E4 index selection tool (budget %.1f GB, used %.2f GB, %d indexes; executions at scale %g)\n",
		storage.GigaBytes(r.BudgetBytes), storage.GigaBytes(r.UsedBytes), len(r.Chosen), r.Scale)
	b.WriteString("  query  original exec   with indexes   speedup |  est. cost before → after\n")
	for _, row := range r.Rows {
		sp := 0.0
		if row.Original > 0 {
			sp = 1 - float64(row.WithIdx)/float64(row.Original)
		}
		fmt.Fprintf(&b, "  %-5s  %13v  %13v  %6.1f%% |  %12.0f → %12.0f\n",
			row.Query, row.Original.Round(time.Microsecond), row.WithIdx.Round(time.Microsecond),
			100*sp, row.EstBase, row.EstFinal)
	}
	fmt.Fprintf(&b, "  average execution speedup: %.1f%%  (paper: 95%%)\n", 100*r.AvgSpeedup)
	fmt.Fprintf(&b, "  cost-model estimated speedup: %.1f%%\n", 100*r.EstSpeedup)
	fmt.Fprintf(&b, "  cost engine: %d query deltas computed, %d skipped by the table index\n",
		r.DeltaEvals, r.SkippedEvals)
	fmt.Fprintf(&b, "  suggested indexes:\n")
	for _, c := range r.Chosen {
		fmt.Fprintf(&b, "    %s\n", c)
	}
	return b.String()
}

// ---------------------------------------------------------------- E5 ----

// E5Result is the §IV redundancy analysis.
type E5Result struct {
	Rows []core.Redundancy
	// TotalCombos and TotalUnique aggregate over the workload, matching
	// the paper's "43 useful plans out of 266 combinations" summary.
	TotalCombos, TotalUnique int
}

// RunE5 measures, for the Q5 analogue and every workload query, how many
// interesting order combinations exist versus how many unique plans the
// complete cache holds.
func RunE5(env *Env) (*E5Result, error) {
	res := &E5Result{}
	q5, err := env.Star.Q5Analogue()
	if err != nil {
		return nil, err
	}
	for _, q := range append([]*query.Query{q5}, env.Queries...) {
		a, err := env.analysis(q)
		if err != nil {
			return nil, err
		}
		red, err := core.MeasureRedundancy(a, whatif.NewSession(env.Star.Catalog))
		if err != nil {
			return nil, err
		}
		res.Rows = append(res.Rows, red)
		if q != q5 {
			res.TotalCombos += red.Combinations
			res.TotalUnique += red.UniquePlans
		}
	}
	return res, nil
}

// String renders the redundancy table.
func (r *E5Result) String() string {
	var b strings.Builder
	b.WriteString("E5 optimizer-call redundancy (§IV)\n")
	b.WriteString("  query        combos  unique plans  redundant calls\n")
	for _, row := range r.Rows {
		fmt.Fprintf(&b, "  %-11s  %6d  %12d  %14.0f%%\n",
			row.Query, row.Combinations, row.UniquePlans, 100*row.RedundantCallFraction)
	}
	fmt.Fprintf(&b, "  workload total: %d unique plans out of %d combinations  (paper: 43 of 266)\n",
		r.TotalUnique, r.TotalCombos)
	b.WriteString("  (paper, TPC-H Q5: 64 unique plans of 648 combinations → ~90% redundant)\n")
	return b.String()
}

// ---------------------------------------------------------------- E6 ----

// E6Row reports the join-enumeration work for one shape/size: the DP
// states the connectivity-aware fast planner visits (csg-cmp pairs)
// against the dense submask sweep the reference planner walks, with the
// wall-clock of one ExportAll cache-construction call each.
type E6Row struct {
	Shape string
	Rels  int
	Joins int
	// FastStates / DenseStates are the EnumStates counters of the two
	// planners; MasksSkipped counts the disconnected relation subsets the
	// dense sweep visits in vain (both planners report the same value).
	FastStates   int
	DenseStates  int
	MasksSkipped int
	// Exported is the exported plan count (identical for both planners).
	Exported int
	// FrontierInserts / FrontierDrops / FrontierEvictions are the fast
	// planner's retained-path frontier counters for the call (the reference
	// planner's simulated frontier reports the same values, pinned by the
	// equivalence suite).
	FrontierInserts   int
	FrontierDrops     int
	FrontierEvictions int
	FastTime          time.Duration
	RefTime           time.Duration
	// TreeMem and SlimMem compare the retained memory of a plan cache
	// filled from this call's exported set with and without path trees
	// (the slim-cache refactor's per-shape saving).
	TreeMem inum.MemStats
	SlimMem inum.MemStats
}

// StateSaving is the DP-state reduction factor.
func (r *E6Row) StateSaving() float64 {
	if r.FastStates <= 0 {
		return 0
	}
	return float64(r.DenseStates) / float64(r.FastStates)
}

// Speedup is the wall-clock ratio of the two calls.
func (r *E6Row) Speedup() float64 {
	if r.FastTime <= 0 {
		return 0
	}
	return float64(r.RefTime) / float64(r.FastTime)
}

// MemSaving is the tree-vs-slim cache memory reduction factor.
func (r *E6Row) MemSaving() float64 {
	if r.SlimMem.TotalBytes() <= 0 {
		return 0
	}
	return float64(r.TreeMem.TotalBytes()) / float64(r.SlimMem.TotalBytes())
}

// EntrySaving is the tree-vs-packed-slim per-entry byte reduction factor
// (the packed-leaf arena refactor's saving, net of path trees).
func (r *E6Row) EntrySaving() float64 {
	if r.SlimMem.EntryBytes <= 0 {
		return 0
	}
	return float64(r.TreeMem.EntryBytes) / float64(r.SlimMem.EntryBytes)
}

// E6Result is the enumeration experiment's table.
type E6Result struct {
	Rows []E6Row
}

// e6Specs are the shape/size points the experiment samples, covering every
// generated topology at the sizes the workload's biggest queries reach.
func e6Specs(seed int64) []workload.ShapeSpec {
	return []workload.ShapeSpec{
		{Shape: workload.ShapeChain, Rels: 4, Seed: seed},
		{Shape: workload.ShapeChain, Rels: 7, Seed: seed},
		{Shape: workload.ShapeCycle, Rels: 7, Seed: seed},
		{Shape: workload.ShapeSnowflake, Rels: 7, Seed: seed},
		{Shape: workload.ShapeStar, Rels: 7, Seed: seed},
		{Shape: workload.ShapeClique, Rels: 5, Seed: seed},
		{Shape: workload.ShapeRandom, Rels: 6, Density: 0.4, Seed: seed},
	}
}

// RunE6 measures, per join-graph shape, how much of the dense DP sweep the
// connectivity-aware enumeration (DPccp) avoids, on the same ExportAll
// call cache construction makes. Star queries show the smallest saving
// (every fact-dimension subset is connected); chains and snowflakes the
// largest, which is exactly the gap PR 3's dense sweep left open.
func RunE6(env *Env) (*E6Result, error) {
	res := &E6Result{}
	// The timed call is core.Build's nested-loop export call (PaperPrune
	// keeps the exported sets at the paper's size; the enumeration-state
	// counters are identical under any Options since the DP split walk
	// doesn't depend on pruning).
	opt := optimizer.Options{EnableNestLoop: true, ExportAll: true, PaperPrune: true}
	for _, spec := range e6Specs(env.Seed) {
		cat, q, err := workload.ShapeQuery(spec)
		if err != nil {
			return nil, err
		}
		a, err := optimizer.NewAnalysis(q, nil, optimizer.DefaultCostParams())
		if err != nil {
			return nil, err
		}
		cfg := workload.ShapeAllOrdersConfig(cat, q)

		// Best of three runs each, as the execution experiment does:
		// single samples at sub-millisecond scales are allocator and
		// scheduler noise, and the very first call would additionally be
		// charged process warmup.
		fast, fastTime, err := timedOptimize(optimizer.Optimize, a, cfg, opt)
		if err != nil {
			return nil, fmt.Errorf("E6 %s fast: %w", q.Name, err)
		}
		ref, refTime, err := timedOptimize(optimizer.OptimizeReference, a, cfg, opt)
		if err != nil {
			return nil, fmt.Errorf("E6 %s reference: %w", q.Name, err)
		}

		// Fill one tree-backed and one slim cache from the same exported
		// set to measure what each retains.
		tree, slim := inum.NewCache(a), inum.NewSlimCache(a)
		for _, p := range fast.Exported {
			tree.AddPath(p)
			slim.AddPath(p)
		}

		res.Rows = append(res.Rows, E6Row{
			Shape:             spec.Shape.String(),
			Rels:              len(q.Rels),
			Joins:             len(q.Joins),
			FastStates:        fast.Stats.EnumStates,
			DenseStates:       ref.Stats.EnumStates,
			MasksSkipped:      fast.Stats.MasksSkipped,
			Exported:          len(fast.Exported),
			FrontierInserts:   fast.Stats.FrontierInserts,
			FrontierDrops:     fast.Stats.FrontierDrops,
			FrontierEvictions: fast.Stats.FrontierEvictions,
			FastTime:          fastTime,
			RefTime:           refTime,
			TreeMem:           tree.MemStats(),
			SlimMem:           slim.MemStats(),
		})
	}
	return res, nil
}

// timedOptimize runs one optimizer entry point three times and returns the
// last result with the best wall-clock duration.
func timedOptimize(call func(*optimizer.Analysis, *query.Config, optimizer.Options) (*optimizer.Result, error),
	a *optimizer.Analysis, cfg *query.Config, opt optimizer.Options) (*optimizer.Result, time.Duration, error) {
	var res *optimizer.Result
	best := time.Duration(0)
	for rep := 0; rep < 3; rep++ {
		start := time.Now()
		r, err := call(a, cfg, opt)
		if err != nil {
			return nil, 0, err
		}
		if d := time.Since(start); best == 0 || d < best {
			best = d
		}
		res = r
	}
	return res, best, nil
}

// String renders the enumeration table.
func (r *E6Result) String() string {
	var b strings.Builder
	b.WriteString("E6 connectivity-aware join enumeration (DPccp) vs dense sweep\n")
	b.WriteString("  shape      rels joins  DP states fast/dense   saving  masks skipped  plans      fast call       ref call  speedup   cache tree/slim KB\n")
	for _, row := range r.Rows {
		fmt.Fprintf(&b, "  %-9s  %4d %5d  %9d / %-9d %5.1fx  %13d  %5d  %13v  %13v  %6.1fx  %7.1f / %-7.1f %4.1fx\n",
			row.Shape, row.Rels, row.Joins,
			row.FastStates, row.DenseStates, row.StateSaving(),
			row.MasksSkipped, row.Exported,
			row.FastTime.Round(time.Microsecond), row.RefTime.Round(time.Microsecond),
			row.Speedup(),
			float64(row.TreeMem.TotalBytes())/1024, float64(row.SlimMem.TotalBytes())/1024,
			row.MemSaving())
		fmt.Fprintf(&b, "             frontier %d inserts / %d dominated on arrival / %d evicted;"+
			" entry bytes tree %d vs packed slim %d (%.1fx)\n",
			row.FrontierInserts, row.FrontierDrops, row.FrontierEvictions,
			row.TreeMem.EntryBytes, row.SlimMem.EntryBytes, row.EntrySaving())
	}
	b.WriteString("  (dense sweep: every submask split of every relation subset; DPccp: connected\n")
	b.WriteString("   subgraph/complement pairs only — results are bit-identical either way)\n")
	return b.String()
}

// ---------------------------------------------------------------- util --

func relErr(a, b float64) float64 {
	d := math.Abs(a - b)
	m := math.Max(math.Abs(a), math.Abs(b))
	if m == 0 {
		return 0
	}
	return d / m
}

// SortRowsByQuery orders E3 rows Q1..Q10 (helper for stable output).
func SortRowsByQuery(rows []E3Row) {
	sort.Slice(rows, func(i, j int) bool { return rows[i].Query < rows[j].Query })
}

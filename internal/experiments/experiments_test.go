package experiments

import (
	"strings"
	"testing"
	"time"

	"github.com/pinumdb/pinum/internal/optimizer"
)

func env(t testing.TB) *Env {
	t.Helper()
	e, err := NewEnv(42)
	if err != nil {
		t.Fatal(err)
	}
	return e
}

func TestE1ShapeMatchesPaper(t *testing.T) {
	e := env(t)
	r, err := RunE1(e, 50)
	if err != nil {
		t.Fatal(err)
	}
	t.Log("\n" + r.String())
	if len(r.Rows) < 30 {
		t.Fatalf("only %d trials produced configurations", len(r.Rows))
	}
	// The paper's point: what-if costing is accurate to ~1%, because only
	// internal B-tree pages are unaccounted for.
	if r.AvgError > 0.02 {
		t.Errorf("average what-if error %.2f%% too large (paper: 0.33%%)", 100*r.AvgError)
	}
	if r.MaxError > 0.06 {
		t.Errorf("max what-if error %.2f%% too large (paper: 1.05%%)", 100*r.MaxError)
	}
}

func TestE2ShapeMatchesPaper(t *testing.T) {
	e := env(t)
	r, err := RunE2(e, 60, e.Queries[:6])
	if err != nil {
		t.Fatal(err)
	}
	t.Log("\n" + r.String())
	for _, row := range r.Rows {
		// PINUM's complete cache should essentially match the optimizer.
		if row.PinumAvgErr > 0.01 {
			t.Errorf("%s: PINUM avg error %.2f%% exceeds 1%%", row.Query, 100*row.PinumAvgErr)
		}
		// INUM may err, but not be *better* than PINUM on average.
		if row.InumAvgErr+1e-12 < row.PinumAvgErr {
			t.Errorf("%s: INUM avg error %.4f%% below PINUM %.4f%%",
				row.Query, 100*row.InumAvgErr, 100*row.PinumAvgErr)
		}
	}
}

func TestE3ShapeMatchesPaper(t *testing.T) {
	e := env(t)
	r, err := RunE3(e, e.Queries)
	if err != nil {
		t.Fatal(err)
	}
	t.Log("\n" + r.String())
	// Single-sample build timings below ~1ms are scheduler/allocator noise
	// (the 2-3-table queries routinely flip around 1.0x under parallel test
	// load), so the faster-than-INUM criterion only judges builds above
	// that floor — where the paper's claim lives anyway.
	const noiseFloor = time.Millisecond
	fasterCache, timedRows := 0, 0
	bigQueryBigWin := false
	for _, row := range r.Rows {
		if row.PinumCacheCalls != 2 {
			t.Errorf("%s: PINUM made %d calls, want 2", row.Query, row.PinumCacheCalls)
		}
		if row.InumCacheCalls != 2*row.Combos {
			t.Errorf("%s: INUM made %d calls, want %d", row.Query, row.InumCacheCalls, 2*row.Combos)
		}
		if row.InumCacheTime >= noiseFloor {
			timedRows++
			if row.CacheSpeedup() > 1 {
				fasterCache++
			}
		}
		if row.Tables > 3 && row.CacheSpeedup() >= 10 {
			bigQueryBigWin = true
		}
		// The planner-work counters must be populated for both flavours:
		// every build considers and prunes paths, and multi-table queries
		// perform clause-set lookups during split enumeration.
		for _, pl := range []struct {
			name  string
			stats optimizer.PlannerStats
		}{{"INUM", row.InumPlanner}, {"PINUM", row.PinumPlanner}} {
			if pl.stats.PathsConsidered == 0 || pl.stats.PathsPruned == 0 {
				t.Errorf("%s: %s planner stats empty: %+v", row.Query, pl.name, pl.stats)
			}
			if row.Tables > 1 && pl.stats.ClauseLookups == 0 {
				t.Errorf("%s: %s recorded no clause lookups on a %d-table join", row.Query, pl.name, row.Tables)
			}
		}
	}
	if timedRows < 5 {
		t.Errorf("only %d queries exceeded the %v INUM-build noise floor", timedRows, noiseFloor)
	}
	// One row of slack: a build landing just above the floor can still
	// flip sign from scheduler jitter on a loaded (-race, parallel) runner.
	if fasterCache < timedRows-1 {
		t.Errorf("PINUM cache construction faster on only %d of %d above-noise queries",
			fasterCache, timedRows)
	}
	if !bigQueryBigWin {
		t.Errorf("no >3-table query showed a ≥10x cache-construction speedup")
	}
}

func TestE4ShapeMatchesPaper(t *testing.T) {
	if testing.Short() {
		t.Skip("materialised execution skipped in -short mode")
	}
	e := env(t)
	r, err := RunE4(e, 0.0005, 5)
	if err != nil {
		t.Fatal(err)
	}
	t.Log("\n" + r.String())
	if len(r.Chosen) == 0 {
		t.Fatal("advisor chose no indexes")
	}
	if r.UsedBytes > r.BudgetBytes {
		t.Errorf("advisor exceeded budget: %d > %d", r.UsedBytes, r.BudgetBytes)
	}
	if r.EstSpeedup < 0.5 {
		t.Errorf("estimated workload speedup %.1f%% below 50%% (paper: 95%%)", 100*r.EstSpeedup)
	}
	if r.AvgSpeedup < 0.3 {
		t.Errorf("measured execution speedup %.1f%% below 30%% (paper: 95%%)", 100*r.AvgSpeedup)
	}
	// At least one chosen index should be a covering index on the fact
	// table, the paper's headline outcome.
	foundFact := false
	for _, c := range r.Chosen {
		if strings.HasPrefix(c, "fact(") {
			foundFact = true
		}
	}
	if !foundFact {
		t.Errorf("no fact-table index chosen; got %v", r.Chosen)
	}
}

func TestE5ShapeMatchesPaper(t *testing.T) {
	e := env(t)
	r, err := RunE5(e)
	if err != nil {
		t.Fatal(err)
	}
	t.Log("\n" + r.String())
	if r.Rows[0].Combinations != 648 {
		t.Errorf("Q5 analogue has %d combinations, want 648", r.Rows[0].Combinations)
	}
	if r.Rows[0].RedundantCallFraction < 0.5 {
		t.Errorf("Q5 analogue redundancy %.0f%% below 50%% (paper: 90%%)",
			100*r.Rows[0].RedundantCallFraction)
	}
	if r.TotalUnique >= r.TotalCombos {
		t.Errorf("workload has no redundancy: %d unique of %d combos", r.TotalUnique, r.TotalCombos)
	}
}

func TestE6EnumerationSavings(t *testing.T) {
	e := env(t)
	r, err := RunE6(e)
	if err != nil {
		t.Fatal(err)
	}
	t.Log("\n" + r.String())
	if len(r.Rows) < 6 {
		t.Fatalf("only %d shape rows", len(r.Rows))
	}
	for _, row := range r.Rows {
		if row.FastStates <= 0 || row.DenseStates <= 0 {
			t.Errorf("%s-%d: empty enumeration counters: %+v", row.Shape, row.Rels, row)
		}
		if row.FastStates > row.DenseStates {
			t.Errorf("%s-%d: DPccp visited more states than the dense sweep: %d > %d",
				row.Shape, row.Rels, row.FastStates, row.DenseStates)
		}
		if row.Exported == 0 {
			t.Errorf("%s-%d: no exported plans", row.Shape, row.Rels)
		}
		// On the sparse shapes (everything but the clique) disconnected
		// masks exist and must be skipped.
		if row.Shape != "clique" && row.Rels > 3 && row.MasksSkipped == 0 {
			t.Errorf("%s-%d: no masks skipped on a sparse shape", row.Shape, row.Rels)
		}
		// The acceptance criterion: ≥5x fewer DP states on the 7-chain.
		if row.Shape == "chain" && row.Rels == 7 && row.StateSaving() < 5 {
			t.Errorf("chain-7 state saving %.1fx below 5x (fast %d, dense %d)",
				row.StateSaving(), row.FastStates, row.DenseStates)
		}
	}
	// The clique's subsets are all connected: nothing to skip, and the
	// enumeration degenerates to the dense sweep's state count.
	for _, row := range r.Rows {
		if row.Shape == "clique" && row.MasksSkipped != 0 {
			t.Errorf("clique-%d skipped %d masks, want 0", row.Rels, row.MasksSkipped)
		}
		if row.Shape == "clique" && row.FastStates != row.DenseStates {
			t.Errorf("clique-%d: fast %d states != dense %d", row.Rels, row.FastStates, row.DenseStates)
		}
	}
}

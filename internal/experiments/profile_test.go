package experiments

import (
	"testing"
	"time"

	"github.com/pinumdb/pinum/internal/inum"
	"github.com/pinumdb/pinum/internal/optimizer"
	"github.com/pinumdb/pinum/internal/whatif"
)

// TestProfileExportModes logs how the two PINUM export calls (with and
// without nested loops) split the construction time on the widest query.
func TestProfileExportModes(t *testing.T) {
	if testing.Short() {
		t.Skip("profiling log")
	}
	e := env(t)
	for _, q := range []int{8, 9} {
		qq := e.Queries[q]
		a, err := e.analysis(qq)
		if err != nil {
			t.Fatal(err)
		}
		ws := whatif.NewSession(e.Star.Catalog)
		cfg, err := inum.AllOrdersConfig(a, ws)
		if err != nil {
			t.Fatal(err)
		}
		for _, opts := range []optimizer.Options{
			{ExportAll: true},
			{ExportAll: true, EnableNestLoop: true},
			{ExportAll: true, EnableNestLoop: true, PaperPrune: true},
			{ExportAll: true, EnableNestLoop: true, PreciseNLJ: true},
		} {
			start := time.Now()
			res, err := optimizer.Optimize(a, cfg, opts)
			if err != nil {
				t.Fatal(err)
			}
			t.Logf("%s (%d tables, %d combos) nlj=%v paper=%v precise=%v: %v, %d exported, %d considered",
				qq.Name, len(qq.Rels), qq.ComboCount(), opts.EnableNestLoop, opts.PaperPrune, opts.PreciseNLJ,
				time.Since(start).Round(time.Millisecond),
				len(res.Exported), res.Stats.PathsConsidered)
		}
	}
}

package executor

import (
	"fmt"
	"sort"
	"testing"

	"github.com/pinumdb/pinum/internal/data"
	"github.com/pinumdb/pinum/internal/optimizer"
	"github.com/pinumdb/pinum/internal/query"
	"github.com/pinumdb/pinum/internal/whatif"
	"github.com/pinumdb/pinum/internal/workload"
)

// tinyDB materialises the star schema at a very small scale.
func tinyDB(t testing.TB) (*workload.Star, *data.Database) {
	t.Helper()
	s, err := workload.StarSchema(0.0002) // fact ≈ 7000 rows
	if err != nil {
		t.Fatal(err)
	}
	db, err := data.Materialize(s.Catalog, 1234)
	if err != nil {
		t.Fatal(err)
	}
	return s, db
}

func TestJoinMethodsAgree(t *testing.T) {
	s, db := tinyDB(t)
	qs, err := s.Queries(42)
	if err != nil {
		t.Fatal(err)
	}
	for _, q := range qs[:5] {
		q := q
		t.Run(q.Name, func(t *testing.T) {
			a, err := optimizer.NewAnalysis(q, s.Stats, optimizer.DefaultCostParams())
			if err != nil {
				t.Fatal(err)
			}
			ws := whatif.NewSession(s.Catalog)
			// Configuration with a covering index per table so index
			// scans and nested loops appear in some plans.
			cfg := &query.Config{}
			for i := range a.Rels {
				cols := []string{}
				for c := range a.Rels[i].Needed {
					cols = append(cols, c)
				}
				sort.Strings(cols)
				if len(cols) == 0 {
					continue
				}
				ix, err := ws.CreateIndex(a.Rels[i].Table.Name, cols...)
				if err != nil {
					t.Fatal(err)
				}
				cfg.Indexes = append(cfg.Indexes, ix)
			}

			var reference [][]int64
			for variant, opts := range map[string]struct {
				cfg *query.Config
				o   optimizer.Options
			}{
				"noindex-nonlj": {nil, optimizer.Options{}},
				"noindex-nlj":   {nil, optimizer.Options{EnableNestLoop: true}},
				"indexed-nonlj": {cfg, optimizer.Options{}},
				"indexed-nlj":   {cfg, optimizer.Options{EnableNestLoop: true}},
			} {
				res, err := optimizer.Optimize(a, opts.cfg, opts.o)
				if err != nil {
					t.Fatalf("%s: %v", variant, err)
				}
				ex := New(db, q)
				rs, err := ex.Run(res.Best)
				if err != nil {
					t.Fatalf("%s: run: %v\nplan:\n%s", variant, err, optimizer.Explain(res.Best, q))
				}
				got := canonical(rs.Project())
				if reference == nil {
					reference = got
					continue
				}
				if err := equalRows(reference, got); err != nil {
					t.Fatalf("%s: results differ: %v\nplan:\n%s", variant, err, optimizer.Explain(res.Best, q))
				}
			}
		})
	}
}

// canonical sorts projected rows lexicographically so result multisets can
// be compared across plans with different output orders.
func canonical(rows [][]int64) [][]int64 {
	sort.Slice(rows, func(i, j int) bool {
		a, b := rows[i], rows[j]
		for k := range a {
			if a[k] != b[k] {
				return a[k] < b[k]
			}
		}
		return false
	})
	return rows
}

func equalRows(a, b [][]int64) error {
	if len(a) != len(b) {
		return fmt.Errorf("row count %d vs %d", len(a), len(b))
	}
	for i := range a {
		for k := range a[i] {
			if a[i][k] != b[i][k] {
				return fmt.Errorf("row %d differs: %v vs %v", i, a[i], b[i])
			}
		}
	}
	return nil
}

// TestOrderByRespected checks that the executed plan delivers rows in the
// query's requested order.
func TestOrderByRespected(t *testing.T) {
	s, db := tinyDB(t)
	qs, err := s.Queries(42)
	if err != nil {
		t.Fatal(err)
	}
	for _, q := range qs[:4] {
		if len(q.OrderBy) == 0 {
			continue
		}
		a, err := optimizer.NewAnalysis(q, s.Stats, optimizer.DefaultCostParams())
		if err != nil {
			t.Fatal(err)
		}
		res, err := optimizer.Optimize(a, nil, optimizer.Options{EnableNestLoop: true})
		if err != nil {
			t.Fatal(err)
		}
		ex := New(db, q)
		rs, err := ex.Run(res.Best)
		if err != nil {
			t.Fatalf("%s: %v", q.Name, err)
		}
		pos, err := ex.colPos(res.Best.Rels, q.OrderBy[0])
		if err != nil {
			t.Fatalf("%s: %v", q.Name, err)
		}
		for i := 1; i < len(rs.Rows); i++ {
			if rs.Rows[i-1][pos] > rs.Rows[i][pos] {
				t.Fatalf("%s: rows out of order at %d", q.Name, i)
			}
		}
	}
}

// Package executor runs optimizer plan trees against a materialised
// database: sequential and index scans, sorts, hash/merge/nested-loop
// joins, and grouping. It exists so the index-selection experiment can
// measure *actual* query executions with and without the advisor's indexes
// (paper Fig. 7), and so tests can check that every join method computes
// the same result.
package executor

import (
	"fmt"
	"sort"

	"github.com/pinumdb/pinum/internal/btree"
	"github.com/pinumdb/pinum/internal/data"
	"github.com/pinumdb/pinum/internal/heap"
	"github.com/pinumdb/pinum/internal/optimizer"
	"github.com/pinumdb/pinum/internal/query"
)

// Executor evaluates plans for one query against one database.
type Executor struct {
	DB *data.Database
	Q  *query.Query

	// Stats accumulates over Run calls.
	Stats Stats
}

// Stats counts executor work.
type Stats struct {
	RowsScanned int64
	IndexProbes int64
	RowsEmitted int64
}

// ResultSet is a materialised query result with its row layout.
type ResultSet struct {
	Rows [][]int64
	// layout maps relation index → offset of that relation's first column
	// in each row.
	layout map[int]int
	q      *query.Query
}

// New returns an executor for q over db.
func New(db *data.Database, q *query.Query) *Executor {
	return &Executor{DB: db, Q: q}
}

// Run executes the plan tree and returns the result set.
func (e *Executor) Run(p *optimizer.Path) (*ResultSet, error) {
	rows, err := e.exec(p)
	if err != nil {
		return nil, err
	}
	e.Stats.RowsEmitted += int64(len(rows))
	return &ResultSet{Rows: rows, layout: e.layout(p.Rels), q: e.Q}, nil
}

// layout assigns each relation of the set a column offset, ascending by
// relation index; every operator materialises rows in this canonical
// layout so sibling subplans compose regardless of join order.
func (e *Executor) layout(set optimizer.RelSet) map[int]int {
	off := 0
	m := make(map[int]int)
	for _, rel := range set.Members() {
		m[rel] = off
		off += len(e.Q.Rels[rel].Table.Columns)
	}
	return m
}

func (e *Executor) width(set optimizer.RelSet) int {
	w := 0
	for _, rel := range set.Members() {
		w += len(e.Q.Rels[rel].Table.Columns)
	}
	return w
}

// colPos returns the column's offset within rows of the given set layout.
func (e *Executor) colPos(set optimizer.RelSet, c query.ColRef) (int, error) {
	if !set.Has(c.Rel) {
		return 0, fmt.Errorf("executor: column %s not available in relation set", c)
	}
	ord := e.Q.Rels[c.Rel].Table.ColumnOrdinal(c.Column)
	if ord < 0 {
		return 0, fmt.Errorf("executor: unknown column %s", c)
	}
	return e.layout(set)[c.Rel] + ord, nil
}

func (e *Executor) exec(p *optimizer.Path) ([][]int64, error) {
	switch p.Op {
	case optimizer.OpSeqScan:
		return e.seqScan(p)
	case optimizer.OpIndexScan, optimizer.OpIndexOnlyScan:
		return e.indexScan(p)
	case optimizer.OpSort:
		return e.sortNode(p)
	case optimizer.OpHashJoin:
		return e.hashJoin(p)
	case optimizer.OpMergeJoin:
		return e.mergeJoin(p)
	case optimizer.OpNestLoop:
		return e.nestLoop(p)
	case optimizer.OpNestLoopMat:
		return e.nestLoopMat(p)
	case optimizer.OpHashAgg, optimizer.OpSortedAgg:
		return e.aggregate(p)
	default:
		return nil, fmt.Errorf("executor: unsupported operator %s", p.Op)
	}
}

// filtersFor returns the query's filters on one relation.
func (e *Executor) filtersFor(rel int) []query.Filter {
	var out []query.Filter
	for _, f := range e.Q.Filters {
		if f.Col.Rel == rel {
			out = append(out, f)
		}
	}
	return out
}

func passes(v int64, f query.Filter) bool {
	switch f.Op {
	case query.Eq:
		return v == f.Value
	case query.Lt:
		return v < f.Value
	case query.Le:
		return v <= f.Value
	case query.Gt:
		return v > f.Value
	case query.Ge:
		return v >= f.Value
	case query.Between:
		return v >= f.Value && v <= f.Value2
	default:
		return false
	}
}

func (e *Executor) seqScan(p *optimizer.Path) ([][]int64, error) {
	rel := p.BaseRel
	t := e.Q.Rels[rel].Table
	f := e.DB.Tables[t.Name]
	if f == nil {
		return nil, fmt.Errorf("executor: table %s not materialised", t.Name)
	}
	filters := e.filtersFor(rel)
	ords := make([]int, len(filters))
	for i, fl := range filters {
		ords[i] = t.ColumnOrdinal(fl.Col.Column)
	}
	var out [][]int64
	f.Scan(func(_ heap.TID, row []int64) bool {
		e.Stats.RowsScanned++
		for i, fl := range filters {
			if !passes(row[ords[i]], fl) {
				return true
			}
		}
		out = append(out, append([]int64(nil), row...))
		return true
	})
	return out, nil
}

// indexScan executes an ordered or plain index scan: range bounds come from
// the query's filters on the index's leading column; remaining filters are
// applied after the heap fetch. Index-only scans materialise only the
// indexed columns (everything the query needs from the relation).
func (e *Executor) indexScan(p *optimizer.Path) ([][]int64, error) {
	rel := p.BaseRel
	t := e.Q.Rels[rel].Table
	hf := e.DB.Tables[t.Name]
	if hf == nil {
		return nil, fmt.Errorf("executor: table %s not materialised", t.Name)
	}
	if p.Index == nil {
		return nil, fmt.Errorf("executor: index scan on %s without an index", t.Name)
	}
	tree, err := e.DB.IndexFor(p.Index)
	if err != nil {
		return nil, err
	}
	lead := p.Index.LeadColumn()
	var lo, hi []int64
	filters := e.filtersFor(rel)
	rest := filters[:0:0]
	for _, fl := range filters {
		if fl.Col.Column == lead {
			l, h, exact := filterBounds(fl)
			if exact {
				lo, hi = []int64{l}, []int64{h}
				continue
			}
		}
		rest = append(rest, fl)
	}
	ords := make([]int, len(rest))
	for i, fl := range rest {
		ords[i] = t.ColumnOrdinal(fl.Col.Column)
	}

	indexOnly := p.Op == optimizer.OpIndexOnlyScan
	keyOrds := make([]int, len(p.Index.Columns))
	for i, col := range p.Index.Columns {
		keyOrds[i] = t.ColumnOrdinal(col)
	}

	var out [][]int64
	buf := make([]int64, len(t.Columns))
	tree.Scan(lo, hi, func(en btree.Entry) bool {
		e.Stats.IndexProbes++
		row := make([]int64, len(t.Columns))
		if indexOnly {
			for i, o := range keyOrds {
				row[o] = en.Key[i]
			}
		} else {
			got, err := hf.Get(en.TID, buf)
			if err != nil {
				return false
			}
			copy(row, got)
		}
		for i, fl := range rest {
			if !passes(row[ords[i]], fl) {
				return true
			}
		}
		out = append(out, row)
		return true
	})
	return out, nil
}

// filterBounds converts a filter on the index lead column into inclusive
// key bounds. exact=false means the filter cannot be expressed as a range
// (never happens with the supported operators).
func filterBounds(f query.Filter) (lo, hi int64, exact bool) {
	const minK, maxK = int64(-1 << 62), int64(1<<62 - 1)
	switch f.Op {
	case query.Eq:
		return f.Value, f.Value, true
	case query.Lt:
		return minK, f.Value - 1, true
	case query.Le:
		return minK, f.Value, true
	case query.Gt:
		return f.Value + 1, maxK, true
	case query.Ge:
		return f.Value, maxK, true
	case query.Between:
		return f.Value, f.Value2, true
	default:
		return 0, 0, false
	}
}

func (e *Executor) sortNode(p *optimizer.Path) ([][]int64, error) {
	rows, err := e.exec(p.Child)
	if err != nil {
		return nil, err
	}
	pos := make([]int, len(p.SortKeys))
	for i, k := range p.SortKeys {
		pp, err := e.colPos(p.Rels, k)
		if err != nil {
			return nil, err
		}
		pos[i] = pp
	}
	sort.SliceStable(rows, func(i, j int) bool {
		for _, pp := range pos {
			if rows[i][pp] != rows[j][pp] {
				return rows[i][pp] < rows[j][pp]
			}
		}
		return false
	})
	return rows, nil
}

// crossingClauses lists the query's join clauses with one side in each set,
// oriented as (outer column, inner column).
func (e *Executor) crossingClauses(outer, inner optimizer.RelSet) [][2]query.ColRef {
	var out [][2]query.ColRef
	for _, j := range e.Q.Joins {
		switch {
		case outer.Has(j.Left.Rel) && inner.Has(j.Right.Rel):
			out = append(out, [2]query.ColRef{j.Left, j.Right})
		case outer.Has(j.Right.Rel) && inner.Has(j.Left.Rel):
			out = append(out, [2]query.ColRef{j.Right, j.Left})
		}
	}
	return out
}

// combine merges an outer row and inner row into the canonical layout of
// the joined set.
func (e *Executor) combine(joined optimizer.RelSet, outerSet optimizer.RelSet, outerRow []int64, innerSet optimizer.RelSet, innerRow []int64) []int64 {
	out := make([]int64, e.width(joined))
	dst := e.layout(joined)
	oSrc := e.layout(outerSet)
	for rel, off := range oSrc {
		n := len(e.Q.Rels[rel].Table.Columns)
		copy(out[dst[rel]:dst[rel]+n], outerRow[off:off+n])
	}
	iSrc := e.layout(innerSet)
	for rel, off := range iSrc {
		n := len(e.Q.Rels[rel].Table.Columns)
		copy(out[dst[rel]:dst[rel]+n], innerRow[off:off+n])
	}
	return out
}

func (e *Executor) hashJoin(p *optimizer.Path) ([][]int64, error) {
	outerRows, err := e.exec(p.Outer)
	if err != nil {
		return nil, err
	}
	innerRows, err := e.exec(p.Inner)
	if err != nil {
		return nil, err
	}
	clauses := e.crossingClauses(p.Outer.Rels, p.Inner.Rels)
	if len(clauses) == 0 {
		return nil, fmt.Errorf("executor: hash join without clauses")
	}
	oPos := make([]int, len(clauses))
	iPos := make([]int, len(clauses))
	for k, cl := range clauses {
		if oPos[k], err = e.colPos(p.Outer.Rels, cl[0]); err != nil {
			return nil, err
		}
		if iPos[k], err = e.colPos(p.Inner.Rels, cl[1]); err != nil {
			return nil, err
		}
	}
	table := make(map[string][][]int64, len(innerRows))
	keyOf := func(row []int64, pos []int) string {
		b := make([]byte, 0, len(pos)*9)
		for _, pp := range pos {
			v := row[pp]
			for s := 0; s < 64; s += 8 {
				b = append(b, byte(v>>uint(s)))
			}
			b = append(b, ':')
		}
		return string(b)
	}
	for _, ir := range innerRows {
		k := keyOf(ir, iPos)
		table[k] = append(table[k], ir)
	}
	var out [][]int64
	for _, or := range outerRows {
		for _, ir := range table[keyOf(or, oPos)] {
			out = append(out, e.combine(p.Rels, p.Outer.Rels, or, p.Inner.Rels, ir))
		}
	}
	return out, nil
}

func (e *Executor) mergeJoin(p *optimizer.Path) ([][]int64, error) {
	outerRows, err := e.exec(p.Outer)
	if err != nil {
		return nil, err
	}
	innerRows, err := e.exec(p.Inner)
	if err != nil {
		return nil, err
	}
	j := p.JoinClause
	oc, ic := j.Left, j.Right
	if !p.Outer.Rels.Has(oc.Rel) {
		oc, ic = ic, oc
	}
	oPos, err := e.colPos(p.Outer.Rels, oc)
	if err != nil {
		return nil, err
	}
	iPos, err := e.colPos(p.Inner.Rels, ic)
	if err != nil {
		return nil, err
	}
	// The inputs arrive sorted on the merge columns by construction; sort
	// defensively anyway to keep the executor robust to any plan shape.
	ensureSorted(outerRows, oPos)
	ensureSorted(innerRows, iPos)

	residual := e.residualClauses(p)

	var out [][]int64
	i := 0
	for o := 0; o < len(outerRows); {
		ov := outerRows[o][oPos]
		for i < len(innerRows) && innerRows[i][iPos] < ov {
			i++
		}
		j := i
		for j < len(innerRows) && innerRows[j][iPos] == ov {
			j++
		}
		for oo := o; oo < len(outerRows) && outerRows[oo][oPos] == ov; oo++ {
			for ii := i; ii < j; ii++ {
				row := e.combine(p.Rels, p.Outer.Rels, outerRows[oo], p.Inner.Rels, innerRows[ii])
				if e.passesResidual(row, p.Rels, residual) {
					out = append(out, row)
				}
			}
		}
		for o < len(outerRows) && outerRows[o][oPos] == ov {
			o++
		}
	}
	return out, nil
}

// residualClauses returns the crossing clauses other than the plan's
// driving clause (applied as filters after pairing).
func (e *Executor) residualClauses(p *optimizer.Path) [][2]query.ColRef {
	var out [][2]query.ColRef
	for _, cl := range e.crossingClauses(p.Outer.Rels, p.Inner.Rels) {
		if (cl[0] == p.JoinClause.Left && cl[1] == p.JoinClause.Right) ||
			(cl[0] == p.JoinClause.Right && cl[1] == p.JoinClause.Left) {
			continue
		}
		out = append(out, cl)
	}
	return out
}

func (e *Executor) passesResidual(row []int64, set optimizer.RelSet, clauses [][2]query.ColRef) bool {
	for _, cl := range clauses {
		a, err1 := e.colPos(set, cl[0])
		b, err2 := e.colPos(set, cl[1])
		if err1 != nil || err2 != nil {
			return false
		}
		if row[a] != row[b] {
			return false
		}
	}
	return true
}

func ensureSorted(rows [][]int64, pos int) {
	if sort.SliceIsSorted(rows, func(i, j int) bool { return rows[i][pos] < rows[j][pos] }) {
		return
	}
	sort.SliceStable(rows, func(i, j int) bool { return rows[i][pos] < rows[j][pos] })
}

// nestLoop executes an indexed nested loop: probe the inner relation's
// index once per outer row.
func (e *Executor) nestLoop(p *optimizer.Path) ([][]int64, error) {
	outerRows, err := e.exec(p.Outer)
	if err != nil {
		return nil, err
	}
	innerRel := p.Inner.BaseRel
	t := e.Q.Rels[innerRel].Table
	hf := e.DB.Tables[t.Name]
	if hf == nil {
		return nil, fmt.Errorf("executor: table %s not materialised", t.Name)
	}
	tree, err := e.DB.IndexFor(p.Inner.Index)
	if err != nil {
		return nil, err
	}
	j := p.JoinClause
	oc, ic := j.Left, j.Right
	if !p.Outer.Rels.Has(oc.Rel) {
		oc, ic = ic, oc
	}
	if ic.Column != p.Inner.Index.LeadColumn() {
		return nil, fmt.Errorf("executor: nested-loop index %s does not lead on join column %s",
			p.Inner.Index.Name, ic.Column)
	}
	oPos, err := e.colPos(p.Outer.Rels, oc)
	if err != nil {
		return nil, err
	}
	filters := e.filtersFor(innerRel)
	ords := make([]int, len(filters))
	for i, fl := range filters {
		ords[i] = t.ColumnOrdinal(fl.Col.Column)
	}
	residual := e.residualClauses(p)

	var out [][]int64
	buf := make([]int64, len(t.Columns))
	for _, or := range outerRows {
		v := or[oPos]
		tree.Probe([]int64{v}, func(en btree.Entry) bool {
			e.Stats.IndexProbes++
			got, err := hf.Get(en.TID, buf)
			if err != nil {
				return false
			}
			for i, fl := range filters {
				if !passes(got[ords[i]], fl) {
					return true
				}
			}
			row := e.combine(p.Rels, p.Outer.Rels, or, p.Inner.Rels, got)
			if e.passesResidual(row, p.Rels, residual) {
				out = append(out, row)
			}
			return true
		})
	}
	return out, nil
}

// nestLoopMat executes a nested loop over a materialised inner.
func (e *Executor) nestLoopMat(p *optimizer.Path) ([][]int64, error) {
	outerRows, err := e.exec(p.Outer)
	if err != nil {
		return nil, err
	}
	innerRows, err := e.exec(p.Inner)
	if err != nil {
		return nil, err
	}
	clauses := e.crossingClauses(p.Outer.Rels, p.Inner.Rels)
	var out [][]int64
	for _, or := range outerRows {
		for _, ir := range innerRows {
			match := true
			for _, cl := range clauses {
				a, err1 := e.colPos(p.Outer.Rels, cl[0])
				b, err2 := e.colPos(p.Inner.Rels, cl[1])
				if err1 != nil || err2 != nil {
					return nil, fmt.Errorf("executor: bad clause in nested loop")
				}
				if or[a] != ir[b] {
					match = false
					break
				}
			}
			if match {
				out = append(out, e.combine(p.Rels, p.Outer.Rels, or, p.Inner.Rels, ir))
			}
		}
	}
	return out, nil
}

// aggregate deduplicates rows by the query's grouping columns, keeping the
// first row of each group (the engine models grouping cardinality, not
// aggregate functions).
func (e *Executor) aggregate(p *optimizer.Path) ([][]int64, error) {
	rows, err := e.exec(p.Child)
	if err != nil {
		return nil, err
	}
	pos := make([]int, len(e.Q.GroupBy))
	for i, g := range e.Q.GroupBy {
		pp, err := e.colPos(p.Rels, g)
		if err != nil {
			return nil, err
		}
		pos[i] = pp
	}
	seen := make(map[string]bool, len(rows))
	var out [][]int64
	for _, r := range rows {
		b := make([]byte, 0, len(pos)*9)
		for _, pp := range pos {
			v := r[pp]
			for s := 0; s < 64; s += 8 {
				b = append(b, byte(v>>uint(s)))
			}
			b = append(b, ':')
		}
		k := string(b)
		if !seen[k] {
			seen[k] = true
			out = append(out, r)
		}
	}
	// Sorted aggregation preserves its input order; hash aggregation does
	// not promise one. Keeping arrival order satisfies both.
	return out, nil
}

// Project reduces the result to the query's select list, in select order.
func (r *ResultSet) Project() [][]int64 {
	pos := make([]int, len(r.q.Select))
	for i, c := range r.q.Select {
		pos[i] = r.layout[c.Rel] + r.q.Rels[c.Rel].Table.ColumnOrdinal(c.Column)
	}
	out := make([][]int64, len(r.Rows))
	for i, row := range r.Rows {
		pr := make([]int64, len(pos))
		for k, pp := range pos {
			pr[k] = row[pp]
		}
		out[i] = pr
	}
	return out
}

package executor

import (
	"sort"
	"testing"

	"github.com/pinumdb/pinum/internal/optimizer"
	"github.com/pinumdb/pinum/internal/query"
	"github.com/pinumdb/pinum/internal/whatif"
)

func TestDebugIndexScanVsSeqScan(t *testing.T) {
	s, db := tinyDB(t)
	qs, err := s.Queries(42)
	if err != nil {
		t.Fatal(err)
	}
	q := qs[1] // Q2
	t.Logf("SQL: %s", q.SQL)
	a, err := optimizer.NewAnalysis(q, s.Stats, optimizer.DefaultCostParams())
	if err != nil {
		t.Fatal(err)
	}
	ws := whatif.NewSession(s.Catalog)
	// Per-relation: compare seq scan result vs index(-only) scan result.
	for i := range a.Rels {
		ri := &a.Rels[i]
		cols := []string{}
		for c := range ri.Needed {
			cols = append(cols, c)
		}
		sort.Strings(cols)
		ix, err := ws.CreateIndex(ri.Table.Name, cols...)
		if err != nil {
			t.Fatal(err)
		}
		ex := New(db, q)
		seqPath := &optimizer.Path{Op: optimizer.OpSeqScan, Rels: optimizer.Single(i), BaseRel: i}
		seqRows, err := ex.exec(seqPath)
		if err != nil {
			t.Fatal(err)
		}
		ixPath := &optimizer.Path{Op: optimizer.OpIndexOnlyScan, Rels: optimizer.Single(i), BaseRel: i, Index: ix}
		ixRows, err := ex.exec(ixPath)
		if err != nil {
			t.Fatal(err)
		}
		t.Logf("rel %d (%s): seq=%d rows, indexonly=%d rows (index %v)",
			i, ri.Table.Name, len(seqRows), len(ixRows), ix.Columns)
		// Compare the needed columns only.
		proj := func(rows [][]int64) [][]int64 {
			var out [][]int64
			for _, r := range rows {
				pr := make([]int64, 0, len(cols))
				for _, c := range cols {
					pr = append(pr, r[ri.Table.ColumnOrdinal(c)])
				}
				out = append(out, pr)
			}
			return canonical(out)
		}
		if err := equalRows(proj(seqRows), proj(ixRows)); err != nil {
			t.Errorf("rel %d (%s): %v", i, ri.Table.Name, err)
		}
	}
	_ = query.Config{}
}

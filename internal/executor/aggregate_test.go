package executor

import (
	"sort"
	"testing"

	"github.com/pinumdb/pinum/internal/heap"
	"github.com/pinumdb/pinum/internal/optimizer"
	"github.com/pinumdb/pinum/internal/query"
	"github.com/pinumdb/pinum/internal/storage"
)

// TestAggregationMatchesBruteForce checks grouping correctness against a
// direct computation of the distinct group-key set from the base data.
func TestAggregationMatchesBruteForce(t *testing.T) {
	s, db := tinyDB(t)
	qs, err := s.Queries(42)
	if err != nil {
		t.Fatal(err)
	}
	for _, q := range qs {
		if len(q.GroupBy) == 0 {
			continue
		}
		a, err := optimizer.NewAnalysis(q, s.Stats, optimizer.DefaultCostParams())
		if err != nil {
			t.Fatal(err)
		}
		res, err := optimizer.Optimize(a, nil, optimizer.Options{EnableNestLoop: true})
		if err != nil {
			t.Fatal(err)
		}
		ex := New(db, q)
		rs, err := ex.Run(res.Best)
		if err != nil {
			t.Fatalf("%s: %v", q.Name, err)
		}

		// Brute force: execute the same query without the aggregation
		// node and count distinct group keys.
		noAgg := res.Best
		for noAgg.Op == optimizer.OpSort {
			noAgg = noAgg.Child
		}
		if noAgg.Op != optimizer.OpHashAgg && noAgg.Op != optimizer.OpSortedAgg {
			t.Fatalf("%s: expected aggregation at plan root, got %s", q.Name, noAgg.Op)
		}
		ex2 := New(db, q)
		raw, err := ex2.Run(noAgg.Child)
		if err != nil {
			t.Fatal(err)
		}
		pos := make([]int, len(q.GroupBy))
		for i, g := range q.GroupBy {
			pp, err := ex2.colPos(noAgg.Child.Rels, g)
			if err != nil {
				t.Fatal(err)
			}
			pos[i] = pp
		}
		distinct := make(map[string]bool)
		for _, r := range raw.Rows {
			key := ""
			for _, pp := range pos {
				key += "," + itoa(r[pp])
			}
			distinct[key] = true
		}
		if len(rs.Rows) != len(distinct) {
			t.Errorf("%s: aggregation produced %d groups, brute force %d",
				q.Name, len(rs.Rows), len(distinct))
		}
	}
}

func itoa(v int64) string {
	if v == 0 {
		return "0"
	}
	neg := v < 0
	if neg {
		v = -v
	}
	var buf [20]byte
	i := len(buf)
	for v > 0 {
		i--
		buf[i] = byte('0' + v%10)
		v /= 10
	}
	if neg {
		i--
		buf[i] = '-'
	}
	return string(buf[i:])
}

// TestFilterOperatorsExecute pins every comparison operator against a
// brute-force scan.
func TestFilterOperatorsExecute(t *testing.T) {
	s, db := tinyDB(t)
	fact := s.Catalog.Table("fact")
	f := db.Tables["fact"]
	ord := fact.ColumnOrdinal("a1")
	ops := []struct {
		op     query.CmpOp
		v, v2  int64
		accept func(int64) bool
	}{
		{query.Eq, 500, 0, func(x int64) bool { return x == 500 }},
		{query.Lt, 5000, 0, func(x int64) bool { return x < 5000 }},
		{query.Le, 5000, 0, func(x int64) bool { return x <= 5000 }},
		{query.Gt, 90000, 0, func(x int64) bool { return x > 90000 }},
		{query.Ge, 90000, 0, func(x int64) bool { return x >= 90000 }},
		{query.Between, 100, 2000, func(x int64) bool { return x >= 100 && x <= 2000 }},
	}
	for _, c := range ops {
		q := &query.Query{
			Name:    "f" + c.op.String(),
			Rels:    []query.Rel{{Table: fact}},
			Filters: []query.Filter{{Col: query.ColRef{Rel: 0, Column: "a1"}, Op: c.op, Value: c.v, Value2: c.v2}},
			Select:  []query.ColRef{{Rel: 0, Column: "a1"}},
		}
		if err := q.Validate(); err != nil {
			t.Fatal(err)
		}
		ex := New(db, q)
		rows, err := ex.exec(&optimizer.Path{Op: optimizer.OpSeqScan, Rels: optimizer.Single(0), BaseRel: 0})
		if err != nil {
			t.Fatal(err)
		}
		want := 0
		f.Scan(func(_ heap.TID, row []int64) bool {
			if c.accept(row[ord]) {
				want++
			}
			return true
		})
		if len(rows) != want {
			t.Errorf("op %s: got %d rows, want %d", c.op, len(rows), want)
		}
	}
}

// TestIndexScanRangeEqualsSeqScanFilter compares an index range scan
// against a filtered sequential scan on every bound type.
func TestIndexScanRangeEqualsSeqScanFilter(t *testing.T) {
	s, db := tinyDB(t)
	fact := s.Catalog.Table("fact")
	for _, op := range []query.CmpOp{query.Eq, query.Lt, query.Gt, query.Between} {
		q := &query.Query{
			Name:    "rng",
			Rels:    []query.Rel{{Table: fact}},
			Filters: []query.Filter{{Col: query.ColRef{Rel: 0, Column: "a2"}, Op: op, Value: 40000, Value2: 60000}},
			Select:  []query.ColRef{{Rel: 0, Column: "a2"}, {Rel: 0, Column: "m1"}},
		}
		if err := q.Validate(); err != nil {
			t.Fatal(err)
		}
		ix := storage.HypotheticalIndex("rng_ix_"+op.String(), fact, []string{"a2", "m1"})
		ex := New(db, q)
		seq, err := ex.exec(&optimizer.Path{Op: optimizer.OpSeqScan, Rels: optimizer.Single(0), BaseRel: 0})
		if err != nil {
			t.Fatal(err)
		}
		ixRows, err := ex.exec(&optimizer.Path{Op: optimizer.OpIndexScan, Rels: optimizer.Single(0), BaseRel: 0, Index: ix})
		if err != nil {
			t.Fatal(err)
		}
		if len(seq) != len(ixRows) {
			t.Errorf("op %s: seq %d rows, index %d rows", op, len(seq), len(ixRows))
		}
		proj := func(rows [][]int64) [][]int64 {
			out := make([][]int64, len(rows))
			a2 := fact.ColumnOrdinal("a2")
			m1 := fact.ColumnOrdinal("m1")
			for i, r := range rows {
				out[i] = []int64{r[a2], r[m1]}
			}
			sort.Slice(out, func(i, j int) bool {
				if out[i][0] != out[j][0] {
					return out[i][0] < out[j][0]
				}
				return out[i][1] < out[j][1]
			})
			return out
		}
		if err := equalRows(proj(seq), proj(ixRows)); err != nil {
			t.Errorf("op %s: %v", op, err)
		}
	}
}

package sql

import (
	"fmt"
	"strconv"
)

// Parser is a recursive-descent parser over a token stream.
type Parser struct {
	toks []Token
	pos  int
	src  string
}

// Parse parses one SELECT statement.
func Parse(src string) (*SelectStmt, error) {
	toks, err := Tokenize(src)
	if err != nil {
		return nil, err
	}
	p := &Parser{toks: toks, src: src}
	stmt, err := p.parseSelect()
	if err != nil {
		return nil, err
	}
	if !p.at(TokEOF) {
		return nil, p.errorf("unexpected trailing input starting with %s", p.cur().Kind)
	}
	stmt.Text = src
	return stmt, nil
}

func (p *Parser) cur() Token { return p.toks[p.pos] }

func (p *Parser) at(k TokenKind) bool { return p.cur().Kind == k }

func (p *Parser) atKeyword(kw string) bool {
	t := p.cur()
	return t.Kind == TokKeyword && t.Text == kw
}

func (p *Parser) advance() Token {
	t := p.toks[p.pos]
	if t.Kind != TokEOF {
		p.pos++
	}
	return t
}

func (p *Parser) expectKeyword(kw string) error {
	if !p.atKeyword(kw) {
		return p.errorf("expected %s, found %s", kw, p.describe())
	}
	p.advance()
	return nil
}

func (p *Parser) describe() string {
	t := p.cur()
	if t.Kind == TokEOF {
		return "end of input"
	}
	return fmt.Sprintf("%q", t.Text)
}

func (p *Parser) errorf(format string, args ...interface{}) error {
	return fmt.Errorf("sql: parse error at offset %d: %s", p.cur().Pos, fmt.Sprintf(format, args...))
}

func (p *Parser) parseSelect() (*SelectStmt, error) {
	if err := p.expectKeyword("SELECT"); err != nil {
		return nil, err
	}
	stmt := &SelectStmt{}
	if p.atKeyword("DISTINCT") {
		p.advance()
		stmt.Distinct = true
	}
	if p.at(TokStar) {
		p.advance()
		stmt.Star = true
	} else {
		cols, err := p.parseColumnList()
		if err != nil {
			return nil, err
		}
		stmt.Columns = cols
	}
	if err := p.expectKeyword("FROM"); err != nil {
		return nil, err
	}
	from, err := p.parseFromList()
	if err != nil {
		return nil, err
	}
	stmt.From = from

	if p.atKeyword("WHERE") {
		p.advance()
		preds, err := p.parseConjuncts()
		if err != nil {
			return nil, err
		}
		stmt.Where = preds
	}
	if p.atKeyword("GROUP") {
		p.advance()
		if err := p.expectKeyword("BY"); err != nil {
			return nil, err
		}
		cols, err := p.parseColumnList()
		if err != nil {
			return nil, err
		}
		stmt.GroupBy = cols
	}
	if p.atKeyword("ORDER") {
		p.advance()
		if err := p.expectKeyword("BY"); err != nil {
			return nil, err
		}
		cols, err := p.parseOrderList()
		if err != nil {
			return nil, err
		}
		stmt.OrderBy = cols
	}
	return stmt, nil
}

func (p *Parser) parseColumnList() ([]ColumnExpr, error) {
	var cols []ColumnExpr
	for {
		c, err := p.parseColumn()
		if err != nil {
			return nil, err
		}
		cols = append(cols, c)
		if !p.at(TokComma) {
			return cols, nil
		}
		p.advance()
	}
}

func (p *Parser) parseOrderList() ([]ColumnExpr, error) {
	var cols []ColumnExpr
	for {
		c, err := p.parseColumn()
		if err != nil {
			return nil, err
		}
		// ASC/DESC accepted and normalised away: the engine sorts
		// ascending, which preserves all plan-choice behaviour.
		if p.atKeyword("ASC") || p.atKeyword("DESC") {
			p.advance()
		}
		cols = append(cols, c)
		if !p.at(TokComma) {
			return cols, nil
		}
		p.advance()
	}
}

func (p *Parser) parseColumn() (ColumnExpr, error) {
	if !p.at(TokIdent) {
		return ColumnExpr{}, p.errorf("expected column name, found %s", p.describe())
	}
	first := p.advance()
	if p.at(TokDot) {
		p.advance()
		if !p.at(TokIdent) {
			return ColumnExpr{}, p.errorf("expected column name after %q.", first.Text)
		}
		second := p.advance()
		return ColumnExpr{Qualifier: first.Text, Name: second.Text, Pos: first.Pos}, nil
	}
	return ColumnExpr{Name: first.Text, Pos: first.Pos}, nil
}

func (p *Parser) parseFromList() ([]TableExpr, error) {
	var from []TableExpr
	for {
		if !p.at(TokIdent) {
			return nil, p.errorf("expected table name, found %s", p.describe())
		}
		t := p.advance()
		te := TableExpr{Name: t.Text, Pos: t.Pos}
		if p.atKeyword("AS") {
			p.advance()
			if !p.at(TokIdent) {
				return nil, p.errorf("expected alias after AS")
			}
			te.Alias = p.advance().Text
		} else if p.at(TokIdent) {
			te.Alias = p.advance().Text
		}
		from = append(from, te)
		if !p.at(TokComma) {
			return from, nil
		}
		p.advance()
	}
}

func (p *Parser) parseConjuncts() ([]Predicate, error) {
	var preds []Predicate
	for {
		pr, err := p.parsePredicate()
		if err != nil {
			return nil, err
		}
		preds = append(preds, pr)
		if !p.atKeyword("AND") {
			return preds, nil
		}
		p.advance()
	}
}

func (p *Parser) parsePredicate() (Predicate, error) {
	left, err := p.parseColumn()
	if err != nil {
		return Predicate{}, err
	}
	if p.atKeyword("BETWEEN") {
		p.advance()
		lo, err := p.parseNumber()
		if err != nil {
			return Predicate{}, err
		}
		if err := p.expectKeyword("AND"); err != nil {
			return Predicate{}, err
		}
		hi, err := p.parseNumber()
		if err != nil {
			return Predicate{}, err
		}
		return Predicate{Kind: PredBetween, Left: left, Value: lo, Hi: hi, Pos: left.Pos}, nil
	}
	var op CompareOp
	switch p.cur().Kind {
	case TokEq:
		op = OpEq
	case TokLt:
		op = OpLt
	case TokLe:
		op = OpLe
	case TokGt:
		op = OpGt
	case TokGe:
		op = OpGe
	default:
		return Predicate{}, p.errorf("expected comparison operator, found %s", p.describe())
	}
	p.advance()

	if p.at(TokNumber) {
		v, err := p.parseNumber()
		if err != nil {
			return Predicate{}, err
		}
		return Predicate{Kind: PredCompare, Left: left, Op: op, Value: v, Pos: left.Pos}, nil
	}
	// column = column join predicate; only equality joins are supported.
	if op != OpEq {
		return Predicate{}, p.errorf("only equality joins are supported")
	}
	right, err := p.parseColumn()
	if err != nil {
		return Predicate{}, err
	}
	return Predicate{Kind: PredJoin, Left: left, Right: right, Pos: left.Pos}, nil
}

func (p *Parser) parseNumber() (int64, error) {
	if !p.at(TokNumber) {
		return 0, p.errorf("expected number, found %s", p.describe())
	}
	t := p.advance()
	v, err := strconv.ParseInt(t.Text, 10, 64)
	if err != nil {
		return 0, p.errorf("bad number %q: %v", t.Text, err)
	}
	return v, nil
}

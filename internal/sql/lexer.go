// Package sql implements the SQL front end for the subset of SQL the
// optimizer plans: SELECT-project-join queries with conjunctive WHERE
// clauses, GROUP BY and ORDER BY. It provides a lexer, a recursive-descent
// parser producing an AST, and a binder that resolves the AST against a
// catalog into the internal/query model.
package sql

import (
	"fmt"
	"strings"
	"unicode"
)

// TokenKind classifies lexical tokens.
type TokenKind int

const (
	TokEOF TokenKind = iota
	TokIdent
	TokNumber
	TokString
	TokComma
	TokDot
	TokLParen
	TokRParen
	TokStar
	TokEq
	TokLt
	TokLe
	TokGt
	TokGe
	TokNe
	TokKeyword
)

func (k TokenKind) String() string {
	switch k {
	case TokEOF:
		return "end of input"
	case TokIdent:
		return "identifier"
	case TokNumber:
		return "number"
	case TokString:
		return "string"
	case TokComma:
		return "','"
	case TokDot:
		return "'.'"
	case TokLParen:
		return "'('"
	case TokRParen:
		return "')'"
	case TokStar:
		return "'*'"
	case TokEq:
		return "'='"
	case TokLt:
		return "'<'"
	case TokLe:
		return "'<='"
	case TokGt:
		return "'>'"
	case TokGe:
		return "'>='"
	case TokNe:
		return "'<>'"
	case TokKeyword:
		return "keyword"
	default:
		return fmt.Sprintf("TokenKind(%d)", int(k))
	}
}

// Token is one lexical token with its source position (byte offset).
type Token struct {
	Kind TokenKind
	Text string // identifier/keyword text (keywords upper-cased), number literal, or string body
	Pos  int
}

var keywords = map[string]bool{
	"SELECT": true, "FROM": true, "WHERE": true, "AND": true,
	"GROUP": true, "ORDER": true, "BY": true, "BETWEEN": true,
	"AS": true, "ASC": true, "DESC": true, "DISTINCT": true,
}

// Lexer tokenises a SQL string.
type Lexer struct {
	src string
	pos int
}

// NewLexer returns a lexer over src.
func NewLexer(src string) *Lexer { return &Lexer{src: src} }

// Next returns the next token or an error on malformed input.
func (lx *Lexer) Next() (Token, error) {
	lx.skipSpace()
	if lx.pos >= len(lx.src) {
		return Token{Kind: TokEOF, Pos: lx.pos}, nil
	}
	start := lx.pos
	ch := lx.src[lx.pos]
	switch {
	case ch == ',':
		lx.pos++
		return Token{Kind: TokComma, Text: ",", Pos: start}, nil
	case ch == '.':
		lx.pos++
		return Token{Kind: TokDot, Text: ".", Pos: start}, nil
	case ch == '(':
		lx.pos++
		return Token{Kind: TokLParen, Text: "(", Pos: start}, nil
	case ch == ')':
		lx.pos++
		return Token{Kind: TokRParen, Text: ")", Pos: start}, nil
	case ch == '*':
		lx.pos++
		return Token{Kind: TokStar, Text: "*", Pos: start}, nil
	case ch == '=':
		lx.pos++
		return Token{Kind: TokEq, Text: "=", Pos: start}, nil
	case ch == '<':
		lx.pos++
		if lx.pos < len(lx.src) && lx.src[lx.pos] == '=' {
			lx.pos++
			return Token{Kind: TokLe, Text: "<=", Pos: start}, nil
		}
		if lx.pos < len(lx.src) && lx.src[lx.pos] == '>' {
			lx.pos++
			return Token{Kind: TokNe, Text: "<>", Pos: start}, nil
		}
		return Token{Kind: TokLt, Text: "<", Pos: start}, nil
	case ch == '>':
		lx.pos++
		if lx.pos < len(lx.src) && lx.src[lx.pos] == '=' {
			lx.pos++
			return Token{Kind: TokGe, Text: ">=", Pos: start}, nil
		}
		return Token{Kind: TokGt, Text: ">", Pos: start}, nil
	case ch == '\'':
		lx.pos++
		for lx.pos < len(lx.src) && lx.src[lx.pos] != '\'' {
			lx.pos++
		}
		if lx.pos >= len(lx.src) {
			return Token{}, fmt.Errorf("sql: unterminated string literal at offset %d", start)
		}
		body := lx.src[start+1 : lx.pos]
		lx.pos++
		return Token{Kind: TokString, Text: body, Pos: start}, nil
	case ch == '-' || isDigit(ch):
		lx.pos++
		if ch == '-' && (lx.pos >= len(lx.src) || !isDigit(lx.src[lx.pos])) {
			return Token{}, fmt.Errorf("sql: stray '-' at offset %d", start)
		}
		for lx.pos < len(lx.src) && isDigit(lx.src[lx.pos]) {
			lx.pos++
		}
		return Token{Kind: TokNumber, Text: lx.src[start:lx.pos], Pos: start}, nil
	case isIdentStart(rune(ch)):
		lx.pos++
		for lx.pos < len(lx.src) && isIdentPart(rune(lx.src[lx.pos])) {
			lx.pos++
		}
		word := lx.src[start:lx.pos]
		upper := strings.ToUpper(word)
		if keywords[upper] {
			return Token{Kind: TokKeyword, Text: upper, Pos: start}, nil
		}
		return Token{Kind: TokIdent, Text: word, Pos: start}, nil
	default:
		return Token{}, fmt.Errorf("sql: unexpected character %q at offset %d", ch, start)
	}
}

func (lx *Lexer) skipSpace() {
	for lx.pos < len(lx.src) {
		ch := lx.src[lx.pos]
		if ch == ' ' || ch == '\t' || ch == '\n' || ch == '\r' {
			lx.pos++
			continue
		}
		// -- line comments
		if ch == '-' && lx.pos+1 < len(lx.src) && lx.src[lx.pos+1] == '-' {
			for lx.pos < len(lx.src) && lx.src[lx.pos] != '\n' {
				lx.pos++
			}
			continue
		}
		return
	}
}

func isDigit(ch byte) bool { return ch >= '0' && ch <= '9' }

func isIdentStart(r rune) bool { return r == '_' || unicode.IsLetter(r) }

func isIdentPart(r rune) bool { return r == '_' || unicode.IsLetter(r) || unicode.IsDigit(r) }

// Tokenize lexes the whole input, returning all tokens up to and including
// the EOF token.
func Tokenize(src string) ([]Token, error) {
	lx := NewLexer(src)
	var out []Token
	for {
		t, err := lx.Next()
		if err != nil {
			return nil, err
		}
		out = append(out, t)
		if t.Kind == TokEOF {
			return out, nil
		}
	}
}

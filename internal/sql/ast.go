package sql

import (
	"fmt"
	"strings"
)

// ColumnExpr is a possibly-qualified column reference in the AST.
type ColumnExpr struct {
	Qualifier string // table name or alias; may be empty
	Name      string
	Pos       int
}

func (c ColumnExpr) String() string {
	if c.Qualifier != "" {
		return c.Qualifier + "." + c.Name
	}
	return c.Name
}

// TableExpr is one FROM-list entry.
type TableExpr struct {
	Name  string
	Alias string
	Pos   int
}

func (t TableExpr) String() string {
	if t.Alias != "" {
		return t.Name + " " + t.Alias
	}
	return t.Name
}

// PredKind distinguishes WHERE-clause conjunct forms.
type PredKind int

const (
	// PredCompare is column <op> literal.
	PredCompare PredKind = iota
	// PredJoin is column = column.
	PredJoin
	// PredBetween is column BETWEEN literal AND literal.
	PredBetween
)

// CompareOp is the comparison operator of a PredCompare.
type CompareOp int

const (
	OpEq CompareOp = iota
	OpLt
	OpLe
	OpGt
	OpGe
)

func (op CompareOp) String() string {
	switch op {
	case OpEq:
		return "="
	case OpLt:
		return "<"
	case OpLe:
		return "<="
	case OpGt:
		return ">"
	case OpGe:
		return ">="
	default:
		return fmt.Sprintf("CompareOp(%d)", int(op))
	}
}

// Predicate is one WHERE conjunct.
type Predicate struct {
	Kind  PredKind
	Left  ColumnExpr
	Op    CompareOp  // for PredCompare
	Right ColumnExpr // for PredJoin
	Value int64      // for PredCompare / PredBetween low bound
	Hi    int64      // for PredBetween high bound
	Pos   int
}

func (p Predicate) String() string {
	switch p.Kind {
	case PredJoin:
		return fmt.Sprintf("%s = %s", p.Left, p.Right)
	case PredBetween:
		return fmt.Sprintf("%s BETWEEN %d AND %d", p.Left, p.Value, p.Hi)
	default:
		return fmt.Sprintf("%s %s %d", p.Left, p.Op, p.Value)
	}
}

// SelectStmt is the parsed form of a supported query.
type SelectStmt struct {
	Distinct bool
	Columns  []ColumnExpr // empty means SELECT *
	Star     bool
	From     []TableExpr
	Where    []Predicate // conjuncts
	GroupBy  []ColumnExpr
	OrderBy  []ColumnExpr
	Text     string // original SQL
}

// String reconstructs a canonical SQL rendering of the statement.
func (s *SelectStmt) String() string {
	var b strings.Builder
	b.WriteString("SELECT ")
	if s.Distinct {
		b.WriteString("DISTINCT ")
	}
	if s.Star {
		b.WriteString("*")
	} else {
		for i, c := range s.Columns {
			if i > 0 {
				b.WriteString(", ")
			}
			b.WriteString(c.String())
		}
	}
	b.WriteString(" FROM ")
	for i, t := range s.From {
		if i > 0 {
			b.WriteString(", ")
		}
		b.WriteString(t.String())
	}
	if len(s.Where) > 0 {
		b.WriteString(" WHERE ")
		for i, p := range s.Where {
			if i > 0 {
				b.WriteString(" AND ")
			}
			b.WriteString(p.String())
		}
	}
	if len(s.GroupBy) > 0 {
		b.WriteString(" GROUP BY ")
		for i, c := range s.GroupBy {
			if i > 0 {
				b.WriteString(", ")
			}
			b.WriteString(c.String())
		}
	}
	if len(s.OrderBy) > 0 {
		b.WriteString(" ORDER BY ")
		for i, c := range s.OrderBy {
			if i > 0 {
				b.WriteString(", ")
			}
			b.WriteString(c.String())
		}
	}
	return b.String()
}

package sql

import (
	"fmt"

	"github.com/pinumdb/pinum/internal/catalog"
	"github.com/pinumdb/pinum/internal/query"
)

// Bind resolves a parsed statement against the catalog and produces the
// optimizer's bound query model. It implements the role of the paper's
// "query preprocessor": static analysis, name resolution, and separation of
// join predicates from single-table filters.
func Bind(stmt *SelectStmt, cat *catalog.Catalog, name string) (*query.Query, error) {
	q := &query.Query{Name: name, SQL: stmt.Text}

	byName := make(map[string]int)
	for _, te := range stmt.From {
		t := cat.Table(te.Name)
		if t == nil {
			return nil, fmt.Errorf("sql: unknown table %q", te.Name)
		}
		idx := len(q.Rels)
		q.Rels = append(q.Rels, query.Rel{Table: t, Alias: te.Alias})
		key := te.Name
		if te.Alias != "" {
			key = te.Alias
		}
		if _, dup := byName[key]; dup {
			return nil, fmt.Errorf("sql: duplicate table name or alias %q (use aliases for self-joins)", key)
		}
		byName[key] = idx
	}

	resolve := func(c ColumnExpr) (query.ColRef, error) {
		if c.Qualifier != "" {
			idx, ok := byName[c.Qualifier]
			if !ok {
				return query.ColRef{}, fmt.Errorf("sql: unknown table or alias %q", c.Qualifier)
			}
			if q.Rels[idx].Table.Column(c.Name) == nil {
				return query.ColRef{}, fmt.Errorf("sql: table %q has no column %q", c.Qualifier, c.Name)
			}
			return query.ColRef{Rel: idx, Column: c.Name}, nil
		}
		found := -1
		for i, r := range q.Rels {
			if r.Table.Column(c.Name) != nil {
				if found >= 0 {
					return query.ColRef{}, fmt.Errorf("sql: column %q is ambiguous", c.Name)
				}
				found = i
			}
		}
		if found < 0 {
			return query.ColRef{}, fmt.Errorf("sql: unknown column %q", c.Name)
		}
		return query.ColRef{Rel: found, Column: c.Name}, nil
	}

	if stmt.Star {
		for i, r := range q.Rels {
			for _, col := range r.Table.Columns {
				q.Select = append(q.Select, query.ColRef{Rel: i, Column: col.Name})
			}
		}
	} else {
		for _, c := range stmt.Columns {
			ref, err := resolve(c)
			if err != nil {
				return nil, err
			}
			q.Select = append(q.Select, ref)
		}
	}

	for _, pr := range stmt.Where {
		switch pr.Kind {
		case PredJoin:
			l, err := resolve(pr.Left)
			if err != nil {
				return nil, err
			}
			r, err := resolve(pr.Right)
			if err != nil {
				return nil, err
			}
			if l.Rel == r.Rel {
				return nil, fmt.Errorf("sql: join predicate %s relates a table to itself", pr)
			}
			q.Joins = append(q.Joins, query.Join{Left: l, Right: r})
		case PredBetween:
			c, err := resolve(pr.Left)
			if err != nil {
				return nil, err
			}
			q.Filters = append(q.Filters, query.Filter{Col: c, Op: query.Between, Value: pr.Value, Value2: pr.Hi})
		default:
			c, err := resolve(pr.Left)
			if err != nil {
				return nil, err
			}
			var op query.CmpOp
			switch pr.Op {
			case OpEq:
				op = query.Eq
			case OpLt:
				op = query.Lt
			case OpLe:
				op = query.Le
			case OpGt:
				op = query.Gt
			case OpGe:
				op = query.Ge
			}
			q.Filters = append(q.Filters, query.Filter{Col: c, Op: op, Value: pr.Value})
		}
	}

	for _, c := range stmt.GroupBy {
		ref, err := resolve(c)
		if err != nil {
			return nil, err
		}
		q.GroupBy = append(q.GroupBy, ref)
	}
	// SELECT DISTINCT is treated as grouping on the select list, the same
	// rewrite PostgreSQL's grouping planner applies.
	if stmt.Distinct && len(stmt.GroupBy) == 0 {
		q.GroupBy = append(q.GroupBy, q.Select...)
	}
	for _, c := range stmt.OrderBy {
		ref, err := resolve(c)
		if err != nil {
			return nil, err
		}
		q.OrderBy = append(q.OrderBy, ref)
	}

	if err := q.Validate(); err != nil {
		return nil, err
	}
	if !q.JoinGraphConnected() {
		return nil, fmt.Errorf("sql: query %s has a disconnected join graph (cartesian products are not supported)", name)
	}
	return q, nil
}

// MustParseBind parses and binds, panicking on error. Intended for tests and
// examples where the SQL text is a constant.
func MustParseBind(src string, cat *catalog.Catalog, name string) *query.Query {
	stmt, err := Parse(src)
	if err != nil {
		panic(err)
	}
	q, err := Bind(stmt, cat, name)
	if err != nil {
		panic(err)
	}
	return q
}

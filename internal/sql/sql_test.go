package sql

import (
	"strings"
	"testing"

	"github.com/pinumdb/pinum/internal/catalog"
	"github.com/pinumdb/pinum/internal/query"
)

func testCatalog(t *testing.T) *catalog.Catalog {
	t.Helper()
	c := catalog.New()
	add := func(name string, rows int64, cols ...string) {
		tb := &catalog.Table{Name: name, RowCount: rows}
		for _, cn := range cols {
			tb.Columns = append(tb.Columns, &catalog.Column{Name: cn, Type: catalog.Int, NDV: rows, Min: 1, Max: rows})
		}
		if err := c.AddTable(tb); err != nil {
			t.Fatal(err)
		}
	}
	add("orders", 10000, "id", "customer_id", "amount", "order_date")
	add("customers", 1000, "id", "region", "segment")
	return c
}

func TestTokenizeBasics(t *testing.T) {
	toks, err := Tokenize("SELECT a, t.b FROM t WHERE a >= 10 AND b BETWEEN 1 AND 2 -- comment\nORDER BY a")
	if err != nil {
		t.Fatal(err)
	}
	var kinds []TokenKind
	for _, tok := range toks {
		kinds = append(kinds, tok.Kind)
	}
	if kinds[0] != TokKeyword || toks[0].Text != "SELECT" {
		t.Errorf("first token %+v", toks[0])
	}
	if toks[len(toks)-1].Kind != TokEOF {
		t.Error("missing EOF token")
	}
	// The comment must be skipped entirely.
	for _, tok := range toks {
		if strings.Contains(tok.Text, "comment") {
			t.Error("comment leaked into tokens")
		}
	}
}

func TestTokenizeErrors(t *testing.T) {
	for _, src := range []string{"select 'unterminated", "select ~", "a - b"} {
		if _, err := Tokenize(src); err == nil {
			t.Errorf("Tokenize(%q) accepted", src)
		}
	}
}

func TestParseFullQuery(t *testing.T) {
	stmt, err := Parse("SELECT o.amount, customers.region FROM orders o, customers " +
		"WHERE o.customer_id = customers.id AND o.amount BETWEEN 10 AND 20 AND o.order_date >= 5 " +
		"GROUP BY customers.region, o.amount ORDER BY o.amount DESC")
	if err != nil {
		t.Fatal(err)
	}
	if len(stmt.Columns) != 2 || len(stmt.From) != 2 || len(stmt.Where) != 3 {
		t.Fatalf("parsed shape: %d cols, %d from, %d where", len(stmt.Columns), len(stmt.From), len(stmt.Where))
	}
	if stmt.From[0].Alias != "o" {
		t.Errorf("alias = %q", stmt.From[0].Alias)
	}
	if stmt.Where[0].Kind != PredJoin || stmt.Where[1].Kind != PredBetween || stmt.Where[2].Kind != PredCompare {
		t.Error("predicate kinds wrong")
	}
	if len(stmt.GroupBy) != 2 || len(stmt.OrderBy) != 1 {
		t.Error("group/order parse wrong")
	}
	// Round trip through String() must re-parse.
	if _, err := Parse(stmt.String()); err != nil {
		t.Errorf("String() output does not re-parse: %v", err)
	}
}

func TestParseStarAndDistinct(t *testing.T) {
	stmt, err := Parse("SELECT * FROM orders")
	if err != nil {
		t.Fatal(err)
	}
	if !stmt.Star {
		t.Error("star not detected")
	}
	stmt, err = Parse("SELECT DISTINCT region FROM customers")
	if err != nil {
		t.Fatal(err)
	}
	if !stmt.Distinct {
		t.Error("distinct not detected")
	}
}

func TestParseErrors(t *testing.T) {
	bad := []string{
		"",
		"SELECT",
		"SELECT a",
		"SELECT a FROM",
		"SELECT a FROM t WHERE",
		"SELECT a FROM t WHERE a <",
		"SELECT a FROM t WHERE a BETWEEN 1",
		"SELECT a FROM t WHERE a < b", // non-equality join
		"SELECT a FROM t GROUP",
		"SELECT a FROM t trailing garbage (",
	}
	for _, src := range bad {
		if _, err := Parse(src); err == nil {
			t.Errorf("Parse(%q) accepted", src)
		}
	}
}

func TestBindResolvesAndSeparates(t *testing.T) {
	cat := testCatalog(t)
	q := MustParseBind("SELECT amount, region FROM orders, customers "+
		"WHERE orders.customer_id = customers.id AND amount BETWEEN 10 AND 20 "+
		"ORDER BY region", cat, "q1")
	if len(q.Rels) != 2 || len(q.Joins) != 1 || len(q.Filters) != 1 {
		t.Fatalf("bound shape: %d rels %d joins %d filters", len(q.Rels), len(q.Joins), len(q.Filters))
	}
	if q.Joins[0].Left.Rel == q.Joins[0].Right.Rel {
		t.Error("join binds to one relation")
	}
	// Unqualified "amount" resolves to orders, "region" to customers.
	if q.Filters[0].Col.Rel != 0 {
		t.Errorf("filter bound to rel %d", q.Filters[0].Col.Rel)
	}
	if q.OrderBy[0].Rel != 1 {
		t.Errorf("order-by bound to rel %d", q.OrderBy[0].Rel)
	}
}

func TestBindErrors(t *testing.T) {
	cat := testCatalog(t)
	bad := []string{
		"SELECT x FROM orders",                                   // unknown column
		"SELECT id FROM orders, customers",                       // ambiguous + cartesian
		"SELECT amount FROM nope",                                // unknown table
		"SELECT amount FROM orders o, orders o",                  // duplicate alias
		"SELECT o.zz FROM orders o",                              // unknown qualified column
		"SELECT q.amount FROM orders o",                          // unknown qualifier
		"SELECT amount FROM orders, customers",                   // cartesian product
		"SELECT amount FROM orders WHERE id = amount AND id = 1", // self-join predicate
	}
	for _, src := range bad {
		stmt, err := Parse(src)
		if err != nil {
			continue // parse-level rejection also fine
		}
		if _, err := Bind(stmt, cat, "q"); err == nil {
			t.Errorf("Bind(%q) accepted", src)
		}
	}
}

func TestBindDistinctBecomesGrouping(t *testing.T) {
	cat := testCatalog(t)
	q := MustParseBind("SELECT DISTINCT region FROM customers", cat, "qd")
	if len(q.GroupBy) != 1 || q.GroupBy[0] != (query.ColRef{Rel: 0, Column: "region"}) {
		t.Errorf("distinct did not become grouping: %v", q.GroupBy)
	}
}

func TestBindSelfJoinWithAliases(t *testing.T) {
	cat := testCatalog(t)
	q := MustParseBind("SELECT a.id, b.id FROM customers a, customers b WHERE a.segment = b.id", cat, "self")
	if len(q.Rels) != 2 {
		t.Fatalf("%d rels", len(q.Rels))
	}
	if q.Joins[0].Left.Rel == q.Joins[0].Right.Rel {
		t.Error("self-join collapsed to one relation")
	}
}

// Package advisor implements the paper's §V-E index selection tool: a
// greedy algorithm that, given a workload and a disk-space budget, picks
// the index set with the best estimated benefit. Every benefit evaluation
// goes through the PINUM plan caches, so adding thousands of candidates
// costs arithmetic, not optimizer calls — the property that lets the simple
// greedy search use "a significantly larger candidate index set" than
// commercial designers.
//
// The greedy search runs on the incremental cost engine of
// internal/costmatrix: each round prices chosen+candidate as a delta over
// the shared per-(query, plan, relation) cost matrix instead of re-pricing
// the whole workload, and a table→queries index skips queries the
// candidate cannot affect. Results are bit-identical to the full
// re-pricing search, which RunReference retains as the oracle.
package advisor

import (
	"fmt"
	"math"
	"sort"
	"strings"
	"time"

	"github.com/pinumdb/pinum/internal/catalog"
	"github.com/pinumdb/pinum/internal/core"
	"github.com/pinumdb/pinum/internal/costmatrix"
	"github.com/pinumdb/pinum/internal/inum"
	"github.com/pinumdb/pinum/internal/optimizer"
	"github.com/pinumdb/pinum/internal/query"
	"github.com/pinumdb/pinum/internal/stats"
	"github.com/pinumdb/pinum/internal/storage"
	"github.com/pinumdb/pinum/internal/whatif"
)

// QueryState bundles one workload query with its analysis and PINUM cache.
type QueryState struct {
	Query *query.Query
	A     *optimizer.Analysis
	Cache *inum.Cache
	// Weight scales the query's cost in the workload objective
	// (frequency in the workload; 1 by default).
	Weight float64
	// BaseCost is the estimated cost with no indexes at all.
	BaseCost float64
}

// Result reports the advisor's suggestion.
type Result struct {
	// Chosen is the selected index set, in pick order (one entry per
	// greedy round, so this doubles as the per-round pick log).
	Chosen []*catalog.Index
	// TotalBytes is the footprint of the chosen set.
	TotalBytes int64
	// BaseCost and FinalCost are workload cost estimates before/after.
	BaseCost, FinalCost float64
	// PerQuery maps query name → (base, final) cost estimates.
	PerQuery map[string][2]float64
	// CandidateCount is the number of candidate indexes examined.
	CandidateCount int
	// OptimizerCalls is the total number of optimizer invocations spent
	// (cache construction only — the greedy loop itself makes none).
	OptimizerCalls int
	// Rounds is the number of greedy iterations performed.
	Rounds int
	// Engine reports the incremental cost engine's work: how many
	// per-query delta evaluations the greedy rounds performed
	// (Engine.QueryEvals) and how many the table→queries index skipped
	// outright (Engine.QuerySkips). All-zero after RunReference, which
	// re-prices every query for every candidate.
	Engine costmatrix.Stats
	// GenerationErrors records candidate-generation failures
	// (GenerateCandidates index creations that were rejected); the
	// corresponding candidates are absent from the search.
	GenerationErrors []error
	Duration         time.Duration
}

// Advisor selects indexes for a workload under a space budget.
type Advisor struct {
	cat *catalog.Catalog
	st  *stats.Store
	// BudgetBytes caps the total size of the suggested index set.
	BudgetBytes int64
	// MaxIndexes optionally caps the number of suggested indexes
	// (0 = unlimited).
	MaxIndexes int
	// Parallelism bounds the worker pool used for batch cache construction
	// (AddQueries) and for fanning out candidate evaluations inside Run's
	// greedy rounds. 0 means GOMAXPROCS (core.Fan's default resolution);
	// 1 forces the serial path. Results are bit-identical at every
	// setting.
	Parallelism int

	queries    []*QueryState
	candidates []*catalog.Index
	seen       map[string]bool // candidate names, the shared dedup set
	genErrs    []error
	ws         *whatif.Session
	calls      int
}

// New returns an advisor over the catalog and statistics.
func New(cat *catalog.Catalog, st *stats.Store, budgetBytes int64) *Advisor {
	return &Advisor{
		cat:         cat,
		st:          st,
		BudgetBytes: budgetBytes,
		seen:        make(map[string]bool),
		ws:          whatif.NewSession(cat),
	}
}

// AddQuery registers a workload query with the given frequency weight,
// building its analysis and PINUM plan cache.
func (ad *Advisor) AddQuery(q *query.Query, weight float64) error {
	if weight <= 0 {
		weight = 1
	}
	a, err := optimizer.NewAnalysis(q, ad.st, optimizer.DefaultCostParams())
	if err != nil {
		return err
	}
	cache, err := core.Build(a, ad.ws)
	if err != nil {
		return fmt.Errorf("advisor: building cache for %s: %w", q.Name, err)
	}
	ad.calls += cache.Stats.OptimizerCalls
	base, _, err := cache.Cost(&query.Config{})
	if err != nil {
		return fmt.Errorf("advisor: base cost for %s: %w", q.Name, err)
	}
	ad.queries = append(ad.queries, &QueryState{
		Query: q, A: a, Cache: cache, Weight: weight, BaseCost: base,
	})
	return nil
}

// AddPrepared registers a workload query whose analysis and plan cache
// already exist — the serving layer's path, where one immutable cache set
// is built (or loaded from a snapshot) at startup and every /recommend
// request prices it through a fresh Advisor. The cache is shared, not
// copied: Cost and the leaf memo are safe for concurrent use, and the
// greedy search's own state lives in the per-run cost engine.
func (ad *Advisor) AddPrepared(q *query.Query, a *optimizer.Analysis, cache *inum.Cache, weight float64) error {
	if weight <= 0 {
		weight = 1
	}
	ad.calls += cache.Stats.OptimizerCalls
	base, _, err := cache.Cost(&query.Config{})
	if err != nil {
		return fmt.Errorf("advisor: base cost for %s: %w", q.Name, err)
	}
	ad.queries = append(ad.queries, &QueryState{
		Query: q, A: a, Cache: cache, Weight: weight, BaseCost: base,
	})
	return nil
}

// AddQueries registers a whole workload at once, building the PINUM plan
// caches across the advisor's worker pool (core.BuildAll). weights may be
// nil, meaning weight 1 for every query; otherwise it must be parallel to
// queries. Queries are appended in input order, so the advisor's state is
// identical to calling AddQuery serially.
func (ad *Advisor) AddQueries(queries []*query.Query, weights []float64) error {
	if len(weights) != 0 && len(weights) != len(queries) {
		return fmt.Errorf("advisor: %d weights for %d queries", len(weights), len(queries))
	}
	analyses := make([]*optimizer.Analysis, len(queries))
	for i, q := range queries {
		a, err := optimizer.NewAnalysis(q, ad.st, optimizer.DefaultCostParams())
		if err != nil {
			return err
		}
		analyses[i] = a
	}
	caches, err := core.BuildAll(analyses, ad.cat, ad.Parallelism, false)
	if err != nil {
		return fmt.Errorf("advisor: building caches: %w", err)
	}
	for i, q := range queries {
		w := 1.0
		if len(weights) != 0 && weights[i] > 0 {
			w = weights[i]
		}
		ad.calls += caches[i].Stats.OptimizerCalls
		base, _, err := caches[i].Cost(&query.Config{})
		if err != nil {
			return fmt.Errorf("advisor: base cost for %s: %w", q.Name, err)
		}
		ad.queries = append(ad.queries, &QueryState{
			Query: q, A: analyses[i], Cache: caches[i], Weight: w, BaseCost: base,
		})
	}
	return nil
}

// GenerateCandidates derives the syntactic candidate set from the
// registered queries ("statically analyses the queries to find a large set
// of candidate indexes"): single-column indexes on every referenced column,
// two-column order+column indexes, and covering indexes per interesting
// order and per relation. Index-creation failures are recorded
// (GenerationErrors, surfaced on the Result) instead of silently dropped.
func (ad *Advisor) GenerateCandidates() int {
	add := func(table string, cols ...string) {
		ix, err := ad.ws.CreateIndex(table, cols...)
		if err != nil {
			ad.genErrs = append(ad.genErrs,
				fmt.Errorf("advisor: candidate %s(%s): %w", table, strings.Join(cols, ","), err))
			return
		}
		ad.addCandidate(ix)
	}
	for _, qs := range ad.queries {
		for i := range qs.A.Rels {
			ri := &qs.A.Rels[i]
			cols := make([]string, 0, len(ri.Needed))
			for c := range ri.Needed {
				cols = append(cols, c)
			}
			sort.Strings(cols)
			for _, c := range cols {
				add(ri.Table.Name, c)
			}
			for _, lead := range ri.Interesting {
				for _, c := range cols {
					if c != lead {
						add(ri.Table.Name, lead, c)
					}
				}
				covering := []string{lead}
				for _, c := range cols {
					if c != lead {
						covering = append(covering, c)
					}
				}
				if len(covering) > 1 {
					add(ri.Table.Name, covering...)
				}
			}
			if len(cols) > 1 {
				add(ri.Table.Name, cols...)
			}
		}
	}
	return len(ad.candidates)
}

// GenerationErrors returns the candidate-generation failures recorded so
// far.
func (ad *Advisor) GenerationErrors() []error { return ad.genErrs }

// Candidates returns the registered candidate indexes in registration
// order. A long-lived server generates the workload's candidate set once
// and feeds it to every per-request advisor through AddCandidate, so the
// shared caches' leaf memo sees one stable descriptor per candidate
// instead of fresh ones per request.
func (ad *Advisor) Candidates() []*catalog.Index {
	return append([]*catalog.Index(nil), ad.candidates...)
}

// AddCandidate registers an externally supplied candidate index,
// deduplicating by name against both earlier AddCandidate calls and
// generated candidates. It reports whether the candidate was new.
func (ad *Advisor) AddCandidate(ix *catalog.Index) bool {
	return ad.addCandidate(ix)
}

// addCandidate appends ix unless a candidate of the same name is already
// registered — the one dedup gate both GenerateCandidates and AddCandidate
// go through.
func (ad *Advisor) addCandidate(ix *catalog.Index) bool {
	if ad.seen == nil {
		ad.seen = make(map[string]bool)
	}
	if ad.seen[ix.Name] {
		return false
	}
	ad.seen[ix.Name] = true
	ad.candidates = append(ad.candidates, ix)
	return true
}

// workloadCost estimates the weighted workload cost under a configuration
// set (the chosen indexes). Each query independently picks its best atomic
// sub-configuration: for every relation, the cost model already minimises
// over the configuration's indexes on that table, so passing the full set
// is equivalent to the best atomic choice per cached plan. It allocates
// nothing beyond the Config wrapper — RunReference runs it once per
// candidate per greedy round.
func (ad *Advisor) workloadCost(chosen []*catalog.Index) (float64, error) {
	cfg := &query.Config{Indexes: chosen}
	total := 0.0
	for _, qs := range ad.queries {
		c, _, err := qs.Cache.Cost(cfg)
		if err != nil {
			return 0, err
		}
		//pinum:costarith-ok the workload objective Σ wᵢ·cᵢ on the reference path; the engine mirror is pinned by TestRunMatchesReferenceStarWorkload
		total += qs.Weight * c
	}
	return total, nil
}

// workloadCostPer is workloadCost plus the per-query cost breakdown
// (aligned with ad.queries), for the bookend calls that fill
// Result.PerQuery on the reference path.
func (ad *Advisor) workloadCostPer(chosen []*catalog.Index) (float64, []float64, error) {
	cfg := &query.Config{Indexes: chosen}
	total := 0.0
	per := make([]float64, len(ad.queries))
	for i, qs := range ad.queries {
		c, _, err := qs.Cache.Cost(cfg)
		if err != nil {
			return 0, nil, err
		}
		//pinum:costarith-ok same objective as workloadCost with the per-query breakdown kept; pinned by TestRunMatchesReferenceStarWorkload
		total += qs.Weight * c
		per[i] = c
	}
	return total, per, nil
}

// pricer abstracts how a greedy run prices configurations, so the
// engine-backed search (Run) and the full-repricing reference
// (RunReference) share one selection loop and differ only in arithmetic
// cost — never in results.
type pricer interface {
	// baseline returns the workload cost and per-query costs (aligned with
	// ad.queries) under no indexes.
	baseline() (float64, []float64, error)
	// evaluateRound prices chosen+remaining[i] for every i in eligible,
	// fanning the evaluations over the advisor's worker pool, and returns
	// one workload cost per eligible entry.
	evaluateRound(chosen, remaining []*catalog.Index, eligible []int) ([]float64, error)
	// commit applies the round's pick to any incremental state.
	commit(pick *catalog.Index)
	// final returns the workload cost and per-query costs under chosen.
	final(chosen []*catalog.Index) (float64, []float64, error)
	// stats reports the engine work performed (all-zero for the reference).
	stats() costmatrix.Stats
}

// referencePricer prices every configuration from scratch through
// Cache.Cost — the pre-engine greedy search, kept as the oracle the
// equivalence tests and benchmarks compare the incremental engine against.
type referencePricer struct{ ad *Advisor }

func (p *referencePricer) baseline() (float64, []float64, error) {
	return p.ad.workloadCostPer(nil)
}

func (p *referencePricer) final(chosen []*catalog.Index) (float64, []float64, error) {
	return p.ad.workloadCostPer(chosen)
}

func (p *referencePricer) commit(*catalog.Index) {}

func (p *referencePricer) stats() costmatrix.Stats { return costmatrix.Stats{} }

// evaluateRound re-prices the whole workload per candidate. Each worker
// owns one configuration slice (a copy of the chosen prefix plus a final
// slot it rewrites per candidate), so goroutines never share a backing
// array — which relies on Cache.Cost not retaining the slice it is passed.
func (p *referencePricer) evaluateRound(chosen, remaining []*catalog.Index, eligible []int) ([]float64, error) {
	costs := make([]float64, len(eligible))
	errs := make([]error, len(eligible))
	core.Fan(len(eligible), p.ad.Parallelism, func() func(int) {
		// Each worker reuses one config slice; only its last slot varies.
		cfg := make([]*catalog.Index, len(chosen)+1)
		copy(cfg, chosen)
		return func(j int) {
			cfg[len(chosen)] = remaining[eligible[j]]
			costs[j], errs[j] = p.ad.workloadCost(cfg)
		}
	})
	for _, err := range errs {
		if err != nil {
			return nil, err
		}
	}
	return costs, nil
}

// enginePricer prices rounds through the incremental cost engine: each
// candidate evaluation touches only the plans on the candidate's table,
// and committed picks update the matrix in place.
type enginePricer struct {
	ad  *Advisor
	eng *costmatrix.Engine
}

func (p *enginePricer) baseline() (float64, []float64, error) {
	return p.eng.TotalCost(), p.eng.QueryCosts(), nil
}

func (p *enginePricer) final([]*catalog.Index) (float64, []float64, error) {
	return p.eng.TotalCost(), p.eng.QueryCosts(), nil
}

func (p *enginePricer) commit(pick *catalog.Index) { p.eng.Apply(pick) }

func (p *enginePricer) stats() costmatrix.Stats { return p.eng.Stats() }

func (p *enginePricer) evaluateRound(_, remaining []*catalog.Index, eligible []int) ([]float64, error) {
	costs := make([]float64, len(eligible))
	core.Fan(len(eligible), p.ad.Parallelism, func() func(int) {
		return func(j int) {
			costs[j] = p.eng.EvaluateCandidate(remaining[eligible[j]])
		}
	})
	return costs, nil
}

// Run executes the greedy selection loop on the incremental cost engine:
// in each round, evaluate every remaining candidate alongside the
// already-chosen set as a delta over the shared cost matrix, keep the one
// with the highest benefit, and stop when the budget is exhausted or no
// candidate helps. Candidate evaluations within a round run across the
// advisor's worker pool (Parallelism); the result is bit-identical to the
// serial search and to RunReference.
func (ad *Advisor) Run() (*Result, error) {
	start := time.Now()
	if len(ad.queries) == 0 {
		return nil, fmt.Errorf("advisor: no queries registered")
	}
	specs := make([]costmatrix.Query, len(ad.queries))
	for i, qs := range ad.queries {
		specs[i] = costmatrix.Query{Cache: qs.Cache, Weight: qs.Weight}
	}
	eng, err := costmatrix.New(specs)
	if err != nil {
		return nil, err
	}
	return ad.runGreedy(&enginePricer{ad: ad, eng: eng}, start)
}

// RunReference executes the same greedy selection by re-pricing every
// query × candidate from scratch through Cache.Cost each round — the
// pre-engine search. It is retained as the oracle: equivalence tests
// assert Run's chosen set, per-round picks, and costs are bit-identical to
// it, and benchmarks quantify the engine's speedup against it.
func (ad *Advisor) RunReference() (*Result, error) {
	start := time.Now()
	if len(ad.queries) == 0 {
		return nil, fmt.Errorf("advisor: no queries registered")
	}
	return ad.runGreedy(&referencePricer{ad: ad}, start)
}

// runGreedy is the selection loop both pricers share: budget filtering,
// the per-round fan-out, and the deterministic reduce.
func (ad *Advisor) runGreedy(p pricer, start time.Time) (*Result, error) {
	if len(ad.candidates) == 0 {
		ad.GenerateCandidates()
	}
	res := &Result{PerQuery: make(map[string][2]float64), CandidateCount: len(ad.candidates)}

	baseTotal, basePer, err := p.baseline()
	if err != nil {
		return nil, err
	}
	res.BaseCost = baseTotal
	for i, qs := range ad.queries {
		res.PerQuery[qs.Query.Name] = [2]float64{basePer[i], basePer[i]}
	}

	remaining := append([]*catalog.Index(nil), ad.candidates...)
	var chosen []*catalog.Index
	var usedBytes int64
	current := baseTotal

	for {
		if ad.MaxIndexes > 0 && len(chosen) >= ad.MaxIndexes {
			break
		}
		// Candidates that still fit the budget this round.
		eligible := make([]int, 0, len(remaining))
		for i, cand := range remaining {
			if usedBytes+storage.IndexBytes(cand) <= ad.BudgetBytes {
				eligible = append(eligible, i)
			}
		}
		costs, err := p.evaluateRound(chosen, remaining, eligible)
		if err != nil {
			return nil, err
		}
		// Deterministic reduce: scan in candidate order with the same
		// strict-improvement rule the serial loop used, so ties break to
		// the lowest candidate index and the pick is bit-identical at any
		// parallelism.
		bestIdx := -1
		bestCost := current
		for j, i := range eligible {
			//pinum:costarith-ok greedy strict-improvement threshold, not a cost formula; identical on serial and parallel paths (TestParallelRunMatchesSerial)
			if c := costs[j]; c < bestCost-1e-9 {
				bestCost = c
				bestIdx = i
			}
		}
		if bestIdx < 0 {
			break
		}
		pick := remaining[bestIdx]
		chosen = append(chosen, pick)
		usedBytes += storage.IndexBytes(pick)
		current = bestCost
		remaining = append(remaining[:bestIdx:bestIdx], remaining[bestIdx+1:]...)
		p.commit(pick)
		res.Rounds++
	}

	finalTotal, finalPer, err := p.final(chosen)
	if err != nil {
		return nil, err
	}
	res.Chosen = chosen
	res.TotalBytes = usedBytes
	res.FinalCost = finalTotal
	res.OptimizerCalls = ad.calls
	for i, qs := range ad.queries {
		e := res.PerQuery[qs.Query.Name]
		e[1] = finalPer[i]
		res.PerQuery[qs.Query.Name] = e
	}
	res.Engine = p.stats()
	res.GenerationErrors = append([]error(nil), ad.genErrs...)
	res.Duration = time.Since(start)
	return res, nil
}

// Speedup returns the estimated workload speedup fraction (the paper
// reports 95 % on the star workload).
func (r *Result) Speedup() float64 {
	if r.BaseCost <= 0 {
		return 0
	}
	//pinum:costarith-ok reporting-only ratio of two already-computed totals; feeds no plan or selection decision
	s := 1 - r.FinalCost/r.BaseCost
	return math.Max(0, s)
}

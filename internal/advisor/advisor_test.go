package advisor

import (
	"testing"

	"github.com/pinumdb/pinum/internal/optimizer"
	"github.com/pinumdb/pinum/internal/query"
	"github.com/pinumdb/pinum/internal/storage"
	"github.com/pinumdb/pinum/internal/workload"
)

func setup(t testing.TB, budgetGB float64, nQueries int) (*workload.Star, *Advisor, []*query.Query) {
	t.Helper()
	s, err := workload.StarSchema(1.0)
	if err != nil {
		t.Fatal(err)
	}
	qs, err := s.Queries(42)
	if err != nil {
		t.Fatal(err)
	}
	qs = qs[:nQueries]
	ad := New(s.Catalog, s.Stats, storage.BytesForGB(budgetGB))
	for _, q := range qs {
		if err := ad.AddQuery(q, 1); err != nil {
			t.Fatal(err)
		}
	}
	return s, ad, qs
}

func TestRunRequiresQueries(t *testing.T) {
	s, err := workload.StarSchema(1.0)
	if err != nil {
		t.Fatal(err)
	}
	ad := New(s.Catalog, s.Stats, storage.BytesForGB(1))
	if _, err := ad.Run(); err == nil {
		t.Error("advisor with no queries ran")
	}
}

func TestGreedySelectionRespectsBudget(t *testing.T) {
	_, ad, _ := setup(t, 3, 5)
	res, err := ad.Run()
	if err != nil {
		t.Fatal(err)
	}
	if res.TotalBytes > ad.BudgetBytes {
		t.Errorf("used %d bytes of %d budget", res.TotalBytes, ad.BudgetBytes)
	}
	var sum int64
	for _, ix := range res.Chosen {
		sum += storage.IndexBytes(ix)
	}
	if sum != res.TotalBytes {
		t.Errorf("TotalBytes %d != sum of chosen %d", res.TotalBytes, sum)
	}
	if res.FinalCost > res.BaseCost {
		t.Errorf("final cost %f above base %f", res.FinalCost, res.BaseCost)
	}
	if res.Rounds != len(res.Chosen) {
		t.Errorf("rounds %d != chosen %d", res.Rounds, len(res.Chosen))
	}
}

func TestBenefitIsMonotonePerQuery(t *testing.T) {
	_, ad, qs := setup(t, 5, 6)
	res, err := ad.Run()
	if err != nil {
		t.Fatal(err)
	}
	for _, q := range qs {
		e := res.PerQuery[q.Name]
		if e[1] > e[0]*(1+1e-9) {
			t.Errorf("%s: indexes made the estimate worse: %f -> %f", q.Name, e[0], e[1])
		}
	}
	if res.Speedup() < 0 || res.Speedup() > 1 {
		t.Errorf("speedup %f outside [0,1]", res.Speedup())
	}
}

func TestMaxIndexesCap(t *testing.T) {
	_, ad, _ := setup(t, 10, 5)
	ad.MaxIndexes = 2
	res, err := ad.Run()
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Chosen) > 2 {
		t.Errorf("chose %d indexes, cap was 2", len(res.Chosen))
	}
}

func TestZeroBudgetChoosesNothing(t *testing.T) {
	_, ad, _ := setup(t, 0, 3)
	res, err := ad.Run()
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Chosen) != 0 {
		t.Errorf("chose %d indexes with zero budget", len(res.Chosen))
	}
	if res.FinalCost != res.BaseCost {
		t.Error("cost changed without indexes")
	}
}

func TestNoOptimizerCallsDuringGreedyLoop(t *testing.T) {
	_, ad, _ := setup(t, 5, 4)
	callsAfterCaches := ad.calls
	res, err := ad.Run()
	if err != nil {
		t.Fatal(err)
	}
	if res.OptimizerCalls != callsAfterCaches {
		t.Errorf("greedy loop made optimizer calls: %d -> %d", callsAfterCaches, res.OptimizerCalls)
	}
	// The paper's point: 2 calls per query, regardless of candidates.
	if callsAfterCaches != 2*4 {
		t.Errorf("cache construction used %d calls, want 8", callsAfterCaches)
	}
}

func TestExternalCandidates(t *testing.T) {
	s, ad, qs := setup(t, 5, 2)
	a, err := optimizer.NewAnalysis(qs[0], s.Stats, optimizer.DefaultCostParams())
	if err != nil {
		t.Fatal(err)
	}
	_ = a
	ix := storage.HypotheticalIndex("custom", s.Catalog.Table("fact"), []string{"a1", "m1"})
	ad.AddCandidate(ix)
	res, err := ad.Run()
	if err != nil {
		t.Fatal(err)
	}
	if res.CandidateCount != 1 {
		t.Errorf("candidate count %d, want 1 (only the external one)", res.CandidateCount)
	}
}

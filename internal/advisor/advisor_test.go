package advisor

import (
	"fmt"
	"math"
	"testing"

	"github.com/pinumdb/pinum/internal/costmatrix"
	"github.com/pinumdb/pinum/internal/optimizer"
	"github.com/pinumdb/pinum/internal/query"
	"github.com/pinumdb/pinum/internal/storage"
	"github.com/pinumdb/pinum/internal/workload"
)

func setup(t testing.TB, budgetGB float64, nQueries int) (*workload.Star, *Advisor, []*query.Query) {
	t.Helper()
	s, err := workload.StarSchema(1.0)
	if err != nil {
		t.Fatal(err)
	}
	qs, err := s.Queries(42)
	if err != nil {
		t.Fatal(err)
	}
	qs = qs[:nQueries]
	ad := New(s.Catalog, s.Stats, storage.BytesForGB(budgetGB))
	for _, q := range qs {
		if err := ad.AddQuery(q, 1); err != nil {
			t.Fatal(err)
		}
	}
	return s, ad, qs
}

func TestRunRequiresQueries(t *testing.T) {
	s, err := workload.StarSchema(1.0)
	if err != nil {
		t.Fatal(err)
	}
	ad := New(s.Catalog, s.Stats, storage.BytesForGB(1))
	if _, err := ad.Run(); err == nil {
		t.Error("advisor with no queries ran")
	}
}

func TestGreedySelectionRespectsBudget(t *testing.T) {
	_, ad, _ := setup(t, 3, 5)
	res, err := ad.Run()
	if err != nil {
		t.Fatal(err)
	}
	if res.TotalBytes > ad.BudgetBytes {
		t.Errorf("used %d bytes of %d budget", res.TotalBytes, ad.BudgetBytes)
	}
	var sum int64
	for _, ix := range res.Chosen {
		sum += storage.IndexBytes(ix)
	}
	if sum != res.TotalBytes {
		t.Errorf("TotalBytes %d != sum of chosen %d", res.TotalBytes, sum)
	}
	if res.FinalCost > res.BaseCost {
		t.Errorf("final cost %f above base %f", res.FinalCost, res.BaseCost)
	}
	if res.Rounds != len(res.Chosen) {
		t.Errorf("rounds %d != chosen %d", res.Rounds, len(res.Chosen))
	}
}

func TestBenefitIsMonotonePerQuery(t *testing.T) {
	_, ad, qs := setup(t, 5, 6)
	res, err := ad.Run()
	if err != nil {
		t.Fatal(err)
	}
	for _, q := range qs {
		e := res.PerQuery[q.Name]
		if e[1] > e[0]*(1+1e-9) {
			t.Errorf("%s: indexes made the estimate worse: %f -> %f", q.Name, e[0], e[1])
		}
	}
	if res.Speedup() < 0 || res.Speedup() > 1 {
		t.Errorf("speedup %f outside [0,1]", res.Speedup())
	}
}

func TestMaxIndexesCap(t *testing.T) {
	_, ad, _ := setup(t, 10, 5)
	ad.MaxIndexes = 2
	res, err := ad.Run()
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Chosen) > 2 {
		t.Errorf("chose %d indexes, cap was 2", len(res.Chosen))
	}
}

func TestZeroBudgetChoosesNothing(t *testing.T) {
	_, ad, _ := setup(t, 0, 3)
	res, err := ad.Run()
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Chosen) != 0 {
		t.Errorf("chose %d indexes with zero budget", len(res.Chosen))
	}
	if res.FinalCost != res.BaseCost {
		t.Error("cost changed without indexes")
	}
}

func TestNoOptimizerCallsDuringGreedyLoop(t *testing.T) {
	_, ad, _ := setup(t, 5, 4)
	callsAfterCaches := ad.calls
	res, err := ad.Run()
	if err != nil {
		t.Fatal(err)
	}
	if res.OptimizerCalls != callsAfterCaches {
		t.Errorf("greedy loop made optimizer calls: %d -> %d", callsAfterCaches, res.OptimizerCalls)
	}
	// The paper's point: 2 calls per query, regardless of candidates.
	if callsAfterCaches != 2*4 {
		t.Errorf("cache construction used %d calls, want 8", callsAfterCaches)
	}
}

// TestParallelRunMatchesSerial is the tentpole's determinism guarantee: the
// parallel greedy search must return byte-identical results to the serial
// one — same indexes in the same pick order, bit-equal costs.
func TestParallelRunMatchesSerial(t *testing.T) {
	s, err := workload.StarSchema(1.0)
	if err != nil {
		t.Fatal(err)
	}
	qs, err := s.Queries(42)
	if err != nil {
		t.Fatal(err)
	}
	qs = qs[:6]
	mk := func(par int) *Result {
		ad := New(s.Catalog, s.Stats, storage.BytesForGB(5))
		ad.Parallelism = par
		if err := ad.AddQueries(qs, nil); err != nil {
			t.Fatal(err)
		}
		res, err := ad.Run()
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	serial := mk(1)
	parallel := mk(8)
	if len(serial.Chosen) == 0 {
		t.Fatal("serial run chose nothing; the comparison is vacuous")
	}
	if len(serial.Chosen) != len(parallel.Chosen) {
		t.Fatalf("serial chose %d indexes, parallel %d", len(serial.Chosen), len(parallel.Chosen))
	}
	for i := range serial.Chosen {
		if serial.Chosen[i].Key() != parallel.Chosen[i].Key() {
			t.Errorf("pick %d: serial %s, parallel %s", i, serial.Chosen[i].Key(), parallel.Chosen[i].Key())
		}
	}
	if math.Float64bits(serial.FinalCost) != math.Float64bits(parallel.FinalCost) {
		t.Errorf("final cost differs: serial %v, parallel %v", serial.FinalCost, parallel.FinalCost)
	}
	if math.Float64bits(serial.BaseCost) != math.Float64bits(parallel.BaseCost) {
		t.Errorf("base cost differs: serial %v, parallel %v", serial.BaseCost, parallel.BaseCost)
	}
	if serial.TotalBytes != parallel.TotalBytes || serial.Rounds != parallel.Rounds {
		t.Errorf("serial (%d bytes, %d rounds) != parallel (%d bytes, %d rounds)",
			serial.TotalBytes, serial.Rounds, parallel.TotalBytes, parallel.Rounds)
	}
	for name, se := range serial.PerQuery {
		pe, ok := parallel.PerQuery[name]
		if !ok || se != pe {
			t.Errorf("%s: per-query costs differ: serial %v, parallel %v", name, se, pe)
		}
	}
}

// TestAddQueriesMatchesAddQuery checks the batch registration path leaves
// the advisor in the same state as the serial per-query path.
func TestAddQueriesMatchesAddQuery(t *testing.T) {
	s, err := workload.StarSchema(1.0)
	if err != nil {
		t.Fatal(err)
	}
	qs, err := s.Queries(42)
	if err != nil {
		t.Fatal(err)
	}
	qs = qs[:4]

	serial := New(s.Catalog, s.Stats, storage.BytesForGB(3))
	for _, q := range qs {
		if err := serial.AddQuery(q, 2); err != nil {
			t.Fatal(err)
		}
	}
	batch := New(s.Catalog, s.Stats, storage.BytesForGB(3))
	batch.Parallelism = 4
	if err := batch.AddQueries(qs, []float64{2, 2, 2, 2}); err != nil {
		t.Fatal(err)
	}
	if len(batch.queries) != len(serial.queries) {
		t.Fatalf("batch registered %d queries, serial %d", len(batch.queries), len(serial.queries))
	}
	for i := range serial.queries {
		sq, bq := serial.queries[i], batch.queries[i]
		if sq.Query.Name != bq.Query.Name || sq.Weight != bq.Weight {
			t.Errorf("query %d: (%s, %v) != (%s, %v)", i, sq.Query.Name, sq.Weight, bq.Query.Name, bq.Weight)
		}
		if math.Float64bits(sq.BaseCost) != math.Float64bits(bq.BaseCost) {
			t.Errorf("%s: base cost %v != %v", sq.Query.Name, sq.BaseCost, bq.BaseCost)
		}
		if sq.Cache.Stats.OptimizerCalls != bq.Cache.Stats.OptimizerCalls ||
			sq.Cache.Stats.PlansCached != bq.Cache.Stats.PlansCached {
			t.Errorf("%s: cache stats differ: %+v vs %+v", sq.Query.Name, sq.Cache.Stats, bq.Cache.Stats)
		}
	}
	if batch.calls != serial.calls {
		t.Errorf("batch spent %d optimizer calls, serial %d", batch.calls, serial.calls)
	}
	sres, err := serial.Run()
	if err != nil {
		t.Fatal(err)
	}
	bres, err := batch.Run()
	if err != nil {
		t.Fatal(err)
	}
	if math.Float64bits(sres.FinalCost) != math.Float64bits(bres.FinalCost) {
		t.Errorf("final costs differ: %v vs %v", sres.FinalCost, bres.FinalCost)
	}
	if len(sres.Chosen) != len(bres.Chosen) {
		t.Fatalf("chose %d vs %d indexes", len(sres.Chosen), len(bres.Chosen))
	}
	for i := range sres.Chosen {
		if sres.Chosen[i].Key() != bres.Chosen[i].Key() {
			t.Errorf("pick %d: %s vs %s", i, sres.Chosen[i].Key(), bres.Chosen[i].Key())
		}
	}
}

func TestAddQueriesWeightValidation(t *testing.T) {
	s, err := workload.StarSchema(1.0)
	if err != nil {
		t.Fatal(err)
	}
	qs, err := s.Queries(42)
	if err != nil {
		t.Fatal(err)
	}
	ad := New(s.Catalog, s.Stats, storage.BytesForGB(1))
	if err := ad.AddQueries(qs[:3], []float64{1, 2}); err == nil {
		t.Error("mismatched weights accepted")
	}
}

func TestExternalCandidates(t *testing.T) {
	s, ad, qs := setup(t, 5, 2)
	a, err := optimizer.NewAnalysis(qs[0], s.Stats, optimizer.DefaultCostParams())
	if err != nil {
		t.Fatal(err)
	}
	_ = a
	ix := storage.HypotheticalIndex("custom", s.Catalog.Table("fact"), []string{"a1", "m1"})
	if !ad.AddCandidate(ix) {
		t.Error("first AddCandidate rejected")
	}
	res, err := ad.Run()
	if err != nil {
		t.Fatal(err)
	}
	if res.CandidateCount != 1 {
		t.Errorf("candidate count %d, want 1 (only the external one)", res.CandidateCount)
	}
}

// TestAddCandidateDedupesByName checks the shared dedup set: repeated
// external candidates and external duplicates of generated candidates are
// both rejected by name.
func TestAddCandidateDedupesByName(t *testing.T) {
	s, ad, _ := setup(t, 5, 2)
	ix := storage.HypotheticalIndex("custom", s.Catalog.Table("fact"), []string{"a1", "m1"})
	if !ad.AddCandidate(ix) {
		t.Fatal("first AddCandidate rejected")
	}
	if ad.AddCandidate(ix) {
		t.Error("duplicate AddCandidate accepted")
	}
	same := storage.HypotheticalIndex("custom", s.Catalog.Table("fact"), []string{"m2"})
	if ad.AddCandidate(same) {
		t.Error("same-named candidate accepted")
	}
	n := ad.GenerateCandidates()
	if n <= 1 {
		t.Fatalf("generation produced %d candidates", n)
	}
	if ad.AddCandidate(ad.candidates[1]) {
		t.Error("generated candidate re-added externally")
	}
	if len(ad.candidates) != n {
		t.Errorf("candidate list grew to %d after duplicate adds, want %d", len(ad.candidates), n)
	}
	if errs := ad.GenerationErrors(); len(errs) != 0 {
		t.Errorf("healthy workload recorded generation errors: %v", errs)
	}
}

// assertIdenticalResults fails unless the two results are bit-identical:
// same picks in the same per-round order, bit-equal base/final and
// per-query costs, same byte budget and round count.
func assertIdenticalResults(t *testing.T, label string, got, want *Result) {
	t.Helper()
	if len(want.Chosen) == 0 {
		t.Fatalf("%s: reference chose nothing; the comparison is vacuous", label)
	}
	if len(got.Chosen) != len(want.Chosen) {
		t.Fatalf("%s: chose %d indexes, reference %d", label, len(got.Chosen), len(want.Chosen))
	}
	for i := range want.Chosen {
		if got.Chosen[i].Key() != want.Chosen[i].Key() {
			t.Errorf("%s: round %d pick %s, reference %s", label, i, got.Chosen[i].Key(), want.Chosen[i].Key())
		}
	}
	if math.Float64bits(got.BaseCost) != math.Float64bits(want.BaseCost) {
		t.Errorf("%s: base cost %v, reference %v", label, got.BaseCost, want.BaseCost)
	}
	if math.Float64bits(got.FinalCost) != math.Float64bits(want.FinalCost) {
		t.Errorf("%s: final cost %v, reference %v", label, got.FinalCost, want.FinalCost)
	}
	if got.TotalBytes != want.TotalBytes || got.Rounds != want.Rounds {
		t.Errorf("%s: (%d bytes, %d rounds), reference (%d bytes, %d rounds)",
			label, got.TotalBytes, got.Rounds, want.TotalBytes, want.Rounds)
	}
	if len(got.PerQuery) != len(want.PerQuery) {
		t.Fatalf("%s: %d per-query entries, reference %d", label, len(got.PerQuery), len(want.PerQuery))
	}
	for name, we := range want.PerQuery {
		ge, ok := got.PerQuery[name]
		if !ok || math.Float64bits(ge[0]) != math.Float64bits(we[0]) ||
			math.Float64bits(ge[1]) != math.Float64bits(we[1]) {
			t.Errorf("%s: %s per-query costs %v, reference %v", label, name, ge, we)
		}
	}
}

// TestRunMatchesReferenceStarWorkload is the tentpole's equivalence
// guarantee on the full star workload: the incremental engine's chosen
// set, per-round picks, and costs are bit-identical to the naive
// full-repricing reference, at every Parallelism setting — and the engine
// stats prove the table index actually pruned work.
func TestRunMatchesReferenceStarWorkload(t *testing.T) {
	s, err := workload.StarSchema(1.0)
	if err != nil {
		t.Fatal(err)
	}
	qs, err := s.Queries(42)
	if err != nil {
		t.Fatal(err)
	}
	for _, par := range []int{1, 8} {
		ad := New(s.Catalog, s.Stats, storage.BytesForGB(5))
		ad.Parallelism = par
		if err := ad.AddQueries(qs, nil); err != nil {
			t.Fatal(err)
		}
		ref, err := ad.RunReference()
		if err != nil {
			t.Fatal(err)
		}
		got, err := ad.Run()
		if err != nil {
			t.Fatal(err)
		}
		label := fmt.Sprintf("parallelism=%d", par)
		assertIdenticalResults(t, label, got, ref)

		// Engine-work accounting: every candidate evaluation visits each
		// query exactly once, as a delta or as a skip; the reference does
		// no delta work at all.
		st := got.Engine
		if st.QueryEvals == 0 || st.CandidateEvals == 0 {
			t.Errorf("%s: engine did no work: %+v", label, st)
		}
		if st.QuerySkips == 0 {
			t.Errorf("%s: table index skipped nothing on a workload with unreferenced tables: %+v", label, st)
		}
		if st.QueryEvals+st.QuerySkips != st.CandidateEvals*int64(len(qs)) {
			t.Errorf("%s: evals %d + skips %d != candidate evals %d × %d queries",
				label, st.QueryEvals, st.QuerySkips, st.CandidateEvals, len(qs))
		}
		if st.Applies != int64(got.Rounds) {
			t.Errorf("%s: %d applies for %d rounds", label, st.Applies, got.Rounds)
		}
		if ref.Engine != (costmatrix.Stats{}) {
			t.Errorf("%s: reference run reported engine stats: %+v", label, ref.Engine)
		}
	}
}

// selfJoinQuery builds a query joining dim1_1 to itself, plus a filter, so
// one table owns two relation slots with different requirements.
func selfJoinQuery(t *testing.T, s *workload.Star, name string, orderCol string) *query.Query {
	t.Helper()
	d := s.Catalog.Table("dim1_1")
	if d == nil {
		t.Fatal("no dim1_1 table")
	}
	q := &query.Query{
		Name: name,
		Rels: []query.Rel{{Table: d, Alias: "e"}, {Table: d, Alias: "m"}},
		Joins: []query.Join{{
			Left:  query.ColRef{Rel: 0, Column: "a1"},
			Right: query.ColRef{Rel: 1, Column: "id"},
		}},
		Filters: []query.Filter{{
			Col: query.ColRef{Rel: 0, Column: "a2"}, Op: query.Between, Value: 1, Value2: 1000,
		}},
		Select:  []query.ColRef{{Rel: 0, Column: "id"}, {Rel: 1, Column: "a2"}},
		OrderBy: []query.ColRef{{Rel: 1, Column: orderCol}},
	}
	if err := q.Validate(); err != nil {
		t.Fatal(err)
	}
	return q
}

// TestRunMatchesReferenceRandomizedWorkloads re-runs the equivalence check
// over randomized multi-table workloads (different generation seeds, mixed
// weights) that include self-join queries.
func TestRunMatchesReferenceRandomizedWorkloads(t *testing.T) {
	s, err := workload.StarSchema(1.0)
	if err != nil {
		t.Fatal(err)
	}
	for _, seed := range []int64{7, 19, 23} {
		qs, err := s.Queries(seed)
		if err != nil {
			t.Fatal(err)
		}
		qs = append(qs[:5],
			selfJoinQuery(t, s, fmt.Sprintf("SJ%d-a", seed), "a2"),
			selfJoinQuery(t, s, fmt.Sprintf("SJ%d-b", seed), "a3"))
		weights := make([]float64, len(qs))
		for i := range weights {
			weights[i] = float64(1 + (int(seed)+i)%4)
		}
		ad := New(s.Catalog, s.Stats, storage.BytesForGB(3))
		ad.Parallelism = 4
		if err := ad.AddQueries(qs, weights); err != nil {
			t.Fatal(err)
		}
		ref, err := ad.RunReference()
		if err != nil {
			t.Fatal(err)
		}
		got, err := ad.Run()
		if err != nil {
			t.Fatal(err)
		}
		assertIdenticalResults(t, fmt.Sprintf("seed=%d", seed), got, ref)
	}
}

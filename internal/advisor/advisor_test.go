package advisor

import (
	"math"
	"testing"

	"github.com/pinumdb/pinum/internal/optimizer"
	"github.com/pinumdb/pinum/internal/query"
	"github.com/pinumdb/pinum/internal/storage"
	"github.com/pinumdb/pinum/internal/workload"
)

func setup(t testing.TB, budgetGB float64, nQueries int) (*workload.Star, *Advisor, []*query.Query) {
	t.Helper()
	s, err := workload.StarSchema(1.0)
	if err != nil {
		t.Fatal(err)
	}
	qs, err := s.Queries(42)
	if err != nil {
		t.Fatal(err)
	}
	qs = qs[:nQueries]
	ad := New(s.Catalog, s.Stats, storage.BytesForGB(budgetGB))
	for _, q := range qs {
		if err := ad.AddQuery(q, 1); err != nil {
			t.Fatal(err)
		}
	}
	return s, ad, qs
}

func TestRunRequiresQueries(t *testing.T) {
	s, err := workload.StarSchema(1.0)
	if err != nil {
		t.Fatal(err)
	}
	ad := New(s.Catalog, s.Stats, storage.BytesForGB(1))
	if _, err := ad.Run(); err == nil {
		t.Error("advisor with no queries ran")
	}
}

func TestGreedySelectionRespectsBudget(t *testing.T) {
	_, ad, _ := setup(t, 3, 5)
	res, err := ad.Run()
	if err != nil {
		t.Fatal(err)
	}
	if res.TotalBytes > ad.BudgetBytes {
		t.Errorf("used %d bytes of %d budget", res.TotalBytes, ad.BudgetBytes)
	}
	var sum int64
	for _, ix := range res.Chosen {
		sum += storage.IndexBytes(ix)
	}
	if sum != res.TotalBytes {
		t.Errorf("TotalBytes %d != sum of chosen %d", res.TotalBytes, sum)
	}
	if res.FinalCost > res.BaseCost {
		t.Errorf("final cost %f above base %f", res.FinalCost, res.BaseCost)
	}
	if res.Rounds != len(res.Chosen) {
		t.Errorf("rounds %d != chosen %d", res.Rounds, len(res.Chosen))
	}
}

func TestBenefitIsMonotonePerQuery(t *testing.T) {
	_, ad, qs := setup(t, 5, 6)
	res, err := ad.Run()
	if err != nil {
		t.Fatal(err)
	}
	for _, q := range qs {
		e := res.PerQuery[q.Name]
		if e[1] > e[0]*(1+1e-9) {
			t.Errorf("%s: indexes made the estimate worse: %f -> %f", q.Name, e[0], e[1])
		}
	}
	if res.Speedup() < 0 || res.Speedup() > 1 {
		t.Errorf("speedup %f outside [0,1]", res.Speedup())
	}
}

func TestMaxIndexesCap(t *testing.T) {
	_, ad, _ := setup(t, 10, 5)
	ad.MaxIndexes = 2
	res, err := ad.Run()
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Chosen) > 2 {
		t.Errorf("chose %d indexes, cap was 2", len(res.Chosen))
	}
}

func TestZeroBudgetChoosesNothing(t *testing.T) {
	_, ad, _ := setup(t, 0, 3)
	res, err := ad.Run()
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Chosen) != 0 {
		t.Errorf("chose %d indexes with zero budget", len(res.Chosen))
	}
	if res.FinalCost != res.BaseCost {
		t.Error("cost changed without indexes")
	}
}

func TestNoOptimizerCallsDuringGreedyLoop(t *testing.T) {
	_, ad, _ := setup(t, 5, 4)
	callsAfterCaches := ad.calls
	res, err := ad.Run()
	if err != nil {
		t.Fatal(err)
	}
	if res.OptimizerCalls != callsAfterCaches {
		t.Errorf("greedy loop made optimizer calls: %d -> %d", callsAfterCaches, res.OptimizerCalls)
	}
	// The paper's point: 2 calls per query, regardless of candidates.
	if callsAfterCaches != 2*4 {
		t.Errorf("cache construction used %d calls, want 8", callsAfterCaches)
	}
}

// TestParallelRunMatchesSerial is the tentpole's determinism guarantee: the
// parallel greedy search must return byte-identical results to the serial
// one — same indexes in the same pick order, bit-equal costs.
func TestParallelRunMatchesSerial(t *testing.T) {
	s, err := workload.StarSchema(1.0)
	if err != nil {
		t.Fatal(err)
	}
	qs, err := s.Queries(42)
	if err != nil {
		t.Fatal(err)
	}
	qs = qs[:6]
	mk := func(par int) *Result {
		ad := New(s.Catalog, s.Stats, storage.BytesForGB(5))
		ad.Parallelism = par
		if err := ad.AddQueries(qs, nil); err != nil {
			t.Fatal(err)
		}
		res, err := ad.Run()
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	serial := mk(1)
	parallel := mk(8)
	if len(serial.Chosen) == 0 {
		t.Fatal("serial run chose nothing; the comparison is vacuous")
	}
	if len(serial.Chosen) != len(parallel.Chosen) {
		t.Fatalf("serial chose %d indexes, parallel %d", len(serial.Chosen), len(parallel.Chosen))
	}
	for i := range serial.Chosen {
		if serial.Chosen[i].Key() != parallel.Chosen[i].Key() {
			t.Errorf("pick %d: serial %s, parallel %s", i, serial.Chosen[i].Key(), parallel.Chosen[i].Key())
		}
	}
	if math.Float64bits(serial.FinalCost) != math.Float64bits(parallel.FinalCost) {
		t.Errorf("final cost differs: serial %v, parallel %v", serial.FinalCost, parallel.FinalCost)
	}
	if math.Float64bits(serial.BaseCost) != math.Float64bits(parallel.BaseCost) {
		t.Errorf("base cost differs: serial %v, parallel %v", serial.BaseCost, parallel.BaseCost)
	}
	if serial.TotalBytes != parallel.TotalBytes || serial.Rounds != parallel.Rounds {
		t.Errorf("serial (%d bytes, %d rounds) != parallel (%d bytes, %d rounds)",
			serial.TotalBytes, serial.Rounds, parallel.TotalBytes, parallel.Rounds)
	}
	for name, se := range serial.PerQuery {
		pe, ok := parallel.PerQuery[name]
		if !ok || se != pe {
			t.Errorf("%s: per-query costs differ: serial %v, parallel %v", name, se, pe)
		}
	}
}

// TestAddQueriesMatchesAddQuery checks the batch registration path leaves
// the advisor in the same state as the serial per-query path.
func TestAddQueriesMatchesAddQuery(t *testing.T) {
	s, err := workload.StarSchema(1.0)
	if err != nil {
		t.Fatal(err)
	}
	qs, err := s.Queries(42)
	if err != nil {
		t.Fatal(err)
	}
	qs = qs[:4]

	serial := New(s.Catalog, s.Stats, storage.BytesForGB(3))
	for _, q := range qs {
		if err := serial.AddQuery(q, 2); err != nil {
			t.Fatal(err)
		}
	}
	batch := New(s.Catalog, s.Stats, storage.BytesForGB(3))
	batch.Parallelism = 4
	if err := batch.AddQueries(qs, []float64{2, 2, 2, 2}); err != nil {
		t.Fatal(err)
	}
	if len(batch.queries) != len(serial.queries) {
		t.Fatalf("batch registered %d queries, serial %d", len(batch.queries), len(serial.queries))
	}
	for i := range serial.queries {
		sq, bq := serial.queries[i], batch.queries[i]
		if sq.Query.Name != bq.Query.Name || sq.Weight != bq.Weight {
			t.Errorf("query %d: (%s, %v) != (%s, %v)", i, sq.Query.Name, sq.Weight, bq.Query.Name, bq.Weight)
		}
		if math.Float64bits(sq.BaseCost) != math.Float64bits(bq.BaseCost) {
			t.Errorf("%s: base cost %v != %v", sq.Query.Name, sq.BaseCost, bq.BaseCost)
		}
		if sq.Cache.Stats.OptimizerCalls != bq.Cache.Stats.OptimizerCalls ||
			sq.Cache.Stats.PlansCached != bq.Cache.Stats.PlansCached {
			t.Errorf("%s: cache stats differ: %+v vs %+v", sq.Query.Name, sq.Cache.Stats, bq.Cache.Stats)
		}
	}
	if batch.calls != serial.calls {
		t.Errorf("batch spent %d optimizer calls, serial %d", batch.calls, serial.calls)
	}
	sres, err := serial.Run()
	if err != nil {
		t.Fatal(err)
	}
	bres, err := batch.Run()
	if err != nil {
		t.Fatal(err)
	}
	if math.Float64bits(sres.FinalCost) != math.Float64bits(bres.FinalCost) {
		t.Errorf("final costs differ: %v vs %v", sres.FinalCost, bres.FinalCost)
	}
	if len(sres.Chosen) != len(bres.Chosen) {
		t.Fatalf("chose %d vs %d indexes", len(sres.Chosen), len(bres.Chosen))
	}
	for i := range sres.Chosen {
		if sres.Chosen[i].Key() != bres.Chosen[i].Key() {
			t.Errorf("pick %d: %s vs %s", i, sres.Chosen[i].Key(), bres.Chosen[i].Key())
		}
	}
}

func TestAddQueriesWeightValidation(t *testing.T) {
	s, err := workload.StarSchema(1.0)
	if err != nil {
		t.Fatal(err)
	}
	qs, err := s.Queries(42)
	if err != nil {
		t.Fatal(err)
	}
	ad := New(s.Catalog, s.Stats, storage.BytesForGB(1))
	if err := ad.AddQueries(qs[:3], []float64{1, 2}); err == nil {
		t.Error("mismatched weights accepted")
	}
}

func TestExternalCandidates(t *testing.T) {
	s, ad, qs := setup(t, 5, 2)
	a, err := optimizer.NewAnalysis(qs[0], s.Stats, optimizer.DefaultCostParams())
	if err != nil {
		t.Fatal(err)
	}
	_ = a
	ix := storage.HypotheticalIndex("custom", s.Catalog.Table("fact"), []string{"a1", "m1"})
	ad.AddCandidate(ix)
	res, err := ad.Run()
	if err != nil {
		t.Fatal(err)
	}
	if res.CandidateCount != 1 {
		t.Errorf("candidate count %d, want 1 (only the external one)", res.CandidateCount)
	}
}

package obs

import (
	"bytes"
	"flag"
	"math"
	"os"
	"path/filepath"
	"sync"
	"testing"
)

var update = flag.Bool("update", false, "rewrite golden files")

// TestBucketBounds pins the bucket ladder itself: 16 bounds, 100µs
// doubling each step, every doubling exact.
func TestBucketBounds(t *testing.T) {
	if len(BucketBounds) != HistogramBuckets {
		t.Fatalf("got %d bounds, want %d", len(BucketBounds), HistogramBuckets)
	}
	if BucketBounds[0] != 1e-4 {
		t.Fatalf("first bound = %v, want 1e-4", BucketBounds[0])
	}
	for i := 1; i < HistogramBuckets; i++ {
		if BucketBounds[i] != 2*BucketBounds[i-1] {
			t.Fatalf("bound %d = %v, want exactly double %v", i, BucketBounds[i], BucketBounds[i-1])
		}
	}
}

// TestHistogramBucketMath pins the boundary rule (le is inclusive: a
// value exactly on a bound lands in that bound's bucket), the first and
// last buckets, and the +Inf overflow bucket.
func TestHistogramBucketMath(t *testing.T) {
	var h Histogram
	for i, bound := range BucketBounds {
		h.Observe(bound)
		if got := h.BucketCount(i); got != 1 {
			t.Fatalf("Observe(bound %d = %v) landed elsewhere: bucket count %d", i, bound, got)
		}
	}
	// A hair above each bound falls to the next bucket (the last bound's
	// next bucket is the overflow).
	var h2 Histogram
	for i, bound := range BucketBounds {
		h2.Observe(math.Nextafter(bound, math.Inf(1)))
		want := i + 1
		if got := h2.BucketCount(want); got != 1 {
			t.Fatalf("Observe(just above bound %d) missed bucket %d: count %d", i, want, got)
		}
	}
	// Zero and negative values land in the first bucket; huge values in
	// the overflow.
	var h3 Histogram
	h3.Observe(0)
	h3.Observe(-1)
	if got := h3.BucketCount(0); got != 2 {
		t.Fatalf("zero/negative observations: first bucket count %d, want 2", got)
	}
	h3.Observe(1e9)
	if got := h3.BucketCount(HistogramBuckets); got != 1 {
		t.Fatalf("1e9 observation: overflow bucket count %d, want 1", got)
	}
	if h3.Count() != 3 {
		t.Fatalf("Count = %d, want 3", h3.Count())
	}
	if h3.Max() != 1e9 {
		t.Fatalf("Max = %v, want 1e9", h3.Max())
	}
}

// TestHistogramSumMax pins the CAS-maintained aggregates.
func TestHistogramSumMax(t *testing.T) {
	var h Histogram
	vals := []float64{0.001, 0.25, 0.003, 0.1}
	want := 0.0
	for _, v := range vals {
		h.Observe(v)
		want += v
	}
	if h.Sum() != want {
		t.Fatalf("Sum = %v, want %v", h.Sum(), want)
	}
	if h.Max() != 0.25 {
		t.Fatalf("Max = %v, want 0.25", h.Max())
	}
	if h.Count() != int64(len(vals)) {
		t.Fatalf("Count = %d, want %d", h.Count(), len(vals))
	}
}

// TestHistogramConcurrent hammers one histogram from many goroutines —
// run under -race, it is the data-race check for the lock-free recording
// path; its assertions pin that no observation is lost or double-counted
// under contention.
func TestHistogramConcurrent(t *testing.T) {
	const (
		goroutines = 16
		perG       = 2000
	)
	var h Histogram
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < perG; i++ {
				// Spread observations over several buckets, same value set
				// per goroutine so the expected sum is order-independent.
				h.Observe(BucketBounds[i%4])
			}
		}(g)
	}
	wg.Wait()
	if h.Count() != goroutines*perG {
		t.Fatalf("Count = %d, want %d", h.Count(), goroutines*perG)
	}
	var bucketTotal int64
	for i := 0; i <= HistogramBuckets; i++ {
		bucketTotal += h.BucketCount(i)
	}
	if bucketTotal != goroutines*perG {
		t.Fatalf("bucket counts sum to %d, want %d", bucketTotal, goroutines*perG)
	}
	// Every add is atomic (CAS of old+v), so the final sum equals a serial
	// accumulation of the same multiset in any order of equal addends.
	want := 0.0
	for g := 0; g < goroutines; g++ {
		for i := 0; i < perG; i++ {
			want += BucketBounds[i%4]
		}
	}
	// Equal-magnitude interleavings can differ in rounding; allow 1 ulp
	// per operation of drift.
	if diff := math.Abs(h.Sum() - want); diff > 1e-9*want {
		t.Fatalf("Sum = %v, want ~%v (diff %v)", h.Sum(), want, diff)
	}
	if h.Max() != BucketBounds[3] {
		t.Fatalf("Max = %v, want %v", h.Max(), BucketBounds[3])
	}
}

// TestRegistryIdempotent pins handle identity: the same (name, labels)
// returns the same handle regardless of label order, and a kind
// mismatch panics loudly.
func TestRegistryIdempotent(t *testing.T) {
	r := NewRegistry()
	a := r.Counter("x_total", "x", L("a", "1"), L("b", "2"))
	b := r.Counter("x_total", "x", L("b", "2"), L("a", "1"))
	if a != b {
		t.Fatal("same name+labels in different order returned distinct handles")
	}
	c := r.Counter("x_total", "x", L("a", "other"))
	if a == c {
		t.Fatal("distinct label values shared a handle")
	}
	defer func() {
		if recover() == nil {
			t.Fatal("registering one name under two kinds did not panic")
		}
	}()
	r.Gauge("x_total", "x")
}

// TestExpositionGolden pins the Prometheus text exposition byte for
// byte: family and series ordering, label escaping, histogram
// bucket/sum/count rendering, and float formatting. Regenerate with
// `go test ./internal/obs -run Golden -update` after an intentional
// format change.
func TestExpositionGolden(t *testing.T) {
	r := NewRegistry()
	r.Counter("pinum_test_requests_total", "Requests received.", L("endpoint", "/whatif")).Add(3)
	r.Counter("pinum_test_requests_total", "Requests received.", L("endpoint", "/statz")).Inc()
	r.Gauge("pinum_test_heap_bytes", "Resident heap bytes.").Set(12345.5)
	r.GaugeFunc("pinum_test_workers", "Configured workers.", func() float64 { return 8 })
	r.Counter("pinum_test_escapes_total", "Escaping: backslash \\ and newline\nsurvive.",
		L("path", `C:\tmp`), L("quote", `say "hi"`)).Inc()
	h := r.Histogram("pinum_test_latency_seconds", "Request latency.", L("endpoint", "/whatif"))
	h.Observe(0.0001)  // first bucket (le inclusive)
	h.Observe(0.00025) // 0.0004 bucket
	h.Observe(0.5)     // 0.8192 bucket
	h.Observe(10)      // +Inf overflow
	scrapes := 0
	r.OnScrape(func() { scrapes++ })

	var buf bytes.Buffer
	if err := r.WriteText(&buf); err != nil {
		t.Fatal(err)
	}
	if scrapes != 1 {
		t.Fatalf("scrape hook ran %d times, want 1", scrapes)
	}

	golden := filepath.Join("testdata", "exposition.golden")
	if *update {
		if err := os.WriteFile(golden, buf.Bytes(), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(golden)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(buf.Bytes(), want) {
		t.Fatalf("exposition differs from %s:\n--- got ---\n%s\n--- want ---\n%s", golden, buf.Bytes(), want)
	}

	// Determinism: a second scrape of unchanged state is byte-identical.
	var again bytes.Buffer
	if err := r.WriteText(&again); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(buf.Bytes(), again.Bytes()) {
		t.Fatal("two scrapes of identical state rendered different bytes")
	}
}

// TestRecordingAllocFree pins the hot-path contract the //pinum:hotpath
// annotations in metrics.go declare: recording on pre-registered handles
// never allocates.
func TestRecordingAllocFree(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("c_total", "c")
	g := r.Gauge("g", "g")
	h := r.Histogram("h_seconds", "h")
	if n := testing.AllocsPerRun(1000, func() {
		c.Inc()
		c.Add(2)
		g.Set(1.5)
		h.Observe(0.01)
	}); n != 0 {
		t.Fatalf("recording allocated %v times per op, want 0", n)
	}
}

func BenchmarkHistogramObserve(b *testing.B) {
	var h Histogram
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		h.Observe(0.0042)
	}
}

func BenchmarkCounterInc(b *testing.B) {
	var c Counter
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		c.Inc()
	}
}

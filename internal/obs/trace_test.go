package obs

import (
	"context"
	"sync"
	"testing"
	"time"
)

// TestTraceSpans pins span recording and the deterministic view: spans
// sort by (offset, name) regardless of Add order, offsets clamp at zero,
// and the ID survives to the view.
func TestTraceSpans(t *testing.T) {
	start := time.Unix(100, 0)
	tr := NewTraceAt("abc-1", start)
	tr.Add("encode", start.Add(30*time.Millisecond), 5*time.Millisecond)
	tr.Add("decode", start.Add(1*time.Millisecond), 2*time.Millisecond)
	tr.Add("query:b", start.Add(10*time.Millisecond), 3*time.Millisecond)
	tr.Add("query:a", start.Add(10*time.Millisecond), 4*time.Millisecond)
	tr.Add("early", start.Add(-time.Second), time.Millisecond) // clamped

	if tr.ID() != "abc-1" {
		t.Fatalf("ID = %q", tr.ID())
	}
	v := tr.View()
	if v.ID != "abc-1" {
		t.Fatalf("view ID = %q", v.ID)
	}
	wantOrder := []string{"early", "decode", "query:a", "query:b", "encode"}
	if len(v.Spans) != len(wantOrder) {
		t.Fatalf("got %d spans, want %d", len(v.Spans), len(wantOrder))
	}
	for i, name := range wantOrder {
		if v.Spans[i].Name != name {
			t.Fatalf("span %d = %q, want %q (order must be (start, name))", i, v.Spans[i].Name, name)
		}
	}
	if v.Spans[0].StartNs != 0 {
		t.Fatalf("pre-start span offset = %d, want clamped 0", v.Spans[0].StartNs)
	}
	if v.Spans[1].StartNs != int64(time.Millisecond) || v.Spans[1].DurNs != int64(2*time.Millisecond) {
		t.Fatalf("decode span = %+v", v.Spans[1])
	}
}

// TestTraceNilSafe pins the tracing-off contract: every method on a nil
// trace is a safe no-op.
func TestTraceNilSafe(t *testing.T) {
	var tr *Trace
	tr.Add("x", time.Now(), time.Second)
	if tr.ID() != "" {
		t.Fatalf("nil ID = %q", tr.ID())
	}
	if tr.View() != nil {
		t.Fatal("nil View() != nil")
	}
}

// TestTraceContext pins the context plumbing: WithTrace/TraceFrom round
// trip, and a context without a trace yields nil.
func TestTraceContext(t *testing.T) {
	if TraceFrom(context.Background()) != nil {
		t.Fatal("empty context produced a trace")
	}
	tr := NewTrace("t1")
	ctx := WithTrace(context.Background(), tr)
	if TraceFrom(ctx) != tr {
		t.Fatal("trace did not round-trip through the context")
	}
}

// TestTraceConcurrentAdd pins that concurrent span recording (the
// fan-out workers) is safe and loses nothing; run under -race.
func TestTraceConcurrentAdd(t *testing.T) {
	tr := NewTrace("conc")
	var wg sync.WaitGroup
	const n = 50
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			tr.Add("q", time.Now(), time.Microsecond)
		}()
	}
	wg.Wait()
	if got := len(tr.View().Spans); got != n {
		t.Fatalf("got %d spans, want %d", got, n)
	}
}

// TestTraceAddNilAllocFree is the pin the //pinum:allocfree directive on
// Trace.Add cites: with tracing off (nil trace), recording a span
// allocates nothing.
func TestTraceAddNilAllocFree(t *testing.T) {
	var tr *Trace
	now := time.Now()
	if n := testing.AllocsPerRun(1000, func() {
		tr.Add("decode", now, time.Millisecond)
		_ = tr.ID()
	}); n != 0 {
		t.Fatalf("nil-trace Add allocated %v times per op, want 0", n)
	}
	// The context miss path is equally free.
	ctx := context.Background()
	if n := testing.AllocsPerRun(1000, func() {
		_ = TraceFrom(ctx)
	}); n != 0 {
		t.Fatalf("TraceFrom miss allocated %v times per op, want 0", n)
	}
}

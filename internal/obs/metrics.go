// Package obs is the serving stack's observability layer: a typed,
// stdlib-only metrics registry with Prometheus text exposition, a
// context-carried request trace, and a fixed-size operational event log.
//
// Recording is lock-free: handles (Counter, Gauge, Histogram) are
// resolved once at registration time and record through atomics, so the
// request hot path never takes the registry lock — the lock only guards
// registration and scrape-time iteration. Exposition is deterministic:
// families and series render in sorted order, and values format through
// strconv with fixed precision rules, so two scrapes of the same
// recorded state are byte-identical (the golden exposition test pins
// this).
package obs

import (
	"bytes"
	"io"
	"math"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
)

// Label is one name/value pair attached to a metric series.
type Label struct {
	Key   string
	Value string
}

// L is shorthand for constructing a Label at a registration site.
func L(key, value string) Label { return Label{Key: key, Value: value} }

// ------------------------------------------------------------ handles --

// Counter is a monotonically increasing integer metric. All methods are
// safe for concurrent use and never allocate.
type Counter struct{ v atomic.Int64 }

// Inc adds one.
//
//pinum:hotpath
func (c *Counter) Inc() { c.v.Add(1) }

// Add adds n (n must be non-negative; counters only go up).
//
//pinum:hotpath
func (c *Counter) Add(n int64) { c.v.Add(n) }

// Value reads the current count.
func (c *Counter) Value() int64 { return c.v.Load() }

// Gauge is a float metric that can go up and down, stored as atomic
// float bits. All methods are safe for concurrent use and never
// allocate.
type Gauge struct{ bits atomic.Uint64 }

// Set stores v.
//
//pinum:hotpath
func (g *Gauge) Set(v float64) { g.bits.Store(math.Float64bits(v)) }

// Value reads the current value.
func (g *Gauge) Value() float64 { return math.Float64frombits(g.bits.Load()) }

// HistogramBuckets is the number of finite histogram buckets; one
// overflow bucket (+Inf) sits past them.
const HistogramBuckets = 16

// BucketBounds are the fixed log-scale latency bucket upper bounds in
// seconds: 100µs doubling per bucket up to ~3.28s. Doubling a float is
// exact, so every bound formats cleanly in the exposition. A value v
// lands in the first bucket with v <= bound; past the last bound it
// lands in the +Inf overflow bucket.
var BucketBounds = func() [HistogramBuckets]float64 {
	var b [HistogramBuckets]float64
	v := 1e-4
	for i := range b {
		b[i] = v
		v *= 2
	}
	return b
}()

// Histogram is a fixed-bucket latency histogram (see BucketBounds) with
// a running sum, count and max. Observe is lock-free and allocation-free;
// sum and max are maintained with CAS loops over float bits.
type Histogram struct {
	counts [HistogramBuckets + 1]atomic.Int64 // last slot is +Inf overflow
	count  atomic.Int64
	sum    atomic.Uint64 // float64 bits
	max    atomic.Uint64 // float64 bits
}

// Observe records one value (seconds, for latency histograms).
//
//pinum:hotpath
func (h *Histogram) Observe(v float64) {
	i := 0
	for i < HistogramBuckets && v > BucketBounds[i] {
		i++
	}
	h.counts[i].Add(1)
	h.count.Add(1)
	for {
		old := h.sum.Load()
		if h.sum.CompareAndSwap(old, math.Float64bits(math.Float64frombits(old)+v)) {
			break
		}
	}
	for {
		old := h.max.Load()
		if v <= math.Float64frombits(old) {
			break
		}
		if h.max.CompareAndSwap(old, math.Float64bits(v)) {
			break
		}
	}
}

// Count reads the total number of observations.
func (h *Histogram) Count() int64 { return h.count.Load() }

// Sum reads the running sum of observed values.
func (h *Histogram) Sum() float64 { return math.Float64frombits(h.sum.Load()) }

// Max reads the largest observed value (0 before any observation).
func (h *Histogram) Max() float64 { return math.Float64frombits(h.max.Load()) }

// BucketCount reads bucket i's (non-cumulative) count; i equal to
// HistogramBuckets reads the +Inf overflow bucket.
func (h *Histogram) BucketCount(i int) int64 { return h.counts[i].Load() }

// ----------------------------------------------------------- registry --

type kind uint8

const (
	kindCounter kind = iota
	kindGauge
	kindHistogram
)

func (k kind) String() string {
	switch k {
	case kindCounter:
		return "counter"
	case kindGauge:
		return "gauge"
	default:
		return "histogram"
	}
}

// series is one labeled instance of a metric family. Exactly one of the
// value fields is set, matching the family's kind.
type series struct {
	labels  string // rendered sorted label set, `{k="v",...}` or ""
	counter *Counter
	gauge   *Gauge
	gaugeFn func() float64
	hist    *Histogram
}

// family is one metric name with its help text, kind and series.
type family struct {
	name   string
	help   string
	kind   kind
	series map[string]*series
}

// Registry holds metric families and renders them as Prometheus text.
// Registration is idempotent: the same (name, label set) returns the
// same handle, so call sites need no caching discipline. Registering a
// name under two different kinds panics — that is a programming error,
// not an operational condition.
type Registry struct {
	mu       sync.Mutex
	families map[string]*family
	onScrape []func()
}

// NewRegistry builds an empty registry.
func NewRegistry() *Registry {
	return &Registry{families: make(map[string]*family)}
}

// Counter registers (or returns the existing) counter series.
func (r *Registry) Counter(name, help string, labels ...Label) *Counter {
	sr := r.getSeries(name, help, kindCounter, labels)
	return sr.counter
}

// Gauge registers (or returns the existing) gauge series.
func (r *Registry) Gauge(name, help string, labels ...Label) *Gauge {
	sr := r.getSeries(name, help, kindGauge, labels)
	return sr.gauge
}

// GaugeFunc registers a gauge whose value is computed by fn at scrape
// time (fn must be safe to call from any goroutine).
func (r *Registry) GaugeFunc(name, help string, fn func() float64, labels ...Label) {
	sr := r.getSeries(name, help, kindGauge, labels)
	sr.gaugeFn = fn
}

// Histogram registers (or returns the existing) histogram series.
func (r *Registry) Histogram(name, help string, labels ...Label) *Histogram {
	sr := r.getSeries(name, help, kindHistogram, labels)
	return sr.hist
}

// OnScrape registers a hook run at the start of every WriteText — the
// place to refresh pull-style gauges (runtime memory stats) exactly once
// per scrape instead of per series.
func (r *Registry) OnScrape(fn func()) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.onScrape = append(r.onScrape, fn)
}

func (r *Registry) getSeries(name, help string, k kind, labels []Label) *series {
	key := renderLabels(labels)
	r.mu.Lock()
	defer r.mu.Unlock()
	fam := r.families[name]
	if fam == nil {
		fam = &family{name: name, help: help, kind: k, series: make(map[string]*series)}
		r.families[name] = fam
	}
	if fam.kind != k {
		panic("obs: metric " + name + " registered as " + fam.kind.String() + " and " + k.String())
	}
	sr := fam.series[key]
	if sr == nil {
		sr = &series{labels: key}
		switch k {
		case kindCounter:
			sr.counter = &Counter{}
		case kindGauge:
			sr.gauge = &Gauge{}
		case kindHistogram:
			sr.hist = &Histogram{}
		}
		fam.series[key] = sr
	}
	return sr
}

// renderLabels renders a sorted, escaped label set: `{k="v",k2="v2"}`,
// or "" for no labels. Sorting here is what makes the exposition — and
// registration idempotence — independent of the call site's label order.
func renderLabels(labels []Label) string {
	if len(labels) == 0 {
		return ""
	}
	sorted := make([]Label, len(labels))
	copy(sorted, labels)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i].Key < sorted[j].Key })
	var b strings.Builder
	b.WriteByte('{')
	for i, l := range sorted {
		if i > 0 {
			b.WriteByte(',')
		}
		b.WriteString(l.Key)
		b.WriteString(`="`)
		b.WriteString(escapeLabelValue(l.Value))
		b.WriteByte('"')
	}
	b.WriteByte('}')
	return b.String()
}

// escapeLabelValue applies the Prometheus text-format escapes for label
// values: backslash, double quote and newline.
func escapeLabelValue(v string) string {
	if !strings.ContainsAny(v, "\\\"\n") {
		return v
	}
	var b strings.Builder
	for _, r := range v {
		switch r {
		case '\\':
			b.WriteString(`\\`)
		case '"':
			b.WriteString(`\"`)
		case '\n':
			b.WriteString(`\n`)
		default:
			b.WriteRune(r)
		}
	}
	return b.String()
}

// escapeHelp applies the Prometheus text-format escapes for HELP lines:
// backslash and newline.
func escapeHelp(v string) string {
	if !strings.ContainsAny(v, "\\\n") {
		return v
	}
	var b strings.Builder
	for _, r := range v {
		switch r {
		case '\\':
			b.WriteString(`\\`)
		case '\n':
			b.WriteString(`\n`)
		default:
			b.WriteRune(r)
		}
	}
	return b.String()
}

// WriteText renders every family in Prometheus text exposition format
// (version 0.0.4): families sorted by name, series sorted by label set,
// histograms as cumulative _bucket/_sum/_count series. Scrape hooks run
// first, outside the lock, so they may Set gauges freely.
func (r *Registry) WriteText(w io.Writer) error {
	r.mu.Lock()
	hooks := make([]func(), len(r.onScrape))
	copy(hooks, r.onScrape)
	r.mu.Unlock()
	for _, fn := range hooks {
		fn()
	}

	r.mu.Lock()
	defer r.mu.Unlock()
	var names []string
	for name := range r.families {
		names = append(names, name)
	}
	sort.Strings(names)
	var buf bytes.Buffer
	for _, name := range names {
		writeFamily(&buf, r.families[name])
	}
	_, err := w.Write(buf.Bytes())
	return err
}

// writeFamily renders one family's HELP/TYPE header and every series in
// sorted label order.
func writeFamily(buf *bytes.Buffer, fam *family) {
	buf.WriteString("# HELP ")
	buf.WriteString(fam.name)
	buf.WriteByte(' ')
	buf.WriteString(escapeHelp(fam.help))
	buf.WriteString("\n# TYPE ")
	buf.WriteString(fam.name)
	buf.WriteByte(' ')
	buf.WriteString(fam.kind.String())
	buf.WriteByte('\n')
	var keys []string
	for key := range fam.series {
		keys = append(keys, key)
	}
	sort.Strings(keys)
	for _, key := range keys {
		sr := fam.series[key]
		switch fam.kind {
		case kindCounter:
			writeSample(buf, fam.name, "", sr.labels, formatInt(sr.counter.Value()))
		case kindGauge:
			v := sr.gauge.Value()
			if sr.gaugeFn != nil {
				v = sr.gaugeFn()
			}
			writeSample(buf, fam.name, "", sr.labels, formatFloat(v))
		case kindHistogram:
			writeHistogram(buf, fam.name, sr)
		}
	}
}

// writeHistogram renders one histogram series: cumulative buckets with
// an le label, then _sum and _count.
func writeHistogram(buf *bytes.Buffer, name string, sr *series) {
	cum := int64(0)
	for i := 0; i < HistogramBuckets; i++ {
		cum += sr.hist.BucketCount(i)
		writeSample(buf, name, "_bucket", labelsWithLe(sr.labels, formatFloat(BucketBounds[i])), formatInt(cum))
	}
	total := sr.hist.Count()
	writeSample(buf, name, "_bucket", labelsWithLe(sr.labels, "+Inf"), formatInt(total))
	writeSample(buf, name, "_sum", sr.labels, formatFloat(sr.hist.Sum()))
	writeSample(buf, name, "_count", sr.labels, formatInt(total))
}

// labelsWithLe splices an le="bound" label onto a rendered label set.
func labelsWithLe(labels, bound string) string {
	le := `le="` + bound + `"`
	if labels == "" {
		return "{" + le + "}"
	}
	return labels[:len(labels)-1] + "," + le + "}"
}

func writeSample(buf *bytes.Buffer, name, suffix, labels, value string) {
	buf.WriteString(name)
	buf.WriteString(suffix)
	buf.WriteString(labels)
	buf.WriteByte(' ')
	buf.WriteString(value)
	buf.WriteByte('\n')
}

func formatInt(v int64) string { return strconv.FormatInt(v, 10) }

// formatFloat renders a float the shortest way that round-trips —
// deterministic for a given bit pattern, which is all the golden test
// needs.
func formatFloat(v float64) string {
	if math.IsInf(v, 1) {
		return "+Inf"
	}
	if math.IsInf(v, -1) {
		return "-Inf"
	}
	return strconv.FormatFloat(v, 'g', -1, 64)
}

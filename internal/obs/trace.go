package obs

// Request tracing: a Trace rides the request context and accumulates
// named span timings (decode, route, load, fan-out, per-query, encode).
// Tracing is strictly opt-in per request; the off path must stay
// allocation-free, which is why every recording entry point is nil-safe —
// an untraced request carries a nil *Trace and each Add is a single
// pointer test.

import (
	"context"
	"sort"
	"sync"
	"time"
)

// Span is one timed phase of a traced request. Offsets are nanoseconds
// from the trace's start, so spans order and nest without wall-clock
// values on the wire.
type Span struct {
	Name    string `json:"name"`
	StartNs int64  `json:"start_ns"`
	DurNs   int64  `json:"dur_ns"`
}

// Trace accumulates spans for one request. A nil *Trace is a valid
// "tracing off" trace: every method no-ops (or returns a zero value),
// so call sites record unconditionally.
type Trace struct {
	id    string
	start time.Time

	mu    sync.Mutex
	spans []Span
}

// NewTrace builds a trace whose span offsets are measured from now.
func NewTrace(id string) *Trace {
	//pinum:nondeterministic-ok trace timing is wall-clock by design; never feeds computed results
	return NewTraceAt(id, time.Now())
}

// NewTraceAt builds a trace whose span offsets are measured from start —
// the handler entry time, so the decode span's offset is non-negative.
func NewTraceAt(id string, start time.Time) *Trace {
	return &Trace{id: id, start: start}
}

// ID returns the trace ID ("" for a nil trace).
func (t *Trace) ID() string {
	if t == nil {
		return ""
	}
	return t.id
}

// Add records one span. Nil-safe: on an untraced request this is the
// single pointer test that keeps the hot path allocation-free.
//
//pinum:allocfree nil receiver is the tracing-off path; pinned by TestTraceAddNilAllocFree
func (t *Trace) Add(name string, start time.Time, d time.Duration) {
	if t == nil {
		return
	}
	off := start.Sub(t.start).Nanoseconds()
	if off < 0 {
		off = 0
	}
	t.mu.Lock()
	t.spans = append(t.spans, Span{Name: name, StartNs: off, DurNs: d.Nanoseconds()})
	t.mu.Unlock()
}

// TraceView is the wire form of a finished trace: the ID and its spans
// sorted by (start offset, name) — per-query spans land concurrently
// from the fan-out workers, so recording order is scheduling-dependent
// but the rendered view is not.
type TraceView struct {
	ID    string `json:"id"`
	Spans []Span `json:"spans"`
}

// View snapshots the trace for a response (nil for a nil trace).
func (t *Trace) View() *TraceView {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	spans := make([]Span, len(t.spans))
	copy(spans, t.spans)
	t.mu.Unlock()
	sort.Slice(spans, func(i, j int) bool {
		if spans[i].StartNs != spans[j].StartNs {
			return spans[i].StartNs < spans[j].StartNs
		}
		return spans[i].Name < spans[j].Name
	})
	return &TraceView{ID: t.id, Spans: spans}
}

// ctxKey keys the trace in a request context.
type ctxKey struct{}

// WithTrace attaches a trace to a context. Only called for traced
// requests; untraced requests never pay the context allocation.
func WithTrace(ctx context.Context, t *Trace) context.Context {
	return context.WithValue(ctx, ctxKey{}, t)
}

// TraceFrom returns the context's trace, or nil. The miss path does not
// allocate.
func TraceFrom(ctx context.Context) *Trace {
	t, _ := ctx.Value(ctxKey{}).(*Trace)
	return t
}

package obs

import (
	"sync"
	"testing"
	"time"
)

// TestEventLogRing pins the flight-recorder semantics: sequence numbers
// are process-lifetime, the ring retains the newest size events oldest
// first, and Total keeps counting past the wrap.
func TestEventLogRing(t *testing.T) {
	l := NewEventLog(4)
	if l.Cap() != 4 {
		t.Fatalf("Cap = %d, want 4", l.Cap())
	}
	for i := 1; i <= 10; i++ {
		seq := l.Record(Event{Type: "reload", Tenant: "acme"})
		if seq != int64(i) {
			t.Fatalf("Record %d returned seq %d", i, seq)
		}
	}
	if l.Total() != 10 {
		t.Fatalf("Total = %d, want 10", l.Total())
	}
	events := l.Events()
	if len(events) != 4 {
		t.Fatalf("retained %d events, want 4", len(events))
	}
	for i, e := range events {
		if want := int64(7 + i); e.Seq != want {
			t.Fatalf("event %d seq = %d, want %d (oldest first)", i, e.Seq, want)
		}
		if e.Time.IsZero() {
			t.Fatalf("event %d has no timestamp", i)
		}
	}
}

// TestEventLogUnderfilled pins the pre-wrap shape: fewer events than
// capacity come back exactly, in order.
func TestEventLogUnderfilled(t *testing.T) {
	l := NewEventLog(0) // default capacity
	if l.Cap() != DefaultEventLogSize {
		t.Fatalf("default Cap = %d, want %d", l.Cap(), DefaultEventLogSize)
	}
	preset := time.Date(2026, 8, 8, 12, 0, 0, 0, time.UTC)
	l.Record(Event{Type: "cold-load", Time: preset})
	l.Record(Event{Type: "eviction", TraceID: "op-1"})
	events := l.Events()
	if len(events) != 2 {
		t.Fatalf("retained %d events, want 2", len(events))
	}
	if events[0].Type != "cold-load" || !events[0].Time.Equal(preset) {
		t.Fatalf("preset timestamp not preserved: %+v", events[0])
	}
	if events[1].Type != "eviction" || events[1].TraceID != "op-1" {
		t.Fatalf("event fields lost: %+v", events[1])
	}
}

// TestEventLogConcurrent pins recording safety under contention; run
// under -race.
func TestEventLogConcurrent(t *testing.T) {
	l := NewEventLog(32)
	var wg sync.WaitGroup
	const n = 100
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			l.Record(Event{Type: "slow-request"})
		}()
	}
	wg.Wait()
	if l.Total() != n {
		t.Fatalf("Total = %d, want %d", l.Total(), n)
	}
	events := l.Events()
	if len(events) != 32 {
		t.Fatalf("retained %d, want 32", len(events))
	}
	for i := 1; i < len(events); i++ {
		if events[i].Seq != events[i-1].Seq+1 {
			t.Fatalf("retained sequence not contiguous: %d then %d", events[i-1].Seq, events[i].Seq)
		}
	}
}

package obs

// Operational event log: a fixed-size ring of lifecycle events (reloads,
// evictions, cold loads, degradations, panics, slow requests) that the
// serving layer exposes at /eventz. The point is a bounded flight
// recorder — "what happened around the time it broke" — not durable
// audit storage: when the ring wraps, the oldest events fall off.

import (
	"sync"
	"time"
)

// DefaultEventLogSize is the ring capacity when none is configured.
const DefaultEventLogSize = 256

// Event is one operational occurrence. Seq is a process-lifetime
// sequence number (assigned by Record); Time is stamped at Record unless
// preset.
type Event struct {
	Seq     int64     `json:"seq"`
	Time    time.Time `json:"time"`
	Type    string    `json:"type"`
	Tenant  string    `json:"tenant,omitempty"`
	TraceID string    `json:"trace_id,omitempty"`
	Detail  string    `json:"detail,omitempty"`
}

// EventLog is a mutex-guarded fixed-size event ring. Recording is cheap
// (one lock, one slot write) but not allocation-free — events are rare
// by construction (reloads, evictions, failures), never per-request.
type EventLog struct {
	mu  sync.Mutex
	buf []Event
	seq int64 // total events ever recorded
}

// NewEventLog builds a ring holding the last size events (size <= 0
// means DefaultEventLogSize).
func NewEventLog(size int) *EventLog {
	if size <= 0 {
		size = DefaultEventLogSize
	}
	return &EventLog{buf: make([]Event, size)}
}

// Record stamps and stores one event, returning its sequence number.
func (l *EventLog) Record(e Event) int64 {
	if e.Time.IsZero() {
		//pinum:nondeterministic-ok operational event timestamps are wall-clock by design
		e.Time = time.Now()
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	l.seq++
	e.Seq = l.seq
	l.buf[(l.seq-1)%int64(len(l.buf))] = e
	return l.seq
}

// Events returns the retained events, oldest first.
func (l *EventLog) Events() []Event {
	l.mu.Lock()
	defer l.mu.Unlock()
	n := int64(len(l.buf))
	if l.seq < n {
		n = l.seq
	}
	out := make([]Event, 0, n)
	for i := l.seq - n; i < l.seq; i++ {
		out = append(out, l.buf[i%int64(len(l.buf))])
	}
	return out
}

// Total reports how many events were ever recorded (retained or not).
func (l *EventLog) Total() int64 {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.seq
}

// Cap reports the ring capacity.
func (l *EventLog) Cap() int { return len(l.buf) }

// Package stats provides the column statistics and selectivity estimation
// the optimizer's cost model consumes: number-of-distinct-values, min/max
// domains, and equi-depth histograms.
//
// The paper's what-if indexes reuse the *table's* histograms (§V-A: "Since
// the histogram information is associated with the table, we do not
// replicate or modify them"), so statistics live here, keyed by
// table.column, independent of which indexes exist.
package stats

import (
	"fmt"
	"math"
	"sort"
)

// Default selectivities used when no statistics are available, mirroring
// PostgreSQL's hard-wired defaults.
const (
	DefaultEqSel    = 0.005
	DefaultRangeSel = 1.0 / 3.0
)

// Histogram is an equi-depth (equal-frequency) histogram over an integer
// domain. Bounds has len(buckets)+1 entries; bucket i covers
// [Bounds[i], Bounds[i+1]) except the last, which is inclusive on the right.
type Histogram struct {
	Bounds []int64
	// Rows is the total number of rows the histogram summarises.
	Rows int64
	// Distinct is the number of distinct values observed.
	Distinct int64
}

// NewEquiDepth builds an equi-depth histogram with at most buckets buckets
// from a sample of values. The sample is copied and sorted.
func NewEquiDepth(sample []int64, buckets int) (*Histogram, error) {
	if len(sample) == 0 {
		return nil, fmt.Errorf("stats: empty sample")
	}
	if buckets < 1 {
		return nil, fmt.Errorf("stats: need at least one bucket, got %d", buckets)
	}
	vals := append([]int64(nil), sample...)
	sort.Slice(vals, func(i, j int) bool { return vals[i] < vals[j] })

	distinct := int64(1)
	for i := 1; i < len(vals); i++ {
		if vals[i] != vals[i-1] {
			distinct++
		}
	}
	if buckets > len(vals) {
		buckets = len(vals)
	}
	bounds := make([]int64, 0, buckets+1)
	bounds = append(bounds, vals[0])
	for b := 1; b < buckets; b++ {
		idx := b * len(vals) / buckets
		v := vals[idx]
		if v > bounds[len(bounds)-1] {
			bounds = append(bounds, v)
		}
	}
	last := vals[len(vals)-1]
	if last > bounds[len(bounds)-1] {
		bounds = append(bounds, last)
	} else {
		// Degenerate single-value domain: widen artificially so the
		// histogram still has one bucket.
		bounds = append(bounds, bounds[len(bounds)-1]+1)
	}
	return &Histogram{Bounds: bounds, Rows: int64(len(vals)), Distinct: distinct}, nil
}

// Uniform builds a histogram describing a perfectly uniform distribution on
// [min, max] with the given row and distinct counts. The paper's synthetic
// star schema uses columns "uniformly distributed across all positive
// integers"; Uniform models them without materialising data.
func Uniform(min, max, rows, distinct int64, buckets int) *Histogram {
	if max < min {
		min, max = max, min
	}
	if buckets < 1 {
		buckets = 1
	}
	span := max - min
	bounds := make([]int64, buckets+1)
	for i := 0; i <= buckets; i++ {
		bounds[i] = min + int64(math.Round(float64(span)*float64(i)/float64(buckets)))
	}
	// Ensure strictly increasing bounds on tiny domains.
	for i := 1; i <= buckets; i++ {
		if bounds[i] <= bounds[i-1] {
			bounds[i] = bounds[i-1] + 1
		}
	}
	if distinct <= 0 {
		distinct = span + 1
	}
	if distinct > rows && rows > 0 {
		distinct = rows
	}
	return &Histogram{Bounds: bounds, Rows: rows, Distinct: distinct}
}

// Buckets returns the number of buckets.
func (h *Histogram) Buckets() int { return len(h.Bounds) - 1 }

// Min returns the histogram's lower domain bound.
func (h *Histogram) Min() int64 { return h.Bounds[0] }

// Max returns the histogram's upper domain bound.
func (h *Histogram) Max() int64 { return h.Bounds[len(h.Bounds)-1] }

// SelectivityEq estimates the fraction of rows equal to v.
func (h *Histogram) SelectivityEq(v int64) float64 {
	if v < h.Min() || v > h.Max() {
		return 0
	}
	if h.Distinct <= 0 {
		return DefaultEqSel
	}
	return 1.0 / float64(h.Distinct)
}

// SelectivityLT estimates the fraction of rows strictly less than v, by
// linear interpolation within the containing bucket (each bucket holds an
// equal share of the rows).
func (h *Histogram) SelectivityLT(v int64) float64 {
	if v <= h.Min() {
		return 0
	}
	if v > h.Max() {
		return 1
	}
	n := h.Buckets()
	perBucket := 1.0 / float64(n)
	var sel float64
	for i := 0; i < n; i++ {
		lo, hi := h.Bounds[i], h.Bounds[i+1]
		switch {
		case v >= hi:
			sel += perBucket
		case v > lo:
			frac := float64(v-lo) / float64(hi-lo)
			sel += perBucket * frac
			return clamp01(sel)
		default:
			return clamp01(sel)
		}
	}
	return clamp01(sel)
}

// SelectivityRange estimates the fraction of rows in [lo, hi].
func (h *Histogram) SelectivityRange(lo, hi int64) float64 {
	if hi < lo {
		return 0
	}
	// P(lo <= x <= hi) = P(x < hi+1) - P(x < lo) for integer domains.
	s := h.SelectivityLT(hi+1) - h.SelectivityLT(lo)
	return clamp01(s)
}

func clamp01(x float64) float64 {
	if x < 0 {
		return 0
	}
	if x > 1 {
		return 1
	}
	return x
}

// ColumnStats bundles everything the planner knows about one column.
type ColumnStats struct {
	Rows     int64
	Distinct int64
	Min, Max int64
	Hist     *Histogram
}

// EqSelectivity estimates selectivity of col = v.
func (s *ColumnStats) EqSelectivity(v int64) float64 {
	if s == nil {
		return DefaultEqSel
	}
	if s.Hist != nil {
		return s.Hist.SelectivityEq(v)
	}
	if v < s.Min || v > s.Max {
		return 0
	}
	if s.Distinct > 0 {
		return 1.0 / float64(s.Distinct)
	}
	return DefaultEqSel
}

// RangeSelectivity estimates selectivity of lo <= col <= hi.
func (s *ColumnStats) RangeSelectivity(lo, hi int64) float64 {
	if s == nil {
		return DefaultRangeSel
	}
	if hi < lo {
		return 0
	}
	if s.Hist != nil {
		return s.Hist.SelectivityRange(lo, hi)
	}
	if s.Max <= s.Min {
		return 1
	}
	clo, chi := lo, hi
	if clo < s.Min {
		clo = s.Min
	}
	if chi > s.Max {
		chi = s.Max
	}
	if chi < clo {
		return 0
	}
	return clamp01(float64(chi-clo+1) / float64(s.Max-s.Min+1))
}

// LTSelectivity estimates selectivity of col < v.
func (s *ColumnStats) LTSelectivity(v int64) float64 {
	if s == nil {
		return DefaultRangeSel
	}
	if s.Hist != nil {
		return s.Hist.SelectivityLT(v)
	}
	if s.Max <= s.Min {
		if v > s.Min {
			return 1
		}
		return 0
	}
	if v <= s.Min {
		return 0
	}
	if v > s.Max {
		return 1
	}
	return clamp01(float64(v-s.Min) / float64(s.Max-s.Min+1))
}

// Store holds statistics for every table.column. It is immutable after
// loading, hence safe for concurrent readers; what-if sessions share it.
type Store struct {
	cols map[string]*ColumnStats
}

// NewStore returns an empty statistics store.
func NewStore() *Store { return &Store{cols: make(map[string]*ColumnStats)} }

// Set installs the statistics for table.column.
func (st *Store) Set(table, column string, s *ColumnStats) {
	st.cols[table+"."+column] = s
}

// Get returns the statistics for table.column, or nil when unknown.
func (st *Store) Get(table, column string) *ColumnStats {
	return st.cols[table+"."+column]
}

package stats

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestNewEquiDepthErrors(t *testing.T) {
	if _, err := NewEquiDepth(nil, 4); err == nil {
		t.Error("empty sample accepted")
	}
	if _, err := NewEquiDepth([]int64{1}, 0); err == nil {
		t.Error("zero buckets accepted")
	}
}

func TestEquiDepthSelectivityAgainstSample(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	sample := make([]int64, 20000)
	for i := range sample {
		sample[i] = rng.Int63n(10000)
	}
	h, err := NewEquiDepth(sample, 64)
	if err != nil {
		t.Fatal(err)
	}
	// Compare P(x < v) from the histogram against the empirical CDF.
	for _, v := range []int64{100, 1000, 2500, 5000, 9000, 9999} {
		var count int
		for _, x := range sample {
			if x < v {
				count++
			}
		}
		emp := float64(count) / float64(len(sample))
		got := h.SelectivityLT(v)
		if diff := got - emp; diff > 0.03 || diff < -0.03 {
			t.Errorf("SelectivityLT(%d) = %.4f, empirical %.4f", v, got, emp)
		}
	}
}

func TestUniformHistogramBounds(t *testing.T) {
	h := Uniform(1, 100000, 1_000_000, 100000, 64)
	if h.Min() != 1 || h.Max() != 100000 {
		t.Fatalf("bounds [%d,%d]", h.Min(), h.Max())
	}
	if h.Buckets() != 64 {
		t.Fatalf("buckets = %d", h.Buckets())
	}
	// 1% of the domain should select about 1% of rows.
	if s := h.SelectivityRange(5000, 5999); s < 0.008 || s > 0.012 {
		t.Errorf("1%% range selectivity = %.4f", s)
	}
	if s := h.SelectivityEq(500); s <= 0 || s > 1e-4 {
		t.Errorf("eq selectivity = %g", s)
	}
	if h.SelectivityEq(200000) != 0 {
		t.Error("out-of-domain eq selectivity not 0")
	}
}

func TestUniformDegenerateDomains(t *testing.T) {
	h := Uniform(5, 5, 100, 1, 8)
	if h.SelectivityLT(5) != 0 {
		t.Error("LT(min) should be 0")
	}
	if h.SelectivityLT(100) != 1 {
		t.Error("LT(above max) should be 1")
	}
	// Swapped bounds normalise.
	h2 := Uniform(10, 1, 100, 10, 4)
	if h2.Min() != 1 || h2.Max() < 10 {
		t.Errorf("swapped bounds -> [%d,%d]", h2.Min(), h2.Max())
	}
}

// Property: SelectivityLT is monotone non-decreasing and clamped to [0,1].
func TestSelectivityLTMonotone(t *testing.T) {
	h := Uniform(1, 1_000_000, 10_000_000, 1_000_000, 64)
	f := func(a, b int64) bool {
		a, b = a%2_000_000, b%2_000_000
		if a > b {
			a, b = b, a
		}
		sa, sb := h.SelectivityLT(a), h.SelectivityLT(b)
		return sa >= 0 && sb <= 1 && sa <= sb+1e-12
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}

// Property: range selectivity over [lo,hi] equals LT(hi+1)-LT(lo) and empty
// ranges select nothing.
func TestRangeSelectivityConsistency(t *testing.T) {
	h := Uniform(1, 100000, 1_000_000, 100000, 32)
	f := func(lo, hi int64) bool {
		lo, hi = lo%120000, hi%120000
		if lo < 0 {
			lo = -lo
		}
		if hi < 0 {
			hi = -hi
		}
		if hi < lo {
			return h.SelectivityRange(lo, hi) == 0
		}
		want := h.SelectivityLT(hi+1) - h.SelectivityLT(lo)
		got := h.SelectivityRange(lo, hi)
		d := got - want
		return d < 1e-9 && d > -1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}

func TestColumnStatsFallbacks(t *testing.T) {
	var nilStats *ColumnStats
	if nilStats.EqSelectivity(5) != DefaultEqSel {
		t.Error("nil stats eq fallback wrong")
	}
	if nilStats.RangeSelectivity(1, 2) != DefaultRangeSel {
		t.Error("nil stats range fallback wrong")
	}
	s := &ColumnStats{Rows: 1000, Distinct: 100, Min: 1, Max: 100}
	if got := s.EqSelectivity(50); got != 0.01 {
		t.Errorf("eq = %g, want 0.01", got)
	}
	if got := s.EqSelectivity(500); got != 0 {
		t.Errorf("out-of-range eq = %g", got)
	}
	if got := s.RangeSelectivity(1, 100); got != 1 {
		t.Errorf("full range = %g", got)
	}
	if got := s.LTSelectivity(1); got != 0 {
		t.Errorf("LT(min) = %g", got)
	}
	if got := s.LTSelectivity(101); got != 1 {
		t.Errorf("LT(>max) = %g", got)
	}
}

func TestStoreRoundTrip(t *testing.T) {
	st := NewStore()
	if st.Get("t", "a") != nil {
		t.Error("empty store returned stats")
	}
	s := &ColumnStats{Rows: 10}
	st.Set("t", "a", s)
	if st.Get("t", "a") != s {
		t.Error("store lookup failed")
	}
	if st.Get("t", "b") != nil {
		t.Error("wrong column matched")
	}
}

package query

import (
	"testing"

	"github.com/pinumdb/pinum/internal/catalog"
)

func mkTable(t *testing.T, c *catalog.Catalog, name string, cols ...string) *catalog.Table {
	t.Helper()
	tb := &catalog.Table{Name: name, RowCount: 1000}
	for _, cn := range cols {
		tb.Columns = append(tb.Columns, &catalog.Column{Name: cn, Type: catalog.Int, NDV: 100, Min: 1, Max: 100})
	}
	if err := c.AddTable(tb); err != nil {
		t.Fatal(err)
	}
	return tb
}

// threeWay builds f ⋈ d1 ⋈ d2 with a filter, grouping and ordering.
func threeWay(t *testing.T) *Query {
	t.Helper()
	c := catalog.New()
	f := mkTable(t, c, "f", "id", "fk1", "fk2", "m")
	d1 := mkTable(t, c, "d1", "id", "a")
	d2 := mkTable(t, c, "d2", "id", "b")
	q := &Query{
		Name: "q3",
		Rels: []Rel{{Table: f}, {Table: d1}, {Table: d2}},
		Joins: []Join{
			{Left: ColRef{0, "fk1"}, Right: ColRef{1, "id"}},
			{Left: ColRef{0, "fk2"}, Right: ColRef{2, "id"}},
		},
		Filters: []Filter{{Col: ColRef{0, "m"}, Op: Between, Value: 1, Value2: 10}},
		Select:  []ColRef{{0, "m"}, {1, "a"}},
		GroupBy: []ColRef{{1, "a"}},
		OrderBy: []ColRef{{2, "b"}},
	}
	if err := q.Validate(); err != nil {
		t.Fatal(err)
	}
	return q
}

func TestValidateRejectsBadRefs(t *testing.T) {
	q := threeWay(t)
	bad := *q
	bad.Select = append([]ColRef{}, q.Select...)
	bad.Select[0] = ColRef{7, "m"}
	if err := bad.Validate(); err == nil {
		t.Error("out-of-range rel accepted")
	}
	bad = *q
	bad.Filters = []Filter{{Col: ColRef{0, "zz"}, Op: Eq, Value: 1}}
	if err := bad.Validate(); err == nil {
		t.Error("unknown column accepted")
	}
	bad = *q
	bad.Filters = []Filter{{Col: ColRef{0, "m"}, Op: Between, Value: 10, Value2: 1}}
	if err := bad.Validate(); err == nil {
		t.Error("empty BETWEEN accepted")
	}
	bad = *q
	bad.Joins = []Join{{Left: ColRef{0, "fk1"}, Right: ColRef{0, "id"}}}
	if err := bad.Validate(); err == nil {
		t.Error("self-referential join accepted")
	}
}

func TestJoinGraphConnected(t *testing.T) {
	q := threeWay(t)
	if !q.JoinGraphConnected() {
		t.Error("connected graph reported disconnected")
	}
	q.Joins = q.Joins[:1] // drop the edge to d2
	if q.JoinGraphConnected() {
		t.Error("disconnected graph reported connected")
	}
}

func TestInterestingOrders(t *testing.T) {
	q := threeWay(t)
	ios := q.InterestingOrders()
	// f: fk1, fk2 (joins); d1: id (join) + a (group); d2: id (join) + b (order)
	if len(ios[0]) != 2 || ios[0][0] != "fk1" || ios[0][1] != "fk2" {
		t.Errorf("f orders = %v", ios[0])
	}
	if len(ios[1]) != 2 || ios[1][0] != "a" || ios[1][1] != "id" {
		t.Errorf("d1 orders = %v", ios[1])
	}
	if len(ios[2]) != 2 {
		t.Errorf("d2 orders = %v", ios[2])
	}
}

func TestComboEnumeration(t *testing.T) {
	q := threeWay(t)
	combos := q.EnumerateCombos()
	want := (1 + 2) * (1 + 2) * (1 + 2)
	if len(combos) != want || q.ComboCount() != want {
		t.Fatalf("enumerated %d combos, ComboCount %d, want %d", len(combos), q.ComboCount(), want)
	}
	seen := make(map[string]bool)
	for _, oc := range combos {
		if seen[oc.Key()] {
			t.Fatalf("duplicate combo %v", oc)
		}
		seen[oc.Key()] = true
	}
	// The all-Φ combo must be present.
	if !seen[(OrderCombo{"", "", ""}).Key()] {
		t.Error("missing all-Φ combo")
	}
}

func TestOrderComboSubsumes(t *testing.T) {
	a := OrderCombo{"x", "", ""}
	b := OrderCombo{"x", "y", ""}
	if !a.Subsumes(b) {
		t.Error("subset combo should subsume superset")
	}
	if b.Subsumes(a) {
		t.Error("superset combo should not subsume subset")
	}
	if !(OrderCombo{"", "", ""}).Subsumes(b) {
		t.Error("Φ combo subsumes everything")
	}
	if (OrderCombo{"z", "", ""}).Subsumes(b) {
		t.Error("mismatched column subsumed")
	}
	if a.Subsumes(OrderCombo{"x", ""}) {
		t.Error("length mismatch subsumed")
	}
	if b.Orders() != 2 || a.Orders() != 1 {
		t.Error("Orders count wrong")
	}
	if b.String() != "(x,y,Φ)" {
		t.Errorf("String = %q", b.String())
	}
}

func TestConfigAtomicAndCovers(t *testing.T) {
	q := threeWay(t)
	ixF := &catalog.Index{Name: "i1", Table: "f", Columns: []string{"fk1"}}
	ixF2 := &catalog.Index{Name: "i2", Table: "f", Columns: []string{"fk2"}}
	ixD := &catalog.Index{Name: "i3", Table: "d1", Columns: []string{"a", "id"}}
	atomic := &Config{Indexes: []*catalog.Index{ixF, ixD}}
	if !atomic.Atomic(q) {
		t.Error("atomic config misclassified")
	}
	notAtomic := &Config{Indexes: []*catalog.Index{ixF, ixF2}}
	if notAtomic.Atomic(q) {
		t.Error("two indexes on one table classified atomic")
	}
	if !atomic.Covers(q, OrderCombo{"fk1", "a", ""}) {
		t.Error("coverage missed")
	}
	if atomic.Covers(q, OrderCombo{"fk2", "", ""}) {
		t.Error("coverage claimed for non-lead column")
	}
	if atomic.IndexFor("f") != ixF || atomic.IndexFor("d2") != nil {
		t.Error("IndexFor wrong")
	}
	if (&Config{}).String() != "{}" {
		t.Error("empty config String")
	}
}

func TestColumnsNeeded(t *testing.T) {
	q := threeWay(t)
	need := q.ColumnsNeeded()
	for _, col := range []string{"fk1", "fk2", "m"} {
		if !need[0][col] {
			t.Errorf("f.%s missing from needed set", col)
		}
	}
	if need[0]["id"] {
		t.Error("f.id should not be needed")
	}
	if !need[2]["b"] || !need[2]["id"] {
		t.Error("d2 needed set wrong")
	}
}

// Package query defines the bound (semantically analysed) query model the
// optimizer plans: base relations, an equi-join graph, single-table filter
// predicates, and output/grouping/ordering requirements.
//
// It also derives the paper's §II vocabulary: interesting orders (columns
// appearing in join, group-by, or order-by clauses), interesting order
// combinations (at most one order per table), and coverage of combinations
// by atomic index configurations.
package query

import (
	"fmt"
	"sort"
	"strings"

	"github.com/pinumdb/pinum/internal/catalog"
)

// ColRef names a column of a specific base relation, by relation index
// within the query (not by table name: self-joins get distinct indices).
type ColRef struct {
	Rel    int
	Column string
}

func (c ColRef) String() string { return fmt.Sprintf("r%d.%s", c.Rel, c.Column) }

// CmpOp is a filter comparison operator.
type CmpOp int

const (
	Eq CmpOp = iota
	Lt
	Le
	Gt
	Ge
	Between
)

func (op CmpOp) String() string {
	switch op {
	case Eq:
		return "="
	case Lt:
		return "<"
	case Le:
		return "<="
	case Gt:
		return ">"
	case Ge:
		return ">="
	case Between:
		return "BETWEEN"
	default:
		return fmt.Sprintf("CmpOp(%d)", int(op))
	}
}

// Filter is a single-table predicate: col op Value (or BETWEEN Value and
// Value2). All filters in a query are implicitly AND-ed.
type Filter struct {
	Col    ColRef
	Op     CmpOp
	Value  int64
	Value2 int64 // upper bound for Between
}

func (f Filter) String() string {
	if f.Op == Between {
		return fmt.Sprintf("%s BETWEEN %d AND %d", f.Col, f.Value, f.Value2)
	}
	return fmt.Sprintf("%s %s %d", f.Col, f.Op, f.Value)
}

// Join is an equi-join predicate Left = Right between two relations.
type Join struct {
	Left, Right ColRef
}

func (j Join) String() string { return fmt.Sprintf("%s = %s", j.Left, j.Right) }

// Rel is one base relation in the FROM list.
type Rel struct {
	Table *catalog.Table
	Alias string
}

// Query is a bound select-project-join query with optional grouping and
// ordering, the fragment PINUM supports (the paper's implementation
// excludes complex sub-queries, inheritance and outer joins; so does ours).
type Query struct {
	Name    string // identifier used in reports (Q1..Q10)
	SQL     string // original text if parsed, else synthesised
	Rels    []Rel
	Joins   []Join
	Filters []Filter
	Select  []ColRef
	GroupBy []ColRef
	OrderBy []ColRef
}

// Validate checks internal consistency: every ColRef resolves to an
// existing relation and column, and joins link two distinct relations.
func (q *Query) Validate() error {
	if len(q.Rels) == 0 {
		return fmt.Errorf("query %s: no relations", q.Name)
	}
	check := func(c ColRef, what string) error {
		if c.Rel < 0 || c.Rel >= len(q.Rels) {
			return fmt.Errorf("query %s: %s references relation %d of %d", q.Name, what, c.Rel, len(q.Rels))
		}
		if q.Rels[c.Rel].Table.Column(c.Column) == nil {
			return fmt.Errorf("query %s: %s references unknown column %s.%s",
				q.Name, what, q.Rels[c.Rel].Table.Name, c.Column)
		}
		return nil
	}
	for _, c := range q.Select {
		if err := check(c, "select list"); err != nil {
			return err
		}
	}
	for _, j := range q.Joins {
		if err := check(j.Left, "join"); err != nil {
			return err
		}
		if err := check(j.Right, "join"); err != nil {
			return err
		}
		if j.Left.Rel == j.Right.Rel {
			return fmt.Errorf("query %s: join %s relates a relation to itself", q.Name, j)
		}
	}
	for _, f := range q.Filters {
		if err := check(f.Col, "filter"); err != nil {
			return err
		}
		if f.Op == Between && f.Value2 < f.Value {
			return fmt.Errorf("query %s: empty BETWEEN range in %s", q.Name, f)
		}
	}
	for _, c := range q.GroupBy {
		if err := check(c, "group by"); err != nil {
			return err
		}
	}
	for _, c := range q.OrderBy {
		if err := check(c, "order by"); err != nil {
			return err
		}
	}
	return nil
}

// RelName returns a display name for relation i (alias if present).
func (q *Query) RelName(i int) string {
	r := q.Rels[i]
	if r.Alias != "" {
		return r.Alias
	}
	return r.Table.Name
}

// JoinGraphConnected reports whether the join predicates connect all
// relations (no cartesian products), which the DP join planner requires.
func (q *Query) JoinGraphConnected() bool {
	n := len(q.Rels)
	if n <= 1 {
		return true
	}
	adj := make([][]int, n)
	for _, j := range q.Joins {
		adj[j.Left.Rel] = append(adj[j.Left.Rel], j.Right.Rel)
		adj[j.Right.Rel] = append(adj[j.Right.Rel], j.Left.Rel)
	}
	seen := make([]bool, n)
	stack := []int{0}
	seen[0] = true
	count := 1
	for len(stack) > 0 {
		v := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		for _, w := range adj[v] {
			if !seen[w] {
				seen[w] = true
				count++
				stack = append(stack, w)
			}
		}
	}
	return count == n
}

// ColumnsNeeded returns, per relation, the set of columns the query touches
// on that relation (select, join, filter, group, order). Index-only scans
// are possible when an index contains all of them.
func (q *Query) ColumnsNeeded() []map[string]bool {
	need := make([]map[string]bool, len(q.Rels))
	for i := range need {
		need[i] = make(map[string]bool)
	}
	add := func(c ColRef) { need[c.Rel][c.Column] = true }
	for _, c := range q.Select {
		add(c)
	}
	for _, j := range q.Joins {
		add(j.Left)
		add(j.Right)
	}
	for _, f := range q.Filters {
		add(f.Col)
	}
	for _, c := range q.GroupBy {
		add(c)
	}
	for _, c := range q.OrderBy {
		add(c)
	}
	return need
}

// InterestingOrders returns, for each relation, the sorted list of columns
// that are interesting orders for it: columns appearing in a join, group-by
// or order-by clause (paper §II definition 2).
func (q *Query) InterestingOrders() [][]string {
	sets := make([]map[string]bool, len(q.Rels))
	for i := range sets {
		sets[i] = make(map[string]bool)
	}
	for _, j := range q.Joins {
		sets[j.Left.Rel][j.Left.Column] = true
		sets[j.Right.Rel][j.Right.Column] = true
	}
	for _, c := range q.GroupBy {
		sets[c.Rel][c.Column] = true
	}
	for _, c := range q.OrderBy {
		sets[c.Rel][c.Column] = true
	}
	out := make([][]string, len(q.Rels))
	for i, s := range sets {
		cols := make([]string, 0, len(s))
		for c := range s {
			cols = append(cols, c)
		}
		sort.Strings(cols)
		out[i] = cols
	}
	return out
}

// OrderCombo is an interesting order combination (paper §II definition 3):
// for each relation, either a column name or "" denoting Φ (no order).
type OrderCombo []string

// Key returns a canonical string form usable as a map key.
func (oc OrderCombo) Key() string {
	return strings.Join(oc, "|")
}

// String renders the combination with Φ for unordered slots.
func (oc OrderCombo) String() string {
	parts := make([]string, len(oc))
	for i, c := range oc {
		if c == "" {
			parts[i] = "Φ"
		} else {
			parts[i] = c
		}
	}
	return "(" + strings.Join(parts, ",") + ")"
}

// Subsumes reports whether oc ⊆ other: every non-Φ slot of oc matches the
// same slot in other. A plan requiring oc is applicable wherever one
// requiring other is (paper §V-D pruning condition).
func (oc OrderCombo) Subsumes(other OrderCombo) bool {
	if len(oc) != len(other) {
		return false
	}
	for i, c := range oc {
		if c != "" && c != other[i] {
			return false
		}
	}
	return true
}

// Orders returns the number of non-Φ slots.
func (oc OrderCombo) Orders() int {
	n := 0
	for _, c := range oc {
		if c != "" {
			n++
		}
	}
	return n
}

// Clone returns a copy.
func (oc OrderCombo) Clone() OrderCombo { return append(OrderCombo(nil), oc...) }

// EnumerateCombos enumerates every interesting order combination of the
// query: the cartesian product over relations of (Φ + each interesting
// order). For TPC-H Q5 the paper counts 648 of these.
func (q *Query) EnumerateCombos() []OrderCombo {
	ios := q.InterestingOrders()
	total := 1
	for _, list := range ios {
		total *= 1 + len(list)
	}
	out := make([]OrderCombo, 0, total)
	combo := make(OrderCombo, len(ios))
	var rec func(i int)
	rec = func(i int) {
		if i == len(ios) {
			out = append(out, combo.Clone())
			return
		}
		combo[i] = ""
		rec(i + 1)
		for _, col := range ios[i] {
			combo[i] = col
			rec(i + 1)
		}
		combo[i] = ""
	}
	rec(0)
	return out
}

// ComboCount returns the number of interesting order combinations without
// materialising them.
func (q *Query) ComboCount() int {
	n := 1
	for _, list := range q.InterestingOrders() {
		n *= 1 + len(list)
	}
	return n
}

// Config is an index configuration: a set of indexes identified by name in
// some catalog. A configuration is "atomic" w.r.t. a query when it holds at
// most one index per referenced table (paper §II definition 1).
type Config struct {
	Indexes []*catalog.Index
}

// Atomic reports whether the configuration is atomic with respect to q.
func (cfg *Config) Atomic(q *Query) bool {
	perTable := make(map[string]int)
	for _, ix := range cfg.Indexes {
		perTable[ix.Table]++
	}
	for _, r := range q.Rels {
		if perTable[r.Table.Name] > 1 {
			return false
		}
	}
	return true
}

// IndexFor returns the configuration's first index on the given table, or
// nil. For atomic configurations that is the only one; configurations can
// legitimately hold several indexes per table (self-join covering configs
// do), and callers that care about which one must iterate Indexes
// themselves, as Covers does.
func (cfg *Config) IndexFor(table string) *catalog.Index {
	for _, ix := range cfg.Indexes {
		if ix.Table == table {
			return ix
		}
	}
	return nil
}

// Covers reports whether the configuration covers the order combination:
// for every non-Φ slot, the configuration has an index on that relation's
// table whose leading column is the ordered column (paper §II definition 4).
// Every index on the slot's table is considered, so self-join combinations
// needing two different orders on one table are covered by a configuration
// holding one index per order.
func (cfg *Config) Covers(q *Query, oc OrderCombo) bool {
	for i, col := range oc {
		if col == "" {
			continue
		}
		covered := false
		for _, ix := range cfg.Indexes {
			if ix.Table == q.Rels[i].Table.Name && ix.Covers(col) {
				covered = true
				break
			}
		}
		if !covered {
			return false
		}
	}
	return true
}

// String renders the configuration compactly.
func (cfg *Config) String() string {
	if len(cfg.Indexes) == 0 {
		return "{}"
	}
	parts := make([]string, len(cfg.Indexes))
	for i, ix := range cfg.Indexes {
		parts[i] = ix.Key()
	}
	sort.Strings(parts)
	return "{" + strings.Join(parts, ", ") + "}"
}

package data

import (
	"testing"

	"github.com/pinumdb/pinum/internal/catalog"
	"github.com/pinumdb/pinum/internal/heap"
	"github.com/pinumdb/pinum/internal/storage"
	"github.com/pinumdb/pinum/internal/workload"
)

func smallStar(t testing.TB) *workload.Star {
	t.Helper()
	s, err := workload.StarSchema(0.0002)
	if err != nil {
		t.Fatal(err)
	}
	return s
}

func TestMaterializeRespectsSchema(t *testing.T) {
	s := smallStar(t)
	db, err := Materialize(s.Catalog, 77)
	if err != nil {
		t.Fatal(err)
	}
	for _, tb := range s.Catalog.Tables() {
		f := db.Tables[tb.Name]
		if f == nil {
			t.Fatalf("table %s not materialised", tb.Name)
		}
		if int64(f.Count()) != tb.RowCount {
			t.Errorf("%s: %d rows, want %d", tb.Name, f.Count(), tb.RowCount)
		}
	}
}

func TestMaterializeHonoursDomainsAndKeys(t *testing.T) {
	s := smallStar(t)
	db, err := Materialize(s.Catalog, 77)
	if err != nil {
		t.Fatal(err)
	}
	fact := s.Catalog.Table("fact")
	f := db.Tables["fact"]
	idOrd := fact.ColumnOrdinal("id")
	var prev int64
	f.Scan(func(_ heap.TID, row []int64) bool {
		if row[idOrd] != prev+1 {
			t.Fatalf("primary key not dense: %d after %d", row[idOrd], prev)
		}
		prev = row[idOrd]
		for ci, col := range fact.Columns {
			if col.Min > 0 && (row[ci] < col.Min || row[ci] > col.Max) && col.Name == "a1" {
				t.Fatalf("fact.%s = %d outside [%d,%d]", col.Name, row[ci], col.Min, col.Max)
			}
		}
		return prev < 100 // sample the first 100 rows
	})

	// Foreign keys must reference existing dimension rows.
	for _, fk := range fact.ForeignKeys {
		ref := s.Catalog.Table(fk.RefTable)
		ord := fact.ColumnOrdinal(fk.Column)
		n := 0
		f.Scan(func(_ heap.TID, row []int64) bool {
			if row[ord] < 1 || row[ord] > ref.RowCount {
				t.Fatalf("%s = %d outside 1..%d", fk.Column, row[ord], ref.RowCount)
			}
			n++
			return n < 200
		})
	}
}

func TestMaterializeDeterministic(t *testing.T) {
	s := smallStar(t)
	a, err := Materialize(s.Catalog, 5)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Materialize(s.Catalog, 5)
	if err != nil {
		t.Fatal(err)
	}
	fa, fb := a.Tables["dim1_1"], b.Tables["dim1_1"]
	var rowsA, rowsB [][]int64
	fa.Scan(func(_ heap.TID, r []int64) bool {
		rowsA = append(rowsA, append([]int64(nil), r...))
		return len(rowsA) < 50
	})
	fb.Scan(func(_ heap.TID, r []int64) bool {
		rowsB = append(rowsB, append([]int64(nil), r...))
		return len(rowsB) < 50
	})
	for i := range rowsA {
		for j := range rowsA[i] {
			if rowsA[i][j] != rowsB[i][j] {
				t.Fatalf("row %d differs between equal seeds", i)
			}
		}
	}
}

func TestBuildIndexMatchesHeap(t *testing.T) {
	s := smallStar(t)
	db, err := Materialize(s.Catalog, 77)
	if err != nil {
		t.Fatal(err)
	}
	tb := s.Catalog.Table("dim1_2")
	ix := storage.HypotheticalIndex("test_ix", tb, []string{"a1", "id"})
	tree, err := db.BuildIndex(ix)
	if err != nil {
		t.Fatal(err)
	}
	if int64(tree.Count()) != tb.RowCount {
		t.Errorf("index has %d entries, want %d", tree.Count(), tb.RowCount)
	}
	if err := tree.Validate(); err != nil {
		t.Fatal(err)
	}
	// Cached by canonical key: the same key under another name reuses the
	// tree.
	other := storage.HypotheticalIndex("other_name", tb, []string{"a1", "id"})
	tree2, err := db.IndexFor(other)
	if err != nil {
		t.Fatal(err)
	}
	if tree2 != tree {
		t.Error("equal-key index rebuilt instead of reused")
	}
}

func TestBuildIndexValidation(t *testing.T) {
	s := smallStar(t)
	db, err := Materialize(s.Catalog, 1)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := db.BuildIndex(&catalog.Index{Name: "x", Table: "missing", Columns: []string{"id"}}); err == nil {
		t.Error("unknown table accepted")
	}
	if _, err := db.BuildIndex(&catalog.Index{Name: "y", Table: "fact", Columns: []string{"zz"}}); err == nil {
		t.Error("unknown column accepted")
	}
}

// Package data materialises a catalog into a physical database: heap files
// filled with deterministic uniform data (the paper's synthetic generator:
// numeric columns "uniformly distributed", foreign keys valid against their
// referenced tables) and real B-tree indexes built over them.
//
// The execution experiments run on a scaled-down materialisation; the
// statistics-level experiments never need one.
package data

import (
	"fmt"
	"hash/fnv"
	"math/rand"
	"strings"

	"github.com/pinumdb/pinum/internal/btree"
	"github.com/pinumdb/pinum/internal/catalog"
	"github.com/pinumdb/pinum/internal/heap"
)

// Database is a materialised catalog: one heap file per table plus any
// built indexes.
type Database struct {
	Cat     *catalog.Catalog
	Tables  map[string]*heap.File
	Indexes map[string]*btree.Tree
	seed    int64
}

// Materialize fills every table of the catalog with deterministic uniform
// data. Primary-key columns named "id" hold 1..N; foreign-key columns hold
// uniform values valid against the referenced table; other columns are
// uniform over [Min, Max].
func Materialize(cat *catalog.Catalog, seed int64) (*Database, error) {
	db := &Database{
		Cat:     cat,
		Tables:  make(map[string]*heap.File),
		Indexes: make(map[string]*btree.Tree),
		seed:    seed,
	}
	for _, t := range cat.Tables() {
		f, err := db.materializeTable(t)
		if err != nil {
			return nil, err
		}
		db.Tables[t.Name] = f
	}
	return db, nil
}

func (db *Database) materializeTable(t *catalog.Table) (*heap.File, error) {
	rng := rand.New(rand.NewSource(db.seed ^ int64(hashName(t.Name))))
	fkRef := make(map[int]int64) // column ordinal → referenced row count
	for _, fk := range t.ForeignKeys {
		ref := db.Cat.Table(fk.RefTable)
		if ref == nil {
			return nil, fmt.Errorf("data: %s references unknown table %s", t.Name, fk.RefTable)
		}
		fkRef[t.ColumnOrdinal(fk.Column)] = ref.RowCount
	}
	f := heap.NewFile(t.Name, len(t.Columns))
	row := make([]int64, len(t.Columns))
	for r := int64(1); r <= t.RowCount; r++ {
		for ci, col := range t.Columns {
			switch {
			case col.Name == "id":
				row[ci] = r
			case fkRef[ci] > 0:
				row[ci] = 1 + rng.Int63n(fkRef[ci])
			default:
				lo, hi := col.Min, col.Max
				if hi <= lo {
					lo, hi = 1, max64(1, col.NDV)
				}
				row[ci] = lo + rng.Int63n(hi-lo+1)
			}
		}
		if _, err := f.Insert(row); err != nil {
			return nil, err
		}
	}
	return f, nil
}

// BuildIndex constructs a real B-tree over the heap data for the given
// index descriptor and records its measured shape (leaf/internal node
// counts, height) — the ground truth the what-if estimate approximates.
// Trees are cached by the index's canonical key (table + column list), so
// interchangeable descriptors share one tree regardless of name.
func (db *Database) BuildIndex(ix *catalog.Index) (*btree.Tree, error) {
	if t, ok := db.Indexes[ix.Key()]; ok {
		return t, nil
	}
	tab := db.Cat.Table(ix.Table)
	f := db.Tables[ix.Table]
	if tab == nil || f == nil {
		return nil, fmt.Errorf("data: index %s on unknown or unmaterialised table %s", ix.Name, ix.Table)
	}
	ords := make([]int, len(ix.Columns))
	for i, col := range ix.Columns {
		o := tab.ColumnOrdinal(col)
		if o < 0 {
			return nil, fmt.Errorf("data: index %s references unknown column %s.%s", ix.Name, ix.Table, col)
		}
		ords[i] = o
	}
	entries := make([]btree.Entry, 0, f.Count())
	f.Scan(func(tid heap.TID, row []int64) bool {
		key := make([]int64, len(ords))
		for i, o := range ords {
			key[i] = row[o]
		}
		entries = append(entries, btree.Entry{Key: key, TID: tid})
		return true
	})
	tree := btree.Bulk(ix.Key(), btree.DefaultFanout, entries)
	db.Indexes[ix.Key()] = tree
	return tree, nil
}

// IndexFor returns a built B-tree matching the descriptor's key (table +
// columns), building it on demand.
func (db *Database) IndexFor(ix *catalog.Index) (*btree.Tree, error) {
	return db.BuildIndex(ix)
}

// TotalBytes reports the heap footprint of the database.
func (db *Database) TotalBytes() int64 {
	var b int64
	for _, f := range db.Tables {
		b += f.Bytes()
	}
	return b
}

// String summarises the database.
func (db *Database) String() string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "database(%d tables, %d indexes, %.1f MB)",
		len(db.Tables), len(db.Indexes), float64(db.TotalBytes())/1e6)
	return sb.String()
}

func hashName(s string) uint32 {
	h := fnv.New32a()
	h.Write([]byte(s))
	return h.Sum32()
}

func max64(a, b int64) int64 {
	if a > b {
		return a
	}
	return b
}

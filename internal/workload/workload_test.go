package workload

import (
	"math/rand"
	"strings"
	"testing"

	"github.com/pinumdb/pinum/internal/optimizer"
	"github.com/pinumdb/pinum/internal/storage"
	"github.com/pinumdb/pinum/internal/whatif"
)

func TestStarSchemaShape(t *testing.T) {
	s, err := StarSchema(1.0)
	if err != nil {
		t.Fatal(err)
	}
	if len(s.Dims) != 28 {
		t.Errorf("%d dimension tables, want 28 (paper §VI-A)", len(s.Dims))
	}
	if s.Fact == nil || s.Fact.RowCount != factRowsScale1 {
		t.Error("fact table missing or mis-sized")
	}
	// Every foreign key resolves and has matching NDV.
	for _, tb := range s.Catalog.Tables() {
		for _, fk := range tb.ForeignKeys {
			ref := s.Catalog.Table(fk.RefTable)
			if ref == nil {
				t.Fatalf("%s.%s references unknown %s", tb.Name, fk.Column, fk.RefTable)
			}
			if col := tb.Column(fk.Column); col.NDV != ref.RowCount {
				t.Errorf("%s.%s NDV %d != %s rows %d", tb.Name, fk.Column, col.NDV, ref.Name, ref.RowCount)
			}
		}
	}
	// The database totals ≈10 GB at scale 1.
	var bytes int64
	for _, tb := range s.Catalog.Tables() {
		bytes += storage.TableBytes(tb)
	}
	gb := storage.GigaBytes(bytes)
	if gb < 8 || gb > 12 {
		t.Errorf("database is %.1f GB, want ≈10 GB", gb)
	}
}

func TestStarSchemaScaleValidation(t *testing.T) {
	if _, err := StarSchema(0); err == nil {
		t.Error("zero scale accepted")
	}
	if _, err := StarSchema(-1); err == nil {
		t.Error("negative scale accepted")
	}
	small, err := StarSchema(0.001)
	if err != nil {
		t.Fatal(err)
	}
	if small.Fact.RowCount >= factRowsScale1/500 {
		t.Error("scaling did not reduce the fact table")
	}
}

func TestQueriesDeterministicAndValid(t *testing.T) {
	s, err := StarSchema(1.0)
	if err != nil {
		t.Fatal(err)
	}
	q1, err := s.Queries(42)
	if err != nil {
		t.Fatal(err)
	}
	q2, err := s.Queries(42)
	if err != nil {
		t.Fatal(err)
	}
	if len(q1) != 10 {
		t.Fatalf("%d queries, want 10", len(q1))
	}
	for i := range q1 {
		if q1[i].SQL != q2[i].SQL {
			t.Errorf("query %d not deterministic", i)
		}
		if err := q1[i].Validate(); err != nil {
			t.Errorf("query %d invalid: %v", i, err)
		}
		if !q1[i].JoinGraphConnected() {
			t.Errorf("query %d disconnected", i)
		}
		if len(q1[i].OrderBy) == 0 {
			t.Errorf("query %d misses ORDER BY (paper: all queries order)", i)
		}
	}
	// Sizes ascend from 2 to 7 tables.
	if len(q1[0].Rels) != 2 || len(q1[9].Rels) != 7 {
		t.Errorf("table counts: Q1=%d Q10=%d", len(q1[0].Rels), len(q1[9].Rels))
	}
	// Different seeds produce different workloads.
	q3, err := s.Queries(1)
	if err != nil {
		t.Fatal(err)
	}
	same := 0
	for i := range q1 {
		if q1[i].SQL == q3[i].SQL {
			same++
		}
	}
	if same == len(q1) {
		t.Error("seed does not vary the workload")
	}
}

func TestFiltersAreOnePercentSelective(t *testing.T) {
	s, err := StarSchema(1.0)
	if err != nil {
		t.Fatal(err)
	}
	qs, err := s.Queries(42)
	if err != nil {
		t.Fatal(err)
	}
	for _, q := range qs {
		for _, f := range q.Filters {
			span := f.Value2 - f.Value + 1
			sel := float64(span) / float64(AttrDomain)
			if sel < 0.005 || sel > 0.02 {
				t.Errorf("%s: filter %s has %.3f selectivity, want ≈1%%", q.Name, f, sel)
			}
		}
	}
}

func TestQ5AnalogueStructure(t *testing.T) {
	s, err := StarSchema(1.0)
	if err != nil {
		t.Fatal(err)
	}
	q, err := s.Q5Analogue()
	if err != nil {
		t.Fatal(err)
	}
	if len(q.Rels) != 6 {
		t.Errorf("%d relations, want 6 (TPC-H Q5 joins 6 tables)", len(q.Rels))
	}
	if got := q.ComboCount(); got != 648 {
		t.Errorf("combo count %d, want 648", got)
	}
	if len(q.GroupBy) == 0 || len(q.OrderBy) == 0 {
		t.Error("Q5 analogue must group and order")
	}
}

func TestRandomAtomicConfigIsAtomic(t *testing.T) {
	s, err := StarSchema(1.0)
	if err != nil {
		t.Fatal(err)
	}
	qs, err := s.Queries(42)
	if err != nil {
		t.Fatal(err)
	}
	a, err := optimizer.NewAnalysis(qs[8], s.Stats, optimizer.DefaultCostParams())
	if err != nil {
		t.Fatal(err)
	}
	ws := whatif.NewSession(s.Catalog)
	rng := rand.New(rand.NewSource(9))
	for i := 0; i < 50; i++ {
		cfg, err := RandomAtomicConfig(rng, a, ws, 0.8)
		if err != nil {
			t.Fatal(err)
		}
		if !cfg.Atomic(qs[8]) {
			t.Fatalf("trial %d: config not atomic: %s", i, cfg)
		}
		for _, ix := range cfg.Indexes {
			tb := s.Catalog.Table(ix.Table)
			for _, col := range ix.Columns {
				if tb.Column(col) == nil {
					t.Fatalf("index column %s.%s unknown", ix.Table, col)
				}
			}
		}
	}
}

func TestCandidateIndexes(t *testing.T) {
	s, err := StarSchema(1.0)
	if err != nil {
		t.Fatal(err)
	}
	qs, err := s.Queries(42)
	if err != nil {
		t.Fatal(err)
	}
	a, err := optimizer.NewAnalysis(qs[9], s.Stats, optimizer.DefaultCostParams())
	if err != nil {
		t.Fatal(err)
	}
	ws := whatif.NewSession(s.Catalog)
	_, names, err := CandidateIndexes(a, ws)
	if err != nil {
		t.Fatal(err)
	}
	if len(names) < 20 {
		t.Errorf("only %d candidates for a 7-way join", len(names))
	}
	if got := DescribeQueries(qs); !strings.Contains(got, "Q10") {
		t.Error("DescribeQueries misses Q10")
	}
}

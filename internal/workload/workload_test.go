package workload

import (
	"fmt"
	"math/rand"
	"strings"
	"testing"

	"github.com/pinumdb/pinum/internal/optimizer"
	"github.com/pinumdb/pinum/internal/storage"
	"github.com/pinumdb/pinum/internal/whatif"
)

func TestStarSchemaShape(t *testing.T) {
	s, err := StarSchema(1.0)
	if err != nil {
		t.Fatal(err)
	}
	if len(s.Dims) != 28 {
		t.Errorf("%d dimension tables, want 28 (paper §VI-A)", len(s.Dims))
	}
	if s.Fact == nil || s.Fact.RowCount != factRowsScale1 {
		t.Error("fact table missing or mis-sized")
	}
	// Every foreign key resolves and has matching NDV.
	for _, tb := range s.Catalog.Tables() {
		for _, fk := range tb.ForeignKeys {
			ref := s.Catalog.Table(fk.RefTable)
			if ref == nil {
				t.Fatalf("%s.%s references unknown %s", tb.Name, fk.Column, fk.RefTable)
			}
			if col := tb.Column(fk.Column); col.NDV != ref.RowCount {
				t.Errorf("%s.%s NDV %d != %s rows %d", tb.Name, fk.Column, col.NDV, ref.Name, ref.RowCount)
			}
		}
	}
	// The database totals ≈10 GB at scale 1.
	var bytes int64
	for _, tb := range s.Catalog.Tables() {
		bytes += storage.TableBytes(tb)
	}
	gb := storage.GigaBytes(bytes)
	if gb < 8 || gb > 12 {
		t.Errorf("database is %.1f GB, want ≈10 GB", gb)
	}
}

func TestStarSchemaScaleValidation(t *testing.T) {
	if _, err := StarSchema(0); err == nil {
		t.Error("zero scale accepted")
	}
	if _, err := StarSchema(-1); err == nil {
		t.Error("negative scale accepted")
	}
	small, err := StarSchema(0.001)
	if err != nil {
		t.Fatal(err)
	}
	if small.Fact.RowCount >= factRowsScale1/500 {
		t.Error("scaling did not reduce the fact table")
	}
}

func TestQueriesDeterministicAndValid(t *testing.T) {
	s, err := StarSchema(1.0)
	if err != nil {
		t.Fatal(err)
	}
	q1, err := s.Queries(42)
	if err != nil {
		t.Fatal(err)
	}
	q2, err := s.Queries(42)
	if err != nil {
		t.Fatal(err)
	}
	if len(q1) != 10 {
		t.Fatalf("%d queries, want 10", len(q1))
	}
	for i := range q1 {
		if q1[i].SQL != q2[i].SQL {
			t.Errorf("query %d not deterministic", i)
		}
		if err := q1[i].Validate(); err != nil {
			t.Errorf("query %d invalid: %v", i, err)
		}
		if !q1[i].JoinGraphConnected() {
			t.Errorf("query %d disconnected", i)
		}
		if len(q1[i].OrderBy) == 0 {
			t.Errorf("query %d misses ORDER BY (paper: all queries order)", i)
		}
	}
	// Sizes ascend from 2 to 7 tables.
	if len(q1[0].Rels) != 2 || len(q1[9].Rels) != 7 {
		t.Errorf("table counts: Q1=%d Q10=%d", len(q1[0].Rels), len(q1[9].Rels))
	}
	// Different seeds produce different workloads.
	q3, err := s.Queries(1)
	if err != nil {
		t.Fatal(err)
	}
	same := 0
	for i := range q1 {
		if q1[i].SQL == q3[i].SQL {
			same++
		}
	}
	if same == len(q1) {
		t.Error("seed does not vary the workload")
	}
}

func TestFiltersAreOnePercentSelective(t *testing.T) {
	s, err := StarSchema(1.0)
	if err != nil {
		t.Fatal(err)
	}
	qs, err := s.Queries(42)
	if err != nil {
		t.Fatal(err)
	}
	for _, q := range qs {
		for _, f := range q.Filters {
			span := f.Value2 - f.Value + 1
			sel := float64(span) / float64(AttrDomain)
			if sel < 0.005 || sel > 0.02 {
				t.Errorf("%s: filter %s has %.3f selectivity, want ≈1%%", q.Name, f, sel)
			}
		}
	}
}

func TestQ5AnalogueStructure(t *testing.T) {
	s, err := StarSchema(1.0)
	if err != nil {
		t.Fatal(err)
	}
	q, err := s.Q5Analogue()
	if err != nil {
		t.Fatal(err)
	}
	if len(q.Rels) != 6 {
		t.Errorf("%d relations, want 6 (TPC-H Q5 joins 6 tables)", len(q.Rels))
	}
	if got := q.ComboCount(); got != 648 {
		t.Errorf("combo count %d, want 648", got)
	}
	if len(q.GroupBy) == 0 || len(q.OrderBy) == 0 {
		t.Error("Q5 analogue must group and order")
	}
}

func TestRandomAtomicConfigIsAtomic(t *testing.T) {
	s, err := StarSchema(1.0)
	if err != nil {
		t.Fatal(err)
	}
	qs, err := s.Queries(42)
	if err != nil {
		t.Fatal(err)
	}
	a, err := optimizer.NewAnalysis(qs[8], s.Stats, optimizer.DefaultCostParams())
	if err != nil {
		t.Fatal(err)
	}
	ws := whatif.NewSession(s.Catalog)
	rng := rand.New(rand.NewSource(9))
	for i := 0; i < 50; i++ {
		cfg, err := RandomAtomicConfig(rng, a, ws, 0.8)
		if err != nil {
			t.Fatal(err)
		}
		if !cfg.Atomic(qs[8]) {
			t.Fatalf("trial %d: config not atomic: %s", i, cfg)
		}
		for _, ix := range cfg.Indexes {
			tb := s.Catalog.Table(ix.Table)
			for _, col := range ix.Columns {
				if tb.Column(col) == nil {
					t.Fatalf("index column %s.%s unknown", ix.Table, col)
				}
			}
		}
	}
}

func TestShapeQueryTopologies(t *testing.T) {
	for _, sh := range Shapes {
		for _, n := range []int{2, 4, 7} {
			spec := ShapeSpec{Shape: sh, Rels: n, Density: 0.5, Seed: int64(31*n) + int64(sh)}
			cat, q, err := ShapeQuery(spec)
			if err != nil {
				t.Fatalf("%s/%d: %v", sh, n, err)
			}
			wantRels := n
			switch sh {
			case ShapeWideChain:
				wantRels = 17 // clamped up past the packed 16-relation cap
			case ShapeWideOrders:
				wantRels = 2
			case ShapeWideGroup:
				wantRels = 3
			}
			if len(q.Rels) != wantRels {
				t.Fatalf("%s/%d: %d relations, want %d", sh, n, len(q.Rels), wantRels)
			}
			if err := q.Validate(); err != nil {
				t.Fatalf("%s/%d: %v", sh, n, err)
			}
			if !q.JoinGraphConnected() {
				t.Fatalf("%s/%d: generated query disconnected", sh, n)
			}
			wantJoins := -1
			switch sh {
			case ShapeChain, ShapeStar, ShapeSnowflake:
				wantJoins = n - 1
			case ShapeCycle:
				wantJoins = n
				if n == 2 {
					wantJoins = 1 // the 2-relation cycle degenerates to the chain
				}
			case ShapeClique:
				wantJoins = n * (n - 1) / 2
			case ShapeWideChain, ShapeWideGroup:
				wantJoins = wantRels - 1
			case ShapeWideOrders:
				wantJoins = wideJoinCols
			}
			if wantJoins >= 0 && len(q.Joins) != wantJoins {
				t.Errorf("%s/%d: %d joins, want %d", sh, n, len(q.Joins), wantJoins)
			}
			if sh == ShapeRandom && (len(q.Joins) < n-1 || len(q.Joins) > n*(n-1)/2) {
				t.Errorf("%s/%d: %d joins outside [n-1, n(n-1)/2]", sh, n, len(q.Joins))
			}
			// Every join hangs an fk on the lower-indexed relation and
			// probes the id of the higher one.
			for _, j := range q.Joins {
				if j.Left.Rel >= j.Right.Rel || j.Right.Column != "id" {
					t.Errorf("%s/%d: unexpected join orientation %s", sh, n, j)
				}
			}
			// Configurations only reference real columns.
			rng := rand.New(rand.NewSource(5))
			for _, cfg := range ShapeConfigs(rng, cat, q, 3) {
				for _, ix := range cfg.Indexes {
					tb := cat.Table(ix.Table)
					if tb == nil {
						t.Fatalf("%s/%d: config index on unknown table %s", sh, n, ix.Table)
					}
					for _, col := range ix.Columns {
						if tb.Column(col) == nil {
							t.Fatalf("%s/%d: config column %s.%s unknown", sh, n, ix.Table, col)
						}
					}
				}
			}
		}
	}
}

func TestShapeQueryDeterministic(t *testing.T) {
	spec := ShapeSpec{Shape: ShapeRandom, Rels: 6, Density: 0.4, Seed: 99}
	_, q1, err := ShapeQuery(spec)
	if err != nil {
		t.Fatal(err)
	}
	_, q2, err := ShapeQuery(spec)
	if err != nil {
		t.Fatal(err)
	}
	if fmt.Sprint(q1.Joins) != fmt.Sprint(q2.Joins) ||
		fmt.Sprint(q1.Filters) != fmt.Sprint(q2.Filters) ||
		fmt.Sprint(q1.GroupBy) != fmt.Sprint(q2.GroupBy) ||
		fmt.Sprint(q1.OrderBy) != fmt.Sprint(q2.OrderBy) {
		t.Error("same spec produced different queries")
	}
	spec.Seed = 100
	_, q3, err := ShapeQuery(spec)
	if err != nil {
		t.Fatal(err)
	}
	if fmt.Sprint(q1.Joins) == fmt.Sprint(q3.Joins) &&
		fmt.Sprint(q1.Filters) == fmt.Sprint(q3.Filters) {
		t.Error("seed does not vary the generated query")
	}
}

func TestShapeDensityBounds(t *testing.T) {
	// Density 0 on the random shape yields a tree; density 1 the clique.
	_, tree, err := ShapeQuery(ShapeSpec{Shape: ShapeRandom, Rels: 7, Density: 0, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	if len(tree.Joins) != 6 {
		t.Errorf("density 0: %d joins, want 6 (spanning tree)", len(tree.Joins))
	}
	_, clique, err := ShapeQuery(ShapeSpec{Shape: ShapeRandom, Rels: 7, Density: 1, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	if len(clique.Joins) != 21 {
		t.Errorf("density 1: %d joins, want 21 (clique)", len(clique.Joins))
	}
}

func TestCandidateIndexes(t *testing.T) {
	s, err := StarSchema(1.0)
	if err != nil {
		t.Fatal(err)
	}
	qs, err := s.Queries(42)
	if err != nil {
		t.Fatal(err)
	}
	a, err := optimizer.NewAnalysis(qs[9], s.Stats, optimizer.DefaultCostParams())
	if err != nil {
		t.Fatal(err)
	}
	ws := whatif.NewSession(s.Catalog)
	_, names, err := CandidateIndexes(a, ws)
	if err != nil {
		t.Fatal(err)
	}
	if len(names) < 20 {
		t.Errorf("only %d candidates for a 7-way join", len(names))
	}
	if got := DescribeQueries(qs); !strings.Contains(got, "Q10") {
		t.Error("DescribeQueries misses Q10")
	}
}

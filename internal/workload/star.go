// Package workload generates the paper's experimental workloads: the
// synthetic 10 GB star-schema database with one fact table and 28 dimension
// tables arranged in a hierarchy (§VI-A), the 10-query analytical workload
// over it, the TPC-H Q5 analogue used in the §IV redundancy analysis, and
// random atomic configurations for the accuracy experiments.
package workload

import (
	"fmt"
	"math/rand"
	"strings"

	"github.com/pinumdb/pinum/internal/catalog"
	"github.com/pinumdb/pinum/internal/query"
	"github.com/pinumdb/pinum/internal/sql"
	"github.com/pinumdb/pinum/internal/stats"
)

// AttrDomain is the value domain of non-key attribute columns; BETWEEN
// filters spanning 1 % of it reproduce the paper's "where clauses with 1 %
// selectivity".
const AttrDomain = 100000

// Dimension hierarchy shape: 8 first-level dimensions referenced by the
// fact table, 12 second-level dimensions referenced by first-level ones,
// and 8 third-level dimensions referenced by second-level ones — 28 in all,
// "the dimension tables themselves have other dimension tables and so on".
const (
	level1Dims = 8
	level2Dims = 12
	level3Dims = 8
)

// Star describes the generated star-schema database.
type Star struct {
	Catalog *catalog.Catalog
	Stats   *stats.Store
	// Fact is the central fact table.
	Fact *catalog.Table
	// Dims holds the 28 dimension tables, level 1 first.
	Dims []*catalog.Table
	// Scale is the size multiplier relative to the paper's 10 GB database
	// (1.0 reproduces the paper's statistics).
	Scale float64
}

// factRows at scale 1.0 yields a ≈9.3 GB fact table, which with the
// dimension tables totals ≈10 GB, the paper's database size.
const factRowsScale1 = 35_000_000

// StarSchema builds the star-schema catalog and statistics at the given
// scale. Scale 1.0 is the paper's 10 GB database; the physical-execution
// experiments use a small scale with the same schema.
func StarSchema(scale float64) (*Star, error) {
	if scale <= 0 {
		return nil, fmt.Errorf("workload: scale must be positive, got %g", scale)
	}
	s := &Star{Catalog: catalog.New(), Stats: stats.NewStore(), Scale: scale}

	rows := func(base int64) int64 {
		r := int64(float64(base) * scale)
		if r < 10 {
			r = 10
		}
		return r
	}

	// Third-level dimensions first, so foreign keys resolve upward.
	type dimSpec struct {
		name     string
		rows     int64
		attrs    int
		children []string // child dimension tables this one references
	}
	var specs []dimSpec
	for i := 0; i < level3Dims; i++ {
		specs = append(specs, dimSpec{
			name:  fmt.Sprintf("dim3_%d", i+1),
			rows:  rows(10_000 + int64(i)*2_000),
			attrs: 2,
		})
	}
	for i := 0; i < level2Dims; i++ {
		sp := dimSpec{
			name:  fmt.Sprintf("dim2_%d", i+1),
			rows:  rows(100_000 + int64(i)*20_000),
			attrs: 3,
		}
		// The first 8 second-level dimensions each reference one
		// third-level dimension.
		if i < level3Dims {
			sp.children = []string{fmt.Sprintf("dim3_%d", i+1)}
		}
		specs = append(specs, sp)
	}
	for i := 0; i < level1Dims; i++ {
		sp := dimSpec{
			name:  fmt.Sprintf("dim1_%d", i+1),
			rows:  rows(1_000_000 + int64(i)*250_000),
			attrs: 4,
		}
		// Each first-level dimension references up to two second-level
		// dimensions.
		c1 := i % level2Dims
		c2 := (i + level1Dims) % level2Dims
		sp.children = []string{fmt.Sprintf("dim2_%d", c1+1)}
		if c2 != c1 {
			sp.children = append(sp.children, fmt.Sprintf("dim2_%d", c2+1))
		}
		specs = append(specs, sp)
	}

	for _, sp := range specs {
		t, err := s.makeDim(sp.name, sp.rows, sp.attrs, sp.children)
		if err != nil {
			return nil, err
		}
		s.Dims = append(s.Dims, t)
	}

	// The fact table references every first-level dimension.
	fact := &catalog.Table{Name: "fact", RowCount: rows(factRowsScale1)}
	fact.Columns = append(fact.Columns, &catalog.Column{
		Name: "id", Type: catalog.Int, NDV: fact.RowCount, Min: 1, Max: fact.RowCount, NotNull: true,
	})
	for i := 0; i < level1Dims; i++ {
		dim := s.Catalog.Table(fmt.Sprintf("dim1_%d", i+1))
		col := fmt.Sprintf("fk_dim1_%d", i+1)
		fact.Columns = append(fact.Columns, &catalog.Column{
			Name: col, Type: catalog.Int, NDV: dim.RowCount, Min: 1, Max: dim.RowCount, NotNull: true,
		})
		fact.ForeignKeys = append(fact.ForeignKeys, catalog.ForeignKey{
			Column: col, RefTable: dim.Name, RefColumn: "id",
		})
	}
	for i := 0; i < 12; i++ {
		fact.Columns = append(fact.Columns, &catalog.Column{
			Name: fmt.Sprintf("m%d", i+1), Type: catalog.Int,
			NDV: AttrDomain, Min: 1, Max: AttrDomain,
		})
	}
	for i := 0; i < 8; i++ {
		fact.Columns = append(fact.Columns, &catalog.Column{
			Name: fmt.Sprintf("a%d", i+1), Type: catalog.Int,
			NDV: AttrDomain, Min: 1, Max: AttrDomain,
		})
	}
	if err := s.Catalog.AddTable(fact); err != nil {
		return nil, err
	}
	s.Fact = fact
	s.attachUniformStats(fact)
	return s, nil
}

func (s *Star) makeDim(name string, rowCount int64, attrs int, children []string) (*catalog.Table, error) {
	t := &catalog.Table{Name: name, RowCount: rowCount}
	t.Columns = append(t.Columns, &catalog.Column{
		Name: "id", Type: catalog.Int, NDV: rowCount, Min: 1, Max: rowCount, NotNull: true,
	})
	for _, child := range children {
		ct := s.Catalog.Table(child)
		if ct == nil {
			return nil, fmt.Errorf("workload: dimension %q references unknown child %q", name, child)
		}
		col := "fk_" + child
		t.Columns = append(t.Columns, &catalog.Column{
			Name: col, Type: catalog.Int, NDV: ct.RowCount, Min: 1, Max: ct.RowCount, NotNull: true,
		})
		t.ForeignKeys = append(t.ForeignKeys, catalog.ForeignKey{
			Column: col, RefTable: child, RefColumn: "id",
		})
	}
	for i := 0; i < attrs; i++ {
		t.Columns = append(t.Columns, &catalog.Column{
			Name: fmt.Sprintf("a%d", i+1), Type: catalog.Int,
			NDV: AttrDomain, Min: 1, Max: AttrDomain,
		})
	}
	if err := s.Catalog.AddTable(t); err != nil {
		return nil, err
	}
	s.attachUniformStats(t)
	return t, nil
}

// attachUniformStats installs uniform histograms for every column, matching
// the paper's "columns ... uniformly distributed across all positive
// integers" (scaled to each column's domain).
func (s *Star) attachUniformStats(t *catalog.Table) {
	for _, c := range t.Columns {
		ndv := c.NDV
		if ndv <= 0 {
			ndv = t.RowCount
		}
		h := stats.Uniform(c.Min, c.Max, t.RowCount, ndv, 64)
		s.Stats.Set(t.Name, c.Name, &stats.ColumnStats{
			Rows:     t.RowCount,
			Distinct: ndv,
			Min:      c.Min,
			Max:      c.Max,
			Hist:     h,
		})
	}
}

// joinEdge describes one usable foreign-key edge from table From.FromCol to
// table To."id".
type joinEdge struct {
	From    string
	FromCol string
	To      string
}

// edges returns every foreign-key edge in the schema.
func (s *Star) edges() []joinEdge {
	var out []joinEdge
	for _, t := range s.Catalog.Tables() {
		for _, fk := range t.ForeignKeys {
			out = append(out, joinEdge{From: t.Name, FromCol: fk.Column, To: fk.RefTable})
		}
	}
	return out
}

// Queries generates the 10-query workload of §VI-A: each query joins a
// subset of tables along foreign keys (2 up to 7 tables), selects random
// columns, filters with ≈1 % selectivity BETWEEN predicates, and orders by
// a column; some queries also group. The generation is deterministic in the
// seed.
func (s *Star) Queries(seed int64) ([]*query.Query, error) {
	rng := rand.New(rand.NewSource(seed))
	// Table counts per query, ascending so Q1 is the simplest and Q10 the
	// widest join, as in the paper's figures.
	sizes := []int{2, 2, 3, 3, 4, 4, 5, 5, 6, 7}
	queries := make([]*query.Query, 0, len(sizes))
	for qi, n := range sizes {
		name := fmt.Sprintf("Q%d", qi+1)
		sqlText := s.generateSQL(rng, n, qi)
		stmt, err := sql.Parse(sqlText)
		if err != nil {
			return nil, fmt.Errorf("workload: %s: %v (sql: %s)", name, err, sqlText)
		}
		q, err := sql.Bind(stmt, s.Catalog, name)
		if err != nil {
			return nil, fmt.Errorf("workload: %s: %v (sql: %s)", name, err, sqlText)
		}
		queries = append(queries, q)
	}
	return queries, nil
}

// generateSQL builds one random star query joining n tables, starting from
// the fact table and walking foreign-key edges.
func (s *Star) generateSQL(rng *rand.Rand, n, qi int) string {
	edges := s.edges()
	inQuery := map[string]bool{"fact": true}
	order := []string{"fact"}
	var joins []string
	for len(order) < n {
		// Candidate edges from an included table to an excluded one.
		var cands []joinEdge
		for _, e := range edges {
			if inQuery[e.From] && !inQuery[e.To] {
				cands = append(cands, e)
			}
		}
		if len(cands) == 0 {
			break
		}
		e := cands[rng.Intn(len(cands))]
		inQuery[e.To] = true
		order = append(order, e.To)
		joins = append(joins, fmt.Sprintf("%s.%s = %s.id", e.From, e.FromCol, e.To))
	}

	// Random select columns: 2–4 attribute/measure columns, drawn from a
	// small "hot" pool per table. Analytical workloads reuse a handful of
	// measures across queries; the overlap is what lets the advisor's
	// covering indexes serve several queries within the space budget.
	var selects []string
	nSel := 2 + rng.Intn(3)
	for i := 0; i < nSel; i++ {
		t := s.Catalog.Table(order[rng.Intn(len(order))])
		col := hotColumn(t, rng)
		if col == "" {
			continue
		}
		ref := t.Name + "." + col
		dup := false
		for _, prev := range selects {
			if prev == ref {
				dup = true
				break
			}
		}
		if !dup {
			selects = append(selects, ref)
		}
	}
	if len(selects) == 0 {
		selects = []string{"fact.m1"}
	}

	// 1–2 BETWEEN filters with ~1 % selectivity on attribute columns,
	// also drawn from the hot pool.
	var filters []string
	nFil := 1 + rng.Intn(2)
	for i := 0; i < nFil; i++ {
		t := s.Catalog.Table(order[rng.Intn(len(order))])
		col := hotColumn(t, rng)
		if col == "" {
			continue
		}
		width := AttrDomain / 100 // 1 % of the domain
		lo := 1 + rng.Intn(AttrDomain-width)
		filters = append(filters, fmt.Sprintf("%s.%s BETWEEN %d AND %d", t.Name, col, lo, lo+width-1))
	}

	// ORDER BY one column of a joined table; every third query also
	// groups, exercising the grouping planner's interesting orders.
	ot := s.Catalog.Table(order[rng.Intn(len(order))])
	oCol := hotColumn(ot, rng)
	if oCol == "" {
		oCol = "id"
	}
	groupBy := ""
	if qi%3 == 2 {
		gt := s.Catalog.Table(order[rng.Intn(len(order))])
		gCol := hotColumn(gt, rng)
		if gCol != "" {
			// Group on the order column too so ORDER BY remains valid
			// grouping-wise.
			groupBy = fmt.Sprintf(" GROUP BY %s.%s, %s.%s", gt.Name, gCol, ot.Name, oCol)
		}
	}

	var b strings.Builder
	fmt.Fprintf(&b, "SELECT %s FROM %s", strings.Join(selects, ", "), strings.Join(order, ", "))
	conds := append(append([]string{}, joins...), filters...)
	if len(conds) > 0 {
		fmt.Fprintf(&b, " WHERE %s", strings.Join(conds, " AND "))
	}
	b.WriteString(groupBy)
	fmt.Fprintf(&b, " ORDER BY %s.%s", ot.Name, oCol)
	return b.String()
}

// attrColumn picks a non-key attribute or measure column of t, or "".
func attrColumn(t *catalog.Table, rng *rand.Rand) string {
	cands := attrColumns(t)
	if len(cands) == 0 {
		return ""
	}
	return cands[rng.Intn(len(cands))]
}

// hotColumn picks from the first few attribute columns of t, modelling the
// column reuse real analytical workloads exhibit.
func hotColumn(t *catalog.Table, rng *rand.Rand) string {
	cands := attrColumns(t)
	if len(cands) == 0 {
		return ""
	}
	hot := 3
	if hot > len(cands) {
		hot = len(cands)
	}
	return cands[rng.Intn(hot)]
}

func attrColumns(t *catalog.Table) []string {
	var cands []string
	for _, c := range t.Columns {
		if c.Name == "id" || strings.HasPrefix(c.Name, "fk_") {
			continue
		}
		cands = append(cands, c.Name)
	}
	return cands
}

// SetTableRows changes one table's row count and refreshes its uniform
// column statistics to match — the statistics-drift injection hook used
// by hot-reload tests and the daemon's -stats-overrides flag. Only the
// named table's statistics move, so queries that never touch it keep
// bit-identical costs across a reload.
func (s *Star) SetTableRows(name string, rows int64) error {
	if rows <= 0 {
		return fmt.Errorf("workload: row count for %s must be positive, got %d", name, rows)
	}
	t := s.Catalog.Table(name)
	if t == nil {
		return fmt.Errorf("workload: no table %s", name)
	}
	t.RowCount = rows
	t.Pages = 0 // re-derive heap size from the new row count
	s.attachUniformStats(t)
	return nil
}

// Q5Analogue builds the 6-table query used for the §IV analysis. Its
// interesting-order structure yields exactly 648 interesting order
// combinations, the number the paper reports for TPC-H Q5:
//
//	fact joins dim1_1, dim1_2, dim1_3 (3 orders on fact → factor 4),
//	dim1_1 joins its child (pk + fk orders → 3), dim1_3 joins its child's
//	sibling... with grouping and ordering columns adding one order each:
//	4 × 3 × 3 × 3 × 2 × 3 = 648.
func (s *Star) Q5Analogue() (*query.Query, error) {
	d1 := s.Catalog.Table("dim1_1")
	d3 := s.Catalog.Table("dim1_3")
	if d1 == nil || d3 == nil || len(d1.ForeignKeys) == 0 || len(d3.ForeignKeys) == 0 {
		return nil, fmt.Errorf("workload: star schema misses expected dimensions")
	}
	child1 := d1.ForeignKeys[0] // dim1_1 → its second-level child
	child3 := d3.ForeignKeys[0] // dim1_3 → its second-level child
	sqlText := fmt.Sprintf(
		"SELECT fact.m1, dim1_2.a1, %s.a1 "+
			"FROM fact, dim1_1, dim1_2, dim1_3, %s, %s "+
			"WHERE fact.fk_dim1_1 = dim1_1.id AND fact.fk_dim1_2 = dim1_2.id AND fact.fk_dim1_3 = dim1_3.id "+
			"AND dim1_1.%s = %s.id AND dim1_3.%s = %s.id "+
			"AND fact.a1 BETWEEN 1 AND %d "+
			"GROUP BY dim1_2.a1, %s.a1 ORDER BY %s.a1",
		child3.RefTable,
		child1.RefTable, child3.RefTable,
		child1.Column, child1.RefTable, child3.Column, child3.RefTable,
		AttrDomain/100,
		child3.RefTable, child3.RefTable,
	)
	stmt, err := sql.Parse(sqlText)
	if err != nil {
		return nil, err
	}
	return sql.Bind(stmt, s.Catalog, "Q5-analogue")
}

package workload

import (
	"math/rand"
	"sort"
	"strings"

	"github.com/pinumdb/pinum/internal/optimizer"
	"github.com/pinumdb/pinum/internal/query"
	"github.com/pinumdb/pinum/internal/whatif"
)

// RandomAtomicConfig draws a random atomic configuration for the analysed
// query: for each relation, with the given probability, one hypothetical
// index over 1–3 of the columns the query references on that relation
// (experiment E2 uses 1000 of these per query, as §VI-C does).
func RandomAtomicConfig(rng *rand.Rand, a *optimizer.Analysis, ws *whatif.Session, indexProb float64) (*query.Config, error) {
	cfg := &query.Config{}
	seen := make(map[string]bool)
	for i := range a.Rels {
		ri := &a.Rels[i]
		if seen[ri.Table.Name] {
			continue // self-joins: one index per table keeps the config atomic
		}
		if rng.Float64() >= indexProb {
			continue
		}
		cols := referencedColumns(ri)
		if len(cols) == 0 {
			continue
		}
		rng.Shuffle(len(cols), func(x, y int) { cols[x], cols[y] = cols[y], cols[x] })
		n := 1 + rng.Intn(3)
		if n > len(cols) {
			n = len(cols)
		}
		ix, err := ws.CreateIndex(ri.Table.Name, cols[:n]...)
		if err != nil {
			return nil, err
		}
		cfg.Indexes = append(cfg.Indexes, ix)
		seen[ri.Table.Name] = true
	}
	return cfg, nil
}

// referencedColumns lists the query-referenced columns of a relation in
// deterministic order.
func referencedColumns(ri *optimizer.RelInfo) []string {
	out := make([]string, 0, len(ri.Needed))
	for c := range ri.Needed {
		out = append(out, c)
	}
	sort.Strings(out)
	return out
}

// CandidateIndexes produces the advisor's syntactic candidate set for a
// query, in the spirit of §V-E's "large set of candidate indexes":
//
//   - one single-column index per referenced column;
//   - one two-column index per (interesting order, other referenced column)
//     pair;
//   - one covering index per interesting order (order column first, then
//     every other referenced column);
//   - one covering index per relation ordered arbitrarily (for pure
//     index-only access).
func CandidateIndexes(a *optimizer.Analysis, ws *whatif.Session) ([]*query.Config, []string, error) {
	var names []string
	add := func(table string, cols ...string) error {
		ix, err := ws.CreateIndex(table, cols...)
		if err != nil {
			return err
		}
		names = append(names, ix.Name)
		return nil
	}
	seenTable := make(map[string]bool)
	for i := range a.Rels {
		ri := &a.Rels[i]
		if seenTable[ri.Table.Name] {
			continue
		}
		seenTable[ri.Table.Name] = true
		cols := referencedColumns(ri)
		for _, c := range cols {
			if err := add(ri.Table.Name, c); err != nil {
				return nil, nil, err
			}
		}
		for _, lead := range ri.Interesting {
			for _, c := range cols {
				if c == lead {
					continue
				}
				if err := add(ri.Table.Name, lead, c); err != nil {
					return nil, nil, err
				}
			}
			covering := append([]string{lead}, without(cols, lead)...)
			if len(covering) > 1 {
				if err := add(ri.Table.Name, covering...); err != nil {
					return nil, nil, err
				}
			}
		}
		if len(cols) > 1 {
			if err := add(ri.Table.Name, cols...); err != nil {
				return nil, nil, err
			}
		}
	}
	return nil, names, nil
}

func without(cols []string, drop string) []string {
	out := make([]string, 0, len(cols))
	for _, c := range cols {
		if c != drop {
			out = append(out, c)
		}
	}
	return out
}

// DescribeQueries renders a short human-readable summary of a query list
// (used by the CLIs).
func DescribeQueries(qs []*query.Query) string {
	var b strings.Builder
	for _, q := range qs {
		tables := make([]string, len(q.Rels))
		for i := range q.Rels {
			tables[i] = q.RelName(i)
		}
		b.WriteString(q.Name)
		b.WriteString(": ")
		b.WriteString(strings.Join(tables, " ⋈ "))
		b.WriteString("\n")
	}
	return b.String()
}

// Join-graph shape generator: deterministic catalogs and queries whose
// join graphs have a requested topology (chain, cycle, star, snowflake,
// clique, or a random connected graph with tunable density). The optimizer
// equivalence suite, the fuzz target, the benchmarks, and the enumeration
// experiment all draw their non-star workloads from here, so every
// consumer exercises the same family of graphs.
package workload

import (
	"fmt"
	"math/rand"
	"sort"

	"github.com/pinumdb/pinum/internal/catalog"
	"github.com/pinumdb/pinum/internal/query"
	"github.com/pinumdb/pinum/internal/storage"
)

// Shape identifies a join-graph topology.
type Shape int

const (
	// ShapeChain joins relations in a line: 0—1—2—…—(n-1).
	ShapeChain Shape = iota
	// ShapeCycle closes the chain with an extra 0—(n-1) clause.
	ShapeCycle
	// ShapeStar joins every relation directly to relation 0.
	ShapeStar
	// ShapeSnowflake attaches a first level of dimensions to relation 0
	// and a second level to the first (two-deep star).
	ShapeSnowflake
	// ShapeClique joins every pair of relations.
	ShapeClique
	// ShapeRandom builds a random spanning tree plus extra edges chosen
	// with probability Density.
	ShapeRandom
	// ShapeWideChain is a chain of more relations than the optimizer's
	// packed plan keys hold (>16), exercising the wide fast-planner lane.
	ShapeWideChain
	// ShapeWideOrders joins two relations on enough distinct column
	// pairs that one relation's interesting orders overflow the packed
	// 6-bit column ids (>63).
	ShapeWideOrders
	// ShapeWideGroup groups on more columns than a packed output order
	// holds (>8).
	ShapeWideGroup
)

// Shapes lists every generated topology, in the order the fuzz decoder and
// the experiment runner enumerate them. New shapes append at the end: the
// position of existing entries is the fuzz corpus ABI.
var Shapes = []Shape{ShapeChain, ShapeCycle, ShapeStar, ShapeSnowflake, ShapeClique, ShapeRandom,
	ShapeWideChain, ShapeWideOrders, ShapeWideGroup}

func (s Shape) String() string {
	switch s {
	case ShapeChain:
		return "chain"
	case ShapeCycle:
		return "cycle"
	case ShapeStar:
		return "star"
	case ShapeSnowflake:
		return "snowflake"
	case ShapeClique:
		return "clique"
	case ShapeRandom:
		return "random"
	case ShapeWideChain:
		return "wide-chain"
	case ShapeWideOrders:
		return "wide-orders"
	case ShapeWideGroup:
		return "wide-group"
	default:
		return fmt.Sprintf("Shape(%d)", int(s))
	}
}

// ShapeSpec describes one generated query.
type ShapeSpec struct {
	Shape Shape
	// Rels is the number of relations (clamped to [2, 12]; ShapeWideChain
	// clamps to [17, 24] instead, ShapeWideOrders and ShapeWideGroup fix
	// their own relation counts).
	Rels int
	// Density applies to ShapeRandom: the probability of adding each
	// non-spanning-tree edge (0 reproduces a random tree, 1 the clique).
	Density float64
	// Seed drives table sizes, edge choices, filters, grouping and
	// ordering deterministically.
	Seed int64
}

// shapeEdges returns the topology's edge list as (lo, hi) relation pairs,
// lo < hi. Spanning-tree parents always carry a smaller index than their
// children, which is what lets every edge hang the foreign key on the
// lower-indexed side.
func shapeEdges(spec ShapeSpec, n int, rng *rand.Rand) [][2]int {
	var edges [][2]int
	seen := make(map[[2]int]bool)
	add := func(a, b int) {
		if a > b {
			a, b = b, a
		}
		e := [2]int{a, b}
		if seen[e] {
			return // e.g. the 2-relation cycle degenerates to the chain
		}
		seen[e] = true
		edges = append(edges, e)
	}
	switch spec.Shape {
	case ShapeChain, ShapeWideChain, ShapeWideGroup:
		for i := 0; i+1 < n; i++ {
			add(i, i+1)
		}
	case ShapeWideOrders:
		// No fk edges: ShapeQuery connects the two relations with
		// wideJoinCols direct clauses instead.
	case ShapeCycle:
		for i := 0; i+1 < n; i++ {
			add(i, i+1)
		}
		add(0, n-1)
	case ShapeStar:
		for i := 1; i < n; i++ {
			add(0, i)
		}
	case ShapeSnowflake:
		// First level: roughly half the dimensions attach to the hub;
		// the rest attach round-robin to the first level.
		level1 := (n - 1 + 1) / 2
		if level1 < 1 {
			level1 = 1
		}
		for i := 1; i <= level1 && i < n; i++ {
			add(0, i)
		}
		for i := level1 + 1; i < n; i++ {
			add(1+(i-level1-1)%level1, i)
		}
	case ShapeClique:
		for i := 0; i < n; i++ {
			for j := i + 1; j < n; j++ {
				add(i, j)
			}
		}
	case ShapeRandom:
		// Random spanning tree: each relation attaches to an earlier one.
		for i := 1; i < n; i++ {
			add(rng.Intn(i), i)
		}
		// Extra edges with probability Density, in deterministic pair order.
		for i := 0; i < n; i++ {
			for j := i + 1; j < n; j++ {
				if !seen[[2]int{i, j}] && rng.Float64() < spec.Density {
					add(i, j)
				}
			}
		}
	}
	return edges
}

// ShapeQuery builds a fresh catalog and a bound query whose join graph has
// the requested topology, with randomized-but-deterministic table sizes,
// 1 %-ish BETWEEN filters, and optional grouping and ordering. The same
// spec always yields the same catalog and query.
// wideJoinCols is the clause count of ShapeWideOrders: one more
// interesting order on the wide relation than the optimizer's packed
// 6-bit column ids can hold.
const wideJoinCols = 64

func ShapeQuery(spec ShapeSpec) (*catalog.Catalog, *query.Query, error) {
	n := spec.Rels
	switch spec.Shape {
	case ShapeWideChain:
		if n < 17 {
			n = 17
		}
		if n > 24 {
			n = 24
		}
	case ShapeWideOrders:
		n = 2
	case ShapeWideGroup:
		n = 3
	default:
		if n < 2 {
			n = 2
		}
		if n > 12 {
			n = 12
		}
	}
	rng := rand.New(rand.NewSource(spec.Seed))
	edges := shapeEdges(spec, n, rng)

	// Table sizes: relation 0 is the big (fact-like) one; the rest span
	// three orders of magnitude so join-order choices stay interesting.
	rows := make([]int64, n)
	rows[0] = 500_000 + int64(rng.Intn(1_500_000))
	for i := 1; i < n; i++ {
		rows[i] = 1_000 + int64(rng.Intn(200_000))
	}

	cat := catalog.New()
	const attrDomain = 1000
	for i := 0; i < n; i++ {
		t := &catalog.Table{Name: fmt.Sprintf("t%d", i), RowCount: rows[i]}
		t.Columns = append(t.Columns, &catalog.Column{
			Name: "id", Type: catalog.Int, NDV: rows[i], Min: 1, Max: rows[i], NotNull: true,
		})
		for _, e := range edges {
			if e[0] != i {
				continue
			}
			ndv := rows[e[1]]
			if ndv > rows[i] {
				ndv = rows[i]
			}
			t.Columns = append(t.Columns, &catalog.Column{
				Name: fmt.Sprintf("fk_t%d", e[1]), Type: catalog.Int,
				NDV: ndv, Min: 1, Max: rows[e[1]], NotNull: true,
			})
		}
		if spec.Shape == ShapeWideOrders && i == 0 {
			// The wide relation: one join column per clause, so its
			// interesting orders overflow the packed ids.
			for k := 0; k < wideJoinCols; k++ {
				ndv := rows[1]
				if ndv > rows[0] {
					ndv = rows[0]
				}
				t.Columns = append(t.Columns, &catalog.Column{
					Name: fmt.Sprintf("w%d", k), Type: catalog.Int,
					NDV: ndv, Min: 1, Max: rows[1], NotNull: true,
				})
			}
		}
		attrs := 2
		if spec.Shape == ShapeWideGroup {
			attrs = 3 // three per relation: nine grouping columns below
		}
		for a := 1; a <= attrs; a++ {
			t.Columns = append(t.Columns, &catalog.Column{
				Name: fmt.Sprintf("a%d", a), Type: catalog.Int,
				NDV: attrDomain, Min: 1, Max: attrDomain,
			})
		}
		if err := cat.AddTable(t); err != nil {
			return nil, nil, err
		}
	}

	q := &query.Query{Name: fmt.Sprintf("%s-%d", spec.Shape, n)}
	for i := 0; i < n; i++ {
		q.Rels = append(q.Rels, query.Rel{Table: cat.Table(fmt.Sprintf("t%d", i))})
	}
	for _, e := range edges {
		q.Joins = append(q.Joins, query.Join{
			Left:  query.ColRef{Rel: e[0], Column: fmt.Sprintf("fk_t%d", e[1])},
			Right: query.ColRef{Rel: e[1], Column: "id"},
		})
	}
	if spec.Shape == ShapeWideOrders {
		for k := 0; k < wideJoinCols; k++ {
			q.Joins = append(q.Joins, query.Join{
				Left:  query.ColRef{Rel: 0, Column: fmt.Sprintf("w%d", k)},
				Right: query.ColRef{Rel: 1, Column: "id"},
			})
		}
	}

	// Two select columns from distinct relations, ~1 % BETWEEN filters on
	// about half the relations, and grouping/ordering half the time each.
	q.Select = []query.ColRef{
		{Rel: rng.Intn(n), Column: "a1"},
		{Rel: rng.Intn(n), Column: "a2"},
	}
	for i := 0; i < n; i++ {
		if rng.Intn(2) == 0 {
			continue
		}
		lo := int64(1 + rng.Intn(attrDomain-20))
		q.Filters = append(q.Filters, query.Filter{
			Col: query.ColRef{Rel: i, Column: "a1"}, Op: query.Between,
			Value: lo, Value2: lo + int64(rng.Intn(10)),
		})
	}
	if rng.Intn(2) == 0 {
		q.GroupBy = []query.ColRef{q.Select[0]}
	}
	if rng.Intn(2) == 0 {
		ob := q.Select[1]
		if len(q.GroupBy) > 0 {
			ob = q.GroupBy[0]
		}
		q.OrderBy = []query.ColRef{ob}
	}
	if spec.Shape == ShapeWideGroup {
		// Nine grouping columns: past the packed output-order capacity.
		q.GroupBy = q.GroupBy[:0]
		for i := 0; i < n; i++ {
			for a := 1; a <= 3; a++ {
				q.GroupBy = append(q.GroupBy, query.ColRef{Rel: i, Column: fmt.Sprintf("a%d", a)})
			}
		}
		q.OrderBy = nil
	}
	if err := q.Validate(); err != nil {
		return nil, nil, err
	}
	return cat, q, nil
}

// ShapeAllOrdersConfig covers every interesting order of every relation
// with one covering hypothetical index (the cache-construction call's
// configuration), built from the query alone.
func ShapeAllOrdersConfig(cat *catalog.Catalog, q *query.Query) *query.Config {
	cfg := &query.Config{}
	ios := q.InterestingOrders()
	needed := q.ColumnsNeeded()
	for i, cols := range ios {
		t := q.Rels[i].Table
		for _, lead := range cols {
			ixCols := []string{lead}
			var rest []string
			for c := range needed[i] {
				if c != lead {
					rest = append(rest, c)
				}
			}
			sort.Strings(rest)
			ixCols = append(ixCols, rest...)
			cfg.Indexes = append(cfg.Indexes, storage.HypotheticalIndex(
				fmt.Sprintf("ao_%d_%s", i, lead), t, ixCols))
		}
	}
	return cfg
}

// ShapeConfigs builds n random index configurations for the query (thin or
// covering indexes on random interesting orders), plus the all-orders
// covering configuration first, mirroring the optimizer equivalence
// suite's configuration family without depending on an Analysis.
func ShapeConfigs(rng *rand.Rand, cat *catalog.Catalog, q *query.Query, n int) []*query.Config {
	out := []*query.Config{ShapeAllOrdersConfig(cat, q)}
	ios := q.InterestingOrders()
	needed := q.ColumnsNeeded()
	for c := 0; c < n; c++ {
		cfg := &query.Config{}
		for i, cols := range ios {
			if len(cols) == 0 || rng.Intn(3) == 0 {
				continue
			}
			lead := cols[rng.Intn(len(cols))]
			ixCols := []string{lead}
			if rng.Intn(2) == 0 { // widen toward covering
				var rest []string
				for other := range needed[i] {
					if other != lead {
						rest = append(rest, other)
					}
				}
				sort.Strings(rest)
				ixCols = append(ixCols, rest...)
			}
			cfg.Indexes = append(cfg.Indexes, storage.HypotheticalIndex(
				fmt.Sprintf("sh_%d_%d_%d", c, i, len(cfg.Indexes)), q.Rels[i].Table, ixCols))
		}
		out = append(out, cfg)
	}
	return out
}

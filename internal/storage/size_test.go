package storage

import (
	"testing"
	"testing/quick"

	"github.com/pinumdb/pinum/internal/catalog"
)

func table(rows int64, cols int) *catalog.Table {
	t := &catalog.Table{Name: "t", RowCount: rows}
	names := []string{"a", "b", "c", "d", "e", "f", "g", "h"}
	for i := 0; i < cols; i++ {
		t.Columns = append(t.Columns, &catalog.Column{Name: names[i], Type: catalog.Int})
	}
	return t
}

func TestAlign(t *testing.T) {
	cases := map[int]int{0: 0, 1: 8, 7: 8, 8: 8, 9: 16, 23: 24, 24: 24, -3: 0}
	for in, want := range cases {
		if got := Align(in); got != want {
			t.Errorf("Align(%d) = %d, want %d", in, got, want)
		}
	}
}

func TestTablePages(t *testing.T) {
	tb := table(1_000_000, 4)
	pages := TablePages(tb)
	// 4 ints = 32B payload + 24B header + 4B slot = 60B → ~135 rows/page.
	perPage := float64(1_000_000) / float64(pages)
	if perPage < 100 || perPage > 160 {
		t.Errorf("rows per page = %.0f, outside plausible range", perPage)
	}
	// Explicit page count wins.
	tb.Pages = 42
	if TablePages(tb) != 42 {
		t.Error("explicit Pages not honoured")
	}
	if TableBytes(tb) != 42*PageSize {
		t.Error("TableBytes wrong")
	}
}

// Property: leaf page estimates are monotone in row count and key width.
func TestLeafPagesMonotone(t *testing.T) {
	f := func(rows1, rows2 uint32, w1, w2 uint8) bool {
		r1, r2 := int64(rows1%10_000_000)+1, int64(rows2%10_000_000)+1
		if r1 > r2 {
			r1, r2 = r2, r1
		}
		c1, c2 := int(w1%4)+1, int(w2%4)+1
		if c1 > c2 {
			c1, c2 = c2, c1
		}
		small := table(r1, c1)
		big := table(r2, c2)
		colsSmall := make([]string, 0, c1)
		for _, c := range small.Columns {
			colsSmall = append(colsSmall, c.Name)
		}
		colsBig := make([]string, 0, c2)
		for _, c := range big.Columns {
			colsBig = append(colsBig, c.Name)
		}
		return LeafPages(small, colsSmall) <= LeafPages(big, colsBig)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

func TestHypotheticalVsBuilt(t *testing.T) {
	tb := table(35_000_000, 4)
	cols := []string{"a", "b"}
	hypo := HypotheticalIndex("h", tb, cols)
	built := BuiltIndex("b", tb, cols)
	if !hypo.Hypothetical || built.Hypothetical {
		t.Error("Hypothetical flags wrong")
	}
	if hypo.LeafPages != built.LeafPages {
		t.Errorf("leaf pages differ: %d vs %d", hypo.LeafPages, built.LeafPages)
	}
	if hypo.InternalPages != 0 {
		t.Error("what-if estimate must ignore internal pages (§V-A)")
	}
	if built.InternalPages <= 0 {
		t.Error("built index must include internal pages")
	}
	// Internal pages are a small fraction — the paper's ≤1% error source.
	frac := float64(built.InternalPages) / float64(built.LeafPages)
	if frac <= 0 || frac > 0.02 {
		t.Errorf("internal/leaf fraction %.4f outside (0, 2%%]", frac)
	}
	if hypo.Height != built.Height || hypo.Height < 1 {
		t.Errorf("heights: hypo %d built %d", hypo.Height, built.Height)
	}
}

func TestBTreeHeight(t *testing.T) {
	if BTreeHeight(1, 100) != 0 {
		t.Error("single leaf should have height 0")
	}
	if BTreeHeight(100, 100) != 1 {
		t.Error("100 leaves at fanout 100 should have height 1")
	}
	if BTreeHeight(101, 100) != 2 {
		t.Error("101 leaves at fanout 100 should have height 2")
	}
	if InternalPages(1, 100) != 0 {
		t.Error("single leaf needs no internal pages")
	}
	if got := InternalPages(100, 100); got != 1 {
		t.Errorf("InternalPages(100,100) = %d, want 1", got)
	}
}

func TestGigaBytesRoundTrip(t *testing.T) {
	if GigaBytes(BytesForGB(5)) != 5 {
		t.Error("GB round trip failed")
	}
	tb := table(1000, 2)
	ix := HypotheticalIndex("x", tb, []string{"a"})
	if IndexBytes(ix) != ix.LeafPages*PageSize {
		t.Error("IndexBytes wrong")
	}
}

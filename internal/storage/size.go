// Package storage implements the physical size model: how many pages a heap
// table occupies and how large a B-tree index is, real or hypothetical.
//
// The what-if index sizing follows the paper (§V-A) exactly: "To compute
// size, we use the average attribute size, the total number of rows, and the
// attribute alignments to find the number of leaf pages required to store
// the index. We ignore the internal pages of the B-Tree index." The
// deliberate omission of internal pages is what produces the small (~0.3 %)
// costing error measured in experiment E1.
package storage

import (
	"math"

	"github.com/pinumdb/pinum/internal/catalog"
)

// Layout constants, modelled on PostgreSQL 8.3's on-disk format.
const (
	// PageSize is the size of a heap or index page in bytes.
	PageSize = 8192
	// PageHeader is the per-page bookkeeping overhead.
	PageHeader = 24
	// ItemIDSize is the per-tuple line-pointer in the page slot array.
	ItemIDSize = 4
	// HeapTupleHeader is the fixed per-row header on heap pages.
	HeapTupleHeader = 23
	// IndexTupleHeader is the fixed per-entry header on index pages
	// (8-byte TID + flags).
	IndexTupleHeader = 8
	// MaxAlign is the platform alignment quantum.
	MaxAlign = 8
	// BTreeFillFactor is the default leaf fill factor.
	BTreeFillFactor = 0.90
)

// Align rounds w up to the next MaxAlign boundary.
func Align(w int) int {
	if w <= 0 {
		return 0
	}
	return (w + MaxAlign - 1) / MaxAlign * MaxAlign
}

// HeapTupleWidth returns the aligned on-page width of one heap tuple of the
// given table, header included.
func HeapTupleWidth(t *catalog.Table) int {
	return Align(HeapTupleHeader) + Align(t.RowWidth())
}

// TablePages estimates the heap size of a table in pages.
func TablePages(t *catalog.Table) int64 {
	if t.Pages > 0 {
		return t.Pages
	}
	perPage := (PageSize - PageHeader) / (HeapTupleWidth(t) + ItemIDSize)
	if perPage < 1 {
		perPage = 1
	}
	return ceilDiv(t.RowCount, int64(perPage))
}

// TableBytes returns the heap size in bytes.
func TableBytes(t *catalog.Table) int64 { return TablePages(t) * PageSize }

// IndexTupleWidth returns the aligned width of one index entry whose key is
// the given columns of table t.
func IndexTupleWidth(t *catalog.Table, columns []string) int {
	w := 0
	for _, name := range columns {
		col := t.Column(name)
		if col == nil {
			continue
		}
		w += col.EffectiveWidth()
	}
	return Align(IndexTupleHeader) + Align(w)
}

// LeafEntriesPerPage returns how many index entries fit a leaf page at the
// default fill factor.
func LeafEntriesPerPage(t *catalog.Table, columns []string) int64 {
	usable := float64(PageSize-PageHeader) * BTreeFillFactor
	per := int64(usable / float64(IndexTupleWidth(t, columns)+ItemIDSize))
	if per < 2 {
		per = 2
	}
	return per
}

// LeafPages is the paper's what-if size estimate: the number of leaf pages
// needed to store one entry per row. Internal pages are intentionally
// ignored.
func LeafPages(t *catalog.Table, columns []string) int64 {
	return ceilDiv(t.RowCount, LeafEntriesPerPage(t, columns))
}

// InternalPages estimates the non-leaf pages of a fully built B-tree with
// the given leaf page count and fanout. This is what the what-if estimate
// leaves out and the "actual" built index includes.
func InternalPages(leafPages, fanout int64) int64 {
	if fanout < 2 {
		fanout = 2
	}
	var total int64
	level := leafPages
	for level > 1 {
		level = ceilDiv(level, fanout)
		total += level
	}
	return total
}

// BTreeFanout estimates the branching factor of internal pages for an index
// on the given columns: internal entries store the key plus a child pointer.
func BTreeFanout(t *catalog.Table, columns []string) int64 {
	per := int64((PageSize - PageHeader) / (IndexTupleWidth(t, columns) + ItemIDSize))
	if per < 2 {
		per = 2
	}
	return per
}

// BTreeHeight returns the number of edges from root to leaf for a tree with
// the given leaf page count and fanout.
func BTreeHeight(leafPages, fanout int64) int {
	if leafPages <= 1 {
		return 0
	}
	if fanout < 2 {
		fanout = 2
	}
	h := 0
	level := leafPages
	for level > 1 {
		level = ceilDiv(level, fanout)
		h++
	}
	return h
}

// HypotheticalIndex builds a what-if index descriptor for the given key,
// sized with the paper's leaf-only estimate.
func HypotheticalIndex(name string, t *catalog.Table, columns []string) *catalog.Index {
	leaf := LeafPages(t, columns)
	fan := BTreeFanout(t, columns)
	return &catalog.Index{
		Name:         name,
		Table:        t.Name,
		Columns:      append([]string(nil), columns...),
		Hypothetical: true,
		LeafPages:    leaf,
		Height:       BTreeHeight(leaf, fan),
	}
}

// BuiltIndex builds a descriptor for a *materialised* index: the same leaf
// estimate plus the internal pages a real B-tree build produces. Experiment
// E1 compares costing with BuiltIndex against HypotheticalIndex.
func BuiltIndex(name string, t *catalog.Table, columns []string) *catalog.Index {
	leaf := LeafPages(t, columns)
	fan := BTreeFanout(t, columns)
	return &catalog.Index{
		Name:          name,
		Table:         t.Name,
		Columns:       append([]string(nil), columns...),
		LeafPages:     leaf,
		InternalPages: InternalPages(leaf, fan),
		Height:        BTreeHeight(leaf, fan),
	}
}

// IndexBytes returns the total footprint of an index in bytes (leaf plus
// any recorded internal pages), the quantity charged against the advisor's
// space budget.
func IndexBytes(ix *catalog.Index) int64 { return ix.TotalPages() * PageSize }

// GigaBytes converts a byte count to GB (base-10, as the paper's "10GB
// database" and "5GBs of space" figures are).
func GigaBytes(b int64) float64 { return float64(b) / 1e9 }

// BytesForGB converts gigabytes to bytes.
func BytesForGB(gb float64) int64 { return int64(math.Round(gb * 1e9)) }

func ceilDiv(a, b int64) int64 {
	if b <= 0 {
		return a
	}
	return (a + b - 1) / b
}

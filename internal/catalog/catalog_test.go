package catalog

import (
	"testing"
)

func sampleTable() *Table {
	return &Table{
		Name:     "t",
		RowCount: 1000,
		Columns: []*Column{
			{Name: "id", Type: Int, NDV: 1000, Min: 1, Max: 1000, NotNull: true},
			{Name: "a", Type: Int, NDV: 100, Min: 1, Max: 100},
			{Name: "s", Type: String},
		},
		ForeignKeys: []ForeignKey{{Column: "a", RefTable: "u", RefColumn: "id"}},
	}
}

func TestAddTableAndLookup(t *testing.T) {
	c := New()
	if err := c.AddTable(sampleTable()); err != nil {
		t.Fatal(err)
	}
	tb := c.Table("t")
	if tb == nil {
		t.Fatal("table not found")
	}
	if got := tb.Column("a"); got == nil || got.NDV != 100 {
		t.Errorf("Column(a) = %+v", got)
	}
	if tb.Column("zz") != nil {
		t.Error("unknown column should be nil")
	}
	if ord := tb.ColumnOrdinal("s"); ord != 2 {
		t.Errorf("ColumnOrdinal(s) = %d, want 2", ord)
	}
	if ord := tb.ColumnOrdinal("zz"); ord != -1 {
		t.Errorf("ColumnOrdinal(zz) = %d, want -1", ord)
	}
	if c.Table("missing") != nil {
		t.Error("missing table should be nil")
	}
}

func TestAddTableValidation(t *testing.T) {
	c := New()
	if err := c.AddTable(&Table{Name: ""}); err == nil {
		t.Error("empty name accepted")
	}
	if err := c.AddTable(&Table{Name: "x"}); err == nil {
		t.Error("no columns accepted")
	}
	if err := c.AddTable(&Table{Name: "y", Columns: []*Column{{Name: "a"}, {Name: "a"}}}); err == nil {
		t.Error("duplicate column accepted")
	}
	if err := c.AddTable(sampleTable()); err != nil {
		t.Fatal(err)
	}
	if err := c.AddTable(sampleTable()); err == nil {
		t.Error("duplicate table accepted")
	}
}

func TestRowWidth(t *testing.T) {
	tb := sampleTable()
	want := 8 + 8 + 24 // int + int + string default widths
	if got := tb.RowWidth(); got != want {
		t.Errorf("RowWidth = %d, want %d", got, want)
	}
	tb.Columns[0].AvgWidth = 4
	if got := tb.RowWidth(); got != want-4 {
		t.Errorf("RowWidth with AvgWidth = %d, want %d", got, want-4)
	}
}

func TestIndexLifecycle(t *testing.T) {
	c := New()
	if err := c.AddTable(sampleTable()); err != nil {
		t.Fatal(err)
	}
	ix := &Index{Name: "t_a", Table: "t", Columns: []string{"a", "id"}}
	if err := c.AddIndex(ix); err != nil {
		t.Fatal(err)
	}
	if got := c.Index("t_a"); got != ix {
		t.Error("Index lookup failed")
	}
	if list := c.TableIndexes("t"); len(list) != 1 {
		t.Errorf("TableIndexes = %d entries", len(list))
	}
	if !ix.Covers("a") || ix.Covers("id") {
		t.Error("Covers should be lead-column only")
	}
	if !ix.HasColumn("id") || ix.HasColumn("s") {
		t.Error("HasColumn wrong")
	}
	if ix.Key() != "t(a,id)" {
		t.Errorf("Key = %q", ix.Key())
	}
	if !c.DropIndex("t_a") {
		t.Error("DropIndex returned false")
	}
	if c.DropIndex("t_a") {
		t.Error("double drop returned true")
	}
	if len(c.TableIndexes("t")) != 0 {
		t.Error("index still listed after drop")
	}
}

func TestAddIndexValidation(t *testing.T) {
	c := New()
	if err := c.AddTable(sampleTable()); err != nil {
		t.Fatal(err)
	}
	cases := []*Index{
		{Name: "", Table: "t", Columns: []string{"a"}},
		{Name: "i1", Table: "nope", Columns: []string{"a"}},
		{Name: "i2", Table: "t", Columns: nil},
		{Name: "i3", Table: "t", Columns: []string{"zz"}},
		{Name: "i4", Table: "t", Columns: []string{"a", "a"}},
	}
	for _, ix := range cases {
		if err := c.AddIndex(ix); err == nil {
			t.Errorf("index %+v accepted", ix)
		}
	}
}

func TestCloneIsolation(t *testing.T) {
	c := New()
	if err := c.AddTable(sampleTable()); err != nil {
		t.Fatal(err)
	}
	if err := c.AddIndex(&Index{Name: "base", Table: "t", Columns: []string{"id"}}); err != nil {
		t.Fatal(err)
	}
	cl := c.Clone()
	if err := cl.AddIndex(&Index{Name: "extra", Table: "t", Columns: []string{"a"}}); err != nil {
		t.Fatal(err)
	}
	if c.Index("extra") != nil {
		t.Error("clone index leaked into base catalog")
	}
	if cl.Index("base") == nil {
		t.Error("clone lost base index")
	}
	cl.DropIndex("base")
	if c.Index("base") == nil {
		t.Error("dropping in clone affected base")
	}
	if len(cl.AllIndexes()) != 1 {
		t.Errorf("clone has %d indexes, want 1", len(cl.AllIndexes()))
	}
}

func TestTypeStringsAndWidths(t *testing.T) {
	for _, ty := range []Type{Int, Float, String, Date} {
		if ty.String() == "" || ty.Width() <= 0 {
			t.Errorf("type %d: bad String/Width", ty)
		}
	}
	if (&Index{Name: "x", Table: "t", Columns: []string{"a"}}).TotalPages() != 0 {
		t.Error("TotalPages of empty index not 0")
	}
	ix := &Index{LeafPages: 10, InternalPages: 2}
	if ix.TotalPages() != 12 {
		t.Error("TotalPages wrong")
	}
}

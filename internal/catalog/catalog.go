// Package catalog models the schema metadata a query optimizer consumes:
// tables, columns, foreign keys, statistics handles, and secondary indexes,
// both real and hypothetical ("what-if") ones.
//
// The catalog is deliberately statistics-oriented. Exactly as in the paper,
// the optimizer never needs the data itself — only row counts, page counts,
// column widths and histograms — which is what makes what-if indexes and
// 10 GB-scale experiments possible on a laptop.
package catalog

import (
	"fmt"
	"sort"
	"strings"
)

// Type enumerates the column types the engine supports. The synthetic
// workloads in the paper use uniformly distributed integer columns; strings
// and floats are supported so realistic schemas can be declared too.
type Type int

const (
	Int Type = iota
	Float
	String
	Date
)

// String returns the SQL-ish name of the type.
func (t Type) String() string {
	switch t {
	case Int:
		return "INT"
	case Float:
		return "FLOAT"
	case String:
		return "VARCHAR"
	case Date:
		return "DATE"
	default:
		return fmt.Sprintf("Type(%d)", int(t))
	}
}

// Width returns the in-page storage width in bytes of a value of this type,
// before alignment padding. Variable-width types report a typical width; the
// size model works with average widths exactly as PostgreSQL's does.
func (t Type) Width() int {
	switch t {
	case Int:
		return 8
	case Float:
		return 8
	case String:
		return 24
	case Date:
		return 8
	default:
		return 8
	}
}

// Column describes one attribute of a table.
type Column struct {
	Name string
	Type Type

	// AvgWidth is the average stored width in bytes. Zero means "use the
	// type's default width".
	AvgWidth int

	// NDV is the number of distinct values. Zero means "unknown"; the
	// planner then assumes NDV = rows for key-like columns.
	NDV int64

	// Min and Max bound the value domain for integer-like columns. They
	// drive range-predicate selectivity when no histogram is attached.
	Min, Max int64

	NotNull bool
}

// EffectiveWidth returns AvgWidth if set, otherwise the type default.
func (c *Column) EffectiveWidth() int {
	if c.AvgWidth > 0 {
		return c.AvgWidth
	}
	return c.Type.Width()
}

// ForeignKey declares that Column references RefTable.RefColumn. The
// workload generator joins tables exclusively along foreign keys, as the
// paper's synthetic benchmark does.
type ForeignKey struct {
	Column    string
	RefTable  string
	RefColumn string
}

// Table is a base relation.
type Table struct {
	Name     string
	Columns  []*Column
	RowCount int64
	// Pages is the heap size in pages. Zero means "derive from the size
	// model" (storage.TablePages).
	Pages       int64
	ForeignKeys []ForeignKey

	colIndex map[string]int
}

// Column returns the named column, or nil.
func (t *Table) Column(name string) *Column {
	if t.colIndex == nil {
		t.buildIndex()
	}
	if i, ok := t.colIndex[name]; ok {
		return t.Columns[i]
	}
	return nil
}

// ColumnOrdinal returns the position of the named column, or -1.
func (t *Table) ColumnOrdinal(name string) int {
	if t.colIndex == nil {
		t.buildIndex()
	}
	if i, ok := t.colIndex[name]; ok {
		return i
	}
	return -1
}

func (t *Table) buildIndex() {
	t.colIndex = make(map[string]int, len(t.Columns))
	for i, c := range t.Columns {
		t.colIndex[c.Name] = i
	}
}

// RowWidth returns the average tuple payload width (sum of column widths,
// no alignment). The storage package layers alignment and headers on top.
func (t *Table) RowWidth() int {
	w := 0
	for _, c := range t.Columns {
		w += c.EffectiveWidth()
	}
	return w
}

// Index describes a secondary B-tree index, real or hypothetical.
//
// Following the paper's definition 4 (§II), an index covers an interesting
// order iff the order's column is the index's *first* column.
type Index struct {
	Name    string
	Table   string
	Columns []string
	Unique  bool

	// Hypothetical marks a what-if index: it exists only as statistics.
	Hypothetical bool

	// LeafPages is the estimated (what-if) or measured (real) number of
	// leaf pages. For hypothetical indexes this is exactly the paper's
	// §V-A estimate: leaf pages only, internal pages ignored.
	LeafPages int64

	// InternalPages is non-zero only for real (built) indexes, where the
	// whole B-tree has been measured. The gap between including and
	// excluding it is the what-if accuracy experiment (E1).
	InternalPages int64

	// Height is the B-tree height (root-to-leaf edges); used for index
	// descent cost.
	Height int
}

// TotalPages is the full on-disk footprint used for space budgeting.
func (ix *Index) TotalPages() int64 { return ix.LeafPages + ix.InternalPages }

// LeadColumn returns the first key column, the one that defines which
// interesting order the index covers.
func (ix *Index) LeadColumn() string { return ix.Columns[0] }

// Covers reports whether the index covers the interesting order on col
// (paper definition 4).
func (ix *Index) Covers(col string) bool { return len(ix.Columns) > 0 && ix.Columns[0] == col }

// HasColumn reports whether col appears anywhere in the index key.
func (ix *Index) HasColumn(col string) bool {
	for _, c := range ix.Columns {
		if c == col {
			return true
		}
	}
	return false
}

// Key returns a canonical identity string (table + column list), independent
// of the index name. Two indexes with equal keys are interchangeable for
// planning purposes.
func (ix *Index) Key() string {
	return ix.Table + "(" + strings.Join(ix.Columns, ",") + ")"
}

// Catalog is the schema plus its index set. A Catalog is not safe for
// concurrent mutation; what-if sessions clone the index set instead (see
// package whatif).
type Catalog struct {
	tables     map[string]*Table
	tableOrder []string
	indexes    map[string]*Index
	byTable    map[string][]*Index
}

// New returns an empty catalog.
func New() *Catalog {
	return &Catalog{
		tables:  make(map[string]*Table),
		indexes: make(map[string]*Index),
		byTable: make(map[string][]*Index),
	}
}

// AddTable registers a table. It returns an error on duplicate names,
// empty schemas, or duplicate column names.
func (c *Catalog) AddTable(t *Table) error {
	if t.Name == "" {
		return fmt.Errorf("catalog: table with empty name")
	}
	if _, dup := c.tables[t.Name]; dup {
		return fmt.Errorf("catalog: duplicate table %q", t.Name)
	}
	if len(t.Columns) == 0 {
		return fmt.Errorf("catalog: table %q has no columns", t.Name)
	}
	seen := make(map[string]bool, len(t.Columns))
	for _, col := range t.Columns {
		if col.Name == "" {
			return fmt.Errorf("catalog: table %q has a column with empty name", t.Name)
		}
		if seen[col.Name] {
			return fmt.Errorf("catalog: table %q: duplicate column %q", t.Name, col.Name)
		}
		seen[col.Name] = true
	}
	t.buildIndex()
	c.tables[t.Name] = t
	c.tableOrder = append(c.tableOrder, t.Name)
	return nil
}

// Table returns the named table, or nil.
func (c *Catalog) Table(name string) *Table { return c.tables[name] }

// Tables returns all tables in registration order.
func (c *Catalog) Tables() []*Table {
	out := make([]*Table, 0, len(c.tableOrder))
	for _, n := range c.tableOrder {
		out = append(out, c.tables[n])
	}
	return out
}

// AddIndex registers an index (real or hypothetical). It validates that the
// table and all key columns exist.
func (c *Catalog) AddIndex(ix *Index) error {
	if ix.Name == "" {
		return fmt.Errorf("catalog: index with empty name")
	}
	if _, dup := c.indexes[ix.Name]; dup {
		return fmt.Errorf("catalog: duplicate index %q", ix.Name)
	}
	t := c.tables[ix.Table]
	if t == nil {
		return fmt.Errorf("catalog: index %q references unknown table %q", ix.Name, ix.Table)
	}
	if len(ix.Columns) == 0 {
		return fmt.Errorf("catalog: index %q has no key columns", ix.Name)
	}
	seen := make(map[string]bool, len(ix.Columns))
	for _, col := range ix.Columns {
		if t.Column(col) == nil {
			return fmt.Errorf("catalog: index %q references unknown column %s.%s", ix.Name, ix.Table, col)
		}
		if seen[col] {
			return fmt.Errorf("catalog: index %q repeats column %q", ix.Name, col)
		}
		seen[col] = true
	}
	c.indexes[ix.Name] = ix
	c.byTable[ix.Table] = append(c.byTable[ix.Table], ix)
	return nil
}

// DropIndex removes the named index. It reports whether it existed.
func (c *Catalog) DropIndex(name string) bool {
	ix, ok := c.indexes[name]
	if !ok {
		return false
	}
	delete(c.indexes, name)
	list := c.byTable[ix.Table]
	for i, other := range list {
		if other.Name == name {
			c.byTable[ix.Table] = append(list[:i:i], list[i+1:]...)
			break
		}
	}
	return true
}

// Index returns the named index, or nil.
func (c *Catalog) Index(name string) *Index { return c.indexes[name] }

// TableIndexes returns the indexes on a table, sorted by name for
// determinism.
func (c *Catalog) TableIndexes(table string) []*Index {
	list := append([]*Index(nil), c.byTable[table]...)
	sort.Slice(list, func(i, j int) bool { return list[i].Name < list[j].Name })
	return list
}

// AllIndexes returns every index, sorted by name.
func (c *Catalog) AllIndexes() []*Index {
	out := make([]*Index, 0, len(c.indexes))
	for _, ix := range c.indexes {
		out = append(out, ix)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	return out
}

// Clone returns a catalog sharing the (immutable) tables but with an
// independent copy of the index set, so what-if sessions can add and drop
// hypothetical indexes without disturbing the base catalog.
func (c *Catalog) Clone() *Catalog {
	out := New()
	out.tables = c.tables
	out.tableOrder = c.tableOrder
	for n, ix := range c.indexes {
		out.indexes[n] = ix
	}
	for t, list := range c.byTable {
		out.byTable[t] = append([]*Index(nil), list...)
	}
	return out
}

package lint

import (
	"go/ast"
	"go/token"
	"go/types"
)

// costConsumerPkgs are the packages that evaluate or aggregate plan
// costs but must not own cost formulas: every floating-point operation
// on a cost must route through the optimizer package (Coster,
// LeafCoster, LeafAccessCost, BaseLeafCost), because that is the code
// the fast/reference equivalence suite pins. A second copy of even one
// addition elsewhere can drift — compiler-legal re-association is enough
// to break bit-identity — and no equivalence test covers it.
//
// internal/optimizer itself is exempt: both planners live there and
// share arithmetic by construction.
var costConsumerPkgs = []string{
	"internal/inum",
	"internal/costmatrix",
	"internal/advisor",
	"internal/serve",
	"internal/core",
	"internal/plancache",
	"internal/whatif",
}

// CostArith flags floating-point arithmetic over cost-typed operands in
// cost-consumer packages. "Cost-typed" is a naming contract: an operand
// whose identifier or field name mentions cost, coef, internal or
// weight. The two intentional mirrors of the INUM evaluation
// (inum.Cache.Cost and costmatrix's fold), whose bit-identity IS
// equivalence-tested, carry //pinum:costarith-ok directives pointing at
// each other.
var CostArith = &Analyzer{
	Name:     "costarith",
	Suppress: DirCostArithOK,
	Doc: "flag float arithmetic on cost-named operands outside internal/optimizer, so cost " +
		"formulas cannot be duplicated and drift from the equivalence-tested planners; " +
		"intentional, equivalence-pinned mirrors need //pinum:costarith-ok <why>",
	Run: runCostArith,
}

// costLikeNames are the lowercase substrings that mark an operand as
// cost-carrying.
var costLikeNames = []string{"cost", "coef", "internal", "weight"}

func runCostArith(pass *Pass) error {
	if !inScope(pass.Pkg.Path(), costConsumerPkgs) {
		return nil
	}
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.BinaryExpr:
				switch n.Op {
				case token.ADD, token.SUB, token.MUL, token.QUO:
				default:
					return true
				}
				if !isFloat(pass.TypesInfo.TypeOf(n)) {
					return true
				}
				if costLike(n.X) || costLike(n.Y) {
					pass.Reportf(n.Pos(), "float arithmetic %s %s %s on cost-typed operands outside internal/optimizer: cost formulas must live in the optimizer package the equivalence suite pins; call a shared helper, or annotate //pinum:costarith-ok with the test that pins this mirror", exprString(n.X), n.Op, exprString(n.Y))
				}
			case *ast.AssignStmt:
				switch n.Tok {
				case token.ADD_ASSIGN, token.SUB_ASSIGN, token.MUL_ASSIGN, token.QUO_ASSIGN:
				default:
					return true
				}
				if len(n.Lhs) != 1 || !isFloat(pass.TypesInfo.TypeOf(n.Lhs[0])) {
					return true
				}
				if costLike(n.Lhs[0]) || costLike(n.Rhs[0]) {
					pass.Reportf(n.Pos(), "float %s on cost-typed operand %s outside internal/optimizer: cost accumulation must live in the optimizer package the equivalence suite pins; call a shared helper, or annotate //pinum:costarith-ok with the test that pins this mirror", n.Tok, exprString(n.Lhs[0]))
				}
			}
			return true
		})
	}
	return nil
}

func isFloat(t types.Type) bool {
	if t == nil {
		return false
	}
	b, ok := t.Underlying().(*types.Basic)
	return ok && b.Info()&types.IsFloat != 0
}

// costLike reports whether the expression's leaf name carries a
// cost-like name: the identifier itself, the selected field, or — for
// calls — the called function's name.
func costLike(e ast.Expr) bool {
	name := ""
	switch e := e.(type) {
	case *ast.Ident:
		name = e.Name
	case *ast.SelectorExpr:
		name = e.Sel.Name
	case *ast.IndexExpr:
		return costLike(e.X)
	case *ast.ParenExpr:
		return costLike(e.X)
	case *ast.CallExpr:
		return costLike(e.Fun)
	case *ast.UnaryExpr:
		return costLike(e.X)
	case *ast.BinaryExpr:
		return costLike(e.X) || costLike(e.Y)
	}
	if name == "" {
		return false
	}
	for _, sub := range costLikeNames {
		if containsFold(name, sub) {
			return true
		}
	}
	return false
}

package lint_test

import (
	"path/filepath"
	"testing"

	"github.com/pinumdb/pinum/internal/lint"
	"github.com/pinumdb/pinum/internal/lint/linttest"
)

func fixture(parts ...string) string {
	return filepath.Join(append([]string{"testdata"}, parts...)...)
}

// Each positive fixture seeds the exact bug class the analyzer exists to
// catch; each ok fixture mirrors the real tree's idioms (and annotated
// exceptions) and must produce no diagnostics at all.

func TestDeterminismFlagsSeededCodecBugs(t *testing.T) {
	linttest.Run(t, fixture("determinism", "flag"),
		lint.PkgPath("internal/plancache"), lint.Determinism)
}

func TestDeterminismAllowsRealIdioms(t *testing.T) {
	linttest.Run(t, fixture("determinism", "ok"),
		lint.PkgPath("internal/plancache"), lint.Determinism)
}

func TestDeterminismIgnoresOutOfScopePackages(t *testing.T) {
	linttest.Run(t, fixture("determinism", "outofscope"),
		lint.PkgPath("cmd/pinum-bench"), lint.Determinism)
}

func TestSealedMutFlagsPostPublicationWrites(t *testing.T) {
	linttest.Run(t, fixture("sealedmut", "flag"),
		lint.PkgPath("internal/lintfixture"), lint.SealedMut)
}

func TestSealedMutAllowsCopiesAndJustifiedConstruction(t *testing.T) {
	linttest.Run(t, fixture("sealedmut", "ok"),
		lint.PkgPath("internal/lintfixture"), lint.SealedMut)
}

func TestCostArithFlagsOutOfPackageFormulas(t *testing.T) {
	linttest.Run(t, fixture("costarith", "flag"),
		lint.PkgPath("internal/serve"), lint.CostArith)
}

func TestCostArithAllowsNonCostMathAndPinnedMirrors(t *testing.T) {
	linttest.Run(t, fixture("costarith", "ok"),
		lint.PkgPath("internal/serve"), lint.CostArith)
}

func TestCostArithIgnoresTheOptimizerItself(t *testing.T) {
	// The same seeded formulas are legal inside internal/optimizer, where
	// both planners share arithmetic by construction.
	loader := lint.NewLoader()
	pkg, err := loader.LoadDir(fixture("costarith", "flag"), lint.PkgPath("internal/optimizer"))
	if err != nil {
		t.Fatal(err)
	}
	diags, err := lint.Run(pkg, []*lint.Analyzer{lint.CostArith})
	if err != nil {
		t.Fatal(err)
	}
	for _, d := range diags {
		t.Errorf("unexpected diagnostic in optimizer scope: %s", d.Message)
	}
}

func TestHotpathFlagsAllocPatterns(t *testing.T) {
	linttest.Run(t, fixture("hotpath", "flag"),
		lint.PkgPath("internal/optimizer"), lint.Hotpath)
}

func TestHotpathAllowsFastplanDiscipline(t *testing.T) {
	linttest.Run(t, fixture("hotpath", "ok"),
		lint.PkgPath("internal/optimizer"), lint.Hotpath)
}

func TestAtomicOnlyFlagsDirectAccess(t *testing.T) {
	linttest.Run(t, fixture("atomiconly", "flag"),
		lint.PkgPath("internal/lintfixture"), lint.AtomicOnly)
}

func TestAtomicOnlyAllowsAccessorDiscipline(t *testing.T) {
	linttest.Run(t, fixture("atomiconly", "ok"),
		lint.PkgPath("internal/lintfixture"), lint.AtomicOnly)
}

func TestDirectiveCheckFlagsVocabularyMistakes(t *testing.T) {
	linttest.Run(t, fixture("directive", "flag"),
		lint.PkgPath("internal/lintfixture"), lint.DirectiveCheck)
}

func TestDirectiveCheckAllowsProperUse(t *testing.T) {
	linttest.Run(t, fixture("directive", "ok"),
		lint.PkgPath("internal/lintfixture"), lint.DirectiveCheck)
}

// TestRealTreeClean runs the full suite over the real tree, the same
// check CI's lint step performs: every invariant violation is either
// fixed or carries a justified directive.
func TestRealTreeClean(t *testing.T) {
	if testing.Short() {
		t.Skip("full-tree lint run is slow; covered by the CI lint step too")
	}
	loader := lint.NewLoader()
	pkgs, err := loader.Load(filepath.Join("..", ".."), []string{"./..."})
	if err != nil {
		t.Fatal(err)
	}
	for _, pkg := range pkgs {
		diags, err := lint.Run(pkg, lint.All())
		if err != nil {
			t.Fatal(err)
		}
		for _, d := range diags {
			pos := loader.Fset.Position(d.Pos)
			t.Errorf("%s:%d: [%s] %s", pos.Filename, pos.Line, d.Analyzer, d.Message)
		}
	}
}

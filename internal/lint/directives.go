package lint

import (
	"go/ast"
	"go/token"
	"strings"
)

// Directive is one //pinum:<name> [justification] comment. Directives are
// the suite's escape hatch: a site that violates an invariant on purpose
// (wall-clock build stats, an order-insensitive map fold, the one
// intentional cost-arithmetic mirror) declares so in the source, with a
// justification the directive analyzer insists on.
type Directive struct {
	// Name is the directive token after "pinum:", e.g. "hotpath" or
	// "nondeterministic-ok".
	Name string
	// Arg is the rest of the comment: the human justification.
	Arg string
	// Pos is the comment's position.
	Pos token.Pos
	// File and Line locate the directive for suppression matching.
	File *token.File
	Line int
}

// The directive vocabulary. Anything else spelled //pinum:... is flagged
// by the directive analyzer, so a typo cannot silently suppress nothing.
const (
	DirNondeterministicOK = "nondeterministic-ok" // suppress determinism
	DirSealedOK           = "sealed-ok"           // suppress sealedmut
	DirCostArithOK        = "costarith-ok"        // suppress costarith
	DirHotpath            = "hotpath"             // mark a hot function
	DirAllocOK            = "alloc-ok"            // suppress hotpath
	DirAtomicOnly         = "atomic-only"         // restrict a swapped field to named accessors
	DirAllocFree          = "allocfree"           // mark a function claimed allocation-free; hotpath-checked, pin test required
)

// KnownDirectives maps every valid directive name to whether it is a
// suppression (and therefore requires a justification argument).
var KnownDirectives = map[string]bool{
	DirNondeterministicOK: true,
	DirSealedOK:           true,
	DirCostArithOK:        true,
	DirHotpath:            false,
	DirAllocOK:            true,
	DirAtomicOnly:         true, // the argument is the accessor allowlist
	DirAllocFree:          true, // the argument names the AllocsPerRun test pinning the claim
}

// Directives indexes every //pinum: comment of a package by file.
type Directives struct {
	byFile map[*token.File][]Directive
	all    []Directive
}

// ParseDirectives scans the files' comments for //pinum: directives.
func ParseDirectives(fset *token.FileSet, files []*ast.File) *Directives {
	d := &Directives{byFile: make(map[*token.File][]Directive)}
	for _, f := range files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				text, ok := strings.CutPrefix(c.Text, "//pinum:")
				if !ok {
					continue
				}
				name, arg, _ := strings.Cut(text, " ")
				tf := fset.File(c.Pos())
				dir := Directive{
					Name: strings.TrimSpace(name),
					Arg:  strings.TrimSpace(arg),
					Pos:  c.Pos(),
					File: tf,
					Line: tf.Line(c.Pos()),
				}
				d.byFile[tf] = append(d.byFile[tf], dir)
				d.all = append(d.all, dir)
			}
		}
	}
	return d
}

// All returns every directive in the package.
func (d *Directives) All() []Directive { return d.all }

// SuppressedAt reports whether a directive with the given name covers the
// position: the directive sits on the same line, or on the line directly
// above (the conventional standalone-comment placement).
func (d *Directives) SuppressedAt(fset *token.FileSet, pos token.Pos, name string) bool {
	tf := fset.File(pos)
	line := tf.Line(pos)
	for _, dir := range d.byFile[tf] {
		if dir.Name != name {
			continue
		}
		if dir.Line == line || dir.Line == line-1 {
			return true
		}
	}
	return false
}

// FuncHas reports whether the function declaration carries the directive:
// in its doc comment group or on its first line.
func (d *Directives) FuncHas(fset *token.FileSet, fn *ast.FuncDecl, name string) bool {
	tf := fset.File(fn.Pos())
	declLine := tf.Line(fn.Pos())
	for _, dir := range d.byFile[tf] {
		if dir.Name != name {
			continue
		}
		if dir.Line == declLine {
			return true
		}
		if fn.Doc != nil && dir.Pos >= fn.Doc.Pos() && dir.Pos <= fn.Doc.End() {
			return true
		}
	}
	return false
}

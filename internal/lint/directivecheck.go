package lint

// DirectiveCheck validates the //pinum: directive vocabulary itself, so
// a typo can never silently suppress nothing: unknown names are flagged,
// and every suppression directive must carry a justification (the issue
// tracker is not a justification; say why the invariant holds anyway).
var DirectiveCheck = &Analyzer{
	Name: "directive",
	Doc: "flag unknown //pinum: directive names and suppression directives without a " +
		"justification argument",
	Run: runDirectiveCheck,
}

func runDirectiveCheck(pass *Pass) error {
	for _, d := range pass.Directives.All() {
		needsArg, known := KnownDirectives[d.Name]
		if !known {
			pass.Reportf(d.Pos, "unknown directive //pinum:%s (known: alloc-ok, allocfree, atomic-only, costarith-ok, hotpath, nondeterministic-ok, sealed-ok)", d.Name)
			continue
		}
		if needsArg && d.Arg == "" {
			switch d.Name {
			case DirAtomicOnly:
				pass.Reportf(d.Pos, "//pinum:%s requires the comma-separated list of accessor functions allowed to touch the field", d.Name)
			case DirAllocFree:
				pass.Reportf(d.Pos, "//pinum:%s requires the name of the AllocsPerRun test pinning the claim", d.Name)
			default:
				pass.Reportf(d.Pos, "//pinum:%s requires a justification: say why the invariant holds at this site", d.Name)
			}
		}
	}
	return nil
}

// All returns the full analyzer suite in reporting order.
func All() []*Analyzer {
	return []*Analyzer{Determinism, SealedMut, CostArith, Hotpath, AtomicOnly, DirectiveCheck}
}

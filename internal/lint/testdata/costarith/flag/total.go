// Package servefix seeds duplicated cost formulas in a cost-consumer
// package shape: float arithmetic over cost-named operands that should
// route through the optimizer's shared helpers.
package servefix

// weightedTotal re-implements the workload objective locally.
func weightedTotal(weights, costs []float64) float64 {
	total := 0.0
	for i := range weights {
		total += weights[i] * costs[i] // want "cost accumulation" "cost formulas must live"
	}
	return total
}

// discount owns a cost formula outside the optimizer — the seeded
// out-of-package cost multiply.
func discount(cost float64) float64 {
	return cost * 0.9 // want "cost formulas must live"
}

// drift subtracts two costs into a new cost.
func drift(newCost, oldCost float64) float64 {
	return newCost - oldCost // want "cost formulas must live"
}

// Package serveok holds the float arithmetic the costarith analyzer must
// leave alone: non-cost operands, integer work on cost-adjacent names,
// and the annotated, equivalence-pinned mirror.
package serveok

// ratio is float math on operands with no cost-like name: outside the
// naming contract.
func ratio(a, b float64) float64 { return a / b }

// addCalls is integer arithmetic; the analyzer only watches floats.
func addCalls(optimizerCalls, extra int) int { return optimizerCalls + extra }

// mirrorTotal is the annotated mirror shape: justified, pinned elsewhere.
func mirrorTotal(weights, costs []float64) float64 {
	total := 0.0
	for i := range weights {
		//pinum:costarith-ok fixture mirror of the workload objective; the real one is pinned by the advisor equivalence suite
		total += weights[i] * costs[i]
	}
	return total
}

// Package dirfix seeds directive-vocabulary mistakes: a typo'd name and
// a suppression without its mandatory justification.
package dirfix

//pinum:nondeterministic-okay set union // want "unknown directive"
var a = 1

/* want "requires a justification" */ //pinum:sealed-ok
var b = 2

/* want "requires the name of the AllocsPerRun test" */ //pinum:allocfree
var c = 3

// Package dirok uses the directive vocabulary correctly: markers need no
// argument, suppressions carry a justification.
package dirok

//pinum:hotpath
func hot() {}

func collect(m map[string]bool) []string {
	out := make([]string, 0, len(m))
	//pinum:nondeterministic-ok fixture: the caller sorts the result
	for k := range m {
		out = append(out, k)
	}
	return out
}

//pinum:allocfree fixture: pinned by TestPinnedAllocFree
func pinned(n int) int { return n + 1 }

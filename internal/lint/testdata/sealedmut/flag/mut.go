// Package mutfix seeds post-publication writes to the shared-immutable
// cache structures from a consumer package: each one is a data race
// against the serving layer's lock-free concurrent readers.
package mutfix

import (
	"github.com/pinumdb/pinum/internal/inum"
	"github.com/pinumdb/pinum/internal/plancache"
)

// restamp mutates a sealed cache's stats from outside the constructors.
func restamp(c *inum.Cache) {
	c.Stats.Mem = c.MemStats() // want "shared immutable"
}

// tweak rewrites a cached plan's internal cost in place — the seeded
// post-Seal write.
func tweak(c *inum.Cache) {
	c.Plans[0].Internal = 0 // want "shared immutable"
}

// drop truncates a loaded snapshot's entries.
func drop(s *plancache.Snapshot) {
	s.Queries[0].Entries = nil // want "shared immutable"
}

// bump increments a snapshot fingerprint in place.
func bump(s *plancache.Snapshot) {
	s.Fingerprint++ // want "shared immutable"
}

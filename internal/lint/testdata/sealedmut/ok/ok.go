// Package mutok holds the writes the sealedmut analyzer must allow:
// mutation of value copies (a copy cannot alias the shared cache) and
// justified pre-publication construction writes.
package mutok

import (
	"github.com/pinumdb/pinum/internal/inum"
	"github.com/pinumdb/pinum/internal/plancache"
)

// zero mutates a value parameter: the caller's snapshot row is untouched.
func zero(qp plancache.QueryPlans) plancache.QueryPlans {
	qp.Entries = nil
	return qp
}

// copyStats works on a copied stats struct, not the cache's.
func copyStats(c *inum.Cache) inum.BuildStats {
	stats := c.Stats
	stats.OptimizerCalls = 0
	return stats
}

// publish fills Stats on a cache that is still function-local, with the
// justification the analyzer insists on.
func publish(c *inum.Cache) *inum.Cache {
	//pinum:sealed-ok the cache is unpublished until this function returns; no reader can exist yet
	c.Stats.OptimizerCalls = 2
	return c
}

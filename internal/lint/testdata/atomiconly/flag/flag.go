// Package atomicfix seeds accessor-discipline violations on a
// hot-swapped snapshot field: every direct touch outside the declared
// accessors can observe two different snapshot sets within one request.
package atomicfix

import "sync/atomic"

type snapshot struct {
	total float64
}

type server struct {
	// cur is the live snapshot set.
	//pinum:atomic-only current,swap
	cur atomic.Pointer[snapshot]

	requests atomic.Int64 // unannotated sibling, free to use anywhere
}

func (s *server) current() *snapshot { return s.cur.Load() }
func (s *server) swap(v *snapshot)   { s.cur.Store(v) }

// sneakyRead bypasses the accessor: a second Load in the same request
// can return a different set than the first.
func (s *server) sneakyRead() float64 {
	return s.cur.Load().total // want "atomic-only"
}

// sneakyPublish bypasses the swap accessor.
func (s *server) sneakyPublish(v *snapshot) {
	s.cur.Store(v) // want "atomic-only"
}

// sneakyCAS is still a direct access even though it is atomic.
func (s *server) sneakyCAS(old, v *snapshot) bool {
	return s.cur.CompareAndSwap(old, v) // want "atomic-only"
}

// counters may touch the unannotated field freely.
func (s *server) counters() int64 {
	return s.requests.Load()
}

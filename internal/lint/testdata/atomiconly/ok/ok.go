// Package atomicok mirrors the serving layer's accessor discipline: the
// swapped field is only reached inside its declared accessors, and every
// consumer goes through them — no diagnostics expected.
package atomicok

import "sync/atomic"

type snapshot struct {
	total float64
}

type server struct {
	// cur is the live snapshot set; handlers load it exactly once per
	// request through current().
	//pinum:atomic-only current,swap
	cur atomic.Pointer[snapshot]
}

func (s *server) current() *snapshot { return s.cur.Load() }
func (s *server) swap(v *snapshot)   { s.cur.Store(v) }

// handler loads the set once and uses that one set throughout.
func (s *server) handler() float64 {
	set := s.current()
	if set == nil {
		return 0
	}
	return set.total
}

// reload builds off-line and publishes through the accessor.
func (s *server) reload() {
	s.swap(&snapshot{total: 1})
}

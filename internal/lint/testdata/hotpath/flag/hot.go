// Package hotfix seeds the allocation patterns the hotpath analyzer
// polices inside //pinum:hotpath functions.
package hotfix

import "fmt"

//pinum:hotpath
func describe(ids []int) string {
	out := ""
	for _, id := range ids {
		out = out + fmt.Sprintf("#%d", id) // want "allocates per call" "string concatenation"
	}
	return out
}

//pinum:hotpath
func collect(n int) []int {
	var out []int
	for i := 0; i < n; i++ {
		out = append(out, i) // want "unhinted slice"
	}
	return out
}

//pinum:hotpath
func total(xs []float64) float64 {
	sum := 0.0
	add := func() { // want "closure capturing"
		for _, x := range xs {
			sum += x
		}
	}
	add()
	return sum
}

// allocfree is the stronger claim: same checks as hotpath, so an fmt
// call inside one is a lie the analyzer catches.
//
//pinum:allocfree fixture: pinned by TestLeakyAllocFree
func leaky(id int) {
	fmt.Println(id) // want "fmt.Println"
}

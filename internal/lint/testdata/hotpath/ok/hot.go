// Package hotok mirrors the fast planner's allocation discipline —
// hinted slices, reused buffers, cold-path error formatting — plus the
// two escape hatches: unannotated functions and //pinum:alloc-ok.
package hotok

import "fmt"

//pinum:hotpath
func collectHinted(n int) []int {
	out := make([]int, 0, n)
	for i := 0; i < n; i++ {
		out = append(out, i)
	}
	return out
}

//pinum:hotpath
func reuse(buf []int, n int) []int {
	buf = buf[:0]
	for i := 0; i < n; i++ {
		buf = append(buf, i)
	}
	return buf
}

//pinum:hotpath
func checked(n int) (int, error) {
	if n < 0 {
		return 0, fmt.Errorf("hotok: negative %d", n)
	}
	return n * 2, nil
}

// cold is unannotated: fmt is fine off the hot path.
func cold(n int) string { return fmt.Sprintf("#%d", n) }

//pinum:allocfree fixture: pinned by TestRecordAllocFree
func record(counts []int, i int) {
	if i >= 0 && i < len(counts) {
		counts[i]++
	}
}

//pinum:hotpath
func annotatedClosure(xs []int) int {
	n := 0
	//pinum:alloc-ok fixture: one bounded closure per call, not per candidate
	walk(func(i int) { n += xs[i] })
	return n
}

func walk(f func(int)) {}

// Package codecok mirrors the real codec and cache idioms the
// determinism analyzer must not flag: collect-keys-then-sort, annotated
// order-insensitive folds, and annotated build-duration stats.
package codecok

import (
	"sort"
	"time"
)

// sortedCols is the blessed shape: collect the keys, sort, then use.
func sortedCols(pool map[string]uint32) []string {
	cols := make([]string, 0, len(pool))
	for col := range pool {
		cols = append(cols, col)
	}
	sort.Strings(cols)
	return cols
}

// union is order-insensitive — the produced set does not depend on
// iteration order — and says so.
func union(a, b map[string]bool) map[string]bool {
	out := make(map[string]bool, len(a)+len(b))
	//pinum:nondeterministic-ok set union: the result is a set, iteration order is never observable
	for k := range a {
		out[k] = true
	}
	//pinum:nondeterministic-ok set union: the result is a set, iteration order is never observable
	for k := range b {
		out[k] = true
	}
	return out
}

// timed mirrors Build's stats timing: wall clock feeding only a stat.
func timed() time.Duration {
	//pinum:nondeterministic-ok wall clock feeds only a duration stat, never a cost or plan
	start := time.Now()
	//pinum:nondeterministic-ok wall clock feeds only a duration stat, never a cost or plan
	return time.Since(start)
}

// sliceRange is not a map: plain slice iteration is ordered.
func sliceRange(xs []int) int {
	total := 0
	for _, x := range xs {
		total += x
	}
	return total
}

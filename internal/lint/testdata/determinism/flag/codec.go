// Package codecfix seeds the determinism bugs the analyzer must catch in
// a snapshot-codec shape: bytes that depend on map iteration order,
// wall-clock reads, and randomized behaviour.
package codecfix

import (
	"math/rand" // want "math/rand"
	"time"
)

// encodePool writes the column pool in map iteration order: two encodes
// of the same pool may produce different bytes — the seeded codec bug.
func encodePool(pool map[string]uint32) []byte {
	var out []byte
	for col := range pool { // want "range over map"
		out = append(out, col...)
	}
	return out
}

// stamp embeds a wall-clock read in a result.
func stamp() int64 {
	return time.Now().UnixNano() // want "time.Now"
}

// age reads the wall clock through time.Since.
func age(t0 time.Time) time.Duration {
	return time.Since(t0) // want "time.Since"
}

// jitter keeps the math/rand import in use.
func jitter() float64 { return rand.Float64() }

// Package outofscope exercises package scoping: the same unsorted map
// range that is a bug in the codec is acceptable in a command, which is
// not a result-affecting package.
package outofscope

func keys(m map[string]int) []string {
	var out []string
	for k := range m {
		out = append(out, k)
	}
	return out
}

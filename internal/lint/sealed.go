package lint

import (
	"go/ast"
	"go/token"
	"go/types"
)

// protectedTypes lists the shared-immutable structures of the serving
// concurrency model: once a cache is built and sealed it is read
// concurrently by every /whatif, /recommend and /explain goroutine with
// no locking, which is only sound because nothing writes to it. Each
// entry maps a defining package to its protected type names and the
// packages allowed to write (the constructors).
var protectedTypes = []struct {
	pkg     string   // module-relative defining package
	names   []string // protected named types
	writers []string // module-relative packages allowed to write
}{
	{
		pkg:   "internal/inum",
		names: []string{"Cache", "CachedPlan"},
		// inum constructs and seals; core's two-call PINUM builders and
		// plancache's snapshot reconstruction (ToCache, BuildCaches) fill
		// Stats during construction, before the cache is published.
		writers: []string{"internal/inum", "internal/core", "internal/plancache"},
	},
	{
		pkg:     "internal/plancache",
		names:   []string{"Snapshot", "QueryPlans", "Entry"},
		writers: []string{"internal/plancache"},
	},
}

// SealedMut flags writes that reach a protected shared-immutable
// structure from outside its constructor packages: field assignments
// (including through selector/index chains rooted at a protected value),
// op-assignments, ++/--, and delete/clear on protected fields. Writing
// to a plain value copy of a protected struct is allowed — a copy cannot
// alias the shared cache.
//
// This is the static side of the Seal contract: inum.Cache.Seal drops
// the dedup state and the serving layer shares the sealed cache across
// goroutines, so a post-Seal write from a consumer package is a data
// race even if no test ever schedules it.
var SealedMut = &Analyzer{
	Name:     "sealedmut",
	Suppress: DirSealedOK,
	Doc: "flag writes to shared-immutable cache structures (inum.Cache, inum.CachedPlan, " +
		"plancache.Snapshot/QueryPlans/Entry) outside their constructor packages; " +
		"intentional pre-publication writes need //pinum:sealed-ok <why>",
	Run: runSealedMut,
}

func runSealedMut(pass *Pass) error {
	path := pass.Pkg.Path()
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.AssignStmt:
				if n.Tok == token.DEFINE {
					return true
				}
				for _, lhs := range n.Lhs {
					checkProtectedWrite(pass, path, lhs, "assignment")
				}
			case *ast.IncDecStmt:
				checkProtectedWrite(pass, path, n.X, "increment/decrement")
			case *ast.CallExpr:
				if fn, ok := n.Fun.(*ast.Ident); ok && len(n.Args) >= 1 {
					if fn.Name == "delete" || fn.Name == "clear" {
						if isBuiltin(pass.TypesInfo, fn) {
							checkProtectedWrite(pass, path, n.Args[0], fn.Name)
						}
					}
				}
			}
			return true
		})
	}
	return nil
}

// checkProtectedWrite walks the selector/index chain of a write target
// and reports if any link is (a pointer to) a protected type whose
// constructor packages do not include the current one. The chain root
// itself only counts when it is a pointer: a value-typed root is a local
// copy, and mutating a copy cannot corrupt the shared structure.
func checkProtectedWrite(pass *Pass, pkgPath string, target ast.Expr, what string) {
	expr := target
	for {
		var base ast.Expr
		switch e := expr.(type) {
		case *ast.ParenExpr:
			expr = e.X
			continue
		case *ast.SelectorExpr:
			base = e.X
		case *ast.IndexExpr:
			base = e.X
		case *ast.StarExpr:
			base = e.X
		default:
			return
		}
		t := pass.TypesInfo.TypeOf(base)
		if t != nil {
			_, isPtr := t.(*types.Pointer)
			_, isRoot := base.(*ast.Ident)
			if named := namedOf(t); named != nil && (isPtr || !isRoot) {
				if owner, protected := protectionOf(named); protected && !inScope(pkgPath, owner.writers) {
					pass.Reportf(target.Pos(),
						"%s writes to %s through %s.%s, which is shared immutable after construction; only %s may write it — route the change through a constructor, or annotate //pinum:sealed-ok with why this cannot race",
						what, exprString(target), owner.pkg, named.Obj().Name(), writersList(owner.writers))
					return
				}
			}
		}
		expr = base
	}
}

func protectionOf(named *types.Named) (struct {
	pkg     string
	names   []string
	writers []string
}, bool) {
	obj := named.Obj()
	if obj.Pkg() == nil {
		return protectedTypes[0], false
	}
	for _, p := range protectedTypes {
		if obj.Pkg().Path() != PkgPath(p.pkg) {
			continue
		}
		for _, name := range p.names {
			if obj.Name() == name {
				return p, true
			}
		}
	}
	return protectedTypes[0], false
}

func writersList(writers []string) string {
	s := ""
	for i, w := range writers {
		if i > 0 {
			s += ", "
		}
		s += w
	}
	return s
}

package lint

import (
	"go/ast"
	"go/token"
	"go/types"
)

// Hotpath flags known allocation patterns inside functions marked
// //pinum:hotpath (the planner's per-candidate screens, the DP loops,
// the costmatrix fold — code whose allocs/op the benchmarks gate):
//
//   - any call into package fmt, except inside a return statement
//     (error construction on a cold exit path is idiomatic);
//   - append to a slice variable declared in the same function without a
//     capacity hint (`var s []T`, `s := []T{}`, `s := make([]T, n)`), so
//     every growth reallocates; appends into reused buffers, fields and
//     parameters are trusted to be pre-grown;
//   - function literals that capture enclosing variables (each closure
//     allocates; non-capturing literals compile to static funcs);
//   - string concatenation.
//
// Functions marked //pinum:allocfree — a stronger claim: zero allocs,
// pinned by the AllocsPerRun test the directive names — get the same
// checks. A justified exception carries //pinum:alloc-ok.
var Hotpath = &Analyzer{
	Name:     "hotpath",
	Suppress: DirAllocOK,
	Doc: "flag allocation patterns (fmt calls, unhinted append growth, capturing closures, " +
		"string concatenation) in functions marked //pinum:hotpath or //pinum:allocfree; " +
		"justified sites carry //pinum:alloc-ok <why>",
	Run: runHotpath,
}

func runHotpath(pass *Pass) error {
	for _, f := range pass.Files {
		for _, decl := range f.Decls {
			fn, ok := decl.(*ast.FuncDecl)
			if !ok || fn.Body == nil {
				continue
			}
			if !pass.Directives.FuncHas(pass.Fset, fn, DirHotpath) &&
				!pass.Directives.FuncHas(pass.Fset, fn, DirAllocFree) {
				continue
			}
			checkHotFunc(pass, fn)
		}
	}
	return nil
}

func checkHotFunc(pass *Pass, fn *ast.FuncDecl) {
	unhinted := unhintedSlices(pass, fn)
	var inReturn func(n ast.Node) bool
	returns := map[ast.Node]bool{}
	ast.Inspect(fn.Body, func(n ast.Node) bool {
		if r, ok := n.(*ast.ReturnStmt); ok {
			returns[r] = true
		}
		return true
	})
	inReturn = func(n ast.Node) bool {
		for r := range returns {
			if n.Pos() >= r.Pos() && n.End() <= r.End() {
				return true
			}
		}
		return false
	}

	ast.Inspect(fn.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.CallExpr:
			if pkg := calleePkg(pass.TypesInfo, n.Fun); pkg == "fmt" && !inReturn(n) {
				pass.Reportf(n.Pos(), "%s in //pinum:hotpath function %s allocates per call; precompute, use strconv/append forms, or annotate //pinum:alloc-ok with why this is cold", exprString(n.Fun), fn.Name.Name)
			}
			if fnId, ok := n.Fun.(*ast.Ident); ok && fnId.Name == "append" && isBuiltin(pass.TypesInfo, fnId) && len(n.Args) > 0 {
				if dst, ok := n.Args[0].(*ast.Ident); ok {
					if obj := objectOf(pass.TypesInfo, dst); obj != nil && unhinted[obj] {
						pass.Reportf(n.Pos(), "append to %s grows an unhinted slice in //pinum:hotpath function %s; pre-size it with make(..., 0, cap), reuse a buffer, or annotate //pinum:alloc-ok with why growth is bounded", dst.Name, fn.Name.Name)
					}
				}
			}
		case *ast.FuncLit:
			if captured := capturesEnclosing(pass, fn, n); captured != "" {
				pass.Reportf(n.Pos(), "closure capturing %s in //pinum:hotpath function %s allocates; hoist the state or annotate //pinum:alloc-ok with why this is off the per-candidate path", captured, fn.Name.Name)
			}
			return false // don't descend: the literal runs in its own frame
		case *ast.BinaryExpr:
			if n.Op == token.ADD && isString(pass.TypesInfo.TypeOf(n)) {
				pass.Reportf(n.Pos(), "string concatenation in //pinum:hotpath function %s allocates; build into a reused []byte or annotate //pinum:alloc-ok with why this is cold", fn.Name.Name)
			}
		}
		return true
	})
}

func isString(t types.Type) bool {
	if t == nil {
		return false
	}
	b, ok := t.Underlying().(*types.Basic)
	return ok && b.Info()&types.IsString != 0
}

// unhintedSlices collects the function's local slice variables declared
// without a capacity hint: `var s []T`, `s := []T{...}`, and
// `s := make([]T, n)` (two-arg make — appending past len(s) grows).
// A slice initialized from any other expression (a reslice of a reused
// buffer, a parameter, a field) is presumed pre-sized.
func unhintedSlices(pass *Pass, fn *ast.FuncDecl) map[types.Object]bool {
	out := make(map[types.Object]bool)
	mark := func(id *ast.Ident, rhs ast.Expr) {
		obj := pass.TypesInfo.Defs[id]
		if obj == nil {
			return
		}
		if _, ok := obj.Type().Underlying().(*types.Slice); !ok {
			return
		}
		switch rhs := rhs.(type) {
		case nil:
			out[obj] = true // var s []T
		case *ast.CompositeLit:
			out[obj] = true // s := []T{...}
		case *ast.CallExpr:
			if fnId, ok := rhs.Fun.(*ast.Ident); ok && fnId.Name == "make" &&
				pass.TypesInfo.Uses[fnId] == nil && len(rhs.Args) == 2 {
				out[obj] = true // s := make([]T, n) — no cap
			}
		}
	}
	ast.Inspect(fn.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.AssignStmt:
			if n.Tok != token.DEFINE {
				return true
			}
			if len(n.Lhs) == len(n.Rhs) {
				for i, lhs := range n.Lhs {
					if id, ok := lhs.(*ast.Ident); ok {
						mark(id, n.Rhs[i])
					}
				}
			}
		case *ast.DeclStmt:
			if gd, ok := n.Decl.(*ast.GenDecl); ok && gd.Tok == token.VAR {
				for _, spec := range gd.Specs {
					vs, ok := spec.(*ast.ValueSpec)
					if !ok {
						continue
					}
					for i, id := range vs.Names {
						var rhs ast.Expr
						if i < len(vs.Values) {
							rhs = vs.Values[i]
						}
						mark(id, rhs)
					}
				}
			}
		}
		return true
	})
	return out
}

// capturesEnclosing returns the name of a variable the literal captures
// from the enclosing function, or "".
func capturesEnclosing(pass *Pass, fn *ast.FuncDecl, lit *ast.FuncLit) string {
	captured := ""
	ast.Inspect(lit.Body, func(n ast.Node) bool {
		if captured != "" {
			return false
		}
		id, ok := n.(*ast.Ident)
		if !ok {
			return true
		}
		obj := pass.TypesInfo.Uses[id]
		if obj == nil {
			return true
		}
		v, ok := obj.(*types.Var)
		if !ok || v.IsField() {
			return true
		}
		// Captured: declared inside the enclosing function but outside
		// the literal.
		if v.Pos() >= fn.Pos() && v.Pos() <= fn.End() &&
			!(v.Pos() >= lit.Pos() && v.Pos() <= lit.End()) {
			captured = v.Name()
		}
		return true
	})
	return captured
}

package lint

import (
	"go/ast"
	"go/token"
	"go/types"
)

// resultAffectingPkgs are the packages whose outputs must be reproducible
// bit for bit: the two planners and their equivalence contract
// (optimizer), the cached cost model (inum), the incremental pricing
// engine (costmatrix), and the byte-deterministic snapshot codec
// (plancache), and the metrics registry whose /metrics exposition must
// scrape byte-identically for the golden test and CI greps (obs). A
// nondeterministic map iteration in any of them can change plan
// tie-breaks, cost accumulation order, or encoded bytes between two runs
// on identical input.
var resultAffectingPkgs = []string{
	"internal/optimizer",
	"internal/inum",
	"internal/costmatrix",
	"internal/plancache",
	"internal/obs",
}

// Determinism flags the three common sources of run-to-run divergence in
// result-affecting packages:
//
//   - ranging over a map, unless the loop is the key-collection idiom
//     (every statement appends the range key to a slice that is later
//     passed to a sort call in the same function) or the site carries
//     //pinum:nondeterministic-ok with a justification;
//   - calling time.Now or time.Since (wall-clock reads — build-duration
//     stats are the legitimate, annotated exception);
//   - importing math/rand or math/rand/v2 (randomized behaviour belongs
//     in test files and the workload generators, never in these
//     packages).
var Determinism = &Analyzer{
	Name:     "determinism",
	Suppress: DirNondeterministicOK,
	Doc: "flag map iteration, wall-clock and math/rand use in result-affecting packages " +
		"(optimizer, inum, costmatrix, plancache); sorted-key collection loops are " +
		"recognized, everything else needs //pinum:nondeterministic-ok <why>",
	Run: runDeterminism,
}

func runDeterminism(pass *Pass) error {
	if !inScope(pass.Pkg.Path(), resultAffectingPkgs) {
		return nil
	}
	for _, f := range pass.Files {
		for _, imp := range f.Imports {
			switch imp.Path.Value {
			case `"math/rand"`, `"math/rand/v2"`:
				pass.Reportf(imp.Pos(), "import of %s in result-affecting package %s: randomized behaviour here breaks run-to-run reproducibility", imp.Path.Value, pass.Pkg.Path())
			}
		}
		ast.Inspect(f, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.RangeStmt:
				checkMapRange(pass, f, n)
			case *ast.CallExpr:
				for _, fn := range [...]string{"Now", "Since"} {
					if isPkgFunc(pass.TypesInfo, n.Fun, "time", fn) {
						pass.Reportf(n.Pos(), "time.%s in result-affecting package %s: wall-clock reads are nondeterministic; if this only feeds stats, annotate //pinum:nondeterministic-ok with why", fn, pass.Pkg.Path())
					}
				}
			}
			return true
		})
	}
	return nil
}

// checkMapRange flags `range m` over a map unless it is a provably
// order-insensitive key collection.
func checkMapRange(pass *Pass, file *ast.File, rs *ast.RangeStmt) {
	t := pass.TypesInfo.TypeOf(rs.X)
	if t == nil {
		return
	}
	if _, ok := t.Underlying().(*types.Map); !ok {
		return
	}
	if isSortedKeyCollection(pass, file, rs) {
		return
	}
	pass.Reportf(rs.Pos(), "range over map %s in result-affecting package %s: iteration order is nondeterministic; collect and sort the keys first, or annotate //pinum:nondeterministic-ok with why order cannot matter", exprString(rs.X), pass.Pkg.Path())
}

// isSortedKeyCollection recognizes the one blessed map-range shape:
//
//	for k := range m { keys = append(keys, k) }
//	...
//	sort.Strings(keys) // or sort.Slice/SliceStable/Ints/Float64s, or slices.Sort*
//
// Every statement in the body must append exactly the range key to a
// slice variable, and each such slice must flow into a sort call later in
// the same enclosing function. Anything fancier — folds, conditional
// appends, value collection — must either sort keys first or carry a
// directive.
func isSortedKeyCollection(pass *Pass, file *ast.File, rs *ast.RangeStmt) bool {
	key, ok := rs.Key.(*ast.Ident)
	if !ok || key.Name == "_" || rs.Value != nil {
		return false
	}
	keyObj := pass.TypesInfo.Defs[key]
	if keyObj == nil {
		// `for k = range m` with an outer k: resolve through Uses.
		keyObj = pass.TypesInfo.Uses[key]
	}
	if keyObj == nil || len(rs.Body.List) == 0 {
		return false
	}
	var targets []types.Object
	for _, stmt := range rs.Body.List {
		as, ok := stmt.(*ast.AssignStmt)
		if !ok || len(as.Lhs) != 1 || len(as.Rhs) != 1 {
			return false
		}
		lhs, ok := as.Lhs[0].(*ast.Ident)
		if !ok {
			return false
		}
		call, ok := as.Rhs[0].(*ast.CallExpr)
		if !ok || len(call.Args) != 2 {
			return false
		}
		if fn, ok := call.Fun.(*ast.Ident); !ok || fn.Name != "append" {
			return false
		}
		dst, ok := call.Args[0].(*ast.Ident)
		if !ok || dst.Name != lhs.Name {
			return false
		}
		arg, ok := call.Args[1].(*ast.Ident)
		if !ok {
			return false
		}
		argObj := pass.TypesInfo.Uses[arg]
		if argObj == nil || argObj != keyObj {
			return false
		}
		if o := objectOf(pass.TypesInfo, lhs); o != nil {
			targets = append(targets, o)
		} else {
			return false
		}
	}
	fn := enclosingFunc(pass.Files, rs.Pos())
	if fn == nil {
		return false
	}
	for _, target := range targets {
		if !sortedLater(pass, fn, rs.End(), target) {
			return false
		}
	}
	return true
}

func objectOf(info *types.Info, id *ast.Ident) types.Object {
	if o := info.Uses[id]; o != nil {
		return o
	}
	return info.Defs[id]
}

// sortedLater reports whether a sort call whose first argument resolves
// to target appears in fn after pos.
func sortedLater(pass *Pass, fn *ast.FuncDecl, pos token.Pos, target types.Object) bool {
	found := false
	ast.Inspect(fn.Body, func(n ast.Node) bool {
		if found {
			return false
		}
		call, ok := n.(*ast.CallExpr)
		if !ok || call.Pos() < pos || len(call.Args) == 0 {
			return true
		}
		pkg := calleePkg(pass.TypesInfo, call.Fun)
		if pkg != "sort" && pkg != "slices" {
			return true
		}
		arg, ok := call.Args[0].(*ast.Ident)
		if !ok {
			return true
		}
		if objectOf(pass.TypesInfo, arg) == target {
			found = true
		}
		return true
	})
	return found
}

// Package linttest runs internal/lint analyzers over fixture packages and
// checks the reported diagnostics against expectations written in the
// fixtures themselves, in the style of golang.org/x/tools' analysistest:
//
//	for k := range m { // want "iterates over map"
//
// A `// want "s1" "s2"` comment expects exactly those diagnostics on its
// line, each matched by substring; every line without a want comment
// expects none. Fixtures live under internal/lint/testdata/<analyzer>/ and
// are loaded as a single package under a caller-chosen import path, so
// package-scoped analyzers (determinism, costarith) can be pointed at the
// scope they police without the fixture living there.
package linttest

import (
	"fmt"
	"go/token"
	"path/filepath"
	"regexp"
	"sort"
	"strconv"
	"strings"
	"testing"

	"github.com/pinumdb/pinum/internal/lint"
)

// expectation is one `want` substring not yet matched by a diagnostic.
type expectation struct {
	file string // base name
	line int
	want string
}

var wantRe = regexp.MustCompile(`(?://|/\*)\s*want((?:\s+"(?:[^"\\]|\\.)*")+)`)
var quoteRe = regexp.MustCompile(`"(?:[^"\\]|\\.)*"`)

// Run loads dir as one package under import path asPath, runs the
// analyzers over it, and fails the test on any mismatch between reported
// diagnostics and the fixture's want comments — in either direction.
func Run(t *testing.T, dir, asPath string, analyzers ...*lint.Analyzer) {
	t.Helper()
	loader := lint.NewLoader()
	pkg, err := loader.LoadDir(dir, asPath)
	if err != nil {
		t.Fatalf("loading fixture %s: %v", dir, err)
	}

	expects := collectWants(t, pkg)
	diags, err := lint.Run(pkg, analyzers)
	if err != nil {
		t.Fatalf("running analyzers on %s: %v", dir, err)
	}

	for _, d := range diags {
		pos := pkg.Fset.Position(d.Pos)
		file, line := filepath.Base(pos.Filename), pos.Line
		if i := matchWant(expects, file, line, d.Message); i >= 0 {
			expects = append(expects[:i], expects[i+1:]...)
			continue
		}
		t.Errorf("%s:%d: unexpected diagnostic [%s]: %s", file, line, d.Analyzer, d.Message)
	}
	for _, e := range expects {
		t.Errorf("%s:%d: expected diagnostic matching %q, got none", e.file, e.line, e.want)
	}
}

// collectWants extracts every want expectation from the package's
// comments. The expectation anchors to the line the comment starts on,
// which for a trailing comment is the flagged line itself.
func collectWants(t *testing.T, pkg *lint.Package) []expectation {
	t.Helper()
	var out []expectation
	for _, f := range pkg.Files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				m := wantRe.FindStringSubmatch(c.Text)
				if m == nil {
					continue
				}
				pos := pkg.Fset.Position(c.Pos())
				for _, q := range quoteRe.FindAllString(m[1], -1) {
					s, err := strconv.Unquote(q)
					if err != nil {
						t.Fatalf("%s:%d: bad want string %s: %v", pos.Filename, pos.Line, q, err)
					}
					out = append(out, expectation{
						file: filepath.Base(pos.Filename),
						line: pos.Line,
						want: s,
					})
				}
			}
		}
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].file != out[j].file {
			return out[i].file < out[j].file
		}
		return out[i].line < out[j].line
	})
	return out
}

// matchWant returns the index of an expectation on (file, line) whose
// substring occurs in msg, or -1.
func matchWant(expects []expectation, file string, line int, msg string) int {
	for i, e := range expects {
		if e.file == file && e.line == line && strings.Contains(msg, e.want) {
			return i
		}
	}
	return -1
}

// Positions formats a FileSet position compactly for failure messages.
func Positions(fset *token.FileSet, pos token.Pos) string {
	p := fset.Position(pos)
	return fmt.Sprintf("%s:%d", filepath.Base(p.Filename), p.Line)
}

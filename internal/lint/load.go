package lint

import (
	"bytes"
	"encoding/json"
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"io"
	"os/exec"
	"path/filepath"
)

// Package is one loaded, type-checked package ready for analysis.
type Package struct {
	Path       string
	Dir        string
	Fset       *token.FileSet
	Files      []*ast.File
	Types      *types.Package
	Info       *types.Info
	Directives *Directives
}

// Loader parses and type-checks packages with a shared FileSet and a
// shared source importer, so dependencies (including the standard
// library) are type-checked once per process.
//
// The importer resolves module imports through the go tool, which means
// the PROCESS WORKING DIRECTORY must be inside this module — the
// pinum-lint driver chdirs to the module root on startup, and go test
// runs with the package directory as cwd, so both callers satisfy it.
type Loader struct {
	Fset     *token.FileSet
	importer types.Importer
}

// NewLoader returns a loader with a fresh FileSet and importer.
func NewLoader() *Loader {
	fset := token.NewFileSet()
	return &Loader{
		Fset:     fset,
		importer: importer.ForCompiler(fset, "source", nil),
	}
}

// listedPackage is the subset of `go list -json` output the loader needs.
type listedPackage struct {
	ImportPath string
	Dir        string
	Name       string
	GoFiles    []string
	Error      *struct{ Err string }
}

// List resolves package patterns (e.g. "./...") through `go list`, run in
// dir, returning the non-test buildable packages.
func List(dir string, patterns []string) ([]listedPackage, error) {
	args := append([]string{"list", "-e", "-json"}, patterns...)
	cmd := exec.Command("go", args...)
	cmd.Dir = dir
	var stderr bytes.Buffer
	cmd.Stderr = &stderr
	out, err := cmd.Output()
	if err != nil {
		return nil, fmt.Errorf("go list %v: %v\n%s", patterns, err, stderr.String())
	}
	var pkgs []listedPackage
	dec := json.NewDecoder(bytes.NewReader(out))
	for {
		var p listedPackage
		if err := dec.Decode(&p); err == io.EOF {
			break
		} else if err != nil {
			return nil, fmt.Errorf("go list -json decode: %v", err)
		}
		if p.Error != nil {
			return nil, fmt.Errorf("go list: %s: %s", p.ImportPath, p.Error.Err)
		}
		if len(p.GoFiles) == 0 {
			continue
		}
		pkgs = append(pkgs, p)
	}
	return pkgs, nil
}

// Load lists, parses and type-checks the packages matching the patterns,
// with `go list` run in dir (the module root for "./..." patterns).
// Test files are not analyzed: nondeterminism in tests is surfaced by the
// CI `go test -shuffle=on` step instead.
func (l *Loader) Load(dir string, patterns []string) ([]*Package, error) {
	listed, err := List(dir, patterns)
	if err != nil {
		return nil, err
	}
	pkgs := make([]*Package, 0, len(listed))
	for _, lp := range listed {
		files := make([]string, len(lp.GoFiles))
		for i, f := range lp.GoFiles {
			files[i] = filepath.Join(lp.Dir, f)
		}
		pkg, err := l.check(lp.ImportPath, lp.Dir, files)
		if err != nil {
			return nil, err
		}
		pkgs = append(pkgs, pkg)
	}
	return pkgs, nil
}

// LoadDir parses and type-checks every .go file in one directory as a
// single package under the given import path. This is the fixture entry
// point (linttest): the path is a label for scope matching, so fixtures
// for package-scoped analyzers pass the real package path they mimic.
func (l *Loader) LoadDir(dir, asPath string) (*Package, error) {
	matches, err := filepath.Glob(filepath.Join(dir, "*.go"))
	if err != nil {
		return nil, err
	}
	if len(matches) == 0 {
		return nil, fmt.Errorf("lint: no .go files in %s", dir)
	}
	return l.check(asPath, dir, matches)
}

func (l *Loader) check(path, dir string, filenames []string) (*Package, error) {
	var files []*ast.File
	for _, fn := range filenames {
		f, err := parser.ParseFile(l.Fset, fn, nil, parser.ParseComments)
		if err != nil {
			return nil, err
		}
		files = append(files, f)
	}
	info := &types.Info{
		Types:      make(map[ast.Expr]types.TypeAndValue),
		Defs:       make(map[*ast.Ident]types.Object),
		Uses:       make(map[*ast.Ident]types.Object),
		Selections: make(map[*ast.SelectorExpr]*types.Selection),
		Implicits:  make(map[ast.Node]types.Object),
		Scopes:     make(map[ast.Node]*types.Scope),
	}
	conf := types.Config{Importer: l.importer}
	tpkg, err := conf.Check(path, l.Fset, files, info)
	if err != nil {
		return nil, fmt.Errorf("lint: type-checking %s: %v", path, err)
	}
	return &Package{
		Path:       path,
		Dir:        dir,
		Fset:       l.Fset,
		Files:      files,
		Types:      tpkg,
		Info:       info,
		Directives: ParseDirectives(l.Fset, files),
	}, nil
}

package lint

import (
	"go/ast"
	"go/types"
	"strings"
)

// AtomicOnly enforces accessor discipline on hot-swapped state: a struct
// field annotated
//
//	//pinum:atomic-only current,swap
//
// may only be touched inside the named functions. The serving layer's
// whole reload-safety argument is that a request loads the snapshot-set
// pointer exactly once and never looks again — which holds only if every
// read goes through the accessor that does the single Load. A handler
// that reaches the atomic field directly can observe two different sets
// within one request (base costs from one, caches from another) the
// moment a reload lands between its loads; this analyzer turns that
// hazard into a build failure instead of an unluckily-timed test flake.
var AtomicOnly = &Analyzer{
	Name: "atomiconly",
	Doc: "flag accesses to //pinum:atomic-only struct fields outside their declared accessor " +
		"functions, so hot-swapped snapshot state is only reached through the single-Load accessors",
	Run: runAtomicOnly,
}

// atomicRule is one annotated field with its allowlisted accessors.
type atomicRule struct {
	field   *types.Var
	allowed map[string]bool
	list    string
}

func runAtomicOnly(pass *Pass) error {
	var rules []atomicRule
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			st, ok := n.(*ast.StructType)
			if !ok {
				return true
			}
			for _, fld := range st.Fields.List {
				dir, ok := fieldDirective(pass, fld, DirAtomicOnly)
				if !ok {
					continue
				}
				allowed := make(map[string]bool)
				for _, name := range strings.Split(dir.Arg, ",") {
					if name = strings.TrimSpace(name); name != "" {
						allowed[name] = true
					}
				}
				for _, id := range fld.Names {
					if v, ok := pass.TypesInfo.Defs[id].(*types.Var); ok {
						rules = append(rules, atomicRule{field: v, allowed: allowed, list: dir.Arg})
					}
				}
			}
			return true
		})
	}
	if len(rules) == 0 {
		return nil
	}
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			sel, ok := n.(*ast.SelectorExpr)
			if !ok {
				return true
			}
			obj := pass.TypesInfo.Uses[sel.Sel]
			if obj == nil {
				return true
			}
			for _, r := range rules {
				if obj != r.field {
					continue
				}
				fn := enclosingFunc(pass.Files, sel.Pos())
				if fn != nil && r.allowed[fn.Name.Name] {
					continue
				}
				where := "package scope"
				if fn != nil {
					where = fn.Name.Name
				}
				pass.Reportf(sel.Pos(),
					"%s is declared //pinum:atomic-only and may only be accessed inside %s (found in %s); a direct access can observe two different snapshot sets in one request — go through the accessor's single Load",
					exprString(sel), r.list, where)
			}
			return true
		})
	}
	return nil
}

// fieldDirective finds a directive attached to a struct field: in its doc
// comment group, on its own line, or on the line directly above.
func fieldDirective(pass *Pass, fld *ast.Field, name string) (Directive, bool) {
	tf := pass.Fset.File(fld.Pos())
	line := tf.Line(fld.Pos())
	for _, d := range pass.Directives.byFile[tf] {
		if d.Name != name {
			continue
		}
		if d.Line == line || d.Line == line-1 {
			return d, true
		}
		if fld.Doc != nil && d.Pos >= fld.Doc.Pos() && d.Pos <= fld.Doc.End() {
			return d, true
		}
	}
	return Directive{}, false
}

// Package lint implements pinum-lint: a suite of static analyzers that
// machine-check the invariants this repository's correctness story rests
// on, in the style of golang.org/x/tools/go/analysis.
//
// The whole value of the PINUM reproduction is that the fast planner stays
// bit-identical to OptimizeReference, that plan caches are immutable once
// sealed and shared across serving goroutines, and that the snapshot codec
// is byte-deterministic. Those invariants are enforced after the fact by
// equivalence and fuzz suites — which catch a violation only when a test
// input happens to hit it. The analyzers here move the common violation
// shapes to build failures:
//
//   - determinism: no map iteration, wall-clock or math/rand use in
//     result-affecting packages unless the site is provably order-safe or
//     carries a justified //pinum:nondeterministic-ok directive;
//   - sealedmut: no writes to shared-immutable cache structures
//     (inum.Cache, inum.CachedPlan, plancache.Snapshot/QueryPlans) outside
//     their constructor packages;
//   - costarith: no floating-point cost arithmetic outside the optimizer
//     package, so the fast and reference planners cannot drift onto
//     separate arithmetic through a helper reimplemented elsewhere;
//   - hotpath: no known allocation patterns (fmt, unhinted append growth,
//     capturing closures, string concatenation) in functions marked
//     //pinum:hotpath;
//   - directive: every //pinum: directive is spelled correctly and every
//     suppression carries a justification.
//
// The framework mirrors the go/analysis API (Analyzer, Pass, Diagnostic)
// so the suite can migrate to the real framework mechanically if
// golang.org/x/tools ever becomes a dependency; it is self-contained on
// the standard library because this repository deliberately has none.
package lint

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"
)

// ModulePath is the import-path root of this repository; analyzers match
// package scopes against paths under it.
const ModulePath = "github.com/pinumdb/pinum"

// PkgPath returns the full import path of a package inside this module
// given its module-relative path (e.g. "internal/optimizer").
func PkgPath(rel string) string { return ModulePath + "/" + rel }

// Analyzer is one invariant checker, mirroring analysis.Analyzer.
type Analyzer struct {
	// Name identifies the analyzer in diagnostics and -run selections.
	Name string
	// Doc is the one-paragraph description printed by pinum-lint -list.
	Doc string
	// Suppress is the //pinum: directive name that silences this
	// analyzer's diagnostics at a site ("" = not suppressible).
	Suppress string
	// Run reports diagnostics through the pass.
	Run func(*Pass) error
}

// Diagnostic is one finding.
type Diagnostic struct {
	Pos      token.Pos
	Analyzer string
	Message  string
}

// Pass carries one analyzer's view of one type-checked package,
// mirroring analysis.Pass.
type Pass struct {
	Analyzer   *Analyzer
	Fset       *token.FileSet
	Files      []*ast.File
	Pkg        *types.Package
	TypesInfo  *types.Info
	Directives *Directives

	diags []Diagnostic
}

// Reportf records a finding unless a matching suppression directive
// covers the position (the directive's own line or the line below it).
func (p *Pass) Reportf(pos token.Pos, format string, args ...interface{}) {
	if p.Analyzer.Suppress != "" && p.Directives.SuppressedAt(p.Fset, pos, p.Analyzer.Suppress) {
		return
	}
	p.diags = append(p.diags, Diagnostic{
		Pos:      pos,
		Analyzer: p.Analyzer.Name,
		Message:  fmt.Sprintf(format, args...),
	})
}

// Run executes the given analyzers over one loaded package and returns
// the findings sorted by position.
func Run(pkg *Package, analyzers []*Analyzer) ([]Diagnostic, error) {
	var out []Diagnostic
	for _, a := range analyzers {
		pass := &Pass{
			Analyzer:   a,
			Fset:       pkg.Fset,
			Files:      pkg.Files,
			Pkg:        pkg.Types,
			TypesInfo:  pkg.Info,
			Directives: pkg.Directives,
		}
		if err := a.Run(pass); err != nil {
			return nil, fmt.Errorf("%s: %s: %w", pkg.Path, a.Name, err)
		}
		out = append(out, pass.diags...)
	}
	sort.SliceStable(out, func(i, j int) bool { return out[i].Pos < out[j].Pos })
	return out, nil
}

// inScope reports whether the package path is one of the given
// module-relative package paths.
func inScope(pkgPath string, rels []string) bool {
	for _, rel := range rels {
		if pkgPath == PkgPath(rel) {
			return true
		}
	}
	return false
}

// isPkgFunc reports whether the called expression resolves to the named
// function (or method-less object) of the named package, e.g.
// isPkgFunc(info, call.Fun, "time", "Now").
func isPkgFunc(info *types.Info, fun ast.Expr, pkgPath, name string) bool {
	sel, ok := fun.(*ast.SelectorExpr)
	if !ok {
		return false
	}
	obj := info.Uses[sel.Sel]
	if obj == nil || obj.Pkg() == nil {
		return false
	}
	return obj.Pkg().Path() == pkgPath && obj.Name() == name
}

// calleePkg returns the defining package path of a called selector
// function, or "".
func calleePkg(info *types.Info, fun ast.Expr) string {
	sel, ok := fun.(*ast.SelectorExpr)
	if !ok {
		return ""
	}
	obj := info.Uses[sel.Sel]
	if obj == nil || obj.Pkg() == nil {
		return ""
	}
	return obj.Pkg().Path()
}

// exprString renders a small expression for diagnostics (best effort —
// complex expressions degrade to a placeholder rather than a full
// printer dependency).
func exprString(e ast.Expr) string {
	switch e := e.(type) {
	case *ast.Ident:
		return e.Name
	case *ast.SelectorExpr:
		return exprString(e.X) + "." + e.Sel.Name
	case *ast.IndexExpr:
		return exprString(e.X) + "[...]"
	case *ast.StarExpr:
		return "*" + exprString(e.X)
	case *ast.ParenExpr:
		return "(" + exprString(e.X) + ")"
	case *ast.CallExpr:
		return exprString(e.Fun) + "(...)"
	}
	return "<expr>"
}

// isBuiltin reports whether the identifier resolves to a predeclared
// builtin (append, delete, clear, ...) rather than a shadowing object.
func isBuiltin(info *types.Info, id *ast.Ident) bool {
	_, ok := info.Uses[id].(*types.Builtin)
	return ok
}

// namedOf unwraps pointers and aliases down to a *types.Named, or nil.
func namedOf(t types.Type) *types.Named {
	for {
		switch tt := t.(type) {
		case *types.Pointer:
			t = tt.Elem()
		case *types.Named:
			return tt
		default:
			return nil
		}
	}
}

// enclosingFunc returns the FuncDecl whose body contains pos, or nil.
func enclosingFunc(files []*ast.File, pos token.Pos) *ast.FuncDecl {
	for _, f := range files {
		if pos < f.Pos() || pos > f.End() {
			continue
		}
		for _, d := range f.Decls {
			if fd, ok := d.(*ast.FuncDecl); ok && fd.Body != nil &&
				pos >= fd.Pos() && pos <= fd.End() {
				return fd
			}
		}
	}
	return nil
}

// containsFold reports case-insensitive substring containment.
func containsFold(s, sub string) bool {
	return strings.Contains(strings.ToLower(s), sub)
}

// Package inum implements the INUM plan cache and its linear cost model
// (Papadomanolakis, Dash, Ailamaki, VLDB'07), the baseline the paper builds
// PINUM on.
//
// A cache holds, per interesting order combination, an optimal internal
// plan: the join/sort/aggregation skeleton whose cost does not depend on
// how the leaves access their tables. Estimating a query's cost under an
// index configuration then requires no optimizer call: it is
//
//	min over cached plans p applicable under C of
//	    internal(p) + Σ_leaves coef × accessCost(leaf, C)
//
// Package core builds the same cache with just one optimizer call per
// nested-loop mode (the paper's contribution); this package provides the
// cache structure, the cost model, and the conventional one-call-per-
// combination construction used as the baseline.
package inum

import (
	"fmt"
	"math"
	"sort"
	"sync"
	"time"
	"unsafe"

	"github.com/pinumdb/pinum/internal/catalog"
	"github.com/pinumdb/pinum/internal/optimizer"
	"github.com/pinumdb/pinum/internal/query"
	"github.com/pinumdb/pinum/internal/whatif"
)

// CachedPlan is one entry of the plan cache: an internal plan plus its leaf
// access requirements. The requirements live in the owning cache's packed
// leaf arenas (two bytes of interned identity plus the float64 coefficient
// per relation — see optimizer.PackLeaf) rather than as a []LeafReq per
// entry; the entry itself holds only the arena ordinal. Leaf reconstructs
// a LeafReq on demand without allocating.
type CachedPlan struct {
	// Internal is the access-method-independent cost (joins, sorts,
	// aggregation).
	Internal float64
	// NLJ marks plans containing nested-loop joins; INUM tracks them
	// separately because their cost is only piecewise linear in access
	// costs.
	NLJ bool
	// Sig is the canonical structural signature (plan identity). Slim
	// entries drop it (dedup already happened at construction); it is ""
	// for them and for entries decoded from snapshots.
	Sig string
	// Path is the originating path tree, kept for EXPLAIN and execution.
	// Slim cache entries store nil: Cost and BaseLeafCosts never read it,
	// and dropping it releases the DP planner's retained trees — the
	// dominant share of cache memory on wide ExportAll queries.
	Path *optimizer.Path

	// c is the owning cache; idx is this entry's ordinal, striding into
	// the cache's packed leaf arenas (every entry stores exactly one leaf
	// per query relation).
	c   *Cache
	idx int32
}

// NumRels is the number of leaf requirements (one per query relation).
func (cp *CachedPlan) NumRels() int { return len(cp.c.A.Q.Rels) }

// Leaf reconstructs the plan's requirement on one relation from the packed
// arenas. It allocates nothing: the column string is the analysis's
// interned instance.
//
//pinum:hotpath
func (cp *CachedPlan) Leaf(rel int) optimizer.LeafReq {
	c := cp.c
	i := int(cp.idx)*len(c.A.Q.Rels) + rel
	return c.A.UnpackLeaf(rel, c.leafPk[i], c.leafCoef[i])
}

// Combo derives the interesting order combination the plan requires (one
// entry per relation, "" for Φ). It allocates; hot paths use Leaf.
func (cp *CachedPlan) Combo() query.OrderCombo {
	n := cp.NumRels()
	combo := make(query.OrderCombo, n)
	for rel := 0; rel < n; rel++ {
		if req := cp.Leaf(rel); req.Mode != optimizer.AccessAny {
			combo[rel] = req.Col
		}
	}
	return combo
}

// PackedLeaves returns views of the entry's packed requirement row: the
// interned identities and the coefficients, one per relation. Shared with
// the snapshot codec; callers must not mutate them.
func (cp *CachedPlan) PackedLeaves() ([]uint16, []float64) {
	n := len(cp.c.A.Q.Rels)
	lo := int(cp.idx) * n
	return cp.c.leafPk[lo : lo+n : lo+n], cp.c.leafCoef[lo : lo+n : lo+n]
}

// String renders the plan entry compactly.
func (cp *CachedPlan) String() string {
	return fmt.Sprintf("%s internal=%.2f nlj=%v", cp.Combo(), cp.Internal, cp.NLJ)
}

// BuildStats records what cache construction cost.
type BuildStats struct {
	// OptimizerCalls is the number of full optimizer invocations.
	OptimizerCalls int
	// CombosEnumerated is the number of interesting order combinations
	// the constructor iterated.
	CombosEnumerated int
	// PlansSeen is the number of (not necessarily distinct) plans
	// returned by the optimizer.
	PlansSeen int
	// PlansCached is the number of unique plans retained.
	PlansCached int
	// Duration is the wall-clock construction time.
	Duration time.Duration
	// Planner aggregates the per-call planner work counters across every
	// optimizer invocation of the build, making the fast path's work
	// reduction (paths pruned, clause-set lookups, DP states visited by
	// the connectivity-aware enumeration, disconnected masks skipped)
	// observable per query, not just timed.
	Planner optimizer.PlannerStats
	// Mem snapshots the cache's retained memory at the end of the build
	// (entries, retained path-tree nodes, approximate bytes), so the
	// slim-cache saving is measurable per query.
	Mem MemStats
}

// MemStats reports a cache's retained memory: how many entries it holds,
// how many path-tree nodes those entries pin (0 for slim caches), and the
// approximate heap bytes of each part.
type MemStats struct {
	// Entries is the number of cached plans.
	Entries int
	// RetainedPathNodes counts the distinct Path nodes reachable from the
	// entries (shared subtrees counted once).
	RetainedPathNodes int
	// EntryBytes approximates the slim side of the cache: CachedPlan
	// structs, leaf-requirement slices, combos and signatures.
	EntryBytes int64
	// PathBytes approximates the retained path trees (0 for slim caches).
	PathBytes int64
}

// TotalBytes is the cache's whole approximate footprint.
func (m MemStats) TotalBytes() int64 { return m.EntryBytes + m.PathBytes }

// String renders the stats compactly.
func (m MemStats) String() string {
	return fmt.Sprintf("%d entries, %d path nodes, ~%.1f KB (%.1f KB entries + %.1f KB paths)",
		m.Entries, m.RetainedPathNodes,
		float64(m.TotalBytes())/1024, float64(m.EntryBytes)/1024, float64(m.PathBytes)/1024)
}

// Cache is an INUM plan cache for one query. Cost is safe for concurrent
// use (the advisor's parallel greedy search prices many configurations at
// once); construction (AddPath) is not.
type Cache struct {
	Q     *query.Query
	A     *optimizer.Analysis
	Plans []*CachedPlan
	Stats BuildStats

	// slim caches drop every entry's path tree and signature at AddPath
	// time, retaining only the INUM decomposition Cost consumes.
	slim bool

	// Packed leaf arenas: entry idx's requirement on relation rel lives at
	// index idx×len(Q.Rels)+rel — two bytes of interned (mode, order id)
	// identity and the float64 coefficient. Storing rows here instead of a
	// []LeafReq per entry is what makes slim entries slim (~3x fewer entry
	// bytes); MemStats measures it.
	leafPk   []uint16
	leafCoef []float64

	sigs map[string]bool

	// Leaf access costs depend only on (relation, requirement, index), not
	// on the rest of the configuration, so they are memoized across Cost
	// calls: a greedy round evaluating |candidates| configurations that
	// share the chosen prefix recomputes nothing for the prefix.
	mu       sync.RWMutex
	leafMemo map[leafKey]leafVal
	seqMemo  map[int]float64
}

// leafKey identifies one memoized leaf access cost.
type leafKey struct {
	rel  int
	mode optimizer.AccessMode
	col  string
	ix   *catalog.Index
}

// leafVal is a memoized Analysis.IndexLeafCost result, applicability
// verdict included, so the applicability rules live only in the optimizer.
type leafVal struct {
	cost float64
	ok   bool
}

// NewCache returns an empty cache over the analysed query.
func NewCache(a *optimizer.Analysis) *Cache {
	return &Cache{
		Q:        a.Q,
		A:        a,
		sigs:     make(map[string]bool),
		leafMemo: make(map[leafKey]leafVal),
		seqMemo:  make(map[int]float64),
	}
}

// NewSlimCache returns an empty slim cache over the analysed query: every
// AddPath retains only the plan's INUM decomposition (combo, internal
// cost, per-relation leaf requirements) and drops the path tree and the
// signature string. Cost and BaseLeafCosts results are bit-identical to a
// tree-backed cache built from the same paths — they never read either.
func NewSlimCache(a *optimizer.Analysis) *Cache {
	c := NewCache(a)
	c.slim = true
	return c
}

// Slim reports whether the cache drops path trees at AddPath time.
func (c *Cache) Slim() bool { return c.slim }

// AddPath converts an optimizer path into a cache entry, deduplicating by
// structural signature. It reports whether the plan was new. On a sealed
// cache the dedup map is gone, so every path is admitted (as Seal
// documents); the signature is computed before the (allocating) summary
// so duplicate-heavy ExportAll streams pay only the string per duplicate.
func (c *Cache) AddPath(p *optimizer.Path) bool {
	c.Stats.PlansSeen++
	sig := p.Signature()
	if c.sigs != nil {
		if c.sigs[sig] {
			return false
		}
		c.sigs[sig] = true
	}
	s := optimizer.Summarize(p, len(c.Q.Rels))
	cp := c.appendEntry(s.Internal, s.NLJ)
	for rel, req := range s.Leaves {
		pk, err := c.A.PackLeaf(rel, req)
		if err != nil {
			// Planner-produced requirements always intern; anything else is
			// a programming error, not a recoverable input.
			panic(err)
		}
		c.leafPk = append(c.leafPk, pk)
		c.leafCoef = append(c.leafCoef, req.Coef)
	}
	if !c.slim {
		cp.Sig = sig
		cp.Path = p
	}
	c.Stats.PlansCached++
	return true
}

// appendEntry allocates the next entry and its arena row ordinal.
func (c *Cache) appendEntry(internal float64, nlj bool) *CachedPlan {
	cp := &CachedPlan{Internal: internal, NLJ: nlj, c: c, idx: int32(len(c.Plans))}
	c.Plans = append(c.Plans, cp)
	return cp
}

// AddSlim appends one slim entry from its stored packed decomposition —
// the snapshot decode path (internal/plancache), where dedup already
// happened at original construction time and no path tree exists. Each
// packed leaf is validated against the analysis's interning (the snapshot
// may be foreign bytes); the NLJ flag is re-derived from the packed modes
// exactly as Summarize derives it from a complete plan's requirements.
func (c *Cache) AddSlim(internal float64, packed []uint16, coefs []float64) (*CachedPlan, error) {
	if len(packed) != len(c.Q.Rels) || len(coefs) != len(c.Q.Rels) {
		return nil, fmt.Errorf("inum: slim entry with %d packed leaves and %d coefficients for %d relations",
			len(packed), len(coefs), len(c.Q.Rels))
	}
	nlj := false
	for rel, pk := range packed {
		if err := c.A.CheckPackedLeaf(rel, pk); err != nil {
			return nil, err
		}
		if optimizer.PackedNLJ(pk) {
			nlj = true
		}
	}
	cp := c.appendEntry(internal, nlj)
	c.leafPk = append(c.leafPk, packed...)
	c.leafCoef = append(c.leafCoef, coefs...)
	c.Stats.PlansSeen++
	c.Stats.PlansCached++
	return cp, nil
}

// Seal marks construction finished: the signature dedup map is dropped so
// its strings can be collected. Builders call it once every AddPath is
// done; a sealed cache still serves Cost, BaseLeafCosts and the leaf memo
// normally, but further AddPath calls would no longer deduplicate.
func (c *Cache) Seal() {
	c.sigs = nil
}

// MemStats walks the cache and reports its retained memory: slim entry
// structures and, for tree-backed caches, the distinct path nodes the
// entries pin (shared DP subtrees counted once).
func (c *Cache) MemStats() MemStats {
	m := MemStats{Entries: len(c.Plans)}
	m.EntryBytes += int64(cap(c.leafPk)) * 2
	m.EntryBytes += int64(cap(c.leafCoef)) * 8
	seen := make(map[*optimizer.Path]bool)
	for _, cp := range c.Plans {
		m.EntryBytes += int64(unsafe.Sizeof(*cp))
		m.EntryBytes += int64(len(cp.Sig))
		nodes, bytes := cp.Path.Footprint(seen)
		m.RetainedPathNodes += nodes
		m.PathBytes += bytes
	}
	return m
}

// Cost estimates the query's optimal cost under the configuration using
// only cached information — the operation that replaces an optimizer call.
// It returns the winning plan. An error is returned only when no cached
// plan is applicable (an empty cache). Costs are identical to evaluating
// Analysis.AccessCost directly; leaf costs are served from the memo.
//
//pinum:hotpath
func (c *Cache) Cost(cfg *query.Config) (float64, *CachedPlan, error) {
	best := math.Inf(1)
	var bestPlan *CachedPlan
	n := len(c.Q.Rels)
	for _, cp := range c.Plans {
		cost := cp.Internal
		ok := true
		for rel := 0; rel < n; rel++ {
			req := cp.Leaf(rel)
			a, applicable := c.accessCost(rel, req, cfg)
			if !applicable {
				ok = false
				break
			}
			//pinum:costarith-ok the INUM fold itself (internal + Σ coef·access); costmatrix mirrors it bit-identically, pinned by costmatrix.TestEvaluateAndApplyMatchCacheCost
			cost += req.Coef * a
		}
		if ok && cost < best {
			best = cost
			bestPlan = cp
		}
	}
	if bestPlan == nil {
		return 0, nil, fmt.Errorf("inum: no applicable cached plan for configuration %s", cfg)
	}
	return best, bestPlan, nil
}

// accessCost evaluates a leaf requirement through the optimizer's own
// minimisation loop, with the cache as the (memoized) leaf coster.
func (c *Cache) accessCost(rel int, req optimizer.LeafReq, cfg *query.Config) (float64, bool) {
	return optimizer.LeafAccessCost(c, rel, req, cfg)
}

// IndexLeafCost implements optimizer.LeafCoster: Analysis.IndexLeafCost
// memoized per (rel, mode, col, index). Inapplicable pairs are rejected up
// front through the optimizer's own LeafApplicable rule — the same one
// Analysis.IndexLeafCost applies — which keeps them out of the memo and
// off the locked path without duplicating applicability logic here.
func (c *Cache) IndexLeafCost(rel int, req optimizer.LeafReq, ix *catalog.Index) (float64, bool) {
	if !optimizer.LeafApplicable(c.A.Rels[rel].Table.Name, req, ix) {
		return 0, false
	}
	k := leafKey{rel: rel, mode: req.Mode, col: req.Col, ix: ix}
	c.mu.RLock()
	v, hit := c.leafMemo[k]
	c.mu.RUnlock()
	if hit {
		return v.cost, v.ok
	}
	cost, ok := c.A.IndexLeafCost(rel, req, ix)
	c.mu.Lock()
	c.leafMemo[k] = leafVal{cost: cost, ok: ok}
	c.mu.Unlock()
	return cost, ok
}

// SeqScanCost implements optimizer.LeafCoster: Analysis.SeqScanCost
// memoized per relation.
func (c *Cache) SeqScanCost(rel int) float64 {
	c.mu.RLock()
	cost, hit := c.seqMemo[rel]
	c.mu.RUnlock()
	if hit {
		return cost
	}
	cost = c.A.SeqScanCost(rel)
	c.mu.Lock()
	c.seqMemo[rel] = cost
	c.mu.Unlock()
	return cost
}

// BaseLeafCosts snapshots one cached plan's per-relation access costs under
// the empty configuration: the (memoized) sequential-scan cost for
// AccessAny leaves and +Inf for ordered/lookup leaves no index satisfies
// yet. Incremental evaluators (internal/costmatrix) seed their per-plan
// state from this snapshot and lower entries with IndexLeafCost as indexes
// are chosen; because snapshot and refinement go through the same memoized
// LeafCoster minimisation Cost itself uses, the resulting plan totals are
// bit-identical to pricing the equivalent configuration from scratch.
func (c *Cache) BaseLeafCosts(cp *CachedPlan) []float64 {
	n := cp.NumRels()
	out := make([]float64, n)
	for rel := 0; rel < n; rel++ {
		cost, ok := optimizer.BaseLeafCost(c, rel, cp.Leaf(rel))
		if !ok {
			cost = math.Inf(1)
		}
		out[rel] = cost
	}
	return out
}

// UniqueCombos returns the number of distinct order combinations among the
// cached plans (the paper's "useful plans" count).
func (c *Cache) UniqueCombos() int {
	seen := make(map[string]bool)
	for _, cp := range c.Plans {
		seen[cp.Combo().Key()] = true
	}
	return len(seen)
}

// CoveringConfig builds the what-if configuration INUM optimizes under for
// one combination: per non-Φ slot, a covering index leading on the order
// column and including every other column the query needs from that
// relation, so that the optimizer actually exploits the order. The
// configuration is atomic for queries without self-joins; when the same
// table appears in two slots with *different* orders, one index per
// distinct (table, order) pair is emitted, since each relation occurrence
// picks its own access path.
func CoveringConfig(a *optimizer.Analysis, ws *whatif.Session, oc query.OrderCombo) (*query.Config, error) {
	cfg := &query.Config{}
	done := make(map[string]bool)
	for i, col := range oc {
		if col == "" {
			continue
		}
		table := a.Rels[i].Table.Name
		key := table + ":" + col
		if done[key] {
			continue
		}
		done[key] = true
		// Every slot sharing this (table, order) pair is served by the
		// same index, so cover the union of their needed columns.
		var rels []int
		for j, cj := range oc {
			if cj == col && a.Rels[j].Table.Name == table {
				rels = append(rels, j)
			}
		}
		ix, err := ws.CreateIndex(table, coveringColumns(a, rels, col)...)
		if err != nil {
			return nil, err
		}
		cfg.Indexes = append(cfg.Indexes, ix)
	}
	return cfg, nil
}

// AllOrdersConfig builds the configuration PINUM optimizes under: for every
// relation and every one of its interesting orders, a covering index
// leading on that order.
func AllOrdersConfig(a *optimizer.Analysis, ws *whatif.Session) (*query.Config, error) {
	cfg := &query.Config{}
	seen := make(map[string]bool)
	for i := range a.Rels {
		for _, col := range a.Rels[i].Interesting {
			table := a.Rels[i].Table.Name
			key := table + ":" + col
			if seen[key] {
				continue
			}
			seen[key] = true
			// Cover the union of needed columns over every occurrence of
			// this table for which col is an interesting order, so
			// self-join occurrences share one truly covering index.
			var rels []int
			for j := range a.Rels {
				if a.Rels[j].Table.Name != table {
					continue
				}
				for _, cj := range a.Rels[j].Interesting {
					if cj == col {
						rels = append(rels, j)
						break
					}
				}
			}
			ix, err := ws.CreateIndex(table, coveringColumns(a, rels, col)...)
			if err != nil {
				return nil, err
			}
			cfg.Indexes = append(cfg.Indexes, ix)
		}
	}
	return cfg, nil
}

// coveringColumns returns lead followed by every other column the query
// needs from the given relation occurrences (sorted). Passing several
// occurrences of the same table unions their needs, so the one index built
// per (table, order) pair covers each of them.
func coveringColumns(a *optimizer.Analysis, rels []int, lead string) []string {
	need := make(map[string]bool)
	for _, r := range rels {
		//pinum:nondeterministic-ok set union into need; the result is sorted below before use
		for col := range a.Rels[r].Needed {
			need[col] = true
		}
	}
	delete(need, lead)
	rest := make([]string, 0, len(need))
	for col := range need {
		rest = append(rest, col)
	}
	sort.Strings(rest)
	return append([]string{lead}, rest...)
}

// Build constructs the cache the conventional INUM way: enumerate every
// interesting order combination and invoke the optimizer once per
// combination and nested-loop mode (2 × |combos| calls), caching each
// returned optimal plan.
func Build(a *optimizer.Analysis, ws *whatif.Session) (*Cache, error) {
	//pinum:nondeterministic-ok wall-clock feeds only Stats.Duration, never a plan or cost
	start := time.Now()
	c := NewCache(a)
	combos := a.Q.EnumerateCombos()
	c.Stats.CombosEnumerated = len(combos)
	for _, oc := range combos {
		cfg, err := CoveringConfig(a, ws, oc)
		if err != nil {
			return nil, err
		}
		for _, nlj := range []bool{false, true} {
			res, err := optimizer.Optimize(a, cfg, optimizer.Options{EnableNestLoop: nlj})
			if err != nil {
				return nil, err
			}
			c.Stats.OptimizerCalls++
			c.Stats.Planner.Add(res.Stats)
			c.AddPath(res.Best)
		}
	}
	//pinum:nondeterministic-ok wall-clock feeds only Stats.Duration, never a plan or cost
	c.Stats.Duration = time.Since(start)
	c.Stats.Mem = c.MemStats()
	return c, nil
}

// AccessCostTable holds harvested per-index access costs, keyed by index
// name, as the physical designer consumes them.
type AccessCostTable struct {
	ByIndex map[string][]optimizer.IndexAccess
	// Calls is the number of optimizer invocations that completed
	// successfully while building the table.
	Calls int
	// Errors counts optimizer invocations that failed; the corresponding
	// candidates have no ByIndex entry. Callers deciding whether the table
	// is complete should check this instead of assuming silence means
	// success.
	Errors   int
	Duration time.Duration
}

// CollectAccessCostsNaive measures index access costs the way INUM must
// without optimizer hooks: one optimizer call per candidate index,
// extracting that index's access cost from the returned information
// (§V-C's "relatively inefficient" baseline). Optimizer failures are
// recorded in the table's Errors counter rather than dropped.
func CollectAccessCostsNaive(a *optimizer.Analysis, candidates []*catalog.Index) *AccessCostTable {
	//pinum:nondeterministic-ok wall-clock feeds only the table's Duration stat, never a cost
	start := time.Now()
	t := &AccessCostTable{ByIndex: make(map[string][]optimizer.IndexAccess)}
	for _, ix := range candidates {
		cfg := whatif.Config(ix)
		res, err := optimizer.Optimize(a, cfg, optimizer.Options{CollectAccessCosts: true})
		if err != nil {
			t.Errors++
			continue
		}
		t.Calls++
		for _, ia := range res.AccessCosts {
			if ia.Index.Name == ix.Name {
				t.ByIndex[ix.Name] = append(t.ByIndex[ix.Name], ia)
			}
		}
	}
	//pinum:nondeterministic-ok wall-clock feeds only the table's Duration stat, never a cost
	t.Duration = time.Since(start)
	return t
}

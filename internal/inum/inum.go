// Package inum implements the INUM plan cache and its linear cost model
// (Papadomanolakis, Dash, Ailamaki, VLDB'07), the baseline the paper builds
// PINUM on.
//
// A cache holds, per interesting order combination, an optimal internal
// plan: the join/sort/aggregation skeleton whose cost does not depend on
// how the leaves access their tables. Estimating a query's cost under an
// index configuration then requires no optimizer call: it is
//
//	min over cached plans p applicable under C of
//	    internal(p) + Σ_leaves coef × accessCost(leaf, C)
//
// Package core builds the same cache with just one optimizer call per
// nested-loop mode (the paper's contribution); this package provides the
// cache structure, the cost model, and the conventional one-call-per-
// combination construction used as the baseline.
package inum

import (
	"fmt"
	"math"
	"sort"
	"time"

	"github.com/pinumdb/pinum/internal/catalog"
	"github.com/pinumdb/pinum/internal/optimizer"
	"github.com/pinumdb/pinum/internal/query"
	"github.com/pinumdb/pinum/internal/whatif"
)

// CachedPlan is one entry of the plan cache: an internal plan plus its leaf
// access requirements.
type CachedPlan struct {
	// Combo is the interesting order combination the plan requires.
	Combo query.OrderCombo
	// Internal is the access-method-independent cost (joins, sorts,
	// aggregation).
	Internal float64
	// Leaves holds one access requirement per query relation.
	Leaves []optimizer.LeafReq
	// NLJ marks plans containing nested-loop joins; INUM tracks them
	// separately because their cost is only piecewise linear in access
	// costs.
	NLJ bool
	// Sig is the canonical structural signature (plan identity).
	Sig string
	// Path is the originating path tree, kept for EXPLAIN and execution.
	Path *optimizer.Path
}

// String renders the plan entry compactly.
func (cp *CachedPlan) String() string {
	return fmt.Sprintf("%s internal=%.2f nlj=%v", cp.Combo, cp.Internal, cp.NLJ)
}

// BuildStats records what cache construction cost.
type BuildStats struct {
	// OptimizerCalls is the number of full optimizer invocations.
	OptimizerCalls int
	// CombosEnumerated is the number of interesting order combinations
	// the constructor iterated.
	CombosEnumerated int
	// PlansSeen is the number of (not necessarily distinct) plans
	// returned by the optimizer.
	PlansSeen int
	// PlansCached is the number of unique plans retained.
	PlansCached int
	// Duration is the wall-clock construction time.
	Duration time.Duration
}

// Cache is an INUM plan cache for one query.
type Cache struct {
	Q     *query.Query
	A     *optimizer.Analysis
	Plans []*CachedPlan
	Stats BuildStats

	sigs map[string]bool
}

// NewCache returns an empty cache over the analysed query.
func NewCache(a *optimizer.Analysis) *Cache {
	return &Cache{Q: a.Q, A: a, sigs: make(map[string]bool)}
}

// AddPath converts an optimizer path into a cache entry, deduplicating by
// structural signature. It reports whether the plan was new.
func (c *Cache) AddPath(p *optimizer.Path) bool {
	c.Stats.PlansSeen++
	sig := p.Signature()
	if c.sigs[sig] {
		return false
	}
	c.sigs[sig] = true
	n := len(c.Q.Rels)
	leaves := make([]optimizer.LeafReq, n)
	for i := 0; i < n; i++ {
		leaves[i] = optimizer.LeafReq{Mode: optimizer.AccessAny, Coef: 1}
	}
	nlj := false
	for rel, req := range p.Leaves {
		leaves[rel] = req
		if req.Mode == optimizer.AccessLookup {
			nlj = true
		}
	}
	c.Plans = append(c.Plans, &CachedPlan{
		Combo:    p.LeafCombo(n),
		Internal: p.Internal,
		Leaves:   leaves,
		NLJ:      nlj,
		Sig:      sig,
		Path:     p,
	})
	c.Stats.PlansCached++
	return true
}

// Cost estimates the query's optimal cost under the configuration using
// only cached information — the operation that replaces an optimizer call.
// It returns the winning plan. An error is returned only when no cached
// plan is applicable (an empty cache).
func (c *Cache) Cost(cfg *query.Config) (float64, *CachedPlan, error) {
	best := math.Inf(1)
	var bestPlan *CachedPlan
	for _, cp := range c.Plans {
		cost := cp.Internal
		ok := true
		for rel, req := range cp.Leaves {
			a, applicable := c.A.AccessCost(rel, req, cfg)
			if !applicable {
				ok = false
				break
			}
			cost += req.Coef * a
		}
		if ok && cost < best {
			best = cost
			bestPlan = cp
		}
	}
	if bestPlan == nil {
		return 0, nil, fmt.Errorf("inum: no applicable cached plan for configuration %s", cfg)
	}
	return best, bestPlan, nil
}

// UniqueCombos returns the number of distinct order combinations among the
// cached plans (the paper's "useful plans" count).
func (c *Cache) UniqueCombos() int {
	seen := make(map[string]bool)
	for _, cp := range c.Plans {
		seen[cp.Combo.Key()] = true
	}
	return len(seen)
}

// CoveringConfig builds the atomic what-if configuration INUM optimizes
// under for one combination: per non-Φ slot, a covering index leading on
// the order column and including every other column the query needs from
// that relation, so that the optimizer actually exploits the order.
func CoveringConfig(a *optimizer.Analysis, ws *whatif.Session, oc query.OrderCombo) (*query.Config, error) {
	cfg := &query.Config{}
	done := make(map[string]bool)
	for i, col := range oc {
		if col == "" {
			continue
		}
		table := a.Rels[i].Table.Name
		if done[table] {
			continue
		}
		done[table] = true
		cols := coveringColumns(a, i, col)
		ix, err := ws.CreateIndex(table, cols...)
		if err != nil {
			return nil, err
		}
		cfg.Indexes = append(cfg.Indexes, ix)
	}
	return cfg, nil
}

// AllOrdersConfig builds the configuration PINUM optimizes under: for every
// relation and every one of its interesting orders, a covering index
// leading on that order.
func AllOrdersConfig(a *optimizer.Analysis, ws *whatif.Session) (*query.Config, error) {
	cfg := &query.Config{}
	seen := make(map[string]bool)
	for i := range a.Rels {
		for _, col := range a.Rels[i].Interesting {
			key := a.Rels[i].Table.Name + ":" + col
			if seen[key] {
				continue
			}
			seen[key] = true
			ix, err := ws.CreateIndex(a.Rels[i].Table.Name, coveringColumns(a, i, col)...)
			if err != nil {
				return nil, err
			}
			cfg.Indexes = append(cfg.Indexes, ix)
		}
	}
	return cfg, nil
}

func coveringColumns(a *optimizer.Analysis, rel int, lead string) []string {
	ri := &a.Rels[rel]
	rest := make([]string, 0, len(ri.Needed))
	for col := range ri.Needed {
		if col != lead {
			rest = append(rest, col)
		}
	}
	sort.Strings(rest)
	return append([]string{lead}, rest...)
}

// Build constructs the cache the conventional INUM way: enumerate every
// interesting order combination and invoke the optimizer once per
// combination and nested-loop mode (2 × |combos| calls), caching each
// returned optimal plan.
func Build(a *optimizer.Analysis, ws *whatif.Session) (*Cache, error) {
	start := time.Now()
	c := NewCache(a)
	combos := a.Q.EnumerateCombos()
	c.Stats.CombosEnumerated = len(combos)
	for _, oc := range combos {
		cfg, err := CoveringConfig(a, ws, oc)
		if err != nil {
			return nil, err
		}
		for _, nlj := range []bool{false, true} {
			res, err := optimizer.Optimize(a, cfg, optimizer.Options{EnableNestLoop: nlj})
			if err != nil {
				return nil, err
			}
			c.Stats.OptimizerCalls++
			c.AddPath(res.Best)
		}
	}
	c.Stats.Duration = time.Since(start)
	return c, nil
}

// AccessCostTable holds harvested per-index access costs, keyed by index
// name, as the physical designer consumes them.
type AccessCostTable struct {
	ByIndex map[string][]optimizer.IndexAccess
	// Calls is the number of optimizer invocations spent building the
	// table.
	Calls    int
	Duration time.Duration
}

// CollectAccessCostsNaive measures index access costs the way INUM must
// without optimizer hooks: one optimizer call per candidate index,
// extracting that index's access cost from the returned information
// (§V-C's "relatively inefficient" baseline).
func CollectAccessCostsNaive(a *optimizer.Analysis, candidates []*catalog.Index) *AccessCostTable {
	start := time.Now()
	t := &AccessCostTable{ByIndex: make(map[string][]optimizer.IndexAccess)}
	for _, ix := range candidates {
		cfg := whatif.Config(ix)
		res, err := optimizer.Optimize(a, cfg, optimizer.Options{CollectAccessCosts: true})
		if err != nil {
			continue
		}
		t.Calls++
		for _, ia := range res.AccessCosts {
			if ia.Index.Name == ix.Name {
				t.ByIndex[ix.Name] = append(t.ByIndex[ix.Name], ia)
			}
		}
	}
	t.Duration = time.Since(start)
	return t
}

package inum

import (
	"math/rand"
	"testing"

	"github.com/pinumdb/pinum/internal/optimizer"
	"github.com/pinumdb/pinum/internal/query"
	"github.com/pinumdb/pinum/internal/whatif"
	"github.com/pinumdb/pinum/internal/workload"
)

func setup(t testing.TB, qi int) (*workload.Star, *optimizer.Analysis) {
	t.Helper()
	s, err := workload.StarSchema(1.0)
	if err != nil {
		t.Fatal(err)
	}
	qs, err := s.Queries(42)
	if err != nil {
		t.Fatal(err)
	}
	a, err := optimizer.NewAnalysis(qs[qi], s.Stats, optimizer.DefaultCostParams())
	if err != nil {
		t.Fatal(err)
	}
	return s, a
}

func TestBuildMakesTwoCallsPerCombo(t *testing.T) {
	s, a := setup(t, 2)
	c, err := Build(a, whatif.NewSession(s.Catalog))
	if err != nil {
		t.Fatal(err)
	}
	if c.Stats.OptimizerCalls != 2*a.Q.ComboCount() {
		t.Errorf("calls = %d, want %d", c.Stats.OptimizerCalls, 2*a.Q.ComboCount())
	}
	if c.Stats.PlansCached == 0 || c.Stats.PlansCached > c.Stats.PlansSeen {
		t.Errorf("cached %d of %d seen", c.Stats.PlansCached, c.Stats.PlansSeen)
	}
	if c.Stats.Duration <= 0 {
		t.Error("no duration recorded")
	}
}

func TestCostOnEmptyCacheFails(t *testing.T) {
	_, a := setup(t, 0)
	c := NewCache(a)
	if _, _, err := c.Cost(&query.Config{}); err == nil {
		t.Error("empty cache produced a cost")
	}
}

func TestCostNeverBelowOptimizer(t *testing.T) {
	s, a := setup(t, 3)
	c, err := Build(a, whatif.NewSession(s.Catalog))
	if err != nil {
		t.Fatal(err)
	}
	ws := whatif.NewSession(s.Catalog)
	rng := rand.New(rand.NewSource(21))
	for i := 0; i < 30; i++ {
		cfg, err := workload.RandomAtomicConfig(rng, a, ws, 0.6)
		if err != nil {
			t.Fatal(err)
		}
		got, plan, err := c.Cost(cfg)
		if err != nil {
			t.Fatal(err)
		}
		if plan == nil {
			t.Fatal("no winning plan")
		}
		res, err := optimizer.Optimize(a, cfg, optimizer.Options{EnableNestLoop: true})
		if err != nil {
			t.Fatal(err)
		}
		// Every cached plan is a real plan, so the model can never claim
		// a cost below the true optimum.
		if got < res.Best.Cost*(1-1e-9) {
			t.Fatalf("cfg %s: model %f below optimizer %f", cfg, got, res.Best.Cost)
		}
	}
}

func TestAddPathDeduplicates(t *testing.T) {
	s, a := setup(t, 0)
	res, err := optimizer.Optimize(a, nil, optimizer.Options{})
	if err != nil {
		t.Fatal(err)
	}
	c := NewCache(a)
	if !c.AddPath(res.Best) {
		t.Error("first AddPath rejected")
	}
	if c.AddPath(res.Best) {
		t.Error("duplicate AddPath accepted")
	}
	if c.Stats.PlansSeen != 2 || c.Stats.PlansCached != 1 {
		t.Errorf("stats %+v", c.Stats)
	}
	if c.UniqueCombos() != 1 {
		t.Errorf("UniqueCombos = %d", c.UniqueCombos())
	}
	_ = s
}

func TestAllOrdersConfigCoversEverything(t *testing.T) {
	s, a := setup(t, 4)
	ws := whatif.NewSession(s.Catalog)
	cfg, err := AllOrdersConfig(a, ws)
	if err != nil {
		t.Fatal(err)
	}
	for i := range a.Rels {
		for _, col := range a.Rels[i].Interesting {
			found := false
			for _, ix := range cfg.Indexes {
				if ix.Table == a.Rels[i].Table.Name && ix.Covers(col) {
					found = true
					break
				}
			}
			if !found {
				t.Errorf("order %s.%s not covered", a.Rels[i].Table.Name, col)
			}
		}
	}
}

func TestCoveringConfigIsAtomicAndCovers(t *testing.T) {
	s, a := setup(t, 4)
	ws := whatif.NewSession(s.Catalog)
	combos := a.Q.EnumerateCombos()
	oc := combos[len(combos)-1] // the most specific combination
	cfg, err := CoveringConfig(a, ws, oc)
	if err != nil {
		t.Fatal(err)
	}
	if !cfg.Atomic(a.Q) {
		t.Error("covering config not atomic")
	}
	if !cfg.Covers(a.Q, oc) {
		t.Errorf("covering config does not cover %v", oc)
	}
}

func TestCollectAccessCostsNaiveCallsPerIndex(t *testing.T) {
	s, a := setup(t, 2)
	ws := whatif.NewSession(s.Catalog)
	if _, _, err := workload.CandidateIndexes(a, ws); err != nil {
		t.Fatal(err)
	}
	cands := ws.Indexes()
	tab := CollectAccessCostsNaive(a, cands)
	if tab.Calls != len(cands) {
		t.Errorf("naive collection made %d calls for %d candidates", tab.Calls, len(cands))
	}
	if len(tab.ByIndex) == 0 {
		t.Error("no access costs collected")
	}
	for name, list := range tab.ByIndex {
		for _, ia := range list {
			if ia.ScanCost <= 0 {
				t.Errorf("index %s: non-positive scan cost", name)
			}
		}
	}
}

package inum

import (
	"fmt"
	"math"
	"math/rand"
	"sync"
	"testing"
	"unsafe"

	"github.com/pinumdb/pinum/internal/catalog"
	"github.com/pinumdb/pinum/internal/optimizer"
	"github.com/pinumdb/pinum/internal/query"
	"github.com/pinumdb/pinum/internal/whatif"
	"github.com/pinumdb/pinum/internal/workload"
)

func setup(t testing.TB, qi int) (*workload.Star, *optimizer.Analysis) {
	t.Helper()
	s, err := workload.StarSchema(1.0)
	if err != nil {
		t.Fatal(err)
	}
	qs, err := s.Queries(42)
	if err != nil {
		t.Fatal(err)
	}
	a, err := optimizer.NewAnalysis(qs[qi], s.Stats, optimizer.DefaultCostParams())
	if err != nil {
		t.Fatal(err)
	}
	return s, a
}

func TestBuildMakesTwoCallsPerCombo(t *testing.T) {
	s, a := setup(t, 2)
	c, err := Build(a, whatif.NewSession(s.Catalog))
	if err != nil {
		t.Fatal(err)
	}
	if c.Stats.OptimizerCalls != 2*a.Q.ComboCount() {
		t.Errorf("calls = %d, want %d", c.Stats.OptimizerCalls, 2*a.Q.ComboCount())
	}
	if c.Stats.PlansCached == 0 || c.Stats.PlansCached > c.Stats.PlansSeen {
		t.Errorf("cached %d of %d seen", c.Stats.PlansCached, c.Stats.PlansSeen)
	}
	if c.Stats.Duration <= 0 {
		t.Error("no duration recorded")
	}
}

func TestCostOnEmptyCacheFails(t *testing.T) {
	_, a := setup(t, 0)
	c := NewCache(a)
	if _, _, err := c.Cost(&query.Config{}); err == nil {
		t.Error("empty cache produced a cost")
	}
}

func TestCostNeverBelowOptimizer(t *testing.T) {
	s, a := setup(t, 3)
	c, err := Build(a, whatif.NewSession(s.Catalog))
	if err != nil {
		t.Fatal(err)
	}
	ws := whatif.NewSession(s.Catalog)
	rng := rand.New(rand.NewSource(21))
	for i := 0; i < 30; i++ {
		cfg, err := workload.RandomAtomicConfig(rng, a, ws, 0.6)
		if err != nil {
			t.Fatal(err)
		}
		got, plan, err := c.Cost(cfg)
		if err != nil {
			t.Fatal(err)
		}
		if plan == nil {
			t.Fatal("no winning plan")
		}
		res, err := optimizer.Optimize(a, cfg, optimizer.Options{EnableNestLoop: true})
		if err != nil {
			t.Fatal(err)
		}
		// Every cached plan is a real plan, so the model can never claim
		// a cost below the true optimum.
		if got < res.Best.Cost*(1-1e-9) {
			t.Fatalf("cfg %s: model %f below optimizer %f", cfg, got, res.Best.Cost)
		}
	}
}

func TestAddPathDeduplicates(t *testing.T) {
	s, a := setup(t, 0)
	res, err := optimizer.Optimize(a, nil, optimizer.Options{})
	if err != nil {
		t.Fatal(err)
	}
	c := NewCache(a)
	if !c.AddPath(res.Best) {
		t.Error("first AddPath rejected")
	}
	if c.AddPath(res.Best) {
		t.Error("duplicate AddPath accepted")
	}
	if c.Stats.PlansSeen != 2 || c.Stats.PlansCached != 1 {
		t.Errorf("stats %+v", c.Stats)
	}
	if c.UniqueCombos() != 1 {
		t.Errorf("UniqueCombos = %d", c.UniqueCombos())
	}
	_ = s
}

func TestAllOrdersConfigCoversEverything(t *testing.T) {
	s, a := setup(t, 4)
	ws := whatif.NewSession(s.Catalog)
	cfg, err := AllOrdersConfig(a, ws)
	if err != nil {
		t.Fatal(err)
	}
	for i := range a.Rels {
		for _, col := range a.Rels[i].Interesting {
			found := false
			for _, ix := range cfg.Indexes {
				if ix.Table == a.Rels[i].Table.Name && ix.Covers(col) {
					found = true
					break
				}
			}
			if !found {
				t.Errorf("order %s.%s not covered", a.Rels[i].Table.Name, col)
			}
		}
	}
}

func TestCoveringConfigIsAtomicAndCovers(t *testing.T) {
	s, a := setup(t, 4)
	ws := whatif.NewSession(s.Catalog)
	combos := a.Q.EnumerateCombos()
	oc := combos[len(combos)-1] // the most specific combination
	cfg, err := CoveringConfig(a, ws, oc)
	if err != nil {
		t.Fatal(err)
	}
	if !cfg.Atomic(a.Q) {
		t.Error("covering config not atomic")
	}
	if !cfg.Covers(a.Q, oc) {
		t.Errorf("covering config does not cover %v", oc)
	}
}

// selfJoin builds a query joining dim1_1 to itself on different columns, so
// the same table appears in two relations with different interesting orders
// (a1 for the first occurrence, id for the second).
func selfJoin(t testing.TB) (*workload.Star, *optimizer.Analysis) {
	t.Helper()
	s, err := workload.StarSchema(1.0)
	if err != nil {
		t.Fatal(err)
	}
	d := s.Catalog.Table("dim1_1")
	if d == nil {
		t.Fatal("no dim1_1 table")
	}
	q := &query.Query{
		Name: "selfjoin",
		Rels: []query.Rel{{Table: d, Alias: "e"}, {Table: d, Alias: "m"}},
		Joins: []query.Join{{
			Left:  query.ColRef{Rel: 0, Column: "a1"},
			Right: query.ColRef{Rel: 1, Column: "id"},
		}},
		Select: []query.ColRef{{Rel: 0, Column: "id"}, {Rel: 1, Column: "a2"}},
	}
	a, err := optimizer.NewAnalysis(q, s.Stats, optimizer.DefaultCostParams())
	if err != nil {
		t.Fatal(err)
	}
	return s, a
}

func TestCoveringConfigSelfJoinCoversBothOrders(t *testing.T) {
	s, a := selfJoin(t)
	ws := whatif.NewSession(s.Catalog)
	oc := query.OrderCombo{"a1", "id"}
	cfg, err := CoveringConfig(a, ws, oc)
	if err != nil {
		t.Fatal(err)
	}
	if len(cfg.Indexes) != 2 {
		t.Fatalf("got %d indexes for two distinct orders on one table, want 2: %s",
			len(cfg.Indexes), cfg)
	}
	for i, col := range oc {
		covered := false
		for _, ix := range cfg.Indexes {
			if ix.Table == a.Rels[i].Table.Name && ix.Covers(col) {
				covered = true
				break
			}
		}
		if !covered {
			t.Errorf("slot %d: order %s.%s not covered by %s", i, a.Rels[i].Table.Name, col, cfg)
		}
	}
	if !cfg.Covers(a.Q, oc) {
		t.Errorf("Config.Covers rejects the self-join covering config %s for %v", cfg, oc)
	}
	// Same order in both slots still deduplicates to one index, which
	// must cover the union of both occurrences' needed columns (a1 from
	// the first, a2 from the second).
	same, err := CoveringConfig(a, whatif.NewSession(s.Catalog), query.OrderCombo{"id", "id"})
	if err != nil {
		t.Fatal(err)
	}
	if len(same.Indexes) != 1 {
		t.Fatalf("identical orders produced %d indexes, want 1", len(same.Indexes))
	}
	for _, col := range []string{"id", "a1", "a2"} {
		if !same.Indexes[0].HasColumn(col) {
			t.Errorf("shared covering index %s misses %s, needed by one occurrence",
				same.Indexes[0].Key(), col)
		}
	}
}

func TestAllOrdersConfigSelfJoinCoversEverything(t *testing.T) {
	s, a := selfJoin(t)
	cfg, err := AllOrdersConfig(a, whatif.NewSession(s.Catalog))
	if err != nil {
		t.Fatal(err)
	}
	for i := range a.Rels {
		for _, col := range a.Rels[i].Interesting {
			found := false
			for _, ix := range cfg.Indexes {
				if ix.Table == a.Rels[i].Table.Name && ix.Covers(col) {
					found = true
					break
				}
			}
			if !found {
				t.Errorf("order %s.%s (rel %d) not covered", a.Rels[i].Table.Name, col, i)
			}
		}
	}
}

func TestSelfJoinBuildAndCost(t *testing.T) {
	s, a := selfJoin(t)
	c, err := Build(a, whatif.NewSession(s.Catalog))
	if err != nil {
		t.Fatal(err)
	}
	if c.Stats.PlansCached == 0 {
		t.Fatal("no plans cached for the self-join")
	}
	// Pricing a two-indexes-on-one-table configuration must succeed and
	// never undercut the optimizer.
	ws := whatif.NewSession(s.Catalog)
	ixA, err := ws.CreateIndex("dim1_1", "a1", "id")
	if err != nil {
		t.Fatal(err)
	}
	ixB, err := ws.CreateIndex("dim1_1", "id", "a2")
	if err != nil {
		t.Fatal(err)
	}
	cfg := &query.Config{Indexes: []*catalog.Index{ixA, ixB}}
	got, _, err := c.Cost(cfg)
	if err != nil {
		t.Fatal(err)
	}
	res, err := optimizer.Optimize(a, cfg, optimizer.Options{EnableNestLoop: true})
	if err != nil {
		t.Fatal(err)
	}
	if got < res.Best.Cost*(1-1e-9) {
		t.Errorf("model %f below optimizer %f", got, res.Best.Cost)
	}
}

// TestCostConcurrentMatchesSerial exercises the memoized Cost path from
// many goroutines and checks bit-identical results against a serial pass
// over the same configurations (run under -race this also proves the memo
// is race-clean).
func TestCostConcurrentMatchesSerial(t *testing.T) {
	s, a := setup(t, 3)
	c, err := Build(a, whatif.NewSession(s.Catalog))
	if err != nil {
		t.Fatal(err)
	}
	ws := whatif.NewSession(s.Catalog)
	rng := rand.New(rand.NewSource(11))
	cfgs := make([]*query.Config, 32)
	want := make([]float64, len(cfgs))
	for i := range cfgs {
		cfg, err := workload.RandomAtomicConfig(rng, a, ws, 0.6)
		if err != nil {
			t.Fatal(err)
		}
		cfgs[i] = cfg
		want[i], _, err = c.Cost(cfg)
		if err != nil {
			t.Fatal(err)
		}
	}
	var wg sync.WaitGroup
	errc := make(chan error, 8)
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i, cfg := range cfgs {
				got, _, err := c.Cost(cfg)
				if err != nil {
					errc <- err
					return
				}
				if math.Float64bits(got) != math.Float64bits(want[i]) {
					errc <- fmt.Errorf("config %d: concurrent cost %v != serial %v", i, got, want[i])
					return
				}
			}
		}()
	}
	wg.Wait()
	close(errc)
	for err := range errc {
		t.Error(err)
	}
}

func TestCollectAccessCostsNaiveCallsPerIndex(t *testing.T) {
	s, a := setup(t, 2)
	ws := whatif.NewSession(s.Catalog)
	if _, _, err := workload.CandidateIndexes(a, ws); err != nil {
		t.Fatal(err)
	}
	cands := ws.Indexes()
	tab := CollectAccessCostsNaive(a, cands)
	if tab.Calls != len(cands) {
		t.Errorf("naive collection made %d calls for %d candidates", tab.Calls, len(cands))
	}
	if len(tab.ByIndex) == 0 {
		t.Error("no access costs collected")
	}
	for name, list := range tab.ByIndex {
		for _, ia := range list {
			if ia.ScanCost <= 0 {
				t.Errorf("index %s: non-positive scan cost", name)
			}
		}
	}
}

// TestBaseLeafCostsMatchEmptyConfig checks the incremental-engine snapshot
// seam: per plan, BaseLeafCosts must report exactly what LeafAccessCost
// yields under the empty configuration — the memoized sequential-scan cost
// for AccessAny leaves, +Inf for leaves no index satisfies yet.
func TestBaseLeafCostsMatchEmptyConfig(t *testing.T) {
	s, a := setup(t, 4)
	c, err := Build(a, whatif.NewSession(s.Catalog))
	if err != nil {
		t.Fatal(err)
	}
	empty := &query.Config{}
	sawInf := false
	for _, cp := range c.Plans {
		base := c.BaseLeafCosts(cp)
		if len(base) != cp.NumRels() {
			t.Fatalf("plan %s: %d base costs for %d leaves", cp.Sig, len(base), cp.NumRels())
		}
		for rel := 0; rel < cp.NumRels(); rel++ {
			req := cp.Leaf(rel)
			want, ok := optimizer.LeafAccessCost(c, rel, req, empty)
			if !ok {
				if !math.IsInf(base[rel], 1) {
					t.Errorf("plan %s rel %d: unsatisfiable leaf snapshotted as %v", cp.Sig, rel, base[rel])
				}
				sawInf = true
				continue
			}
			if math.Float64bits(base[rel]) != math.Float64bits(want) {
				t.Errorf("plan %s rel %d: snapshot %v != LeafAccessCost %v", cp.Sig, rel, base[rel], want)
			}
		}
	}
	if !sawInf {
		t.Error("no ordered/lookup leaf exercised the +Inf snapshot path")
	}
}

// TestPackedEntryBytesHalved pins the packed slim-entry acceptance
// criterion: storing leaf requirements in the planner's interned byte form
// (two identity bytes + float64 coefficient per relation, in cache-level
// arenas) must cut a slim cache's MemStats.EntryBytes at least 2x against
// the representation it replaced — a []LeafReq (mode word, string header,
// coefficient) plus a stored OrderCombo per entry.
func TestPackedEntryBytesHalved(t *testing.T) {
	for _, qi := range []int{0, 4, 9} { // 2-, 4- and 7-relation queries
		s, a := setup(t, qi)
		ws := whatif.NewSession(s.Catalog)
		c := NewSlimCache(a)
		for _, oc := range a.Q.EnumerateCombos() {
			cfg, err := CoveringConfig(a, ws, oc)
			if err != nil {
				t.Fatal(err)
			}
			for _, nlj := range []bool{false, true} {
				res, err := optimizer.Optimize(a, cfg, optimizer.Options{EnableNestLoop: nlj})
				if err != nil {
					t.Fatal(err)
				}
				c.AddPath(res.Best)
			}
		}
		c.Seal()
		got := c.MemStats().EntryBytes
		// What the pre-packing MemStats accounting charged for the same
		// entries: an 88-byte CachedPlan (combo + leaves slice headers,
		// internal, NLJ, sig header, path pointer) plus a LeafReq and a
		// combo string header per relation (slim entries carry no Sig).
		perRel := int64(unsafe.Sizeof(optimizer.LeafReq{})) + 16
		unpacked := int64(len(c.Plans)) * (88 + int64(len(c.Q.Rels))*perRel)
		if got*2 > unpacked {
			t.Errorf("query %d: packed entries use %d bytes, unpacked form %d — less than a 2x saving",
				qi, got, unpacked)
		}
		t.Logf("query %d (%d rels): %d plans, entry bytes %d packed vs %d unpacked (%.1fx)",
			qi, len(c.Q.Rels), len(c.Plans), got, unpacked, float64(unpacked)/float64(got))
	}
}

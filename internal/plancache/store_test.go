package plancache

import (
	"os"
	"path/filepath"
	"reflect"
	"strings"
	"testing"
)

// TestValidTenantName pins the tenant-name alphabet: names become file
// names, headers and JSON values, so anything outside [A-Za-z0-9_-] (or
// empty, or over-long) is rejected.
func TestValidTenantName(t *testing.T) {
	good := []string{"default", "acme", "t1", "A-b_C9", strings.Repeat("x", 64)}
	for _, name := range good {
		if !ValidTenantName(name) {
			t.Errorf("ValidTenantName(%q) = false, want true", name)
		}
	}
	bad := []string{"", ".", "..", "a/b", `a\b`, "a.b", "a b", "a:b", "café",
		strings.Repeat("x", 65)}
	for _, name := range bad {
		if ValidTenantName(name) {
			t.Errorf("ValidTenantName(%q) = true, want false", name)
		}
	}
}

// TestStoreRoundTrip pins the store layout: Save writes
// <dir>/<tenant>.pcache, Load validates the fingerprint, and List
// returns exactly the saved tenants, sorted.
func TestStoreRoundTrip(t *testing.T) {
	_, snap := starSnapshot(t, 42)
	store, err := NewStore(filepath.Join(t.TempDir(), "snapshots"))
	if err != nil {
		t.Fatal(err)
	}
	for _, tenant := range []string{"globex", "acme"} {
		if err := store.Save(tenant, snap); err != nil {
			t.Fatalf("save %s: %v", tenant, err)
		}
	}
	path, err := store.Path("acme")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := os.Stat(path); err != nil {
		t.Fatalf("expected snapshot file at %s: %v", path, err)
	}

	got, err := store.Load("acme", snap.Fingerprint)
	if err != nil {
		t.Fatal(err)
	}
	if got.Fingerprint != snap.Fingerprint || len(got.Queries) != len(snap.Queries) {
		t.Fatalf("loaded snapshot fp=%x queries=%d, want fp=%x queries=%d",
			got.Fingerprint, len(got.Queries), snap.Fingerprint, len(snap.Queries))
	}

	// A stale fingerprint must be rejected exactly like a standalone Load.
	if _, err := store.Load("acme", snap.Fingerprint+1); err == nil {
		t.Fatal("stale-fingerprint load succeeded, want rejection")
	}

	names, err := store.List()
	if err != nil {
		t.Fatal(err)
	}
	if want := []string{"acme", "globex"}; !reflect.DeepEqual(names, want) {
		t.Fatalf("List() = %v, want %v", names, want)
	}
}

// TestStoreRejectsBadTenantNames pins path safety: no tenant name can
// escape the store directory or collide with non-snapshot files.
func TestStoreRejectsBadTenantNames(t *testing.T) {
	_, snap := starSnapshot(t, 42)
	store, err := NewStore(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	for _, name := range []string{"", "../escape", "a/b", "a.pcache"} {
		if _, err := store.Path(name); err == nil {
			t.Errorf("Path(%q) succeeded, want error", name)
		}
		if err := store.Save(name, snap); err == nil {
			t.Errorf("Save(%q) succeeded, want error", name)
		}
		if _, err := store.Load(name, snap.Fingerprint); err == nil {
			t.Errorf("Load(%q) succeeded, want error", name)
		}
	}
}

// TestStoreListIgnoresForeignFiles pins List's filter: only
// valid-tenant-named .pcache files count.
func TestStoreListIgnoresForeignFiles(t *testing.T) {
	dir := t.TempDir()
	store, err := NewStore(dir)
	if err != nil {
		t.Fatal(err)
	}
	for _, name := range []string{"notes.txt", "bad name.pcache", ".pcache"} {
		if err := os.WriteFile(filepath.Join(dir, name), []byte("x"), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	if err := os.Mkdir(filepath.Join(dir, "sub.pcache"), 0o755); err != nil {
		t.Fatal(err)
	}
	names, err := store.List()
	if err != nil {
		t.Fatal(err)
	}
	if len(names) != 0 {
		t.Fatalf("List() = %v, want empty", names)
	}
}

package plancache

import (
	"bytes"
	"errors"
	"math"
	"os"
	"path/filepath"
	"testing"

	"github.com/pinumdb/pinum/internal/core"
	"github.com/pinumdb/pinum/internal/faultpoint"
	"github.com/pinumdb/pinum/internal/optimizer"
	"github.com/pinumdb/pinum/internal/whatif"
	"github.com/pinumdb/pinum/internal/workload"
)

// starSnapshot builds slim caches for the star workload and packages them
// into a snapshot.
func starSnapshot(t *testing.T, seed int64) (*workload.Star, *Snapshot) {
	t.Helper()
	s, err := workload.StarSchema(1.0)
	if err != nil {
		t.Fatal(err)
	}
	qs, err := s.Queries(seed)
	if err != nil {
		t.Fatal(err)
	}
	snap := &Snapshot{Fingerprint: Fingerprint(s.Catalog, s.Stats, optimizer.DefaultCostParams())}
	for _, q := range qs {
		a, err := optimizer.NewAnalysis(q, s.Stats, optimizer.DefaultCostParams())
		if err != nil {
			t.Fatal(err)
		}
		c, err := core.BuildSlim(a, whatif.NewSession(s.Catalog))
		if err != nil {
			t.Fatal(err)
		}
		snap.Queries = append(snap.Queries, FromCache(c))
	}
	return s, snap
}

func encodeToBytes(t *testing.T, snap *Snapshot) []byte {
	t.Helper()
	var buf bytes.Buffer
	if err := Encode(&buf, snap); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

// TestRoundTripByteIdentical pins the codec's determinism: encoding,
// decoding and re-encoding a snapshot yields the same bytes, and the
// decoded structures carry identical float bits.
func TestRoundTripByteIdentical(t *testing.T) {
	_, snap := starSnapshot(t, 42)
	data := encodeToBytes(t, snap)

	dec, err := Decode(data)
	if err != nil {
		t.Fatal(err)
	}
	if dec.Fingerprint != snap.Fingerprint {
		t.Fatalf("fingerprint changed across the codec: %x -> %x", snap.Fingerprint, dec.Fingerprint)
	}
	if len(dec.Queries) != len(snap.Queries) {
		t.Fatalf("query count changed: %d -> %d", len(snap.Queries), len(dec.Queries))
	}
	for i, qp := range dec.Queries {
		orig := snap.Queries[i]
		if qp.Name != orig.Name || qp.SQL != orig.SQL || qp.NRels != orig.NRels {
			t.Fatalf("query %d header changed: %+v vs %+v", i, qp, orig)
		}
		if len(qp.Entries) != len(orig.Entries) {
			t.Fatalf("query %s entry count changed: %d -> %d", qp.Name, len(orig.Entries), len(qp.Entries))
		}
		for j, e := range qp.Entries {
			oe := orig.Entries[j]
			if math.Float64bits(e.Internal) != math.Float64bits(oe.Internal) {
				t.Fatalf("%s entry %d internal bits changed", qp.Name, j)
			}
			for rel := range e.Packed {
				if e.Packed[rel] != oe.Packed[rel] ||
					math.Float64bits(e.Coefs[rel]) != math.Float64bits(oe.Coefs[rel]) {
					t.Fatalf("%s entry %d leaf %d changed: %#04x/%v vs %#04x/%v",
						qp.Name, j, rel, e.Packed[rel], e.Coefs[rel], oe.Packed[rel], oe.Coefs[rel])
				}
			}
		}
	}

	re := encodeToBytes(t, dec)
	if !bytes.Equal(data, re) {
		t.Fatalf("re-encode is not byte-identical: %d vs %d bytes", len(data), len(re))
	}
}

// TestDecodeRejectsCorruption flips or truncates bytes across the whole
// snapshot and requires every mutation to be rejected (the checksum backs
// up the structural checks).
func TestDecodeRejectsCorruption(t *testing.T) {
	_, snap := starSnapshot(t, 42)
	data := encodeToBytes(t, snap)

	if _, err := Decode(nil); err == nil {
		t.Error("Decode accepted an empty snapshot")
	}
	if _, err := Decode(data[:len(data)-3]); err == nil {
		t.Error("Decode accepted a truncated snapshot")
	}
	if _, err := Decode(append(append([]byte(nil), data...), 0xAB)); err == nil {
		t.Error("Decode accepted trailing garbage")
	}

	bad := append([]byte(nil), data...)
	bad[7] = 99 // version byte
	if _, err := Decode(bad); err == nil {
		t.Error("Decode accepted an unknown version")
	}
	bad = append([]byte(nil), data...)
	bad[0] = 'X'
	if _, err := Decode(bad); err == nil {
		t.Error("Decode accepted a bad magic")
	}

	// Flip one bit at a spread of offsets: every corruption must fail
	// (either structurally or by checksum), never silently load.
	for off := 8; off < len(data); off += 97 {
		mut := append([]byte(nil), data...)
		mut[off] ^= 0x40
		if _, err := Decode(mut); err == nil {
			t.Fatalf("Decode accepted a snapshot with byte %d flipped", off)
		}
	}
}

// TestDecodeRejectsPreviousVersion pins the format-staleness contract for
// the packed-leaf encoding: a v1 snapshot (per-leaf column strings through
// a pool) presents the old version byte and must be rejected by the
// version check with the stale-format error, not mis-parsed as v2.
func TestDecodeRejectsPreviousVersion(t *testing.T) {
	_, snap := starSnapshot(t, 42)
	data := encodeToBytes(t, snap)
	old := append([]byte(nil), data...)
	old[7] = 1 // the previous format version
	_, err := Decode(old)
	if err == nil {
		t.Fatal("Decode accepted a v1 snapshot")
	}
	want := "plancache: unsupported snapshot version 1 (want 2)"
	if err.Error() != want {
		t.Fatalf("v1 rejection error = %q, want %q", err, want)
	}
}

// TestDecodeRejectsEveryTruncation is the exhaustive corruption taxonomy
// for truncation: a snapshot cut at ANY byte offset — which includes every
// section boundary (after the magic, the fingerprint, the query count,
// each query header field, each entry, and inside the trailing checksum)
// — must be rejected, and the full encoding must still decode.
func TestDecodeRejectsEveryTruncation(t *testing.T) {
	_, snap := starSnapshot(t, 42)
	// Two queries keep the byte count small enough to try every prefix.
	small := &Snapshot{Fingerprint: snap.Fingerprint, Queries: snap.Queries[:2]}
	data := encodeToBytes(t, small)

	for n := 0; n < len(data); n++ {
		if _, err := Decode(data[:n]); err == nil {
			t.Fatalf("Decode accepted a snapshot truncated to %d of %d bytes", n, len(data))
		}
	}
	if _, err := Decode(data); err != nil {
		t.Fatalf("full snapshot no longer decodes: %v", err)
	}
}

// TestDecodeRejectsEveryChecksumFlip flips each bit of the stored checksum
// (and a byte right before it, which the checksum covers): silent
// acceptance of either would let a torn tail through.
func TestDecodeRejectsEveryChecksumFlip(t *testing.T) {
	_, snap := starSnapshot(t, 42)
	small := &Snapshot{Fingerprint: snap.Fingerprint, Queries: snap.Queries[:2]}
	data := encodeToBytes(t, small)

	for off := len(data) - 9; off < len(data); off++ {
		for bit := 0; bit < 8; bit++ {
			mut := append([]byte(nil), data...)
			mut[off] ^= 1 << bit
			if _, err := Decode(mut); err == nil {
				t.Fatalf("Decode accepted a snapshot with bit %d of byte %d flipped", bit, off)
			}
		}
	}
}

// TestSaveCrashSafety proves a torn temp-file write never clobbers the
// live snapshot: with a fault injected into the temp write path, Save
// fails with ErrPartialWrite, leaves a truncated temp file behind (a
// crash cleans nothing up), and the previously saved snapshot still loads
// byte-intact. After the fault heals, Save succeeds again.
func TestSaveCrashSafety(t *testing.T) {
	t.Cleanup(faultpoint.Reset)
	s, snap := starSnapshot(t, 42)
	fp := Fingerprint(s.Catalog, s.Stats, optimizer.DefaultCostParams())
	dir := t.TempDir()
	path := filepath.Join(dir, "star.pcache")
	if err := Save(path, snap); err != nil {
		t.Fatal(err)
	}
	before, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}

	if err := faultpoint.Set("plancache.save.write", "error"); err != nil {
		t.Fatal(err)
	}
	err = Save(path, snap)
	if !errors.Is(err, ErrPartialWrite) {
		t.Fatalf("faulted Save returned %v, want ErrPartialWrite", err)
	}
	if !errors.Is(err, faultpoint.ErrInjected) {
		t.Fatalf("faulted Save did not carry the injected cause: %v", err)
	}

	// The live snapshot is untouched and still loads.
	after, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(before, after) {
		t.Fatal("failed Save modified the live snapshot file")
	}
	if _, err := Load(path, fp); err != nil {
		t.Fatalf("live snapshot no longer loads after a torn save: %v", err)
	}

	// The torn temp file is there (the simulated crash cleans nothing up)
	// and its truncated content is rejected by the codec.
	tmps, err := filepath.Glob(filepath.Join(dir, "star.pcache.tmp*"))
	if err != nil {
		t.Fatal(err)
	}
	if len(tmps) != 1 {
		t.Fatalf("expected exactly one torn temp file, found %v", tmps)
	}
	torn, err := os.ReadFile(tmps[0])
	if err != nil {
		t.Fatal(err)
	}
	if len(torn) >= len(before) {
		t.Fatalf("torn temp holds %d bytes, want a strict prefix of %d", len(torn), len(before))
	}
	if _, err := Decode(torn); err == nil {
		t.Fatal("Decode accepted the torn temp file")
	}

	// Healed, the save path works again.
	faultpoint.Clear("plancache.save.write")
	if err := Save(path, snap); err != nil {
		t.Fatalf("Save after healing: %v", err)
	}
	if _, err := Load(path, fp); err != nil {
		t.Fatal(err)
	}
}

// TestTableFingerprints pins the locality contract incremental reload
// rests on: statistics drift in one table moves that table's fingerprint
// and no other, while a cost-parameter change moves every fingerprint.
func TestTableFingerprints(t *testing.T) {
	s, _ := starSnapshot(t, 42)
	params := optimizer.DefaultCostParams()
	base := TableFingerprints(s.Catalog, s.Stats, params)
	if len(base) != len(s.Catalog.Tables()) {
		t.Fatalf("fingerprinted %d tables, catalog has %d", len(base), len(s.Catalog.Tables()))
	}

	again := TableFingerprints(s.Catalog, s.Stats, params)
	for name, fp := range base {
		if again[name] != fp {
			t.Fatalf("table %s fingerprint not deterministic", name)
		}
	}

	fact := s.Catalog.Table("fact")
	fact.RowCount++
	drifted := TableFingerprints(s.Catalog, s.Stats, params)
	fact.RowCount--
	for name, fp := range base {
		moved := drifted[name] != fp
		if name == "fact" && !moved {
			t.Error("fact row-count drift did not move fact's fingerprint")
		}
		if name != "fact" && moved {
			t.Errorf("fact row-count drift moved %s's fingerprint", name)
		}
	}

	params.RandomPageCost *= 2
	repriced := TableFingerprints(s.Catalog, s.Stats, params)
	for name, fp := range base {
		if repriced[name] == fp {
			t.Errorf("cost-parameter change did not move %s's fingerprint", name)
		}
	}
}

// TestLoadRejectsStaleFingerprint pins the staleness contract: a snapshot
// built under one environment must not load under another.
func TestLoadRejectsStaleFingerprint(t *testing.T) {
	s, snap := starSnapshot(t, 42)
	path := t.TempDir() + "/star.pcache"
	if err := Save(path, snap); err != nil {
		t.Fatal(err)
	}

	fp := Fingerprint(s.Catalog, s.Stats, optimizer.DefaultCostParams())
	if _, err := Load(path, fp); err != nil {
		t.Fatalf("Load rejected a fresh snapshot: %v", err)
	}

	// Any drift in schema statistics or cost parameters must change the
	// fingerprint...
	grown := s.Catalog.Table("fact").RowCount + 1
	old := s.Catalog.Table("fact").RowCount
	s.Catalog.Table("fact").RowCount = grown
	fpGrown := Fingerprint(s.Catalog, s.Stats, optimizer.DefaultCostParams())
	s.Catalog.Table("fact").RowCount = old
	if fpGrown == fp {
		t.Fatal("fingerprint ignored a row-count change")
	}
	params := optimizer.DefaultCostParams()
	params.RandomPageCost *= 2
	if Fingerprint(s.Catalog, s.Stats, params) == fp {
		t.Fatal("fingerprint ignored a cost-parameter change")
	}
	if Fingerprint(s.Catalog, nil, optimizer.DefaultCostParams()) == fp {
		t.Fatal("fingerprint ignored the statistics store")
	}

	// ...and the mismatched load must fail.
	if _, err := Load(path, fpGrown); err == nil {
		t.Fatal("Load accepted a snapshot with a stale fingerprint")
	}
}

package plancache

import (
	"bytes"
	"fmt"
	"math"
	"math/rand"
	"testing"

	"github.com/pinumdb/pinum/internal/advisor"
	"github.com/pinumdb/pinum/internal/core"
	"github.com/pinumdb/pinum/internal/inum"
	"github.com/pinumdb/pinum/internal/optimizer"
	"github.com/pinumdb/pinum/internal/query"
	"github.com/pinumdb/pinum/internal/stats"
	"github.com/pinumdb/pinum/internal/storage"
	"github.com/pinumdb/pinum/internal/whatif"
	"github.com/pinumdb/pinum/internal/workload"
)

// selfJoinQuery joins dim1_1 to itself so one table owns two relation
// slots with different requirements — the case that historically broke
// per-table assumptions.
func selfJoinQuery(t *testing.T, s *workload.Star, name, orderCol string) *query.Query {
	t.Helper()
	d := s.Catalog.Table("dim1_1")
	if d == nil {
		t.Fatal("no dim1_1 table")
	}
	q := &query.Query{
		Name: name,
		Rels: []query.Rel{{Table: d, Alias: "e"}, {Table: d, Alias: "m"}},
		Joins: []query.Join{{
			Left:  query.ColRef{Rel: 0, Column: "a1"},
			Right: query.ColRef{Rel: 1, Column: "id"},
		}},
		Filters: []query.Filter{{
			Col: query.ColRef{Rel: 0, Column: "a2"}, Op: query.Between, Value: 1, Value2: 1000,
		}},
		Select:  []query.ColRef{{Rel: 0, Column: "id"}, {Rel: 1, Column: "a2"}},
		OrderBy: []query.ColRef{{Rel: 1, Column: orderCol}},
	}
	if err := q.Validate(); err != nil {
		t.Fatal(err)
	}
	return q
}

// roundTrip pushes a cache through the full persistence pipeline —
// FromCache → Encode → Decode → ToCache — and returns the reloaded slim
// cache over a fresh analysis of the same query.
func roundTrip(t *testing.T, c *inum.Cache, st *stats.Store) *inum.Cache {
	t.Helper()
	snap := &Snapshot{Queries: []QueryPlans{FromCache(c)}}
	var buf bytes.Buffer
	if err := Encode(&buf, snap); err != nil {
		t.Fatal(err)
	}
	dec, err := Decode(buf.Bytes())
	if err != nil {
		t.Fatal(err)
	}
	a, err := optimizer.NewAnalysis(c.Q, st, optimizer.DefaultCostParams())
	if err != nil {
		t.Fatal(err)
	}
	out, err := ToCache(a, dec.Queries[0])
	if err != nil {
		t.Fatal(err)
	}
	return out
}

// planIndex locates a returned plan within its cache.
func planIndex(c *inum.Cache, cp *inum.CachedPlan) int {
	for i, p := range c.Plans {
		if p == cp {
			return i
		}
	}
	return -1
}

// assertCacheEquivalent prices both caches under the configurations and
// requires exact cost bits, identical winning-plan positions, and
// bit-equal BaseLeafCosts snapshots per plan.
func assertCacheEquivalent(t *testing.T, label string, tree, other *inum.Cache, cfgs []*query.Config) {
	t.Helper()
	if len(tree.Plans) != len(other.Plans) {
		t.Fatalf("%s: %d tree plans vs %d", label, len(tree.Plans), len(other.Plans))
	}
	for i := range tree.Plans {
		tp, op := tree.Plans[i], other.Plans[i]
		if math.Float64bits(tp.Internal) != math.Float64bits(op.Internal) {
			t.Fatalf("%s plan %d: internal bits differ", label, i)
		}
		if tp.NLJ != op.NLJ || tp.Combo().Key() != op.Combo().Key() {
			t.Fatalf("%s plan %d: combo/NLJ differ: %v/%v vs %v/%v",
				label, i, tp.Combo(), tp.NLJ, op.Combo(), op.NLJ)
		}
		for rel := 0; rel < tp.NumRels(); rel++ {
			if tp.Leaf(rel) != op.Leaf(rel) {
				t.Fatalf("%s plan %d leaf %d: %+v vs %+v", label, i, rel, tp.Leaf(rel), op.Leaf(rel))
			}
		}
		tb, ob := tree.BaseLeafCosts(tp), other.BaseLeafCosts(op)
		for rel := range tb {
			if math.Float64bits(tb[rel]) != math.Float64bits(ob[rel]) {
				t.Fatalf("%s plan %d: BaseLeafCosts[%d] bits differ: %v vs %v", label, i, rel, tb[rel], ob[rel])
			}
		}
	}
	for ci, cfg := range cfgs {
		tc, tp, terr := tree.Cost(cfg)
		oc, op, oerr := other.Cost(cfg)
		if (terr == nil) != (oerr == nil) {
			t.Fatalf("%s cfg %d: error mismatch: %v vs %v", label, ci, terr, oerr)
		}
		if terr != nil {
			continue
		}
		if math.Float64bits(tc) != math.Float64bits(oc) {
			t.Fatalf("%s cfg %d: cost bits differ: %v vs %v", label, ci, tc, oc)
		}
		if planIndex(tree, tp) != planIndex(other, op) {
			t.Fatalf("%s cfg %d: winning plan %d vs %d", label, ci,
				planIndex(tree, tp), planIndex(other, op))
		}
	}
}

// TestSlimTreeCostEquivalence pins the tentpole guarantee on the star
// workload plus self-joins: a slim build and a snapshot-roundtripped load
// answer Cost and BaseLeafCosts bit-identically to the tree-backed cache.
func TestSlimTreeCostEquivalence(t *testing.T) {
	s, err := workload.StarSchema(1.0)
	if err != nil {
		t.Fatal(err)
	}
	qs, err := s.Queries(42)
	if err != nil {
		t.Fatal(err)
	}
	qs = append(qs, selfJoinQuery(t, s, "SJ-a", "a2"), selfJoinQuery(t, s, "SJ-b", "a3"))
	rng := rand.New(rand.NewSource(99))
	for _, q := range qs {
		a1, err := optimizer.NewAnalysis(q, s.Stats, optimizer.DefaultCostParams())
		if err != nil {
			t.Fatal(err)
		}
		a2, err := optimizer.NewAnalysis(q, s.Stats, optimizer.DefaultCostParams())
		if err != nil {
			t.Fatal(err)
		}
		tree, err := core.Build(a1, whatif.NewSession(s.Catalog))
		if err != nil {
			t.Fatal(err)
		}
		slim, err := core.BuildSlim(a2, whatif.NewSession(s.Catalog))
		if err != nil {
			t.Fatal(err)
		}
		loaded := roundTrip(t, slim, s.Stats)

		for i, cp := range slim.Plans {
			if cp.Path != nil || cp.Sig != "" {
				t.Fatalf("%s: slim plan %d retained a path/signature", q.Name, i)
			}
		}

		ws := whatif.NewSession(s.Catalog)
		cfgs := []*query.Config{{}}
		for i := 0; i < 25; i++ {
			cfg, err := workload.RandomAtomicConfig(rng, a1, ws, 0.8)
			if err != nil {
				t.Fatal(err)
			}
			cfgs = append(cfgs, cfg)
		}
		assertCacheEquivalent(t, q.Name+" slim", tree, slim, cfgs)
		assertCacheEquivalent(t, q.Name+" loaded", tree, loaded, cfgs)
	}
}

// TestSlimTreeShapeEquivalence re-pins the guarantee across every join
// topology the shape generator produces.
func TestSlimTreeShapeEquivalence(t *testing.T) {
	specs := []workload.ShapeSpec{
		{Shape: workload.ShapeChain, Rels: 4, Seed: 5},
		{Shape: workload.ShapeChain, Rels: 7, Seed: 5},
		{Shape: workload.ShapeCycle, Rels: 6, Seed: 5},
		{Shape: workload.ShapeSnowflake, Rels: 7, Seed: 5},
		{Shape: workload.ShapeStar, Rels: 6, Seed: 5},
		{Shape: workload.ShapeClique, Rels: 5, Seed: 5},
		{Shape: workload.ShapeRandom, Rels: 6, Density: 0.4, Seed: 5},
	}
	rng := rand.New(rand.NewSource(7))
	for _, spec := range specs {
		cat, q, err := workload.ShapeQuery(spec)
		if err != nil {
			t.Fatal(err)
		}
		label := fmt.Sprintf("%s/%d", spec.Shape, spec.Rels)
		a1, err := optimizer.NewAnalysis(q, nil, optimizer.DefaultCostParams())
		if err != nil {
			t.Fatal(err)
		}
		a2, err := optimizer.NewAnalysis(q, nil, optimizer.DefaultCostParams())
		if err != nil {
			t.Fatal(err)
		}
		tree, err := core.Build(a1, whatif.NewSession(cat))
		if err != nil {
			t.Fatal(err)
		}
		slim, err := core.BuildSlim(a2, whatif.NewSession(cat))
		if err != nil {
			t.Fatal(err)
		}
		loaded := roundTrip(t, slim, nil)
		cfgs := workload.ShapeConfigs(rng, cat, q, 10)
		cfgs = append(cfgs, &query.Config{})
		assertCacheEquivalent(t, label+" slim", tree, slim, cfgs)
		assertCacheEquivalent(t, label+" loaded", tree, loaded, cfgs)

		// The memory the slim cache gives back is the tentpole's point:
		// no retained path nodes at all, and a multiple fewer bytes on
		// the wider queries.
		tm, sm := tree.Stats.Mem, slim.Stats.Mem
		if sm.RetainedPathNodes != 0 || sm.PathBytes != 0 {
			t.Fatalf("%s: slim cache retained %d path nodes / %d bytes", label, sm.RetainedPathNodes, sm.PathBytes)
		}
		if tm.RetainedPathNodes == 0 {
			t.Fatalf("%s: tree cache reports no retained path nodes", label)
		}
		if len(q.Rels) >= 5 && tm.TotalBytes() < 3*sm.TotalBytes() {
			t.Errorf("%s: tree cache %d bytes is under 3x the slim cache's %d", label, tm.TotalBytes(), sm.TotalBytes())
		}
	}
}

// TestAdvisorSlimTreeEquivalence runs the full greedy search over slim
// and snapshot-roundtripped caches and requires results identical to the
// tree-backed advisor's Run and RunReference.
func TestAdvisorSlimTreeEquivalence(t *testing.T) {
	s, err := workload.StarSchema(1.0)
	if err != nil {
		t.Fatal(err)
	}
	qs, err := s.Queries(42)
	if err != nil {
		t.Fatal(err)
	}
	qs = append(qs[:6], selfJoinQuery(t, s, "SJ-a", "a2"), selfJoinQuery(t, s, "SJ-b", "a3"))
	weights := make([]float64, len(qs))
	for i := range weights {
		weights[i] = float64(1 + i%3)
	}

	// Tree-backed ground truth: the normal AddQueries path.
	adTree := advisor.New(s.Catalog, s.Stats, storage.BytesForGB(4))
	if err := adTree.AddQueries(qs, weights); err != nil {
		t.Fatal(err)
	}
	want, err := adTree.Run()
	if err != nil {
		t.Fatal(err)
	}
	wantRef, err := adTree.RunReference()
	if err != nil {
		t.Fatal(err)
	}

	buildSlimCaches := func() ([]*optimizer.Analysis, []*inum.Cache) {
		analyses := make([]*optimizer.Analysis, len(qs))
		caches := make([]*inum.Cache, len(qs))
		for i, q := range qs {
			a, err := optimizer.NewAnalysis(q, s.Stats, optimizer.DefaultCostParams())
			if err != nil {
				t.Fatal(err)
			}
			c, err := core.BuildSlim(a, whatif.NewSession(s.Catalog))
			if err != nil {
				t.Fatal(err)
			}
			analyses[i], caches[i] = a, c
		}
		return analyses, caches
	}

	runOver := func(label string, analyses []*optimizer.Analysis, caches []*inum.Cache) *advisor.Result {
		ad := advisor.New(s.Catalog, s.Stats, storage.BytesForGB(4))
		for i, q := range qs {
			if err := ad.AddPrepared(q, analyses[i], caches[i], weights[i]); err != nil {
				t.Fatalf("%s: %v", label, err)
			}
		}
		res, err := ad.Run()
		if err != nil {
			t.Fatalf("%s: %v", label, err)
		}
		return res
	}

	assertSame := func(label string, got *advisor.Result) {
		t.Helper()
		if len(got.Chosen) != len(want.Chosen) {
			t.Fatalf("%s: %d picks vs %d", label, len(got.Chosen), len(want.Chosen))
		}
		for i := range got.Chosen {
			if got.Chosen[i].Key() != want.Chosen[i].Key() {
				t.Fatalf("%s pick %d: %s vs %s", label, i, got.Chosen[i].Key(), want.Chosen[i].Key())
			}
		}
		if math.Float64bits(got.BaseCost) != math.Float64bits(want.BaseCost) ||
			math.Float64bits(got.FinalCost) != math.Float64bits(want.FinalCost) {
			t.Fatalf("%s: base/final cost bits differ: %v/%v vs %v/%v",
				label, got.BaseCost, got.FinalCost, want.BaseCost, want.FinalCost)
		}
		for name, w := range want.PerQuery {
			g := got.PerQuery[name]
			if math.Float64bits(g[0]) != math.Float64bits(w[0]) ||
				math.Float64bits(g[1]) != math.Float64bits(w[1]) {
				t.Fatalf("%s %s: per-query bits differ: %v vs %v", label, name, g, w)
			}
		}
		if got.Rounds != want.Rounds || got.TotalBytes != want.TotalBytes {
			t.Fatalf("%s: rounds/bytes differ: %d/%d vs %d/%d",
				label, got.Rounds, got.TotalBytes, want.Rounds, want.TotalBytes)
		}
	}

	// Run vs RunReference on the tree path first (sanity that the oracle
	// holds on this workload), then slim and loaded against it.
	assertSame("tree reference", wantRef)

	analyses, slims := buildSlimCaches()
	assertSame("slim", runOver("slim", analyses, slims))

	loaded := make([]*inum.Cache, len(slims))
	for i, c := range slims {
		loaded[i] = roundTrip(t, c, s.Stats)
	}
	assertSame("loaded", runOver("loaded", analyses, loaded))
}

// TestAddPathAfterSeal pins the sealed-cache contract: AddPath on a
// sealed (slim-built or snapshot-loaded) cache appends without
// deduplication instead of panicking on the dropped dedup map.
func TestAddPathAfterSeal(t *testing.T) {
	s, err := workload.StarSchema(1.0)
	if err != nil {
		t.Fatal(err)
	}
	qs, err := s.Queries(42)
	if err != nil {
		t.Fatal(err)
	}
	q := qs[0]
	a, err := optimizer.NewAnalysis(q, s.Stats, optimizer.DefaultCostParams())
	if err != nil {
		t.Fatal(err)
	}
	tree, err := core.Build(a, whatif.NewSession(s.Catalog))
	if err != nil {
		t.Fatal(err)
	}
	slim, err := core.BuildSlim(a, whatif.NewSession(s.Catalog))
	if err != nil {
		t.Fatal(err)
	}
	n := len(slim.Plans)
	p := tree.Plans[0].Path
	if p == nil {
		t.Fatal("tree cache entry lost its path")
	}
	if !slim.AddPath(p) {
		t.Fatal("sealed AddPath reported a duplicate")
	}
	if len(slim.Plans) != n+1 {
		t.Fatalf("sealed AddPath appended %d plans, want 1", len(slim.Plans)-n)
	}
}

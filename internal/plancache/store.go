package plancache

// Store: the on-disk layout for a multi-tenant snapshot collection — one
// directory, one <tenant>.pcache file per tenant, each written and read
// with the same crash-safe, fingerprint-validated Save/Load as a
// standalone snapshot file. The store adds nothing to the format; it
// only fixes the naming contract, so an operator can point N dedicated
// single-tenant processes and one multi-tenant process at the same
// directory and they read each other's snapshots byte for byte.

import (
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strings"
)

// storeExt is the snapshot file suffix inside a Store directory.
const storeExt = ".pcache"

// maxTenantNameLen bounds tenant names; they become file names.
const maxTenantNameLen = 64

// ValidTenantName reports whether name is usable as a tenant id: 1-64
// characters from [A-Za-z0-9_-]. The alphabet keeps names safe as file
// names (no separators, no "..", nothing needing escaping) and safe to
// embed in URLs, headers and JSON without quoting surprises.
func ValidTenantName(name string) bool {
	if len(name) == 0 || len(name) > maxTenantNameLen {
		return false
	}
	for i := 0; i < len(name); i++ {
		c := name[i]
		switch {
		case 'a' <= c && c <= 'z', 'A' <= c && c <= 'Z', '0' <= c && c <= '9', c == '_', c == '-':
		default:
			return false
		}
	}
	return true
}

// Store is a directory of per-tenant snapshot files.
type Store struct {
	dir string
}

// NewStore opens (creating if needed) a snapshot store directory.
func NewStore(dir string) (*Store, error) {
	if dir == "" {
		return nil, fmt.Errorf("plancache: store needs a directory")
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("plancache: store: %w", err)
	}
	return &Store{dir: dir}, nil
}

// Dir returns the store's directory.
func (st *Store) Dir() string { return st.dir }

// Path returns the snapshot file path for a tenant, or an error for an
// invalid name (never a path outside the store directory).
func (st *Store) Path(tenant string) (string, error) {
	if !ValidTenantName(tenant) {
		return "", fmt.Errorf("plancache: invalid tenant name %q", tenant)
	}
	return filepath.Join(st.dir, tenant+storeExt), nil
}

// Save writes a tenant's snapshot crash-safely (see Save).
func (st *Store) Save(tenant string, s *Snapshot) error {
	path, err := st.Path(tenant)
	if err != nil {
		return err
	}
	return Save(path, s)
}

// Load reads a tenant's snapshot, rejecting it unless its environment
// fingerprint matches want (see Load).
func (st *Store) Load(tenant string, want uint64) (*Snapshot, error) {
	path, err := st.Path(tenant)
	if err != nil {
		return nil, err
	}
	return Load(path, want)
}

// List returns the tenants with a snapshot file in the store, sorted.
// Files that are not valid tenant snapshots by name are ignored; their
// content is not inspected (Load validates on read).
func (st *Store) List() ([]string, error) {
	entries, err := os.ReadDir(st.dir)
	if err != nil {
		return nil, fmt.Errorf("plancache: store: %w", err)
	}
	var tenants []string
	for _, e := range entries {
		if e.IsDir() {
			continue
		}
		name, ok := strings.CutSuffix(e.Name(), storeExt)
		if !ok || !ValidTenantName(name) {
			continue
		}
		tenants = append(tenants, name)
	}
	sort.Strings(tenants)
	return tenants, nil
}

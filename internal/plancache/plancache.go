// Package plancache implements the persistent plan-cache store: a slim,
// versioned snapshot of one or more PINUM plan caches that a long-lived
// process can write once and load on every start instead of re-invoking
// the optimizer.
//
// A snapshot stores, per query, exactly what the cached cost model
// (inum.Cache.Cost) consumes — each plan's internal cost and per-relation
// leaf requirements in the planner's packed interned form (two identity
// bytes plus the float64 coefficient per relation, see optimizer.PackLeaf)
// — and nothing the planner retained along the way: no path trees, no
// signatures, no column strings (order ids resolve through the query's
// deterministic interning at load). Loading a snapshot therefore
// reconstructs a slim cache whose Cost and BaseLeafCosts results are
// bit-identical to the cache that was saved (float64 payloads round-trip
// as raw IEEE-754 bits, and entry order is preserved), at a fraction of
// the memory.
//
// Snapshots are fingerprinted against the catalog, statistics and cost
// parameters they were built under. The stored internal costs and leaf
// coefficients are only meaningful for the schema and statistics the
// optimizer saw at build time, so Decode callers must compare the
// snapshot's fingerprint against the serving environment's — a stale
// snapshot is rejected with an error instead of silently mis-costing
// every what-if question. The binary encoding is deterministic
// (encode→decode→re-encode is byte-identical) and checksummed, so a
// truncated or corrupted file fails loudly too.
package plancache

import (
	"bytes"
	"encoding/binary"
	"errors"
	"fmt"
	"hash"
	"hash/fnv"
	"io"
	"math"
	"os"
	"path/filepath"

	"github.com/pinumdb/pinum/internal/catalog"
	"github.com/pinumdb/pinum/internal/faultpoint"
	"github.com/pinumdb/pinum/internal/inum"
	"github.com/pinumdb/pinum/internal/optimizer"
	"github.com/pinumdb/pinum/internal/query"
	"github.com/pinumdb/pinum/internal/stats"
)

// Entry is one slim cached plan: the INUM decomposition without the tree,
// leaves in the planner's packed interned form.
type Entry struct {
	// Internal is the access-method-independent plan cost.
	Internal float64
	// Packed holds one interned leaf identity per query relation
	// (optimizer.PackLeaf: mode in the top two bits, the relation's
	// interesting-order id in the low fourteen).
	Packed []uint16
	// Coefs holds the matching access-cost coefficients.
	Coefs []float64
}

// QueryPlans is the slim plan cache of one query.
type QueryPlans struct {
	// Name identifies the query (matched against the workload at load).
	Name string
	// SQL is the query text, kept so a loaded snapshot can be audited and
	// so load can verify it still matches the workload's query.
	SQL string
	// NRels is the query's relation count; every entry's Leaves has
	// exactly this length.
	NRels int
	// Entries holds the cached plans in cache order (Cost scans them in
	// order with strict improvement, so order is part of bit-identity).
	Entries []Entry
}

// Snapshot is a persistable set of plan caches plus the fingerprint of
// the environment they were built under.
type Snapshot struct {
	// Fingerprint identifies the (catalog, statistics, cost parameters)
	// the caches were built against.
	Fingerprint uint64
	// Queries holds one slim cache per workload query, in workload order.
	Queries []QueryPlans
}

// NewSnapshot assembles a snapshot from built caches (tree-backed or
// slim), in the given order, under the given environment fingerprint.
// It is the only supported way to build a Snapshot for Save/Encode:
// Snapshot and its QueryPlans/Entry rows are shared immutable once
// handed out, so construction stays inside this package.
func NewSnapshot(fingerprint uint64, caches []*inum.Cache) *Snapshot {
	snap := &Snapshot{
		Fingerprint: fingerprint,
		Queries:     make([]QueryPlans, 0, len(caches)),
	}
	for _, c := range caches {
		snap.Queries = append(snap.Queries, FromCache(c))
	}
	return snap
}

// FromCache extracts a query's slim plan representation from a built
// cache (tree-backed or already slim — only the decomposition is read).
func FromCache(c *inum.Cache) QueryPlans {
	qp := QueryPlans{
		Name:    c.Q.Name,
		SQL:     c.Q.SQL,
		NRels:   len(c.Q.Rels),
		Entries: make([]Entry, len(c.Plans)),
	}
	for i, cp := range c.Plans {
		pk, coefs := cp.PackedLeaves()
		qp.Entries[i] = Entry{Internal: cp.Internal, Packed: pk, Coefs: coefs}
	}
	return qp
}

// ToCache reconstructs a slim cache over the analysed query from its
// stored plans. The analysis must describe the same query the snapshot
// was built from (same relation count; the caller matches names); entry
// order, internal-cost bits and leaf requirements are restored exactly,
// so Cost and BaseLeafCosts answers match the original cache bit for bit.
func ToCache(a *optimizer.Analysis, qp QueryPlans) (*inum.Cache, error) {
	if len(a.Q.Rels) != qp.NRels {
		return nil, fmt.Errorf("plancache: query %s has %d relations, snapshot stored %d",
			a.Q.Name, len(a.Q.Rels), qp.NRels)
	}
	c := inum.NewSlimCache(a)
	for _, e := range qp.Entries {
		if len(e.Packed) != qp.NRels || len(e.Coefs) != qp.NRels {
			return nil, fmt.Errorf("plancache: query %s: entry with %d leaves and %d coefficients for %d relations",
				qp.Name, len(e.Packed), len(e.Coefs), qp.NRels)
		}
		if _, err := c.AddSlim(e.Internal, e.Packed, e.Coefs); err != nil {
			return nil, fmt.Errorf("plancache: query %s: %w", qp.Name, err)
		}
	}
	c.Seal()
	c.Stats.Mem = c.MemStats()
	return c, nil
}

// fpHasher streams fingerprint fields into an FNV-1a hash with a reused
// length buffer, so Fingerprint and TableFingerprints hash the exact same
// field sequence per table.
type fpHasher struct {
	h   hash.Hash64
	buf []byte
}

func newFPHasher() *fpHasher {
	return &fpHasher{h: fnv.New64a(), buf: make([]byte, 8)}
}

func (f *fpHasher) u64(v uint64) {
	binary.LittleEndian.PutUint64(f.buf, v)
	f.h.Write(f.buf)
}
func (f *fpHasher) i64(v int64)   { f.u64(uint64(v)) }
func (f *fpHasher) f64(v float64) { f.u64(math.Float64bits(v)) }
func (f *fpHasher) str(s string) {
	f.u64(uint64(len(s)))
	io.WriteString(f.h, s)
}

// params hashes the cost-model parameters every stored cost depends on.
func (f *fpHasher) params(params optimizer.CostParams) {
	f.f64(params.SeqPageCost)
	f.f64(params.RandomPageCost)
	f.f64(params.CPUTupleCost)
	f.f64(params.CPUIndexTupleCost)
	f.f64(params.CPUOperatorCost)
}

// table hashes one catalog table: row counts, pages, columns with
// widths/NDVs/domains, the statistics attached to each column, and the
// foreign keys.
func (f *fpHasher) table(t *catalog.Table, st *stats.Store) {
	f.str(t.Name)
	f.i64(t.RowCount)
	f.i64(t.Pages)
	for _, col := range t.Columns {
		f.str(col.Name)
		f.i64(int64(col.Type))
		f.i64(int64(col.AvgWidth))
		f.i64(col.NDV)
		f.i64(col.Min)
		f.i64(col.Max)
		if col.NotNull {
			f.u64(1)
		} else {
			f.u64(0)
		}
		if st == nil {
			continue
		}
		cs := st.Get(t.Name, col.Name)
		if cs == nil {
			continue
		}
		f.str("stats")
		f.i64(cs.Rows)
		f.i64(cs.Distinct)
		f.i64(cs.Min)
		f.i64(cs.Max)
		if cs.Hist != nil {
			f.i64(cs.Hist.Rows)
			f.i64(cs.Hist.Distinct)
			for _, b := range cs.Hist.Bounds {
				f.i64(b)
			}
		}
	}
	for _, fk := range t.ForeignKeys {
		f.str(fk.Column)
		f.str(fk.RefTable)
		f.str(fk.RefColumn)
	}
}

// Fingerprint hashes everything the stored costs depend on: every catalog
// table (row counts, pages, columns with widths/NDVs/domains, foreign
// keys) in registration order, the statistics attached to each of its
// columns, and the cost-model parameters. Two environments with equal
// fingerprints cost plans identically, so a snapshot built under one is
// exact under the other; any schema, statistics or parameter drift
// changes the fingerprint and gets the snapshot rejected at load.
func Fingerprint(cat *catalog.Catalog, st *stats.Store, params optimizer.CostParams) uint64 {
	f := newFPHasher()
	f.str("pinum-plancache-fp-v1")
	f.params(params)
	for _, t := range cat.Tables() {
		f.table(t, st)
	}
	return f.h.Sum64()
}

// TableFingerprints hashes each catalog table independently (same field
// walk as Fingerprint, same cost parameters mixed into every hash). Two
// environments agreeing on a table's fingerprint cost every plan touching
// only that table's statistics identically, so a reload can re-optimize
// just the queries whose referenced tables moved and reuse the rest of
// the snapshot verbatim.
func TableFingerprints(cat *catalog.Catalog, st *stats.Store, params optimizer.CostParams) map[string]uint64 {
	tables := cat.Tables()
	out := make(map[string]uint64, len(tables))
	for _, t := range tables {
		f := newFPHasher()
		f.str("pinum-plancache-tablefp-v1")
		f.params(params)
		f.table(t, st)
		out[t.Name] = f.h.Sum64()
	}
	return out
}

// ------------------------------------------------------------- codec ----

// magic identifies the format; its last byte is the version. Version 2
// switched entries to packed interned leaves (v1 stored per-leaf column
// strings through a pool); v1 snapshots are rejected as stale.
var magic = [8]byte{'P', 'I', 'N', 'U', 'M', 'P', 'C', 2}

// Decode sanity caps: a snapshot exceeding any of these is rejected as
// corrupt rather than allocated for.
const (
	maxQueries = 1 << 20
	maxRels    = 64
	maxEntries = 1 << 24
	maxStrLen  = 1 << 20
)

// hashWriter tees every written byte into a running FNV-1a checksum.
type hashWriter struct {
	w   io.Writer
	sum uint64
	err error
}

const (
	fnvOffset = 14695981039346656037
	fnvPrime  = 1099511628211
)

func (hw *hashWriter) write(p []byte) {
	if hw.err != nil {
		return
	}
	for _, b := range p {
		hw.sum = (hw.sum ^ uint64(b)) * fnvPrime
	}
	_, hw.err = hw.w.Write(p)
}

func (hw *hashWriter) u16(v uint16) {
	var b [2]byte
	binary.LittleEndian.PutUint16(b[:], v)
	hw.write(b[:])
}

func (hw *hashWriter) u32(v uint32) {
	var b [4]byte
	binary.LittleEndian.PutUint32(b[:], v)
	hw.write(b[:])
}

func (hw *hashWriter) u64(v uint64) {
	var b [8]byte
	binary.LittleEndian.PutUint64(b[:], v)
	hw.write(b[:])
}

func (hw *hashWriter) str(s string) {
	hw.u32(uint32(len(s)))
	hw.write([]byte(s))
}

// Encode writes the snapshot in the deterministic v2 binary format:
// little-endian fixed-width integers, float64s as raw IEEE-754 bits, and
// per-relation leaves as packed interned identities (see optimizer.PackLeaf
// — no column strings on the wire), closed by an FNV-1a checksum over
// everything before it. The same snapshot always encodes to the same
// bytes, so encode→decode→re-encode is byte-identical.
func Encode(w io.Writer, s *Snapshot) error {
	hw := &hashWriter{w: w, sum: fnvOffset}
	hw.write(magic[:])
	hw.u64(s.Fingerprint)
	hw.u32(uint32(len(s.Queries)))
	for _, qp := range s.Queries {
		if err := encodeQuery(hw, &qp); err != nil {
			return err
		}
	}
	if hw.err != nil {
		return hw.err
	}
	var b [8]byte
	binary.LittleEndian.PutUint64(b[:], hw.sum)
	_, err := w.Write(b[:])
	return err
}

func encodeQuery(hw *hashWriter, qp *QueryPlans) error {
	if qp.NRels <= 0 || qp.NRels > maxRels {
		return fmt.Errorf("plancache: query %s: bad relation count %d", qp.Name, qp.NRels)
	}
	hw.str(qp.Name)
	hw.str(qp.SQL)
	hw.u32(uint32(qp.NRels))

	hw.u32(uint32(len(qp.Entries)))
	for _, e := range qp.Entries {
		if len(e.Packed) != qp.NRels || len(e.Coefs) != qp.NRels {
			return fmt.Errorf("plancache: query %s: entry with %d leaves and %d coefficients for %d relations",
				qp.Name, len(e.Packed), len(e.Coefs), qp.NRels)
		}
		hw.u64(math.Float64bits(e.Internal))
		for rel, pk := range e.Packed {
			if err := checkPackedLeaf(pk); err != nil {
				return fmt.Errorf("plancache: query %s: %w", qp.Name, err)
			}
			hw.u16(pk)
			hw.u64(math.Float64bits(e.Coefs[rel]))
		}
	}
	return hw.err
}

// checkPackedLeaf is the codec's structural validation of one packed leaf:
// a known access mode, an order id present exactly when the mode requires
// a column. Id range against the query's interning is ToCache's job (the
// codec alone has no analysis).
func checkPackedLeaf(pk uint16) error {
	mode := optimizer.AccessMode(pk >> 14)
	id := pk & (1<<14 - 1)
	if mode > optimizer.AccessLookup {
		return fmt.Errorf("invalid access mode %d in packed leaf", mode)
	}
	if (mode == optimizer.AccessAny) != (id == 0) {
		return fmt.Errorf("packed leaf %#04x: mode %v with order id %d", pk, mode, id)
	}
	return nil
}

// reader decodes the byte stream with bounds checking and the same
// running checksum the encoder produced.
type reader struct {
	buf []byte
	off int
	sum uint64
}

// canHold rejects a count field whose minimally-encoded payload could
// not fit in the remaining bytes, so a corrupted count is refused before
// anything is allocated for it (a crafted small file must not provoke a
// huge allocation just to fail the checksum later).
func (r *reader) canHold(count uint32, minItemBytes int) bool {
	return int64(count)*int64(minItemBytes) <= int64(len(r.buf)-r.off)
}

func (r *reader) take(n int) ([]byte, error) {
	if n < 0 || r.off+n > len(r.buf) {
		return nil, fmt.Errorf("plancache: snapshot truncated at byte %d", r.off)
	}
	p := r.buf[r.off : r.off+n]
	r.off += n
	for _, b := range p {
		r.sum = (r.sum ^ uint64(b)) * fnvPrime
	}
	return p, nil
}

func (r *reader) u16() (uint16, error) {
	p, err := r.take(2)
	if err != nil {
		return 0, err
	}
	return binary.LittleEndian.Uint16(p), nil
}

func (r *reader) u32() (uint32, error) {
	p, err := r.take(4)
	if err != nil {
		return 0, err
	}
	return binary.LittleEndian.Uint32(p), nil
}

func (r *reader) u64() (uint64, error) {
	p, err := r.take(8)
	if err != nil {
		return 0, err
	}
	return binary.LittleEndian.Uint64(p), nil
}

func (r *reader) str() (string, error) {
	n, err := r.u32()
	if err != nil {
		return "", err
	}
	if n > maxStrLen {
		return "", fmt.Errorf("plancache: implausible string length %d", n)
	}
	p, err := r.take(int(n))
	if err != nil {
		return "", err
	}
	return string(p), nil
}

// Decode reads a v2 snapshot, verifying the magic, version, structural
// bounds and trailing checksum. It does NOT verify the fingerprint —
// callers must compare Snapshot.Fingerprint against their environment's
// (see Fingerprint) before trusting any stored cost.
func Decode(data []byte) (*Snapshot, error) {
	if err := faultpoint.Hit("plancache.decode"); err != nil {
		return nil, fmt.Errorf("plancache: %w", err)
	}
	r := &reader{buf: data, sum: fnvOffset}
	head, err := r.take(8)
	if err != nil {
		return nil, err
	}
	for i := 0; i < 7; i++ {
		if head[i] != magic[i] {
			return nil, fmt.Errorf("plancache: not a plan-cache snapshot (bad magic)")
		}
	}
	if head[7] != magic[7] {
		return nil, fmt.Errorf("plancache: unsupported snapshot version %d (want %d)", head[7], magic[7])
	}
	s := &Snapshot{}
	if s.Fingerprint, err = r.u64(); err != nil {
		return nil, err
	}
	nq, err := r.u32()
	if err != nil {
		return nil, err
	}
	// Each query needs at least its three header fields plus two counts.
	if nq > maxQueries || !r.canHold(nq, 20) {
		return nil, fmt.Errorf("plancache: implausible query count %d", nq)
	}
	s.Queries = make([]QueryPlans, nq)
	for i := range s.Queries {
		if err := decodeQuery(r, &s.Queries[i]); err != nil {
			return nil, err
		}
	}
	want := r.sum
	got, err := r.u64() // the stored checksum is not part of itself
	if err != nil {
		return nil, err
	}
	if got != want {
		return nil, fmt.Errorf("plancache: checksum mismatch (stored %016x, computed %016x): snapshot corrupted", got, want)
	}
	if r.off != len(r.buf) {
		return nil, fmt.Errorf("plancache: %d trailing bytes after snapshot", len(r.buf)-r.off)
	}
	return s, nil
}

func decodeQuery(r *reader, qp *QueryPlans) error {
	var err error
	if qp.Name, err = r.str(); err != nil {
		return err
	}
	if qp.SQL, err = r.str(); err != nil {
		return err
	}
	nRels, err := r.u32()
	if err != nil {
		return err
	}
	if nRels == 0 || nRels > maxRels {
		return fmt.Errorf("plancache: query %s: bad relation count %d", qp.Name, nRels)
	}
	qp.NRels = int(nRels)

	nEntries, err := r.u32()
	if err != nil {
		return err
	}
	if nEntries > maxEntries || !r.canHold(nEntries, 8+10*qp.NRels) {
		return fmt.Errorf("plancache: query %s: implausible entry count %d", qp.Name, nEntries)
	}
	qp.Entries = make([]Entry, nEntries)
	for i := range qp.Entries {
		e := &qp.Entries[i]
		bits, err := r.u64()
		if err != nil {
			return err
		}
		e.Internal = math.Float64frombits(bits)
		e.Packed = make([]uint16, qp.NRels)
		e.Coefs = make([]float64, qp.NRels)
		for rel := range e.Packed {
			pk, err := r.u16()
			if err != nil {
				return err
			}
			if err := checkPackedLeaf(pk); err != nil {
				return fmt.Errorf("plancache: query %s: %w", qp.Name, err)
			}
			coefBits, err := r.u64()
			if err != nil {
				return err
			}
			e.Packed[rel] = pk
			e.Coefs[rel] = math.Float64frombits(coefBits)
		}
	}
	return nil
}

// BuildCaches matches snapshot queries to the workload by name,
// verifying the stored SQL still equals the workload's, and reconstructs
// one slim cache per query (aligned with queries/analyses). Both the
// public LoadCaches facade and the serving layer's startup go through
// this one matcher, so their validation cannot drift apart.
func BuildCaches(snap *Snapshot, queries []*query.Query, analyses []*optimizer.Analysis) ([]*inum.Cache, error) {
	byName := make(map[string]*QueryPlans, len(snap.Queries))
	for i := range snap.Queries {
		byName[snap.Queries[i].Name] = &snap.Queries[i]
	}
	caches := make([]*inum.Cache, len(queries))
	for i, q := range queries {
		qp := byName[q.Name]
		if qp == nil {
			return nil, fmt.Errorf("plancache: snapshot has no plans for query %s", q.Name)
		}
		if qp.SQL != q.SQL {
			return nil, fmt.Errorf("plancache: snapshot stored different SQL for query %s: rebuild the snapshot", q.Name)
		}
		c, err := ToCache(analyses[i], *qp)
		if err != nil {
			return nil, err
		}
		caches[i] = c
	}
	return caches, nil
}

// ------------------------------------------------------------- files ----

// ErrPartialWrite marks a snapshot save that failed before its bytes were
// durably on disk: the temp-file write, fsync or close went wrong, so the
// target file was never replaced. Callers distinguish this (retryable,
// old snapshot intact) from encode errors with errors.Is.
var ErrPartialWrite = errors.New("plancache: partial snapshot write")

// Save encodes the snapshot and writes it crash-safely: encode in memory,
// write a temp file beside the target, fsync the temp file, rename it
// over the target, then fsync the parent directory so the rename itself
// is durable. A crash mid-save or a concurrent reader therefore sees
// either the old complete snapshot or the new one, never a torn file —
// and a crash right after Save returns cannot roll the rename back or
// resurrect unsynced bytes. Failures on the temp-file path are wrapped in
// ErrPartialWrite; the target is only replaced by fully synced bytes.
func Save(path string, s *Snapshot) error {
	var buf bytes.Buffer
	if err := Encode(&buf, s); err != nil {
		return err
	}
	tmp, err := os.CreateTemp(filepath.Dir(path), filepath.Base(path)+".tmp*")
	if err != nil {
		return fmt.Errorf("%w: %w", ErrPartialWrite, err)
	}
	if ferr := faultpoint.Hit("plancache.save.write"); ferr != nil {
		// Simulate a torn write followed by a crash: half the bytes reach
		// the temp file and nothing cleans it up. The live snapshot must
		// survive this — the rename below never runs.
		tmp.Write(buf.Bytes()[:buf.Len()/2])
		tmp.Close()
		return fmt.Errorf("%w: %w", ErrPartialWrite, ferr)
	}
	if _, err := tmp.Write(buf.Bytes()); err != nil {
		tmp.Close()
		os.Remove(tmp.Name())
		return fmt.Errorf("%w: %w", ErrPartialWrite, err)
	}
	// fsync before the rename: without it the rename can commit a name
	// pointing at bytes the kernel never flushed, and a crash after Save
	// leaves a complete-looking file with a truncated tail.
	if err := tmp.Sync(); err != nil {
		tmp.Close()
		os.Remove(tmp.Name())
		return fmt.Errorf("%w: %w", ErrPartialWrite, err)
	}
	if err := tmp.Close(); err != nil {
		os.Remove(tmp.Name())
		return fmt.Errorf("%w: %w", ErrPartialWrite, err)
	}
	if err := os.Chmod(tmp.Name(), 0o644); err != nil {
		os.Remove(tmp.Name())
		return fmt.Errorf("%w: %w", ErrPartialWrite, err)
	}
	if err := os.Rename(tmp.Name(), path); err != nil {
		os.Remove(tmp.Name())
		return err
	}
	// fsync the parent directory so the rename (the commit point) is
	// durable too; without it a crash can resurrect the old file.
	return syncDir(filepath.Dir(path))
}

// syncDir fsyncs a directory, making a just-committed rename durable.
// Platforms that refuse to fsync directories are tolerated (there is
// nothing more a portable caller can do).
func syncDir(dir string) error {
	d, err := os.Open(dir)
	if err != nil {
		return err
	}
	defer d.Close()
	if err := d.Sync(); err != nil && !errors.Is(err, os.ErrInvalid) {
		return err
	}
	return nil
}

// Load reads, decodes and fingerprint-checks a snapshot: want must be the
// loading environment's Fingerprint, and a mismatch — schema, statistics
// or cost parameters drifted since the snapshot was built — is an error.
func Load(path string, want uint64) (*Snapshot, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	s, err := Decode(data)
	if err != nil {
		return nil, err
	}
	if s.Fingerprint != want {
		return nil, fmt.Errorf("plancache: snapshot %s was built for a different environment (fingerprint %016x, current %016x): rebuild the snapshot",
			path, s.Fingerprint, want)
	}
	return s, nil
}

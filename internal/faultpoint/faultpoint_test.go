package faultpoint

import (
	"errors"
	"testing"
	"time"
)

func TestDormantPointReturnsNil(t *testing.T) {
	t.Cleanup(Reset)
	if err := Hit("never.configured"); err != nil {
		t.Fatalf("dormant point returned %v", err)
	}
}

func TestErrorInjectionAndCounting(t *testing.T) {
	t.Cleanup(Reset)
	if err := Set("p.err", "error"); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 3; i++ {
		err := Hit("p.err")
		if !errors.Is(err, ErrInjected) {
			t.Fatalf("hit %d: got %v, want ErrInjected", i, err)
		}
	}
	if got := Count("p.err"); got != 3 {
		t.Fatalf("Count = %d, want 3", got)
	}
	// Once any fault is armed in the process, other points count too.
	Hit("p.other")
	if got := Count("p.other"); got != 1 {
		t.Fatalf("unarmed point count = %d, want 1", got)
	}
}

func TestCountLimitedFaultHeals(t *testing.T) {
	t.Cleanup(Reset)
	if err := Set("p.twice", "error:2"); err != nil {
		t.Fatal(err)
	}
	if err := Hit("p.twice"); !errors.Is(err, ErrInjected) {
		t.Fatalf("first hit: %v", err)
	}
	if err := Hit("p.twice"); !errors.Is(err, ErrInjected) {
		t.Fatalf("second hit: %v", err)
	}
	if err := Hit("p.twice"); err != nil {
		t.Fatalf("third hit should heal, got %v", err)
	}
}

func TestPanicInjection(t *testing.T) {
	t.Cleanup(Reset)
	if err := Set("p.boom", "panic:1"); err != nil {
		t.Fatal(err)
	}
	func() {
		defer func() {
			if recover() == nil {
				t.Error("expected an injected panic")
			}
		}()
		Hit("p.boom")
	}()
	if err := Hit("p.boom"); err != nil {
		t.Fatalf("after the one panic the point should be dormant, got %v", err)
	}
}

func TestDelayInjection(t *testing.T) {
	t.Cleanup(Reset)
	if err := Set("p.slow", "delay=30ms"); err != nil {
		t.Fatal(err)
	}
	start := time.Now()
	if err := Hit("p.slow"); err != nil {
		t.Fatal(err)
	}
	if took := time.Since(start); took < 25*time.Millisecond {
		t.Fatalf("delay fault slept %v, want >= ~30ms", took)
	}
}

func TestClearDisarms(t *testing.T) {
	t.Cleanup(Reset)
	if err := Set("p.clear", "error"); err != nil {
		t.Fatal(err)
	}
	Clear("p.clear")
	if err := Hit("p.clear"); err != nil {
		t.Fatalf("cleared point returned %v", err)
	}
}

func TestConfigureFromEnv(t *testing.T) {
	t.Cleanup(Reset)
	if err := ConfigureFromEnv("a.b=error:1; c.d=delay=1ms ;"); err != nil {
		t.Fatal(err)
	}
	if err := Hit("a.b"); !errors.Is(err, ErrInjected) {
		t.Fatalf("a.b: %v", err)
	}
	if err := Hit("c.d"); err != nil {
		t.Fatalf("c.d: %v", err)
	}
	if err := ConfigureFromEnv(""); err != nil {
		t.Fatalf("empty value: %v", err)
	}
	for _, bad := range []string{"nospec", "x=unknown", "x=delay=zzz", "x=error:-1"} {
		if err := ConfigureFromEnv(bad); err == nil {
			t.Errorf("ConfigureFromEnv(%q) accepted", bad)
		}
	}
}

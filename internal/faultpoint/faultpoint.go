// Package faultpoint implements named fault-injection points: zero-cost
// hooks compiled into error-handling paths (snapshot decode, crash-safe
// save, background rebuild, tenant cold-load and eviction) so tests and
// operational drills can prove the degradation behavior around them
// instead of trusting it.
//
// A point is a dormant call site — faultpoint.Hit("plancache.decode") —
// that returns nil until a fault is armed for its name. Faults are armed
// programmatically (tests: Set/Clear/Reset) or from the environment
// (operations: PINUM_FAULTPOINTS="serve.rebuild=error:2;plancache.decode=panic"
// parsed by ConfigureFromEnv, which commands opt into at startup). Three
// modes exist:
//
//	error          Hit returns an ErrInjected-wrapped error
//	panic          Hit panics
//	delay=<dur>    Hit sleeps for dur, then returns nil
//
// A spec may append :N to fire only on the first N hits ("error:2" fails
// twice, then heals), which is how retry/backoff recovery paths are
// exercised end to end. Hits are counted whether or not a fault fires, so
// tests can assert a guarded path actually ran.
//
// The fast path when nothing is armed is one atomic load; production
// binaries that never call ConfigureFromEnv or Set pay only that.
package faultpoint

import (
	"errors"
	"fmt"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"
)

// ErrInjected is the root of every injected error; callers distinguish
// injected failures from real ones with errors.Is.
var ErrInjected = errors.New("faultpoint: injected failure")

// mode is what an armed fault does on a hit.
type mode int

const (
	modeError mode = iota
	modePanic
	modeDelay
)

// fault is one armed fault.
type fault struct {
	mode mode
	// remaining is how many more hits fire, or -1 for unlimited.
	remaining int64
	delay     time.Duration
}

var (
	// armed counts configured faults; Hit returns immediately while it
	// is zero, so dormant points cost one atomic load.
	armed atomic.Int64

	mu     sync.Mutex
	faults = map[string]*fault{}
	hits   = map[string]*atomic.Int64{}
)

// Hit is the injection point: it returns the armed fault's error (or
// panics, or sleeps) for this name, and nil when the name is dormant.
// Every call is counted, armed or not, once any fault has ever been
// configured in the process.
func Hit(name string) error {
	if armed.Load() == 0 {
		return nil
	}
	mu.Lock()
	counter := hits[name]
	if counter == nil {
		counter = &atomic.Int64{}
		hits[name] = counter
	}
	counter.Add(1)
	f := faults[name]
	if f == nil {
		mu.Unlock()
		return nil
	}
	if f.remaining == 0 {
		mu.Unlock()
		return nil
	}
	if f.remaining > 0 {
		f.remaining--
	}
	m, d := f.mode, f.delay
	mu.Unlock()

	switch m {
	case modePanic:
		panic(fmt.Sprintf("faultpoint: injected panic at %q", name))
	case modeDelay:
		time.Sleep(d)
		return nil
	default:
		return fmt.Errorf("%w at %q", ErrInjected, name)
	}
}

// Count returns how many times the named point has been hit since the
// first fault was configured in this process (dormant processes do not
// count hits at all).
func Count(name string) int64 {
	mu.Lock()
	defer mu.Unlock()
	if c := hits[name]; c != nil {
		return c.Load()
	}
	return 0
}

// Set arms one fault. spec is mode[:N] where mode is "error", "panic" or
// "delay=<duration>", and N caps how many hits fire (absent = unlimited).
func Set(name, spec string) error {
	f, err := parseSpec(spec)
	if err != nil {
		return fmt.Errorf("faultpoint %q: %w", name, err)
	}
	mu.Lock()
	defer mu.Unlock()
	if _, exists := faults[name]; !exists {
		armed.Add(1)
	}
	faults[name] = f
	return nil
}

// Clear disarms one fault (hit counting continues).
func Clear(name string) {
	mu.Lock()
	defer mu.Unlock()
	if _, exists := faults[name]; exists {
		delete(faults, name)
		armed.Add(-1)
	}
}

// Reset disarms every fault and zeroes every hit counter. Tests pair Set
// with t.Cleanup(faultpoint.Reset).
func Reset() {
	mu.Lock()
	defer mu.Unlock()
	armed.Add(-int64(len(faults)))
	faults = map[string]*fault{}
	hits = map[string]*atomic.Int64{}
}

// ConfigureFromEnv arms faults from a semicolon-separated list of
// name=spec pairs, e.g. "serve.rebuild=error:2;plancache.decode=panic".
// Commands that want environment-driven injection call this explicitly at
// startup with os.Getenv("PINUM_FAULTPOINTS"); an empty value is a no-op.
func ConfigureFromEnv(value string) error {
	if value == "" {
		return nil
	}
	for _, pair := range strings.Split(value, ";") {
		pair = strings.TrimSpace(pair)
		if pair == "" {
			continue
		}
		name, spec, ok := strings.Cut(pair, "=")
		if !ok {
			return fmt.Errorf("faultpoint: bad pair %q, want name=spec", pair)
		}
		if err := Set(strings.TrimSpace(name), strings.TrimSpace(spec)); err != nil {
			return err
		}
	}
	return nil
}

// parseSpec parses mode[:N] with mode error | panic | delay=<duration>.
func parseSpec(spec string) (*fault, error) {
	f := &fault{remaining: -1}
	base := spec
	if i := strings.LastIndex(spec, ":"); i >= 0 {
		if n, err := strconv.ParseInt(spec[i+1:], 10, 64); err == nil {
			if n < 0 {
				return nil, fmt.Errorf("bad hit count %d", n)
			}
			f.remaining = n
			base = spec[:i]
		}
	}
	switch {
	case base == "error":
		f.mode = modeError
	case base == "panic":
		f.mode = modePanic
	case strings.HasPrefix(base, "delay="):
		d, err := time.ParseDuration(strings.TrimPrefix(base, "delay="))
		if err != nil || d < 0 {
			return nil, fmt.Errorf("bad delay spec %q", base)
		}
		f.mode = modeDelay
		f.delay = d
	default:
		return nil, fmt.Errorf("unknown fault spec %q (want error, panic or delay=<duration>, each optionally :N)", spec)
	}
	return f, nil
}

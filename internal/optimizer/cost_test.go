package optimizer

import (
	"testing"

	"github.com/pinumdb/pinum/internal/catalog"
	"github.com/pinumdb/pinum/internal/storage"
)

func costerTable() *catalog.Table {
	t := &catalog.Table{Name: "t", RowCount: 1_000_000}
	for _, n := range []string{"id", "a", "b"} {
		t.Columns = append(t.Columns, &catalog.Column{Name: n, Type: catalog.Int, NDV: 1000, Min: 1, Max: 1000})
	}
	return t
}

func TestSeqScanCostScalesWithSize(t *testing.T) {
	c := Coster{P: DefaultCostParams()}
	small := c.SeqScanCost(100, 10_000, 1)
	big := c.SeqScanCost(1000, 100_000, 1)
	if big <= small {
		t.Errorf("bigger table not costlier: %f vs %f", big, small)
	}
	withFilters := c.SeqScanCost(100, 10_000, 3)
	if withFilters <= small {
		t.Error("extra filters did not add CPU cost")
	}
}

func TestIndexScanCostSelectivityMonotone(t *testing.T) {
	c := Coster{P: DefaultCostParams()}
	tb := costerTable()
	ix := storage.HypotheticalIndex("ix", tb, []string{"a"})
	prev := -1.0
	for _, sel := range []float64{0.001, 0.01, 0.1, 0.5, 1.0} {
		cost := c.IndexScanCost(tb, ix, sel, false, 0)
		if cost <= prev {
			t.Errorf("cost not increasing at sel=%.3f: %f after %f", sel, cost, prev)
		}
		prev = cost
	}
	// Out-of-range selectivities clamp rather than explode.
	if c.IndexScanCost(tb, ix, -1, false, 0) > c.IndexScanCost(tb, ix, 0.01, false, 0) {
		t.Error("negative selectivity not clamped")
	}
	if c.IndexScanCost(tb, ix, 2, false, 0) != c.IndexScanCost(tb, ix, 1, false, 0) {
		t.Error("selectivity above 1 not clamped")
	}
}

func TestIndexOnlyCheaperAtEqualSelectivity(t *testing.T) {
	c := Coster{P: DefaultCostParams()}
	tb := costerTable()
	ix := storage.HypotheticalIndex("ix", tb, []string{"a", "id", "b"})
	ioCost := c.IndexScanCost(tb, ix, 0.05, true, 0)
	heapCost := c.IndexScanCost(tb, ix, 0.05, false, 0)
	if ioCost >= heapCost {
		t.Errorf("index-only (%f) not cheaper than heap-fetching (%f)", ioCost, heapCost)
	}
}

func TestHighSelectivityFavorsSeqScan(t *testing.T) {
	// At 50% selectivity a heap-fetching index scan must lose to the
	// sequential scan — the planner behaviour behind E5's redundancy.
	c := Coster{P: DefaultCostParams()}
	tb := costerTable()
	ix := storage.HypotheticalIndex("thin", tb, []string{"a"})
	seq := c.SeqScanCost(storage.TablePages(tb), tb.RowCount, 1)
	idx := c.IndexScanCost(tb, ix, 0.5, false, 1)
	if idx <= seq {
		t.Errorf("unselective index scan (%f) beat seq scan (%f)", idx, seq)
	}
}

func TestSortCostSuperlinear(t *testing.T) {
	c := Coster{P: DefaultCostParams()}
	if c.SortCost(1) >= c.SortCost(100) {
		t.Error("sort cost not increasing")
	}
	// n log n: doubling rows more than doubles cost.
	if 2*c.SortCost(10_000) >= c.SortCost(20_000)*1.001 {
		// cost(2n) = 2n·log(2n) > 2·(n·log n); allow for float fuzz.
		t.Error("sort cost not superlinear")
	}
}

func TestLookupCostComponents(t *testing.T) {
	c := Coster{P: DefaultCostParams()}
	tb := costerTable()
	ix := storage.HypotheticalIndex("ix", tb, []string{"a"})
	one := c.LookupCost(tb, ix, 1, false)
	many := c.LookupCost(tb, ix, 100, false)
	if many <= one {
		t.Error("more matches per probe not costlier")
	}
	covered := c.LookupCost(tb, ix, 100, true)
	if covered >= many {
		t.Error("index-only lookup not cheaper")
	}
}

func TestJoinCostsPositiveAndOrdered(t *testing.T) {
	c := Coster{P: DefaultCostParams()}
	hj := c.HashJoinCost(1000, 1000, 500)
	mj := c.MergeJoinCost(1000, 1000, 500)
	nl := c.NestLoopCost(1000, 500)
	for name, v := range map[string]float64{"hash": hj, "merge": mj, "nl": nl} {
		if v <= 0 {
			t.Errorf("%s join cost %f not positive", name, v)
		}
	}
	// With pre-sorted inputs merge beats hash (no build side).
	if mj >= hj {
		t.Errorf("merge join on sorted inputs (%f) not cheaper than hash join (%f)", mj, hj)
	}
}

func TestAggCosts(t *testing.T) {
	c := Coster{P: DefaultCostParams()}
	if c.SortedAggCost(10_000, 100, 2) >= c.HashAggCost(10_000, 100, 2) {
		t.Error("sorted aggregation over pre-sorted input should be cheaper than hash aggregation")
	}
	if c.HashAggCost(10_000, 100, 0) <= 0 {
		t.Error("zero group columns mishandled")
	}
}

func TestInMemoryProfileReducesPageCosts(t *testing.T) {
	d, m := DefaultCostParams(), InMemoryCostParams()
	if m.SeqPageCost >= d.SeqPageCost || m.RandomPageCost >= d.RandomPageCost {
		t.Error("in-memory profile should reduce page costs")
	}
	if m.CPUTupleCost != d.CPUTupleCost {
		t.Error("CPU tuple cost should be the common yardstick")
	}
}

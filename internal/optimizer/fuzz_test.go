// Native Go fuzz target cross-checking the fast (DPccp) planner against
// the reference dense sweep. The fuzzer drives the whole input space the
// equivalence suite samples: join-graph shape, relation count, random-graph
// density, generation seed, Options bits, and the configuration choice.
//
// Run locally with:
//
//	go test ./internal/optimizer -run=NONE -fuzz=FuzzOptimizeEquivalence -fuzztime=30s
//
// CI performs a short smoke run on every push.
package optimizer_test

import (
	"fmt"
	"math/rand"
	"testing"

	"github.com/pinumdb/pinum/internal/optimizer"
	"github.com/pinumdb/pinum/internal/workload"
)

func FuzzOptimizeEquivalence(f *testing.F) {
	// Seed corpus: one entry per shape at 4 relations with the ExportAll
	// call's options, one at 4 relations with the PreciseNLJ refinement,
	// plus a pure random tree and a tiny everything-on query.
	for i := range workload.Shapes {
		f.Add(uint8(i), uint8(2), uint8(128), int64(42), uint8(3))
		f.Add(uint8(i), uint8(2), uint8(64), int64(7), uint8(11))
	}
	f.Add(uint8(workload.ShapeRandom), uint8(3), uint8(0), int64(1), uint8(19))
	f.Add(uint8(workload.ShapeChain), uint8(0), uint8(255), int64(99), uint8(31))
	// The wide lane: plan identities past the packed-key invariants, with
	// the full zombie-mode option set (PreciseNLJ+PaperPrune).
	f.Add(uint8(workload.ShapeWideOrders), uint8(0), uint8(0), int64(91), uint8(3))
	f.Add(uint8(workload.ShapeWideOrders), uint8(0), uint8(0), int64(91), uint8(27))
	f.Add(uint8(workload.ShapeWideGroup), uint8(1), uint8(0), int64(92), uint8(3))
	f.Add(uint8(workload.ShapeWideGroup), uint8(1), uint8(0), int64(92), uint8(27))

	f.Fuzz(func(t *testing.T, shapeB, relsB, densB uint8, seed int64, optB uint8) {
		spec := workload.ShapeSpec{
			Shape:   workload.Shapes[int(shapeB)%len(workload.Shapes)],
			Rels:    2 + int(relsB)%5, // 2..6 relations keeps one exec fast
			Density: float64(densB) / 255,
			Seed:    seed,
		}
		cat, q, err := workload.ShapeQuery(spec)
		if err != nil {
			t.Skip()
		}
		// The reference oracle sweeps every mask; past 16 relations
		// (wide-chain) there is nothing to compare against.
		if len(q.Rels) > 16 {
			t.Skip()
		}
		// Dense graphs above ~9 clauses make a single ExportAll call take
		// seconds (in both planners); too slow per fuzz exec. Two-relation
		// queries are exempt: wide-orders carries 64 clauses but only one
		// join mask.
		if len(q.Joins) > 9 && len(q.Rels) > 2 {
			t.Skip()
		}
		a, err := optimizer.NewAnalysis(q, nil, optimizer.DefaultCostParams())
		if err != nil || !a.FastPlannable() {
			t.Skip()
		}
		rng := rand.New(rand.NewSource(seed ^ 0x5eed))
		opt := optionsFromBits(optB)
		for ci, cfg := range workload.ShapeConfigs(rng, cat, q, 1) {
			// The label carries the full spec so a CI fuzz failure is
			// reproducible without the runner's ephemeral corpus file.
			label := fmt.Sprintf("fuzz/%s/density=%g/seed=%d/cfg=%d/opt=%+v",
				q.Name, spec.Density, spec.Seed, ci, opt)
			assertPlannersAgree(t, label, a, cfg, opt)
		}
	})
}

package optimizer

import (
	"fmt"
	"strings"

	"github.com/pinumdb/pinum/internal/query"
)

// Explain renders a path tree in an EXPLAIN-like indented format, with
// per-node rows and cumulative cost.
func Explain(p *Path, q *query.Query) string {
	var b strings.Builder
	explainNode(&b, p, q, 0)
	return b.String()
}

func explainNode(b *strings.Builder, p *Path, q *query.Query, depth int) {
	indent := strings.Repeat("  ", depth)
	fmt.Fprintf(b, "%s%s", indent, p.Op)
	switch p.Op {
	case OpSeqScan:
		fmt.Fprintf(b, " on %s", q.RelName(p.BaseRel))
	case OpIndexScan, OpIndexOnlyScan:
		name := "?"
		if p.Index != nil {
			name = p.Index.Name
		}
		fmt.Fprintf(b, " using %s on %s", name, q.RelName(p.BaseRel))
	case OpSort:
		keys := make([]string, len(p.SortKeys))
		for i, k := range p.SortKeys {
			keys[i] = fmt.Sprintf("%s.%s", q.RelName(k.Rel), k.Column)
		}
		fmt.Fprintf(b, " by %s", strings.Join(keys, ", "))
	case OpHashJoin, OpMergeJoin, OpNestLoop, OpNestLoopMat:
		j := p.JoinClause
		fmt.Fprintf(b, " on %s.%s = %s.%s",
			q.RelName(j.Left.Rel), j.Left.Column, q.RelName(j.Right.Rel), j.Right.Column)
	}
	fmt.Fprintf(b, "  (rows=%.0f cost=%.2f)\n", p.Rows, p.Cost)
	switch {
	case p.Child != nil:
		explainNode(b, p.Child, q, depth+1)
	case p.Outer != nil:
		explainNode(b, p.Outer, q, depth+1)
		if p.Inner != nil {
			explainNode(b, p.Inner, q, depth+1)
		}
	}
}

// Insertion-time dominance frontier: the §V-D subsumption rule applied as
// candidates arrive instead of in a per-relation batch pass.
//
// Both planners used to collect every deduplicated (leaf combo, output
// order) key and prune once per finished join relation — a sort plus a
// bucketed all-pairs scan, after materialising a Path for every key. The
// frontier keeps the live (undominated) set ordered as paths arrive, so a
// candidate dominated on arrival is dropped before materialisation, which
// on dense shapes is most of them. frontier_test.go proves the incremental
// and batch prunes agree on real DP populations; the argument is that
// dominance (metric ≤, order satisfaction, combo subsumption — each
// transitive, mutual domination between distinct keys impossible) is a
// strict partial order, so every dominated element has a *live maximal*
// dominator and screening arrivals against live members only is exact.
//
// The protocol, shared verbatim by the packed fast lane (fastplan.go), the
// wide fast lane, and the reference planner's counting mirror:
//
//   - arrival with a known key and metric ≥ the slot's: dedup loss, drop;
//   - improvement of a live slot: reposition in its order bucket, then
//     evict any live slot the improved entry now dominates;
//   - improvement of a dead slot: re-screen at the new metric; revive into
//     the frontier if undominated (keeping the slot's original sequence
//     number, which is the reference planner's first-insertion tie-break);
//   - new key: screen against live entries with metric ≤ the arrival's;
//     dominated arrivals park as dead slots (metric recorded for dedup,
//     no path), undominated ones enter the frontier and run the eviction
//     scan.
//
// Dead slots at collection time are exactly the keys the batch pass would
// have pruned, so PathsPruned accounting stays identical.
package optimizer

import "github.com/pinumdb/pinum/internal/query"

// sortSlotsByMetric orders slot ids by (metric, id) ascending with an
// in-place heapsort: no closure, no allocation (the ROADMAP item 4
// replacement for finishRelFast's sort.SliceStable call). The id tie-break
// makes the order total, so heapsort's instability is unobservable, and
// slot ids are first-arrival order, so ties break exactly like the
// reference planner's stable sort over its insertion-ordered key list.
//
//pinum:hotpath
func sortSlotsByMetric(idx []int32, metric []float64) {
	n := len(idx)
	for i := n/2 - 1; i >= 0; i-- {
		siftSlot(idx, metric, i, n)
	}
	for i := n - 1; i > 0; i-- {
		idx[0], idx[i] = idx[i], idx[0]
		siftSlot(idx, metric, 0, i)
	}
}

//pinum:hotpath
func siftSlot(idx []int32, metric []float64, root, n int) {
	for {
		c := 2*root + 1
		if c >= n {
			return
		}
		if c+1 < n && slotLess(metric, idx[c], idx[c+1]) {
			c++
		}
		if !slotLess(metric, idx[root], idx[c]) {
			return
		}
		idx[root], idx[c] = idx[c], idx[root]
		root = c
	}
}

//pinum:hotpath
func slotLess(metric []float64, a, b int32) bool {
	ma, mb := metric[a], metric[b]
	return ma < mb || (ma == mb && a < b)
}

// frontierSlot is one (leaf combo, output order) key's state in a
// path-keyed frontier. Unlike the packed lane — which identifies dead
// slots by their missing materialisation — the path lane keeps the slot's
// best path even while dead, because zombie-mode screens compare through
// the path's leaf slices; live is the collection flag.
type frontierSlot struct {
	path   *Path
	metric float64
	ord    int32
	// witness is the slot whose domination killed this one (-1 when none):
	// domination between fixed keys is static, so while the witness keeps
	// metric ≤ this slot's (and, in live-only mode, stays live) an
	// improving dead slot stays dead without re-running the screen.
	witness int32
	live    bool
}

// pathFrontier is the frontier over string-keyed materialised paths. It
// serves two roles: the wide fast lane's real pruning structure (plan keys
// too big for planKey), and — with sim set — the reference planner's
// counting mirror, which replays the protocol purely to produce the same
// FrontierInserts/Drops/Evictions counters while the batch pass still
// computes the reference results. The order registry and buckets persist
// across join relations; slots and the key map reset per finishRel.
type pathFrontier struct {
	opt   Options
	stats *PlannerStats
	// sim leaves PathsPruned to the reference planner's own dedup and
	// batch passes; the wide lane counts it here.
	sim bool

	slots []frontierSlot
	byKey map[string]int32

	// Output-order registry with the pairwise prefix-satisfaction matrix,
	// the string-keyed analogue of planCtx's packed registry.
	ords    [][]query.ColRef
	sat     [][]bool
	buckets [][]int32

	idxBuf []int32
}

func newPathFrontier(opt Options, stats *PlannerStats, sim bool) *pathFrontier {
	return &pathFrontier{opt: opt, stats: stats, sim: sim, byKey: make(map[string]int32, 64)}
}

// metricOf is the pruning metric shared with the batch passes: the
// provably-safe internal cost by default, the paper's literal total cost
// under PaperPrune.
func (f *pathFrontier) metricOf(np *Path) float64 {
	if f.opt.PaperPrune {
		return np.Cost
	}
	return np.Internal
}

// subsumes applies the §V-D combo rule between a live slot's path and a
// candidate, matching finishRel's batch subsumption exactly.
//
//pinum:hotpath
func (f *pathFrontier) subsumes(a, b *Path) bool {
	if f.opt.PaperPrune {
		return comboSubsumesByColumn(a.Leaves, b.Leaves, b.Rels)
	}
	return comboSubsumes(a.Leaves, b.Leaves, b.Rels, f.opt.PreciseNLJ)
}

// ordID registers an output order and returns its dense id, extending the
// satisfaction matrix for new entries (the slice-keyed twin of
// planCtx.orderIDPacked; distinct order count is small, so the linear
// probe is cheap).
func (f *pathFrontier) ordID(order []query.ColRef) int32 {
	for i := range f.ords {
		if ordersEqual(f.ords[i], order) {
			return int32(i)
		}
	}
	n := len(f.ords)
	for i := 0; i < n; i++ {
		f.sat[i] = append(f.sat[i], OrderSatisfies(f.ords[i], order))
	}
	row := make([]bool, n+1)
	for j := 0; j < n; j++ {
		row[j] = OrderSatisfies(order, f.ords[j])
	}
	row[n] = true
	f.ords = append(f.ords, order)
	f.sat = append(f.sat, row)
	f.buckets = append(f.buckets, nil)
	return int32(n)
}

func ordersEqual(a, b []query.ColRef) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// add runs one arrival through the frontier protocol — the same branch
// structure, counter emissions, and zombie-mode population semantics as
// the packed lane's frontierAdd (see its comment for why PaperPrune+
// PreciseNLJ needs dead slots kept as dominators).
//
//pinum:hotpath
func (f *pathFrontier) add(key string, np *Path) {
	zombie := f.opt.PaperPrune && f.opt.PreciseNLJ
	m := f.metricOf(np)
	if s, ok := f.byKey[key]; ok {
		sl := &f.slots[s]
		if sl.metric <= m {
			if !f.sim {
				f.stats.PathsPruned++
			}
			return
		}
		if !f.sim {
			f.stats.PathsPruned++ // the displaced incumbent
		}
		if sl.live {
			// Live improvement: the dominator set only shrinks as the
			// metric drops, so no re-screen — reposition and evict.
			f.bucketRemove(s)
			sl.metric = m
			sl.path = np
			f.bucketInsert(s)
			f.evict(s, zombie)
			return
		}
		if zombie {
			f.bucketRemove(s)
			sl.metric = m
			sl.path = np
			dominated := true
			if w := sl.witness; w < 0 || f.slots[w].metric > m {
				d := f.dominated(sl.ord, m, np)
				sl.witness = d
				dominated = d >= 0
			}
			f.bucketInsert(s)
			f.evict(s, zombie)
			if dominated {
				f.stats.FrontierDrops++
				return
			}
			sl.live = true
			f.stats.FrontierInserts++
			return
		}
		sl.metric = m
		sl.path = np
		if w := sl.witness; w >= 0 && f.slots[w].live && f.slots[w].metric <= m {
			f.stats.FrontierDrops++
			return
		}
		if d := f.dominated(sl.ord, m, np); d >= 0 {
			sl.witness = d
			f.stats.FrontierDrops++
			return
		}
		// Revival: the slot re-enters the frontier under its original
		// sequence number, preserving first-arrival tie order.
		sl.witness = -1
		sl.live = true
		f.stats.FrontierInserts++
		f.bucketInsert(s)
		f.evict(s, zombie)
		return
	}
	s := int32(len(f.slots))
	f.byKey[key] = s
	ord := f.ordID(np.Order)
	f.slots = append(f.slots, frontierSlot{path: np, metric: m, ord: ord, witness: -1})
	if zombie {
		d := f.dominated(ord, m, np)
		f.slots[s].witness = d
		f.bucketInsert(s)
		f.evict(s, zombie)
		if d >= 0 {
			f.stats.FrontierDrops++
			return
		}
		f.slots[s].live = true
		f.stats.FrontierInserts++
		return
	}
	if d := f.dominated(ord, m, np); d >= 0 {
		f.slots[s].witness = d
		f.stats.FrontierDrops++
		return
	}
	f.slots[s].live = true
	f.stats.FrontierInserts++
	f.bucketInsert(s)
	f.evict(s, zombie)
}

// dominated screens a candidate against the frontier: any bucket member
// (live, or a zombie-mode dead dominator) with metric ≤ the candidate's
// whose order satisfies the candidate's and whose combo subsumes it.
// Buckets are (metric, slot)-sorted, so each scan stops at the first
// larger metric, like the batch pass over its sorted slice. Returns the
// dominating slot (recorded as the dead slot's witness) or -1.
//
//pinum:hotpath
func (f *pathFrontier) dominated(ord int32, m float64, np *Path) int32 {
	for b := range f.buckets {
		if !f.sat[b][ord] {
			continue
		}
		for _, t := range f.buckets[b] {
			if f.slots[t].metric > m {
				break
			}
			if f.subsumes(f.slots[t].path, np) {
				return t
			}
		}
	}
	return -1
}

// evict kills every live slot the (just inserted or improved) slot s now
// dominates: metric ≥ s's — the batch pass dominates across equal metrics
// regardless of arrival order — in a bucket whose order s satisfies, with
// a subsumed combo. Outside zombie mode the killed slots leave their
// buckets; in zombie mode they stay parked as future dominators.
//
//pinum:hotpath
func (f *pathFrontier) evict(s int32, zombie bool) {
	m := f.slots[s].metric
	sp := f.slots[s].path
	sat := f.sat[f.slots[s].ord]
	for b := range f.buckets {
		if !sat[b] {
			continue
		}
		bucket := f.buckets[b]
		lo, hi := 0, len(bucket)
		for lo < hi {
			mid := int(uint(lo+hi) >> 1)
			if f.slots[bucket[mid]].metric < m {
				lo = mid + 1
			} else {
				hi = mid
			}
		}
		if lo == len(bucket) {
			continue
		}
		if zombie {
			for _, t := range bucket[lo:] {
				if t != s && f.slots[t].live && f.subsumes(sp, f.slots[t].path) {
					f.slots[t].live = false
					f.slots[t].witness = s
					f.stats.FrontierEvictions++
				}
			}
			continue
		}
		w := lo
		for i := lo; i < len(bucket); i++ {
			t := bucket[i]
			if t != s && f.subsumes(sp, f.slots[t].path) {
				f.slots[t].live = false
				f.slots[t].witness = s
				f.stats.FrontierEvictions++
				continue
			}
			bucket[w] = t
			w++
		}
		f.buckets[b] = bucket[:w]
	}
}

// bucketInsert places s into its order bucket at the (metric, slot)
// position; bucketRemove takes it back out by binary search on the same
// ordering.
//
//pinum:hotpath
func (f *pathFrontier) bucketInsert(s int32) {
	ord := f.slots[s].ord
	b := f.buckets[ord]
	m := f.slots[s].metric
	lo, hi := 0, len(b)
	for lo < hi {
		mid := int(uint(lo+hi) >> 1)
		t := b[mid]
		if f.slots[t].metric < m || (f.slots[t].metric == m && t < s) {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	b = append(b, 0)
	copy(b[lo+1:], b[lo:])
	b[lo] = s
	f.buckets[ord] = b
}

//pinum:hotpath
func (f *pathFrontier) bucketRemove(s int32) {
	ord := f.slots[s].ord
	b := f.buckets[ord]
	m := f.slots[s].metric
	lo, hi := 0, len(b)
	for lo < hi {
		mid := int(uint(lo+hi) >> 1)
		t := b[mid]
		if f.slots[t].metric < m || (f.slots[t].metric == m && t < s) {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	copy(b[lo:], b[lo+1:])
	f.buckets[ord] = b[:len(b)-1]
}

// finish drains the frontier for one completed join relation: live slots
// come out in (metric, first-arrival) order — byte-identical to the batch
// pass's kept sequence — and dead slots are the keys batch pruning would
// have removed. In sim mode only the reset happens; the reference batch
// pass owns both the results and the PathsPruned counts.
func (f *pathFrontier) finish() []*Path {
	var kept []*Path
	if !f.sim {
		idx := f.idxBuf[:0]
		metric := make([]float64, len(f.slots))
		for s := range f.slots {
			metric[s] = f.slots[s].metric
			if !f.slots[s].live {
				f.stats.PathsPruned++
				continue
			}
			idx = append(idx, int32(s))
		}
		sortSlotsByMetric(idx, metric)
		kept = make([]*Path, 0, len(idx))
		for _, s := range idx {
			kept = append(kept, f.slots[s].path)
		}
		f.idxBuf = idx
	}
	f.slots = f.slots[:0]
	clear(f.byKey)
	for b := range f.buckets {
		f.buckets[b] = f.buckets[b][:0]
	}
	return kept
}

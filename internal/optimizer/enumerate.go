// Connectivity-aware join enumeration for the fast planner, in the spirit
// of DPccp (Moerkotte & Neumann, VLDB 2006): instead of sweeping every
// relation subset and every submask split — discovering disconnected
// subproblems only through empty DP slots — the planner builds the query's
// join graph once per call from the prepared clause bitsets and emits only
// csg-cmp pairs: (connected subgraph, connected complement) pairs with at
// least one join clause crossing them. Chain and snowflake queries thus
// enumerate O(#connected pairs) states instead of O(3^n) splits.
//
// The emitted pairs are re-sorted per union mask into the dense sweep's
// split order (the half containing the union's lowest relation, descending
// numerically), so the DP inserts candidates in exactly the reference
// planner's sequence and every insertion-order tie-break — and therefore
// every exported plan sequence — stays byte-identical. The equivalence
// suite pins this across shapes, options, and configurations.
package optimizer

import (
	"math/bits"
	"sort"
)

// joinGraph is the query's join graph as one neighbor bitset per relation,
// derived from the plan context's prepared clause table.
type joinGraph struct {
	n   int
	adj []RelSet
}

func newJoinGraph(n int, clauses []clauseInfo) *joinGraph {
	g := &joinGraph{n: n, adj: make([]RelSet, n)}
	for i := range clauses {
		left := clauses[i].leftBit
		right := clauses[i].pair &^ left
		g.adj[bits.TrailingZeros64(uint64(left))] |= right
		g.adj[bits.TrailingZeros64(uint64(right))] |= left
	}
	return g
}

// neighbors returns the neighborhood of s: every relation adjacent to a
// member of s, minus s itself.
func (g *joinGraph) neighbors(s RelSet) RelSet {
	var nb RelSet
	for v := uint64(s); v != 0; {
		i := bits.TrailingZeros64(v)
		v &^= 1 << uint(i)
		nb |= g.adj[i]
	}
	return nb &^ s
}

// csgCmpPair is one emitted DP state: sub is the connected half containing
// the lowest relation of the union mask, mask^sub the connected complement.
type csgCmpPair struct {
	mask RelSet
	sub  RelSet
}

// enumPairCap bounds the number of csg-cmp pairs the planner materialises.
// On dense graphs near the 16-relation cap the pair count approaches the
// dense sweep's 3^n split count — hundreds of MB of pairs on a 16-clique —
// while DPccp saves nothing there; past the cap planFast falls back to the
// allocation-free dense mask sweep. Sparse graphs (where DPccp matters)
// stay far below it: a 16-chain has 680 pairs. Variable so tests can
// exercise the fallback without a pathological query.
var enumPairCap = 1 << 21

// csgCmpPairs enumerates every csg-cmp pair of the graph exactly once via
// neighborhood expansion, then sorts them into DP order: union masks
// ascending (every proper submask of a union is numerically smaller, so
// both halves are always planned before the union), and within one union
// the csg half descending, reproducing the dense sweep's submask walk.
// The boolean is false when the pair count exceeded maxPairs and the
// (partial) enumeration was abandoned.
func (g *joinGraph) csgCmpPairs(maxPairs int) ([]csgCmpPair, bool) {
	c := &ccpCollector{g: g, max: maxPairs}
	for i := g.n - 1; i >= 0; i-- {
		v := Single(i)
		c.emitCsg(v)
		c.enumCsgRec(v, v|(v-1))
		if c.overflow {
			return nil, false
		}
	}
	out := c.pairs
	sort.Slice(out, func(i, j int) bool {
		if out[i].mask != out[j].mask {
			return out[i].mask < out[j].mask
		}
		return out[i].sub > out[j].sub
	})
	return out, true
}

// ccpCollector accumulates emitted pairs up to the cap; once overflow is
// set the recursion unwinds without emitting further.
type ccpCollector struct {
	g        *joinGraph
	pairs    []csgCmpPair
	max      int
	overflow bool
}

func (c *ccpCollector) emit(mask, sub RelSet) {
	if len(c.pairs) >= c.max {
		c.overflow = true
		return
	}
	c.pairs = append(c.pairs, csgCmpPair{mask: mask, sub: sub})
}

// emitCsg emits every pair whose connected subgraph is s1: one seed
// complement per neighbor above min(s1), taken in descending order, each
// expanded through enumCmpRec. Excluding the relations at or below min(s1)
// keeps the csg the canonical (lowest-relation) half of every pair;
// excluding the seed's lower co-neighbors leaves those complements to their
// own seeds, so no pair is emitted twice.
func (c *ccpCollector) emitCsg(s1 RelSet) {
	low := s1 & -s1
	x := s1 | (low - 1)
	nb := c.g.neighbors(s1) &^ x
	for v := nb; v != 0 && !c.overflow; {
		i := 63 - bits.LeadingZeros64(uint64(v))
		seed := Single(i)
		v &^= seed
		c.emit(s1|seed, s1)
		c.enumCmpRec(s1, seed, x|(nb&(seed|(seed-1))))
	}
}

// enumCmpRec grows the complement s2 by every subset of its neighborhood
// outside x, emitting each grown complement as a pair with s1, then
// recursing with the whole neighborhood excluded (the standard DPccp
// duplicate-avoidance protocol).
func (c *ccpCollector) enumCmpRec(s1, s2, x RelSet) {
	nb := c.g.neighbors(s2) &^ x
	if nb == 0 {
		return
	}
	for sub := nb.NextSubset(0); sub != 0 && !c.overflow; sub = nb.NextSubset(sub) {
		c.emit(s1|s2|sub, s1)
	}
	for sub := nb.NextSubset(0); sub != 0 && !c.overflow; sub = nb.NextSubset(sub) {
		c.enumCmpRec(s1, s2|sub, x|nb)
	}
}

// enumCsgRec grows the connected subgraph s1 by every subset of its
// neighborhood outside x, emitting the complements of each grown subgraph,
// then recursing with the neighborhood excluded.
func (c *ccpCollector) enumCsgRec(s1, x RelSet) {
	nb := c.g.neighbors(s1) &^ x
	if nb == 0 {
		return
	}
	for sub := nb.NextSubset(0); sub != 0 && !c.overflow; sub = nb.NextSubset(sub) {
		c.emitCsg(s1 | sub)
	}
	for sub := nb.NextSubset(0); sub != 0 && !c.overflow; sub = nb.NextSubset(sub) {
		c.enumCsgRec(s1|sub, x|nb)
	}
}

// Shape-diverse planner equivalence: the fast (DPccp) planner against the
// reference dense sweep over the internal/workload shape generator's
// topologies — snowflake, cycle, clique, and random connected graphs of
// tunable density — across every Options combination and random
// configurations. This file lives in the external test package because
// package workload imports the optimizer; the star/chain/self-join suite
// over the paper's schema remains in equivalence_test.go.
package optimizer_test

import (
	"fmt"
	"math"
	"math/rand"
	"testing"

	"github.com/pinumdb/pinum/internal/optimizer"
	"github.com/pinumdb/pinum/internal/query"
	"github.com/pinumdb/pinum/internal/workload"
)

// shapeOptions enumerates every Options combination.
func shapeOptions() []optimizer.Options {
	var out []optimizer.Options
	for i := 0; i < 32; i++ {
		out = append(out, optionsFromBits(uint8(i)))
	}
	return out
}

// optionsFromBits decodes the low five bits into an Options value (shared
// with the fuzz target's input decoder).
func optionsFromBits(b uint8) optimizer.Options {
	return optimizer.Options{
		EnableNestLoop:     b&1 != 0,
		ExportAll:          b&2 != 0,
		CollectAccessCosts: b&4 != 0,
		PreciseNLJ:         b&8 != 0,
		PaperPrune:         b&16 != 0,
	}
}

// assertPlannersAgree runs both planners and requires bit-identical best
// cost, export sequence and per-plan cost decomposition, access-cost
// tables, and work counters — the external-package mirror of
// assertEquivalent in equivalence_test.go.
func assertPlannersAgree(t *testing.T, label string, a *optimizer.Analysis, cfg *query.Config, opt optimizer.Options) {
	t.Helper()
	fast, ferr := optimizer.Optimize(a, cfg, opt)
	ref, rerr := optimizer.OptimizeReference(a, cfg, opt)
	if (ferr == nil) != (rerr == nil) {
		t.Fatalf("%s: error disagreement: fast=%v reference=%v", label, ferr, rerr)
	}
	if ferr != nil {
		if ferr.Error() != rerr.Error() {
			t.Fatalf("%s: error text differs:\n  fast: %v\n  ref:  %v", label, ferr, rerr)
		}
		return
	}
	if math.Float64bits(fast.Best.Cost) != math.Float64bits(ref.Best.Cost) ||
		math.Float64bits(fast.Best.Internal) != math.Float64bits(ref.Best.Internal) {
		t.Fatalf("%s: best cost differs: fast (%v, %v) reference (%v, %v)",
			label, fast.Best.Cost, fast.Best.Internal, ref.Best.Cost, ref.Best.Internal)
	}
	if fast.Best.Signature() != ref.Best.Signature() {
		t.Fatalf("%s: best plan differs:\n  fast: %s\n  ref:  %s", label, fast.Best.Signature(), ref.Best.Signature())
	}
	if opt.ExportAll {
		if len(fast.Exported) != len(ref.Exported) {
			t.Fatalf("%s: exported %d plans, reference exported %d", label, len(fast.Exported), len(ref.Exported))
		}
		for i := range fast.Exported {
			fp, rp := fast.Exported[i], ref.Exported[i]
			if fp.Signature() != rp.Signature() {
				t.Fatalf("%s: export sequence diverges at %d:\n  fast: %s\n  ref:  %s",
					label, i, fp.Signature(), rp.Signature())
			}
			if math.Float64bits(fp.Internal) != math.Float64bits(rp.Internal) ||
				math.Float64bits(fp.Cost) != math.Float64bits(rp.Cost) ||
				math.Float64bits(fp.LeafCost) != math.Float64bits(rp.LeafCost) {
				t.Fatalf("%s: plan %s costs differ: fast (%v, %v, %v) reference (%v, %v, %v)",
					label, rp.Signature(), fp.Cost, fp.Internal, fp.LeafCost, rp.Cost, rp.Internal, rp.LeafCost)
			}
		}
	}
	if opt.CollectAccessCosts {
		if len(fast.AccessCosts) != len(ref.AccessCosts) {
			t.Fatalf("%s: access-cost table sizes differ: %d vs %d", label, len(fast.AccessCosts), len(ref.AccessCosts))
		}
		for i := range fast.AccessCosts {
			fa, ra := fast.AccessCosts[i], ref.AccessCosts[i]
			if fa.Rel != ra.Rel || fa.Index != ra.Index || fa.IndexOnly != ra.IndexOnly ||
				fa.OrderCol != ra.OrderCol ||
				math.Float64bits(fa.ScanCost) != math.Float64bits(ra.ScanCost) ||
				math.Float64bits(fa.LookupCost) != math.Float64bits(ra.LookupCost) {
				t.Fatalf("%s: access-cost row %d differs: fast %+v reference %+v", label, i, fa, ra)
			}
		}
	}
	fs, rs := fast.Stats, ref.Stats
	if fs.PathsConsidered != rs.PathsConsidered || fs.PathsRetained != rs.PathsRetained ||
		fs.JoinRels != rs.JoinRels || fs.MasksSkipped != rs.MasksSkipped ||
		fs.FrontierInserts != rs.FrontierInserts || fs.FrontierDrops != rs.FrontierDrops ||
		fs.FrontierEvictions != rs.FrontierEvictions {
		t.Fatalf("%s: planner counters differ:\n  fast: %+v\n  ref:  %+v", label, fs, rs)
	}
	if fs.EnumStates > rs.EnumStates {
		t.Fatalf("%s: DPccp visited more DP states than the dense sweep: %d > %d",
			label, fs.EnumStates, rs.EnumStates)
	}
}

// shapeAnalysis generates one shape query and its analysis.
func shapeAnalysis(t testing.TB, spec workload.ShapeSpec) (*optimizer.Analysis, []*query.Config, *rand.Rand) {
	t.Helper()
	cat, q, err := workload.ShapeQuery(spec)
	if err != nil {
		t.Fatal(err)
	}
	a, err := optimizer.NewAnalysis(q, nil, optimizer.DefaultCostParams())
	if err != nil {
		t.Fatal(err)
	}
	if !a.FastPlannable() {
		t.Fatalf("%s: shape query unexpectedly not fast-plannable", q.Name)
	}
	rng := rand.New(rand.NewSource(spec.Seed ^ 0x5eed))
	return a, workload.ShapeConfigs(rng, cat, q, 2), rng
}

func TestPlannerEquivalenceShapes(t *testing.T) {
	// Sizes are chosen so the full 32-option sweep stays fast: the dense
	// shapes (clique, high-density random, 7-cycle) explode the ExportAll ×
	// PreciseNLJ path count in *both* planners, so the biggest instances
	// are exercised once with the cache-construction options in
	// TestShapeEquivalenceLargeInstances rather than 32 times here.
	cases := []struct {
		shape workload.Shape
		rels  []int
	}{
		{workload.ShapeChain, []int{3, 5, 7}},
		{workload.ShapeCycle, []int{3, 5}},
		{workload.ShapeSnowflake, []int{4, 7}},
		{workload.ShapeStar, []int{4, 6}},
		{workload.ShapeClique, []int{3, 4}},
		{workload.ShapeRandom, []int{4, 5}},
	}
	trials := 2
	if testing.Short() {
		trials = 1
	}
	for _, tc := range cases {
		tc := tc
		t.Run(tc.shape.String(), func(t *testing.T) {
			t.Parallel()
			for _, n := range tc.rels {
				for trial := 0; trial < trials; trial++ {
					spec := workload.ShapeSpec{
						Shape: tc.shape, Rels: n,
						Density: 0.25 + 0.35*float64(trial),
						Seed:    int64(1000*n + trial),
					}
					a, cfgs, _ := shapeAnalysis(t, spec)
					for ci, cfg := range cfgs {
						for _, opt := range shapeOptions() {
							label := fmt.Sprintf("%s/rels=%d/trial=%d/cfg=%d/opt=%+v", tc.shape, n, trial, ci, opt)
							assertPlannersAgree(t, label, a, cfg, opt)
						}
					}
				}
			}
		})
	}
}

// TestWideShapeEquivalence pins the wide fast lane — ExportAll bookkeeping
// through variable-width string keys — bit-identical to the reference
// planner across every Options combination, on both kinds of packing
// overflow the reference can still plan: >63 interesting orders on one
// relation (wide-orders) and >8 grouping columns (wide-group). The >16-
// relation overflow has no reference run; TestWideChainFastPath covers it.
func TestWideShapeEquivalence(t *testing.T) {
	specs := []workload.ShapeSpec{
		{Shape: workload.ShapeWideOrders, Seed: 91},
		{Shape: workload.ShapeWideGroup, Seed: 92},
	}
	for _, spec := range specs {
		spec := spec
		t.Run(spec.Shape.String(), func(t *testing.T) {
			t.Parallel()
			a, cfgs, _ := shapeAnalysis(t, spec)
			for ci, cfg := range cfgs {
				if testing.Short() && ci > 0 {
					break
				}
				for _, opt := range shapeOptions() {
					label := fmt.Sprintf("%s/cfg=%d/opt=%+v", spec.Shape, ci, opt)
					assertPlannersAgree(t, label, a, cfg, opt)
				}
			}
		})
	}
}

// TestWideChainFastPath pins the third packing overflow — more relations
// than planKey's 16 — on the fast planner alone: the reference sweep is
// infeasible past 16 relations (and says so), while the fast planner's
// connectivity-aware enumeration plans and exports normally through the
// wide lane.
func TestWideChainFastPath(t *testing.T) {
	cat, q, err := workload.ShapeQuery(workload.ShapeSpec{Shape: workload.ShapeWideChain, Rels: 17, Seed: 93})
	if err != nil {
		t.Fatal(err)
	}
	a, err := optimizer.NewAnalysis(q, nil, optimizer.DefaultCostParams())
	if err != nil {
		t.Fatal(err)
	}
	if !a.FastPlannable() {
		t.Fatal("17-relation chain must be fast-plannable")
	}
	// Index only the head of the chain: ExportAll's retained set is an
	// antichain over per-relation leaf choices, so indexing all 17 relations
	// would make its size exponential in the chain length (in any planner).
	// Three indexed relations keep the combo product small while still
	// driving multi-combo, multi-order traffic through the wide key lane.
	full := workload.ShapeAllOrdersConfig(cat, q)
	cfg := &query.Config{}
	head := map[string]bool{q.Rels[0].Table.Name: true, q.Rels[1].Table.Name: true, q.Rels[2].Table.Name: true}
	for _, ix := range full.Indexes {
		if head[ix.Table] {
			cfg.Indexes = append(cfg.Indexes, ix)
		}
	}
	for _, opt := range []optimizer.Options{
		{EnableNestLoop: true, ExportAll: true},
		{EnableNestLoop: true, ExportAll: true, PreciseNLJ: true, PaperPrune: true},
	} {
		res, err := optimizer.Optimize(a, cfg, opt)
		if err != nil {
			t.Fatalf("opt=%+v: %v", opt, err)
		}
		if res.Stats.EnumStates == 0 {
			t.Fatalf("opt=%+v: fast planner enumerated no DP states", opt)
		}
		if len(res.Exported) == 0 {
			t.Fatalf("opt=%+v: no exported plans", opt)
		}
		full := res.Best.Rels.Count()
		if full != len(q.Rels) {
			t.Fatalf("opt=%+v: best plan joins %d of %d relations", opt, full, len(q.Rels))
		}
	}
	if _, err := optimizer.OptimizeReference(a, cfg, optimizer.Options{ExportAll: true}); err == nil {
		t.Fatal("reference planner unexpectedly accepted a 17-relation query")
	}
}

// TestShapeEquivalenceLargeInstances runs the biggest instance of each
// dense topology once, under the exact option sets cache construction uses
// (the two core.Build calls), instead of the full 32-option sweep the
// smaller instances get above. PreciseNLJ is deliberately absent here: on
// dense 6-7-relation graphs it retains path sets big enough to turn the
// reference planner's all-pairs subsumption scan into minutes of work (in
// both planners equally — the sweep above covers it at smaller sizes).
func TestShapeEquivalenceLargeInstances(t *testing.T) {
	if testing.Short() {
		t.Skip("large shape instances skipped in -short mode")
	}
	specs := []workload.ShapeSpec{
		{Shape: workload.ShapeCycle, Rels: 7, Seed: 71},
		{Shape: workload.ShapeClique, Rels: 5, Seed: 72},
		{Shape: workload.ShapeRandom, Rels: 6, Density: 0.5, Seed: 73},
	}
	buildOpts := []optimizer.Options{
		{EnableNestLoop: false, ExportAll: true},
		{EnableNestLoop: true, ExportAll: true, PaperPrune: true},
	}
	for _, spec := range specs {
		spec := spec
		t.Run(fmt.Sprintf("%s-%d", spec.Shape, spec.Rels), func(t *testing.T) {
			t.Parallel()
			a, cfgs, _ := shapeAnalysis(t, spec)
			for _, opt := range buildOpts {
				label := fmt.Sprintf("%s-%d/opt=%+v", spec.Shape, spec.Rels, opt)
				assertPlannersAgree(t, label, a, cfgs[0], opt)
			}
		})
	}
}

// TestChainEnumerationSaving pins the PR's acceptance criterion: on a
// 7-relation chain the connectivity-aware enumeration visits at least 5x
// fewer DP states than the dense sweep. (The analytic counts are 56 csg-cmp
// pairs against 966 dense splits — a 17x reduction.)
func TestChainEnumerationSaving(t *testing.T) {
	a, cfgs, _ := shapeAnalysis(t, workload.ShapeSpec{Shape: workload.ShapeChain, Rels: 7, Seed: 7})
	opt := optimizer.Options{EnableNestLoop: true, ExportAll: true}
	fast, err := optimizer.Optimize(a, cfgs[0], opt)
	if err != nil {
		t.Fatal(err)
	}
	ref, err := optimizer.OptimizeReference(a, cfgs[0], opt)
	if err != nil {
		t.Fatal(err)
	}
	if fast.Stats.EnumStates != 56 {
		t.Errorf("7-chain csg-cmp pairs: got %d, want 56", fast.Stats.EnumStates)
	}
	if ref.Stats.EnumStates != 966 {
		t.Errorf("7-chain dense splits: got %d, want 966", ref.Stats.EnumStates)
	}
	if fast.Stats.EnumStates*5 > ref.Stats.EnumStates {
		t.Errorf("enumeration saving below 5x: fast %d vs dense %d",
			fast.Stats.EnumStates, ref.Stats.EnumStates)
	}
	if fast.Stats.MasksSkipped != ref.Stats.MasksSkipped {
		t.Errorf("masks skipped differ: fast %d reference %d",
			fast.Stats.MasksSkipped, ref.Stats.MasksSkipped)
	}
	// A 7-chain's connected subsets of ≥2 relations are its 21 intervals,
	// so 99 of the dense sweep's 120 non-trivial masks are dead.
	if fast.Stats.MasksSkipped != 120-21 {
		t.Errorf("7-chain masks skipped: got %d, want 99", fast.Stats.MasksSkipped)
	}
}

// TestDisconnectedGraphParity drops join clauses from generated queries so
// the join graph falls apart, and requires both planners to fail with the
// same error. The fast planner detects this with an upfront reachability
// check instead of discovering an empty full-mask slot.
func TestDisconnectedGraphParity(t *testing.T) {
	cases := []struct {
		name string
		spec workload.ShapeSpec
		drop func(q *query.Query)
	}{
		{
			name: "chain4-cut-middle",
			spec: workload.ShapeSpec{Shape: workload.ShapeChain, Rels: 4, Seed: 11},
			drop: func(q *query.Query) { q.Joins = append(q.Joins[:1:1], q.Joins[2:]...) },
		},
		{
			name: "pair-cartesian",
			spec: workload.ShapeSpec{Shape: workload.ShapeChain, Rels: 2, Seed: 12},
			drop: func(q *query.Query) { q.Joins = nil },
		},
		{
			name: "star5-isolated-leaf",
			spec: workload.ShapeSpec{Shape: workload.ShapeStar, Rels: 5, Seed: 13},
			drop: func(q *query.Query) { q.Joins = q.Joins[:len(q.Joins)-1] },
		},
	}
	for _, tc := range cases {
		tc := tc
		t.Run(tc.name, func(t *testing.T) {
			cat, q, err := workload.ShapeQuery(tc.spec)
			if err != nil {
				t.Fatal(err)
			}
			tc.drop(q)
			if q.JoinGraphConnected() {
				t.Fatal("test bug: query still connected after dropping joins")
			}
			a, err := optimizer.NewAnalysis(q, nil, optimizer.DefaultCostParams())
			if err != nil {
				t.Fatal(err)
			}
			rng := rand.New(rand.NewSource(1))
			for ci, cfg := range workload.ShapeConfigs(rng, cat, q, 1) {
				for _, opt := range shapeOptions() {
					fast, ferr := optimizer.Optimize(a, cfg, opt)
					ref, rerr := optimizer.OptimizeReference(a, cfg, opt)
					label := fmt.Sprintf("%s/cfg=%d/opt=%+v", tc.name, ci, opt)
					if ferr == nil || rerr == nil {
						t.Fatalf("%s: disconnected query planned: fast=%v/%v reference=%v/%v",
							label, fast, ferr, ref, rerr)
					}
					if ferr.Error() != rerr.Error() {
						t.Fatalf("%s: error text differs:\n  fast: %v\n  ref:  %v", label, ferr, rerr)
					}
				}
			}
		})
	}
}

package optimizer

import (
	"fmt"
	"math"
	"sort"

	"github.com/pinumdb/pinum/internal/catalog"
	"github.com/pinumdb/pinum/internal/query"
	"github.com/pinumdb/pinum/internal/stats"
	"github.com/pinumdb/pinum/internal/storage"
)

// RelInfo is the per-relation planning state derived once per query:
// applied filters, their combined selectivity, the set of columns the query
// touches, and the relation's interesting orders.
type RelInfo struct {
	Rel     int
	Table   *catalog.Table
	Filters []query.Filter
	// Sel is the combined selectivity of all filters.
	Sel float64
	// Rows is Table.RowCount × Sel.
	Rows float64
	// Needed holds every column of this relation the query references.
	Needed map[string]bool
	// FilterSel maps a column to the combined selectivity of the filters
	// on that column (used for index range scans on that column).
	FilterSel map[string]float64
	// Interesting lists this relation's interesting orders, sorted.
	Interesting []string
}

// Analysis bundles everything cost evaluation needs about a query. It is
// shared by the optimizer proper and by the INUM/PINUM cost model, which is
// what guarantees the two cost identical plans identically.
type Analysis struct {
	Q      *query.Query
	Stats  *stats.Store
	Coster Coster

	Rels []RelInfo
	// JoinSel caches the selectivity of each join clause, index-aligned
	// with Q.Joins.
	JoinSel []float64

	rowsCache map[RelSet]float64

	// Interesting-order interning, built once per analysis: the fast
	// planner identifies leaf requirements and pathkeys through these
	// 1-based per-relation ids; ordBase offsets them into a dense global
	// id space shared by all relations; ordTotal is the highest global
	// id. packed reports whether the query additionally fits the
	// fixed-size planKey invariants (≤16 relations, ≤63 interesting
	// orders per relation, grouping/ordering ≤8 columns) — inside them
	// ids pack into planKey bytes, outside them the fast planner spills
	// plan identities to the variable-width string-key lane
	// (frontier.go). fastPlan is false only past the planner's hard
	// capacity (relations beyond RelSet's 64 bits, or a global order id
	// space overflowing 16 bits), where Optimize errors out.
	ordIDs   []map[string]uint16
	ordBase  []uint16
	ordTotal int
	packed   bool
	fastPlan bool

	// Lazily-built connectivity-aware enumeration state, shared by every
	// fast Optimize call on this analysis: the join graph — and with it
	// connectivity, the csg-cmp pair list and the overflow verdict —
	// depends only on the query's join clauses, never on the
	// configuration or options, so planFast computes it once and reuses
	// it across the repeated calls cache construction and the experiments
	// make. Like rowsCache, this makes an Analysis single-threaded with
	// respect to concurrent Optimize calls (callers already build one
	// analysis per worker).
	ccpOnce      bool
	ccpConnected bool
	ccpPairs     []csgCmpPair
	ccpFits      bool
}

// orderGID returns the dense global id (≥1) of an interned interesting-
// order column. Every column a planner-generated leaf requirement or
// output order can name is an interesting order of its relation (join,
// group-by and order-by columns all are, by construction), so the lookup
// never misses on planner inputs.
func (a *Analysis) orderGID(c query.ColRef) uint16 {
	return a.ordBase[c.Rel] + a.ordIDs[c.Rel][c.Column]
}

// FastPlannable reports whether Optimize will use the fast planner for
// this analysis. Queries inside the packed-key invariants (≤16 relations,
// ≤63 interesting orders per relation, grouping/ordering ≤8 columns) run
// the packed fixed-size key lane; wider queries run the same fast planner
// through the variable-width string-key lane. It is false only past the
// planner's hard capacity (over 64 relations, or a global interned-order
// space overflowing 16 bits), where Optimize returns an error.
func (a *Analysis) FastPlannable() bool { return a.fastPlan }

// NewAnalysis derives the planning state for q. The statistics store may be
// nil, in which case column metadata defaults drive selectivity.
func NewAnalysis(q *query.Query, st *stats.Store, params CostParams) (*Analysis, error) {
	if err := q.Validate(); err != nil {
		return nil, err
	}
	a := &Analysis{
		Q:         q,
		Stats:     st,
		Coster:    Coster{P: params},
		rowsCache: make(map[RelSet]float64),
	}
	needed := q.ColumnsNeeded()
	ios := q.InterestingOrders()
	for i, r := range q.Rels {
		ri := RelInfo{
			Rel:         i,
			Table:       r.Table,
			Needed:      needed[i],
			FilterSel:   make(map[string]float64),
			Interesting: ios[i],
			Sel:         1,
		}
		for _, f := range q.Filters {
			if f.Col.Rel != i {
				continue
			}
			ri.Filters = append(ri.Filters, f)
			s := a.filterSelectivity(r.Table, f)
			ri.Sel *= s
			if prev, ok := ri.FilterSel[f.Col.Column]; ok {
				ri.FilterSel[f.Col.Column] = prev * s
			} else {
				ri.FilterSel[f.Col.Column] = s
			}
		}
		ri.Rows = float64(r.Table.RowCount) * ri.Sel
		if ri.Rows < 1 {
			ri.Rows = 1
		}
		a.Rels = append(a.Rels, ri)
	}
	for _, j := range q.Joins {
		a.JoinSel = append(a.JoinSel, a.joinSelectivity(j))
	}

	// Intern the interesting orders for the fast planner. Every order is
	// interned regardless of width — the lookup and usefulness memos key
	// on global ids in both lanes; packed only decides whether plan keys
	// fit the fixed-size planKey or spill to the string-key lane.
	a.ordIDs = make([]map[string]uint16, len(a.Rels))
	a.ordBase = make([]uint16, len(a.Rels))
	packed := len(a.Rels) <= 16 && len(q.GroupBy) <= 8 && len(q.OrderBy) <= 8
	total := 0
	for i := range a.Rels {
		cols := a.Rels[i].Interesting
		if len(cols) > 63 {
			packed = false
		}
		m := make(map[string]uint16, len(cols))
		for k, col := range cols {
			m[col] = uint16(k + 1)
		}
		a.ordIDs[i] = m
		a.ordBase[i] = uint16(total)
		total += len(m)
	}
	a.ordTotal = total
	a.packed = packed
	// The 16-bit global id space bounds both lanes (clause-order packs and
	// the memo tables index by gid); RelSet bounds the relation count.
	a.fastPlan = len(a.Rels) <= 64 && total < math.MaxUint16
	return a, nil
}

// colStats returns the statistics for a column, synthesising them from the
// column metadata when the store has none.
func (a *Analysis) colStats(t *catalog.Table, col string) *stats.ColumnStats {
	if a.Stats != nil {
		if s := a.Stats.Get(t.Name, col); s != nil {
			return s
		}
	}
	c := t.Column(col)
	if c == nil {
		return nil
	}
	ndv := c.NDV
	if ndv <= 0 {
		ndv = t.RowCount
	}
	return &stats.ColumnStats{
		Rows:     t.RowCount,
		Distinct: ndv,
		Min:      c.Min,
		Max:      c.Max,
	}
}

// NDV returns the distinct-value count of a column, at least 1.
func (a *Analysis) NDV(t *catalog.Table, col string) float64 {
	s := a.colStats(t, col)
	if s == nil || s.Distinct <= 0 {
		return math.Max(1, float64(t.RowCount))
	}
	return float64(s.Distinct)
}

func (a *Analysis) filterSelectivity(t *catalog.Table, f query.Filter) float64 {
	s := a.colStats(t, f.Col.Column)
	switch f.Op {
	case query.Eq:
		return s.EqSelectivity(f.Value)
	case query.Lt:
		return s.LTSelectivity(f.Value)
	case query.Le:
		return s.LTSelectivity(f.Value + 1)
	case query.Gt:
		return clamp01(1 - s.LTSelectivity(f.Value+1))
	case query.Ge:
		return clamp01(1 - s.LTSelectivity(f.Value))
	case query.Between:
		return s.RangeSelectivity(f.Value, f.Value2)
	default:
		return stats.DefaultRangeSel
	}
}

func (a *Analysis) joinSelectivity(j query.Join) float64 {
	lt := a.Q.Rels[j.Left.Rel].Table
	rt := a.Q.Rels[j.Right.Rel].Table
	nl := a.NDV(lt, j.Left.Column)
	nr := a.NDV(rt, j.Right.Column)
	d := math.Max(nl, nr)
	if d < 1 {
		d = 1
	}
	return 1 / d
}

// JoinRows estimates the cardinality of the join of the relations in set s:
// the product of filtered base cardinalities times the selectivity of every
// join clause internal to s. The estimate is order-independent, so it is
// cached per set.
func (a *Analysis) JoinRows(s RelSet) float64 {
	if r, ok := a.rowsCache[s]; ok {
		return r
	}
	rows := 1.0
	for _, i := range s.Members() {
		rows *= a.Rels[i].Rows
	}
	for k, j := range a.Q.Joins {
		if s.Has(j.Left.Rel) && s.Has(j.Right.Rel) {
			rows *= a.JoinSel[k]
		}
	}
	if rows < 1 {
		rows = 1
	}
	a.rowsCache[s] = rows
	return rows
}

// GroupCount estimates the number of groups produced by grouping on cols,
// given input cardinality rows.
func (a *Analysis) GroupCount(cols []query.ColRef, rows float64) float64 {
	if len(cols) == 0 {
		return 1
	}
	g := 1.0
	for _, c := range cols {
		g *= a.NDV(a.Q.Rels[c.Rel].Table, c.Column)
		if g > rows {
			return math.Max(1, rows)
		}
	}
	return math.Max(1, math.Min(g, rows))
}

// indexScanFacts describes one concrete index access option for a relation.
type indexScanFacts struct {
	Cost      float64
	IndexOnly bool
	// Ordered reports whether the scan delivers rows in lead-column order
	// usable as a pathkey (always true for B-tree scans here).
	LeadCol string
}

// IndexScanCost costs a scan of relation rel through index ix: the index
// applies any filters on its leading column as the range condition, fetches
// the heap unless the index covers all needed columns, and applies the
// remaining filters as quals.
func (a *Analysis) IndexScanCost(rel int, ix *catalog.Index) indexScanFacts {
	ri := &a.Rels[rel]
	t := ri.Table
	scanSel := 1.0
	leadFiltered := false
	if s, ok := ri.FilterSel[ix.LeadColumn()]; ok {
		scanSel = s
		leadFiltered = true
	}
	indexOnly := true
	//pinum:nondeterministic-ok order-insensitive conjunction: indexOnly is the same whichever needed column misses first
	for col := range ri.Needed {
		if !ix.HasColumn(col) {
			indexOnly = false
			break
		}
	}
	nQuals := len(ri.Filters)
	if leadFiltered {
		nQuals-- // the lead-column filter is the index condition
		if nQuals < 0 {
			nQuals = 0
		}
	}
	cost := a.Coster.IndexScanCost(t, ix, scanSel, indexOnly, nQuals)
	return indexScanFacts{Cost: cost, IndexOnly: indexOnly, LeadCol: ix.LeadColumn()}
}

// SeqScanCost costs a full scan of relation rel.
func (a *Analysis) SeqScanCost(rel int) float64 {
	ri := &a.Rels[rel]
	return a.Coster.SeqScanCost(storage.TablePages(ri.Table), ri.Table.RowCount, len(ri.Filters))
}

// LookupRows is the expected number of heap matches per equality probe on
// col (before the relation's other filters are applied).
func (a *Analysis) LookupRows(rel int, col string) float64 {
	ri := &a.Rels[rel]
	m := float64(ri.Table.RowCount) / a.NDV(ri.Table, col)
	if m < 1 {
		m = 1
	}
	return m
}

// LookupCost costs one nested-loop probe of relation rel through index ix
// on column col, remaining filters applied as quals.
func (a *Analysis) LookupCost(rel int, ix *catalog.Index, col string) float64 {
	ri := &a.Rels[rel]
	match := a.LookupRows(rel, col)
	indexOnly := true
	//pinum:nondeterministic-ok order-insensitive conjunction: indexOnly is the same whichever needed column misses first
	for c := range ri.Needed {
		if !ix.HasColumn(c) {
			indexOnly = false
			break
		}
	}
	cost := a.Coster.LookupCost(ri.Table, ix, match, indexOnly)
	cost += match * float64(len(ri.Filters)) * a.Coster.P.CPUOperatorCost
	return cost
}

// LeafApplicable reports whether an index can possibly satisfy a leaf
// requirement on the given table: it must live on that table and, for
// ordered and lookup accesses, cover the required column. This is the one
// authoritative applicability rule — the memoized cache evaluator uses it
// as its fast-path filter — so any future relaxation belongs here.
func LeafApplicable(table string, req LeafReq, ix *catalog.Index) bool {
	if ix.Table != table {
		return false
	}
	switch req.Mode {
	case AccessAny:
		return true
	case AccessOrdered, AccessLookup:
		return ix.Covers(req.Col)
	default:
		return false
	}
}

// IndexLeafCost costs satisfying one cached-plan leaf requirement through a
// single index, or reports that the index cannot satisfy it (LeafApplicable).
// It is the per-index unit AccessCost minimises over; callers that evaluate
// many configurations can memoize it, since the result depends only on
// (rel, req, ix).
func (a *Analysis) IndexLeafCost(rel int, req LeafReq, ix *catalog.Index) (float64, bool) {
	if !LeafApplicable(a.Rels[rel].Table.Name, req, ix) {
		return 0, false
	}
	switch req.Mode {
	case AccessAny, AccessOrdered:
		return a.IndexScanCost(rel, ix).Cost, true
	case AccessLookup:
		return a.LookupCost(rel, ix, req.Col), true
	default:
		return 0, false
	}
}

// LeafCoster supplies the two primitive leaf costs LeafAccessCost
// minimises over. Analysis implements it directly; inum.Cache implements
// it with a memo in front, which is how the cached cost model is
// guaranteed to price plans exactly as the optimizer does.
type LeafCoster interface {
	IndexLeafCost(rel int, req LeafReq, ix *catalog.Index) (float64, bool)
	SeqScanCost(rel int) float64
}

// BaseLeafCost evaluates a leaf requirement under the empty configuration:
// the configuration-independent floor LeafAccessCost starts its
// minimisation from. AccessAny leaves can always fall back to a sequential
// scan; ordered and lookup leaves need an index, so their base is +Inf with
// ok == false. Incremental evaluators (internal/costmatrix) seed their
// per-relation state from this value and fold candidate indexes in through
// IndexLeafCost one at a time, which keeps their arithmetic bit-identical
// to LeafAccessCost's own loop.
func BaseLeafCost(lc LeafCoster, rel int, req LeafReq) (float64, bool) {
	if req.Mode == AccessAny {
		return lc.SeqScanCost(rel), true
	}
	return math.Inf(1), false
}

// LeafAccessCost evaluates the access cost of one cached-plan leaf
// requirement under an arbitrary index configuration, considering exactly
// the access paths the optimizer itself would consider. It returns false
// when the configuration cannot satisfy the requirement (no covering index
// for an ordered or lookup access). This is the single minimisation loop
// both the live Analysis and the memoized cache evaluator go through.
func LeafAccessCost(lc LeafCoster, rel int, req LeafReq, cfg *query.Config) (float64, bool) {
	best, _ := BaseLeafCost(lc, rel, req)
	if cfg != nil {
		for _, ix := range cfg.Indexes {
			if c, ok := lc.IndexLeafCost(rel, req, ix); ok && c < best {
				best = c
			}
		}
	}
	if math.IsInf(best, 1) {
		return 0, false
	}
	return best, true
}

// AccessCost evaluates a leaf requirement under a configuration against
// the live (unmemoized) cost model.
func (a *Analysis) AccessCost(rel int, req LeafReq, cfg *query.Config) (float64, bool) {
	return LeafAccessCost(a, rel, req, cfg)
}

// OrderedCols returns the relation's interesting orders coverable by the
// given configuration (those with a covering index present).
func (a *Analysis) OrderedCols(rel int, cfg *query.Config) []string {
	ri := &a.Rels[rel]
	var out []string
	for _, col := range ri.Interesting {
		if cfg == nil {
			continue
		}
		for _, ix := range cfg.Indexes {
			if ix.Table == ri.Table.Name && ix.Covers(col) {
				out = append(out, col)
				break
			}
		}
	}
	sort.Strings(out)
	return out
}

func clamp01(x float64) float64 {
	if x < 0 {
		return 0
	}
	if x > 1 {
		return 1
	}
	return x
}

// String summarises the analysis (handy in debug output and tests).
func (a *Analysis) String() string {
	return fmt.Sprintf("analysis(%s: %d rels, %d joins)", a.Q.Name, len(a.Rels), len(a.Q.Joins))
}

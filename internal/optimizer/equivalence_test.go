package optimizer

import (
	"fmt"
	"math"
	"math/rand"
	"sort"
	"testing"

	"github.com/pinumdb/pinum/internal/catalog"
	"github.com/pinumdb/pinum/internal/query"
	"github.com/pinumdb/pinum/internal/storage"
)

// allOptions enumerates every Options combination the planner supports.
func allOptions() []Options {
	var out []Options
	for i := 0; i < 32; i++ {
		out = append(out, Options{
			EnableNestLoop:     i&1 != 0,
			ExportAll:          i&2 != 0,
			CollectAccessCosts: i&4 != 0,
			PreciseNLJ:         i&8 != 0,
			PaperPrune:         i&16 != 0,
		})
	}
	return out
}

// sigSet collects the canonical signature multiset of an exported plan list.
func sigSet(paths []*Path) []string {
	out := make([]string, 0, len(paths))
	for _, p := range paths {
		out = append(out, p.Signature())
	}
	sort.Strings(out)
	return out
}

// assertEquivalent runs the fast and reference planners on the same inputs
// and requires bit-identical best cost, identical exported signature sets,
// and identical access-cost tables.
func assertEquivalent(t *testing.T, label string, a *Analysis, cfg *query.Config, opt Options) {
	t.Helper()
	if !a.FastPlannable() {
		t.Fatalf("%s: test query unexpectedly not fast-plannable", label)
	}
	fast, ferr := Optimize(a, cfg, opt)
	ref, rerr := OptimizeReference(a, cfg, opt)
	if (ferr == nil) != (rerr == nil) {
		t.Fatalf("%s: error disagreement: fast=%v reference=%v", label, ferr, rerr)
	}
	if ferr != nil {
		return
	}
	if math.Float64bits(fast.Best.Cost) != math.Float64bits(ref.Best.Cost) {
		t.Fatalf("%s: best cost differs: fast=%v reference=%v", label, fast.Best.Cost, ref.Best.Cost)
	}
	if math.Float64bits(fast.Best.Internal) != math.Float64bits(ref.Best.Internal) {
		t.Fatalf("%s: best internal differs: fast=%v reference=%v", label, fast.Best.Internal, ref.Best.Internal)
	}
	if fast.Best.Signature() != ref.Best.Signature() {
		t.Fatalf("%s: best plan differs:\n  fast: %s\n  ref:  %s", label, fast.Best.Signature(), ref.Best.Signature())
	}
	if opt.ExportAll {
		fs, rs := sigSet(fast.Exported), sigSet(ref.Exported)
		if len(fs) != len(rs) {
			t.Fatalf("%s: exported %d plans, reference exported %d", label, len(fs), len(rs))
		}
		for i := range fs {
			if fs[i] != rs[i] {
				t.Fatalf("%s: exported signature sets differ at %d:\n  fast: %s\n  ref:  %s", label, i, fs[i], rs[i])
			}
		}
		// The two planners share candidate enumeration and insertion-order
		// tie-breaks, so even the export sequence and every per-plan cost
		// decomposition must coincide exactly.
		for i := range fast.Exported {
			fp, rp := fast.Exported[i], ref.Exported[i]
			if fp.Signature() != rp.Signature() {
				t.Fatalf("%s: export sequence diverges at %d:\n  fast: %s\n  ref:  %s",
					label, i, fp.Signature(), rp.Signature())
			}
			if math.Float64bits(fp.Internal) != math.Float64bits(rp.Internal) ||
				math.Float64bits(fp.Cost) != math.Float64bits(rp.Cost) ||
				math.Float64bits(fp.LeafCost) != math.Float64bits(rp.LeafCost) {
				t.Fatalf("%s: plan %s costs differ: fast (%v, %v, %v) reference (%v, %v, %v)",
					label, rp.Signature(), fp.Cost, fp.Internal, fp.LeafCost, rp.Cost, rp.Internal, rp.LeafCost)
			}
		}
	}
	if opt.CollectAccessCosts {
		if len(fast.AccessCosts) != len(ref.AccessCosts) {
			t.Fatalf("%s: access-cost table sizes differ: %d vs %d", label, len(fast.AccessCosts), len(ref.AccessCosts))
		}
		for i := range fast.AccessCosts {
			fa, ra := fast.AccessCosts[i], ref.AccessCosts[i]
			if fa.Rel != ra.Rel || fa.Index != ra.Index || fa.IndexOnly != ra.IndexOnly ||
				fa.OrderCol != ra.OrderCol ||
				math.Float64bits(fa.ScanCost) != math.Float64bits(ra.ScanCost) ||
				math.Float64bits(fa.LookupCost) != math.Float64bits(ra.LookupCost) {
				t.Fatalf("%s: access-cost row %d differs: fast %+v reference %+v", label, i, fa, ra)
			}
		}
	}
	// The candidate enumeration is shared, so the considered/retained
	// counters must agree; only the pruning work differs.
	if fast.Stats.PathsConsidered != ref.Stats.PathsConsidered {
		t.Fatalf("%s: paths considered differ: fast %d reference %d",
			label, fast.Stats.PathsConsidered, ref.Stats.PathsConsidered)
	}
	if fast.Stats.PathsRetained != ref.Stats.PathsRetained {
		t.Fatalf("%s: paths retained differ: fast %d reference %d",
			label, fast.Stats.PathsRetained, ref.Stats.PathsRetained)
	}
	if fast.Stats.JoinRels != ref.Stats.JoinRels {
		t.Fatalf("%s: join relations differ: fast %d reference %d",
			label, fast.Stats.JoinRels, ref.Stats.JoinRels)
	}
	// Both planners account skipped (disconnected) masks identically: the
	// reference by exhausting each one's splits, the fast planner
	// arithmetically from the connected-subgraph count.
	if fast.Stats.MasksSkipped != ref.Stats.MasksSkipped {
		t.Fatalf("%s: masks skipped differ: fast %d reference %d",
			label, fast.Stats.MasksSkipped, ref.Stats.MasksSkipped)
	}
	// The fast planner maintains the dominance frontier for real; the
	// reference planner replays the protocol through its counting mirror.
	// Identical arrival streams must produce identical frontier work.
	if fast.Stats.FrontierInserts != ref.Stats.FrontierInserts ||
		fast.Stats.FrontierDrops != ref.Stats.FrontierDrops ||
		fast.Stats.FrontierEvictions != ref.Stats.FrontierEvictions {
		t.Fatalf("%s: frontier counters differ: fast %d/%d/%d reference %d/%d/%d (inserts/drops/evictions)",
			label, fast.Stats.FrontierInserts, fast.Stats.FrontierDrops, fast.Stats.FrontierEvictions,
			ref.Stats.FrontierInserts, ref.Stats.FrontierDrops, ref.Stats.FrontierEvictions)
	}
	// The DPccp enumeration must never visit more DP states than the dense
	// sweep (it visits exactly the viable ones).
	if fast.Stats.EnumStates > ref.Stats.EnumStates {
		t.Fatalf("%s: fast planner visited more DP states than the dense sweep: %d > %d",
			label, fast.Stats.EnumStates, ref.Stats.EnumStates)
	}
	if len(a.Rels) > 1 && fast.Stats.EnumStates == 0 {
		t.Fatalf("%s: fast planner recorded no enumeration states on a %d-relation join",
			label, len(a.Rels))
	}
}

// equivCatalog builds a schema for randomized equivalence workloads: a fact
// table, three dimensions, and a chain tail, with key-like and low-NDV
// attribute columns.
func equivCatalog(t testing.TB) *catalogFixture {
	t.Helper()
	f := &catalogFixture{t: t, cat: catalog.New()}
	f.add("fact", 2_000_000, "id", "fk1", "fk2", "fk3", "m1", "a1", "a2")
	f.add("dim1", 100_000, "id", "fkc", "a1")
	f.add("dim2", 150_000, "id", "a1", "a2")
	f.add("dim3", 50_000, "id", "a1")
	f.add("tail", 10_000, "id", "a1")
	f.cat.Table("fact").Column("fk1").NDV = 100_000
	f.cat.Table("fact").Column("fk2").NDV = 150_000
	f.cat.Table("fact").Column("fk3").NDV = 50_000
	f.cat.Table("dim1").Column("fkc").NDV = 10_000
	return f
}

type catalogFixture struct {
	t   testing.TB
	cat *catalog.Catalog
}

// add registers a table whose non-id columns have 1000 distinct values in
// [1, 1000] (so range filters hit) and whose id column is key-like.
func (f *catalogFixture) add(name string, rows int64, cols ...string) {
	tb := &catalog.Table{Name: name, RowCount: rows}
	for _, c := range cols {
		ndv := rows
		min, max := int64(1), rows
		if c != "id" {
			ndv = 1000
			max = 1000
		}
		tb.Columns = append(tb.Columns, &catalog.Column{Name: c, Type: catalog.Int, NDV: ndv, Min: min, Max: max})
	}
	if err := f.cat.AddTable(tb); err != nil {
		f.t.Fatal(err)
	}
}

func TestPlannerEquivalenceStar(t *testing.T) {
	testPlannerEquivalence(t, "star", func(rng *rand.Rand, f *catalogFixture) *query.Query {
		return f.starQuery(rng)
	})
}

func TestPlannerEquivalenceChain(t *testing.T) {
	testPlannerEquivalence(t, "chain", func(rng *rand.Rand, f *catalogFixture) *query.Query {
		return f.chainQuery(rng)
	})
}

func TestPlannerEquivalenceSelfJoin(t *testing.T) {
	testPlannerEquivalence(t, "selfjoin", func(rng *rand.Rand, f *catalogFixture) *query.Query {
		return f.selfJoinQuery(rng)
	})
}

func testPlannerEquivalence(t *testing.T, shape string, gen func(*rand.Rand, *catalogFixture) *query.Query) {
	rng := rand.New(rand.NewSource(7))
	f := equivCatalog(t)
	trials := 6
	if testing.Short() {
		trials = 2
	}
	for trial := 0; trial < trials; trial++ {
		q := gen(rng, f)
		a, err := NewAnalysis(q, nil, DefaultCostParams())
		if err != nil {
			t.Fatal(err)
		}
		for ci, cfg := range f.randomConfigs(rng, a, 3) {
			for _, opt := range allOptions() {
				label := fmt.Sprintf("%s/trial=%d/cfg=%d/opt=%+v", shape, trial, ci, opt)
				assertEquivalent(t, label, a, cfg, opt)
			}
		}
	}
}

// TestDenseFallbackEquivalence forces the csg-cmp pair cap down to zero so
// planFast abandons the enumeration and takes the dense-sweep fallback
// (planFastDense), then re-runs the randomized equivalence matrix: the
// fallback must be just as bit-identical to the reference as DPccp is.
// Safe to mutate the package global: top-level tests never overlap.
func TestDenseFallbackEquivalence(t *testing.T) {
	old := enumPairCap
	enumPairCap = 0
	defer func() { enumPairCap = old }()
	testPlannerEquivalence(t, "dense-fallback", func(rng *rand.Rand, f *catalogFixture) *query.Query {
		if rng.Intn(2) == 0 {
			return f.starQuery(rng)
		}
		return f.chainQuery(rng)
	})
}

// TestPlannerEquivalenceDebugQuery pins the 6-way Q5 analogue with the
// all-orders configuration — the exact call core.Build makes.
func TestPlannerEquivalenceDebugQuery(t *testing.T) {
	q, _ := debugStarQuery(t)
	a, err := NewAnalysis(q, nil, DefaultCostParams())
	if err != nil {
		t.Fatal(err)
	}
	cfg := debugAllOrdersConfig(t, a)
	for _, opt := range allOptions() {
		assertEquivalent(t, fmt.Sprintf("debug-q5/opt=%+v", opt), a, cfg, opt)
	}
	// The empty and nil configurations exercise the no-index paths.
	for _, opt := range allOptions() {
		assertEquivalent(t, fmt.Sprintf("debug-q5-nilcfg/opt=%+v", opt), a, nil, opt)
		assertEquivalent(t, fmt.Sprintf("debug-q5-emptycfg/opt=%+v", opt), a, &query.Config{}, opt)
	}
}

// ---- fixture helpers ----------------------------------------------------

func (f *catalogFixture) starQuery(rng *rand.Rand) *query.Query {
	q := &query.Query{
		Name: "eq-star",
		Rels: []query.Rel{
			{Table: f.cat.Table("fact")},
			{Table: f.cat.Table("dim1")},
			{Table: f.cat.Table("dim2")},
			{Table: f.cat.Table("dim3")},
		},
		Joins: []query.Join{
			{Left: query.ColRef{Rel: 0, Column: "fk1"}, Right: query.ColRef{Rel: 1, Column: "id"}},
			{Left: query.ColRef{Rel: 0, Column: "fk2"}, Right: query.ColRef{Rel: 2, Column: "id"}},
			{Left: query.ColRef{Rel: 0, Column: "fk3"}, Right: query.ColRef{Rel: 3, Column: "id"}},
		},
		Select: []query.ColRef{{Rel: 0, Column: "m1"}, {Rel: 2, Column: "a1"}},
	}
	f.randomDecorations(rng, q)
	return q
}

func (f *catalogFixture) chainQuery(rng *rand.Rand) *query.Query {
	q := &query.Query{
		Name: "eq-chain",
		Rels: []query.Rel{
			{Table: f.cat.Table("fact")},
			{Table: f.cat.Table("dim1")},
			{Table: f.cat.Table("tail")},
		},
		Joins: []query.Join{
			{Left: query.ColRef{Rel: 0, Column: "fk1"}, Right: query.ColRef{Rel: 1, Column: "id"}},
			{Left: query.ColRef{Rel: 1, Column: "fkc"}, Right: query.ColRef{Rel: 2, Column: "id"}},
		},
		Select: []query.ColRef{{Rel: 0, Column: "m1"}, {Rel: 2, Column: "a1"}},
	}
	f.randomDecorations(rng, q)
	return q
}

func (f *catalogFixture) selfJoinQuery(rng *rand.Rand) *query.Query {
	q := &query.Query{
		Name: "eq-selfjoin",
		Rels: []query.Rel{
			{Table: f.cat.Table("dim2"), Alias: "l"},
			{Table: f.cat.Table("dim2"), Alias: "r"},
			{Table: f.cat.Table("fact")},
		},
		Joins: []query.Join{
			{Left: query.ColRef{Rel: 0, Column: "a1"}, Right: query.ColRef{Rel: 1, Column: "a1"}},
			{Left: query.ColRef{Rel: 1, Column: "id"}, Right: query.ColRef{Rel: 2, Column: "fk2"}},
		},
		Select: []query.ColRef{{Rel: 0, Column: "a2"}, {Rel: 2, Column: "m1"}},
	}
	f.randomDecorations(rng, q)
	return q
}

// randomDecorations adds random filters and optional grouping/ordering.
func (f *catalogFixture) randomDecorations(rng *rand.Rand, q *query.Query) {
	for i, r := range q.Rels {
		if rng.Intn(2) == 0 {
			continue
		}
		col := "a1"
		if r.Table.Column(col) == nil {
			continue
		}
		lo := int64(rng.Intn(400) + 1)
		q.Filters = append(q.Filters, query.Filter{
			Col: query.ColRef{Rel: i, Column: col}, Op: query.Between,
			Value: lo, Value2: lo + int64(rng.Intn(200)),
		})
	}
	if rng.Intn(2) == 0 {
		q.GroupBy = []query.ColRef{q.Select[len(q.Select)-1]}
	}
	if rng.Intn(2) == 0 {
		ob := q.Select[len(q.Select)-1]
		if len(q.GroupBy) > 0 {
			ob = q.GroupBy[0]
		}
		q.OrderBy = []query.ColRef{ob}
	}
	if err := q.Validate(); err != nil {
		f.t.Fatal(err)
	}
}

// randomConfigs builds n random index configurations over the query's
// relations: per relation, with probability ~2/3, either a thin index on an
// interesting order or a wider covering index, plus always the all-orders
// covering configuration.
func (f *catalogFixture) randomConfigs(rng *rand.Rand, a *Analysis, n int) []*query.Config {
	var out []*query.Config
	out = append(out, debugAllOrdersConfig(f.t, a))
	for c := 0; c < n; c++ {
		cfg := &query.Config{}
		seen := map[string]bool{}
		for i := range a.Rels {
			ri := &a.Rels[i]
			if len(ri.Interesting) == 0 || rng.Intn(3) == 0 {
				continue
			}
			col := ri.Interesting[rng.Intn(len(ri.Interesting))]
			cols := []string{col}
			if rng.Intn(2) == 0 { // widen toward covering
				for other := range ri.Needed {
					if other != col {
						cols = append(cols, other)
					}
				}
				sort.Strings(cols[1:])
			}
			key := ri.Table.Name + ":" + fmt.Sprint(cols)
			if seen[key] {
				continue
			}
			seen[key] = true
			cfg.Indexes = append(cfg.Indexes, storage.HypotheticalIndex(
				fmt.Sprintf("eq_%d_%d", c, len(cfg.Indexes)), ri.Table, cols))
		}
		out = append(out, cfg)
	}
	return out
}

package optimizer

import (
	"fmt"
	"testing"

	"github.com/pinumdb/pinum/internal/catalog"
	"github.com/pinumdb/pinum/internal/query"
	"github.com/pinumdb/pinum/internal/storage"
)

// debugStarQuery builds a 6-relation star query resembling the Q5 analogue
// without importing the workload package (which would cycle).
func debugStarQuery(t testing.TB) (*query.Query, *catalog.Catalog) {
	t.Helper()
	cat := catalog.New()
	mk := func(name string, rows int64, cols ...string) *catalog.Table {
		tb := &catalog.Table{Name: name, RowCount: rows}
		for _, c := range cols {
			ndv := rows
			if c != "id" {
				ndv = 10000
			}
			tb.Columns = append(tb.Columns, &catalog.Column{Name: c, Type: catalog.Int, NDV: ndv, Min: 1, Max: ndv})
		}
		if err := cat.AddTable(tb); err != nil {
			t.Fatal(err)
		}
		return tb
	}
	mk("f", 35_000_000, "id", "fk1", "fk2", "fk3", "m1", "a1")
	mk("d1", 1_000_000, "id", "fkc1", "a1")
	mk("d2", 1_200_000, "id", "a1")
	mk("d3", 1_500_000, "id", "fkc3", "a1")
	mk("c1", 100_000, "id", "a1")
	mk("c3", 120_000, "id", "a1")
	// Fix FK NDVs to the referenced table's cardinality.
	cat.Table("f").Column("fk1").NDV = 1_000_000
	cat.Table("f").Column("fk2").NDV = 1_200_000
	cat.Table("f").Column("fk3").NDV = 1_500_000
	cat.Table("d1").Column("fkc1").NDV = 100_000
	cat.Table("d3").Column("fkc3").NDV = 120_000

	q := &query.Query{
		Name: "debug-q5",
		Rels: []query.Rel{
			{Table: cat.Table("f")}, {Table: cat.Table("d1")}, {Table: cat.Table("d2")},
			{Table: cat.Table("d3")}, {Table: cat.Table("c1")}, {Table: cat.Table("c3")},
		},
		Joins: []query.Join{
			{Left: query.ColRef{Rel: 0, Column: "fk1"}, Right: query.ColRef{Rel: 1, Column: "id"}},
			{Left: query.ColRef{Rel: 0, Column: "fk2"}, Right: query.ColRef{Rel: 2, Column: "id"}},
			{Left: query.ColRef{Rel: 0, Column: "fk3"}, Right: query.ColRef{Rel: 3, Column: "id"}},
			{Left: query.ColRef{Rel: 1, Column: "fkc1"}, Right: query.ColRef{Rel: 4, Column: "id"}},
			{Left: query.ColRef{Rel: 3, Column: "fkc3"}, Right: query.ColRef{Rel: 5, Column: "id"}},
		},
		Filters: []query.Filter{
			{Col: query.ColRef{Rel: 0, Column: "a1"}, Op: query.Between, Value: 1, Value2: 100},
		},
		Select: []query.ColRef{
			{Rel: 0, Column: "m1"}, {Rel: 2, Column: "a1"}, {Rel: 5, Column: "a1"},
		},
		GroupBy: []query.ColRef{{Rel: 2, Column: "a1"}, {Rel: 5, Column: "a1"}},
		OrderBy: []query.ColRef{{Rel: 5, Column: "a1"}},
	}
	if err := q.Validate(); err != nil {
		t.Fatal(err)
	}
	return q, cat
}

// debugAllOrdersConfig covers every interesting order with a covering index.
func debugAllOrdersConfig(t testing.TB, a *Analysis) *query.Config {
	t.Helper()
	cfg := &query.Config{}
	n := 0
	seen := map[string]bool{}
	for i := range a.Rels {
		ri := &a.Rels[i]
		for _, col := range ri.Interesting {
			key := ri.Table.Name + ":" + col
			if seen[key] {
				continue
			}
			seen[key] = true
			cols := []string{col}
			for c := range ri.Needed {
				if c != col {
					cols = append(cols, c)
				}
			}
			n++
			cfg.Indexes = append(cfg.Indexes,
				storage.HypotheticalIndex(fmt.Sprintf("dbg_%d", n), ri.Table, cols))
		}
	}
	return cfg
}

func TestDebugExportCounts(t *testing.T) {
	q, _ := debugStarQuery(t)
	a, err := NewAnalysis(q, nil, DefaultCostParams())
	if err != nil {
		t.Fatal(err)
	}
	t.Logf("combos: %d", q.ComboCount())
	cfg := debugAllOrdersConfig(t, a)
	p := &planner{a: a, cfg: cfg, opt: Options{EnableNestLoop: true, ExportAll: true, PreciseNLJ: true}, res: &Result{}}
	top, err := p.plan()
	if err != nil {
		t.Fatal(err)
	}
	t.Logf("top paths: %d, considered %d", len(top.paths), p.res.Stats.PathsConsidered)
	hist := map[string]int{}
	coefs := map[float64]bool{}
	for _, pt := range top.paths {
		nOrd, nLook := 0, 0
		for _, rq := range pt.Leaves {
			switch rq.Mode {
			case AccessOrdered:
				nOrd++
			case AccessLookup:
				nLook++
				coefs[rq.Coef] = true
			}
		}
		hist[fmt.Sprintf("ord=%d look=%d orderlen=%d", nOrd, nLook, len(pt.Order))]++
	}
	for k, v := range hist {
		t.Logf("  %-28s %d", k, v)
	}
	t.Logf("distinct lookup coefs: %d", len(coefs))
}

package optimizer

import (
	"math"

	"github.com/pinumdb/pinum/internal/catalog"
	"github.com/pinumdb/pinum/internal/storage"
)

// CostParams are the cost-model constants, modelled directly on
// PostgreSQL's planner GUCs. All costs are in abstract "page fetch" units.
type CostParams struct {
	SeqPageCost       float64
	RandomPageCost    float64
	CPUTupleCost      float64
	CPUIndexTupleCost float64
	CPUOperatorCost   float64
}

// DefaultCostParams mirrors PostgreSQL 8.3 defaults except random_page_cost,
// lowered to 2.0 (the common analytic-workload setting) so that covering
// index scans are competitive, matching the behaviour the paper reports.
func DefaultCostParams() CostParams {
	return CostParams{
		SeqPageCost:       1.0,
		RandomPageCost:    2.0,
		CPUTupleCost:      0.01,
		CPUIndexTupleCost: 0.005,
		CPUOperatorCost:   0.0025,
	}
}

// InMemoryCostParams calibrates the model for the in-memory execution
// engine, where a "page fetch" is just decoding ~30 tuples and an index
// probe costs a few node binary-searches rather than a disk seek. The
// execution experiments plan with this profile (exactly as PostgreSQL
// deployments lower the page costs for cached databases) so that the plans
// executed on the materialised data match the substrate they run on.
func InMemoryCostParams() CostParams {
	return CostParams{
		SeqPageCost:       0.30,
		RandomPageCost:    0.40,
		CPUTupleCost:      0.01,
		CPUIndexTupleCost: 0.01,
		CPUOperatorCost:   0.0025,
	}
}

// Coster evaluates the primitive cost formulas. Both the optimizer and the
// INUM/PINUM cost-model evaluation use the same Coster, which is what makes
// the cached model exact for plans without nested loops (paper §II
// observation 1).
type Coster struct {
	P CostParams
}

// SeqScanCost is the cost of a full heap scan applying nFilters quals.
func (c *Coster) SeqScanCost(pages, rows int64, nFilters int) float64 {
	return float64(pages)*c.P.SeqPageCost +
		float64(rows)*c.P.CPUTupleCost +
		float64(rows)*float64(nFilters)*c.P.CPUOperatorCost
}

// heapPagesFetched is the Mackert–Lohman style estimate of distinct heap
// pages touched when fetching a fraction sel of rows in index order.
func heapPagesFetched(sel float64, rows, pages, tuplesPerPage int64) float64 {
	if sel <= 0 {
		return 0
	}
	if sel >= 1 {
		return float64(pages)
	}
	// Probability a given page holds at least one qualifying tuple.
	p := 1 - math.Pow(1-sel, float64(tuplesPerPage))
	return float64(pages) * p
}

// IndexScanCost is the cost of an index scan fetching fraction sel of the
// table through index ix, then visiting the heap for each match.
// indexOnly skips the heap visits (the index covers every needed column).
func (c *Coster) IndexScanCost(t *catalog.Table, ix *catalog.Index, sel float64, indexOnly bool, nFilters int) float64 {
	if sel < 0 {
		sel = 0
	}
	if sel > 1 {
		sel = 1
	}
	rows := float64(t.RowCount)
	matched := rows * sel

	// Descend the B-tree once, then read the qualifying fraction of the
	// index. The read charge uses the index's *total* page count — for a
	// what-if index that is the leaf-only §V-A estimate, for a built
	// index it includes the internal pages, which is exactly the small
	// gap experiment E1 measures.
	descent := float64(ix.Height) * c.P.RandomPageCost
	leaf := math.Ceil(float64(ix.TotalPages())*sel) * c.P.SeqPageCost
	cpu := matched * c.P.CPUIndexTupleCost

	cost := descent + leaf + cpu
	if !indexOnly {
		pages := storage.TablePages(t)
		perPage := int64(1)
		if pages > 0 {
			perPage = (t.RowCount + pages - 1) / pages
		}
		heap := heapPagesFetched(sel, t.RowCount, pages, perPage)
		cost += heap * c.P.RandomPageCost
		cost += matched * c.P.CPUTupleCost
	}
	cost += matched * float64(nFilters) * c.P.CPUOperatorCost
	return cost
}

// LookupCost is the per-loop cost of a parameterized inner index scan in a
// nested-loop join: one descent plus matchRows fetches.
func (c *Coster) LookupCost(t *catalog.Table, ix *catalog.Index, matchRows float64, indexOnly bool) float64 {
	if matchRows < 0 {
		matchRows = 0
	}
	descent := float64(ix.Height+1) * c.P.RandomPageCost
	cost := descent + matchRows*c.P.CPUIndexTupleCost
	if !indexOnly {
		cost += matchRows * (c.P.RandomPageCost + c.P.CPUTupleCost)
	}
	return cost
}

// SortCost is the CPU cost of sorting rows tuples (the engine sorts in
// memory; the paper's cost trends come from the n·log n term).
func (c *Coster) SortCost(rows float64) float64 {
	if rows < 2 {
		return c.P.CPUOperatorCost * rows
	}
	return 2 * rows * math.Log2(rows) * c.P.CPUOperatorCost
}

// HashJoinCost is the cost of building a hash table on innerRows and
// probing with outerRows, emitting outRows (input costs excluded).
func (c *Coster) HashJoinCost(outerRows, innerRows, outRows float64) float64 {
	build := innerRows * (c.P.CPUOperatorCost + c.P.CPUTupleCost)
	probe := outerRows * c.P.CPUOperatorCost * 1.5
	return build + probe + outRows*c.P.CPUTupleCost
}

// MergeJoinCost is the cost of merging two sorted inputs (input and any
// enforcing sort costs excluded).
func (c *Coster) MergeJoinCost(outerRows, innerRows, outRows float64) float64 {
	return (outerRows+innerRows)*c.P.CPUOperatorCost + outRows*c.P.CPUTupleCost
}

// NestLoopCost is the join-level overhead of a nested-loop join: pairing
// CPU and result emission. Per-loop inner cost is charged separately by the
// caller (lookup × outerRows, or materialised rescans).
func (c *Coster) NestLoopCost(outerRows, outRows float64) float64 {
	return outerRows*c.P.CPUTupleCost + outRows*c.P.CPUTupleCost
}

// MaterialRescanCost is the cost of re-reading a materialised intermediate
// of rows tuples once.
func (c *Coster) MaterialRescanCost(rows float64) float64 {
	return rows * c.P.CPUOperatorCost
}

// HashAggCost aggregates rows input tuples into groups over nCols grouping
// columns using a hash table.
func (c *Coster) HashAggCost(rows, groups float64, nCols int) float64 {
	if nCols < 1 {
		nCols = 1
	}
	return rows*c.P.CPUOperatorCost*float64(nCols) + groups*c.P.CPUTupleCost
}

// SortedAggCost aggregates a pre-sorted input: one comparison chain per row.
func (c *Coster) SortedAggCost(rows, groups float64, nCols int) float64 {
	if nCols < 1 {
		nCols = 1
	}
	return rows*c.P.CPUOperatorCost*float64(nCols)*0.5 + groups*c.P.CPUTupleCost
}

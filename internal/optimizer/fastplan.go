// Fast planner internals: the per-call plan context, the dense DP table,
// packed comparable plan keys, and bucketed subsumption pruning.
//
// The fast path exists because PINUM's whole promise is "two optimizer
// calls per query": after the batch builders (PR 1) and the incremental
// greedy pricer (PR 2), the cost of one Optimize call is the cost of cache
// construction. Profiles showed that call dominated by avoidable work —
// per-split clause rescans, per-probe configuration filtering, per-path
// string keys, and an all-pairs subsumption pass — all of which this file
// replaces with precomputation and integer identities. Results are
// bit-identical to OptimizeReference: the equivalence suite
// (equivalence_test.go) pins that for every Options combination.
package optimizer

import (
	"fmt"
	"math"
	"math/bits"

	"github.com/pinumdb/pinum/internal/catalog"
	"github.com/pinumdb/pinum/internal/query"
)

// planKey is the packed (leaf combo, output order) identity of a path — the
// fast equivalent of the reference path's string pathKey. Leaf requirements
// pack one byte per relation (access mode in the top two bits, the interned
// interesting-order column id in the low six), stored as two uint64 words so
// a join's combo is the OR of its children's. Nested-loop probe counts pack
// as interned 32-bit coefficient ids, two lanes per word; the output order
// packs the interned global column ids, 16 bits each. NewAnalysis guarantees
// the capacity invariants (≤16 relations, ≤63 interesting orders per
// relation, orders ≤8 columns) before enabling the fast path.
type planKey struct {
	leaves [2]uint64
	coefs  [8]uint64
	order  [2]uint64
}

// leafByte writes the packed requirement byte for rel into k.
func (k *planKey) setLeafByte(rel int, b uint8) {
	k.leaves[rel>>3] |= uint64(b) << uint((rel&7)*8)
}

// setCoefLane writes the interned coefficient id for rel into k.
func (k *planKey) setCoefLane(rel int, id uint32) {
	k.coefs[rel>>1] |= uint64(id) << uint((rel&1)*32)
}

// clauseInfo is one join clause prepared for O(1) split tests: the two
// relation bits plus both pre-oriented clauseRefs (including the prebuilt
// single-column sort-key slices merge joins enforce with, and their packed
// order forms).
type clauseInfo struct {
	pair     RelSet // leftBit | rightBit
	leftBit  RelSet
	fwd, rev clauseRef
}

// lookupMemo caches the best nested-loop probe index for one (relation,
// column) pair, keyed by the column's global interned id.
type lookupMemo struct {
	done bool
	ix   *catalog.Index
	cost float64
	rows float64
	id   uint16 // the column's per-relation interned id
}

// planCtx is the per-Optimize fast-path state: everything that can be
// computed once per call instead of once per probe.
type planCtx struct {
	a *Analysis
	// packed selects the ExportAll key lane: fixed-size planKeys inside
	// the packing invariants (Analysis.packed), the variable-width
	// string-key frontier outside them.
	packed bool
	// perRel holds the configuration's indexes per relation, filtered
	// once (configIndexes re-filtered the whole configuration per probe
	// on the reference path).
	perRel [][]*catalog.Index
	// clauses holds the prepared join clauses; crossClauses scans it once
	// per split, filling both orientation buffers in one pass.
	clauses        []clauseInfo
	bufFwd, bufRev []clauseRef

	// coefs interns nested-loop probe counts for planKey (PreciseNLJ);
	// coefVals is the reverse table (id-1 → value) the subsumption test
	// reads probe counts back through.
	coefs    map[float64]uint32
	coefVals []float64

	// Output-order registry: packed form, original slice, and the
	// pairwise prefix-satisfaction matrix finishRelFast buckets with.
	orderPacks [][2]uint64
	orderRefs  [][]query.ColRef
	sat        [][]bool

	// lookups memoizes lookupBest per global column id.
	lookups []lookupMemo

	// useful memoizes usefulOrder verdicts per global column id for the
	// join relation currently under construction (usefulSet).
	usefulSet RelSet
	useful    []int8 // 0 unknown, 1 useful, 2 not useful
}

func newPlanCtx(a *Analysis, cfg *query.Config) *planCtx {
	n := len(a.Rels)
	ctx := &planCtx{a: a, packed: a.packed}
	ctx.perRel = make([][]*catalog.Index, n)
	if cfg != nil {
		for i := range a.Rels {
			t := a.Rels[i].Table.Name
			var out []*catalog.Index
			for _, ix := range cfg.Indexes {
				if ix.Table == t {
					out = append(out, ix)
				}
			}
			ctx.perRel[i] = out
		}
	}
	ctx.clauses = make([]clauseInfo, len(a.Q.Joins))
	for i, j := range a.Q.Joins {
		lk := []query.ColRef{j.Left}
		rk := []query.ColRef{j.Right}
		lp, rp := ctx.packOrder(lk), ctx.packOrder(rk)
		ctx.clauses[i] = clauseInfo{
			pair:    Single(j.Left.Rel) | Single(j.Right.Rel),
			leftBit: Single(j.Left.Rel),
			fwd: clauseRef{idx: i, outer: j.Left, inner: j.Right,
				outerKey: lk, innerKey: rk, outerPack: lp, innerPack: rp},
			rev: clauseRef{idx: i, outer: j.Right, inner: j.Left,
				outerKey: rk, innerKey: lk, outerPack: rp, innerPack: lp},
		}
	}
	ctx.lookups = make([]lookupMemo, a.ordTotal+1)
	ctx.useful = make([]int8, a.ordTotal+1)
	return ctx
}

// crossClauses enumerates the join clauses crossing the disjoint sets
// (s1, s2), returning both orientations in one pass over the prebuilt
// clause table. The buffers are reused across splits: callers consume them
// before the next call. A clause crosses iff it has one endpoint in each
// set, which is two bitset tests per clause.
//
//pinum:hotpath
func (ctx *planCtx) crossClauses(s1, s2 RelSet) (fwd, rev []clauseRef) {
	fwd, rev = ctx.bufFwd[:0], ctx.bufRev[:0]
	for i := range ctx.clauses {
		ci := &ctx.clauses[i]
		if ci.pair&s1 == 0 || ci.pair&s2 == 0 {
			continue
		}
		if ci.leftBit&s1 != 0 {
			fwd = append(fwd, ci.fwd)
			rev = append(rev, ci.rev)
		} else {
			fwd = append(fwd, ci.rev)
			rev = append(rev, ci.fwd)
		}
	}
	ctx.bufFwd, ctx.bufRev = fwd, rev
	return fwd, rev
}

// lookup memoizes the reference planner's per-candidate scan for the
// cheapest probing index: the answer depends only on (relation, column).
// The minimisation replicates the reference loop exactly (first strictly
// cheaper index wins), so the chosen index and cost are bit-identical.
//
//pinum:hotpath
func (ctx *planCtx) lookup(a *Analysis, rel int, col string) *lookupMemo {
	g := a.orderGID(query.ColRef{Rel: rel, Column: col})
	m := &ctx.lookups[g]
	if !m.done {
		m.done = true
		m.id = a.ordIDs[rel][col]
		best := math.Inf(1)
		var via *catalog.Index
		for _, ix := range ctx.perRel[rel] {
			if !ix.Covers(col) {
				continue
			}
			if lc := a.LookupCost(rel, ix, col); lc < best {
				best = lc
				via = ix
			}
		}
		if via != nil {
			m.ix = via
			m.cost = best
			m.rows = a.LookupRows(rel, col)
		}
	}
	return m
}

// coefID interns a nested-loop probe coefficient (1-based, so a zero lane
// in planKey.coefs means "no coefficient recorded", mirroring how the
// string key only appends the coefficient for precise lookup leaves).
func (ctx *planCtx) coefID(coef float64) uint32 {
	if ctx.coefs == nil {
		ctx.coefs = make(map[float64]uint32)
	}
	if id, ok := ctx.coefs[coef]; ok {
		return id
	}
	id := uint32(len(ctx.coefs) + 1)
	ctx.coefs[coef] = id
	ctx.coefVals = append(ctx.coefVals, coef)
	return id
}

// coefLane reads the interned coefficient id for rel out of k.
func (k *planKey) coefLane(rel int) uint32 {
	return uint32(k.coefs[rel>>1] >> uint((rel&1)*32))
}

// packOrder packs an output order as its interned global column ids, 16
// bits per column. Ids are 1-based, so the packing is prefix-unambiguous
// and the low 16 bits are always the leading column's id.
func (ctx *planCtx) packOrder(order []query.ColRef) [2]uint64 {
	var o [2]uint64
	for i, cr := range order {
		o[i>>2] |= uint64(ctx.a.orderGID(cr)) << uint((i&3)*16)
	}
	return o
}

// orderIDPacked registers an output order (given in both packed and slice
// form) in the context registry and returns its dense id, extending the
// pairwise satisfaction matrix for new entries. The packed form is
// injective (ids are per-(rel, column) unique), so equal packs mean equal
// orders and no column is ever re-interned here.
func (ctx *planCtx) orderIDPacked(packed [2]uint64, order []query.ColRef) int32 {
	for i := range ctx.orderPacks {
		if ctx.orderPacks[i] == packed {
			return int32(i)
		}
	}
	n := len(ctx.orderPacks)
	for i := 0; i < n; i++ {
		ctx.sat[i] = append(ctx.sat[i], OrderSatisfies(ctx.orderRefs[i], order))
	}
	row := make([]bool, n+1)
	for j := 0; j < n; j++ {
		row[j] = OrderSatisfies(order, ctx.orderRefs[j])
	}
	row[n] = true // every order satisfies itself
	ctx.orderPacks = append(ctx.orderPacks, packed)
	ctx.orderRefs = append(ctx.orderRefs, order)
	ctx.sat = append(ctx.sat, row)
	return int32(n)
}

// usefulMemo answers "can an order led by this column still matter above
// this relation set?" through the per-call verdict cache, computing via
// usefulLead on a miss. The cache is keyed by the column's global interned
// id and resets when the join relation under construction changes (the DP
// completes one relation at a time). Both usefulOrder's fast branch and
// usefulOrderFast share this memo, so the invalidation protocol lives in
// exactly one place.
//
//pinum:hotpath
func (p *planner) usefulMemo(set RelSet, lead query.ColRef, g uint16) bool {
	ctx := p.ctx
	if ctx.usefulSet != set {
		ctx.usefulSet = set
		for i := range ctx.useful {
			ctx.useful[i] = 0
		}
	}
	switch ctx.useful[g] {
	case 1:
		return true
	case 2:
		return false
	}
	if p.usefulLead(set, lead) {
		ctx.useful[g] = 1
		return true
	}
	ctx.useful[g] = 2
	return false
}

// usefulOrderFast is usefulOrder with the verdict memoized per (join
// relation, leading column id); the id comes straight from the packed
// order, so the memo costs two array reads per probe. It returns the
// (possibly trimmed) order in both forms.
//
//pinum:hotpath
func (p *planner) usefulOrderFast(set RelSet, order []query.ColRef, pack [2]uint64) ([]query.ColRef, [2]uint64) {
	if len(order) == 0 {
		return nil, [2]uint64{}
	}
	// The low 16 bits of the pack are the leading column's global id.
	if p.usefulMemo(set, order[0], uint16(pack[0])) {
		return order, pack
	}
	return nil, [2]uint64{}
}

// packLeaf folds one relation's leaf requirement into the key, interning
// the column through the analysis maps. Join candidates avoid this path
// entirely (their children's packed leaves OR together); it runs only for
// base-relation scans and the grouping planner's complete plans.
//
//pinum:hotpath
func (p *planner) packLeaf(k *planKey, rel int, req LeafReq) {
	if req.Mode == AccessAny {
		return
	}
	// Packed lane only, so the id fits 6 bits (Analysis.packed).
	id := uint8(p.a.ordIDs[rel][req.Col])
	if p.opt.PaperPrune {
		// The string key's 'c' mode collapse: the byte is the bare column id.
		k.setLeafByte(rel, id)
	} else {
		k.setLeafByte(rel, uint8(req.Mode)<<6|id)
	}
	if req.Mode == AccessLookup && p.opt.PreciseNLJ {
		k.setCoefLane(rel, p.ctx.coefID(req.Coef))
	}
}

// pathKeyOf packs the key of an already-materialised path (base-relation
// scans and the grouping planner's complete plans).
//
//pinum:hotpath
func (p *planner) pathKeyOf(np *Path) planKey {
	var k planKey
	for v := uint64(np.Rels); v != 0; {
		rel := bits.TrailingZeros64(v)
		v &^= 1 << uint(rel)
		p.packLeaf(&k, rel, np.Leaves[rel])
	}
	k.order = p.ctx.packOrder(np.Order)
	return k
}

// keyOf returns the packed key of a path retained by a finished join
// relation (fast ExportAll mode only; finishRelFast assigns pkRef when it
// moves a kept path's key into the arena).
func (p *planner) keyOf(pt *Path) *planKey {
	return &p.keyArena[pt.pkRef-1]
}

// candKeyOf packs the key of a join candidate without materialising it: the
// children's packed leaf combos OR together (their relation sets are
// disjoint), the nested-loop probe adds its own byte, and the output order
// pack and the children's arena keys were threaded through joinPaths.
//
//pinum:hotpath
func (p *planner) candKeyOf(c *joinCand) planKey {
	var k planKey
	k.leaves = c.outerKey.leaves
	if c.innerKey != nil {
		k.leaves[0] |= c.innerKey.leaves[0]
		k.leaves[1] |= c.innerKey.leaves[1]
	}
	if p.opt.PreciseNLJ {
		k.coefs = c.outerKey.coefs
		if c.innerKey != nil {
			for w := range k.coefs {
				k.coefs[w] |= c.innerKey.coefs[w]
			}
		}
	}
	if c.op == OpNestLoop {
		b := uint8(AccessLookup)<<6 | uint8(c.nljColID)
		if p.opt.PaperPrune {
			b = uint8(c.nljColID)
		}
		k.setLeafByte(c.nljRel, b)
		if p.opt.PreciseNLJ {
			k.setCoefLane(c.nljRel, p.ctx.coefID(c.nljCoef))
		}
	}
	k.order = c.orderPack
	return k
}

// frontierAdd runs one packed-key arrival through the insertion-time
// dominance frontier (frontier.go documents the protocol and why it is
// exact). It returns the arrival's slot and whether the caller should
// materialise and store the path (p.keyed[slot] = np); a false return
// means the arrival lost its dedup slot or was dominated on arrival, so
// no Path is ever allocated for it. All screening here reads packed keys
// and the slot metric/order arrays only — never p.keyed — which is what
// lets dead slots exist without a materialised path.
//
// Under PaperPrune+PreciseNLJ the key keeps NLJ coefficient lanes that the
// column-collapsed subsumption ignores, so two distinct keys can dominate
// each other and the batch rule — compare against the whole population,
// dead members included — kills both sides of an equal-metric mutual pair.
// Live-only screening would keep whichever arrived first, so in that mode
// (zombie below) dead slots stay parked in their buckets as dominators and
// every arrival, dominated or not, runs the eviction scan. Every other
// mode's key granularity matches its subsumption granularity, making
// domination antisymmetric, and there live-only screening is provably
// exact (see frontier.go) and keeps the scans shorter.
//
// bucketEnt is one frontier-bucket member: the slot id plus copies of the
// scan-hot fields (metric for the early break, the two leaf words for the
// subset reject), so dominator scans walk sequential memory and only touch
// the full packed key after the quick reject passes.
type bucketEnt struct {
	metric float64
	l0, l1 uint64
	slot   int32
}

//pinum:hotpath
func (p *planner) frontierAdd(key *planKey, m float64, order []query.ColRef) (int32, bool) {
	zombie := p.opt.PaperPrune && p.opt.PreciseNLJ
	if s, ok := p.fastKey[*key]; ok {
		if p.slotMetric[s] <= m {
			p.res.Stats.PathsPruned++
			return 0, false
		}
		p.res.Stats.PathsPruned++ // the displaced incumbent
		if p.keyed[s] != nil {
			// Live improvement: the dominator set only shrinks as the
			// metric drops, so no re-screen — reposition in the bucket
			// (searched at the old metric) and evict what s now dominates.
			p.bucketRemove(s)
			p.slotMetric[s] = m
			p.bucketInsert(s)
			p.frontierEvict(s, zombie)
			return s, true
		}
		if zombie {
			// The dead slot is a zombie parked in its bucket; reposition
			// it, re-screen at the new metric — the recorded witness makes
			// that O(1) while it still applies — and run the eviction scan
			// whether it revives or not (dead population members still
			// dominate under the batch rule).
			p.bucketRemove(s)
			p.slotMetric[s] = m
			dominated := true
			if w := p.slotWitness[s]; w < 0 || p.slotMetric[w] > m {
				d := p.frontierDominated(p.slotOrd[s], m, &p.keys[s])
				p.slotWitness[s] = d
				dominated = d >= 0
			}
			p.bucketInsert(s)
			p.frontierEvict(s, zombie)
			if dominated {
				p.res.Stats.FrontierDrops++
				return 0, false
			}
			p.res.Stats.FrontierInserts++
			return s, true
		}
		p.slotMetric[s] = m
		if w := p.slotWitness[s]; w >= 0 && p.keyed[w] != nil && p.slotMetric[w] <= m {
			p.res.Stats.FrontierDrops++
			return 0, false
		}
		if d := p.frontierDominated(p.slotOrd[s], m, &p.keys[s]); d >= 0 {
			p.slotWitness[s] = d
			p.res.Stats.FrontierDrops++
			return 0, false
		}
		// Revival: the slot re-enters the frontier under its original
		// sequence number, preserving the first-insertion tie order.
		p.res.Stats.FrontierInserts++
		p.bucketInsert(s)
		p.frontierEvict(s, zombie)
		return s, true
	}
	s := int32(len(p.keys))
	p.fastKey[*key] = s
	p.keys = append(p.keys, *key)
	p.keyed = append(p.keyed, nil)
	ord := p.ctx.orderIDPacked(key.order, order)
	p.slotOrd = append(p.slotOrd, ord)
	p.slotMetric = append(p.slotMetric, m)
	p.slotWitness = append(p.slotWitness, -1)
	if zombie {
		d := p.frontierDominated(ord, m, &p.keys[s])
		p.slotWitness[s] = d
		p.bucketInsert(s)
		p.frontierEvict(s, zombie)
		if d >= 0 {
			p.res.Stats.FrontierDrops++
			return 0, false
		}
		p.res.Stats.FrontierInserts++
		return s, true
	}
	if d := p.frontierDominated(ord, m, &p.keys[s]); d >= 0 {
		p.slotWitness[s] = d
		p.res.Stats.FrontierDrops++
		return 0, false
	}
	p.res.Stats.FrontierInserts++
	p.bucketInsert(s)
	p.frontierEvict(s, zombie)
	return s, true
}

// frontierDominated screens an arrival against the frontier: a bucket
// member with metric ≤ m whose order satisfies ord and whose packed key
// subsumes the arrival's. Buckets hold the live slots (plus, in zombie
// mode, the dead ones — dominators either way, so no liveness check is
// needed) in (metric, slot) order, so each scan stops at the first larger
// metric, exactly like the batch pass over its fully sorted slice.
// Returns the dominating slot — the caller records it as the dead slot's
// witness — or -1.
//
//pinum:hotpath
func (p *planner) frontierDominated(ord int32, m float64, key *planKey) int32 {
	sat := p.ctx.sat
	l0, l1 := key.leaves[0], key.leaves[1]
	for b := range p.buckets {
		if !sat[b][ord] {
			continue
		}
		bucket := p.buckets[b]
		for i := range bucket {
			e := &bucket[i]
			if e.metric > m {
				break
			}
			if e.l0&^l0 == 0 && e.l1&^l1 == 0 && p.subsumesPacked(&p.keys[e.slot], key) {
				return e.slot
			}
		}
	}
	return -1
}

// frontierEvict kills every live slot the just-inserted (or improved)
// slot s now dominates: metric ≥ s's — the batch pass dominates across
// equal metrics regardless of arrival order — in a bucket whose order s
// satisfies, with a subsumed key. Outside zombie mode the killed slots
// also leave their buckets (transitivity re-covers anything they
// dominated); in zombie mode they stay parked as future dominators.
//
//pinum:hotpath
func (p *planner) frontierEvict(s int32, zombie bool) {
	m := p.slotMetric[s]
	sk := &p.keys[s]
	sl0, sl1 := sk.leaves[0], sk.leaves[1]
	sat := p.ctx.sat[p.slotOrd[s]]
	for b := range p.buckets {
		if !sat[b] {
			continue
		}
		bucket := p.buckets[b]
		lo, hi := 0, len(bucket)
		for lo < hi {
			mid := int(uint(lo+hi) >> 1)
			if bucket[mid].metric < m {
				lo = mid + 1
			} else {
				hi = mid
			}
		}
		if lo == len(bucket) {
			continue
		}
		if zombie {
			for i := lo; i < len(bucket); i++ {
				e := &bucket[i]
				t := e.slot
				if t != s && p.keyed[t] != nil && sl0&^e.l0 == 0 && sl1&^e.l1 == 0 &&
					p.subsumesPacked(sk, &p.keys[t]) {
					p.keyed[t] = nil
					p.slotWitness[t] = s
					p.res.Stats.FrontierEvictions++
				}
			}
			continue
		}
		w := lo
		for i := lo; i < len(bucket); i++ {
			e := bucket[i]
			t := e.slot
			if t != s && sl0&^e.l0 == 0 && sl1&^e.l1 == 0 && p.subsumesPacked(sk, &p.keys[t]) {
				p.keyed[t] = nil
				p.slotWitness[t] = s
				p.res.Stats.FrontierEvictions++
				continue
			}
			bucket[w] = e
			w++
		}
		p.buckets[b] = bucket[:w]
	}
}

// bucketInsert places s into its order bucket at its (metric, slot)
// position; bucketRemove takes it back out by binary search on the same
// total order. Slot ids are first-arrival order, so the in-bucket tie
// order is the reference planner's stable-sort tie order.
//
//pinum:hotpath
func (p *planner) bucketInsert(s int32) {
	for len(p.buckets) < len(p.ctx.orderPacks) {
		p.buckets = append(p.buckets, nil)
	}
	ord := p.slotOrd[s]
	b := p.buckets[ord]
	k := &p.keys[s]
	e := bucketEnt{metric: p.slotMetric[s], l0: k.leaves[0], l1: k.leaves[1], slot: s}
	lo, hi := 0, len(b)
	for lo < hi {
		mid := int(uint(lo+hi) >> 1)
		if b[mid].metric < e.metric || (b[mid].metric == e.metric && b[mid].slot < s) {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	b = append(b, bucketEnt{})
	copy(b[lo+1:], b[lo:])
	b[lo] = e
	p.buckets[ord] = b
}

//pinum:hotpath
func (p *planner) bucketRemove(s int32) {
	ord := p.slotOrd[s]
	b := p.buckets[ord]
	m := p.slotMetric[s]
	lo, hi := 0, len(b)
	for lo < hi {
		mid := int(uint(lo+hi) >> 1)
		if b[mid].metric < m || (b[mid].metric == m && b[mid].slot < s) {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	copy(b[lo:], b[lo+1:])
	p.buckets[ord] = b[:len(b)-1]
}

// addJoinFast screens a join candidate before any allocation: in ExportAll
// mode through the insertion-time dominance frontier, in normal mode
// against the retained path list. Only survivors are materialised.
//
//pinum:hotpath
func (p *planner) addJoinFast(jr *joinRel, c *joinCand) {
	p.res.Stats.PathsConsidered++
	if p.opt.ExportAll {
		if !p.ctx.packed {
			// Wide lane: the candidate's plan identity does not fit
			// planKey, so materialise and run the string-keyed frontier.
			p.wideAdd(c.materialize(p, jr.set))
			return
		}
		m := c.internal
		if p.opt.PaperPrune {
			m = c.cost
		}
		key := p.candKeyOf(c)
		if slot, ok := p.frontierAdd(&key, m, c.order); ok {
			p.keyed[slot] = c.materialize(p, jr.set)
		}
		return
	}
	const fuzz = 1e-9
	for _, old := range jr.paths {
		if OrderSatisfies(old.Order, c.order) && old.Cost <= c.cost*(1+fuzz) {
			p.res.Stats.PathsPruned++
			return
		}
	}
	np := c.materialize(p, jr.set)
	keep := jr.paths[:0]
	for _, old := range jr.paths {
		if OrderSatisfies(np.Order, old.Order) && np.Cost <= old.Cost*(1+fuzz) {
			p.res.Stats.PathsPruned++
			continue
		}
		keep = append(keep, old)
	}
	jr.paths = append(keep, np)
}

// planFast is the connectivity-aware DP loop: join relations indexed by
// relation mask in a dense table, but instead of sweeping every mask and
// every submask split, the prebuilt join graph emits only csg-cmp pairs
// (enumerate.go), pre-sorted into the dense sweep's order so candidate
// insertion — and with it every tie-break — matches the reference planner
// exactly. Disconnection is detected up front by a graph reachability
// check rather than discovered at the full mask.
//
// relTable is planFast's DP table over join relations: a dense
// mask-indexed slice when the mask space is small (≤16 relations, at most
// 64K slots), a map beyond it. The connectivity-aware enumeration touches
// only planned masks, so the wide form never materialises the exponential
// mask space.
type relTable struct {
	dense  []*joinRel
	sparse map[RelSet]*joinRel
}

func newRelTable(n int) *relTable {
	if n <= 16 {
		return &relTable{dense: make([]*joinRel, 1<<uint(n))}
	}
	return &relTable{sparse: make(map[RelSet]*joinRel, 4*n)}
}

//pinum:hotpath
func (t *relTable) get(s RelSet) *joinRel {
	if t.dense != nil {
		return t.dense[s]
	}
	return t.sparse[s]
}

//pinum:hotpath
func (t *relTable) put(s RelSet, jr *joinRel) {
	if t.dense != nil {
		t.dense[s] = jr
		return
	}
	t.sparse[s] = jr
}

//pinum:hotpath
func (p *planner) planFast() (*joinRel, error) {
	n := len(p.a.Rels)
	rels := newRelTable(n)
	planned := 0
	for i := 0; i < n; i++ {
		jr := p.scanPaths(i)
		p.finishRel(jr)
		if len(jr.paths) == 0 {
			return nil, fmt.Errorf("optimizer: no access path for relation %d", i)
		}
		rels.put(jr.set, jr)
		planned++
	}
	if n == 1 {
		p.res.Stats.JoinRels = 1
		return rels.get(Single(0)), nil
	}

	a := p.a
	if !a.ccpOnce {
		a.ccpOnce = true
		// Connectivity is checked up front (the query package's shared
		// reachability test), so a cross-product query fails before any
		// join enumeration instead of at the full mask.
		a.ccpConnected = a.Q.JoinGraphConnected()
		if a.ccpConnected {
			g := newJoinGraph(n, p.ctx.clauses)
			a.ccpPairs, a.ccpFits = g.csgCmpPairs(enumPairCap)
		}
	}
	if !a.ccpConnected {
		return nil, fmt.Errorf("optimizer: join graph of query %s is disconnected", p.a.Q.Name)
	}
	if !a.ccpFits {
		if rels.dense == nil {
			// Past 16 relations the in-place sweep's 3^n splits are out of
			// reach; only the connectivity-aware enumeration is feasible,
			// and its pair list just overflowed.
			return nil, fmt.Errorf("optimizer: query %s joins %d relations with a join graph too dense to enumerate", a.Q.Name, n)
		}
		// The graph is dense enough that the pair list would rival the
		// dense sweep's 3^n split count in memory; sweep in place instead
		// (same order, same results, no pair materialisation).
		return p.planFastDense(rels.dense, planned)
	}
	pairs := a.ccpPairs
	p.res.Stats.EnumStates += len(pairs)

	// Pairs arrive grouped by union mask, ascending, so both halves of
	// every pair are planned before their union, and each join relation is
	// filled contiguously — finishRel drains the keyed store per group
	// exactly as the dense sweep did per mask. Both halves are connected
	// with at least one crossing clause by construction, so the dense
	// sweep's nil-half and empty-clause screens have nothing left to catch.
	for gi := 0; gi < len(pairs); {
		mask := pairs[gi].mask
		jr := &joinRel{set: mask, rows: p.a.JoinRows(mask)}
		for ; gi < len(pairs) && pairs[gi].mask == mask; gi++ {
			s1 := pairs[gi].sub
			s2 := mask ^ s1
			fwd, rev := p.ctx.crossClauses(s1, s2)
			p.res.Stats.ClauseLookups++
			p.joinPaths(jr, rels.get(s1), rels.get(s2), fwd)
			p.joinPaths(jr, rels.get(s2), rels.get(s1), rev)
		}
		p.finishRel(jr)
		rels.put(mask, jr)
		planned++
	}
	p.res.Stats.JoinRels = planned
	// Every non-trivial mask the dense sweep would visit but the
	// enumeration never produced is a disconnected subset; the reference
	// planner counts the same masks one by one as its splits come up empty.
	// (Past 62 relations the mask count overflows int; no reference run
	// exists at that width to compare stats against.)
	if n <= 62 {
		p.res.Stats.MasksSkipped += (1<<uint(n) - 1) - planned
	}
	top := rels.get(RelSet(1<<uint(n)) - 1)
	if top == nil || len(top.paths) == 0 {
		return nil, fmt.Errorf("optimizer: join graph of query %s is disconnected", p.a.Q.Name)
	}
	return top, nil
}

// planFastDense is the PR 3 dense-table sweep, retained as planFast's
// fallback for graphs whose csg-cmp pair count overflows enumPairCap (near-
// clique joins approaching the 16-relation cap, where connectivity-aware
// enumeration saves nothing). It walks every submask split of every mask in
// place — no pair list, no sort — visiting splits in exactly the order the
// sorted pair list reproduces, so results stay bit-identical either way.
// rels holds the already-planned single-relation entries; planned counts
// them.
//
//pinum:hotpath
func (p *planner) planFastDense(rels []*joinRel, planned int) (*joinRel, error) {
	n := len(p.a.Rels)
	full := RelSet(1<<uint(n)) - 1
	for mask := RelSet(3); mask <= full; mask++ {
		low := mask & -mask
		if mask == low {
			continue // single relation, already planned
		}
		var jr *joinRel
		// Enumerate proper submasks containing the lowest bit, so each
		// unordered split is visited once.
		for s1 := (mask - 1) & mask; s1 > 0; s1 = (s1 - 1) & mask {
			if s1&low == 0 {
				continue
			}
			p.res.Stats.EnumStates++
			s2 := mask ^ s1
			left, right := rels[s1], rels[s2]
			if left == nil || right == nil {
				continue
			}
			fwd, rev := p.ctx.crossClauses(s1, s2)
			p.res.Stats.ClauseLookups++
			if len(fwd) == 0 {
				continue
			}
			if jr == nil {
				jr = &joinRel{set: mask, rows: p.a.JoinRows(mask)}
			}
			p.joinPaths(jr, left, right, fwd)
			p.joinPaths(jr, right, left, rev)
		}
		if jr != nil {
			p.finishRel(jr)
			rels[mask] = jr
			planned++
		} else {
			p.res.Stats.MasksSkipped++
		}
	}
	p.res.Stats.JoinRels = planned
	top := rels[full]
	if top == nil || len(top.paths) == 0 {
		return nil, fmt.Errorf("optimizer: join graph of query %s is disconnected", p.a.Q.Name)
	}
	return top, nil
}

// finishRelFast drains the frontier for one completed join relation. The
// pruning already happened at insertion time, so all that remains is to
// count the dead slots (exactly the keys the old batch pass pruned after
// materialising them), order the live ones by (metric, first-arrival) —
// byte-identical to the reference pass's kept sequence — and park their
// keys in the arena. The slot/bucket buffers are reused across relations.
//
//pinum:hotpath
func (p *planner) finishRelFast(jr *joinRel) {
	paths, keys := p.keyed, p.keys
	if len(paths) == 0 {
		jr.paths = nil
		return
	}
	idx := p.idxBuf[:0]
	for s := range paths {
		if paths[s] == nil {
			p.res.Stats.PathsPruned++
			continue
		}
		idx = append(idx, int32(s))
	}
	sortSlotsByMetric(idx, p.slotMetric)
	kept := make([]*Path, 0, len(idx))
	for _, s := range idx {
		// Survivors park their key in the per-call arena; the joins built
		// on top of this relation read it back through pkRef. Pruned
		// paths' keys die with the scratch buffer.
		paths[s].pkRef = int32(len(p.keyArena) + 1)
		p.keyArena = append(p.keyArena, keys[s])
		kept = append(kept, paths[s])
	}
	jr.paths = kept
	p.idxBuf = idx

	p.keyed = paths[:0]
	p.keys = keys[:0]
	p.slotMetric = p.slotMetric[:0]
	p.slotOrd = p.slotOrd[:0]
	p.slotWitness = p.slotWitness[:0]
	for b := range p.buckets {
		p.buckets[b] = p.buckets[b][:0]
	}
	clear(p.fastKey)
}

const (
	swarLo7 = 0x7f7f7f7f7f7f7f7f
	swarHi  = 0x8080808080808080
)

// byteSpread returns a mask with 0xff in every byte of v that is non-zero.
func byteSpread(v uint64) uint64 {
	x := ((v & swarLo7) + swarLo7) | v
	return (x & swarHi) >> 7 * 0xff
}

// lookupBits marks bit 7 of every byte of v whose access-mode bits encode
// AccessLookup (binary 10: bit 7 set, bit 6 clear).
func lookupBits(v uint64) uint64 {
	return v & swarHi &^ ((v << 1) & swarHi)
}

// subsumesPacked is comboSubsumes/comboSubsumesByColumn over packed leaf
// words. Any dominator's requirement bytes are a subset of the candidate's
// (Φ slots are zero, equal slots share bits), so a two-word bitwise subset
// test rejects most pairs before the byte-level pass. A differing
// requirement byte is then acceptable only when the would-be dominator's
// slot is Φ (zero) and — outside the PaperPrune column collapse — the
// dominated slot is not a lookup (a lookup is only ever subsumed by an
// identical lookup). Under PreciseNLJ the numeric probe counts of lookup
// slots are compared through the interned coefficient lanes.
//
//pinum:hotpath
func (p *planner) subsumesPacked(ka, kb *planKey) bool {
	if ka.leaves[0]&^kb.leaves[0] != 0 || ka.leaves[1]&^kb.leaves[1] != 0 {
		return false
	}
	if p.opt.PaperPrune {
		for w := 0; w < 2; w++ {
			d := ka.leaves[w] ^ kb.leaves[w]
			if d != 0 && ka.leaves[w]&byteSpread(d) != 0 {
				return false
			}
		}
		return true
	}
	for w := 0; w < 2; w++ {
		d := ka.leaves[w] ^ kb.leaves[w]
		if d == 0 {
			continue
		}
		m := byteSpread(d)
		if ka.leaves[w]&m != 0 {
			return false
		}
		if lookupBits(kb.leaves[w])&m != 0 {
			return false
		}
	}
	if p.opt.PreciseNLJ {
		vals := p.ctx.coefVals
		for w := 0; w < 2; w++ {
			for lm := lookupBits(kb.leaves[w]); lm != 0; lm &= lm - 1 {
				rel := w*8 + bits.TrailingZeros64(lm)>>3
				// Matching lookup slots have lanes on both sides (every
				// precise lookup leaf records one).
				if vals[ka.coefLane(rel)-1] > vals[kb.coefLane(rel)-1] {
					return false
				}
			}
		}
	}
	return true
}

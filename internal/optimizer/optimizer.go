// Package optimizer implements a bottom-up, System-R / PostgreSQL-style
// query optimizer: an access path collector, a dynamic-programming join
// planner that tracks interesting orders as pathkeys, and a grouping
// planner that layers aggregation and ordering on top (paper §III).
//
// Three hooks reproduce PINUM's optimizer modifications (paper §V):
//
//   - Options.EnableNestLoop=false removes nested-loop joins entirely
//     (the enable_nestloop tweak of §V-B);
//   - Options.CollectAccessCosts keeps every index access path in the
//     collector and reports its cost (§V-C);
//   - Options.ExportAll switches the join planner's pruning to the
//     subsumption rule of §V-D and exports one optimal plan per useful
//     interesting order combination from a single call.
//
// Two planner implementations share all cost arithmetic. Optimize runs the
// fast path (fastplan.go): clause bitsets consulted once per split, a dense
// mask-indexed DP table, interned fixed-size plan keys, bucketed subsumption
// pruning, and Path materialisation deferred until a candidate survives the
// cheap screens. OptimizeReference retains the original loop — map-keyed DP
// table, per-direction clause rescans, string plan keys, all-pairs pruning —
// as the equivalence oracle: both produce bit-identical results.
package optimizer

import (
	"fmt"
	"math"
	"math/bits"
	"sort"
	"strconv"

	"github.com/pinumdb/pinum/internal/catalog"
	"github.com/pinumdb/pinum/internal/query"
)

// Options selects the optimizer mode for one call.
type Options struct {
	// EnableNestLoop permits nested-loop join paths. INUM/PINUM cache
	// construction makes one call with and one without them.
	EnableNestLoop bool
	// ExportAll replaces cheapest-total pruning with the paper's
	// subsumption pruning and exports one plan per useful interesting
	// order combination (the PINUM cache-construction hook).
	ExportAll bool
	// CollectAccessCosts reports the access cost of every configuration
	// index instead of only the surviving cheapest paths (the PINUM
	// access-cost hook).
	CollectAccessCosts bool
	// PreciseNLJ keeps nested-loop plans that differ only in probe count
	// apart during subsumption pruning (the paper's §V-D higher-accuracy
	// option: "a bigger plan cache and slower cost lookup"). Off by
	// default, matching the paper's coarse treatment of nested loops.
	PreciseNLJ bool
	// PaperPrune applies §V-D's pruning rule literally, comparing total
	// cost under the planning configuration ("Cost(SA) < Cost(SB)")
	// instead of the provably-safe internal cost. It prunes far more —
	// PINUM uses it for the nested-loop export call, accepting the small
	// cost-model errors the paper reports.
	PaperPrune bool
}

// IndexAccess reports the harvested access costs of one configuration index
// on one query relation (the §V-C batch lookup output).
type IndexAccess struct {
	Rel        int
	Index      *catalog.Index
	ScanCost   float64 // full/range scan through the index
	IndexOnly  bool    // scan avoids the heap entirely
	OrderCol   string  // interesting order the index covers, "" if none
	LookupCost float64 // per-probe nested-loop lookup on the lead column
}

// PlannerStats counts planner work, used by the experiments to show where
// INUM's repeated calls spend their time and how much of it the fast path
// eliminates.
type PlannerStats struct {
	PathsConsidered int
	PathsRetained   int
	// PathsPruned counts candidates discarded by any pruning screen:
	// key-slot losses in ExportAll dedup, dominance rejections and
	// evictions in normal mode, and subsumption removals in finishRel.
	PathsPruned int
	JoinRels    int
	// ClauseLookups counts join-clause set computations for DP splits.
	// The reference planner rescans the clause list three times per
	// viable split (a connectivity probe plus once per join direction);
	// the fast planner consults its prebuilt clause bitsets once.
	ClauseLookups int
	// EnumStates counts the DP split states the join enumeration visited.
	// The reference planner's dense sweep walks every proper submask of
	// every relation subset, discovering disconnected subproblems only by
	// finding nothing to join; the fast planner enumerates exactly the
	// connected subgraph / connected-complement pairs of the join graph
	// (DPccp), so its count is the number of genuinely plannable splits.
	EnumStates int
	// MasksSkipped counts the non-trivial relation subsets the dense sweep
	// visits but that are disconnected and can never hold a plan. The
	// reference planner discovers each by exhausting its splits; the fast
	// planner never touches them and reports the same count arithmetically,
	// so the two planners' values coincide (the equivalence suite pins it).
	MasksSkipped int
	// FrontierInserts / FrontierDrops / FrontierEvictions count the
	// insertion-time dominance frontier's work in ExportAll mode: keys that
	// entered the live frontier (first arrivals and revivals of previously
	// dominated keys), arrivals screened out as dominated before
	// materialisation, and live keys evicted by a later-arriving dominator.
	// The fast planner maintains the frontier for real; the reference
	// planner replays the same protocol through a counting mirror while its
	// batch pass computes the results, so the equivalence suites can pin
	// the counters equal. Drops are the fast path's headline saving: each
	// is a Path (and its merged leaf slice) never allocated.
	FrontierInserts   int
	FrontierDrops     int
	FrontierEvictions int
}

// Add accumulates o into s (used by cache builders that aggregate the work
// of several optimizer calls).
func (s *PlannerStats) Add(o PlannerStats) {
	s.PathsConsidered += o.PathsConsidered
	s.PathsRetained += o.PathsRetained
	s.PathsPruned += o.PathsPruned
	s.JoinRels += o.JoinRels
	s.ClauseLookups += o.ClauseLookups
	s.EnumStates += o.EnumStates
	s.MasksSkipped += o.MasksSkipped
	s.FrontierInserts += o.FrontierInserts
	s.FrontierDrops += o.FrontierDrops
	s.FrontierEvictions += o.FrontierEvictions
}

// Result is the output of one optimizer call.
type Result struct {
	// Best is the cheapest complete plan under the given configuration.
	Best *Path
	// Exported holds, in ExportAll mode, the optimal plan for every
	// useful interesting order combination (after subsumption pruning).
	Exported []*Path
	// AccessCosts holds, in CollectAccessCosts mode, the harvested
	// per-index access costs.
	AccessCosts []IndexAccess
	Stats       PlannerStats
}

// Optimize plans the analysed query under the given index configuration.
// This function is "one optimizer call" in the paper's accounting. It uses
// the fast planner whenever the analysis supports it (Analysis.FastPlannable)
// and falls back to the reference loop otherwise; results are bit-identical
// either way.
func Optimize(a *Analysis, cfg *query.Config, opt Options) (*Result, error) {
	return optimize(a, cfg, opt, a.fastPlan)
}

// OptimizeReference plans with the original (pre-fast-path) planner loop:
// map-keyed DP table, per-direction clause rescans, string plan keys and
// all-pairs subsumption pruning. It is retained as the equivalence oracle
// for the fast path, the way Advisor.RunReference anchors the incremental
// cost engine: identical results, different work.
func OptimizeReference(a *Analysis, cfg *query.Config, opt Options) (*Result, error) {
	return optimize(a, cfg, opt, false)
}

func optimize(a *Analysis, cfg *query.Config, opt Options, fast bool) (*Result, error) {
	n := len(a.Rels)
	if n == 0 {
		return nil, fmt.Errorf("optimizer: query %s has no relations", a.Q.Name)
	}
	if n > 64 {
		return nil, fmt.Errorf("optimizer: query %s joins %d relations; the DP planner supports at most 64", a.Q.Name, n)
	}
	if !fast && n > 16 {
		// The reference loop sweeps every mask and submask split; past 16
		// relations only the fast planner's connectivity-aware enumeration
		// is feasible.
		return nil, fmt.Errorf("optimizer: query %s joins %d relations; the reference planner supports at most 16", a.Q.Name, n)
	}
	p := &planner{a: a, cfg: cfg, opt: opt, res: &Result{}}
	if fast {
		p.ctx = newPlanCtx(a, cfg)
		if opt.ExportAll && a.packed {
			p.fastKey = make(map[planKey]int32, 64)
		}
	}
	top, err := p.plan()
	if err != nil {
		return nil, err
	}
	final := p.finalize(top.paths)
	if len(final) == 0 {
		return nil, fmt.Errorf("optimizer: query %s produced no complete plan", a.Q.Name)
	}
	best := final[0]
	for _, pt := range final[1:] {
		if pt.Cost < best.Cost {
			best = pt
		}
	}
	p.res.Best = best
	if opt.ExportAll {
		p.res.Exported = final
	}
	if opt.CollectAccessCosts {
		p.collectAccessCosts()
	}
	return p.res, nil
}

type planner struct {
	a   *Analysis
	cfg *query.Config
	opt Options
	res *Result

	// ctx is the per-call fast-path state (fastplan.go); nil selects the
	// reference planner.
	ctx *planCtx

	// Fast-path ExportAll construction state for the join relation
	// currently being filled. The DP completes one relation before
	// starting the next, so a single keyed store (and its map) serves
	// the whole call; finishRelFast drains and resets it per relation,
	// moving the kept paths' keys into keyArena (addressed by Path.pkRef)
	// where the joins built on top of a finished relation read them.
	fastKey  map[planKey]int32
	keyed    []*Path
	keys     []planKey
	keyArena []planKey

	// Per-slot frontier state, parallel to keyed/keys: the pruning metric
	// and the dense output-order id. A slot with keyed[s] == nil is dead
	// (dominated); its metric stays recorded so later arrivals of the same
	// key still dedup, and a revival keeps the slot's original sequence
	// number (the first-insertion tie-break). slotWitness remembers the
	// slot that dominated a dead slot: domination between fixed keys is
	// static, so while the witness keeps metric ≤ the dead slot's (and, in
	// live-only mode, stays live) an improving dead slot stays dead without
	// re-running the frontier screen. buckets holds the live slots of each
	// output order in (metric, slot) order; idxBuf is the collection
	// scratch in finishRelFast.
	slotMetric  []float64
	slotOrd     []int32
	slotWitness []int32
	buckets     [][]bucketEnt
	idxBuf      []int32

	// wideFrontier is the fast planner's ExportAll bookkeeping outside the
	// packed-key invariants (ctx.packed false): the same insertion-time
	// frontier protocol over variable-width string keys, materialising
	// candidates eagerly (wide plan identities cannot pack into planKey).
	// Created lazily on the first arrival.
	wideFrontier *pathFrontier

	// refSim mirrors the frontier protocol for the reference planner's
	// stats (see optimize); nil on the fast path and outside ExportAll.
	refSim *pathFrontier
}

type joinRel struct {
	set   RelSet
	rows  float64
	paths []*Path
	// byKey deduplicates paths by (leaf combo, output order) during
	// reference-path ExportAll construction; keyOrder records first
	// insertion so pruning tie-breaks are deterministic and independent
	// of map iteration order. finishRel folds both into paths. The fast
	// path uses the planner's keyed store instead.
	byKey    map[string]*Path
	keyOrder []string
}

// configIndexes returns the configuration's indexes on the table of
// relation rel. The fast path serves the slice from the plan context,
// computed once per call; the reference path re-filters per probe.
func (p *planner) configIndexes(rel int) []*catalog.Index {
	if p.ctx != nil {
		return p.ctx.perRel[rel]
	}
	if p.cfg == nil {
		return nil
	}
	t := p.a.Rels[rel].Table.Name
	var out []*catalog.Index
	for _, ix := range p.cfg.Indexes {
		if ix.Table == t {
			out = append(out, ix)
		}
	}
	return out
}

// scanPaths builds the access paths for one base relation: a single
// cheapest "any order" access plus one ordered access per interesting order
// the configuration covers. Folding every physical alternative into these
// slots is exactly the INUM abstraction: the plan cache later re-prices the
// slots under other configurations.
func (p *planner) scanPaths(rel int) *joinRel {
	ri := &p.a.Rels[rel]
	jr := &joinRel{set: Single(rel), rows: ri.Rows}

	// Any-order access: cheapest of a seq scan and every index scan.
	bestCost := p.a.SeqScanCost(rel)
	bestOp := OpSeqScan
	var bestIx *catalog.Index
	for _, ix := range p.configIndexes(rel) {
		f := p.a.IndexScanCost(rel, ix)
		if f.Cost < bestCost {
			bestCost = f.Cost
			bestIx = ix
			if f.IndexOnly {
				bestOp = OpIndexOnlyScan
			} else {
				bestOp = OpIndexScan
			}
		}
	}
	// Even when the cheapest access is an index scan that happens to
	// deliver an order, the Any slot advertises no pathkeys: the cached
	// model re-prices this slot under other configurations, where the
	// cheapest access may be unordered.
	p.addPath(jr, &Path{
		Op:       bestOp,
		Rels:     jr.set,
		Rows:     ri.Rows,
		Cost:     bestCost,
		Order:    nil,
		BaseRel:  rel,
		Index:    bestIx,
		Internal: 0,
		LeafCost: bestCost,
		Leaves:   p.leavesFor(rel, LeafReq{Mode: AccessAny, Coef: 1}),
	})

	// Ordered access per interesting order covered by the configuration.
	for _, col := range ri.Interesting {
		best := math.Inf(1)
		var via *catalog.Index
		indexOnly := false
		for _, ix := range p.configIndexes(rel) {
			if !ix.Covers(col) {
				continue
			}
			f := p.a.IndexScanCost(rel, ix)
			if f.Cost < best {
				best = f.Cost
				via = ix
				indexOnly = f.IndexOnly
			}
		}
		if via == nil {
			continue
		}
		op := OpIndexScan
		if indexOnly {
			op = OpIndexOnlyScan
		}
		p.addPath(jr, &Path{
			Op:       op,
			Rels:     jr.set,
			Rows:     ri.Rows,
			Cost:     best,
			Order:    []query.ColRef{{Rel: rel, Column: col}},
			BaseRel:  rel,
			Index:    via,
			Internal: 0,
			LeafCost: best,
			Leaves:   p.leavesFor(rel, LeafReq{Mode: AccessOrdered, Col: col, Coef: 1}),
		})
	}
	return jr
}

// addPath inserts an already-materialised path into jr unless dominated. In
// normal mode dominance is cheaper-or-equal total cost with a satisfying
// output order, applied immediately against the retained list. In ExportAll
// mode the DP generates orders of magnitude more paths, so insertion only
// deduplicates exactly equal (leaf combo, output order) keys by internal
// cost; the paper's subsumption pruning (§V-D) runs once per finished join
// relation in finishRel.
// pathMetric is the ExportAll pruning metric (see finishRel): the
// provably-safe internal cost by default, the paper's literal total cost
// under PaperPrune.
func (p *planner) pathMetric(pt *Path) float64 {
	if p.opt.PaperPrune {
		return pt.Cost
	}
	return pt.Internal
}

// wideAdd routes a materialised path through the wide lane's string-keyed
// frontier: the fast planner's ExportAll bookkeeping for plan identities
// that exceed planKey's packing capacity. The key is the reference
// planner's pathKey, so dedup, pruning, and tie order match it exactly.
func (p *planner) wideAdd(np *Path) {
	if p.wideFrontier == nil {
		p.wideFrontier = newPathFrontier(p.opt, &p.res.Stats, false)
	}
	p.wideFrontier.add(pathKey(np, p.opt.PreciseNLJ, p.opt.PaperPrune), np)
}

func (p *planner) addPath(jr *joinRel, np *Path) {
	p.res.Stats.PathsConsidered++
	if p.opt.ExportAll {
		if p.ctx != nil {
			if !p.ctx.packed {
				p.wideAdd(np)
				return
			}
			k := p.pathKeyOf(np)
			if slot, ok := p.frontierAdd(&k, p.pathMetric(np), np.Order); ok {
				p.keyed[slot] = np
			}
			return
		}
		if jr.byKey == nil {
			jr.byKey = make(map[string]*Path)
		}
		key := pathKey(np, p.opt.PreciseNLJ, p.opt.PaperPrune)
		// The reference batch pass cannot see which arrivals the frontier
		// would have screened, so a counting mirror replays the frontier
		// protocol on the same arrival stream; the Frontier* stats come
		// out identical to the fast planner's (the equivalence suites
		// assert it). Created lazily so directly-constructed planners in
		// tests count too.
		if p.refSim == nil {
			p.refSim = newPathFrontier(p.opt, &p.res.Stats, true)
		}
		p.refSim.add(key, np)
		if old, ok := jr.byKey[key]; ok {
			if p.opt.PaperPrune {
				if old.Cost <= np.Cost {
					p.res.Stats.PathsPruned++
					return
				}
			} else if old.Internal <= np.Internal {
				p.res.Stats.PathsPruned++
				return
			}
			p.res.Stats.PathsPruned++ // the displaced incumbent
		} else {
			jr.keyOrder = append(jr.keyOrder, key)
		}
		jr.byKey[key] = np
		return
	}
	const fuzz = 1e-9
	dominates := func(a, b *Path) bool {
		return OrderSatisfies(a.Order, b.Order) && a.Cost <= b.Cost*(1+fuzz)
	}
	for _, old := range jr.paths {
		if dominates(old, np) {
			p.res.Stats.PathsPruned++
			return
		}
	}
	keep := jr.paths[:0]
	for _, old := range jr.paths {
		if dominates(np, old) {
			p.res.Stats.PathsPruned++
			continue
		}
		keep = append(keep, old)
	}
	jr.paths = append(keep, np)
}

// joinCand is a join path candidate before materialisation: every number
// the pruning screens need, but no Path, no merged leaf slice, no sort
// enforcer and no nested-loop inner node. The fast path materialises a
// candidate only once it survives the key/cost screen; the reference path
// materialises immediately, preserving the original allocation profile.
type joinCand struct {
	op       Op
	rows     float64
	cost     float64
	order    []query.ColRef
	outer    *Path
	inner    *Path // nil for OpNestLoop (inner is built at materialise time)
	clause   int   // index into a.Q.Joins
	internal float64
	leafCost float64

	// orderPack is the packed form of order (fast ExportAll mode only).
	orderPack [2]uint64

	// outerKey/innerKey are the children's packed keys (fast ExportAll
	// mode only), hoisted out of the candidate loop by joinPaths so
	// candKeyOf ORs them without an arena lookup per candidate.
	// innerKey is nil exactly when inner is nil (OpNestLoop).
	outerKey, innerKey *planKey

	// Merge-join sort enforcers: non-nil when the corresponding side
	// needs an explicit sort on these keys.
	sortOuterKey, sortInnerKey []query.ColRef

	// OpNestLoop parameterized inner, built at materialise time.
	nljRel   int
	nljIndex *catalog.Index
	nljCol   string
	nljColID uint16 // interned column id (fast mode only)
	nljCoef  float64
	nljRows  float64
	nljCost  float64
}

// materialize builds the full Path for a surviving candidate, reproducing
// exactly the tree the original planner built eagerly.
func (c *joinCand) materialize(p *planner, set RelSet) *Path {
	op := c.outer
	if c.sortOuterKey != nil {
		op = p.sortPath(op, c.sortOuterKey)
	}
	ip := c.inner
	if c.sortInnerKey != nil {
		ip = p.sortPath(ip, c.sortInnerKey)
	}
	if c.op == OpNestLoop {
		ip = &Path{
			Op:      OpIndexScan,
			Rels:    Single(c.nljRel),
			Rows:    c.nljRows,
			Cost:    c.nljCost,
			BaseRel: c.nljRel,
			Index:   c.nljIndex,
			Order:   nil,
			Leaves:  p.leavesFor(c.nljRel, LeafReq{Mode: AccessLookup, Col: c.nljCol, Coef: c.nljCoef}),
		}
	}
	return &Path{
		Op:         c.op,
		Rels:       set,
		Rows:       c.rows,
		Cost:       c.cost,
		Order:      c.order,
		Outer:      op,
		Inner:      ip,
		JoinClause: p.a.Q.Joins[c.clause],
		Internal:   c.internal,
		LeafCost:   c.leafCost,
		Leaves:     mergeLeaves(op, ip),
	}
}

// addJoin routes a join candidate to the deferred fast screen or to the
// eager reference insertion.
func (p *planner) addJoin(jr *joinRel, c *joinCand) {
	if p.ctx != nil {
		p.addJoinFast(jr, c)
		return
	}
	p.addPath(jr, c.materialize(p, jr.set))
}

// leavesFor builds a requirement slice with a single non-default entry.
func (p *planner) leavesFor(rel int, req LeafReq) []LeafReq {
	out := newLeaves(len(p.a.Rels))
	out[rel] = req
	return out
}

// pathKey builds the (leaf combo, output order) identity used for exact
// deduplication in the reference path's ExportAll mode. It avoids fmt for
// speed: this runs once per generated path. The fast path packs the same
// identity into a fixed-size comparable struct instead (fastplan.go).
func pathKey(p *Path, preciseNLJ, byColumn bool) string {
	b := make([]byte, 0, 48)
	for rel := 0; rel < len(p.Leaves); rel++ {
		if !p.Rels.Has(rel) {
			continue
		}
		req := p.Leaves[rel]
		if req.Mode == AccessAny {
			continue
		}
		mode := byte("aol"[req.Mode])
		if byColumn {
			mode = 'c'
		}
		b = append(b, byte('0'+rel), mode)
		b = append(b, req.Col...)
		if req.Mode == AccessLookup && preciseNLJ {
			b = strconv.AppendFloat(b, req.Coef, 'g', -1, 64)
		}
		b = append(b, ';')
	}
	b = append(b, '|')
	for _, c := range p.Order {
		b = append(b, byte('0'+c.Rel), '.')
		b = append(b, c.Column...)
		b = append(b, ';')
	}
	return string(b)
}

// finishRel applies subsumption pruning to a completed join relation in
// ExportAll mode: drop plan B when a plan A requires a subset of B's
// interesting orders at lower-or-equal internal cost while still providing
// B's output order.
func (p *planner) finishRel(jr *joinRel) {
	if !p.opt.ExportAll {
		return
	}
	if p.ctx != nil {
		if !p.ctx.packed {
			jr.paths = nil
			if p.wideFrontier != nil {
				jr.paths = p.wideFrontier.finish()
			}
			return
		}
		p.finishRelFast(jr)
		return
	}
	// Iterate in first-insertion order: deterministic independent of map
	// iteration, and the same sequence the fast path's keyed store holds,
	// so metric ties below break identically in both planners.
	paths := make([]*Path, 0, len(jr.byKey))
	for _, k := range jr.keyOrder {
		paths = append(paths, jr.byKey[k])
	}
	// The pruning metric is the provably-safe internal cost by default,
	// or the paper's literal total cost under PaperPrune, which also
	// collapses access modes: one plan per column combination.
	metric := func(pt *Path) float64 { return pt.Internal }
	subsumes := func(a, b *Path) bool {
		return comboSubsumes(a.Leaves, b.Leaves, jr.set, p.opt.PreciseNLJ)
	}
	if p.opt.PaperPrune {
		metric = func(pt *Path) float64 { return pt.Cost }
		subsumes = func(a, b *Path) bool {
			return comboSubsumesByColumn(a.Leaves, b.Leaves, jr.set)
		}
	}
	// Ascending metric, so the dominator scan can stop at the first path
	// with a larger value. Candidates are compared against every path
	// with metric ≤ theirs — including ties and paths that are themselves
	// dominated (domination is transitive, so a dominated dominator's own
	// dominator also covers the candidate). Mutual domination between
	// distinct (combo, order) keys is impossible, so this never removes
	// both sides of a tie.
	sort.SliceStable(paths, func(i, j int) bool { return metric(paths[i]) < metric(paths[j]) })
	var kept []*Path
	for i, cand := range paths {
		dominated := false
		for j, a := range paths {
			if metric(a) > metric(cand) {
				break
			}
			if j == i {
				continue
			}
			if OrderSatisfies(a.Order, cand.Order) && subsumes(a, cand) {
				dominated = true
				break
			}
		}
		if dominated {
			p.res.Stats.PathsPruned++
			continue
		}
		kept = append(kept, cand)
	}
	jr.paths = kept
	jr.byKey = nil
	jr.keyOrder = nil
	if p.refSim != nil {
		p.refSim.finish()
	}
}

// clauseRef is a join clause oriented for a specific (outer, inner) pair.
// The fast path prebuilds the single-column sort-key slices (and their
// packed order forms) once per call; the reference path leaves them nil
// and allocates on demand, as the original planner did.
type clauseRef struct {
	idx          int // index into a.Q.Joins
	outer, inner query.ColRef
	outerKey     []query.ColRef // sort keys enforcing outer-side clause order
	innerKey     []query.ColRef // sort keys enforcing inner-side clause order
	outerPack    [2]uint64
	innerPack    [2]uint64
}

func (p *planner) clausesBetween(outer, inner RelSet) []clauseRef {
	p.res.Stats.ClauseLookups++
	var out []clauseRef
	for i, j := range p.a.Q.Joins {
		switch {
		case outer.Has(j.Left.Rel) && inner.Has(j.Right.Rel):
			out = append(out, clauseRef{idx: i, outer: j.Left, inner: j.Right})
		case outer.Has(j.Right.Rel) && inner.Has(j.Left.Rel):
			out = append(out, clauseRef{idx: i, outer: j.Right, inner: j.Left})
		}
	}
	return out
}

// plan runs the dynamic program over connected relation subsets and returns
// the top join relation, dispatching between the fast and reference
// implementations.
func (p *planner) plan() (*joinRel, error) {
	if p.ctx != nil {
		return p.planFast()
	}
	return p.planReference()
}

// planReference is the original DP loop: a map-keyed table of join
// relations and a fresh clause-list scan per split and direction.
func (p *planner) planReference() (*joinRel, error) {
	n := len(p.a.Rels)
	rels := make(map[RelSet]*joinRel)
	for i := 0; i < n; i++ {
		jr := p.scanPaths(i)
		p.finishRel(jr)
		if len(jr.paths) == 0 {
			return nil, fmt.Errorf("optimizer: no access path for relation %d", i)
		}
		rels[jr.set] = jr
	}
	if n == 1 {
		p.res.Stats.JoinRels = 1
		return rels[Single(0)], nil
	}

	full := RelSet(1<<uint(n)) - 1
	for mask := RelSet(3); mask <= full; mask++ {
		if mask.Count() < 2 {
			continue
		}
		var jr *joinRel
		low := RelSet(1) << uint(mask.Members()[0])
		// Enumerate proper submasks containing the lowest bit, so each
		// unordered split is visited once.
		for s1 := (mask - 1) & mask; s1 > 0; s1 = (s1 - 1) & mask {
			if s1&low == 0 {
				continue
			}
			p.res.Stats.EnumStates++
			s2 := mask ^ s1
			left, lok := rels[s1]
			right, rok := rels[s2]
			if !lok || !rok {
				continue
			}
			if len(p.clausesBetween(s1, s2)) == 0 {
				continue
			}
			if jr == nil {
				jr = &joinRel{set: mask, rows: p.a.JoinRows(mask)}
			}
			p.joinPaths(jr, left, right, p.clausesBetween(s1, s2))
			p.joinPaths(jr, right, left, p.clausesBetween(s2, s1))
		}
		if jr != nil {
			p.finishRel(jr)
			rels[mask] = jr
		} else {
			// The mask is a disconnected relation subset: every split came
			// up empty. The fast planner's connectivity-aware enumeration
			// skips these outright and accounts them identically.
			p.res.Stats.MasksSkipped++
		}
	}
	p.res.Stats.JoinRels = len(rels)
	top, ok := rels[full]
	if !ok || len(top.paths) == 0 {
		return nil, fmt.Errorf("optimizer: join graph of query %s is disconnected", p.a.Q.Name)
	}
	return top, nil
}

// joinPaths emits hash, merge, and nested-loop candidates joining
// outer × inner. The oriented clause list is supplied by the caller: the
// fast path computes both orientations of a split in one bitset pass, the
// reference path rescans the query's clause list per direction. All cost
// arithmetic lives here, shared by both planners, which is what guarantees
// bit-identical results.
func (p *planner) joinPaths(jr *joinRel, outer, inner *joinRel, clauses []clauseRef) {
	if len(clauses) == 0 {
		return
	}
	outRows := jr.rows
	c := &p.a.Coster

	var cheapestInner *Path
	for _, ip := range inner.paths {
		if cheapestInner == nil || ip.Cost < cheapestInner.Cost {
			cheapestInner = ip
		}
	}

	// Packed fast ExportAll mode threads packed output orders and the
	// children's arena keys alongside the slices so candidate keys never
	// re-intern columns (and candKeyOf never indexes the arena per
	// candidate). The wide lane materialises eagerly and takes the plain
	// branches below.
	exportFast := p.ctx != nil && p.opt.ExportAll && p.ctx.packed
	var cheapInnerKey *planKey
	if exportFast && cheapestInner != nil {
		cheapInnerKey = p.keyOf(cheapestInner)
	}

	// Indexed nested loops need a single-base-relation inner; the relation
	// index is loop-invariant.
	nljInner := p.opt.EnableNestLoop && inner.set.Count() == 1
	nljRel := 0
	if nljInner {
		nljRel = bits.TrailingZeros64(uint64(inner.set))
	}

	for _, op := range outer.paths {
		var opKey *planKey
		if exportFast {
			opKey = p.keyOf(op)
		}
		// The trimmed op.Order (and its pack) feed every nested-loop
		// candidate below.
		var opOrd []query.ColRef
		var opPack [2]uint64
		if p.opt.EnableNestLoop {
			if exportFast {
				opOrd, opPack = p.usefulOrderFast(jr.set, op.Order, opKey.order)
			} else {
				opOrd = p.usefulOrder(jr.set, op.Order)
			}
		}

		for _, ip := range inner.paths {
			var ipKey *planKey
			if exportFast {
				ipKey = p.keyOf(ip)
			}
			// Hash join: order-insensitive, destroys ordering.
			hc := c.HashJoinCost(op.Rows, ip.Rows, outRows)
			p.addJoin(jr, &joinCand{
				op:       OpHashJoin,
				rows:     outRows,
				cost:     op.Cost + ip.Cost + hc,
				order:    nil,
				outer:    op,
				inner:    ip,
				clause:   clauses[0].idx,
				internal: op.Internal + ip.Internal + hc,
				leafCost: op.LeafCost + ip.LeafCost,
				outerKey: opKey,
				innerKey: ipKey,
			})

			// Merge join per clause: inputs must be sorted on the clause
			// columns; explicit sorts are internal enforcers.
			for ci := range clauses {
				cl := &clauses[ci]
				osCost, osInternal, osOrder := op.Cost, op.Internal, op.Order
				var osPack [2]uint64
				if exportFast {
					osPack = opKey.order
				}
				var sortOuter []query.ColRef
				if !(len(op.Order) > 0 && op.Order[0] == cl.outer) {
					sortOuter = cl.outerKey
					if sortOuter == nil {
						sortOuter = []query.ColRef{cl.outer}
					}
					sc := c.SortCost(op.Rows)
					osCost += sc
					osInternal += sc
					osOrder = sortOuter
					osPack = cl.outerPack
				}
				isCost, isInternal := ip.Cost, ip.Internal
				var sortInner []query.ColRef
				if !(len(ip.Order) > 0 && ip.Order[0] == cl.inner) {
					sortInner = cl.innerKey
					if sortInner == nil {
						sortInner = []query.ColRef{cl.inner}
					}
					sc := c.SortCost(ip.Rows)
					isCost += sc
					isInternal += sc
				}
				var mOrd []query.ColRef
				var mPack [2]uint64
				if exportFast {
					mOrd, mPack = p.usefulOrderFast(jr.set, osOrder, osPack)
				} else {
					mOrd = p.usefulOrder(jr.set, osOrder)
				}
				mc := c.MergeJoinCost(op.Rows, ip.Rows, outRows)
				p.addJoin(jr, &joinCand{
					op:           OpMergeJoin,
					rows:         outRows,
					cost:         osCost + isCost + mc,
					order:        mOrd,
					orderPack:    mPack,
					outer:        op,
					inner:        ip,
					clause:       cl.idx,
					internal:     osInternal + isInternal + mc,
					leafCost:     op.LeafCost + ip.LeafCost,
					sortOuterKey: sortOuter,
					sortInnerKey: sortInner,
					outerKey:     opKey,
					innerKey:     ipKey,
				})
			}
		}

		if !p.opt.EnableNestLoop {
			continue
		}

		// Indexed nested loop: inner must be a single base relation with
		// a configuration index on the join column.
		if nljInner {
			for ci := range clauses {
				cl := &clauses[ci]
				var best, lrows float64
				var via *catalog.Index
				var colID uint16
				if p.ctx != nil {
					m := p.ctx.lookup(p.a, nljRel, cl.inner.Column)
					best, via, lrows, colID = m.cost, m.ix, m.rows, m.id
				} else {
					best = math.Inf(1)
					for _, ix := range p.configIndexes(nljRel) {
						if !ix.Covers(cl.inner.Column) {
							continue
						}
						if lc := p.a.LookupCost(nljRel, ix, cl.inner.Column); lc < best {
							best = lc
							via = ix
						}
					}
					if via != nil {
						lrows = p.a.LookupRows(nljRel, cl.inner.Column)
					}
				}
				if via == nil {
					continue
				}
				coef := op.Rows
				nc := c.NestLoopCost(op.Rows, outRows)
				p.addJoin(jr, &joinCand{
					op:        OpNestLoop,
					rows:      outRows,
					cost:      op.Cost + coef*best + nc,
					order:     opOrd,
					orderPack: opPack,
					outer:     op,
					clause:    cl.idx,
					internal:  op.Internal + nc,
					leafCost:  op.LeafCost + coef*best,
					nljRel:    nljRel,
					nljIndex:  via,
					nljCol:    cl.inner.Column,
					nljColID:  colID,
					nljCoef:   coef,
					nljRows:   lrows,
					nljCost:   best,
					outerKey:  opKey,
				})
			}
		}

		// Materialised nested loop: rescan a materialised inner per outer
		// row. Only the cheapest inner is considered (the rescan cost
		// depends only on the inner's cardinality).
		if cheapestInner != nil {
			ip := cheapestInner
			rescan := (math.Max(op.Rows, 1) - 1) * c.MaterialRescanCost(ip.Rows)
			pairs := op.Rows * ip.Rows * c.P.CPUOperatorCost * float64(len(clauses))
			nc := c.NestLoopCost(op.Rows, outRows) + rescan + pairs
			p.addJoin(jr, &joinCand{
				op:        OpNestLoopMat,
				rows:      outRows,
				cost:      op.Cost + ip.Cost + nc,
				order:     opOrd,
				orderPack: opPack,
				outer:     op,
				inner:     ip,
				clause:    clauses[0].idx,
				internal:  op.Internal + ip.Internal + nc,
				leafCost:  op.LeafCost + ip.LeafCost,
				outerKey:  opKey,
				innerKey:  cheapInnerKey,
			})
		}
	}
}

// usefulOrder trims a path's advertised sort order to orders that can still
// matter above this relation set: a future merge join on a clause crossing
// to the set's complement, or the query's grouping/ordering columns. This
// mirrors PostgreSQL's canonical-pathkey usefulness test and collapses
// otherwise-identical plans whose orders can never be exploited again. The
// verdict depends only on (set, leading column), so the fast path memoizes
// it per join relation.
func (p *planner) usefulOrder(set RelSet, order []query.ColRef) []query.ColRef {
	if len(order) == 0 {
		return nil
	}
	if ctx := p.ctx; ctx != nil {
		if p.usefulMemo(set, order[0], ctx.a.orderGID(order[0])) {
			return order
		}
		return nil
	}
	if p.usefulLead(set, order[0]) {
		return order
	}
	return nil
}

func (p *planner) usefulLead(set RelSet, lead query.ColRef) bool {
	for _, g := range p.a.Q.GroupBy {
		if g == lead {
			return true
		}
	}
	for _, o := range p.a.Q.OrderBy {
		if o == lead {
			return true
		}
	}
	for _, j := range p.a.Q.Joins {
		if j.Left == lead && !set.Has(j.Right.Rel) {
			return true
		}
		if j.Right == lead && !set.Has(j.Left.Rel) {
			return true
		}
	}
	return false
}

func (p *planner) sortPath(child *Path, keys []query.ColRef) *Path {
	sc := p.a.Coster.SortCost(child.Rows)
	return &Path{
		Op:       OpSort,
		Rels:     child.Rels,
		Rows:     child.Rows,
		Cost:     child.Cost + sc,
		Order:    keys,
		Child:    child,
		SortKeys: keys,
		Internal: child.Internal + sc,
		LeafCost: child.LeafCost,
		Leaves:   child.Leaves,
	}
}

// orderCoversGroup reports whether the path order's prefix is exactly the
// group-by column set (grouping is order-insensitive across its columns).
func orderCoversGroup(order []query.ColRef, group []query.ColRef) bool {
	if len(order) < len(group) {
		return false
	}
	want := make(map[query.ColRef]bool, len(group))
	for _, g := range group {
		want[g] = true
	}
	for i := 0; i < len(group); i++ {
		if !want[order[i]] {
			return false
		}
	}
	return true
}

// finalize runs the grouping planner (paper §III): aggregation for GROUP BY
// and a final sort for ORDER BY, producing the complete-plan candidates.
func (p *planner) finalize(paths []*Path) []*Path {
	q := p.a.Q
	out := &joinRel{set: paths[0].Rels}
	c := &p.a.Coster

	finish := func(path *Path) {
		if len(q.OrderBy) > 0 && !OrderSatisfies(path.Order, q.OrderBy) {
			path = p.sortPath(path, q.OrderBy)
		}
		p.addPath(out, path)
	}

	for _, path := range paths {
		if len(q.GroupBy) == 0 {
			finish(path)
			continue
		}
		groups := p.a.GroupCount(q.GroupBy, path.Rows)

		// Hash aggregation: no input-order requirement, output unordered.
		hc := c.HashAggCost(path.Rows, groups, len(q.GroupBy))
		finish(&Path{
			Op:       OpHashAgg,
			Rels:     path.Rels,
			Rows:     groups,
			Cost:     path.Cost + hc,
			Order:    nil,
			Child:    path,
			Internal: path.Internal + hc,
			LeafCost: path.LeafCost,
			Leaves:   path.Leaves,
		})

		// Sorted aggregation: requires group-column order, preserves it.
		in := path
		if !orderCoversGroup(in.Order, q.GroupBy) {
			in = p.sortPath(in, q.GroupBy)
		}
		gc := c.SortedAggCost(in.Rows, groups, len(q.GroupBy))
		finish(&Path{
			Op:       OpSortedAgg,
			Rels:     in.Rels,
			Rows:     groups,
			Cost:     in.Cost + gc,
			Order:    in.Order,
			Child:    in,
			Internal: in.Internal + gc,
			LeafCost: in.LeafCost,
			Leaves:   in.Leaves,
		})
	}
	p.finishRel(out)
	p.res.Stats.PathsRetained = len(out.paths)
	return out.paths
}

// collectAccessCosts implements the §V-C hook: report the access cost of
// every configuration index on every relation, instead of discarding all
// but the cheapest.
func (p *planner) collectAccessCosts() {
	for rel := range p.a.Rels {
		ri := &p.a.Rels[rel]
		interesting := make(map[string]bool, len(ri.Interesting))
		for _, col := range ri.Interesting {
			interesting[col] = true
		}
		for _, ix := range p.configIndexes(rel) {
			f := p.a.IndexScanCost(rel, ix)
			ia := IndexAccess{
				Rel:       rel,
				Index:     ix,
				ScanCost:  f.Cost,
				IndexOnly: f.IndexOnly,
			}
			if interesting[ix.LeadColumn()] {
				ia.OrderCol = ix.LeadColumn()
				ia.LookupCost = p.a.LookupCost(rel, ix, ix.LeadColumn())
			}
			p.res.AccessCosts = append(p.res.AccessCosts, ia)
		}
	}
}

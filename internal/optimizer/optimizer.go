// Package optimizer implements a bottom-up, System-R / PostgreSQL-style
// query optimizer: an access path collector, a dynamic-programming join
// planner that tracks interesting orders as pathkeys, and a grouping
// planner that layers aggregation and ordering on top (paper §III).
//
// Three hooks reproduce PINUM's optimizer modifications (paper §V):
//
//   - Options.EnableNestLoop=false removes nested-loop joins entirely
//     (the enable_nestloop tweak of §V-B);
//   - Options.CollectAccessCosts keeps every index access path in the
//     collector and reports its cost (§V-C);
//   - Options.ExportAll switches the join planner's pruning to the
//     subsumption rule of §V-D and exports one optimal plan per useful
//     interesting order combination from a single call.
package optimizer

import (
	"fmt"
	"math"
	"sort"
	"strconv"

	"github.com/pinumdb/pinum/internal/catalog"
	"github.com/pinumdb/pinum/internal/query"
)

// Options selects the optimizer mode for one call.
type Options struct {
	// EnableNestLoop permits nested-loop join paths. INUM/PINUM cache
	// construction makes one call with and one without them.
	EnableNestLoop bool
	// ExportAll replaces cheapest-total pruning with the paper's
	// subsumption pruning and exports one plan per useful interesting
	// order combination (the PINUM cache-construction hook).
	ExportAll bool
	// CollectAccessCosts reports the access cost of every configuration
	// index instead of only the surviving cheapest paths (the PINUM
	// access-cost hook).
	CollectAccessCosts bool
	// PreciseNLJ keeps nested-loop plans that differ only in probe count
	// apart during subsumption pruning (the paper's §V-D higher-accuracy
	// option: "a bigger plan cache and slower cost lookup"). Off by
	// default, matching the paper's coarse treatment of nested loops.
	PreciseNLJ bool
	// PaperPrune applies §V-D's pruning rule literally, comparing total
	// cost under the planning configuration ("Cost(SA) < Cost(SB)")
	// instead of the provably-safe internal cost. It prunes far more —
	// PINUM uses it for the nested-loop export call, accepting the small
	// cost-model errors the paper reports.
	PaperPrune bool
}

// IndexAccess reports the harvested access costs of one configuration index
// on one query relation (the §V-C batch lookup output).
type IndexAccess struct {
	Rel        int
	Index      *catalog.Index
	ScanCost   float64 // full/range scan through the index
	IndexOnly  bool    // scan avoids the heap entirely
	OrderCol   string  // interesting order the index covers, "" if none
	LookupCost float64 // per-probe nested-loop lookup on the lead column
}

// PlannerStats counts planner work, used by the experiments to show where
// INUM's repeated calls spend their time.
type PlannerStats struct {
	PathsConsidered int
	PathsRetained   int
	JoinRels        int
}

// Result is the output of one optimizer call.
type Result struct {
	// Best is the cheapest complete plan under the given configuration.
	Best *Path
	// Exported holds, in ExportAll mode, the optimal plan for every
	// useful interesting order combination (after subsumption pruning).
	Exported []*Path
	// AccessCosts holds, in CollectAccessCosts mode, the harvested
	// per-index access costs.
	AccessCosts []IndexAccess
	Stats       PlannerStats
}

// Optimize plans the analysed query under the given index configuration.
// This function is "one optimizer call" in the paper's accounting.
func Optimize(a *Analysis, cfg *query.Config, opt Options) (*Result, error) {
	n := len(a.Rels)
	if n == 0 {
		return nil, fmt.Errorf("optimizer: query %s has no relations", a.Q.Name)
	}
	if n > 16 {
		return nil, fmt.Errorf("optimizer: query %s joins %d relations; the DP planner supports at most 16", a.Q.Name, n)
	}
	p := &planner{a: a, cfg: cfg, opt: opt, res: &Result{}}
	top, err := p.plan()
	if err != nil {
		return nil, err
	}
	final := p.finalize(top.paths)
	if len(final) == 0 {
		return nil, fmt.Errorf("optimizer: query %s produced no complete plan", a.Q.Name)
	}
	best := final[0]
	for _, pt := range final[1:] {
		if pt.Cost < best.Cost {
			best = pt
		}
	}
	p.res.Best = best
	if opt.ExportAll {
		p.res.Exported = final
	}
	if opt.CollectAccessCosts {
		p.collectAccessCosts()
	}
	return p.res, nil
}

type planner struct {
	a   *Analysis
	cfg *query.Config
	opt Options
	res *Result
}

type joinRel struct {
	set   RelSet
	rows  float64
	paths []*Path
	// byKey deduplicates paths by (leaf combo, output order) during
	// ExportAll construction; finishRel folds it into paths.
	byKey map[string]*Path
}

// configIndexes returns the configuration's indexes on the table of
// relation rel.
func (p *planner) configIndexes(rel int) []*catalog.Index {
	if p.cfg == nil {
		return nil
	}
	t := p.a.Rels[rel].Table.Name
	var out []*catalog.Index
	for _, ix := range p.cfg.Indexes {
		if ix.Table == t {
			out = append(out, ix)
		}
	}
	return out
}

// scanPaths builds the access paths for one base relation: a single
// cheapest "any order" access plus one ordered access per interesting order
// the configuration covers. Folding every physical alternative into these
// slots is exactly the INUM abstraction: the plan cache later re-prices the
// slots under other configurations.
func (p *planner) scanPaths(rel int) *joinRel {
	ri := &p.a.Rels[rel]
	jr := &joinRel{set: Single(rel), rows: ri.Rows}

	// Any-order access: cheapest of a seq scan and every index scan.
	bestCost := p.a.SeqScanCost(rel)
	bestOp := OpSeqScan
	var bestIx *catalog.Index
	for _, ix := range p.configIndexes(rel) {
		f := p.a.IndexScanCost(rel, ix)
		if f.Cost < bestCost {
			bestCost = f.Cost
			bestIx = ix
			if f.IndexOnly {
				bestOp = OpIndexOnlyScan
			} else {
				bestOp = OpIndexScan
			}
		}
	}
	// Even when the cheapest access is an index scan that happens to
	// deliver an order, the Any slot advertises no pathkeys: the cached
	// model re-prices this slot under other configurations, where the
	// cheapest access may be unordered.
	p.addPath(jr, &Path{
		Op:       bestOp,
		Rels:     jr.set,
		Rows:     ri.Rows,
		Cost:     bestCost,
		Order:    nil,
		BaseRel:  rel,
		Index:    bestIx,
		Internal: 0,
		LeafCost: bestCost,
		Leaves:   p.leavesFor(rel, LeafReq{Mode: AccessAny, Coef: 1}),
	})

	// Ordered access per interesting order covered by the configuration.
	for _, col := range ri.Interesting {
		best := math.Inf(1)
		var via *catalog.Index
		indexOnly := false
		for _, ix := range p.configIndexes(rel) {
			if !ix.Covers(col) {
				continue
			}
			f := p.a.IndexScanCost(rel, ix)
			if f.Cost < best {
				best = f.Cost
				via = ix
				indexOnly = f.IndexOnly
			}
		}
		if via == nil {
			continue
		}
		op := OpIndexScan
		if indexOnly {
			op = OpIndexOnlyScan
		}
		p.addPath(jr, &Path{
			Op:       op,
			Rels:     jr.set,
			Rows:     ri.Rows,
			Cost:     best,
			Order:    []query.ColRef{{Rel: rel, Column: col}},
			BaseRel:  rel,
			Index:    via,
			Internal: 0,
			LeafCost: best,
			Leaves:   p.leavesFor(rel, LeafReq{Mode: AccessOrdered, Col: col, Coef: 1}),
		})
	}
	return jr
}

// addPath inserts np into jr unless dominated. In normal mode dominance is
// cheaper-or-equal total cost with a satisfying output order, applied
// immediately against the retained list. In ExportAll mode the DP generates
// orders of magnitude more paths, so insertion only deduplicates exactly
// equal (leaf combo, output order) keys by internal cost; the paper's
// subsumption pruning (§V-D) runs once per finished join relation in
// finishRel.
func (p *planner) addPath(jr *joinRel, np *Path) {
	p.res.Stats.PathsConsidered++
	if p.opt.ExportAll {
		if jr.byKey == nil {
			jr.byKey = make(map[string]*Path)
		}
		key := pathKey(np, p.opt.PreciseNLJ, p.opt.PaperPrune)
		if old, ok := jr.byKey[key]; ok {
			if p.opt.PaperPrune {
				if old.Cost <= np.Cost {
					return
				}
			} else if old.Internal <= np.Internal {
				return
			}
		}
		jr.byKey[key] = np
		return
	}
	const fuzz = 1e-9
	dominates := func(a, b *Path) bool {
		return OrderSatisfies(a.Order, b.Order) && a.Cost <= b.Cost*(1+fuzz)
	}
	for _, old := range jr.paths {
		if dominates(old, np) {
			return
		}
	}
	keep := jr.paths[:0]
	for _, old := range jr.paths {
		if !dominates(np, old) {
			keep = append(keep, old)
		}
	}
	jr.paths = append(keep, np)
}

// leavesFor builds a requirement slice with a single non-default entry.
func (p *planner) leavesFor(rel int, req LeafReq) []LeafReq {
	out := newLeaves(len(p.a.Rels))
	out[rel] = req
	return out
}

// pathKey builds the (leaf combo, output order) identity used for exact
// deduplication in ExportAll mode. It avoids fmt for speed: this runs once
// per generated path.
func pathKey(p *Path, preciseNLJ, byColumn bool) string {
	b := make([]byte, 0, 48)
	for rel := 0; rel < len(p.Leaves); rel++ {
		if !p.Rels.Has(rel) {
			continue
		}
		req := p.Leaves[rel]
		if req.Mode == AccessAny {
			continue
		}
		mode := byte("aol"[req.Mode])
		if byColumn {
			mode = 'c'
		}
		b = append(b, byte('0'+rel), mode)
		b = append(b, req.Col...)
		if req.Mode == AccessLookup && preciseNLJ {
			b = strconv.AppendFloat(b, req.Coef, 'g', -1, 64)
		}
		b = append(b, ';')
	}
	b = append(b, '|')
	for _, c := range p.Order {
		b = append(b, byte('0'+c.Rel), '.')
		b = append(b, c.Column...)
		b = append(b, ';')
	}
	return string(b)
}

// finishRel applies subsumption pruning to a completed join relation in
// ExportAll mode: drop plan B when a plan A requires a subset of B's
// interesting orders at lower-or-equal internal cost while still providing
// B's output order.
func (p *planner) finishRel(jr *joinRel) {
	if !p.opt.ExportAll {
		return
	}
	paths := make([]*Path, 0, len(jr.byKey))
	keys := make([]string, 0, len(jr.byKey))
	for k := range jr.byKey {
		keys = append(keys, k)
	}
	sort.Strings(keys) // deterministic results independent of map order
	for _, k := range keys {
		paths = append(paths, jr.byKey[k])
	}
	// The pruning metric is the provably-safe internal cost by default,
	// or the paper's literal total cost under PaperPrune, which also
	// collapses access modes: one plan per column combination.
	metric := func(pt *Path) float64 { return pt.Internal }
	subsumes := func(a, b *Path) bool {
		return comboSubsumes(a.Leaves, b.Leaves, jr.set, p.opt.PreciseNLJ)
	}
	if p.opt.PaperPrune {
		metric = func(pt *Path) float64 { return pt.Cost }
		subsumes = func(a, b *Path) bool {
			return comboSubsumesByColumn(a.Leaves, b.Leaves, jr.set)
		}
	}
	// Ascending metric, so the dominator scan can stop at the first path
	// with a larger value. Candidates are compared against every path
	// with metric ≤ theirs — including ties and paths that are themselves
	// dominated (domination is transitive, so a dominated dominator's own
	// dominator also covers the candidate). Mutual domination between
	// distinct (combo, order) keys is impossible, so this never removes
	// both sides of a tie.
	sort.SliceStable(paths, func(i, j int) bool { return metric(paths[i]) < metric(paths[j]) })
	var kept []*Path
	for i, cand := range paths {
		dominated := false
		for j, a := range paths {
			if metric(a) > metric(cand) {
				break
			}
			if j == i {
				continue
			}
			if OrderSatisfies(a.Order, cand.Order) && subsumes(a, cand) {
				dominated = true
				break
			}
		}
		if !dominated {
			kept = append(kept, cand)
		}
	}
	jr.paths = kept
	jr.byKey = nil
}

// clauseRef is a join clause oriented for a specific (outer, inner) pair.
type clauseRef struct {
	idx          int // index into a.Q.Joins
	outer, inner query.ColRef
}

func (p *planner) clausesBetween(outer, inner RelSet) []clauseRef {
	var out []clauseRef
	for i, j := range p.a.Q.Joins {
		switch {
		case outer.Has(j.Left.Rel) && inner.Has(j.Right.Rel):
			out = append(out, clauseRef{idx: i, outer: j.Left, inner: j.Right})
		case outer.Has(j.Right.Rel) && inner.Has(j.Left.Rel):
			out = append(out, clauseRef{idx: i, outer: j.Right, inner: j.Left})
		}
	}
	return out
}

// plan runs the dynamic program over connected relation subsets and returns
// the top join relation.
func (p *planner) plan() (*joinRel, error) {
	n := len(p.a.Rels)
	rels := make(map[RelSet]*joinRel)
	for i := 0; i < n; i++ {
		jr := p.scanPaths(i)
		p.finishRel(jr)
		if len(jr.paths) == 0 {
			return nil, fmt.Errorf("optimizer: no access path for relation %d", i)
		}
		rels[jr.set] = jr
	}
	if n == 1 {
		p.res.Stats.JoinRels = 1
		return rels[Single(0)], nil
	}

	full := RelSet(1<<uint(n)) - 1
	for mask := RelSet(3); mask <= full; mask++ {
		if mask.Count() < 2 {
			continue
		}
		var jr *joinRel
		low := RelSet(1) << uint(mask.Members()[0])
		// Enumerate proper submasks containing the lowest bit, so each
		// unordered split is visited once.
		for s1 := (mask - 1) & mask; s1 > 0; s1 = (s1 - 1) & mask {
			if s1&low == 0 {
				continue
			}
			s2 := mask ^ s1
			left, lok := rels[s1]
			right, rok := rels[s2]
			if !lok || !rok {
				continue
			}
			if len(p.clausesBetween(s1, s2)) == 0 {
				continue
			}
			if jr == nil {
				jr = &joinRel{set: mask, rows: p.a.JoinRows(mask)}
			}
			p.joinPaths(jr, left, right)
			p.joinPaths(jr, right, left)
		}
		if jr != nil {
			p.finishRel(jr)
			rels[mask] = jr
		}
	}
	p.res.Stats.JoinRels = len(rels)
	top, ok := rels[full]
	if !ok || len(top.paths) == 0 {
		return nil, fmt.Errorf("optimizer: join graph of query %s is disconnected", p.a.Q.Name)
	}
	return top, nil
}

// joinPaths emits hash, merge, and nested-loop paths joining outer × inner.
func (p *planner) joinPaths(jr *joinRel, outer, inner *joinRel) {
	clauses := p.clausesBetween(outer.set, inner.set)
	if len(clauses) == 0 {
		return
	}
	outRows := jr.rows
	c := &p.a.Coster

	var cheapestInner *Path
	for _, ip := range inner.paths {
		if cheapestInner == nil || ip.Cost < cheapestInner.Cost {
			cheapestInner = ip
		}
	}

	for _, op := range outer.paths {
		for _, ip := range inner.paths {
			// Hash join: order-insensitive, destroys ordering.
			hc := c.HashJoinCost(op.Rows, ip.Rows, outRows)
			p.addPath(jr, &Path{
				Op:         OpHashJoin,
				Rels:       jr.set,
				Rows:       outRows,
				Cost:       op.Cost + ip.Cost + hc,
				Order:      nil,
				Outer:      op,
				Inner:      ip,
				JoinClause: p.a.Q.Joins[clauses[0].idx],
				Internal:   op.Internal + ip.Internal + hc,
				LeafCost:   op.LeafCost + ip.LeafCost,
				Leaves:     mergeLeaves(op, ip),
			})

			// Merge join per clause: inputs must be sorted on the clause
			// columns; explicit sorts are internal enforcers.
			for _, cl := range clauses {
				os := p.sorted(op, cl.outer)
				is := p.sorted(ip, cl.inner)
				mc := c.MergeJoinCost(os.Rows, is.Rows, outRows)
				p.addPath(jr, &Path{
					Op:         OpMergeJoin,
					Rels:       jr.set,
					Rows:       outRows,
					Cost:       os.Cost + is.Cost + mc,
					Order:      p.usefulOrder(jr.set, os.Order),
					Outer:      os,
					Inner:      is,
					JoinClause: p.a.Q.Joins[cl.idx],
					Internal:   os.Internal + is.Internal + mc,
					LeafCost:   os.LeafCost + is.LeafCost,
					Leaves:     mergeLeaves(os, is),
				})
			}
		}

		if !p.opt.EnableNestLoop {
			continue
		}

		// Indexed nested loop: inner must be a single base relation with
		// a configuration index on the join column.
		if inner.set.Count() == 1 {
			rel := inner.set.Members()[0]
			for _, cl := range clauses {
				best := math.Inf(1)
				var via *catalog.Index
				for _, ix := range p.configIndexes(rel) {
					if !ix.Covers(cl.inner.Column) {
						continue
					}
					if lc := p.a.LookupCost(rel, ix, cl.inner.Column); lc < best {
						best = lc
						via = ix
					}
				}
				if via == nil {
					continue
				}
				coef := op.Rows
				nc := c.NestLoopCost(op.Rows, outRows)
				innerPath := &Path{
					Op:      OpIndexScan,
					Rels:    inner.set,
					Rows:    p.a.LookupRows(rel, cl.inner.Column),
					Cost:    best,
					BaseRel: rel,
					Index:   via,
					Order:   nil,
					Leaves:  p.leavesFor(rel, LeafReq{Mode: AccessLookup, Col: cl.inner.Column, Coef: coef}),
				}
				p.addPath(jr, &Path{
					Op:         OpNestLoop,
					Rels:       jr.set,
					Rows:       outRows,
					Cost:       op.Cost + coef*best + nc,
					Order:      p.usefulOrder(jr.set, op.Order),
					Outer:      op,
					Inner:      innerPath,
					JoinClause: p.a.Q.Joins[cl.idx],
					Internal:   op.Internal + nc,
					LeafCost:   op.LeafCost + coef*best,
					Leaves:     mergeLeaves(op, innerPath),
				})
			}
		}

		// Materialised nested loop: rescan a materialised inner per outer
		// row. Only the cheapest inner is considered (the rescan cost
		// depends only on the inner's cardinality).
		if cheapestInner != nil {
			ip := cheapestInner
			rescan := (math.Max(op.Rows, 1) - 1) * c.MaterialRescanCost(ip.Rows)
			pairs := op.Rows * ip.Rows * c.P.CPUOperatorCost * float64(len(clauses))
			nc := c.NestLoopCost(op.Rows, outRows) + rescan + pairs
			p.addPath(jr, &Path{
				Op:         OpNestLoopMat,
				Rels:       jr.set,
				Rows:       outRows,
				Cost:       op.Cost + ip.Cost + nc,
				Order:      p.usefulOrder(jr.set, op.Order),
				Outer:      op,
				Inner:      ip,
				JoinClause: p.a.Q.Joins[clauses[0].idx],
				Internal:   op.Internal + ip.Internal + nc,
				LeafCost:   op.LeafCost + ip.LeafCost,
				Leaves:     mergeLeaves(op, ip),
			})
		}
	}
}

// usefulOrder trims a path's advertised sort order to orders that can still
// matter above this relation set: a future merge join on a clause crossing
// to the set's complement, or the query's grouping/ordering columns. This
// mirrors PostgreSQL's canonical-pathkey usefulness test and collapses
// otherwise-identical plans whose orders can never be exploited again.
func (p *planner) usefulOrder(set RelSet, order []query.ColRef) []query.ColRef {
	if len(order) == 0 {
		return nil
	}
	lead := order[0]
	for _, g := range p.a.Q.GroupBy {
		if g == lead {
			return order
		}
	}
	for _, o := range p.a.Q.OrderBy {
		if o == lead {
			return order
		}
	}
	for _, j := range p.a.Q.Joins {
		if j.Left == lead && !set.Has(j.Right.Rel) {
			return order
		}
		if j.Right == lead && !set.Has(j.Left.Rel) {
			return order
		}
	}
	return nil
}

// sorted returns path if it already delivers col-order, else wraps it in an
// explicit (internal-cost) sort.
func (p *planner) sorted(path *Path, col query.ColRef) *Path {
	want := []query.ColRef{col}
	if OrderSatisfies(path.Order, want) {
		return path
	}
	return p.sortPath(path, want)
}

func (p *planner) sortPath(child *Path, keys []query.ColRef) *Path {
	sc := p.a.Coster.SortCost(child.Rows)
	return &Path{
		Op:       OpSort,
		Rels:     child.Rels,
		Rows:     child.Rows,
		Cost:     child.Cost + sc,
		Order:    keys,
		Child:    child,
		SortKeys: keys,
		Internal: child.Internal + sc,
		LeafCost: child.LeafCost,
		Leaves:   child.Leaves,
	}
}

// orderCoversGroup reports whether the path order's prefix is exactly the
// group-by column set (grouping is order-insensitive across its columns).
func orderCoversGroup(order []query.ColRef, group []query.ColRef) bool {
	if len(order) < len(group) {
		return false
	}
	want := make(map[query.ColRef]bool, len(group))
	for _, g := range group {
		want[g] = true
	}
	for i := 0; i < len(group); i++ {
		if !want[order[i]] {
			return false
		}
	}
	return true
}

// finalize runs the grouping planner (paper §III): aggregation for GROUP BY
// and a final sort for ORDER BY, producing the complete-plan candidates.
func (p *planner) finalize(paths []*Path) []*Path {
	q := p.a.Q
	out := &joinRel{set: paths[0].Rels}
	c := &p.a.Coster

	finish := func(path *Path) {
		if len(q.OrderBy) > 0 && !OrderSatisfies(path.Order, q.OrderBy) {
			path = p.sortPath(path, q.OrderBy)
		}
		p.addPath(out, path)
	}

	for _, path := range paths {
		if len(q.GroupBy) == 0 {
			finish(path)
			continue
		}
		groups := p.a.GroupCount(q.GroupBy, path.Rows)

		// Hash aggregation: no input-order requirement, output unordered.
		hc := c.HashAggCost(path.Rows, groups, len(q.GroupBy))
		finish(&Path{
			Op:       OpHashAgg,
			Rels:     path.Rels,
			Rows:     groups,
			Cost:     path.Cost + hc,
			Order:    nil,
			Child:    path,
			Internal: path.Internal + hc,
			LeafCost: path.LeafCost,
			Leaves:   path.Leaves,
		})

		// Sorted aggregation: requires group-column order, preserves it.
		in := path
		if !orderCoversGroup(in.Order, q.GroupBy) {
			in = p.sortPath(in, q.GroupBy)
		}
		gc := c.SortedAggCost(in.Rows, groups, len(q.GroupBy))
		finish(&Path{
			Op:       OpSortedAgg,
			Rels:     in.Rels,
			Rows:     groups,
			Cost:     in.Cost + gc,
			Order:    in.Order,
			Child:    in,
			Internal: in.Internal + gc,
			LeafCost: in.LeafCost,
			Leaves:   in.Leaves,
		})
	}
	p.finishRel(out)
	p.res.Stats.PathsRetained = len(out.paths)
	return out.paths
}

// collectAccessCosts implements the §V-C hook: report the access cost of
// every configuration index on every relation, instead of discarding all
// but the cheapest.
func (p *planner) collectAccessCosts() {
	for rel := range p.a.Rels {
		ri := &p.a.Rels[rel]
		interesting := make(map[string]bool, len(ri.Interesting))
		for _, col := range ri.Interesting {
			interesting[col] = true
		}
		for _, ix := range p.configIndexes(rel) {
			f := p.a.IndexScanCost(rel, ix)
			ia := IndexAccess{
				Rel:       rel,
				Index:     ix,
				ScanCost:  f.Cost,
				IndexOnly: f.IndexOnly,
			}
			if interesting[ix.LeadColumn()] {
				ia.OrderCol = ix.LeadColumn()
				ia.LookupCost = p.a.LookupCost(rel, ix, ix.LeadColumn())
			}
			p.res.AccessCosts = append(p.res.AccessCosts, ia)
		}
	}
}

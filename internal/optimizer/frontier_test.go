package optimizer

import (
	"testing"
)

// incrementalFrontier reproduces the original incremental pruning for
// comparison with finishRel's batch pruning.
func incrementalFrontier(paths []*Path) []*Path {
	var out []*Path
	dominates := func(a, b *Path) bool {
		return OrderSatisfies(a.Order, b.Order) &&
			a.Internal <= b.Internal &&
			comboSubsumes(a.Leaves, b.Leaves, a.Rels, true)
	}
	for _, np := range paths {
		skip := false
		for _, old := range out {
			if dominates(old, np) {
				skip = true
				break
			}
		}
		if skip {
			continue
		}
		keep := out[:0]
		for _, old := range out {
			if !dominates(np, old) {
				keep = append(keep, old)
			}
		}
		out = append(keep, np)
	}
	return out
}

// TestFrontierEquivalence checks that batch subsumption pruning and the
// incremental variant agree on a real DP-generated path population.
func TestFrontierEquivalence(t *testing.T) {
	q, _ := debugStarQuery(t)
	a, err := NewAnalysis(q, nil, DefaultCostParams())
	if err != nil {
		t.Fatal(err)
	}
	cfg := debugAllOrdersConfig(t, a)

	// Capture the raw generated paths of the 3-relation joinrels by
	// running the planner on a trimmed 3-relation query.
	q3 := *q
	q3.Rels = q.Rels[:3]
	q3.Joins = q.Joins[:2]
	q3.Select = q.Select[:2]
	q3.GroupBy = q.GroupBy[:1]
	q3.OrderBy = nil
	a3, err := NewAnalysis(&q3, nil, DefaultCostParams())
	if err != nil {
		t.Fatal(err)
	}
	p := &planner{a: a3, cfg: cfg, opt: Options{EnableNestLoop: true, ExportAll: true, PreciseNLJ: true}, res: &Result{}}
	top, err := p.plan()
	if err != nil {
		t.Fatal(err)
	}
	batch := top.paths

	inc := incrementalFrontier(batch)
	// Frontier of a frontier must be itself: if incremental pruning finds
	// dominated paths inside finishRel's output, batch pruning is leaky.
	if len(inc) != len(batch) {
		t.Errorf("batch frontier has %d paths but %d survive incremental re-pruning",
			len(batch), len(inc))
		dominates := func(a, b *Path) bool {
			return OrderSatisfies(a.Order, b.Order) &&
				a.Internal <= b.Internal &&
				comboSubsumes(a.Leaves, b.Leaves, a.Rels, true)
		}
		shown := 0
		for _, bp := range batch {
			found := false
			for _, ip := range inc {
				if ip == bp {
					found = true
					break
				}
			}
			if !found && shown < 5 {
				shown++
				t.Logf("dominated survivor: internal=%.2f order=%v leaves=%v",
					bp.Internal, bp.Order, bp.Leaves)
				for _, ip := range inc {
					if dominates(ip, bp) {
						t.Logf("   dominated by: internal=%.2f order=%v leaves=%v",
							ip.Internal, ip.Order, ip.Leaves)
						break
					}
				}
			}
		}
	}
}

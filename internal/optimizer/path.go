package optimizer

import (
	"fmt"
	"math/bits"
	"strings"
	"unsafe"

	"github.com/pinumdb/pinum/internal/catalog"
	"github.com/pinumdb/pinum/internal/query"
)

// RelSet is a bitset of base-relation indices within one query. Queries are
// limited to 64 relations, far beyond the DP join planner's practical reach.
type RelSet uint64

// Single returns the set containing only relation i.
func Single(i int) RelSet { return RelSet(1) << uint(i) }

// Has reports membership.
func (s RelSet) Has(i int) bool { return s&Single(i) != 0 }

// Union returns s ∪ t.
func (s RelSet) Union(t RelSet) RelSet { return s | t }

// Intersects reports whether the sets overlap.
func (s RelSet) Intersects(t RelSet) bool { return s&t != 0 }

// Count returns the cardinality.
func (s RelSet) Count() int { return bits.OnesCount64(uint64(s)) }

// NextSubset returns the next non-empty subset of s after cur in ascending
// numeric order, or 0 when cur was the last one (cur == s). Starting from
// cur == 0 and iterating until the return value is 0 therefore visits every
// non-empty subset of s exactly once, smallest first — the enumeration
// order DPccp's neighborhood expansion relies on (enumerate.go).
func (s RelSet) NextSubset(cur RelSet) RelSet { return (cur - s) & s }

// Members returns the member indices in ascending order.
func (s RelSet) Members() []int {
	out := make([]int, 0, s.Count())
	for v := uint64(s); v != 0; {
		i := bits.TrailingZeros64(v)
		out = append(out, i)
		v &^= 1 << uint(i)
	}
	return out
}

// Op identifies a physical operator in a path/plan tree.
type Op int

const (
	OpSeqScan Op = iota
	OpIndexScan
	OpIndexOnlyScan
	OpSort
	OpHashJoin
	OpMergeJoin
	OpNestLoop    // nested loop with parameterized inner index lookup
	OpNestLoopMat // nested loop over a materialised inner
	OpHashAgg
	OpSortedAgg
)

// String returns the EXPLAIN name of the operator.
func (op Op) String() string {
	switch op {
	case OpSeqScan:
		return "Seq Scan"
	case OpIndexScan:
		return "Index Scan"
	case OpIndexOnlyScan:
		return "Index Only Scan"
	case OpSort:
		return "Sort"
	case OpHashJoin:
		return "Hash Join"
	case OpMergeJoin:
		return "Merge Join"
	case OpNestLoop:
		return "Nested Loop"
	case OpNestLoopMat:
		return "Nested Loop (materialized)"
	case OpHashAgg:
		return "HashAggregate"
	case OpSortedAgg:
		return "GroupAggregate"
	default:
		return fmt.Sprintf("Op(%d)", int(op))
	}
}

// AccessMode describes how a cached plan's leaf reads a base relation at
// cost-model evaluation time.
type AccessMode int

const (
	// AccessAny reads the relation with whatever access path is cheapest
	// under the configuration (seq scan or any index).
	AccessAny AccessMode = iota
	// AccessOrdered reads the relation in the order of column Col; it
	// requires a configuration index whose leading column is Col.
	AccessOrdered
	// AccessLookup probes the relation by equality on Col once per outer
	// row (nested-loop inner); it requires an index leading on Col.
	AccessLookup
)

func (m AccessMode) String() string {
	switch m {
	case AccessAny:
		return "any"
	case AccessOrdered:
		return "ordered"
	case AccessLookup:
		return "lookup"
	default:
		return fmt.Sprintf("AccessMode(%d)", int(m))
	}
}

// LeafReq is a cached plan's requirement on one base relation: the access
// mode, the relevant column, and the multiplier applied to the access cost
// (1 for scans, the outer row count for nested-loop lookups).
type LeafReq struct {
	Mode AccessMode
	Col  string
	Coef float64
}

// Path is a node in the optimizer's path tree. Paths double as executable
// plans: the executor interprets them directly.
type Path struct {
	Op   Op
	Rels RelSet
	Rows float64
	Cost float64 // total cost under the planning-time configuration

	// Order is the sort order the path's output provides (pathkeys).
	Order []query.ColRef

	// Base scans.
	BaseRel int
	Index   *catalog.Index

	// Joins.
	Outer, Inner *Path
	JoinClause   query.Join // clause driving merge/NLJ pairing

	// Sort and aggregation.
	Child    *Path
	SortKeys []query.ColRef

	// INUM decomposition, maintained bottom-up:
	// Cost == Internal + Σ_i Leaves[i].Coef × leaf access cost_i, where
	// Internal covers joins, sorts and aggregation — everything that
	// depends only on row counts, not on access methods.
	Internal float64
	// LeafCost is Σ coef × access cost under the planning configuration.
	LeafCost float64
	// Leaves holds one requirement per query relation (len = number of
	// relations in the query); entries for relations outside Rels are
	// the zero requirement and must be ignored.
	Leaves []LeafReq

	// pkRef points (1-based) into the planner's per-call key arena at the
	// packed (leaf combo, output order) identity assigned when the fast
	// planner retained this path in ExportAll mode: join candidates
	// derive their own keys by OR-ing their children's packed leaves
	// instead of re-interning columns (see fastplan.go). Zero means no
	// key was assigned. The keys live in the arena, not on the path, so
	// retained plans — which outlive the call inside plan caches by the
	// thousand — don't each carry the 96-byte key struct.
	pkRef int32
}

// LeafCombo derives the interesting order combination this path requires:
// one entry per query relation, "" (Φ) for AccessAny or absent relations,
// the column for AccessOrdered and AccessLookup.
func (p *Path) LeafCombo(nRels int) query.OrderCombo {
	combo := make(query.OrderCombo, nRels)
	for rel := 0; rel < nRels && rel < len(p.Leaves); rel++ {
		if p.Rels.Has(rel) && p.Leaves[rel].Mode != AccessAny {
			combo[rel] = p.Leaves[rel].Col
		}
	}
	return combo
}

// PlanSummary is the INUM decomposition of one complete plan, detached
// from the path tree that produced it: exactly what the cached cost model
// (inum.Cache.Cost) consumes. Slim plan caches retain only this, so the
// DP planner's retained trees become garbage the moment the optimizer
// call returns instead of living for the cache's lifetime.
type PlanSummary struct {
	// Combo is the interesting order combination the plan requires.
	Combo query.OrderCombo
	// Internal is the access-method-independent cost.
	Internal float64
	// Leaves holds one access requirement per query relation.
	Leaves []LeafReq
	// NLJ marks plans containing nested-loop joins.
	NLJ bool
}

// Summarize extracts the INUM decomposition of a complete plan over nRels
// relations. The leaf normalisation (AccessAny with coefficient 1 for
// every relation, overwritten by the plan's own requirements) is the one
// the plan cache has always applied; hoisting it here lets tree-backed
// and slim caches share it bit for bit.
func Summarize(p *Path, nRels int) PlanSummary {
	leaves := newLeaves(nRels)
	nlj := false
	for rel, req := range p.Leaves {
		leaves[rel] = req
		if req.Mode == AccessLookup {
			nlj = true
		}
	}
	return PlanSummary{
		Combo:    p.LeafCombo(nRels),
		Internal: p.Internal,
		Leaves:   leaves,
		NLJ:      nlj,
	}
}

// Packed leaf requirements: the planner's interned byte form of a LeafReq,
// used by slim plan caches and the plancache snapshot codec. One uint16
// holds the access mode in the top two bits and the column as the
// relation's 1-based interned interesting-order id in the low fourteen
// (0 = no column, i.e. AccessAny). The id space is per relation and
// deterministic — RelInfo.Interesting is sorted, and ids are positions in
// it — so packed leaves round-trip across processes given the same query.
// The coefficient stays a separate float64: it is cost-model payload, not
// identity. Compared to a LeafReq (mode word + string header + coef), one
// leaf shrinks from 32 to 10 bytes.
const (
	packedLeafModeShift = 14
	packedLeafIDMask    = 1<<packedLeafModeShift - 1
)

// PackLeaf returns the interned form of one leaf requirement on rel. It
// fails if the column is not one of the relation's interned interesting
// orders — planner-produced requirements always are; anything else is a
// corrupt or foreign input.
func (a *Analysis) PackLeaf(rel int, req LeafReq) (uint16, error) {
	var id uint16
	if req.Col != "" {
		id = a.ordIDs[rel][req.Col]
		if id == 0 {
			return 0, fmt.Errorf("optimizer: column %s is not an interned interesting order of relation %d", req.Col, rel)
		}
	}
	if req.Mode != AccessAny && id == 0 {
		return 0, fmt.Errorf("optimizer: %v leaf requirement on relation %d names no column", req.Mode, rel)
	}
	return uint16(req.Mode)<<packedLeafModeShift | id, nil
}

// UnpackLeaf reconstructs the LeafReq a packed leaf encodes, attaching the
// externally-stored coefficient. The column string comes from the
// analysis's interning table, so unpacking allocates nothing.
//
//pinum:hotpath
func (a *Analysis) UnpackLeaf(rel int, pk uint16, coef float64) LeafReq {
	req := LeafReq{Mode: AccessMode(pk >> packedLeafModeShift), Coef: coef}
	if id := pk & packedLeafIDMask; id > 0 {
		req.Col = a.Rels[rel].Interesting[id-1]
	}
	return req
}

// CheckPackedLeaf validates an externally-supplied packed leaf (a decoded
// snapshot entry) against this analysis: a known access mode, an id inside
// the relation's interned order space, present exactly when the mode
// requires a column.
func (a *Analysis) CheckPackedLeaf(rel int, pk uint16) error {
	mode := AccessMode(pk >> packedLeafModeShift)
	id := pk & packedLeafIDMask
	if mode > AccessLookup {
		return fmt.Errorf("optimizer: invalid access mode %d in packed leaf", mode)
	}
	if mode == AccessAny {
		if id != 0 {
			return fmt.Errorf("optimizer: AccessAny packed leaf carries order id %d", id)
		}
		return nil
	}
	if id == 0 || int(id) > len(a.Rels[rel].Interesting) {
		return fmt.Errorf("optimizer: packed leaf order id %d outside relation %d's %d interned orders",
			id, rel, len(a.Rels[rel].Interesting))
	}
	return nil
}

// PackedNLJ reports whether a packed leaf encodes a nested-loop lookup.
func PackedNLJ(pk uint16) bool {
	return AccessMode(pk>>packedLeafModeShift) == AccessLookup
}

// Footprint accumulates the retained size of the path tree rooted at p
// into (nodes, bytes), skipping nodes already recorded in seen — DP plans
// share subtrees heavily, and double-counting them would overstate the
// cache's real footprint. bytes covers the Path structs plus their owned
// slices (leaf requirements, pathkeys, sort keys), the storage a slim
// cache entry gives back.
func (p *Path) Footprint(seen map[*Path]bool) (nodes int, bytes int64) {
	if p == nil || seen[p] {
		return 0, 0
	}
	seen[p] = true
	nodes, bytes = 1, pathNodeBytes(p)
	for _, child := range []*Path{p.Outer, p.Inner, p.Child} {
		n, b := child.Footprint(seen)
		nodes += n
		bytes += b
	}
	return nodes, bytes
}

// pathNodeBytes estimates one node's heap footprint: the struct itself
// plus its owned slice backing arrays (slice headers are inside the
// struct; string contents are shared column names and not charged).
func pathNodeBytes(p *Path) int64 {
	b := int64(unsafe.Sizeof(Path{}))
	b += int64(cap(p.Leaves)) * int64(unsafe.Sizeof(LeafReq{}))
	b += int64(cap(p.Order)) * int64(unsafe.Sizeof(query.ColRef{}))
	b += int64(cap(p.SortKeys)) * int64(unsafe.Sizeof(query.ColRef{}))
	return b
}

// OrderSatisfies reports whether the order provided by `have` satisfies the
// requirement `want` (prefix semantics, as with PostgreSQL pathkeys).
func OrderSatisfies(have, want []query.ColRef) bool {
	if len(want) > len(have) {
		return false
	}
	for i := range want {
		if have[i] != want[i] {
			return false
		}
	}
	return true
}

// Signature returns a canonical structural identity for the path tree,
// excluding costs. Two paths with equal signatures are the same plan; the
// paper's §IV redundancy analysis counts unique signatures.
func (p *Path) Signature() string {
	var b strings.Builder
	p.writeSig(&b)
	return b.String()
}

func (p *Path) writeSig(b *strings.Builder) {
	switch p.Op {
	case OpSeqScan, OpIndexScan, OpIndexOnlyScan:
		// Identify base accesses by their INUM slot (mode + column), not
		// by operator or index name: under the cached model a leaf is an
		// access requirement, and interchangeable physical accesses are
		// the same plan.
		req := p.Leaves[p.BaseRel]
		switch req.Mode {
		case AccessOrdered:
			fmt.Fprintf(b, "ord(%d:%s)", p.BaseRel, req.Col)
		case AccessLookup:
			fmt.Fprintf(b, "lookup(%d:%s)", p.BaseRel, req.Col)
		default:
			fmt.Fprintf(b, "any(%d)", p.BaseRel)
		}
	case OpSort:
		b.WriteString("sort[")
		for i, k := range p.SortKeys {
			if i > 0 {
				b.WriteByte(',')
			}
			b.WriteString(k.String())
		}
		b.WriteString("](")
		p.Child.writeSig(b)
		b.WriteString(")")
	case OpHashJoin, OpMergeJoin, OpNestLoop, OpNestLoopMat:
		switch p.Op {
		case OpHashJoin:
			b.WriteString("hj(")
		case OpMergeJoin:
			b.WriteString("mj(")
		case OpNestLoop:
			b.WriteString("nl(")
		default:
			b.WriteString("nlm(")
		}
		p.Outer.writeSig(b)
		b.WriteByte(',')
		p.Inner.writeSig(b)
		b.WriteString(")")
	case OpHashAgg:
		b.WriteString("hagg(")
		p.Child.writeSig(b)
		b.WriteString(")")
	case OpSortedAgg:
		b.WriteString("gagg(")
		p.Child.writeSig(b)
		b.WriteString(")")
	}
}

// newLeaves returns a fresh all-AccessAny requirement slice for n
// relations.
func newLeaves(n int) []LeafReq {
	out := make([]LeafReq, n)
	for i := range out {
		out[i].Coef = 1
	}
	return out
}

// mergeLeaves merges the requirements of two disjoint-relation paths into a
// fresh slice: outer's entries plus inner's entries for inner's members.
func mergeLeaves(outer, inner *Path) []LeafReq {
	out := make([]LeafReq, len(outer.Leaves))
	copy(out, outer.Leaves)
	for rel := range out {
		if inner.Rels.Has(rel) {
			out[rel] = inner.Leaves[rel]
		}
	}
	return out
}

// comboSubsumes reports whether plan a's leaf requirements are dominated by
// plan b's in the paper's §V-D sense: under every configuration where b is
// applicable, a is applicable and a's total leaf access charge is no larger.
// Concretely, per relation of the (shared) relation set:
//
//   - b requires Ordered: a may require Any (an unordered access is never
//     costlier than an ordered one under the same configuration) or the
//     identical Ordered column;
//   - b requires Lookup: a must require a Lookup on the same column; with
//     preciseNLJ, a's probe count must additionally be no larger than b's
//     (the paper's §V-D "higher accuracy, bigger plan cache" refinement —
//     without it, nested-loop plans differing only in probe count collapse,
//     which is the paper's default, approximate treatment of NLJ);
//   - b requires Any: a must also require Any (a more demanding a cannot be
//     shown cheaper).
func comboSubsumes(a, b []LeafReq, rels RelSet, preciseNLJ bool) bool {
	for rel := 0; rel < len(a); rel++ {
		if !rels.Has(rel) {
			continue
		}
		ra, rb := a[rel], b[rel]
		switch rb.Mode {
		case AccessOrdered:
			if ra.Mode == AccessAny {
				continue
			}
			if ra.Mode != AccessOrdered || ra.Col != rb.Col {
				return false
			}
		case AccessLookup:
			if ra.Mode != AccessLookup || ra.Col != rb.Col {
				return false
			}
			if preciseNLJ && ra.Coef > rb.Coef {
				return false
			}
		default: // AccessAny
			if ra.Mode != AccessAny {
				return false
			}
		}
	}
	return true
}

// comboSubsumesByColumn is the paper's coarser §V-D subsumption: a
// combination slot is only the column an index must lead on; whether the
// plan consumes it as an ordered scan or a nested-loop probe is not
// distinguished. Plan a subsumes b when every a slot is Φ or names the
// same column as b's slot.
func comboSubsumesByColumn(a, b []LeafReq, rels RelSet) bool {
	for rel := 0; rel < len(a); rel++ {
		if !rels.Has(rel) {
			continue
		}
		ra, rb := a[rel], b[rel]
		if ra.Mode == AccessAny {
			continue
		}
		if rb.Mode == AccessAny || ra.Col != rb.Col {
			return false
		}
	}
	return true
}

package optimizer

import (
	"math"
	"strings"
	"testing"
	"testing/quick"

	"github.com/pinumdb/pinum/internal/query"
	"github.com/pinumdb/pinum/internal/storage"
)

// TestDPOptimalityVsExhaustive checks that the dynamic program finds the
// same optimum as brute-force enumeration over all plans it can express,
// approximated here by comparing against the best of many restricted runs:
// every join-order-forcing subset of the configuration must cost at least
// the unrestricted optimum.
func TestDPOptimalityVsExhaustive(t *testing.T) {
	q, _ := debugStarQuery(t)
	a, err := NewAnalysis(q, nil, DefaultCostParams())
	if err != nil {
		t.Fatal(err)
	}
	full := debugAllOrdersConfig(t, a)
	best, err := Optimize(a, full, Options{EnableNestLoop: true})
	if err != nil {
		t.Fatal(err)
	}
	// Any subset of the configuration can only produce costlier plans.
	for drop := 0; drop < len(full.Indexes); drop++ {
		sub := &query.Config{}
		for i, ix := range full.Indexes {
			if i != drop {
				sub.Indexes = append(sub.Indexes, ix)
			}
		}
		res, err := Optimize(a, sub, Options{EnableNestLoop: true})
		if err != nil {
			t.Fatal(err)
		}
		if res.Best.Cost < best.Best.Cost*(1-1e-9) {
			t.Errorf("dropping index %d made the plan cheaper: %f < %f",
				drop, res.Best.Cost, best.Best.Cost)
		}
	}
}

// TestNestLoopFlagRemovesNestLoops verifies the §V-B enable_nestloop tweak:
// with the flag off, no plan in the search space contains a nested loop.
func TestNestLoopFlagRemovesNestLoops(t *testing.T) {
	q, _ := debugStarQuery(t)
	a, err := NewAnalysis(q, nil, DefaultCostParams())
	if err != nil {
		t.Fatal(err)
	}
	cfg := debugAllOrdersConfig(t, a)
	res, err := Optimize(a, cfg, Options{ExportAll: true})
	if err != nil {
		t.Fatal(err)
	}
	var check func(p *Path) bool
	check = func(p *Path) bool {
		if p == nil {
			return true
		}
		if p.Op == OpNestLoop || p.Op == OpNestLoopMat {
			return false
		}
		return check(p.Outer) && check(p.Inner) && check(p.Child)
	}
	for _, p := range res.Exported {
		if !check(p) {
			t.Fatalf("nested loop survived with EnableNestLoop=false:\n%s", Explain(p, q))
		}
	}
}

// TestCostDecomposition verifies the INUM linearity invariant on every
// exported plan: Cost == Internal + Σ coef × leaf access cost.
func TestCostDecomposition(t *testing.T) {
	q, _ := debugStarQuery(t)
	a, err := NewAnalysis(q, nil, DefaultCostParams())
	if err != nil {
		t.Fatal(err)
	}
	cfg := debugAllOrdersConfig(t, a)
	res, err := Optimize(a, cfg, Options{ExportAll: true, EnableNestLoop: true, PreciseNLJ: true})
	if err != nil {
		t.Fatal(err)
	}
	for _, p := range res.Exported {
		if d := math.Abs(p.Cost - p.Internal - p.LeafCost); d > 1e-6*(1+p.Cost) {
			t.Fatalf("decomposition broken: cost %f != internal %f + leaf %f", p.Cost, p.Internal, p.LeafCost)
		}
		if p.Internal < 0 || p.LeafCost < 0 {
			t.Fatalf("negative cost component: internal %f leaf %f", p.Internal, p.LeafCost)
		}
	}
}

// TestOrderByForcesSortedOutput checks the grouping planner: the best plan
// of an ORDER BY query must deliver the requested order.
func TestOrderByForcesSortedOutput(t *testing.T) {
	q, _ := debugStarQuery(t)
	a, err := NewAnalysis(q, nil, DefaultCostParams())
	if err != nil {
		t.Fatal(err)
	}
	res, err := Optimize(a, nil, Options{EnableNestLoop: true})
	if err != nil {
		t.Fatal(err)
	}
	if !OrderSatisfies(res.Best.Order, q.OrderBy) {
		t.Fatalf("best plan does not deliver ORDER BY: order=%v want=%v", res.Best.Order, q.OrderBy)
	}
}

func TestExplainMentionsOperators(t *testing.T) {
	q, _ := debugStarQuery(t)
	a, err := NewAnalysis(q, nil, DefaultCostParams())
	if err != nil {
		t.Fatal(err)
	}
	res, err := Optimize(a, nil, Options{})
	if err != nil {
		t.Fatal(err)
	}
	out := Explain(res.Best, q)
	for _, want := range []string{"Seq Scan", "rows=", "cost="} {
		if !strings.Contains(out, want) {
			t.Errorf("explain output misses %q:\n%s", want, out)
		}
	}
}

func TestRelSetOps(t *testing.T) {
	s := Single(0).Union(Single(3)).Union(Single(5))
	if s.Count() != 3 || !s.Has(3) || s.Has(1) {
		t.Errorf("set ops wrong: %b", s)
	}
	m := s.Members()
	if len(m) != 3 || m[0] != 0 || m[1] != 3 || m[2] != 5 {
		t.Errorf("Members = %v", m)
	}
	if !s.Intersects(Single(5)) || s.Intersects(Single(4)) {
		t.Error("Intersects wrong")
	}
}

func TestOrderSatisfiesPrefix(t *testing.T) {
	a := []query.ColRef{{Rel: 0, Column: "x"}, {Rel: 1, Column: "y"}}
	if !OrderSatisfies(a, a[:1]) {
		t.Error("prefix not satisfied")
	}
	if !OrderSatisfies(a, nil) {
		t.Error("empty requirement not satisfied")
	}
	if OrderSatisfies(a[:1], a) {
		t.Error("shorter order satisfied longer requirement")
	}
	if OrderSatisfies(nil, a[:1]) {
		t.Error("nil order satisfied requirement")
	}
}

// Property: selectivity-driven row estimates are positive and joining more
// relations never increases the estimated cardinality product beyond the
// cartesian bound.
func TestJoinRowsProperties(t *testing.T) {
	q, _ := debugStarQuery(t)
	a, err := NewAnalysis(q, nil, DefaultCostParams())
	if err != nil {
		t.Fatal(err)
	}
	full := RelSet(1<<uint(len(q.Rels))) - 1
	f := func(raw uint8) bool {
		s := RelSet(raw) & full
		if s == 0 {
			return true
		}
		rows := a.JoinRows(s)
		if rows < 1 {
			return false
		}
		cartesian := 1.0
		for _, i := range s.Members() {
			cartesian *= math.Max(a.Rels[i].Rows, 1)
		}
		return rows <= cartesian*(1+1e-9)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

// TestIndexOnlyCheaperThanHeapScan pins a cost-model sanity property: a
// covering index scan never costs more than the same index scan with heap
// fetches.
func TestIndexOnlyCheaperThanHeapScan(t *testing.T) {
	q, cat := debugStarQuery(t)
	a, err := NewAnalysis(q, nil, DefaultCostParams())
	if err != nil {
		t.Fatal(err)
	}
	f := cat.Table("f")
	covering := storage.HypotheticalIndex("cov", f, []string{"fk1", "fk2", "fk3", "m1", "a1"})
	thin := storage.HypotheticalIndex("thin", f, []string{"fk1"})
	covCost := a.IndexScanCost(0, covering)
	thinCost := a.IndexScanCost(0, thin)
	if !covCost.IndexOnly {
		t.Fatal("covering index not detected as index-only")
	}
	if covCost.Cost >= thinCost.Cost {
		t.Errorf("index-only scan (%.1f) not cheaper than heap-fetching scan (%.1f)",
			covCost.Cost, thinCost.Cost)
	}
}

// TestAccessCostAgreesWithScanPaths pins the shared-coster invariant: the
// cache evaluator's AccessCost for AccessAny equals the cheapest scan the
// planner would build for that relation under the same configuration.
func TestAccessCostAgreesWithScanPaths(t *testing.T) {
	q, _ := debugStarQuery(t)
	a, err := NewAnalysis(q, nil, DefaultCostParams())
	if err != nil {
		t.Fatal(err)
	}
	cfg := debugAllOrdersConfig(t, a)
	p := &planner{a: a, cfg: cfg, opt: Options{}, res: &Result{}}
	for rel := range a.Rels {
		jr := p.scanPaths(rel)
		var cheapest float64 = math.Inf(1)
		for _, path := range jr.paths {
			if path.Cost < cheapest {
				cheapest = path.Cost
			}
		}
		got, ok := a.AccessCost(rel, LeafReq{Mode: AccessAny, Coef: 1}, cfg)
		if !ok {
			t.Fatalf("rel %d: AccessAny inapplicable", rel)
		}
		if math.Abs(got-cheapest) > 1e-9*(1+cheapest) {
			t.Errorf("rel %d: AccessCost %f != cheapest scan path %f", rel, got, cheapest)
		}
	}
}

// TestBaseLeafCost checks the seam incremental evaluators seed from: the
// empty-configuration floor is the sequential-scan cost for AccessAny
// leaves and +Inf (not applicable) for ordered/lookup leaves, and
// LeafAccessCost under the empty configuration agrees with it exactly.
func TestBaseLeafCost(t *testing.T) {
	q, _ := debugStarQuery(t)
	a, err := NewAnalysis(q, nil, DefaultCostParams())
	if err != nil {
		t.Fatal(err)
	}
	empty := &query.Config{}
	for rel := range a.Rels {
		got, ok := BaseLeafCost(a, rel, LeafReq{Mode: AccessAny, Coef: 1})
		if !ok {
			t.Fatalf("rel %d: AccessAny base not applicable", rel)
		}
		if math.Float64bits(got) != math.Float64bits(a.SeqScanCost(rel)) {
			t.Errorf("rel %d: base %v != seq scan %v", rel, got, a.SeqScanCost(rel))
		}
		full, ok := LeafAccessCost(a, rel, LeafReq{Mode: AccessAny, Coef: 1}, empty)
		if !ok || math.Float64bits(full) != math.Float64bits(got) {
			t.Errorf("rel %d: LeafAccessCost(empty) = (%v, %v), want (%v, true)", rel, full, ok, got)
		}
		for _, mode := range []AccessMode{AccessOrdered, AccessLookup} {
			req := LeafReq{Mode: mode, Col: "id", Coef: 1}
			if c, ok := BaseLeafCost(a, rel, req); ok || !math.IsInf(c, 1) {
				t.Errorf("rel %d mode %v: base = (%v, %v), want (+Inf, false)", rel, mode, c, ok)
			}
			if _, ok := LeafAccessCost(a, rel, req, empty); ok {
				t.Errorf("rel %d mode %v: satisfied by the empty configuration", rel, mode)
			}
		}
	}
}

// Package whatif implements hypothetical-index sessions: the paper's §V-A
// what-if interface. A session creates and drops indexes that exist only as
// statistics (leaf-page size estimates from average attribute widths and
// row counts), and packages index sets into configurations the optimizer
// can plan under.
package whatif

import (
	"fmt"
	"sort"
	"strings"

	"github.com/pinumdb/pinum/internal/catalog"
	"github.com/pinumdb/pinum/internal/query"
	"github.com/pinumdb/pinum/internal/storage"
)

// Session manages hypothetical indexes over a base catalog. It never
// mutates the base catalog: hypothetical indexes live only in the session.
type Session struct {
	base    *catalog.Catalog
	hypo    map[string]*catalog.Index // by name
	byKey   map[string]*catalog.Index // by canonical table(cols) key
	seq     map[string]int            // name → creation counter, orders Indexes()
	counter int
}

// NewSession returns an empty what-if session over cat.
func NewSession(cat *catalog.Catalog) *Session {
	return &Session{
		base:  cat,
		hypo:  make(map[string]*catalog.Index),
		byKey: make(map[string]*catalog.Index),
		seq:   make(map[string]int),
	}
}

// CreateIndex declares a hypothetical index on table(columns...) and
// returns its descriptor. Declaring the same key twice returns the existing
// descriptor, mirroring how what-if interfaces deduplicate candidates.
func (s *Session) CreateIndex(table string, columns ...string) (*catalog.Index, error) {
	t := s.base.Table(table)
	if t == nil {
		return nil, fmt.Errorf("whatif: unknown table %q", table)
	}
	if len(columns) == 0 {
		return nil, fmt.Errorf("whatif: index on %q needs at least one column", table)
	}
	seen := make(map[string]bool, len(columns))
	for _, col := range columns {
		if t.Column(col) == nil {
			return nil, fmt.Errorf("whatif: unknown column %s.%s", table, col)
		}
		if seen[col] {
			return nil, fmt.Errorf("whatif: duplicate column %q in index on %q", col, table)
		}
		seen[col] = true
	}
	key := indexKey(table, columns)
	if ix, ok := s.byKey[key]; ok {
		return ix, nil
	}
	s.counter++
	name := fmt.Sprintf("hypo_%s_%d", table, s.counter)
	ix := storage.HypotheticalIndex(name, t, columns)
	s.hypo[name] = ix
	s.byKey[key] = ix
	s.seq[name] = s.counter
	return ix, nil
}

// indexKey builds the canonical table(col1,col2,...) dedup key CreateIndex
// and Lookup share — one format, one place to change it.
func indexKey(table string, columns []string) string {
	size := len(table) + 1 + len(columns) // "(", one "," per column, ")"
	for _, c := range columns {
		size += len(c)
	}
	var kb strings.Builder
	kb.Grow(size)
	kb.WriteString(table)
	kb.WriteByte('(')
	for i, c := range columns {
		if i > 0 {
			kb.WriteByte(',')
		}
		kb.WriteString(c)
	}
	kb.WriteByte(')')
	return kb.String()
}

// Count returns the number of hypothetical indexes the session holds.
// Long-lived servers use it to bound their shared index interner.
func (s *Session) Count() int { return len(s.hypo) }

// Lookup returns the already-declared index on table(columns...), or nil
// — CreateIndex's dedup check without the side effect of declaring.
func (s *Session) Lookup(table string, columns ...string) *catalog.Index {
	return s.byKey[indexKey(table, columns)]
}

// DropIndex removes a hypothetical index by name.
func (s *Session) DropIndex(name string) bool {
	ix, ok := s.hypo[name]
	if !ok {
		return false
	}
	delete(s.hypo, name)
	delete(s.byKey, ix.Key())
	delete(s.seq, name)
	return true
}

// Indexes returns all hypothetical indexes in creation order. Ordering by
// the creation counter (not the name) keeps the sequence stable past nine
// indexes per table: lexicographically "hypo_t_10" sorts before "hypo_t_2",
// which made AllConfig's index order — and therefore equal-cost index
// tie-breaks in the planner — depend on how many indexes a session held.
func (s *Session) Indexes() []*catalog.Index {
	out := make([]*catalog.Index, 0, len(s.hypo))
	for _, ix := range s.hypo {
		out = append(out, ix)
	}
	sort.Slice(out, func(i, j int) bool { return s.seq[out[i].Name] < s.seq[out[j].Name] })
	return out
}

// Config bundles the given indexes (hypothetical or real) into a planning
// configuration.
func Config(indexes ...*catalog.Index) *query.Config {
	return &query.Config{Indexes: indexes}
}

// AllConfig returns the configuration holding every session index plus any
// extra indexes given — the "all interesting orders covered" configuration
// PINUM optimizes under.
func (s *Session) AllConfig(extra ...*catalog.Index) *query.Config {
	return &query.Config{Indexes: append(s.Indexes(), extra...)}
}

// CoveringConfig builds an atomic configuration covering the interesting
// order combination oc of query q: one single-column hypothetical index per
// non-Φ slot. This is how INUM's cache construction asks its per-combination
// what-if questions.
func (s *Session) CoveringConfig(q *query.Query, oc query.OrderCombo) (*query.Config, error) {
	cfg := &query.Config{}
	done := make(map[string]bool)
	for i, col := range oc {
		if col == "" {
			continue
		}
		table := q.Rels[i].Table.Name
		// Self-join slots share the table's physical indexes: one index
		// per distinct (table, order) pair suffices, since each relation
		// occurrence picks its own access path.
		key := table + ":" + col
		if done[key] {
			continue
		}
		done[key] = true
		ix, err := s.CreateIndex(table, col)
		if err != nil {
			return nil, err
		}
		cfg.Indexes = append(cfg.Indexes, ix)
	}
	return cfg, nil
}

package whatif

import (
	"testing"

	"github.com/pinumdb/pinum/internal/catalog"
)

func cat(t *testing.T) *catalog.Catalog {
	t.Helper()
	c := catalog.New()
	tb := &catalog.Table{Name: "t", RowCount: 1_000_000}
	for _, n := range []string{"id", "a", "b"} {
		tb.Columns = append(tb.Columns, &catalog.Column{Name: n, Type: catalog.Int, NDV: 1000, Min: 1, Max: 1000})
	}
	if err := c.AddTable(tb); err != nil {
		t.Fatal(err)
	}
	return c
}

func TestCreateIndexProperties(t *testing.T) {
	s := NewSession(cat(t))
	ix, err := s.CreateIndex("t", "a", "b")
	if err != nil {
		t.Fatal(err)
	}
	if !ix.Hypothetical {
		t.Error("session index not hypothetical")
	}
	if ix.LeafPages <= 0 {
		t.Error("no leaf page estimate")
	}
	if ix.InternalPages != 0 {
		t.Error("what-if index has internal pages (§V-A says ignore them)")
	}
	if !ix.Covers("a") || ix.Covers("b") {
		t.Error("Covers semantics wrong")
	}
}

func TestCreateIndexDeduplicates(t *testing.T) {
	s := NewSession(cat(t))
	a, err := s.CreateIndex("t", "a", "b")
	if err != nil {
		t.Fatal(err)
	}
	b, err := s.CreateIndex("t", "a", "b")
	if err != nil {
		t.Fatal(err)
	}
	if a != b {
		t.Error("same key produced distinct descriptors")
	}
	c, err := s.CreateIndex("t", "b", "a")
	if err != nil {
		t.Fatal(err)
	}
	if c == a {
		t.Error("different column order deduplicated")
	}
	if len(s.Indexes()) != 2 {
		t.Errorf("session has %d indexes, want 2", len(s.Indexes()))
	}
}

func TestCreateIndexValidation(t *testing.T) {
	s := NewSession(cat(t))
	if _, err := s.CreateIndex("missing", "a"); err == nil {
		t.Error("unknown table accepted")
	}
	if _, err := s.CreateIndex("t"); err == nil {
		t.Error("empty column list accepted")
	}
	if _, err := s.CreateIndex("t", "zz"); err == nil {
		t.Error("unknown column accepted")
	}
	if _, err := s.CreateIndex("t", "a", "a"); err == nil {
		t.Error("duplicate column accepted")
	}
}

func TestDropIndex(t *testing.T) {
	s := NewSession(cat(t))
	ix, err := s.CreateIndex("t", "a")
	if err != nil {
		t.Fatal(err)
	}
	if !s.DropIndex(ix.Name) {
		t.Error("drop returned false")
	}
	if s.DropIndex(ix.Name) {
		t.Error("double drop returned true")
	}
	if len(s.Indexes()) != 0 {
		t.Error("index survived drop")
	}
	// Re-creating after drop yields a fresh descriptor.
	if _, err := s.CreateIndex("t", "a"); err != nil {
		t.Fatal(err)
	}
}

func TestIndexesCreationOrder(t *testing.T) {
	s := NewSession(cat(t))
	// Eleven distinct keys on one table, so a name sort would interleave
	// "hypo_t_10" and "hypo_t_11" before "hypo_t_2".
	combos := [][]string{
		{"a"}, {"b"}, {"id"},
		{"a", "b"}, {"b", "a"}, {"a", "id"}, {"id", "a"},
		{"b", "id"}, {"id", "b"}, {"a", "b", "id"}, {"b", "a", "id"},
	}
	var want []string
	for _, cols := range combos {
		ix, err := s.CreateIndex("t", cols...)
		if err != nil {
			t.Fatal(err)
		}
		want = append(want, ix.Name)
	}
	got := s.Indexes()
	if len(got) != len(want) {
		t.Fatalf("session has %d indexes, want %d", len(got), len(want))
	}
	for i, ix := range got {
		if ix.Name != want[i] {
			t.Fatalf("Indexes()[%d] = %s, want %s (creation order)", i, ix.Name, want[i])
		}
	}
	// Dropping and re-creating places the index at the end, not back in
	// its old slot.
	first := got[0]
	s.DropIndex(first.Name)
	re, err := s.CreateIndex("t", "a")
	if err != nil {
		t.Fatal(err)
	}
	ixs := s.Indexes()
	if last := ixs[len(ixs)-1]; last != re {
		t.Errorf("re-created index is %s at the end, want %s", last.Name, re.Name)
	}
}

func TestSessionDoesNotTouchBaseCatalog(t *testing.T) {
	c := cat(t)
	s := NewSession(c)
	if _, err := s.CreateIndex("t", "a"); err != nil {
		t.Fatal(err)
	}
	if len(c.AllIndexes()) != 0 {
		t.Error("hypothetical index leaked into the base catalog")
	}
}

func TestConfigHelpers(t *testing.T) {
	s := NewSession(cat(t))
	ix, _ := s.CreateIndex("t", "a")
	cfg := Config(ix)
	if len(cfg.Indexes) != 1 {
		t.Error("Config helper wrong")
	}
	all := s.AllConfig()
	if len(all.Indexes) != 1 {
		t.Error("AllConfig wrong")
	}
}

package heap

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestInsertGetRoundTrip(t *testing.T) {
	f := NewFile("t", 3)
	tids := make([]TID, 0, 1000)
	for i := 0; i < 1000; i++ {
		tid, err := f.Insert([]int64{int64(i), int64(i * 2), -int64(i)})
		if err != nil {
			t.Fatal(err)
		}
		tids = append(tids, tid)
	}
	if f.Count() != 1000 {
		t.Fatalf("Count = %d", f.Count())
	}
	for i, tid := range tids {
		row, err := f.Get(tid, nil)
		if err != nil {
			t.Fatal(err)
		}
		if row[0] != int64(i) || row[1] != int64(i*2) || row[2] != -int64(i) {
			t.Fatalf("row %d = %v", i, row)
		}
	}
}

func TestInsertWidthMismatch(t *testing.T) {
	f := NewFile("t", 2)
	if _, err := f.Insert([]int64{1}); err == nil {
		t.Error("narrow tuple accepted")
	}
	if _, err := f.Insert([]int64{1, 2, 3}); err == nil {
		t.Error("wide tuple accepted")
	}
}

func TestGetBadTID(t *testing.T) {
	f := NewFile("t", 1)
	if _, err := f.Insert([]int64{1}); err != nil {
		t.Fatal(err)
	}
	for _, tid := range []TID{{Page: 5}, {Page: -1}, {Page: 0, Slot: 9}, {Page: 0, Slot: -1}} {
		if _, err := f.Get(tid, nil); err == nil {
			t.Errorf("Get(%v) accepted", tid)
		}
	}
}

func TestScanVisitsAllInOrder(t *testing.T) {
	f := NewFile("t", 1)
	const n = 5000
	for i := 0; i < n; i++ {
		if _, err := f.Insert([]int64{int64(i)}); err != nil {
			t.Fatal(err)
		}
	}
	if f.Pages() < 2 {
		t.Fatalf("expected multiple pages, got %d", f.Pages())
	}
	var seen int64
	var prev TID
	first := true
	f.Scan(func(tid TID, row []int64) bool {
		if row[0] != seen {
			t.Fatalf("row %d out of order: %v", seen, row)
		}
		if !first && !prev.Less(tid) {
			t.Fatalf("TIDs out of heap order: %v then %v", prev, tid)
		}
		prev, first = tid, false
		seen++
		return true
	})
	if seen != n {
		t.Fatalf("scanned %d rows, want %d", seen, n)
	}
}

func TestScanEarlyStop(t *testing.T) {
	f := NewFile("t", 1)
	for i := 0; i < 100; i++ {
		if _, err := f.Insert([]int64{int64(i)}); err != nil {
			t.Fatal(err)
		}
	}
	count := 0
	f.Scan(func(TID, []int64) bool {
		count++
		return count < 10
	})
	if count != 10 {
		t.Fatalf("early stop scanned %d", count)
	}
}

// Property: for random widths and row counts, every inserted tuple is
// retrievable by its TID with exactly the inserted values.
func TestInsertGetProperty(t *testing.T) {
	f := func(widthSeed uint8, n uint16, seed int64) bool {
		width := int(widthSeed%8) + 1
		rows := int(n % 500)
		rng := rand.New(rand.NewSource(seed))
		hf := NewFile("p", width)
		want := make([][]int64, 0, rows)
		tids := make([]TID, 0, rows)
		for i := 0; i < rows; i++ {
			tuple := make([]int64, width)
			for j := range tuple {
				tuple[j] = rng.Int63()
			}
			tid, err := hf.Insert(tuple)
			if err != nil {
				return false
			}
			want = append(want, tuple)
			tids = append(tids, tid)
		}
		for i, tid := range tids {
			got, err := hf.Get(tid, nil)
			if err != nil {
				return false
			}
			for j := range got {
				if got[j] != want[i][j] {
					return false
				}
			}
		}
		return hf.Count() == rows
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

func TestBytesTracksPages(t *testing.T) {
	f := NewFile("t", 4)
	if f.Bytes() != 0 {
		t.Error("empty file has bytes")
	}
	for i := 0; i < 1000; i++ {
		if _, err := f.Insert([]int64{1, 2, 3, 4}); err != nil {
			t.Fatal(err)
		}
	}
	if f.Bytes() != int64(f.Pages())*PageSize {
		t.Error("Bytes != Pages*PageSize")
	}
}

// Package heap implements slotted-page heap files for materialised tables:
// fixed-size pages, a slot directory, and binary-encoded integer tuples.
// The scaled-down physical database the execution experiments run on is
// stored here; page counts from these files feed the executor's I/O
// accounting so that measured work tracks the optimizer's cost model.
package heap

import (
	"encoding/binary"
	"fmt"
)

// PageSize matches the storage package's size model.
const PageSize = 8192

const pageHeaderSize = 8 // slot count (4) + free-space offset (4)

// TID identifies a tuple: page number and slot within the page.
type TID struct {
	Page int32
	Slot int32
}

// Less orders TIDs in heap order.
func (t TID) Less(o TID) bool {
	if t.Page != o.Page {
		return t.Page < o.Page
	}
	return t.Slot < o.Slot
}

// File is a heap file of fixed-width integer tuples.
type File struct {
	Name  string
	Width int // columns per tuple
	pages [][]byte
	count int
}

// NewFile creates an empty heap file for tuples of width columns.
func NewFile(name string, width int) *File {
	if width < 1 {
		width = 1
	}
	return &File{Name: name, Width: width}
}

// tupleBytes is the encoded size of one tuple.
func (f *File) tupleBytes() int { return f.Width * 8 }

// slotBytes is the per-tuple slot directory entry size.
const slotBytes = 4

// capacityPerPage returns how many tuples fit one page.
func (f *File) capacityPerPage() int {
	return (PageSize - pageHeaderSize) / (f.tupleBytes() + slotBytes)
}

// Insert appends a tuple and returns its TID. The tuple length must equal
// the file's width.
func (f *File) Insert(tuple []int64) (TID, error) {
	if len(tuple) != f.Width {
		return TID{}, fmt.Errorf("heap: %s: tuple width %d, want %d", f.Name, len(tuple), f.Width)
	}
	cap := f.capacityPerPage()
	if cap < 1 {
		return TID{}, fmt.Errorf("heap: %s: tuple too wide for a page", f.Name)
	}
	var page []byte
	pageNo := len(f.pages) - 1
	if pageNo >= 0 {
		page = f.pages[pageNo]
		if int(binary.LittleEndian.Uint32(page[0:4])) >= cap {
			page = nil
		}
	}
	if page == nil {
		page = make([]byte, PageSize)
		f.pages = append(f.pages, page)
		pageNo = len(f.pages) - 1
		binary.LittleEndian.PutUint32(page[4:8], PageSize) // free-space end
	}
	nSlots := int(binary.LittleEndian.Uint32(page[0:4]))
	freeEnd := int(binary.LittleEndian.Uint32(page[4:8]))

	// Tuples grow downward from the page end; slots upward from the header.
	tupleOff := freeEnd - f.tupleBytes()
	for i, v := range tuple {
		binary.LittleEndian.PutUint64(page[tupleOff+i*8:], uint64(v))
	}
	slotOff := pageHeaderSize + nSlots*slotBytes
	binary.LittleEndian.PutUint32(page[slotOff:], uint32(tupleOff))
	binary.LittleEndian.PutUint32(page[0:4], uint32(nSlots+1))
	binary.LittleEndian.PutUint32(page[4:8], uint32(tupleOff))
	f.count++
	return TID{Page: int32(pageNo), Slot: int32(nSlots)}, nil
}

// Get reads the tuple at tid into out (which must have the file's width)
// and returns out.
func (f *File) Get(tid TID, out []int64) ([]int64, error) {
	if int(tid.Page) < 0 || int(tid.Page) >= len(f.pages) {
		return nil, fmt.Errorf("heap: %s: page %d out of range", f.Name, tid.Page)
	}
	page := f.pages[tid.Page]
	nSlots := int(binary.LittleEndian.Uint32(page[0:4]))
	if int(tid.Slot) < 0 || int(tid.Slot) >= nSlots {
		return nil, fmt.Errorf("heap: %s: slot %d out of range on page %d", f.Name, tid.Slot, tid.Page)
	}
	slotOff := pageHeaderSize + int(tid.Slot)*slotBytes
	tupleOff := int(binary.LittleEndian.Uint32(page[slotOff:]))
	if cap(out) < f.Width {
		out = make([]int64, f.Width)
	}
	out = out[:f.Width]
	for i := range out {
		out[i] = int64(binary.LittleEndian.Uint64(page[tupleOff+i*8:]))
	}
	return out, nil
}

// Count returns the number of stored tuples.
func (f *File) Count() int { return f.count }

// Pages returns the number of allocated pages.
func (f *File) Pages() int { return len(f.pages) }

// Bytes returns the file's total size in bytes.
func (f *File) Bytes() int64 { return int64(len(f.pages)) * PageSize }

// Scan iterates all tuples in heap order, calling fn with the TID and the
// decoded tuple. The tuple slice is reused between calls; fn must copy it
// to retain it. Iteration stops early if fn returns false.
func (f *File) Scan(fn func(TID, []int64) bool) {
	buf := make([]int64, f.Width)
	for pn, page := range f.pages {
		nSlots := int(binary.LittleEndian.Uint32(page[0:4]))
		for s := 0; s < nSlots; s++ {
			slotOff := pageHeaderSize + s*slotBytes
			tupleOff := int(binary.LittleEndian.Uint32(page[slotOff:]))
			for i := 0; i < f.Width; i++ {
				buf[i] = int64(binary.LittleEndian.Uint64(page[tupleOff+i*8:]))
			}
			if !fn(TID{Page: int32(pn), Slot: int32(s)}, buf) {
				return
			}
		}
	}
}

// Package btree implements an in-memory B+-tree over composite integer
// keys, the index structure behind the executor's index scans and the
// "actually built index" side of the what-if accuracy experiment: a built
// tree reports its real leaf and internal node counts, which the what-if
// estimate (leaf pages only, paper §V-A) deliberately under-approximates.
package btree

import (
	"fmt"
	"sort"

	"github.com/pinumdb/pinum/internal/heap"
)

// Entry is one index entry: a composite key plus the heap TID it points at.
type Entry struct {
	Key []int64
	TID heap.TID
}

// CompareKeys orders composite keys lexicographically; shorter keys sort
// before longer keys with an equal prefix (so a prefix probe can use a
// truncated key as a lower bound).
func CompareKeys(a, b []int64) int {
	n := len(a)
	if len(b) < n {
		n = len(b)
	}
	for i := 0; i < n; i++ {
		switch {
		case a[i] < b[i]:
			return -1
		case a[i] > b[i]:
			return 1
		}
	}
	switch {
	case len(a) < len(b):
		return -1
	case len(a) > len(b):
		return 1
	}
	return 0
}

// compareEntries orders entries by key, then TID, making every entry
// distinct (as PostgreSQL's B-trees effectively do).
func compareEntries(a, b Entry) int {
	if c := CompareKeys(a.Key, b.Key); c != 0 {
		return c
	}
	switch {
	case a.TID.Less(b.TID):
		return -1
	case b.TID.Less(a.TID):
		return 1
	}
	return 0
}

type node struct {
	leaf     bool
	entries  []Entry   // leaf only
	keys     [][]int64 // internal: separator keys, len = len(children)-1
	children []*node
	next     *node // leaf sibling for range scans
}

// Tree is a B+-tree with a configurable fanout.
type Tree struct {
	Name   string
	Fanout int
	root   *node
	height int
	leaves int
	inner  int
	count  int
}

// DefaultFanout approximates entries-per-8KB-page for small integer keys.
const DefaultFanout = 256

// New returns an empty tree.
func New(name string, fanout int) *Tree {
	if fanout < 4 {
		fanout = 4
	}
	return &Tree{Name: name, Fanout: fanout, root: &node{leaf: true}, height: 0, leaves: 1}
}

// Bulk builds a tree from entries (copied and sorted), the way a real index
// build sorts then packs pages bottom-up.
func Bulk(name string, fanout int, entries []Entry) *Tree {
	t := New(name, fanout)
	if len(entries) == 0 {
		return t
	}
	sorted := append([]Entry(nil), entries...)
	sort.Slice(sorted, func(i, j int) bool { return compareEntries(sorted[i], sorted[j]) < 0 })

	// Pack leaves at ~90 % fill, like a B-tree build's fill factor.
	per := t.Fanout * 9 / 10
	if per < 2 {
		per = 2
	}
	var leaves []*node
	for off := 0; off < len(sorted); off += per {
		end := off + per
		if end > len(sorted) {
			end = len(sorted)
		}
		leaves = append(leaves, &node{leaf: true, entries: sorted[off:end:end]})
	}
	for i := 0; i+1 < len(leaves); i++ {
		leaves[i].next = leaves[i+1]
	}
	t.leaves = len(leaves)
	t.count = len(sorted)

	// Build internal levels bottom-up.
	level := leaves
	for len(level) > 1 {
		var parents []*node
		for off := 0; off < len(level); off += t.Fanout {
			end := off + t.Fanout
			if end > len(level) {
				end = len(level)
			}
			p := &node{children: level[off:end:end]}
			for i := off + 1; i < end; i++ {
				p.keys = append(p.keys, firstKey(level[i]))
			}
			parents = append(parents, p)
			t.inner++
		}
		level = parents
		t.height++
	}
	t.root = level[0]
	return t
}

func firstKey(n *node) []int64 {
	for !n.leaf {
		n = n.children[0]
	}
	return n.entries[0].Key
}

// Insert adds an entry, splitting nodes as needed.
func (t *Tree) Insert(e Entry) {
	if promoted, right := t.insert(t.root, e); promoted != nil {
		newRoot := &node{
			keys:     [][]int64{promoted},
			children: []*node{t.root, right},
		}
		t.root = newRoot
		t.inner++
		t.height++
	}
	t.count++
}

// insert returns a (separator, right sibling) pair when the child split.
func (t *Tree) insert(n *node, e Entry) ([]int64, *node) {
	if n.leaf {
		i := sort.Search(len(n.entries), func(i int) bool {
			return compareEntries(n.entries[i], e) >= 0
		})
		n.entries = append(n.entries, Entry{})
		copy(n.entries[i+1:], n.entries[i:])
		n.entries[i] = e
		if len(n.entries) <= t.Fanout {
			return nil, nil
		}
		mid := len(n.entries) / 2
		right := &node{leaf: true, entries: append([]Entry(nil), n.entries[mid:]...)}
		n.entries = n.entries[:mid:mid]
		right.next = n.next
		n.next = right
		t.leaves++
		return right.entries[0].Key, right
	}
	i := sort.Search(len(n.keys), func(i int) bool {
		return CompareKeys(n.keys[i], e.Key) >= 0
	})
	promoted, right := t.insert(n.children[i], e)
	if promoted == nil {
		return nil, nil
	}
	n.keys = append(n.keys, nil)
	copy(n.keys[i+1:], n.keys[i:])
	n.keys[i] = promoted
	n.children = append(n.children, nil)
	copy(n.children[i+2:], n.children[i+1:])
	n.children[i+1] = right
	if len(n.children) <= t.Fanout {
		return nil, nil
	}
	mid := len(n.keys) / 2
	sep := n.keys[mid]
	rightNode := &node{
		keys:     append([][]int64(nil), n.keys[mid+1:]...),
		children: append([]*node(nil), n.children[mid+1:]...),
	}
	n.keys = n.keys[:mid:mid]
	n.children = n.children[: mid+1 : mid+1]
	t.inner++
	return sep, rightNode
}

// findLeaf descends to the first leaf that may contain key, going left on
// separator equality so scans over duplicate keys start at the first
// occurrence.
func (t *Tree) findLeaf(key []int64) *node {
	n := t.root
	for !n.leaf {
		i := sort.Search(len(n.keys), func(i int) bool {
			return CompareKeys(n.keys[i], key) >= 0
		})
		n = n.children[i]
	}
	return n
}

// Scan visits all entries with lo ≤ key ≤ hi (prefix comparison: a shorter
// bound matches any extension) in key order. fn returning false stops the
// scan. Nil bounds mean unbounded.
func (t *Tree) Scan(lo, hi []int64, fn func(Entry) bool) {
	var n *node
	if lo == nil {
		n = t.leftmost()
	} else {
		n = t.findLeaf(lo)
	}
	for n != nil {
		for _, e := range n.entries {
			if lo != nil && CompareKeys(e.Key, lo) < 0 {
				continue
			}
			if hi != nil && prefixCompare(e.Key, hi) > 0 {
				return
			}
			if !fn(e) {
				return
			}
		}
		n = n.next
	}
}

// prefixCompare compares key against an upper bound, treating the bound as
// a prefix: only the first len(bound) components participate.
func prefixCompare(key, bound []int64) int {
	n := len(bound)
	if len(key) < n {
		n = len(key)
	}
	for i := 0; i < n; i++ {
		switch {
		case key[i] < bound[i]:
			return -1
		case key[i] > bound[i]:
			return 1
		}
	}
	return 0
}

// Probe visits all entries whose key starts with the given prefix.
func (t *Tree) Probe(prefix []int64, fn func(Entry) bool) {
	t.Scan(prefix, prefix, fn)
}

func (t *Tree) leftmost() *node {
	n := t.root
	for !n.leaf {
		n = n.children[0]
	}
	return n
}

// Count returns the number of entries.
func (t *Tree) Count() int { return t.count }

// LeafNodes returns the number of leaf nodes (≈ leaf pages).
func (t *Tree) LeafNodes() int { return t.leaves }

// InternalNodes returns the number of internal nodes (what the §V-A
// what-if estimate ignores).
func (t *Tree) InternalNodes() int { return t.inner }

// Height returns the number of edges from root to leaf.
func (t *Tree) Height() int { return t.height }

// Validate checks the B+-tree invariants: sorted leaves, correct sibling
// chaining, separator consistency, and entry count. It is used by the
// property-based tests.
func (t *Tree) Validate() error {
	// Walk the leaf chain: keys must be globally non-decreasing and the
	// total must match.
	n := t.leftmost()
	var prev []int64
	seen := 0
	for n != nil {
		for i := range n.entries {
			e := &n.entries[i]
			// Keys must be globally non-decreasing; among duplicates the
			// TID order is not maintained across separator-routed
			// inserts, as in most B-tree implementations.
			if prev != nil && CompareKeys(prev, e.Key) > 0 {
				return fmt.Errorf("btree %s: leaf entries out of order", t.Name)
			}
			prev = e.Key
			seen++
		}
		n = n.next
	}
	if seen != t.count {
		return fmt.Errorf("btree %s: leaf chain has %d entries, count says %d", t.Name, seen, t.count)
	}
	return t.validateNode(t.root, nil, nil)
}

func (t *Tree) validateNode(n *node, lo, hi []int64) error {
	if n.leaf {
		for i := range n.entries {
			k := n.entries[i].Key
			if lo != nil && CompareKeys(k, lo) < 0 {
				return fmt.Errorf("btree %s: leaf key below separator", t.Name)
			}
			if hi != nil && CompareKeys(k, hi) >= 0 {
				// Separators are first-keys of right subtrees; equal keys
				// may legitimately span nodes when TIDs differ, so only
				// flag strictly greater violations.
				if CompareKeys(k, hi) > 0 {
					return fmt.Errorf("btree %s: leaf key above separator", t.Name)
				}
			}
		}
		return nil
	}
	if len(n.children) != len(n.keys)+1 {
		return fmt.Errorf("btree %s: internal node with %d children, %d keys", t.Name, len(n.children), len(n.keys))
	}
	for i, child := range n.children {
		var clo, chi []int64
		if i > 0 {
			clo = n.keys[i-1]
		} else {
			clo = lo
		}
		if i < len(n.keys) {
			chi = n.keys[i]
		} else {
			chi = hi
		}
		if err := t.validateNode(child, clo, chi); err != nil {
			return err
		}
	}
	return nil
}

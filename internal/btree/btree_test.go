package btree

import (
	"math/rand"
	"sort"
	"testing"
	"testing/quick"

	"github.com/pinumdb/pinum/internal/heap"
)

func entry(k int64, page int32) Entry {
	return Entry{Key: []int64{k}, TID: heap.TID{Page: page}}
}

func TestCompareKeys(t *testing.T) {
	cases := []struct {
		a, b []int64
		want int
	}{
		{[]int64{1}, []int64{2}, -1},
		{[]int64{2}, []int64{1}, 1},
		{[]int64{1, 2}, []int64{1, 2}, 0},
		{[]int64{1}, []int64{1, 0}, -1}, // prefix sorts first
		{[]int64{1, 1}, []int64{1}, 1},
	}
	for _, c := range cases {
		if got := CompareKeys(c.a, c.b); got != c.want {
			t.Errorf("CompareKeys(%v,%v) = %d, want %d", c.a, c.b, got, c.want)
		}
	}
}

func TestBulkAndScan(t *testing.T) {
	var entries []Entry
	for i := 0; i < 10000; i++ {
		entries = append(entries, entry(int64(i%997), int32(i)))
	}
	tr := Bulk("t", 64, entries)
	if err := tr.Validate(); err != nil {
		t.Fatal(err)
	}
	if tr.Count() != len(entries) {
		t.Fatalf("Count = %d", tr.Count())
	}
	if tr.Height() < 2 {
		t.Errorf("height = %d, expected a multi-level tree", tr.Height())
	}
	if tr.InternalNodes() == 0 {
		t.Error("no internal nodes recorded")
	}
	// A full scan returns everything in key order.
	var prev []int64
	n := 0
	tr.Scan(nil, nil, func(e Entry) bool {
		if prev != nil && CompareKeys(prev, e.Key) > 0 {
			t.Fatal("scan out of order")
		}
		prev = e.Key
		n++
		return true
	})
	if n != len(entries) {
		t.Fatalf("scanned %d of %d", n, len(entries))
	}
}

func TestRangeScanBounds(t *testing.T) {
	var entries []Entry
	for i := 0; i < 1000; i++ {
		entries = append(entries, entry(int64(i), int32(i)))
	}
	tr := Bulk("t", 32, entries)
	var got []int64
	tr.Scan([]int64{100}, []int64{199}, func(e Entry) bool {
		got = append(got, e.Key[0])
		return true
	})
	if len(got) != 100 || got[0] != 100 || got[len(got)-1] != 199 {
		t.Fatalf("range scan returned %d keys [%d..%d]", len(got), got[0], got[len(got)-1])
	}
}

func TestProbeDuplicates(t *testing.T) {
	var entries []Entry
	for i := 0; i < 300; i++ {
		entries = append(entries, entry(int64(i%3), int32(i)))
	}
	tr := Bulk("t", 16, entries)
	count := 0
	tr.Probe([]int64{1}, func(e Entry) bool {
		if e.Key[0] != 1 {
			t.Fatalf("probe returned key %v", e.Key)
		}
		count++
		return true
	})
	if count != 100 {
		t.Fatalf("probe found %d duplicates, want 100", count)
	}
}

func TestInsertMaintainsInvariants(t *testing.T) {
	tr := New("t", 8)
	rng := rand.New(rand.NewSource(5))
	keys := make([]int64, 2000)
	for i := range keys {
		keys[i] = rng.Int63n(500)
		tr.Insert(entry(keys[i], int32(i)))
	}
	if err := tr.Validate(); err != nil {
		t.Fatal(err)
	}
	if tr.Count() != len(keys) {
		t.Fatalf("Count = %d", tr.Count())
	}
	sort.Slice(keys, func(i, j int) bool { return keys[i] < keys[j] })
	i := 0
	tr.Scan(nil, nil, func(e Entry) bool {
		if e.Key[0] != keys[i] {
			t.Fatalf("position %d: got %d want %d", i, e.Key[0], keys[i])
		}
		i++
		return true
	})
}

// Property: a tree built by random inserts returns exactly the multiset of
// inserted keys, in order, and satisfies the structural invariants.
func TestInsertProperty(t *testing.T) {
	f := func(seed int64, nRaw uint16, fanoutRaw uint8) bool {
		n := int(nRaw%800) + 1
		fanout := int(fanoutRaw%60) + 4
		rng := rand.New(rand.NewSource(seed))
		tr := New("p", fanout)
		keys := make([]int64, n)
		for i := range keys {
			keys[i] = rng.Int63n(200)
			tr.Insert(Entry{Key: []int64{keys[i], rng.Int63n(10)}, TID: heap.TID{Page: int32(i)}})
		}
		if err := tr.Validate(); err != nil {
			return false
		}
		count := 0
		var prev []int64
		ok := true
		tr.Scan(nil, nil, func(e Entry) bool {
			if prev != nil && CompareKeys(prev, e.Key) > 0 {
				ok = false
				return false
			}
			prev = e.Key
			count++
			return true
		})
		return ok && count == n
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

// Property: bulk loading and incremental insertion of the same entries
// yield identical scan sequences.
func TestBulkEqualsInsert(t *testing.T) {
	f := func(seed int64, nRaw uint16) bool {
		n := int(nRaw%500) + 1
		rng := rand.New(rand.NewSource(seed))
		entries := make([]Entry, n)
		for i := range entries {
			entries[i] = Entry{Key: []int64{rng.Int63n(100), rng.Int63n(100)}, TID: heap.TID{Page: int32(i)}}
		}
		bulk := Bulk("b", 16, entries)
		inc := New("i", 16)
		for _, e := range entries {
			inc.Insert(e)
		}
		var a, b []Entry
		bulk.Scan(nil, nil, func(e Entry) bool { a = append(a, e); return true })
		inc.Scan(nil, nil, func(e Entry) bool { b = append(b, e); return true })
		if len(a) != len(b) {
			return false
		}
		// Equal-key entries may appear in either TID order (duplicates
		// are routed by key only), so compare as canonically sorted
		// multisets.
		canon := func(es []Entry) {
			sort.Slice(es, func(i, j int) bool { return compareEntries(es[i], es[j]) < 0 })
		}
		canon(a)
		canon(b)
		for i := range a {
			if CompareKeys(a[i].Key, b[i].Key) != 0 || a[i].TID != b[i].TID {
				return false
			}
		}
		return inc.Validate() == nil
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

func TestEmptyTree(t *testing.T) {
	tr := New("e", 8)
	if err := tr.Validate(); err != nil {
		t.Fatal(err)
	}
	n := 0
	tr.Scan(nil, nil, func(Entry) bool { n++; return true })
	if n != 0 {
		t.Error("empty tree scanned entries")
	}
	if tr.Height() != 0 || tr.LeafNodes() != 1 {
		t.Errorf("empty tree shape: height %d leaves %d", tr.Height(), tr.LeafNodes())
	}
}

func TestLeafInternalAccounting(t *testing.T) {
	var entries []Entry
	for i := 0; i < 100000; i++ {
		entries = append(entries, entry(int64(i), int32(i)))
	}
	tr := Bulk("t", DefaultFanout, entries)
	if err := tr.Validate(); err != nil {
		t.Fatal(err)
	}
	// Internal nodes must be a small fraction of leaves (≈1/fanout).
	frac := float64(tr.InternalNodes()) / float64(tr.LeafNodes())
	if frac <= 0 || frac > 0.02 {
		t.Errorf("internal/leaf fraction = %.4f", frac)
	}
}

package serve

import (
	"bytes"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
)

// rawPost sends exact bytes — no marshalling — so the ingress tests
// control every byte the decoder sees.
func rawPost(t *testing.T, url string, body []byte) (int, []byte) {
	t.Helper()
	resp, err := http.Post(url, "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var buf bytes.Buffer
	if _, err := buf.ReadFrom(resp.Body); err != nil {
		t.Fatal(err)
	}
	return resp.StatusCode, buf.Bytes()
}

// TestMaxBodyBytes pins the request-size limit: a body over the
// configured cap is a counted 413 naming the limit, on every decode
// endpoint, and a body under the cap still works.
func TestMaxBodyBytes(t *testing.T) {
	srv, err := New(Config{
		Loader:       func() (*Environment, error) { return starEnv(42, nil) },
		Workers:      2,
		MaxBodyBytes: 512,
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(srv.Close)
	if _, err := srv.ReloadNow(false); err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(srv.Handler())
	t.Cleanup(ts.Close)

	// Valid JSON that happens to be huge: the limit must trip on size
	// alone, not on syntax.
	big := []byte(`{"indexes":[{"table":"fact","columns":["a1","m1"]}],"pad":"` +
		strings.Repeat("x", 600) + `"}`)
	if len(big) <= 512 {
		t.Fatalf("test body is %d bytes, need > 512", len(big))
	}
	for _, path := range []string{"/whatif", "/recommend", "/explain"} {
		code, body := rawPost(t, ts.URL+path, big)
		if code != http.StatusRequestEntityTooLarge || !bytes.Contains(body, []byte("512")) {
			t.Fatalf("%s oversized body: %d %s, want 413 naming the limit", path, code, body)
		}
	}
	if got := srv.oversized.Value(); got != 3 {
		t.Fatalf("oversized counter = %d, want 3", got)
	}
	if code, body := rawPost(t, ts.URL+"/whatif", []byte(`{"indexes":[]}`)); code != http.StatusOK {
		t.Fatalf("small body after 413s: %d %s", code, body)
	}

	// The counter is visible in /statz.
	resp, err := http.Get(ts.URL + "/statz")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var statz struct {
		Oversized int64 `json:"oversized"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&statz); err != nil {
		t.Fatal(err)
	}
	if statz.Oversized != 3 {
		t.Fatalf("/statz oversized = %d, want 3", statz.Oversized)
	}
}

// TestRequestBodyTrailingData pins strict body framing: exactly one JSON
// value per request. Trailing whitespace is fine; anything else — a
// second value, garbage, half a value — is a 400.
func TestRequestBodyTrailingData(t *testing.T) {
	f := newFixture(t)
	cases := []struct {
		name string
		body string
		code int
		frag string
	}{
		{"clean", `{"indexes":[]}`, http.StatusOK, ""},
		{"trailing newline", `{"indexes":[]}` + "\n", http.StatusOK, ""},
		{"trailing spaces", `{"indexes":[]}   ` + "\t\n ", http.StatusOK, ""},
		{"second object", `{"indexes":[]}{"indexes":[]}`, http.StatusBadRequest, "trailing data"},
		{"trailing garbage", `{"indexes":[]} garbage`, http.StatusBadRequest, "trailing data"},
		{"trailing scalar", `{"indexes":[]} 7`, http.StatusBadRequest, "trailing data"},
		{"trailing bracket", `{"indexes":[]}]`, http.StatusBadRequest, "trailing data"},
		{"empty body", ``, http.StatusBadRequest, "bad request body"},
		{"half a value", `{"indexes":`, http.StatusBadRequest, "bad request body"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			code, body := rawPost(t, f.ts.URL+"/whatif", []byte(tc.body))
			if code != tc.code {
				t.Fatalf("got %d %s, want %d", code, body, tc.code)
			}
			if tc.frag != "" && !bytes.Contains(body, []byte(tc.frag)) {
				t.Fatalf("error %s does not name %q", body, tc.frag)
			}
		})
	}
}

// TestWeightOverrideValidation pins loud rejection of malformed
// per-request weights: duplicates (which would otherwise silently
// last-win), unknown names, and non-positive or infinite weights are
// each a 400 naming the offending query.
func TestWeightOverrideValidation(t *testing.T) {
	f := newFixture(t)
	q0 := f.queries[0].Name
	cases := []struct {
		name    string
		weights string
		frag    string
	}{
		{"duplicate", fmt.Sprintf(`[{"name":%q,"weight":2},{"name":%q,"weight":3}]`, q0, q0), "duplicate query"},
		{"unknown", `[{"name":"no-such-query","weight":2}]`, "unknown query"},
		{"zero", fmt.Sprintf(`[{"name":%q,"weight":0}]`, q0), "positive finite weight"},
		{"negative", fmt.Sprintf(`[{"name":%q,"weight":-1}]`, q0), "positive finite weight"},
		{"nan", fmt.Sprintf(`[{"name":%q,"weight":"x"}]`, q0), "bad request body"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			body := []byte(fmt.Sprintf(`{"indexes":[],"weights":%s}`, tc.weights))
			code, resp := rawPost(t, f.ts.URL+"/whatif", body)
			if code != http.StatusBadRequest || !bytes.Contains(resp, []byte(tc.frag)) {
				t.Fatalf("got %d %s, want 400 naming %q", code, resp, tc.frag)
			}
			if tc.name == "duplicate" && !bytes.Contains(resp, []byte(q0)) {
				t.Fatalf("duplicate error %s does not name the query %q", resp, q0)
			}
		})
	}
}

// TestWeightOverrides pins the override arithmetic the costarith
// directive in whatIfOn cites: an overridden weight reprices exactly
// that query's contribution in both totals, per-query costs are
// untouched, and an override-free request remains byte-identical to the
// pre-override server.
func TestWeightOverrides(t *testing.T) {
	f := newFixture(t)
	probe := []byte(`{"indexes":[{"table":"fact","columns":["a1","m1"]}]}`)

	_, baseRaw := rawPost(t, f.ts.URL+"/whatif", probe)
	var base WhatIfResponse
	if err := json.Unmarshal(baseRaw, &base); err != nil {
		t.Fatal(err)
	}

	q0 := f.queries[0].Name
	const w0 = 2.5
	body := []byte(fmt.Sprintf(`{"indexes":[{"table":"fact","columns":["a1","m1"]}],"weights":[{"name":%q,"weight":%v}]}`, q0, w0))
	code, raw := rawPost(t, f.ts.URL+"/whatif", body)
	if code != http.StatusOK {
		t.Fatalf("override request: %d %s", code, raw)
	}
	var got WhatIfResponse
	if err := json.Unmarshal(raw, &got); err != nil {
		t.Fatal(err)
	}

	// Recompute both totals with the same arithmetic, in the same order,
	// as the server: default weight 1 everywhere except the override.
	var wantTotal, wantBase float64
	for i, q := range base.Queries {
		w := 1.0
		if q.Name == q0 {
			w = w0
		}
		wantBase += w * q.Base
		wantTotal += w * got.Queries[i].Cost
	}
	if got.Total != wantTotal || got.BaseTotal != wantBase {
		t.Fatalf("override totals (total=%v base=%v), want (total=%v base=%v)",
			got.Total, got.BaseTotal, wantTotal, wantBase)
	}
	if got.Total == base.Total {
		t.Fatal("override changed nothing; query 0's cost contribution must move the total")
	}
	// Per-query costs are configuration-determined, not weight-determined.
	for i := range base.Queries {
		if base.Queries[i] != got.Queries[i] {
			t.Fatalf("per-query cost %d changed under a weight override: %+v vs %+v",
				i, base.Queries[i], got.Queries[i])
		}
	}

	// An explicit empty override list stays byte-identical to no list.
	_, emptyRaw := rawPost(t, f.ts.URL+"/whatif", []byte(`{"indexes":[{"table":"fact","columns":["a1","m1"]}],"weights":[]}`))
	if !bytes.Equal(emptyRaw, baseRaw) {
		t.Fatalf("empty weights list diverged from omitted list:\n%s\nvs\n%s", emptyRaw, baseRaw)
	}

	// /recommend accepts the same overrides and validates them the same
	// way.
	code, raw = rawPost(t, f.ts.URL+"/recommend",
		[]byte(fmt.Sprintf(`{"budget_gb":5,"weights":[{"name":%q,"weight":2},{"name":%q,"weight":2}]}`, q0, q0)))
	if code != http.StatusBadRequest || !bytes.Contains(raw, []byte("duplicate query")) {
		t.Fatalf("/recommend duplicate weights: %d %s, want 400", code, raw)
	}
}

package serve

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"strings"
	"testing"
	"time"

	"github.com/pinumdb/pinum/internal/obs"
)

// scrape fetches /metrics and returns the exposition body.
func scrape(t *testing.T, baseURL string) string {
	t.Helper()
	resp, err := http.Get(baseURL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("/metrics: status %d", resp.StatusCode)
	}
	if ct := resp.Header.Get("Content-Type"); !strings.HasPrefix(ct, "text/plain; version=0.0.4") {
		t.Fatalf("/metrics content type %q, want Prometheus text 0.0.4", ct)
	}
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return string(body)
}

// TestMetricsExposition pins the scrape contract: after a known request
// mix, /metrics reports exactly those counts in Prometheus text form —
// per-endpoint counters, cumulative histogram buckets, per-tenant
// series, and the process gauges.
func TestMetricsExposition(t *testing.T) {
	f := newFixture(t)
	f.post(t, "/whatif", WhatIfRequest{}, nil)
	f.post(t, "/whatif", WhatIfRequest{}, nil)
	if _, err := http.Get(f.ts.URL + "/healthz"); err != nil {
		t.Fatal(err)
	}

	body := scrape(t, f.ts.URL)
	for _, want := range []string{
		`pinum_http_requests_total{endpoint="/whatif"} 2`,
		`pinum_http_requests_total{endpoint="/healthz"} 1`,
		`pinum_http_request_errors_total{endpoint="/whatif"} 0`,
		`pinum_http_request_duration_seconds_bucket{endpoint="/whatif",le="+Inf"} 2`,
		`pinum_http_request_duration_seconds_count{endpoint="/whatif"} 2`,
		`pinum_tenant_requests_total{tenant="default"} 2`,
		`pinum_tenant_reloads_total{result="completed",tenant="default"} 0`,
		`# TYPE pinum_http_request_duration_seconds histogram`,
		`# TYPE pinum_uptime_seconds gauge`,
		`pinum_goroutines`,
		`pinum_heap_alloc_bytes`,
		`pinum_snapshot_queries{tenant="default"}`,
		`pinum_planner_enum_states{tenant="default"}`,
	} {
		if !strings.Contains(body, want) {
			t.Errorf("/metrics missing %q", want)
		}
	}

	// The scrape itself is instrumented: a second scrape sees the first.
	body = scrape(t, f.ts.URL)
	if !strings.Contains(body, `pinum_http_requests_total{endpoint="/metrics"} 2`) {
		t.Error("/metrics scrapes are not counted in their own series")
	}
}

// TestTraceOptIn pins the tracing contract: a request with "trace": true
// gets a span breakdown covering the full pipeline, and the span set
// accounts for the fan-out (one span per workload query).
func TestTraceOptIn(t *testing.T) {
	f := newFixture(t)
	var got WhatIfResponse
	f.post(t, "/whatif", WhatIfRequest{Trace: true}, &got)
	if got.Trace == nil {
		t.Fatal("traced request returned no trace block")
	}
	if got.Trace.ID == "" {
		t.Error("trace block has no ID")
	}
	names := make(map[string]int)
	for _, sp := range got.Trace.Spans {
		if sp.DurNs < 0 || sp.StartNs < 0 {
			t.Errorf("span %s has negative timing: %+v", sp.Name, sp)
		}
		names[sp.Name]++
	}
	for _, want := range []string{"decode", "route", "load", "fanout", "encode"} {
		if names[want] != 1 {
			t.Errorf("span %q appears %d times, want 1", want, names[want])
		}
	}
	queries := 0
	for name := range names {
		if strings.HasPrefix(name, "query:") {
			queries++
		}
	}
	if queries != len(f.queries) {
		t.Errorf("%d query spans, want one per workload query (%d)", queries, len(f.queries))
	}
	// Spans arrive sorted by start offset.
	for i := 1; i < len(got.Trace.Spans); i++ {
		if got.Trace.Spans[i].StartNs < got.Trace.Spans[i-1].StartNs {
			t.Fatalf("spans not sorted by start: %+v", got.Trace.Spans)
		}
	}
}

// TestTraceHeader pins the out-of-band opt-in: an X-Pinum-Trace header
// traces the request under the caller's ID without any body change.
func TestTraceHeader(t *testing.T) {
	f := newFixture(t)
	data, _ := json.Marshal(WhatIfRequest{})
	req, err := http.NewRequest(http.MethodPost, f.ts.URL+"/whatif", bytes.NewReader(data))
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set(TraceHeader, "caller-supplied-7")
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var got WhatIfResponse
	if err := json.NewDecoder(resp.Body).Decode(&got); err != nil {
		t.Fatal(err)
	}
	if got.Trace == nil || got.Trace.ID != "caller-supplied-7" {
		t.Fatalf("header-traced response trace = %+v, want caller's ID", got.Trace)
	}
}

// TestUntracedBytesUnchanged pins byte-identity: tracing is invisible to
// requests that did not ask for it — no "trace" key, and a traced
// request in between does not perturb later untraced answers.
func TestUntracedBytesUnchanged(t *testing.T) {
	rf := newReloadFixture(t, nil)
	rf.load(t)
	code, baseline := rf.do(t, http.MethodPost, "/whatif", whatIfProbe)
	if code != http.StatusOK {
		t.Fatalf("baseline: %d %s", code, baseline)
	}
	if bytes.Contains(baseline, []byte(`"trace"`)) {
		t.Fatal("untraced response carries a trace key")
	}
	traced := whatIfProbe
	traced.Trace = true
	if code, body := rf.do(t, http.MethodPost, "/whatif", traced); code != http.StatusOK {
		t.Fatalf("traced probe: %d %s", code, body)
	} else if !bytes.Contains(body, []byte(`"trace"`)) {
		t.Fatal("traced response missing trace block")
	}
	if _, body := rf.do(t, http.MethodPost, "/whatif", whatIfProbe); !bytes.Equal(body, baseline) {
		t.Fatalf("untraced response diverged after a traced request:\n%s\nvs baseline\n%s", body, baseline)
	}
}

// TestEventzRecordsReloads pins the flight recorder: a forced reload
// lands in /eventz with the swap's fingerprint in the detail, and the
// ring reports its totals.
func TestEventzRecordsReloads(t *testing.T) {
	rf := newReloadFixture(t, nil)
	rf.load(t)
	out, err := rf.srv.ReloadNow(true)
	if err != nil {
		t.Fatal(err)
	}
	code, body := rf.do(t, http.MethodGet, "/eventz", nil)
	if code != http.StatusOK {
		t.Fatalf("/eventz: %d %s", code, body)
	}
	var ez struct {
		Total    int64       `json:"total"`
		Capacity int         `json:"capacity"`
		Events   []obs.Event `json:"events"`
	}
	if err := json.Unmarshal(body, &ez); err != nil {
		t.Fatal(err)
	}
	if ez.Capacity != obs.DefaultEventLogSize {
		t.Errorf("capacity %d, want default %d", ez.Capacity, obs.DefaultEventLogSize)
	}
	if ez.Total < 2 || int64(len(ez.Events)) != ez.Total {
		t.Fatalf("total=%d events=%d, want >= 2 (initial load + forced reload)", ez.Total, len(ez.Events))
	}
	reloads := 0
	for _, e := range ez.Events {
		if e.Type == "reload" {
			reloads++
			if e.Tenant != DefaultTenant || !strings.Contains(e.Detail, out.Fingerprint) {
				t.Errorf("reload event %+v, want tenant %q and fingerprint %s in detail",
					e, DefaultTenant, out.Fingerprint)
			}
		}
		if e.Seq == 0 || e.Time.IsZero() {
			t.Errorf("event missing seq/time: %+v", e)
		}
	}
	if reloads != 2 {
		t.Errorf("%d reload events, want 2", reloads)
	}
	body2 := scrape(t, rf.ts.URL)
	if !strings.Contains(body2, `pinum_events_total{type="reload"} 2`) {
		t.Error("pinum_events_total missing the reload count")
	}
}

// TestUnmatchedPathCounted pins the 404 catch-all: probes for unknown
// paths are a counted JSON 404 — one counter, no per-path series.
func TestUnmatchedPathCounted(t *testing.T) {
	f := newFixture(t)
	for _, path := range []string{"/nope", "/admin/login"} {
		resp, err := http.Get(f.ts.URL + path)
		if err != nil {
			t.Fatal(err)
		}
		var payload map[string]string
		json.NewDecoder(resp.Body).Decode(&payload)
		resp.Body.Close()
		if resp.StatusCode != http.StatusNotFound {
			t.Fatalf("GET %s: status %d, want 404", path, resp.StatusCode)
		}
		if !strings.Contains(payload["error"], path) {
			t.Errorf("GET %s: error %q does not name the path", path, payload["error"])
		}
	}

	body := scrape(t, f.ts.URL)
	if !strings.Contains(body, "pinum_http_unmatched_total 2") {
		t.Error("/metrics missing pinum_http_unmatched_total 2")
	}
	if strings.Contains(body, "/nope") || strings.Contains(body, "/admin/login") {
		t.Error("unmatched paths leaked into metric series (cardinality hazard)")
	}

	resp, err := http.Get(f.ts.URL + "/statz")
	if err != nil {
		t.Fatal(err)
	}
	var statz struct {
		Unmatched int64 `json:"unmatched"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&statz); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if statz.Unmatched != 2 {
		t.Errorf("statz unmatched = %d, want 2", statz.Unmatched)
	}
}

// TestSlowRequestEvent pins the slow-request threshold: a request over
// the configured budget files an event naming the endpoint.
func TestSlowRequestEvent(t *testing.T) {
	rf := newReloadFixture(t, func(cfg *Config) { cfg.SlowRequest = time.Nanosecond })
	rf.load(t)
	if code, body := rf.do(t, http.MethodPost, "/whatif", whatIfProbe); code != http.StatusOK {
		t.Fatalf("/whatif: %d %s", code, body)
	}
	_, body := rf.do(t, http.MethodGet, "/eventz", nil)
	var ez struct {
		Events []obs.Event `json:"events"`
	}
	if err := json.Unmarshal(body, &ez); err != nil {
		t.Fatal(err)
	}
	found := false
	for _, e := range ez.Events {
		if e.Type == "slow-request" && strings.Contains(e.Detail, "/whatif") {
			found = true
		}
	}
	if !found {
		t.Fatalf("no slow-request event for /whatif in %s", body)
	}
}

// TestStatzDerivedFromRegistry checks /statz stays consistent with the
// registry after migration: the endpoint map and the Prometheus series
// report the same request counts.
func TestStatzDerivedFromRegistry(t *testing.T) {
	f := newFixture(t)
	f.post(t, "/whatif", WhatIfRequest{}, nil)
	f.post(t, "/whatif", WhatIfRequest{}, nil)
	f.post(t, "/whatif", WhatIfRequest{}, nil)

	resp, err := http.Get(f.ts.URL + "/statz")
	if err != nil {
		t.Fatal(err)
	}
	var statz struct {
		Endpoints map[string]EndpointStats `json:"endpoints"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&statz); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	ep := statz.Endpoints["/whatif"]
	if ep.Requests != 3 {
		t.Fatalf("statz /whatif requests = %d, want 3", ep.Requests)
	}
	if ep.AvgMs <= 0 || ep.MaxMs < ep.AvgMs {
		t.Errorf("statz latency stats inconsistent: avg=%v max=%v", ep.AvgMs, ep.MaxMs)
	}
	body := scrape(t, f.ts.URL)
	if !strings.Contains(body, `pinum_http_requests_total{endpoint="/whatif"} 3`) {
		t.Error("registry and /statz disagree on /whatif request count")
	}
}

// TestRequestRecordAllocFree is the pin the //pinum:allocfree directive
// on Server.record cites: with tracing off and no structured logger, the
// per-request bookkeeping tail performs zero allocations.
func TestRequestRecordAllocFree(t *testing.T) {
	f := newFixture(t)
	if f.srv.logger != nil {
		t.Fatal("fixture unexpectedly configured a logger")
	}
	m := f.srv.epFor("/whatif")
	allocs := testing.AllocsPerRun(1000, func() {
		f.srv.record("/whatif", m, 750*time.Microsecond, http.StatusOK, nil)
	})
	if allocs != 0 {
		t.Fatalf("record allocates %v per call on the tracing-off path, want 0", allocs)
	}
}

// BenchmarkRequestRecord measures the observability tax on the serving
// hot path with tracing and logging off; the 0 allocs/op report is the
// second pin behind record's //pinum:allocfree directive.
func BenchmarkRequestRecord(b *testing.B) {
	srv, err := New(Config{Loader: func() (*Environment, error) {
		return nil, fmt.Errorf("never loaded")
	}})
	if err != nil {
		b.Fatal(err)
	}
	defer srv.Close()
	m := srv.epFor("/bench")
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		srv.record("/bench", m, 750*time.Microsecond, http.StatusOK, nil)
	}
}

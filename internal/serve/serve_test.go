package serve

import (
	"bytes"
	"encoding/json"
	"fmt"
	"math"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"testing"

	"github.com/pinumdb/pinum/internal/advisor"
	"github.com/pinumdb/pinum/internal/core"
	"github.com/pinumdb/pinum/internal/optimizer"
	"github.com/pinumdb/pinum/internal/query"
	"github.com/pinumdb/pinum/internal/storage"
	"github.com/pinumdb/pinum/internal/whatif"
	"github.com/pinumdb/pinum/internal/workload"
)

// fixture is a started test server plus everything needed to recompute
// its answers independently.
type fixture struct {
	star     *workload.Star
	queries  []*query.Query
	analyses []*optimizer.Analysis
	srv      *Server
	ts       *httptest.Server
}

// newFixture boots a server over snapshot-roundtripped slim caches — the
// production startup path (build → save → load) — on the star workload.
func newFixture(t *testing.T) *fixture {
	t.Helper()
	star, err := workload.StarSchema(1.0)
	if err != nil {
		t.Fatal(err)
	}
	queries, err := star.Queries(42)
	if err != nil {
		t.Fatal(err)
	}
	analyses := make([]*optimizer.Analysis, len(queries))
	for i, q := range queries {
		if analyses[i], err = optimizer.NewAnalysis(q, star.Stats, optimizer.DefaultCostParams()); err != nil {
			t.Fatal(err)
		}
	}
	snapPath := filepath.Join(t.TempDir(), "star.pcache")
	caches, reason, err := LoadOrBuild(star.Catalog, star.Stats, queries, analyses, snapPath, 0)
	if err != nil {
		t.Fatal(err)
	}
	if reason == "" {
		t.Fatal("first LoadOrBuild should build")
	}
	// Reload through the snapshot so the served caches took the
	// persistence path.
	caches, reason, err = LoadOrBuild(star.Catalog, star.Stats, queries, analyses, snapPath, 0)
	if err != nil {
		t.Fatal(err)
	}
	if reason != "" {
		t.Fatalf("second LoadOrBuild should load the snapshot, rebuilt instead: %s", reason)
	}
	srv, err := New(Config{
		Catalog:  star.Catalog,
		Stats:    star.Stats,
		Queries:  queries,
		Analyses: analyses,
		Caches:   caches,
		Workers:  4,
	})
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(srv.Handler())
	t.Cleanup(ts.Close)
	return &fixture{star: star, queries: queries, analyses: analyses, srv: srv, ts: ts}
}

func (f *fixture) post(t *testing.T, path string, body any, out any) *http.Response {
	t.Helper()
	data, err := json.Marshal(body)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(f.ts.URL+path, "application/json", bytes.NewReader(data))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if out != nil && resp.StatusCode == http.StatusOK {
		if err := json.NewDecoder(resp.Body).Decode(out); err != nil {
			t.Fatal(err)
		}
	}
	return resp
}

// TestWhatIfMatchesInProcess compares served what-if costs, bit for bit,
// against direct evaluation on independently built tree-backed caches.
func TestWhatIfMatchesInProcess(t *testing.T) {
	f := newFixture(t)
	trees, err := core.BuildAll(f.analyses, f.star.Catalog, 0, false)
	if err != nil {
		t.Fatal(err)
	}
	ws := whatif.NewSession(f.star.Catalog)
	reqs := []WhatIfRequest{
		{},
		{Indexes: []IndexSpec{{Table: "fact", Columns: []string{"a1", "m1"}}}},
		{Indexes: []IndexSpec{
			{Table: "fact", Columns: []string{"fk_dim1_1", "m1"}},
			{Table: "dim1_1", Columns: []string{"a1"}},
			{Table: "dim1_2", Columns: []string{"id", "a1"}},
		}},
	}
	for ri, req := range reqs {
		var got WhatIfResponse
		if resp := f.post(t, "/whatif", req, &got); resp.StatusCode != http.StatusOK {
			t.Fatalf("request %d: status %d", ri, resp.StatusCode)
		}
		cfg := &query.Config{}
		for _, spec := range req.Indexes {
			ix, err := ws.CreateIndex(spec.Table, spec.Columns...)
			if err != nil {
				t.Fatal(err)
			}
			cfg.Indexes = append(cfg.Indexes, ix)
		}
		wantTotal := 0.0
		for i, c := range trees {
			want, _, err := c.Cost(cfg)
			if err != nil {
				t.Fatal(err)
			}
			wantTotal += want
			if math.Float64bits(got.Queries[i].Cost) != math.Float64bits(want) {
				t.Errorf("request %d, %s: served %v, in-process %v",
					ri, f.queries[i].Name, got.Queries[i].Cost, want)
			}
		}
		if math.Float64bits(got.Total) != math.Float64bits(wantTotal) {
			t.Errorf("request %d: served total %v, in-process %v", ri, got.Total, wantTotal)
		}
	}
}

// TestRecommendMatchesAdvisorRun compares the served recommendation with
// a plain in-process Advisor.Run over freshly built tree-backed caches.
func TestRecommendMatchesAdvisorRun(t *testing.T) {
	f := newFixture(t)
	var got RecommendResponse
	if resp := f.post(t, "/recommend", RecommendRequest{BudgetGB: 5}, &got); resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d", resp.StatusCode)
	}

	ad := advisor.New(f.star.Catalog, f.star.Stats, storage.BytesForGB(5))
	if err := ad.AddQueries(f.queries, nil); err != nil {
		t.Fatal(err)
	}
	want, err := ad.Run()
	if err != nil {
		t.Fatal(err)
	}
	if len(got.Chosen) != len(want.Chosen) {
		t.Fatalf("served %d picks, in-process %d", len(got.Chosen), len(want.Chosen))
	}
	for i := range got.Chosen {
		if got.Chosen[i] != want.Chosen[i].Key() {
			t.Errorf("pick %d: served %s, in-process %s", i, got.Chosen[i], want.Chosen[i].Key())
		}
	}
	if math.Float64bits(got.BaseCost) != math.Float64bits(want.BaseCost) ||
		math.Float64bits(got.FinalCost) != math.Float64bits(want.FinalCost) {
		t.Errorf("served base/final %v/%v, in-process %v/%v",
			got.BaseCost, got.FinalCost, want.BaseCost, want.FinalCost)
	}
	if got.TotalBytes != want.TotalBytes || got.Rounds != want.Rounds {
		t.Errorf("served bytes/rounds %d/%d, in-process %d/%d",
			got.TotalBytes, got.Rounds, want.TotalBytes, want.Rounds)
	}
}

// TestExplainDecomposition checks the explain contract: total cost equals
// internal plus the coefficient-weighted leaf costs.
func TestExplainDecomposition(t *testing.T) {
	f := newFixture(t)
	var got ExplainResponse
	req := ExplainRequest{
		SQL:     "SELECT fact.m1 FROM fact, dim1_1 WHERE fact.fk_dim1_1 = dim1_1.id ORDER BY dim1_1.a1",
		Indexes: []IndexSpec{{Table: "dim1_1", Columns: []string{"a1", "id"}}},
	}
	if resp := f.post(t, "/explain", req, &got); resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d", resp.StatusCode)
	}
	if got.Plan == "" || len(got.Leaves) != 2 {
		t.Fatalf("unexpected explain payload: %+v", got)
	}
	sum := got.Internal
	for _, leaf := range got.Leaves {
		sum += leaf.Coef * leaf.AccessCost
	}
	if math.Abs(sum-got.Cost) > 1e-6*math.Abs(got.Cost) {
		t.Errorf("decomposition does not add up: internal+leaves=%v, cost=%v", sum, got.Cost)
	}
}

// TestConcurrentWhatIf hammers /whatif from many goroutines with distinct
// configurations and requires every answer to equal its precomputed
// expectation — under -race this also proves the shared-cache path clean.
func TestConcurrentWhatIf(t *testing.T) {
	f := newFixture(t)
	dims := []string{"dim1_1", "dim1_2", "dim1_3", "dim1_4", "dim1_5", "dim1_6", "dim1_7", "dim1_8"}
	type testCase struct {
		req  WhatIfRequest
		want WhatIfResponse
	}
	cases := make([]testCase, len(dims))
	for i, d := range dims {
		req := WhatIfRequest{Indexes: []IndexSpec{
			{Table: d, Columns: []string{"a1", "id"}},
			{Table: "fact", Columns: []string{fmt.Sprintf("fk_%s", d), "m1"}},
		}}
		want, err := f.srv.WhatIf(&req)
		if err != nil {
			t.Fatal(err)
		}
		cases[i] = testCase{req: req, want: *want}
	}
	var wg sync.WaitGroup
	errs := make(chan error, 64)
	for rep := 0; rep < 8; rep++ {
		for _, tc := range cases {
			wg.Add(1)
			go func(tc testCase) {
				defer wg.Done()
				data, _ := json.Marshal(tc.req)
				resp, err := http.Post(f.ts.URL+"/whatif", "application/json", bytes.NewReader(data))
				if err != nil {
					errs <- err
					return
				}
				defer resp.Body.Close()
				var got WhatIfResponse
				if err := json.NewDecoder(resp.Body).Decode(&got); err != nil {
					errs <- err
					return
				}
				if math.Float64bits(got.Total) != math.Float64bits(tc.want.Total) {
					errs <- fmt.Errorf("concurrent total %v, expected %v", got.Total, tc.want.Total)
				}
			}(tc)
		}
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}
}

// TestRequestValidation pins the error contract: wrong method, malformed
// body, unknown fields, unknown tables and bad budgets are client errors.
func TestRequestValidation(t *testing.T) {
	f := newFixture(t)

	resp, err := http.Get(f.ts.URL + "/whatif")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusMethodNotAllowed {
		t.Errorf("GET /whatif: status %d, want 405", resp.StatusCode)
	}

	bad := []struct {
		path string
		body string
	}{
		{"/whatif", `{"indexes":[{"table":"nope","columns":["a1"]}]}`},
		{"/whatif", `{"indexes":[{"table":"fact","columns":[]}]}`},
		{"/whatif", `{"bogus":1}`},
		{"/whatif", `not json`},
		{"/recommend", `{"budget_gb":-1}`},
		{"/explain", `{"sql":""}`},
		{"/explain", `{"sql":"SELECT nope FROM nowhere"}`},
	}
	for _, tc := range bad {
		resp, err := http.Post(f.ts.URL+tc.path, "application/json", bytes.NewReader([]byte(tc.body)))
		if err != nil {
			t.Fatal(err)
		}
		var payload map[string]string
		json.NewDecoder(resp.Body).Decode(&payload)
		resp.Body.Close()
		if resp.StatusCode != http.StatusBadRequest {
			t.Errorf("POST %s %q: status %d, want 400", tc.path, tc.body, resp.StatusCode)
		}
		if payload["error"] == "" {
			t.Errorf("POST %s %q: no error message in response", tc.path, tc.body)
		}
	}
}

// TestHealthAndStatz checks the liveness payload and that the counters
// actually count.
func TestHealthAndStatz(t *testing.T) {
	f := newFixture(t)
	resp, err := http.Get(f.ts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	var health struct {
		Status  string `json:"status"`
		Queries int    `json:"queries"`
		Entries int    `json:"entries"`
		Slim    bool   `json:"slim"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&health); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if health.Status != "ok" || health.Queries != len(f.queries) || health.Entries == 0 || !health.Slim {
		t.Fatalf("unexpected health payload: %+v", health)
	}

	f.post(t, "/whatif", WhatIfRequest{}, nil)
	f.post(t, "/whatif", WhatIfRequest{}, nil)
	resp, err = http.Get(f.ts.URL + "/statz")
	if err != nil {
		t.Fatal(err)
	}
	var statz struct {
		Uptime    float64                  `json:"uptime_seconds"`
		Endpoints map[string]EndpointStats `json:"endpoints"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&statz); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if statz.Endpoints["/whatif"].Requests < 2 {
		t.Errorf("statz reports %d /whatif requests, want >= 2", statz.Endpoints["/whatif"].Requests)
	}
	if statz.Endpoints["/healthz"].Requests < 1 {
		t.Errorf("statz reports no /healthz requests")
	}
}

// TestLoadOrBuildRebuildsStaleSnapshot pins the startup staleness story:
// after statistics drift, the saved snapshot is never served — it is
// rebuilt and overwritten, with the rejection surfaced in the reason.
func TestLoadOrBuildRebuildsStaleSnapshot(t *testing.T) {
	star, err := workload.StarSchema(1.0)
	if err != nil {
		t.Fatal(err)
	}
	queries, err := star.Queries(42)
	if err != nil {
		t.Fatal(err)
	}
	analyses := make([]*optimizer.Analysis, len(queries))
	for i, q := range queries {
		if analyses[i], err = optimizer.NewAnalysis(q, star.Stats, optimizer.DefaultCostParams()); err != nil {
			t.Fatal(err)
		}
	}
	snapPath := filepath.Join(t.TempDir(), "star.pcache")
	if _, _, err := LoadOrBuild(star.Catalog, star.Stats, queries, analyses, snapPath, 0); err != nil {
		t.Fatal(err)
	}
	if _, err := os.Stat(snapPath); err != nil {
		t.Fatalf("snapshot not written: %v", err)
	}

	// Drift the statistics: the stale snapshot must be rejected and
	// rebuilt, not loaded and not a startup failure.
	star.Catalog.Table("fact").RowCount *= 2
	for i, q := range queries {
		if analyses[i], err = optimizer.NewAnalysis(q, star.Stats, optimizer.DefaultCostParams()); err != nil {
			t.Fatal(err)
		}
	}
	_, reason, err := LoadOrBuild(star.Catalog, star.Stats, queries, analyses, snapPath, 0)
	if err != nil {
		t.Fatalf("LoadOrBuild failed on a stale snapshot instead of rebuilding: %v", err)
	}
	if !strings.Contains(reason, "rejected") {
		t.Fatalf("stale snapshot load reported %q, want a rejection reason", reason)
	}

	// The rebuilt snapshot carries the new fingerprint: a third start
	// loads it cleanly.
	if _, reason, err = LoadOrBuild(star.Catalog, star.Stats, queries, analyses, snapPath, 0); err != nil {
		t.Fatal(err)
	} else if reason != "" {
		t.Fatalf("rebuilt snapshot did not load: %s", reason)
	}
}

package serve

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"path/filepath"
	"sync"
	"testing"
	"time"

	"github.com/pinumdb/pinum/internal/faultpoint"
	"github.com/pinumdb/pinum/internal/optimizer"
	"github.com/pinumdb/pinum/internal/plancache"
	"github.com/pinumdb/pinum/internal/workload"
)

// starEnv derives one tenant's environment: the star schema with the
// given row-count overrides, and the workload generated from seed —
// distinct seeds give tenants genuinely different workloads over the
// same schema.
func starEnv(seed int64, overrides map[string]int64) (*Environment, error) {
	star, err := workload.StarSchema(1.0)
	if err != nil {
		return nil, err
	}
	for name, rows := range overrides {
		if err := star.SetTableRows(name, rows); err != nil {
			return nil, err
		}
	}
	queries, err := star.Queries(seed)
	if err != nil {
		return nil, err
	}
	analyses := make([]*optimizer.Analysis, len(queries))
	for i, q := range queries {
		if analyses[i], err = optimizer.NewAnalysis(q, star.Stats, optimizer.DefaultCostParams()); err != nil {
			return nil, err
		}
	}
	return &Environment{
		Catalog:  star.Catalog,
		Stats:    star.Stats,
		Queries:  queries,
		Analyses: analyses,
	}, nil
}

// mtFixture is a multi-tenant server over N star workloads (one seed
// each), with per-tenant drift injection and a shared snapshot store.
type mtFixture struct {
	mu        sync.Mutex
	seeds     map[string]int64
	overrides map[string]map[string]int64

	srv *Server
	ts  *httptest.Server
}

func newMTFixture(t *testing.T, seeds map[string]int64, order []string, resident int, mutate func(*Config)) *mtFixture {
	t.Helper()
	f := &mtFixture{seeds: seeds, overrides: make(map[string]map[string]int64)}
	store, err := plancache.NewStore(filepath.Join(t.TempDir(), "snapshots"))
	if err != nil {
		t.Fatal(err)
	}
	cfg := Config{
		Workers:     4,
		MaxResident: resident,
		RetryMin:    5 * time.Millisecond,
		RetryMax:    20 * time.Millisecond,
	}
	for _, name := range order {
		name := name
		path, err := store.Path(name)
		if err != nil {
			t.Fatal(err)
		}
		cfg.Tenants = append(cfg.Tenants, TenantConfig{
			Name:         name,
			Loader:       func() (*Environment, error) { return f.loadEnv(name) },
			SnapshotPath: path,
		})
	}
	if mutate != nil {
		mutate(&cfg)
	}
	srv, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(srv.Close)
	f.srv = srv
	f.ts = httptest.NewServer(srv.Handler())
	t.Cleanup(f.ts.Close)
	return f
}

func (f *mtFixture) loadEnv(tenant string) (*Environment, error) {
	f.mu.Lock()
	seed := f.seeds[tenant]
	overrides := make(map[string]int64, len(f.overrides[tenant]))
	for k, v := range f.overrides[tenant] {
		overrides[k] = v
	}
	f.mu.Unlock()
	return starEnv(seed, overrides)
}

func (f *mtFixture) setRows(tenant, table string, rows int64) {
	f.mu.Lock()
	if f.overrides[tenant] == nil {
		f.overrides[tenant] = make(map[string]int64)
	}
	f.overrides[tenant][table] = rows
	f.mu.Unlock()
}

// do issues one request, routing by the X-Pinum-Tenant header when
// tenant is non-empty, and returns raw status and body for byte
// comparisons.
func (f *mtFixture) do(t *testing.T, method, path, tenant string, body []byte) (int, []byte) {
	t.Helper()
	var rd io.Reader
	if body != nil {
		rd = bytes.NewReader(body)
	}
	req, err := http.NewRequest(method, f.ts.URL+path, rd)
	if err != nil {
		t.Fatal(err)
	}
	if tenant != "" {
		req.Header.Set(TenantHeader, tenant)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	b, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return resp.StatusCode, b
}

// tenantStatz fetches one tenant's /statz section.
func (f *mtFixture) tenantStatz(t *testing.T, tenant string) TenantStats {
	t.Helper()
	code, body := f.do(t, http.MethodGet, "/statz?tenant="+tenant, "", nil)
	if code != http.StatusOK {
		t.Fatalf("/statz?tenant=%s: %d %s", tenant, code, body)
	}
	var out struct {
		Tenant string      `json:"tenant"`
		Stats  TenantStats `json:"stats"`
	}
	if err := json.Unmarshal(body, &out); err != nil {
		t.Fatal(err)
	}
	return out.Stats
}

// dedicatedServer boots a single-tenant loader-mode server for one seed —
// the ground truth a multi-tenant fixture's responses are byte-compared
// against.
func dedicatedServer(t *testing.T, seed int64) *httptest.Server {
	t.Helper()
	srv, err := New(Config{
		Loader:  func() (*Environment, error) { return starEnv(seed, nil) },
		Workers: 4,
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(srv.Close)
	if _, err := srv.ReloadNow(false); err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(srv.Handler())
	t.Cleanup(ts.Close)
	return ts
}

func postBytes(t *testing.T, url string, body []byte) (int, []byte) {
	t.Helper()
	resp, err := http.Post(url, "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	b, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return resp.StatusCode, b
}

var mtSeeds = map[string]int64{"acme": 42, "globex": 43, "initech": 44}
var mtOrder = []string{"acme", "globex", "initech"}

// TestTenantRouting pins the routing contract: body field and header
// each route; agreeing duplicates pass; conflicts are 400; unknown
// tenants are 404; unrouted requests hit the first configured tenant.
func TestTenantRouting(t *testing.T) {
	f := newMTFixture(t, mtSeeds, mtOrder, 0, nil)

	body := []byte(`{"tenant":"globex","indexes":[]}`)
	if code, resp := f.do(t, http.MethodPost, "/whatif", "", body); code != http.StatusOK {
		t.Fatalf("body-routed /whatif: %d %s", code, resp)
	}
	if code, resp := f.do(t, http.MethodPost, "/whatif", "acme", []byte(`{"indexes":[]}`)); code != http.StatusOK {
		t.Fatalf("header-routed /whatif: %d %s", code, resp)
	}
	if code, resp := f.do(t, http.MethodPost, "/whatif", "globex", body); code != http.StatusOK {
		t.Fatalf("agreeing header+body /whatif: %d %s", code, resp)
	}
	code, resp := f.do(t, http.MethodPost, "/whatif", "acme", body)
	if code != http.StatusBadRequest || !bytes.Contains(resp, []byte("disagrees")) {
		t.Fatalf("conflicting header+body: %d %s, want 400 naming the conflict", code, resp)
	}
	code, resp = f.do(t, http.MethodPost, "/whatif", "hooli", []byte(`{"indexes":[]}`))
	if code != http.StatusNotFound {
		t.Fatalf("unknown tenant: %d %s, want 404", code, resp)
	}

	// Unrouted requests hit the first configured tenant (acme): its
	// answer must match an explicitly routed one byte for byte.
	_, unrouted := f.do(t, http.MethodPost, "/whatif", "", []byte(`{"indexes":[]}`))
	_, routed := f.do(t, http.MethodPost, "/whatif", "acme", []byte(`{"indexes":[]}`))
	if !bytes.Equal(unrouted, routed) {
		t.Fatalf("unrouted response differs from the default tenant's:\n%s\nvs\n%s", unrouted, routed)
	}
}

// TestTenantLRUEviction pins the residency machinery: with cap 2, a
// third tenant's load evicts the least-recently-used one; the evicted
// tenant cold-loads from its saved snapshot on the next request; LRU
// order follows request recency, not configuration order.
func TestTenantLRUEviction(t *testing.T) {
	f := newMTFixture(t, mtSeeds, mtOrder, 2, nil)
	probe := []byte(`{"indexes":[{"table":"fact","columns":["a1","m1"]}]}`)

	for _, name := range []string{"acme", "globex"} {
		if code, body := f.do(t, http.MethodPost, "/whatif", name, probe); code != http.StatusOK {
			t.Fatalf("%s warm-up: %d %s", name, code, body)
		}
	}
	if got := f.srv.residentCount(); got != 2 {
		t.Fatalf("resident after two loads = %d, want 2", got)
	}

	// Loading initech exceeds the cap; acme (least recently used) goes.
	if code, body := f.do(t, http.MethodPost, "/whatif", "initech", probe); code != http.StatusOK {
		t.Fatalf("initech load: %d %s", code, body)
	}
	if got := f.srv.residentCount(); got != 2 {
		t.Fatalf("resident after eviction = %d, want 2", got)
	}
	if st := f.tenantStatz(t, "acme"); st.Resident || st.Evictions != 1 {
		t.Fatalf("acme after initech load: resident=%v evictions=%d, want evicted once", st.Resident, st.Evictions)
	}

	// Re-requesting acme cold-loads it from its saved snapshot — no
	// optimizer rebuild — and evicts globex (LRU: globex < initech).
	if code, body := f.do(t, http.MethodPost, "/whatif", "acme", probe); code != http.StatusOK {
		t.Fatalf("acme reload: %d %s", code, body)
	}
	st := f.tenantStatz(t, "acme")
	if !st.Resident || st.ColdLoads != 2 || st.SnapshotSource != sourceDisk {
		t.Fatalf("acme after re-request: resident=%v coldLoads=%d source=%q, want a disk-snapshot cold load",
			st.Resident, st.ColdLoads, st.SnapshotSource)
	}
	if st := f.tenantStatz(t, "globex"); st.Resident || st.Evictions != 1 {
		t.Fatalf("globex after acme re-request: resident=%v evictions=%d, want evicted", st.Resident, st.Evictions)
	}
	if st := f.tenantStatz(t, "initech"); !st.Resident {
		t.Fatal("initech (recently used) was evicted, want resident")
	}
}

// TestMultiTenantByteIdentity is the acceptance drill: one process with
// tenant cap 2 serves 3 tenants' /whatif, /recommend and /explain
// byte-identically to three dedicated single-tenant servers, under
// concurrent mixed traffic whose third tenant forces evictions the whole
// time. Run under -race this also proves the evict/load/serve
// interleavings clean.
func TestMultiTenantByteIdentity(t *testing.T) {
	f := newMTFixture(t, mtSeeds, mtOrder, 2, nil)

	whatIfBody := []byte(`{"indexes":[{"table":"fact","columns":["a1","m1"]},{"table":"dim1_1","columns":["a1"]}]}`)
	recommendBody := []byte(`{"budget_gb":5}`)
	explainBody := []byte(`{"sql":"SELECT fact.m1 FROM fact, dim1_1 WHERE fact.fk_dim1_1 = dim1_1.id ORDER BY dim1_1.a1"}`)

	// Ground truth from three dedicated processes' worth of servers.
	wantWhatIf := make(map[string][]byte)
	wantRecommend := make(map[string][]byte)
	wantExplain := make(map[string][]byte)
	for name, seed := range mtSeeds {
		ts := dedicatedServer(t, seed)
		code, body := postBytes(t, ts.URL+"/whatif", whatIfBody)
		if code != http.StatusOK {
			t.Fatalf("dedicated %s /whatif: %d %s", name, code, body)
		}
		wantWhatIf[name] = body
		code, body = postBytes(t, ts.URL+"/recommend", recommendBody)
		if code != http.StatusOK {
			t.Fatalf("dedicated %s /recommend: %d %s", name, code, body)
		}
		wantRecommend[name] = body
		code, body = postBytes(t, ts.URL+"/explain", explainBody)
		if code != http.StatusOK {
			t.Fatalf("dedicated %s /explain: %d %s", name, code, body)
		}
		wantExplain[name] = body
	}

	// Distinct seeds must give distinct workloads, or identity across
	// tenants proves nothing.
	if bytes.Equal(wantWhatIf["acme"], wantWhatIf["globex"]) {
		t.Fatal("tenant workloads are not distinct; the byte-identity check is vacuous")
	}

	// Concurrent mixed traffic: every tenant hammered at once with cap 2
	// over 3 tenants, so evictions and cold loads interleave with serving
	// for the whole run.
	const perTenant = 3
	const iters = 12
	var wg sync.WaitGroup
	errCh := make(chan error, 3*perTenant)
	for name := range mtSeeds {
		for c := 0; c < perTenant; c++ {
			wg.Add(1)
			go func(name string, c int) {
				defer wg.Done()
				for i := 0; i < iters; i++ {
					code, body := f.do(t, http.MethodPost, "/whatif", name, whatIfBody)
					if code != http.StatusOK || !bytes.Equal(body, wantWhatIf[name]) {
						select {
						case errCh <- fmt.Errorf("tenant %s /whatif diverged (code %d):\n%s", name, code, body):
						default:
						}
						return
					}
					if c == 0 && i%4 == 3 {
						code, body := f.do(t, http.MethodPost, "/explain", name, explainBody)
						if code != http.StatusOK || !bytes.Equal(body, wantExplain[name]) {
							select {
							case errCh <- fmt.Errorf("tenant %s /explain diverged (code %d):\n%s", name, code, body):
							default:
							}
							return
						}
					}
				}
			}(name, c)
		}
	}
	wg.Wait()
	close(errCh)
	for err := range errCh {
		t.Fatal(err)
	}

	// /recommend once per tenant after the storm (it is the expensive
	// endpoint; one byte-identical run per tenant proves the contract).
	for name := range mtSeeds {
		code, body := f.do(t, http.MethodPost, "/recommend", name, recommendBody)
		if code != http.StatusOK || !bytes.Equal(body, wantRecommend[name]) {
			t.Fatalf("tenant %s /recommend diverged (code %d):\n%s", name, code, body)
		}
	}

	// The storm must actually have exercised the residency machinery.
	var evictions, coldLoads int64
	for name := range mtSeeds {
		st := f.tenantStatz(t, name)
		evictions += st.Evictions
		coldLoads += st.ColdLoads
	}
	if evictions == 0 || coldLoads <= 3 {
		t.Fatalf("evictions=%d coldLoads=%d: the run never exercised evict/reload interleavings", evictions, coldLoads)
	}
	if got := f.srv.residentCount(); got > 2 {
		t.Fatalf("resident tenants = %d, want <= cap 2", got)
	}
}

// TestTenantColdLoadFailureIsolated pins failure isolation: a
// faultpoint-forced cold-load failure 503s that tenant's request,
// schedules nothing in the background, and leaves every other tenant
// serving; the next request retries and succeeds once the fault clears.
func TestTenantColdLoadFailureIsolated(t *testing.T) {
	f := newMTFixture(t, mtSeeds, mtOrder, 0, nil)
	t.Cleanup(faultpoint.Reset)
	probe := []byte(`{"indexes":[]}`)

	for _, name := range []string{"acme", "globex"} {
		if code, body := f.do(t, http.MethodPost, "/whatif", name, probe); code != http.StatusOK {
			t.Fatalf("%s warm-up: %d %s", name, code, body)
		}
	}
	_, wantAcme := f.do(t, http.MethodPost, "/whatif", "acme", probe)

	if err := faultpoint.Set("serve.tenant.load", "error"); err != nil {
		t.Fatal(err)
	}
	code, body := f.do(t, http.MethodPost, "/whatif", "initech", probe)
	if code != http.StatusServiceUnavailable || !bytes.Contains(body, []byte("snapshot load failed")) {
		t.Fatalf("cold load under fault: %d %s, want 503", code, body)
	}
	if st := f.tenantStatz(t, "initech"); st.Resident || st.Reloads.Failed == 0 {
		t.Fatalf("initech after failed load: resident=%v failed=%d", st.Resident, st.Reloads.Failed)
	}

	// Resident tenants are untouched — same bytes, no degradation.
	code, body = f.do(t, http.MethodPost, "/whatif", "acme", probe)
	if code != http.StatusOK || !bytes.Equal(body, wantAcme) {
		t.Fatalf("acme while initech failing: %d, answer changed", code)
	}
	if st := f.tenantStatz(t, "acme"); st.Status != "ok" {
		t.Fatalf("acme status %q while initech failing, want ok", st.Status)
	}

	// No background retry resurrects the tenant; the next request is the
	// retry, and it heals once the fault clears.
	faultpoint.Clear("serve.tenant.load")
	if code, body := f.do(t, http.MethodPost, "/whatif", "initech", probe); code != http.StatusOK {
		t.Fatalf("initech after fault cleared: %d %s", code, body)
	}
}

// TestTenantAdmissionIndependent pins per-tenant admission: saturating
// one tenant's in-flight cap 429s that tenant only, and the rejection is
// counted against it alone.
func TestTenantAdmissionIndependent(t *testing.T) {
	f := newMTFixture(t, mtSeeds, mtOrder, 0, func(cfg *Config) {
		for i := range cfg.Tenants {
			if cfg.Tenants[i].Name == "acme" {
				cfg.Tenants[i].MaxInFlight = 1
			}
		}
	})
	probe := []byte(`{"indexes":[]}`)

	acme, err := f.srv.tenantByName("acme")
	if err != nil {
		t.Fatal(err)
	}
	acme.inflight <- struct{}{} // occupy acme's only slot
	code, body := f.do(t, http.MethodPost, "/whatif", "acme", probe)
	if code != http.StatusTooManyRequests || !bytes.Contains(body, []byte(`tenant \"acme\"`)) {
		t.Fatalf("saturated acme: %d %s, want tenant-scoped 429", code, body)
	}
	if code, body := f.do(t, http.MethodPost, "/whatif", "globex", probe); code != http.StatusOK {
		t.Fatalf("globex while acme saturated: %d %s, want 200", code, body)
	}
	<-acme.inflight
	if code, _ := f.do(t, http.MethodPost, "/whatif", "acme", probe); code != http.StatusOK {
		t.Fatalf("acme after release: %d, want 200", code)
	}
	if st := f.tenantStatz(t, "acme"); st.Rejected != 1 {
		t.Fatalf("acme rejected = %d, want 1", st.Rejected)
	}
	if st := f.tenantStatz(t, "globex"); st.Rejected != 0 {
		t.Fatalf("globex rejected = %d, want 0", st.Rejected)
	}
}

// TestTenantReloadDrift pins per-tenant reloads: drifting one tenant's
// statistics and reloading it via /reload?tenant= moves only that
// tenant's fingerprint; the other tenant's answers stay byte-identical.
func TestTenantReloadDrift(t *testing.T) {
	f := newMTFixture(t, mtSeeds, mtOrder, 0, nil)
	probe := []byte(`{"indexes":[{"table":"fact","columns":["a1","m1"]}]}`)

	for _, name := range []string{"acme", "globex"} {
		if code, body := f.do(t, http.MethodPost, "/whatif", name, probe); code != http.StatusOK {
			t.Fatalf("%s warm-up: %d %s", name, code, body)
		}
	}
	fpBefore := f.tenantStatz(t, "acme").Fingerprint
	_, wantGlobex := f.do(t, http.MethodPost, "/whatif", "globex", probe)

	f.setRows("acme", "dim2_7", 4_242_424)
	code, body := f.do(t, http.MethodPost, "/reload?tenant=acme&wait=1", "", nil)
	if code != http.StatusOK {
		t.Fatalf("/reload?tenant=acme: %d %s", code, body)
	}
	var out ReloadOutcome
	if err := json.Unmarshal(body, &out); err != nil {
		t.Fatal(err)
	}
	if out.Tenant != "acme" || out.Result != "swapped" {
		t.Fatalf("reload outcome %+v, want acme swapped", out)
	}
	if out.Fingerprint == fpBefore {
		t.Fatal("acme's fingerprint did not move with its statistics")
	}
	if got := f.tenantStatz(t, "globex").Fingerprint; got != f.tenantStatz(t, "globex").Fingerprint || got == out.Fingerprint {
		t.Fatalf("globex fingerprint %s moved with acme's reload", got)
	}
	code, body = f.do(t, http.MethodPost, "/whatif", "globex", probe)
	if code != http.StatusOK || !bytes.Equal(body, wantGlobex) {
		t.Fatalf("globex answers changed after acme's reload: %d", code)
	}

	// A reload routed by header works identically.
	code, body = f.do(t, http.MethodPost, "/reload?wait=1", "globex", nil)
	if code != http.StatusOK {
		t.Fatalf("header-routed reload: %d %s", code, body)
	}
	if err := json.Unmarshal(body, &out); err != nil {
		t.Fatal(err)
	}
	if out.Tenant != "globex" || out.Result != "skipped" {
		t.Fatalf("header-routed reload outcome %+v, want globex skipped (no drift)", out)
	}
}

// TestMultiTenantHealthAndStatz pins the multi-tenant observability
// shape: the registry overview on /healthz, per-tenant detail behind
// ?tenant=, and per-tenant /statz sections.
func TestMultiTenantHealthAndStatz(t *testing.T) {
	f := newMTFixture(t, mtSeeds, mtOrder, 2, nil)
	probe := []byte(`{"indexes":[]}`)
	if code, body := f.do(t, http.MethodPost, "/whatif", "acme", probe); code != http.StatusOK {
		t.Fatalf("acme warm-up: %d %s", code, body)
	}

	code, body := f.do(t, http.MethodGet, "/healthz", "", nil)
	if code != http.StatusOK {
		t.Fatalf("/healthz: %d", code)
	}
	var health struct {
		Status       string            `json:"status"`
		Tenants      int               `json:"tenants"`
		Resident     int               `json:"tenants_resident"`
		ResidentCap  int               `json:"resident_cap"`
		TenantStatus map[string]string `json:"tenant_status"`
	}
	if err := json.Unmarshal(body, &health); err != nil {
		t.Fatal(err)
	}
	if health.Status != "ok" || health.Tenants != 3 || health.Resident != 1 || health.ResidentCap != 2 {
		t.Fatalf("overview %+v, want ok/3 tenants/1 resident/cap 2", health)
	}
	if health.TenantStatus["acme"] != "ok" || health.TenantStatus["globex"] != "cold" {
		t.Fatalf("tenant_status %v, want acme ok and globex cold", health.TenantStatus)
	}

	code, body = f.do(t, http.MethodGet, "/healthz?tenant=acme", "", nil)
	if code != http.StatusOK {
		t.Fatalf("/healthz?tenant=acme: %d", code)
	}
	var detail map[string]any
	if err := json.Unmarshal(body, &detail); err != nil {
		t.Fatal(err)
	}
	if detail["tenant"] != "acme" || detail["status"] != "ok" || detail["fingerprint"] == nil {
		t.Fatalf("tenant detail %v, want acme detail with fingerprint", detail)
	}
	if code, _ := f.do(t, http.MethodGet, "/healthz?tenant=hooli", "", nil); code != http.StatusNotFound {
		t.Fatalf("/healthz?tenant=hooli: %d, want 404", code)
	}

	code, body = f.do(t, http.MethodGet, "/statz", "", nil)
	if code != http.StatusOK {
		t.Fatalf("/statz: %d", code)
	}
	var statz struct {
		Tenants  map[string]TenantStats `json:"tenants"`
		Rejected int64                  `json:"rejected"`
	}
	if err := json.Unmarshal(body, &statz); err != nil {
		t.Fatal(err)
	}
	if len(statz.Tenants) != 3 {
		t.Fatalf("/statz tenants = %d sections, want 3", len(statz.Tenants))
	}
	if st := statz.Tenants["acme"]; !st.Resident || st.Requests == 0 {
		t.Fatalf("acme section %+v, want resident with requests", st)
	}
	if st := statz.Tenants["initech"]; st.Resident || st.Status != "cold" {
		t.Fatalf("initech section %+v, want cold", st)
	}
}

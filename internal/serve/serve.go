// Package serve implements the concurrent what-if serving layer: an HTTP
// server that answers configuration questions with pure cost arithmetic —
// no optimizer calls on any request path that the caches cover — over
// hot-swappable plan-cache snapshots, one per tenant.
//
// Concurrency model: everything a request reads — plan caches, analyses,
// queries, catalog, base costs, the advisor candidate set and the what-if
// index interner — is bundled into one immutable snapshotSet behind an
// atomic pointer. A request loads the pointer once and works on that set
// for its whole lifetime; a concurrent reload builds a complete new set in
// the background and publishes it with a single pointer store, so
// in-flight requests keep their consistent world and new requests see the
// new one (never a mix). inum.Cache.Cost and the leaf-cost memo behind it
// are safe for concurrent use, so /whatif requests evaluate the shared
// caches directly, fanning per-query evaluations over a core.FanCtx
// worker pool bounded by the request's deadline. Everything a request
// does mutate is request-local: /recommend builds a fresh Advisor and
// incremental cost engine per request, /explain runs a fresh optimizer
// call. The one mutable structure inside a set is the what-if index
// interner — a mutex-guarded session that resolves each requested
// (table, columns) spec to a stable descriptor, capped so a client
// enumerating index permutations hits a 503 wall instead of the OOM
// killer.
//
// Multi-tenancy: one process fronts N workloads (Config.Tenants), each an
// independent tenant — its own snapshot set, reload/retry state machine
// and admission semaphore — routed by the request's `tenant` field or the
// X-Pinum-Tenant header (see tenant.go). A residency cap bounds how many
// tenants hold live sets at once; evicted tenants cold-load from their
// snapshot file on next request. A Config without Tenants serves one
// default tenant with the pre-tenant behavior, byte for byte.
//
// Robustness: handlers run behind panic recovery (a handler panic is a
// counted 500, not a dead process), per-tenant admission control (past a
// tenant's MaxInFlight concurrent compute requests new ones get 429
// instead of queueing unboundedly — and without touching other tenants),
// bounded request bodies (413 past -max-body-bytes), and per-request
// deadlines. Reloads that fail — loader error, rebuild panic, corrupt
// snapshot — leave the old set serving and retry with capped exponential
// backoff, surfaced as "degraded" in /healthz, /readyz and /statz.
package serve

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"log/slog"
	"math"
	"net/http"
	"runtime"
	"sort"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	"github.com/pinumdb/pinum/internal/advisor"
	"github.com/pinumdb/pinum/internal/catalog"
	"github.com/pinumdb/pinum/internal/core"
	"github.com/pinumdb/pinum/internal/inum"
	"github.com/pinumdb/pinum/internal/obs"
	"github.com/pinumdb/pinum/internal/optimizer"
	"github.com/pinumdb/pinum/internal/plancache"
	"github.com/pinumdb/pinum/internal/query"
	"github.com/pinumdb/pinum/internal/sql"
	"github.com/pinumdb/pinum/internal/stats"
	"github.com/pinumdb/pinum/internal/storage"
)

// Default lifecycle parameters, used when the corresponding Config field
// is zero.
const (
	// DefaultMaxInFlight bounds one tenant's concurrently evaluating
	// compute requests (/whatif, /recommend, /explain); excess requests
	// are refused with 429 instead of queueing unboundedly.
	DefaultMaxInFlight = 64
	// DefaultRequestTimeout bounds one compute request's evaluation.
	DefaultRequestTimeout = 30 * time.Second
	// DefaultRetryMin/Max bound the reload retry backoff: after a failed
	// reload a tenant retries at RetryMin, doubling per attempt up to
	// RetryMax, while its old snapshot set keeps serving.
	DefaultRetryMin = time.Second
	DefaultRetryMax = time.Minute
	// DefaultMaxBodyBytes bounds one request body; oversized bodies are
	// a counted 413, never an unbounded allocation.
	DefaultMaxBodyBytes = 8 << 20
	// DefaultSlowRequest is the slow-request threshold: a request slower
	// than this is recorded in the operational event log.
	DefaultSlowRequest = time.Second
)

// TraceHeader opts a request into tracing and supplies its trace ID;
// the request body's `"trace": true` field is the in-band equivalent
// (with a generated ID). Traced compute responses carry a "trace" block
// of span timings; untraced responses are byte-identical to the
// pre-tracing server.
const TraceHeader = "X-Pinum-Trace"

// Config assembles a server over one prepared workload — or several.
//
// Three modes exist. Static: Catalog/Stats/Queries/Analyses/Caches
// describe one prebuilt workload; New builds the initial snapshot set
// from them synchronously and Reload can only rebuild that same
// environment (force-reload still exercises the full optimizer path).
// Loader: Loader re-derives the environment — catalog, statistics,
// queries, analyses — on every (re)load, so statistics drift between
// calls is picked up by /reload or SIGHUP; the server starts unloaded
// and becomes ready when the first load succeeds. Tenants: each entry is
// its own loader-mode workload, routed by name; MaxResident bounds how
// many hold live sets at once.
type Config struct {
	Catalog *catalog.Catalog
	Stats   *stats.Store
	// Queries is the served workload; Caches and Analyses are aligned
	// with it.
	Queries  []*query.Query
	Analyses []*optimizer.Analysis
	Caches   []*inum.Cache
	// Weights are the workload frequency weights (nil = all 1).
	Weights []float64
	// Workers bounds the per-request evaluation pool, each /recommend
	// run's greedy parallelism, and rebuild parallelism (0 = GOMAXPROCS).
	Workers int

	// Loader re-derives the serving environment for hot reloads; nil
	// means static mode over the fields above. Ignored when Tenants is
	// set.
	Loader func() (*Environment, error)
	// SnapshotPath, when set, is consulted on every (re)load — a disk
	// snapshot matching the environment fingerprint is loaded instead of
	// re-optimizing — and rewritten (crash-safely) after every rebuild.
	// Ignored when Tenants is set (each tenant carries its own path).
	SnapshotPath string

	// Tenants, when non-empty, makes this a multi-tenant server: each
	// entry is an independently loaded, reloaded and evicted workload.
	// Requests route by tenant name; unrouted requests hit the first
	// entry.
	Tenants []TenantConfig
	// MaxResident caps how many tenants hold a live snapshot set at once
	// (0 = all of them). Past the cap, publishing one tenant's set
	// evicts the least-recently-used other tenant; evicted tenants
	// cold-load on their next request.
	MaxResident int

	// MaxInFlight caps one tenant's concurrently evaluating compute
	// requests (0 = DefaultMaxInFlight, negative = unlimited); a
	// TenantConfig.MaxInFlight overrides it per tenant.
	MaxInFlight int
	// MaxBodyBytes caps one request body (0 = DefaultMaxBodyBytes,
	// negative = unlimited).
	MaxBodyBytes int64
	// RequestTimeout bounds one compute request's evaluation
	// (0 = DefaultRequestTimeout, negative = no deadline).
	RequestTimeout time.Duration
	// StrictHealth makes /readyz return 503 while any resident tenant is
	// degraded (its last reload failed); by default degraded is a 200
	// with a status field, since the old snapshot still answers
	// correctly.
	StrictHealth bool
	// RetryMin/RetryMax bound the failed-reload backoff
	// (0 = DefaultRetryMin/Max).
	RetryMin time.Duration
	RetryMax time.Duration
	// Logf, when set, receives one line per reload/load/evict outcome.
	Logf func(format string, args ...any)
	// Logger, when set, receives one structured record per request and
	// operational event, each carrying a trace ID (-log-format in
	// pinum-serve). Independent of Logf so existing plain-text consumers
	// keep their lines.
	Logger *slog.Logger
	// SlowRequest is the slow-request threshold: requests slower than
	// this are recorded in the operational event log
	// (0 = DefaultSlowRequest, negative = disabled).
	SlowRequest time.Duration
	// EventLogSize caps the operational event ring served at /eventz
	// (0 = obs.DefaultEventLogSize).
	EventLogSize int
}

// Server answers what-if, recommendation and explain questions over
// hot-swappable immutable snapshot sets, one per tenant. Create with
// New; serve with Handler; swap with ReloadNow/ReloadTenant/
// TriggerReload (or POST /reload).
type Server struct {
	cfg Config

	// The tenant registry (see tenant.go). tenantNames is sorted;
	// defaultName is the tenant unrouted requests hit; multi reports
	// whether Config.Tenants was used (single-tenant servers keep the
	// pre-tenant wire contract exactly).
	tenants     map[string]*tenant
	tenantNames []string
	defaultName string
	multi       bool

	// residentCap bounds live snapshot sets across tenants; resMu
	// serializes the LRU residency sweep; clock issues recency ticks.
	residentCap int
	resMu       sync.Mutex
	clock       atomic.Int64

	// everLoaded flips once any tenant publishes a set; readiness gates
	// on it.
	everLoaded atomic.Bool

	// Observability: the metrics registry behind /metrics, the
	// operational event ring behind /eventz, per-endpoint handle cache,
	// and pre-resolved process-wide counters. /statz derives every
	// number it reports from the same registry handles, so the two
	// exposition surfaces can never disagree.
	reg       *obs.Registry
	events    *obs.EventLog
	logger    *slog.Logger
	epMu      sync.Mutex
	ep        map[string]*endpointObs
	panics    *obs.Counter
	oversized *obs.Counter
	unmatched *obs.Counter

	// traceBase/traceSeq mint process-unique trace IDs without math/rand:
	// the start time in base-36 plus a monotonic sequence.
	traceBase string
	traceSeq  atomic.Int64

	start time.Time
	mux   *http.ServeMux
}

// endpointObs are one endpoint's registry handles — requests, errors and
// the latency histogram — resolved once at registration so request
// recording is three lock-free atomic updates.
type endpointObs struct {
	requests *obs.Counter
	errors   *obs.Counter
	latency  *obs.Histogram
}

// New builds the server. In static mode (no Loader, no Tenants) the
// initial snapshot set is built synchronously from the provided caches —
// construction is the only place optimizer-derived state is created, and
// every request after it runs on shared immutable data plus
// request-local scratch. In loader mode the server starts unloaded
// (readiness fails) until the first load succeeds. In tenant mode every
// entry starts cold; loads happen on first request or explicit reload.
func New(cfg Config) (*Server, error) {
	if cfg.MaxInFlight == 0 {
		cfg.MaxInFlight = DefaultMaxInFlight
	}
	if cfg.MaxBodyBytes == 0 {
		cfg.MaxBodyBytes = DefaultMaxBodyBytes
	}
	if cfg.RequestTimeout == 0 {
		cfg.RequestTimeout = DefaultRequestTimeout
	}
	if cfg.RetryMin <= 0 {
		cfg.RetryMin = DefaultRetryMin
	}
	if cfg.RetryMax <= 0 {
		cfg.RetryMax = DefaultRetryMax
	}
	if cfg.SlowRequest == 0 {
		cfg.SlowRequest = DefaultSlowRequest
	}
	s := &Server{
		cfg:     cfg,
		tenants: make(map[string]*tenant),
		start:   time.Now(),
		mux:     http.NewServeMux(),
		reg:     obs.NewRegistry(),
		events:  obs.NewEventLog(cfg.EventLogSize),
		logger:  cfg.Logger,
		ep:      make(map[string]*endpointObs),
	}
	s.traceBase = strconv.FormatInt(s.start.UnixNano(), 36)
	s.registerProcessMetrics()

	if len(cfg.Tenants) > 0 {
		s.multi = true
		s.residentCap = cfg.MaxResident
		for _, tc := range cfg.Tenants {
			if !plancache.ValidTenantName(tc.Name) {
				return nil, fmt.Errorf("serve: invalid tenant name %q", tc.Name)
			}
			if s.tenants[tc.Name] != nil {
				return nil, fmt.Errorf("serve: duplicate tenant %q", tc.Name)
			}
			if tc.Loader == nil {
				return nil, fmt.Errorf("serve: tenant %q needs a Loader", tc.Name)
			}
			s.tenants[tc.Name] = s.newTenant(tc.Name, tc.Loader, tc.SnapshotPath, tc.MaxInFlight)
			s.tenantNames = append(s.tenantNames, tc.Name)
		}
		s.defaultName = cfg.Tenants[0].Name
		sort.Strings(s.tenantNames)
	} else {
		t := s.newTenant(DefaultTenant, cfg.Loader, cfg.SnapshotPath, cfg.MaxInFlight)
		s.tenants[DefaultTenant] = t
		s.tenantNames = []string{DefaultTenant}
		s.defaultName = DefaultTenant

		if cfg.Loader == nil {
			if len(cfg.Queries) == 0 {
				return nil, fmt.Errorf("serve: no queries")
			}
			if len(cfg.Caches) != len(cfg.Queries) || len(cfg.Analyses) != len(cfg.Queries) {
				return nil, fmt.Errorf("serve: %d queries need matching caches (%d) and analyses (%d)",
					len(cfg.Queries), len(cfg.Caches), len(cfg.Analyses))
			}
			env := &Environment{
				Catalog:  cfg.Catalog,
				Stats:    cfg.Stats,
				Queries:  cfg.Queries,
				Analyses: cfg.Analyses,
				Weights:  cfg.Weights,
			}
			set, err := newSnapshotSet(env, cfg.Caches, sourceStartup)
			if err != nil {
				return nil, err
			}
			t.publish(set)
		}
	}

	s.mux.HandleFunc("/whatif", s.instrument("/whatif", http.MethodPost, true, s.handleWhatIf))
	s.mux.HandleFunc("/recommend", s.instrument("/recommend", http.MethodPost, true, s.handleRecommend))
	s.mux.HandleFunc("/explain", s.instrument("/explain", http.MethodPost, true, s.handleExplain))
	s.mux.HandleFunc("/reload", s.instrument("/reload", http.MethodPost, false, s.handleReload))
	s.mux.HandleFunc("/healthz", s.instrument("/healthz", http.MethodGet, false, s.handleHealth))
	s.mux.HandleFunc("/readyz", s.instrument("/readyz", http.MethodGet, false, s.handleReady))
	s.mux.HandleFunc("/statz", s.instrument("/statz", http.MethodGet, false, s.handleStatz))
	s.mux.HandleFunc("/eventz", s.instrument("/eventz", http.MethodGet, false, s.handleEventz))
	s.mux.HandleFunc("/metrics", s.handleMetrics)
	s.mux.HandleFunc("/", s.handleUnmatched)
	return s, nil
}

// registerProcessMetrics resolves the process-wide counter handles and
// installs the runtime gauges: goroutine count live, heap/GC numbers
// refreshed by one ReadMemStats per scrape.
func (s *Server) registerProcessMetrics() {
	s.panics = s.reg.Counter("pinum_panics_total",
		"Recovered panics across request handlers and snapshot rebuilds.")
	s.oversized = s.reg.Counter("pinum_ingress_oversized_total",
		"Request bodies refused with 413 for exceeding the body-size cap.")
	s.unmatched = s.reg.Counter("pinum_http_unmatched_total",
		"Requests for unregistered paths answered 404.")
	s.reg.GaugeFunc("pinum_uptime_seconds",
		"Seconds since the server was constructed.",
		func() float64 { return time.Since(s.start).Seconds() })
	s.reg.GaugeFunc("pinum_goroutines",
		"Live goroutines in the serving process.",
		func() float64 { return float64(runtime.NumGoroutine()) })
	heap := s.reg.Gauge("pinum_heap_alloc_bytes",
		"Bytes of allocated heap objects (runtime.MemStats.HeapAlloc).")
	gcPause := s.reg.Gauge("pinum_gc_pause_seconds_total",
		"Cumulative stop-the-world GC pause seconds.")
	gcCycles := s.reg.Gauge("pinum_gc_cycles_total",
		"Completed GC cycles.")
	s.reg.OnScrape(func() {
		var ms runtime.MemStats
		runtime.ReadMemStats(&ms)
		heap.Set(float64(ms.HeapAlloc))
		gcPause.Set(float64(ms.PauseTotalNs) / 1e9)
		gcCycles.Set(float64(ms.NumGC))
	})
}

// epFor resolves (registering on first use) one endpoint's handles.
func (s *Server) epFor(name string) *endpointObs {
	s.epMu.Lock()
	defer s.epMu.Unlock()
	m := s.ep[name]
	if m == nil {
		m = &endpointObs{
			requests: s.reg.Counter("pinum_http_requests_total",
				"HTTP requests received, by endpoint.", obs.L("endpoint", name)),
			errors: s.reg.Counter("pinum_http_request_errors_total",
				"HTTP requests answered with an error status, by endpoint.", obs.L("endpoint", name)),
			latency: s.reg.Histogram("pinum_http_request_duration_seconds",
				"HTTP request latency in seconds, by endpoint.", obs.L("endpoint", name)),
		}
		s.ep[name] = m
	}
	return m
}

// Registry exposes the metrics registry (tests and embedders; the HTTP
// surface is GET /metrics).
func (s *Server) Registry() *obs.Registry { return s.reg }

// newTenant builds one registry entry. maxInFlight 0 inherits the
// server-wide cap; negative means unlimited.
func (s *Server) newTenant(name string, loader func() (*Environment, error), snapshotPath string, maxInFlight int) *tenant {
	if maxInFlight == 0 {
		maxInFlight = s.cfg.MaxInFlight
	}
	t := &tenant{
		name:         name,
		srv:          s,
		loader:       loader,
		snapshotPath: snapshotPath,
		reloadQueue:  make(chan struct{}, 2),
	}
	if maxInFlight > 0 {
		t.inflight = make(chan struct{}, maxInFlight)
	}
	s.registerTenantMetrics(t)
	return t
}

// Handler returns the HTTP handler serving every endpoint.
func (s *Server) Handler() http.Handler { return s.mux }

// Close stops every tenant's reload retry machinery. In-flight requests
// finish normally; the caller owns the HTTP listener's own shutdown.
func (s *Server) Close() {
	for _, name := range s.tenantNames {
		s.tenants[name].stopRetry()
	}
}

func (s *Server) logf(format string, args ...any) {
	if s.cfg.Logf != nil {
		s.cfg.Logf(format, args...)
	}
}

// httpError carries a status code out of a handler.
type httpError struct {
	code int
	err  error
}

func (e *httpError) Error() string { return e.err.Error() }

func badRequest(format string, args ...any) error {
	return &httpError{code: http.StatusBadRequest, err: fmt.Errorf(format, args...)}
}

// errNotReady is every compute endpoint's answer until the first
// snapshot set has been published.
func errNotReady() error {
	return &httpError{
		code: http.StatusServiceUnavailable,
		err:  errors.New("not ready: no snapshot loaded yet"),
	}
}

// instrument wraps a handler with method filtering, panic containment,
// the per-request deadline, JSON error rendering and the endpoint's
// latency/throughput counters. compute marks the expensive endpoints
// that sit behind deadlines and (inside computeOn, once the body names a
// tenant) per-tenant admission control; health/metrics endpoints stay
// exempt so a saturated server can still be observed. A request carrying
// the X-Pinum-Trace header gets a trace attached to its context here, so
// every downstream span lands on it.
func (s *Server) instrument(name, method string, compute bool, fn func(*http.Request) (any, error)) http.HandlerFunc {
	m := s.epFor(name)
	return func(w http.ResponseWriter, r *http.Request) {
		start := time.Now()
		m.requests.Inc()
		var tr *obs.Trace
		if id := r.Header.Get(TraceHeader); id != "" {
			tr = obs.NewTraceAt(id, start)
			r = r.WithContext(obs.WithTrace(r.Context(), tr))
		}
		var (
			resp any
			err  error
		)
		if r.Method != method {
			err = &httpError{code: http.StatusMethodNotAllowed, err: fmt.Errorf("%s requires %s", name, method)}
		} else {
			if compute && s.cfg.RequestTimeout > 0 {
				ctx, cancel := context.WithTimeout(r.Context(), s.cfg.RequestTimeout)
				defer cancel()
				r = r.WithContext(ctx)
			}
			resp, err = s.contain(name, fn, r)
		}
		w.Header().Set("Content-Type", "application/json")
		status := http.StatusOK
		if err != nil {
			m.errors.Inc()
			status = http.StatusInternalServerError
			var he *httpError
			if errors.As(err, &he) {
				status = he.code
			} else if errors.Is(err, context.DeadlineExceeded) {
				status = http.StatusGatewayTimeout
			}
			w.WriteHeader(status)
			json.NewEncoder(w).Encode(map[string]string{"error": err.Error()})
		} else {
			enc := json.NewEncoder(w)
			enc.SetIndent("", "  ")
			enc.Encode(resp)
		}
		s.record(name, m, time.Since(start), status, tr)
	}
}

// record is the per-request bookkeeping tail every endpoint funnels
// through. With tracing off and no structured logger the whole call is
// lock-free atomic updates — the serving hot path must not pay an
// allocation for observability it didn't ask for.
//
//pinum:allocfree tracing/logging-off fast path; pinned by TestRequestRecordAllocFree and BenchmarkRequestRecord
func (s *Server) record(name string, m *endpointObs, dur time.Duration, status int, tr *obs.Trace) {
	m.latency.Observe(dur.Seconds())
	if s.cfg.SlowRequest > 0 && dur >= s.cfg.SlowRequest {
		s.recordSlow(name, dur, tr)
	}
	if s.logger != nil {
		s.logRequest(name, status, dur, tr)
	}
}

// recordSlow files one slow-request event; split from record so the fmt
// work stays off the annotated fast path.
func (s *Server) recordSlow(name string, dur time.Duration, tr *obs.Trace) {
	s.recordEvent("slow-request", "", tr.ID(),
		fmt.Sprintf("%s took %s (threshold %s)", name, dur.Round(time.Millisecond), s.cfg.SlowRequest))
}

// logRequest emits one structured record per request; requests that
// arrived without a trace get an ID minted here so every line is
// correlatable.
func (s *Server) logRequest(name string, status int, dur time.Duration, tr *obs.Trace) {
	id := tr.ID()
	if id == "" {
		id = s.nextTraceID()
	}
	level := slog.LevelInfo
	if status >= http.StatusInternalServerError {
		level = slog.LevelWarn
	}
	s.logger.LogAttrs(context.Background(), level, "request",
		slog.String("endpoint", name),
		slog.Int("status", status),
		slog.Int64("dur_us", dur.Microseconds()),
		slog.String("trace_id", id),
	)
}

// nextTraceID mints a process-unique trace ID without math/rand (the
// serving tree bans nondeterminism outside annotated sites): the server
// start time in base-36 plus a monotonic sequence.
func (s *Server) nextTraceID() string {
	return s.traceBase + "-" + strconv.FormatInt(s.traceSeq.Add(1), 10)
}

// recordEvent files one operational event: the /eventz ring, the
// per-type counter, and (when structured logging is on) one log line.
func (s *Server) recordEvent(typ, tenantName, traceID, detail string) {
	s.events.Record(obs.Event{Type: typ, Tenant: tenantName, TraceID: traceID, Detail: detail})
	s.reg.Counter("pinum_events_total", "Operational events recorded, by type.", obs.L("type", typ)).Inc()
	if s.logger != nil {
		s.logger.LogAttrs(context.Background(), slog.LevelInfo, "event",
			slog.String("type", typ),
			slog.String("tenant", tenantName),
			slog.String("trace_id", traceID),
			slog.String("detail", detail),
		)
	}
}

// contain runs one handler with panic recovery: a panicking handler
// becomes a counted 500 — and a recorded event — and the next request
// proceeds normally.
func (s *Server) contain(name string, fn func(*http.Request) (any, error), r *http.Request) (resp any, err error) {
	defer func() {
		if p := recover(); p != nil {
			s.panics.Inc()
			s.recordEvent("panic", "", obs.TraceFrom(r.Context()).ID(),
				fmt.Sprintf("handler %s: %v", name, p))
			err = fmt.Errorf("internal panic in %s handler: %v", name, p)
		}
	}()
	return fn(r)
}

// handleMetrics serves the Prometheus text exposition. It bypasses
// instrument's JSON rendering but shares the same per-endpoint handles,
// so scrapes are themselves visible in the data they return.
func (s *Server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	start := time.Now()
	m := s.epFor("/metrics")
	m.requests.Inc()
	status := http.StatusOK
	if r.Method != http.MethodGet {
		m.errors.Inc()
		status = http.StatusMethodNotAllowed
		w.Header().Set("Content-Type", "application/json")
		w.WriteHeader(status)
		json.NewEncoder(w).Encode(map[string]string{"error": "/metrics requires GET"})
	} else {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		if err := s.reg.WriteText(w); err != nil {
			m.errors.Inc()
		}
	}
	s.record("/metrics", m, time.Since(start), status, nil)
}

// handleUnmatched is the mux catch-all: probes for paths this server
// never registered are counted (pinum_http_unmatched_total, the /statz
// "unmatched" key) instead of vanishing into a silent 404. No per-path
// series is created — request paths are attacker-controlled and would
// blow up metric cardinality.
func (s *Server) handleUnmatched(w http.ResponseWriter, r *http.Request) {
	s.unmatched.Inc()
	if s.logger != nil {
		s.logRequest(r.URL.Path, http.StatusNotFound, 0, nil)
	}
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(http.StatusNotFound)
	json.NewEncoder(w).Encode(map[string]string{"error": "no such endpoint: " + r.URL.Path})
}

// handleEventz serves the operational event ring, oldest first.
func (s *Server) handleEventz(*http.Request) (any, error) {
	return map[string]any{
		"total":    s.events.Total(),
		"capacity": s.events.Cap(),
		"events":   s.events.Events(),
	}, nil
}

// ----------------------------------------------------------- whatif ----

// IndexSpec names one hypothetical index in a request.
type IndexSpec struct {
	Table   string   `json:"table"`
	Columns []string `json:"columns"`
}

// WeightOverride reweights one workload query for the duration of a
// request. Each query may appear at most once; weights must be positive
// and finite.
type WeightOverride struct {
	Name   string  `json:"name"`
	Weight float64 `json:"weight"`
}

// WhatIfRequest prices the workload under a configuration.
type WhatIfRequest struct {
	// Tenant routes the request in a multi-tenant server; it must agree
	// with the X-Pinum-Tenant header when both are set. Empty means the
	// default tenant.
	Tenant  string           `json:"tenant,omitempty"`
	Indexes []IndexSpec      `json:"indexes"`
	Weights []WeightOverride `json:"weights,omitempty"`
	// Trace opts this request into span tracing (the X-Pinum-Trace
	// header is the out-of-band equivalent).
	Trace bool `json:"trace,omitempty"`
}

// QueryCost is one query's answer.
type QueryCost struct {
	Name string  `json:"name"`
	Base float64 `json:"base"`
	Cost float64 `json:"cost"`
}

// WhatIfResponse reports per-query and weighted workload costs.
type WhatIfResponse struct {
	Total     float64        `json:"total"`
	BaseTotal float64        `json:"base_total"`
	Speedup   float64        `json:"speedup"`
	Queries   []QueryCost    `json:"queries"`
	Trace     *obs.TraceView `json:"trace,omitempty"`
}

// WhatIf prices the workload under the given configuration on the
// tenant the request names (default tenant when empty): per-query cache
// lookups fan over the worker pool, and the weighted total is summed in
// workload order — the same arithmetic, in the same order, as the
// in-process advisor's workload costing, so results agree bit for bit.
func (s *Server) WhatIf(req *WhatIfRequest) (*WhatIfResponse, error) {
	t, err := s.tenantByName(req.Tenant)
	if err != nil {
		return nil, err
	}
	set, err := s.acquireSet(t)
	if err != nil {
		return nil, err
	}
	return s.whatIfOn(context.Background(), set, req)
}

func (s *Server) whatIfOn(ctx context.Context, set *snapshotSet, req *WhatIfRequest) (*WhatIfResponse, error) {
	cfg, err := set.resolveConfig(req.Indexes)
	if err != nil {
		return nil, err
	}
	weights, overridden, err := set.resolveWeights(req.Weights)
	if err != nil {
		return nil, err
	}
	n := len(set.caches)
	costs := make([]float64, n)
	errs := make([]error, n)
	tr := obs.TraceFrom(ctx)
	var observe func(int, time.Time, time.Duration)
	if tr != nil {
		observe = func(i int, qs time.Time, d time.Duration) {
			tr.Add("query:"+set.env.Queries[i].Name, qs, d)
		}
	}
	ft := time.Now()
	fanErr := core.FanCtxObserved(ctx, n, s.cfg.Workers, func() func(int) {
		return func(i int) {
			costs[i], _, errs[i] = set.caches[i].Cost(cfg)
		}
	}, observe)
	tr.Add("fanout", ft, time.Since(ft))
	if fanErr != nil {
		return nil, fmt.Errorf("request abandoned: %w", fanErr)
	}
	resp := &WhatIfResponse{BaseTotal: set.baseTotal, Queries: make([]QueryCost, n)}
	if overridden {
		// The precomputed base total carries the set's weights; overridden
		// requests re-sum it below, in the identical order, so the
		// no-override path stays byte-for-byte what it always was.
		resp.BaseTotal = 0
	}
	for i := 0; i < n; i++ {
		if errs[i] != nil {
			return nil, fmt.Errorf("pricing %s: %w", set.env.Queries[i].Name, errs[i])
		}
		resp.Queries[i] = QueryCost{Name: set.env.Queries[i].Name, Base: set.base[i], Cost: costs[i]}
		//pinum:costarith-ok workload objective Σ wᵢ·cᵢ mirroring advisor.workloadCost; pinned by TestWhatIfMatchesInProcess
		resp.Total += weights[i] * costs[i]
		if overridden {
			//pinum:costarith-ok same objective over the request's override weights; pinned by TestWeightOverrides
			resp.BaseTotal += weights[i] * set.base[i]
		}
	}
	if resp.BaseTotal > 0 {
		resp.Speedup = math.Max(0, 1-resp.Total/resp.BaseTotal)
	}
	return resp, nil
}

func (s *Server) handleWhatIf(r *http.Request) (any, error) {
	t0 := time.Now()
	var req WhatIfRequest
	if err := s.decodeBody(r, &req); err != nil {
		return nil, err
	}
	r, tr := s.ensureTrace(r, req.Trace, t0)
	tr.Add("decode", t0, time.Since(t0))
	resp, err := s.computeOn(r, req.Tenant, func(t *tenant, set *snapshotSet) (any, error) {
		return s.whatIfOn(r.Context(), set, &req)
	})
	if err != nil {
		return nil, err
	}
	wr := resp.(*WhatIfResponse)
	wr.Trace = s.traceView(tr, wr)
	return wr, nil
}

// ensureTrace returns the request's trace: the header-created one from
// instrument when present, a fresh one when the body opted in, nil
// otherwise. A body-created trace starts at entry (the decode start) so
// span offsets stay non-negative.
func (s *Server) ensureTrace(r *http.Request, optIn bool, entry time.Time) (*http.Request, *obs.Trace) {
	tr := obs.TraceFrom(r.Context())
	if tr == nil && optIn {
		tr = obs.NewTraceAt(s.nextTraceID(), entry)
		r = r.WithContext(obs.WithTrace(r.Context(), tr))
	}
	return r, tr
}

// traceView finishes a traced request: it measures one rendering pass
// as the encode span (instrument's real encode happens after the
// handler returns) and snapshots the span set. Returns nil — leaving
// the response byte-identical to an untraced one — when tracing is off.
func (s *Server) traceView(tr *obs.Trace, resp any) *obs.TraceView {
	if tr == nil {
		return nil
	}
	e0 := time.Now()
	if _, err := EncodeJSON(resp); err == nil {
		tr.Add("encode", e0, time.Since(e0))
	}
	return tr.View()
}

// -------------------------------------------------------- recommend ----

// RecommendRequest runs the index advisor under a space budget.
type RecommendRequest struct {
	// Tenant routes the request; see WhatIfRequest.Tenant.
	Tenant     string           `json:"tenant,omitempty"`
	BudgetGB   float64          `json:"budget_gb"`
	MaxIndexes int              `json:"max_indexes"`
	Weights    []WeightOverride `json:"weights,omitempty"`
	// Trace opts this request into span tracing; see WhatIfRequest.Trace.
	Trace bool `json:"trace,omitempty"`
}

// RecommendResponse reports the advisor's suggestion.
type RecommendResponse struct {
	Chosen     []string       `json:"chosen"`
	TotalBytes int64          `json:"total_bytes"`
	BaseCost   float64        `json:"base_cost"`
	FinalCost  float64        `json:"final_cost"`
	Speedup    float64        `json:"speedup"`
	Rounds     int            `json:"rounds"`
	Candidates int            `json:"candidates"`
	Queries    []QueryCost    `json:"queries"`
	Engine     EngineStats    `json:"engine"`
	Trace      *obs.TraceView `json:"trace,omitempty"`
}

// EngineStats mirrors the cost engine's work counters in the response.
type EngineStats struct {
	CandidateEvals int64 `json:"candidate_evals"`
	QueryEvals     int64 `json:"query_evals"`
	QuerySkips     int64 `json:"query_skips"`
}

// Recommend runs one greedy advisor search over the named tenant's
// shared caches with request-local engine state. Results are identical
// to an in-process advisor.Run over the same workload, weights and
// budget.
func (s *Server) Recommend(req *RecommendRequest) (*RecommendResponse, error) {
	t, err := s.tenantByName(req.Tenant)
	if err != nil {
		return nil, err
	}
	set, err := s.acquireSet(t)
	if err != nil {
		return nil, err
	}
	return s.recommendOn(context.Background(), set, req)
}

func (s *Server) recommendOn(ctx context.Context, set *snapshotSet, req *RecommendRequest) (*RecommendResponse, error) {
	if req.BudgetGB <= 0 {
		return nil, badRequest("budget_gb must be positive, got %g", req.BudgetGB)
	}
	weights, _, err := set.resolveWeights(req.Weights)
	if err != nil {
		return nil, err
	}
	if err := ctx.Err(); err != nil {
		return nil, fmt.Errorf("request abandoned: %w", err)
	}
	ad := advisor.New(set.env.Catalog, set.env.Stats, storage.BytesForGB(req.BudgetGB))
	ad.Parallelism = s.cfg.Workers
	ad.MaxIndexes = req.MaxIndexes
	for i, q := range set.env.Queries {
		if err := ad.AddPrepared(q, set.env.Analyses[i], set.caches[i], weights[i]); err != nil {
			return nil, err
		}
	}
	for _, ix := range set.candidates {
		ad.AddCandidate(ix)
	}
	rt := time.Now()
	res, err := ad.Run()
	obs.TraceFrom(ctx).Add("advisor", rt, time.Since(rt))
	if err != nil {
		return nil, err
	}
	if err := ctx.Err(); err != nil {
		return nil, fmt.Errorf("request abandoned: %w", err)
	}
	return RecommendResponseFrom(res, set.env.Queries), nil
}

// RecommendResponseFrom shapes an advisor result for the wire. The CLI's
// verify mode shapes an independent in-process Advisor.Run result through
// the same function, so a served response and its ground truth can be
// compared byte for byte.
func RecommendResponseFrom(res *advisor.Result, queries []*query.Query) *RecommendResponse {
	resp := &RecommendResponse{
		TotalBytes: res.TotalBytes,
		BaseCost:   res.BaseCost,
		FinalCost:  res.FinalCost,
		Speedup:    res.Speedup(),
		Rounds:     res.Rounds,
		Candidates: res.CandidateCount,
		Engine: EngineStats{
			CandidateEvals: res.Engine.CandidateEvals,
			QueryEvals:     res.Engine.QueryEvals,
			QuerySkips:     res.Engine.QuerySkips,
		},
	}
	for _, ix := range res.Chosen {
		resp.Chosen = append(resp.Chosen, ix.Key())
	}
	for _, q := range queries {
		pq := res.PerQuery[q.Name]
		resp.Queries = append(resp.Queries, QueryCost{Name: q.Name, Base: pq[0], Cost: pq[1]})
	}
	return resp
}

func (s *Server) handleRecommend(r *http.Request) (any, error) {
	t0 := time.Now()
	var req RecommendRequest
	if err := s.decodeBody(r, &req); err != nil {
		return nil, err
	}
	r, tr := s.ensureTrace(r, req.Trace, t0)
	tr.Add("decode", t0, time.Since(t0))
	resp, err := s.computeOn(r, req.Tenant, func(t *tenant, set *snapshotSet) (any, error) {
		return s.recommendOn(r.Context(), set, &req)
	})
	if err != nil {
		return nil, err
	}
	rr := resp.(*RecommendResponse)
	rr.Trace = s.traceView(tr, rr)
	return rr, nil
}

// ---------------------------------------------------------- explain ----

// ExplainRequest optimizes one query under a configuration.
type ExplainRequest struct {
	// Tenant routes the request; see WhatIfRequest.Tenant.
	Tenant  string      `json:"tenant,omitempty"`
	SQL     string      `json:"sql"`
	Indexes []IndexSpec `json:"indexes"`
	// Trace opts this request into span tracing; see WhatIfRequest.Trace.
	Trace bool `json:"trace,omitempty"`
}

// ExplainLeaf is one relation's access requirement in the chosen plan's
// INUM decomposition.
type ExplainLeaf struct {
	Rel        int     `json:"rel"`
	Table      string  `json:"table"`
	Mode       string  `json:"mode"`
	Col        string  `json:"col,omitempty"`
	Coef       float64 `json:"coef"`
	AccessCost float64 `json:"access_cost"`
}

// ExplainResponse is the plan, its cost, and its decomposition.
type ExplainResponse struct {
	Cost     float64        `json:"cost"`
	Internal float64        `json:"internal"`
	Plan     string         `json:"plan"`
	Leaves   []ExplainLeaf  `json:"leaves"`
	Trace    *obs.TraceView `json:"trace,omitempty"`
}

// Explain runs one conventional optimizer call for an ad-hoc query — the
// only endpoint that plans, since arbitrary SQL has no prebuilt cache —
// and reports the plan tree plus its internal/leaf cost decomposition.
// All state is request-local except the set's read-only catalog and its
// index interner.
func (s *Server) Explain(req *ExplainRequest) (*ExplainResponse, error) {
	t, err := s.tenantByName(req.Tenant)
	if err != nil {
		return nil, err
	}
	set, err := s.acquireSet(t)
	if err != nil {
		return nil, err
	}
	return explainOn(context.Background(), set, req)
}

func explainOn(ctx context.Context, set *snapshotSet, req *ExplainRequest) (*ExplainResponse, error) {
	if req.SQL == "" {
		return nil, badRequest("sql is required")
	}
	stmt, err := sql.Parse(req.SQL)
	if err != nil {
		return nil, badRequest("%v", err)
	}
	q, err := sql.Bind(stmt, set.env.Catalog, "adhoc")
	if err != nil {
		return nil, badRequest("%v", err)
	}
	cfg, err := set.resolveConfig(req.Indexes)
	if err != nil {
		return nil, err
	}
	a, err := optimizer.NewAnalysis(q, set.env.Stats, optimizer.DefaultCostParams())
	if err != nil {
		return nil, badRequest("%v", err)
	}
	ot := time.Now()
	res, err := optimizer.Optimize(a, cfg, optimizer.Options{EnableNestLoop: true})
	obs.TraceFrom(ctx).Add("optimize", ot, time.Since(ot))
	if err != nil {
		return nil, err
	}
	sum := optimizer.Summarize(res.Best, len(q.Rels))
	resp := &ExplainResponse{
		Cost:     res.Best.Cost,
		Internal: sum.Internal,
		Plan:     optimizer.Explain(res.Best, q),
	}
	for rel, lr := range sum.Leaves {
		ac, ok := a.AccessCost(rel, lr, cfg)
		if !ok {
			ac = math.Inf(1)
		}
		resp.Leaves = append(resp.Leaves, ExplainLeaf{
			Rel:        rel,
			Table:      q.Rels[rel].Table.Name,
			Mode:       lr.Mode.String(),
			Col:        lr.Col,
			Coef:       lr.Coef,
			AccessCost: ac,
		})
	}
	return resp, nil
}

func (s *Server) handleExplain(r *http.Request) (any, error) {
	t0 := time.Now()
	var req ExplainRequest
	if err := s.decodeBody(r, &req); err != nil {
		return nil, err
	}
	r, tr := s.ensureTrace(r, req.Trace, t0)
	tr.Add("decode", t0, time.Since(t0))
	resp, err := s.computeOn(r, req.Tenant, func(t *tenant, set *snapshotSet) (any, error) {
		return explainOn(r.Context(), set, &req)
	})
	if err != nil {
		return nil, err
	}
	er := resp.(*ExplainResponse)
	er.Trace = s.traceView(tr, er)
	return er, nil
}

// ------------------------------------------------- health / metrics ----

// handleHealth is liveness plus a status summary: the process is up, so
// the answer is always 200. Single-tenant servers keep the pre-tenant
// payload (status, fingerprint, snapshot_source, …); multi-tenant
// servers report the registry overview, with ?tenant= selecting one
// tenant's detail in the single-tenant shape.
func (s *Server) handleHealth(r *http.Request) (any, error) {
	if name := r.URL.Query().Get("tenant"); name != "" || !s.multi {
		t, err := s.tenantByName(name)
		if err != nil {
			return nil, err
		}
		return s.tenantHealth(t), nil
	}
	statuses := make(map[string]string, len(s.tenants))
	for _, name := range s.tenantNames {
		statuses[name] = s.tenants[name].statusWord()
	}
	out := map[string]any{
		"status":           s.serverStatus(),
		"tenants":          len(s.tenants),
		"tenants_resident": s.residentCount(),
		"tenant_status":    statuses,
	}
	if s.residentCap > 0 {
		out["resident_cap"] = s.residentCap
	}
	return out, nil
}

// tenantHealth is one tenant's health detail — in single-tenant mode,
// the entire (pre-tenant, byte-compatible) /healthz payload.
func (s *Server) tenantHealth(t *tenant) map[string]any {
	set := t.current()
	out := map[string]any{"status": t.statusWord()}
	if s.multi {
		out["tenant"] = t.name
	}
	if set != nil {
		entries, slim := 0, true
		for _, c := range set.caches {
			entries += len(c.Plans)
			slim = slim && c.Slim()
		}
		out["queries"] = len(set.env.Queries)
		out["entries"] = entries
		out["slim"] = slim
		out["candidates"] = len(set.candidates)
		out["candidate_gen_errors"] = len(set.genErrors)
		out["fingerprint"] = fmt.Sprintf("%016x", set.fingerprint)
		out["snapshot_source"] = set.source
	}
	if msg := loadString(&t.lastReloadErr); msg != "" {
		out["last_reload_error"] = msg
	}
	return out
}

// handleReady is readiness: 503 until the first snapshot set is
// published anywhere, and — behind StrictHealth — 503 while any
// resident tenant is degraded. A degraded tenant is serving correct (if
// stale) answers, so by default the server stays ready with the
// degradation surfaced in the status field.
func (s *Server) handleReady(*http.Request) (any, error) {
	if !s.everLoaded.Load() {
		return nil, &httpError{
			code: http.StatusServiceUnavailable,
			err:  errors.New("starting: no snapshot loaded yet"),
		}
	}
	if s.cfg.StrictHealth {
		for _, name := range s.tenantNames {
			t := s.tenants[name]
			if t.current() != nil && t.degraded.Load() {
				msg := loadString(&t.lastReloadErr)
				if s.multi {
					return nil, &httpError{
						code: http.StatusServiceUnavailable,
						err:  fmt.Errorf("degraded: tenant %s: %s", t.name, msg),
					}
				}
				return nil, &httpError{
					code: http.StatusServiceUnavailable,
					err:  fmt.Errorf("degraded: %s", msg),
				}
			}
		}
	}
	return map[string]any{"status": s.serverStatus()}, nil
}

// serverStatus is the process-level status word: the default tenant's
// word in single-tenant mode (preserving the pre-tenant contract), and
// starting / degraded-if-any-resident-tenant-is / ok across the registry
// otherwise.
func (s *Server) serverStatus() string {
	if !s.multi {
		return s.defaultTenant().statusWord()
	}
	if !s.everLoaded.Load() {
		return "starting"
	}
	for _, name := range s.tenantNames {
		t := s.tenants[name]
		if t.current() != nil && t.degraded.Load() {
			return "degraded"
		}
	}
	return "ok"
}

// EndpointStats is one endpoint's counters as /statz reports them.
type EndpointStats struct {
	Requests int64   `json:"requests"`
	Errors   int64   `json:"errors"`
	AvgMs    float64 `json:"avg_ms"`
	MaxMs    float64 `json:"max_ms"`
}

// ReloadStats is one tenant's reload state machine as /statz reports it.
type ReloadStats struct {
	Completed     int64  `json:"completed"`
	Skipped       int64  `json:"skipped"`
	Failed        int64  `json:"failed"`
	Degraded      bool   `json:"degraded"`
	LastError     string `json:"last_error,omitempty"`
	LastSaveError string `json:"last_save_error,omitempty"`
	RetryAttempt  int    `json:"retry_attempt,omitempty"`
	NextRetryInMs int64  `json:"next_retry_in_ms,omitempty"`
}

// handleStatz reports process counters, per-endpoint latency stats and a
// per-tenant section each — every number re-derived from the same
// registry handles /metrics scrapes, so the two surfaces cannot drift.
// Single-tenant servers additionally keep every pre-tenant top-level
// field (reloads, fingerprint, …) so existing scrapers read them
// unchanged; ?tenant= narrows to one tenant.
func (s *Server) handleStatz(r *http.Request) (any, error) {
	if name := r.URL.Query().Get("tenant"); name != "" {
		t, err := s.tenantByName(name)
		if err != nil {
			return nil, err
		}
		return map[string]any{"tenant": t.name, "stats": t.stats()}, nil
	}
	s.epMu.Lock()
	handles := make(map[string]*endpointObs, len(s.ep))
	names := make([]string, 0, len(s.ep))
	for name, m := range s.ep {
		names = append(names, name)
		handles[name] = m
	}
	s.epMu.Unlock()
	sort.Strings(names)
	eps := make(map[string]EndpointStats, len(names))
	for _, name := range names {
		m := handles[name]
		st := EndpointStats{
			Requests: m.requests.Value(),
			Errors:   m.errors.Value(),
			MaxMs:    m.latency.Max() * 1e3,
		}
		if n := m.latency.Count(); n > 0 {
			st.AvgMs = m.latency.Sum() / float64(n) * 1e3
		}
		eps[name] = st
	}
	var rejected int64
	tstats := make(map[string]TenantStats, len(s.tenants))
	for _, name := range s.tenantNames {
		t := s.tenants[name]
		rejected += t.rejected.Value()
		tstats[name] = t.stats()
	}
	out := map[string]any{
		"uptime_seconds": time.Since(s.start).Seconds(),
		"endpoints":      eps,
		"panics":         s.panics.Value(),
		"rejected":       rejected,
		"oversized":      s.oversized.Value(),
		"unmatched":      s.unmatched.Value(),
		"tenants":        tstats,
	}
	if s.multi {
		out["tenants_resident"] = s.residentCount()
		if s.residentCap > 0 {
			out["resident_cap"] = s.residentCap
		}
	} else {
		t := s.defaultTenant()
		out["reloads"] = t.reloadStats()
		out["interned_indexes"] = 0
		if t.inflight != nil {
			out["in_flight"] = len(t.inflight)
		}
		if set := t.current(); set != nil {
			out["interned_indexes"] = set.internedCount()
			out["fingerprint"] = fmt.Sprintf("%016x", set.fingerprint)
			out["snapshot_source"] = set.source
			out["queries_reused"] = set.reused
			out["queries_rebuilt"] = set.rebuilt
			if len(set.genErrors) > 0 {
				out["candidate_gen_errors"] = set.genErrors
			}
		}
	}
	return out, nil
}

func loadString(v *atomic.Value) string {
	if s, ok := v.Load().(string); ok {
		return s
	}
	return ""
}

// EncodeJSON renders a response value exactly as the HTTP handlers do
// (two-space indent, trailing newline), so out-of-band recomputations can
// be byte-compared against a served body.
func EncodeJSON(v any) ([]byte, error) {
	var buf bytes.Buffer
	enc := json.NewEncoder(&buf)
	enc.SetIndent("", "  ")
	if err := enc.Encode(v); err != nil {
		return nil, err
	}
	return buf.Bytes(), nil
}

// decodeBody reads one JSON value — and nothing else — from a bounded
// request body. Oversized bodies (past Config.MaxBodyBytes) are a
// counted 413 instead of an unbounded allocation; unknown fields and any
// non-whitespace trailing data (a second JSON value, concatenated
// garbage) are a 400, so a malformed pipelined payload fails loudly
// instead of being half-read.
func (s *Server) decodeBody(r *http.Request, v any) error {
	body := r.Body
	if s.cfg.MaxBodyBytes > 0 {
		// nil ResponseWriter: the 413 is rendered by instrument; the
		// reader only enforces the limit and types the error.
		body = http.MaxBytesReader(nil, r.Body, s.cfg.MaxBodyBytes)
	}
	dec := json.NewDecoder(body)
	dec.DisallowUnknownFields()
	if err := dec.Decode(v); err != nil {
		var mbe *http.MaxBytesError
		if errors.As(err, &mbe) {
			s.oversized.Inc()
			return &httpError{
				code: http.StatusRequestEntityTooLarge,
				err:  fmt.Errorf("request body exceeds %d bytes", mbe.Limit),
			}
		}
		return badRequest("bad request body: %v", err)
	}
	if _, err := dec.Token(); err != io.EOF {
		var mbe *http.MaxBytesError
		if errors.As(err, &mbe) {
			s.oversized.Inc()
			return &httpError{
				code: http.StatusRequestEntityTooLarge,
				err:  fmt.Errorf("request body exceeds %d bytes", mbe.Limit),
			}
		}
		return badRequest("trailing data after JSON value")
	}
	return nil
}

// Package serve implements the concurrent what-if serving layer: an HTTP
// server that loads (or builds) a slim plan-cache snapshot once and then
// answers configuration questions with pure cost arithmetic — no
// optimizer calls on any request path that the caches cover.
//
// Concurrency model: the plan caches, analyses, queries and catalog are
// built at startup and never mutated afterwards; they are shared by every
// request. inum.Cache.Cost and the leaf-cost memo behind it are safe for
// concurrent use, so /whatif requests evaluate the shared caches directly,
// fanning per-query evaluations over a core.Fan worker pool. Everything a
// request does mutate is request-local: /recommend builds a fresh Advisor
// and incremental cost engine per request (over the shared caches and the
// startup-generated candidate set), and /explain runs a fresh optimizer
// call. The one shared mutable structure is the what-if index interner — a
// mutex-guarded session that resolves each requested (table, columns) spec
// to a stable descriptor, so repeated questions about the same index hit
// the caches' leaf memo instead of growing it. The interner (and with it
// the leaf memo, whose entries are keyed by interned descriptors) is
// capped: once maxInternedIndexes distinct specs have been seen, requests
// naming yet another new index are refused with 503 instead of growing
// server memory without bound.
package serve

import (
	"bytes"
	"encoding/json"
	"fmt"
	"math"
	"net/http"
	"os"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"github.com/pinumdb/pinum/internal/advisor"
	"github.com/pinumdb/pinum/internal/catalog"
	"github.com/pinumdb/pinum/internal/core"
	"github.com/pinumdb/pinum/internal/inum"
	"github.com/pinumdb/pinum/internal/optimizer"
	"github.com/pinumdb/pinum/internal/plancache"
	"github.com/pinumdb/pinum/internal/query"
	"github.com/pinumdb/pinum/internal/sql"
	"github.com/pinumdb/pinum/internal/stats"
	"github.com/pinumdb/pinum/internal/storage"
	"github.com/pinumdb/pinum/internal/whatif"
)

// Config assembles a server over a prepared workload.
type Config struct {
	Catalog *catalog.Catalog
	Stats   *stats.Store
	// Queries is the served workload; Caches and Analyses are aligned
	// with it.
	Queries  []*query.Query
	Analyses []*optimizer.Analysis
	Caches   []*inum.Cache
	// Weights are the workload frequency weights (nil = all 1).
	Weights []float64
	// Workers bounds the per-request evaluation pool and each
	// /recommend run's greedy parallelism (0 = GOMAXPROCS).
	Workers int
}

// Server answers what-if, recommendation and explain questions over
// shared immutable plan caches. Create with New; serve with Handler.
type Server struct {
	cfg     Config
	weights []float64
	// base holds the per-query costs under the empty configuration,
	// computed once at startup (they are configuration-independent).
	base      []float64
	baseTotal float64

	// ixMu guards the shared what-if index interner.
	ixMu sync.Mutex
	ws   *whatif.Session

	// candidates is the advisor candidate set, generated once so every
	// /recommend request prices the same stable descriptors. genErrors
	// records candidates that failed to generate at startup — they are
	// absent from every /recommend answer, so /healthz counts them and
	// /statz lists them rather than leaving degraded recommendations
	// indistinguishable from correct ones.
	candidates []*catalog.Index
	genErrors  []string

	start   time.Time
	metrics map[string]*endpointMetrics
	mux     *http.ServeMux
}

// endpointMetrics are one endpoint's latency/throughput counters.
type endpointMetrics struct {
	requests atomic.Int64
	errors   atomic.Int64
	totalNs  atomic.Int64
	maxNs    atomic.Int64
}

// New builds the server: startup is the only place optimizer-derived
// state is created; every request after it runs on shared immutable data
// plus request-local scratch.
func New(cfg Config) (*Server, error) {
	if len(cfg.Queries) == 0 {
		return nil, fmt.Errorf("serve: no queries")
	}
	if len(cfg.Caches) != len(cfg.Queries) || len(cfg.Analyses) != len(cfg.Queries) {
		return nil, fmt.Errorf("serve: %d queries need matching caches (%d) and analyses (%d)",
			len(cfg.Queries), len(cfg.Caches), len(cfg.Analyses))
	}
	s := &Server{
		cfg:   cfg,
		ws:    whatif.NewSession(cfg.Catalog),
		start: time.Now(),
		mux:   http.NewServeMux(),
	}
	s.weights = make([]float64, len(cfg.Queries))
	for i := range s.weights {
		w := 1.0
		if i < len(cfg.Weights) && cfg.Weights[i] > 0 {
			w = cfg.Weights[i]
		}
		s.weights[i] = w
	}
	s.base = make([]float64, len(cfg.Caches))
	for i, c := range cfg.Caches {
		cost, _, err := c.Cost(&query.Config{})
		if err != nil {
			return nil, fmt.Errorf("serve: base cost for %s: %w", cfg.Queries[i].Name, err)
		}
		s.base[i] = cost
		//pinum:costarith-ok workload objective Σ wᵢ·cᵢ mirroring advisor.workloadCost; pinned by TestWhatIfMatchesInProcess
		s.baseTotal += s.weights[i] * cost
	}

	// Generate the candidate set once through a throwaway advisor so
	// /recommend requests share descriptors (and the caches' leaf memo
	// stays bounded by the candidate count, not the request count).
	gen := advisor.New(cfg.Catalog, cfg.Stats, 0)
	for i, q := range cfg.Queries {
		if err := gen.AddPrepared(q, cfg.Analyses[i], cfg.Caches[i], s.weights[i]); err != nil {
			return nil, err
		}
	}
	gen.GenerateCandidates()
	s.candidates = gen.Candidates()
	for _, err := range gen.GenerationErrors() {
		s.genErrors = append(s.genErrors, err.Error())
	}

	s.metrics = map[string]*endpointMetrics{
		"/whatif":    {},
		"/recommend": {},
		"/explain":   {},
		"/healthz":   {},
		"/statz":     {},
	}
	s.mux.HandleFunc("/whatif", s.instrument("/whatif", http.MethodPost, s.handleWhatIf))
	s.mux.HandleFunc("/recommend", s.instrument("/recommend", http.MethodPost, s.handleRecommend))
	s.mux.HandleFunc("/explain", s.instrument("/explain", http.MethodPost, s.handleExplain))
	s.mux.HandleFunc("/healthz", s.instrument("/healthz", http.MethodGet, s.handleHealth))
	s.mux.HandleFunc("/statz", s.instrument("/statz", http.MethodGet, s.handleStatz))
	return s, nil
}

// Handler returns the HTTP handler serving every endpoint.
func (s *Server) Handler() http.Handler { return s.mux }

// httpError carries a status code out of a handler.
type httpError struct {
	code int
	err  error
}

func (e *httpError) Error() string { return e.err.Error() }

func badRequest(format string, args ...any) error {
	return &httpError{code: http.StatusBadRequest, err: fmt.Errorf(format, args...)}
}

// instrument wraps a handler with method filtering, JSON error rendering
// and the endpoint's latency/throughput counters.
func (s *Server) instrument(name, method string, fn func(*http.Request) (any, error)) http.HandlerFunc {
	m := s.metrics[name]
	return func(w http.ResponseWriter, r *http.Request) {
		start := time.Now()
		m.requests.Add(1)
		var (
			resp any
			err  error
		)
		if r.Method != method {
			err = &httpError{code: http.StatusMethodNotAllowed, err: fmt.Errorf("%s requires %s", name, method)}
		} else {
			resp, err = fn(r)
		}
		w.Header().Set("Content-Type", "application/json")
		if err != nil {
			m.errors.Add(1)
			code := http.StatusInternalServerError
			if he, ok := err.(*httpError); ok {
				code = he.code
			}
			w.WriteHeader(code)
			json.NewEncoder(w).Encode(map[string]string{"error": err.Error()})
		} else {
			enc := json.NewEncoder(w)
			enc.SetIndent("", "  ")
			enc.Encode(resp)
		}
		ns := time.Since(start).Nanoseconds()
		m.totalNs.Add(ns)
		for {
			cur := m.maxNs.Load()
			if ns <= cur || m.maxNs.CompareAndSwap(cur, ns) {
				break
			}
		}
	}
}

// ----------------------------------------------------------- whatif ----

// IndexSpec names one hypothetical index in a request.
type IndexSpec struct {
	Table   string   `json:"table"`
	Columns []string `json:"columns"`
}

// WhatIfRequest prices the workload under a configuration.
type WhatIfRequest struct {
	Indexes []IndexSpec `json:"indexes"`
}

// QueryCost is one query's answer.
type QueryCost struct {
	Name string  `json:"name"`
	Base float64 `json:"base"`
	Cost float64 `json:"cost"`
}

// WhatIfResponse reports per-query and weighted workload costs.
type WhatIfResponse struct {
	Total     float64     `json:"total"`
	BaseTotal float64     `json:"base_total"`
	Speedup   float64     `json:"speedup"`
	Queries   []QueryCost `json:"queries"`
}

// maxInternedIndexes caps the shared interner (and therefore the leaf
// memos keyed by its descriptors): a client enumerating the factorially
// many valid column permutations must hit a wall, not the OOM killer.
const maxInternedIndexes = 1 << 17

// resolveConfig interns the requested index specs into a configuration.
// The shared session deduplicates by (table, columns), so the descriptor
// a repeated spec resolves to is pointer-stable across requests and the
// caches' leaf memo serves it without recomputation. At the interner cap,
// previously-seen specs still resolve; new ones are refused.
func (s *Server) resolveConfig(specs []IndexSpec) (*query.Config, error) {
	cfg := &query.Config{}
	s.ixMu.Lock()
	defer s.ixMu.Unlock()
	for _, spec := range specs {
		ix := s.ws.Lookup(spec.Table, spec.Columns...)
		if ix == nil {
			if s.ws.Count() >= maxInternedIndexes {
				return nil, &httpError{
					code: http.StatusServiceUnavailable,
					err: fmt.Errorf("what-if index interner is full (%d distinct indexes); restart the server to clear it",
						maxInternedIndexes),
				}
			}
			var err error
			if ix, err = s.ws.CreateIndex(spec.Table, spec.Columns...); err != nil {
				return nil, badRequest("%v", err)
			}
		}
		cfg.Indexes = append(cfg.Indexes, ix)
	}
	return cfg, nil
}

// WhatIf prices the workload under the given configuration: per-query
// cache lookups fan over the worker pool, and the weighted total is
// summed in workload order — the same arithmetic, in the same order, as
// the in-process advisor's workload costing, so results agree bit for
// bit.
func (s *Server) WhatIf(req *WhatIfRequest) (*WhatIfResponse, error) {
	cfg, err := s.resolveConfig(req.Indexes)
	if err != nil {
		return nil, err
	}
	n := len(s.cfg.Caches)
	costs := make([]float64, n)
	errs := make([]error, n)
	core.Fan(n, s.cfg.Workers, func() func(int) {
		return func(i int) {
			costs[i], _, errs[i] = s.cfg.Caches[i].Cost(cfg)
		}
	})
	resp := &WhatIfResponse{BaseTotal: s.baseTotal, Queries: make([]QueryCost, n)}
	for i := 0; i < n; i++ {
		if errs[i] != nil {
			return nil, fmt.Errorf("pricing %s: %w", s.cfg.Queries[i].Name, errs[i])
		}
		resp.Queries[i] = QueryCost{Name: s.cfg.Queries[i].Name, Base: s.base[i], Cost: costs[i]}
		//pinum:costarith-ok workload objective Σ wᵢ·cᵢ mirroring advisor.workloadCost; pinned by TestWhatIfMatchesInProcess
		resp.Total += s.weights[i] * costs[i]
	}
	if resp.BaseTotal > 0 {
		resp.Speedup = math.Max(0, 1-resp.Total/resp.BaseTotal)
	}
	return resp, nil
}

func (s *Server) handleWhatIf(r *http.Request) (any, error) {
	var req WhatIfRequest
	if err := decodeBody(r, &req); err != nil {
		return nil, err
	}
	return s.WhatIf(&req)
}

// -------------------------------------------------------- recommend ----

// RecommendRequest runs the index advisor under a space budget.
type RecommendRequest struct {
	BudgetGB   float64 `json:"budget_gb"`
	MaxIndexes int     `json:"max_indexes"`
}

// RecommendResponse reports the advisor's suggestion.
type RecommendResponse struct {
	Chosen     []string    `json:"chosen"`
	TotalBytes int64       `json:"total_bytes"`
	BaseCost   float64     `json:"base_cost"`
	FinalCost  float64     `json:"final_cost"`
	Speedup    float64     `json:"speedup"`
	Rounds     int         `json:"rounds"`
	Candidates int         `json:"candidates"`
	Queries    []QueryCost `json:"queries"`
	Engine     EngineStats `json:"engine"`
}

// EngineStats mirrors the cost engine's work counters in the response.
type EngineStats struct {
	CandidateEvals int64 `json:"candidate_evals"`
	QueryEvals     int64 `json:"query_evals"`
	QuerySkips     int64 `json:"query_skips"`
}

// Recommend runs one greedy advisor search over the shared caches with
// request-local engine state. Results are identical to an in-process
// advisor.Run over the same workload, weights and budget.
func (s *Server) Recommend(req *RecommendRequest) (*RecommendResponse, error) {
	if req.BudgetGB <= 0 {
		return nil, badRequest("budget_gb must be positive, got %g", req.BudgetGB)
	}
	ad := advisor.New(s.cfg.Catalog, s.cfg.Stats, storage.BytesForGB(req.BudgetGB))
	ad.Parallelism = s.cfg.Workers
	ad.MaxIndexes = req.MaxIndexes
	for i, q := range s.cfg.Queries {
		if err := ad.AddPrepared(q, s.cfg.Analyses[i], s.cfg.Caches[i], s.weights[i]); err != nil {
			return nil, err
		}
	}
	for _, ix := range s.candidates {
		ad.AddCandidate(ix)
	}
	res, err := ad.Run()
	if err != nil {
		return nil, err
	}
	return RecommendResponseFrom(res, s.cfg.Queries), nil
}

// RecommendResponseFrom shapes an advisor result for the wire. The CLI's
// verify mode shapes an independent in-process Advisor.Run result through
// the same function, so a served response and its ground truth can be
// compared byte for byte.
func RecommendResponseFrom(res *advisor.Result, queries []*query.Query) *RecommendResponse {
	resp := &RecommendResponse{
		TotalBytes: res.TotalBytes,
		BaseCost:   res.BaseCost,
		FinalCost:  res.FinalCost,
		Speedup:    res.Speedup(),
		Rounds:     res.Rounds,
		Candidates: res.CandidateCount,
		Engine: EngineStats{
			CandidateEvals: res.Engine.CandidateEvals,
			QueryEvals:     res.Engine.QueryEvals,
			QuerySkips:     res.Engine.QuerySkips,
		},
	}
	for _, ix := range res.Chosen {
		resp.Chosen = append(resp.Chosen, ix.Key())
	}
	for _, q := range queries {
		pq := res.PerQuery[q.Name]
		resp.Queries = append(resp.Queries, QueryCost{Name: q.Name, Base: pq[0], Cost: pq[1]})
	}
	return resp
}

func (s *Server) handleRecommend(r *http.Request) (any, error) {
	var req RecommendRequest
	if err := decodeBody(r, &req); err != nil {
		return nil, err
	}
	return s.Recommend(&req)
}

// ---------------------------------------------------------- explain ----

// ExplainRequest optimizes one query under a configuration.
type ExplainRequest struct {
	SQL     string      `json:"sql"`
	Indexes []IndexSpec `json:"indexes"`
}

// ExplainLeaf is one relation's access requirement in the chosen plan's
// INUM decomposition.
type ExplainLeaf struct {
	Rel        int     `json:"rel"`
	Table      string  `json:"table"`
	Mode       string  `json:"mode"`
	Col        string  `json:"col,omitempty"`
	Coef       float64 `json:"coef"`
	AccessCost float64 `json:"access_cost"`
}

// ExplainResponse is the plan, its cost, and its decomposition.
type ExplainResponse struct {
	Cost     float64       `json:"cost"`
	Internal float64       `json:"internal"`
	Plan     string        `json:"plan"`
	Leaves   []ExplainLeaf `json:"leaves"`
}

// Explain runs one conventional optimizer call for an ad-hoc query — the
// only endpoint that plans, since arbitrary SQL has no prebuilt cache —
// and reports the plan tree plus its internal/leaf cost decomposition.
// All state is request-local except the read-only catalog and the index
// interner.
func (s *Server) Explain(req *ExplainRequest) (*ExplainResponse, error) {
	if req.SQL == "" {
		return nil, badRequest("sql is required")
	}
	stmt, err := sql.Parse(req.SQL)
	if err != nil {
		return nil, badRequest("%v", err)
	}
	q, err := sql.Bind(stmt, s.cfg.Catalog, "adhoc")
	if err != nil {
		return nil, badRequest("%v", err)
	}
	cfg, err := s.resolveConfig(req.Indexes)
	if err != nil {
		return nil, err
	}
	a, err := optimizer.NewAnalysis(q, s.cfg.Stats, optimizer.DefaultCostParams())
	if err != nil {
		return nil, badRequest("%v", err)
	}
	res, err := optimizer.Optimize(a, cfg, optimizer.Options{EnableNestLoop: true})
	if err != nil {
		return nil, err
	}
	sum := optimizer.Summarize(res.Best, len(q.Rels))
	resp := &ExplainResponse{
		Cost:     res.Best.Cost,
		Internal: sum.Internal,
		Plan:     optimizer.Explain(res.Best, q),
	}
	for rel, lr := range sum.Leaves {
		ac, ok := a.AccessCost(rel, lr, cfg)
		if !ok {
			ac = math.Inf(1)
		}
		resp.Leaves = append(resp.Leaves, ExplainLeaf{
			Rel:        rel,
			Table:      q.Rels[rel].Table.Name,
			Mode:       lr.Mode.String(),
			Col:        lr.Col,
			Coef:       lr.Coef,
			AccessCost: ac,
		})
	}
	return resp, nil
}

func (s *Server) handleExplain(r *http.Request) (any, error) {
	var req ExplainRequest
	if err := decodeBody(r, &req); err != nil {
		return nil, err
	}
	return s.Explain(&req)
}

// ------------------------------------------------- health / metrics ----

func (s *Server) handleHealth(*http.Request) (any, error) {
	entries, slim := 0, true
	for _, c := range s.cfg.Caches {
		entries += len(c.Plans)
		slim = slim && c.Slim()
	}
	return map[string]any{
		"status":               "ok",
		"queries":              len(s.cfg.Queries),
		"entries":              entries,
		"slim":                 slim,
		"candidates":           len(s.candidates),
		"candidate_gen_errors": len(s.genErrors),
	}, nil
}

// EndpointStats is one endpoint's counters as /statz reports them.
type EndpointStats struct {
	Requests int64   `json:"requests"`
	Errors   int64   `json:"errors"`
	AvgMs    float64 `json:"avg_ms"`
	MaxMs    float64 `json:"max_ms"`
}

func (s *Server) handleStatz(*http.Request) (any, error) {
	eps := make(map[string]EndpointStats, len(s.metrics))
	names := make([]string, 0, len(s.metrics))
	for name := range s.metrics {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		m := s.metrics[name]
		n := m.requests.Load()
		st := EndpointStats{
			Requests: n,
			Errors:   m.errors.Load(),
			MaxMs:    float64(m.maxNs.Load()) / 1e6,
		}
		if n > 0 {
			st.AvgMs = float64(m.totalNs.Load()) / float64(n) / 1e6
		}
		eps[name] = st
	}
	out := map[string]any{
		"uptime_seconds":   time.Since(s.start).Seconds(),
		"interned_indexes": s.internedCount(),
		"endpoints":        eps,
	}
	if len(s.genErrors) > 0 {
		out["candidate_gen_errors"] = s.genErrors
	}
	return out, nil
}

func (s *Server) internedCount() int {
	s.ixMu.Lock()
	defer s.ixMu.Unlock()
	return s.ws.Count()
}

// EncodeJSON renders a response value exactly as the HTTP handlers do
// (two-space indent, trailing newline), so out-of-band recomputations can
// be byte-compared against a served body.
func EncodeJSON(v any) ([]byte, error) {
	var buf bytes.Buffer
	enc := json.NewEncoder(&buf)
	enc.SetIndent("", "  ")
	if err := enc.Encode(v); err != nil {
		return nil, err
	}
	return buf.Bytes(), nil
}

func decodeBody(r *http.Request, v any) error {
	dec := json.NewDecoder(r.Body)
	dec.DisallowUnknownFields()
	if err := dec.Decode(v); err != nil {
		return badRequest("bad request body: %v", err)
	}
	return nil
}

// ------------------------------------------------------- snapshots -----

// LoadOrBuild returns slim plan caches for the workload. When
// snapshotPath names a loadable snapshot carrying the environment's
// fingerprint, the caches are reconstructed from it and buildReason is
// "". Otherwise — no path configured, file missing, or the snapshot is
// corrupt, stale, or mismatched against the workload — the caches are
// built with two optimizer calls per query and, when snapshotPath is
// non-empty, saved back (atomically overwriting a rejected file), with
// buildReason saying why the build happened; a rejected snapshot never
// serves stale costs, and never wedges the daemon either.
func LoadOrBuild(cat *catalog.Catalog, st *stats.Store, queries []*query.Query,
	analyses []*optimizer.Analysis, snapshotPath string, workers int) (caches []*inum.Cache, buildReason string, err error) {

	fp := plancache.Fingerprint(cat, st, optimizer.DefaultCostParams())
	buildReason = "no snapshot configured"
	if snapshotPath != "" {
		if _, statErr := os.Stat(snapshotPath); statErr != nil {
			buildReason = "snapshot not found"
		} else if snap, loadErr := plancache.Load(snapshotPath, fp); loadErr != nil {
			buildReason = fmt.Sprintf("snapshot rejected: %v", loadErr)
		} else if caches, err = plancache.BuildCaches(snap, queries, analyses); err != nil {
			buildReason = fmt.Sprintf("snapshot rejected: %v", err)
		} else {
			return caches, "", nil
		}
	}
	caches, err = core.BuildAllSlim(analyses, cat, workers)
	if err != nil {
		return nil, "", err
	}
	if snapshotPath != "" {
		if err := plancache.Save(snapshotPath, plancache.NewSnapshot(fp, caches)); err != nil {
			return nil, "", err
		}
	}
	return caches, buildReason, nil
}

package serve

// Hot reload: this file owns the snapshot-set lifecycle — building an
// immutable set from a (re)loaded environment, deciding how much of the
// previous set can be reused, publishing the result with one atomic swap,
// and retrying with capped backoff when a build fails. Every piece of it
// is a tenant method: each tenant reloads, fails and heals on its own
// state machine. The request path lives in serve.go and only ever
// touches a set it loaded once.

import (
	"errors"
	"fmt"
	"math"
	"net/http"
	"os"
	"sync"
	"time"

	"github.com/pinumdb/pinum/internal/advisor"
	"github.com/pinumdb/pinum/internal/catalog"
	"github.com/pinumdb/pinum/internal/core"
	"github.com/pinumdb/pinum/internal/faultpoint"
	"github.com/pinumdb/pinum/internal/inum"
	"github.com/pinumdb/pinum/internal/optimizer"
	"github.com/pinumdb/pinum/internal/plancache"
	"github.com/pinumdb/pinum/internal/query"
	"github.com/pinumdb/pinum/internal/stats"
	"github.com/pinumdb/pinum/internal/whatif"
)

// Environment is one consistent serving world: the catalog, statistics,
// analysed workload and weights a snapshot set is built from. A Loader
// re-derives it on every reload so statistics drift is picked up; static
// servers build one from their Config and keep it for life.
type Environment struct {
	Catalog  *catalog.Catalog
	Stats    *stats.Store
	Queries  []*query.Query
	Analyses []*optimizer.Analysis
	// Weights are the workload frequency weights (nil = all 1).
	Weights []float64
}

func (e *Environment) validate() error {
	if e == nil || e.Catalog == nil || e.Stats == nil {
		return errors.New("serve: environment needs a catalog and statistics")
	}
	if len(e.Queries) == 0 {
		return errors.New("serve: no queries")
	}
	if len(e.Analyses) != len(e.Queries) {
		return fmt.Errorf("serve: %d queries need matching analyses (%d)", len(e.Queries), len(e.Analyses))
	}
	return nil
}

// Snapshot-set provenance, reported in /healthz and /statz.
const (
	sourceStartup     = "startup"
	sourceDisk        = "disk-snapshot"
	sourceRebuilt     = "rebuilt"
	sourceIncremental = "incremental"
)

// snapshotSet bundles everything a request reads into one immutable
// world: the environment, the plan caches, the precomputed base costs,
// the advisor candidate set, and the what-if index interner. Sets are
// shared through each tenant's cur pointer and must only be handled by
// pointer (the embedded mutex makes go vet reject copies); after
// construction nothing in a set changes except the interner behind its
// own mutex, so the atomic pointer flip in tenant.swap is the entire
// synchronization story of a reload — and of an eviction, which stores
// nil and lets in-flight requests finish on the set they hold.
type snapshotSet struct {
	env     *Environment
	caches  []*inum.Cache
	weights []float64
	// base holds the per-query costs under the empty configuration
	// (they are configuration-independent, so one computation serves
	// every request on this set).
	base      []float64
	baseTotal float64

	// candidates is the advisor candidate set, generated once per set so
	// every /recommend request prices the same stable descriptors.
	// genErrors records candidates that failed to generate — they are
	// absent from every /recommend answer, so /healthz counts them and
	// /statz lists them rather than leaving degraded recommendations
	// indistinguishable from correct ones.
	candidates []*catalog.Index
	genErrors  []string

	// fingerprint identifies the (catalog, statistics, cost-parameter)
	// environment; tableFPs is its per-table refinement, used by the
	// next reload to reuse caches of queries whose tables didn't move.
	fingerprint uint64
	tableFPs    map[string]uint64
	queryIdx    map[string]int

	// source/reused/rebuilt record how this set came to be.
	source  string
	reused  int
	rebuilt int

	// ixMu guards the set's what-if index interner. The interner is
	// per-set so a descriptor resolved on this set stays pointer-stable
	// against its caches' leaf memos for the set's whole lifetime.
	ixMu sync.Mutex
	ws   *whatif.Session
}

// newSnapshotSet assembles the immutable request-side state over built
// caches: weights, base costs, the candidate set and a fresh interner.
func newSnapshotSet(env *Environment, caches []*inum.Cache, source string) (*snapshotSet, error) {
	if err := env.validate(); err != nil {
		return nil, err
	}
	if len(caches) != len(env.Queries) {
		return nil, fmt.Errorf("serve: %d queries need matching caches (%d)", len(env.Queries), len(caches))
	}
	params := optimizer.DefaultCostParams()
	set := &snapshotSet{
		env:         env,
		caches:      caches,
		weights:     normalizeWeights(env.Weights, len(env.Queries)),
		base:        make([]float64, len(caches)),
		fingerprint: plancache.Fingerprint(env.Catalog, env.Stats, params),
		tableFPs:    plancache.TableFingerprints(env.Catalog, env.Stats, params),
		queryIdx:    make(map[string]int, len(env.Queries)),
		source:      source,
		ws:          whatif.NewSession(env.Catalog),
	}
	for i, q := range env.Queries {
		set.queryIdx[q.Name] = i
	}
	for i, c := range caches {
		cost, _, err := c.Cost(&query.Config{})
		if err != nil {
			return nil, fmt.Errorf("serve: base cost for %s: %w", env.Queries[i].Name, err)
		}
		set.base[i] = cost
		//pinum:costarith-ok workload objective Σ wᵢ·cᵢ mirroring advisor.workloadCost; pinned by TestWhatIfMatchesInProcess
		set.baseTotal += set.weights[i] * cost
	}

	// Generate the candidate set once through a throwaway advisor so
	// /recommend requests share descriptors (and the caches' leaf memo
	// stays bounded by the candidate count, not the request count).
	gen := advisor.New(env.Catalog, env.Stats, 0)
	for i, q := range env.Queries {
		if err := gen.AddPrepared(q, env.Analyses[i], caches[i], set.weights[i]); err != nil {
			return nil, err
		}
	}
	gen.GenerateCandidates()
	set.candidates = gen.Candidates()
	for _, err := range gen.GenerationErrors() {
		set.genErrors = append(set.genErrors, err.Error())
	}
	return set, nil
}

func normalizeWeights(weights []float64, n int) []float64 {
	out := make([]float64, n)
	for i := range out {
		w := 1.0
		if i < len(weights) && weights[i] > 0 {
			w = weights[i]
		}
		out[i] = w
	}
	return out
}

// maxInternedIndexes caps each set's interner (and therefore the leaf
// memos keyed by its descriptors): a client enumerating the factorially
// many valid column permutations must hit a wall, not the OOM killer.
const maxInternedIndexes = 1 << 17

// resolveConfig interns the requested index specs into a configuration.
// The set's session deduplicates by (table, columns), so the descriptor a
// repeated spec resolves to is pointer-stable across requests on this set
// and the caches' leaf memo serves it without recomputation. At the
// interner cap, previously-seen specs still resolve; new ones are
// refused.
func (set *snapshotSet) resolveConfig(specs []IndexSpec) (*query.Config, error) {
	cfg := &query.Config{}
	set.ixMu.Lock()
	defer set.ixMu.Unlock()
	for _, spec := range specs {
		ix := set.ws.Lookup(spec.Table, spec.Columns...)
		if ix == nil {
			if set.ws.Count() >= maxInternedIndexes {
				return nil, &httpError{
					code: http.StatusServiceUnavailable,
					err: fmt.Errorf("what-if index interner is full (%d distinct indexes); reload the snapshot to clear it",
						maxInternedIndexes),
				}
			}
			var err error
			if ix, err = set.ws.CreateIndex(spec.Table, spec.Columns...); err != nil {
				return nil, badRequest("%v", err)
			}
		}
		cfg.Indexes = append(cfg.Indexes, ix)
	}
	return cfg, nil
}

// resolveWeights applies a request's per-query weight overrides on top of
// the set's workload weights. Overrides are validated loudly: a name not
// in the workload, a non-positive or non-finite weight, and — because
// last-wins would silently misprice the workload — a duplicated query
// name are each a 400 naming the offender. Without overrides the set's
// shared slice is returned untouched, keeping the default-weight path
// byte-identical to the pre-override server.
func (set *snapshotSet) resolveWeights(overrides []WeightOverride) ([]float64, bool, error) {
	if len(overrides) == 0 {
		return set.weights, false, nil
	}
	out := make([]float64, len(set.weights))
	copy(out, set.weights)
	seen := make(map[string]bool, len(overrides))
	for _, o := range overrides {
		if seen[o.Name] {
			return nil, false, badRequest("weights: duplicate query %q (each query may be reweighted at most once)", o.Name)
		}
		seen[o.Name] = true
		i, ok := set.queryIdx[o.Name]
		if !ok {
			return nil, false, badRequest("weights: unknown query %q", o.Name)
		}
		if !(o.Weight > 0) || math.IsInf(o.Weight, 1) {
			return nil, false, badRequest("weights: query %q needs a positive finite weight, got %v", o.Name, o.Weight)
		}
		out[i] = o.Weight
	}
	return out, true, nil
}

func (set *snapshotSet) internedCount() int {
	set.ixMu.Lock()
	defer set.ixMu.Unlock()
	return set.ws.Count()
}

// --------------------------------------------------------- reloads -----

// ReloadOutcome is one reload's summary, returned by ReloadNow and by
// POST /reload?wait=1.
type ReloadOutcome struct {
	// Tenant is the tenant the reload targeted.
	Tenant string `json:"tenant"`
	// Result is "swapped", "skipped" (environment fingerprint and
	// workload unchanged) or "failed".
	Result         string `json:"result"`
	Fingerprint    string `json:"fingerprint,omitempty"`
	SnapshotSource string `json:"snapshot_source,omitempty"`
	QueriesReused  int    `json:"queries_reused"`
	QueriesRebuilt int    `json:"queries_rebuilt"`
}

// ReloadNow synchronously reloads the default tenant — the whole server
// in single-tenant mode. See ReloadTenant for the per-tenant form.
func (s *Server) ReloadNow(force bool) (ReloadOutcome, error) {
	return s.defaultTenant().reloadNow(force)
}

// ReloadTenant synchronously reloads one tenant by name. Reloading a
// cold tenant loads it (and counts against the residency cap like any
// other load).
func (s *Server) ReloadTenant(name string, force bool) (ReloadOutcome, error) {
	t, err := s.tenantByName(name)
	if err != nil {
		return ReloadOutcome{Tenant: name, Result: "failed"}, err
	}
	return t.reloadNow(force)
}

// reloadNow synchronously builds a fresh snapshot set for this tenant
// and swaps it in. Reloads are serialized per tenant; requests are never
// blocked — they keep serving the current set until the swap. On any
// failure (loader error, rebuild error, panic) the current set stays
// published, the tenant is marked degraded, and a retry is scheduled
// with exponential backoff capped at RetryMax; the first success clears
// the degradation. A reload whose environment fingerprint and workload
// match the live set is skipped (force bypasses the skip, the disk
// snapshot and per-query reuse, re-optimizing everything).
func (t *tenant) reloadNow(force bool) (ReloadOutcome, error) {
	s := t.srv
	opID := s.nextTraceID()
	t.reloadMu.Lock()
	defer t.reloadMu.Unlock()
	set, skipped, err := t.buildSetContained(force)
	if err != nil {
		t.reloadsFailed.Inc()
		if !t.degraded.Swap(true) {
			s.recordEvent("degraded", t.name, opID, err.Error())
		}
		t.lastReloadErr.Store(err.Error())
		t.scheduleRetry()
		s.recordEvent("reload-failed", t.name, opID, err.Error())
		s.logf("tenant %s: reload failed (previous snapshot keeps serving): %v", t.name, err)
		return ReloadOutcome{Tenant: t.name, Result: "failed"}, err
	}
	t.degraded.Store(false)
	t.lastReloadErr.Store("")
	t.clearRetry()
	if skipped {
		t.reloadsSkipped.Inc()
		cur := t.current()
		s.recordEvent("reload-skipped", t.name, opID,
			fmt.Sprintf("fingerprint %016x unchanged", cur.fingerprint))
		s.logf("tenant %s: reload skipped: fingerprint %016x unchanged", t.name, cur.fingerprint)
		return ReloadOutcome{
			Tenant:         t.name,
			Result:         "skipped",
			Fingerprint:    fmt.Sprintf("%016x", cur.fingerprint),
			SnapshotSource: cur.source,
		}, nil
	}
	t.publish(set)
	t.reloadsOK.Inc()
	t.saveSnapshot(set)
	s.recordEvent("reload", t.name, opID,
		fmt.Sprintf("fingerprint=%016x source=%s reused=%d rebuilt=%d",
			set.fingerprint, set.source, set.reused, set.rebuilt))
	s.logf("tenant %s: reload swapped: fingerprint=%016x source=%s reused=%d rebuilt=%d",
		t.name, set.fingerprint, set.source, set.reused, set.rebuilt)
	return ReloadOutcome{
		Tenant:         t.name,
		Result:         "swapped",
		Fingerprint:    fmt.Sprintf("%016x", set.fingerprint),
		SnapshotSource: set.source,
		QueriesReused:  set.reused,
		QueriesRebuilt: set.rebuilt,
	}, nil
}

// saveSnapshot persists a freshly rebuilt set's caches to the tenant's
// snapshot file so the next cold start (or post-eviction load) skips the
// optimizer. Best-effort: a failed save degrades the next load, not this
// server.
func (t *tenant) saveSnapshot(set *snapshotSet) {
	if t.snapshotPath == "" || set.source == sourceDisk {
		return
	}
	if serr := plancache.Save(t.snapshotPath, plancache.NewSnapshot(set.fingerprint, set.caches)); serr != nil {
		t.lastSaveErr.Store(serr.Error())
		t.srv.logf("tenant %s: snapshot save failed (serving unaffected): %v", t.name, serr)
	} else {
		t.lastSaveErr.Store("")
	}
}

// TriggerReload requests an asynchronous reload of every resident tenant
// (the SIGHUP path; single-tenant servers behave exactly as before).
// Triggers are coalesced per tenant: at most one reload runs and one
// more waits; beyond that the trigger reports false for that tenant and
// the pending reload covers it. Cold tenants are skipped — they rebuild
// from fresh statistics on their next request anyway.
func (s *Server) TriggerReload(force bool) bool {
	any := false
	for _, name := range s.tenantNames {
		t := s.tenants[name]
		if t.current() == nil {
			continue
		}
		if t.triggerReload(force) {
			any = true
		}
	}
	return any
}

// triggerReload requests an asynchronous reload of this tenant.
func (t *tenant) triggerReload(force bool) bool {
	select {
	case t.reloadQueue <- struct{}{}:
		go func() {
			defer func() { <-t.reloadQueue }()
			t.reloadNow(force)
		}()
		return true
	default:
		return false
	}
}

// buildSetContained runs buildSet with panic containment: a panicking
// loader or rebuild becomes a counted, retried reload failure — the
// serving process and its current snapshots are never at risk.
func (t *tenant) buildSetContained(force bool) (set *snapshotSet, skipped bool, err error) {
	defer func() {
		if p := recover(); p != nil {
			t.srv.panics.Inc()
			t.srv.recordEvent("panic", t.name, "", fmt.Sprintf("snapshot rebuild: %v", p))
			set, skipped, err = nil, false, fmt.Errorf("panic during snapshot rebuild: %v", p)
		}
	}()
	return t.buildSet(force)
}

// buildSet derives a fresh environment and builds its snapshot set,
// cheapest viable path first: skip when nothing changed, load the
// tenant's disk snapshot when it matches the new fingerprint, reuse the
// previous set's caches for queries whose tables' statistics didn't
// move, and re-optimize only the remainder.
func (t *tenant) buildSet(force bool) (*snapshotSet, bool, error) {
	s := t.srv
	if err := faultpoint.Hit("serve.rebuild"); err != nil {
		return nil, false, fmt.Errorf("rebuild: %w", err)
	}
	env := &Environment{
		Catalog:  s.cfg.Catalog,
		Stats:    s.cfg.Stats,
		Queries:  s.cfg.Queries,
		Analyses: s.cfg.Analyses,
		Weights:  s.cfg.Weights,
	}
	if t.loader != nil {
		var err error
		if env, err = t.loader(); err != nil {
			return nil, false, fmt.Errorf("loading environment: %w", err)
		}
	}
	if err := env.validate(); err != nil {
		return nil, false, err
	}
	params := optimizer.DefaultCostParams()
	fp := plancache.Fingerprint(env.Catalog, env.Stats, params)
	prev := t.current()

	if !force && prev != nil && fp == prev.fingerprint &&
		sameWorkload(prev.env, env) &&
		weightsEqual(prev.weights, normalizeWeights(env.Weights, len(env.Queries))) {
		return nil, true, nil
	}

	if !force && t.snapshotPath != "" {
		// A matching disk snapshot short-circuits all optimization. A
		// missing, stale or corrupt one is not a reload failure — the
		// rebuild below is the fallback, exactly like cold start.
		if snap, err := plancache.Load(t.snapshotPath, fp); err == nil {
			if caches, err := plancache.BuildCaches(snap, env.Queries, env.Analyses); err == nil {
				set, err := newSnapshotSet(env, caches, sourceDisk)
				if err != nil {
					return nil, false, err
				}
				return set, false, nil
			}
		}
	}

	n := len(env.Queries)
	tfps := plancache.TableFingerprints(env.Catalog, env.Stats, params)
	caches := make([]*inum.Cache, n)
	reused := 0
	var rebuild []int
	for i, q := range env.Queries {
		if !force && prev != nil && reusable(prev, q, tfps) {
			// Reconstructing a slim cache from the previous set's entries
			// is deterministic bit-for-bit, so a reused query's costs are
			// byte-identical before and after the swap.
			j := prev.queryIdx[q.Name]
			if c, err := plancache.ToCache(env.Analyses[i], plancache.FromCache(prev.caches[j])); err == nil {
				caches[i] = c
				reused++
				continue
			}
		}
		rebuild = append(rebuild, i)
	}
	if len(rebuild) > 0 {
		errs := make([]error, len(rebuild))
		core.Fan(len(rebuild), s.cfg.Workers, func() func(int) {
			ws := whatif.NewSession(env.Catalog)
			return func(k int) {
				caches[rebuild[k]], errs[k] = core.BuildSlim(env.Analyses[rebuild[k]], ws)
			}
		})
		for k, err := range errs {
			if err != nil {
				return nil, false, fmt.Errorf("rebuilding %s: %w", env.Queries[rebuild[k]].Name, err)
			}
		}
	}
	source := sourceRebuilt
	if reused > 0 {
		source = sourceIncremental
	}
	set, err := newSnapshotSet(env, caches, source)
	if err != nil {
		return nil, false, err
	}
	set.reused, set.rebuilt = reused, len(rebuild)
	return set, false, nil
}

// reusable reports whether the previous set's cache for q can serve
// unchanged: same query (name and SQL) and none of its referenced
// tables' statistics fingerprints moved.
func reusable(prev *snapshotSet, q *query.Query, tfps map[string]uint64) bool {
	j, ok := prev.queryIdx[q.Name]
	if !ok || prev.env.Queries[j].SQL != q.SQL {
		return false
	}
	for _, rel := range q.Rels {
		newFP, ok := tfps[rel.Table.Name]
		if !ok {
			return false
		}
		if oldFP, ok := prev.tableFPs[rel.Table.Name]; !ok || oldFP != newFP {
			return false
		}
	}
	return true
}

func sameWorkload(a, b *Environment) bool {
	if len(a.Queries) != len(b.Queries) {
		return false
	}
	for i := range a.Queries {
		if a.Queries[i].Name != b.Queries[i].Name || a.Queries[i].SQL != b.Queries[i].SQL {
			return false
		}
	}
	return true
}

func weightsEqual(a, b []float64) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// ----------------------------------------------------------- retry -----

// scheduleRetry arms the tenant's backoff timer after a failed reload:
// RetryMin doubling per consecutive failure, capped at RetryMax. The
// previous snapshot keeps serving the whole time.
func (t *tenant) scheduleRetry() {
	t.retryMu.Lock()
	defer t.retryMu.Unlock()
	if t.closed {
		return
	}
	t.retryAttempt++
	shift := t.retryAttempt - 1
	if shift > 20 {
		shift = 20
	}
	d := t.srv.cfg.RetryMin << shift
	if d <= 0 || d > t.srv.cfg.RetryMax {
		d = t.srv.cfg.RetryMax
	}
	t.nextRetryAt = time.Now().Add(d)
	if t.retryTimer != nil {
		t.retryTimer.Stop()
	}
	t.retryTimer = time.AfterFunc(d, t.retryFire)
}

func (t *tenant) retryFire() {
	t.retryMu.Lock()
	t.retryTimer = nil
	t.nextRetryAt = time.Time{}
	closed := t.closed
	t.retryMu.Unlock()
	if closed {
		return
	}
	t.reloadNow(false)
}

func (t *tenant) clearRetry() {
	t.retryMu.Lock()
	defer t.retryMu.Unlock()
	t.retryAttempt = 0
	t.nextRetryAt = time.Time{}
	if t.retryTimer != nil {
		t.retryTimer.Stop()
		t.retryTimer = nil
	}
}

// stopRetry permanently disarms the tenant's retry machinery (Close).
func (t *tenant) stopRetry() {
	t.retryMu.Lock()
	defer t.retryMu.Unlock()
	t.closed = true
	if t.retryTimer != nil {
		t.retryTimer.Stop()
		t.retryTimer = nil
	}
	t.nextRetryAt = time.Time{}
}

// handleReload serves POST /reload: ?tenant= (or the X-Pinum-Tenant
// header) picks the tenant, defaulting to the default tenant; ?wait=1
// runs synchronously; ?force=1 bypasses the skip and every reuse path.
func (s *Server) handleReload(r *http.Request) (any, error) {
	q := r.URL.Query()
	force := q.Get("force") == "1" || q.Get("force") == "true"
	t, err := s.resolveTenant(r, q.Get("tenant"))
	if err != nil {
		return nil, err
	}
	if q.Get("wait") == "1" || q.Get("wait") == "true" {
		out, err := t.reloadNow(force)
		if err != nil {
			return nil, err
		}
		return out, nil
	}
	if t.triggerReload(force) {
		return map[string]string{"tenant": t.name, "result": "triggered"}, nil
	}
	return map[string]string{"tenant": t.name, "result": "already-pending"}, nil
}

// ------------------------------------------------------- snapshots -----

// LoadOrBuild returns slim plan caches for the workload. When
// snapshotPath names a loadable snapshot carrying the environment's
// fingerprint, the caches are reconstructed from it and buildReason is
// "". Otherwise — no path configured, file missing, or the snapshot is
// corrupt, stale, or mismatched against the workload — the caches are
// built with two optimizer calls per query and, when snapshotPath is
// non-empty, saved back (atomically overwriting a rejected file), with
// buildReason saying why the build happened; a rejected snapshot never
// serves stale costs, and never wedges the daemon either.
func LoadOrBuild(cat *catalog.Catalog, st *stats.Store, queries []*query.Query,
	analyses []*optimizer.Analysis, snapshotPath string, workers int) (caches []*inum.Cache, buildReason string, err error) {

	fp := plancache.Fingerprint(cat, st, optimizer.DefaultCostParams())
	buildReason = "no snapshot configured"
	if snapshotPath != "" {
		if _, statErr := os.Stat(snapshotPath); statErr != nil {
			buildReason = "snapshot not found"
		} else if snap, loadErr := plancache.Load(snapshotPath, fp); loadErr != nil {
			buildReason = fmt.Sprintf("snapshot rejected: %v", loadErr)
		} else if caches, err = plancache.BuildCaches(snap, queries, analyses); err != nil {
			buildReason = fmt.Sprintf("snapshot rejected: %v", err)
		} else {
			return caches, "", nil
		}
	}
	caches, err = core.BuildAllSlim(analyses, cat, workers)
	if err != nil {
		return nil, "", err
	}
	if snapshotPath != "" {
		if err := plancache.Save(snapshotPath, plancache.NewSnapshot(fp, caches)); err != nil {
			return nil, "", err
		}
	}
	return caches, buildReason, nil
}

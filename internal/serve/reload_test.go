package serve

import (
	"bytes"
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"strings"
	"sync"
	"testing"
	"time"

	"github.com/pinumdb/pinum/internal/faultpoint"
	"github.com/pinumdb/pinum/internal/optimizer"
	"github.com/pinumdb/pinum/internal/plancache"
	"github.com/pinumdb/pinum/internal/query"
	"github.com/pinumdb/pinum/internal/workload"
)

// reloadFixture is a loader-mode server over the star workload. Every
// load rebuilds the environment from scratch (catalog, statistics,
// analyses), applying the fixture's row-count overrides — so a live
// snapshot set and a reload in progress share no mutable state, exactly
// like the daemon's loader.
type reloadFixture struct {
	mu        sync.Mutex
	overrides map[string]int64

	srv *Server
	ts  *httptest.Server
}

func newReloadFixture(t *testing.T, mutate func(*Config)) *reloadFixture {
	t.Helper()
	rf := &reloadFixture{overrides: make(map[string]int64)}
	cfg := Config{
		Loader:   rf.loadEnv,
		Workers:  4,
		RetryMin: 5 * time.Millisecond,
		RetryMax: 20 * time.Millisecond,
	}
	if mutate != nil {
		mutate(&cfg)
	}
	srv, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(srv.Close)
	rf.srv = srv
	rf.ts = httptest.NewServer(srv.Handler())
	t.Cleanup(rf.ts.Close)
	return rf
}

func (rf *reloadFixture) loadEnv() (*Environment, error) {
	star, err := workload.StarSchema(1.0)
	if err != nil {
		return nil, err
	}
	rf.mu.Lock()
	for name, rows := range rf.overrides {
		if err := star.SetTableRows(name, rows); err != nil {
			rf.mu.Unlock()
			return nil, err
		}
	}
	rf.mu.Unlock()
	queries, err := star.Queries(42)
	if err != nil {
		return nil, err
	}
	analyses := make([]*optimizer.Analysis, len(queries))
	for i, q := range queries {
		if analyses[i], err = optimizer.NewAnalysis(q, star.Stats, optimizer.DefaultCostParams()); err != nil {
			return nil, err
		}
	}
	return &Environment{
		Catalog:  star.Catalog,
		Stats:    star.Stats,
		Queries:  queries,
		Analyses: analyses,
	}, nil
}

func (rf *reloadFixture) setRows(t *testing.T, table string, rows int64) {
	t.Helper()
	rf.mu.Lock()
	rf.overrides[table] = rows
	rf.mu.Unlock()
}

// load performs the initial synchronous load and fails the test on error.
func (rf *reloadFixture) load(t *testing.T) ReloadOutcome {
	t.Helper()
	out, err := rf.srv.ReloadNow(false)
	if err != nil {
		t.Fatal(err)
	}
	return out
}

// do issues one request and returns the raw status and body, so callers
// can compare served bytes exactly.
func (rf *reloadFixture) do(t *testing.T, method, path string, body any) (int, []byte) {
	t.Helper()
	var rd io.Reader
	if body != nil {
		data, err := json.Marshal(body)
		if err != nil {
			t.Fatal(err)
		}
		rd = bytes.NewReader(data)
	}
	req, err := http.NewRequest(method, rf.ts.URL+path, rd)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	b, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return resp.StatusCode, b
}

// whatIfProbe is the fixed request every reload test prices: repeated
// answers must be byte-identical across snapshot swaps that did not move
// the referenced statistics.
var whatIfProbe = WhatIfRequest{Indexes: []IndexSpec{
	{Table: "fact", Columns: []string{"a1", "m1"}},
	{Table: "dim1_1", Columns: []string{"a1"}},
}}

// starQueries regenerates the served workload deterministically so tests
// can inspect which tables each query references.
func starQueries(t *testing.T) []*query.Query {
	t.Helper()
	star, err := workload.StarSchema(1.0)
	if err != nil {
		t.Fatal(err)
	}
	queries, err := star.Queries(42)
	if err != nil {
		t.Fatal(err)
	}
	return queries
}

// splitTable returns a dimension referenced by some but not all of the
// workload's queries, so drifting its statistics forces a genuinely
// incremental reload.
func splitTable(t *testing.T, queries []*query.Query) string {
	t.Helper()
	refs := make(map[string]int)
	for _, q := range queries {
		seen := make(map[string]bool)
		for _, rel := range q.Rels {
			seen[rel.Table.Name] = true
		}
		for name := range seen {
			refs[name]++
		}
	}
	names := make([]string, 0, len(refs))
	for name, n := range refs {
		if name != "fact" && n > 0 && n < len(queries) {
			names = append(names, name)
		}
	}
	if len(names) == 0 {
		t.Fatal("no partially-referenced dimension in the workload")
	}
	sort.Strings(names)
	return names[0]
}

// TestReloadUnderTraffic is the tentpole drill: force full rebuilds while
// concurrent clients hammer /whatif, and require every single response —
// before, during and after each swap — to be byte-identical to the
// baseline, since the statistics never moved. Run under -race this also
// proves the swap publishes without data races.
func TestReloadUnderTraffic(t *testing.T) {
	rf := newReloadFixture(t, nil)
	rf.load(t)
	code, baseline := rf.do(t, http.MethodPost, "/whatif", whatIfProbe)
	if code != http.StatusOK {
		t.Fatalf("baseline /whatif: %d %s", code, baseline)
	}

	const clients = 8
	const reloads = 4
	done := make(chan struct{})
	var wg sync.WaitGroup
	errCh := make(chan string, clients)
	for c := 0; c < clients; c++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				select {
				case <-done:
					return
				default:
				}
				code, body := rf.do(t, http.MethodPost, "/whatif", whatIfProbe)
				if code != http.StatusOK || !bytes.Equal(body, baseline) {
					select {
					case errCh <- string(body):
					default:
					}
					return
				}
			}
		}()
	}
	for i := 0; i < reloads; i++ {
		out, err := rf.srv.ReloadNow(true)
		if err != nil {
			t.Errorf("reload %d: %v", i, err)
		} else if out.Result != "swapped" {
			t.Errorf("reload %d: result %q, want swapped", i, out.Result)
		}
	}
	close(done)
	wg.Wait()
	select {
	case body := <-errCh:
		t.Fatalf("served response diverged from baseline during reloads:\n%s", body)
	default:
	}
	if got := rf.srv.defaultTenant().reloadsOK.Value(); got != reloads+1 {
		t.Fatalf("completed reloads = %d, want %d", got, reloads+1)
	}
}

// TestReloadSkipsWhenUnchanged pins the no-op path: same statistics, same
// workload → the reload is skipped and the live set (and its
// fingerprint) stays.
func TestReloadSkipsWhenUnchanged(t *testing.T) {
	rf := newReloadFixture(t, nil)
	first := rf.load(t)
	out, err := rf.srv.ReloadNow(false)
	if err != nil {
		t.Fatal(err)
	}
	if out.Result != "skipped" {
		t.Fatalf("unchanged reload: result %q, want skipped", out.Result)
	}
	if out.Fingerprint != first.Fingerprint {
		t.Fatalf("skip changed fingerprint: %s -> %s", first.Fingerprint, out.Fingerprint)
	}
	if got := rf.srv.defaultTenant().reloadsSkipped.Value(); got != 1 {
		t.Fatalf("skipped counter = %d, want 1", got)
	}
}

// TestReloadPicksUpStatsDrift drifts one dimension's statistics and
// requires the reload to swap a new fingerprint, re-optimize only the
// queries that reference the dimension, and keep every other query's
// costs bit-identical.
func TestReloadPicksUpStatsDrift(t *testing.T) {
	rf := newReloadFixture(t, nil)
	first := rf.load(t)
	queries := starQueries(t)
	dim := splitTable(t, queries)

	var before WhatIfResponse
	code, beforeBody := rf.do(t, http.MethodPost, "/whatif", whatIfProbe)
	if code != http.StatusOK {
		t.Fatalf("/whatif: %d %s", code, beforeBody)
	}
	if err := json.Unmarshal(beforeBody, &before); err != nil {
		t.Fatal(err)
	}

	rf.setRows(t, dim, 1_234_567)
	out, err := rf.srv.ReloadNow(false)
	if err != nil {
		t.Fatal(err)
	}
	if out.Result != "swapped" {
		t.Fatalf("drift reload: result %q, want swapped", out.Result)
	}
	if out.Fingerprint == first.Fingerprint {
		t.Fatal("statistics drift did not move the fingerprint")
	}
	if out.SnapshotSource != sourceIncremental {
		t.Fatalf("snapshot source %q, want %q", out.SnapshotSource, sourceIncremental)
	}
	if out.QueriesReused == 0 || out.QueriesRebuilt == 0 {
		t.Fatalf("reused=%d rebuilt=%d, want both nonzero", out.QueriesReused, out.QueriesRebuilt)
	}
	if out.QueriesReused+out.QueriesRebuilt != len(queries) {
		t.Fatalf("reused+rebuilt = %d, want %d", out.QueriesReused+out.QueriesRebuilt, len(queries))
	}

	var after WhatIfResponse
	code, afterBody := rf.do(t, http.MethodPost, "/whatif", whatIfProbe)
	if code != http.StatusOK {
		t.Fatalf("/whatif after reload: %d %s", code, afterBody)
	}
	if err := json.Unmarshal(afterBody, &after); err != nil {
		t.Fatal(err)
	}
	touches := func(q *query.Query) bool {
		for _, rel := range q.Rels {
			if rel.Table.Name == dim {
				return true
			}
		}
		return false
	}
	for i, q := range queries {
		if touches(q) {
			continue
		}
		if before.Queries[i].Cost != after.Queries[i].Cost || before.Queries[i].Base != after.Queries[i].Base {
			t.Errorf("query %s does not reference %s but its cost moved: %v -> %v",
				q.Name, dim, before.Queries[i], after.Queries[i])
		}
	}
}

// TestReloadFailureKeepsServing pins degraded mode: a failing rebuild
// leaves the old set answering byte-identically, surfaces the error in
// /healthz and /statz, and the first healthy reload clears it.
func TestReloadFailureKeepsServing(t *testing.T) {
	rf := newReloadFixture(t, nil)
	rf.load(t)
	t.Cleanup(faultpoint.Reset)
	_, baseline := rf.do(t, http.MethodPost, "/whatif", whatIfProbe)

	if err := faultpoint.Set("serve.rebuild", "error"); err != nil {
		t.Fatal(err)
	}
	code, body := rf.do(t, http.MethodPost, "/reload?wait=1&force=1", nil)
	if code != http.StatusInternalServerError {
		t.Fatalf("failing reload returned %d %s, want 500", code, body)
	}

	code, body = rf.do(t, http.MethodPost, "/whatif", whatIfProbe)
	if code != http.StatusOK || !bytes.Equal(body, baseline) {
		t.Fatalf("degraded server changed its answers: %d %s", code, body)
	}
	code, body = rf.do(t, http.MethodGet, "/healthz", nil)
	if code != http.StatusOK {
		t.Fatalf("/healthz while degraded: %d", code)
	}
	var health map[string]any
	if err := json.Unmarshal(body, &health); err != nil {
		t.Fatal(err)
	}
	if health["status"] != "degraded" {
		t.Fatalf("health status %v, want degraded", health["status"])
	}
	if msg, _ := health["last_reload_error"].(string); !strings.Contains(msg, "injected failure") {
		t.Fatalf("last_reload_error = %q, want the injected fault", msg)
	}
	if code, _ = rf.do(t, http.MethodGet, "/readyz", nil); code != http.StatusOK {
		t.Fatalf("/readyz while degraded (non-strict): %d, want 200", code)
	}

	faultpoint.Clear("serve.rebuild")
	out, err := rf.srv.ReloadNow(true)
	if err != nil || out.Result != "swapped" {
		t.Fatalf("healed reload: %+v, %v", out, err)
	}
	code, body = rf.do(t, http.MethodGet, "/healthz", nil)
	if err := json.Unmarshal(body, &health); err != nil {
		t.Fatal(err)
	}
	if code != http.StatusOK || health["status"] != "ok" {
		t.Fatalf("health after heal: %d %v", code, health["status"])
	}
}

// TestFailedReloadRetriesAutomatically drills the backoff loop: the
// fault heals after two hits and the retry timer must converge back to a
// healthy server without any further trigger.
func TestFailedReloadRetriesAutomatically(t *testing.T) {
	rf := newReloadFixture(t, nil)
	rf.load(t)
	t.Cleanup(faultpoint.Reset)
	if err := faultpoint.Set("serve.rebuild", "error:2"); err != nil {
		t.Fatal(err)
	}
	if _, err := rf.srv.ReloadNow(true); err == nil {
		t.Fatal("first reload should fail")
	}
	deadline := time.Now().Add(5 * time.Second)
	for rf.srv.defaultTenant().degraded.Load() {
		if time.Now().After(deadline) {
			t.Fatal("server never recovered via retry")
		}
		time.Sleep(5 * time.Millisecond)
	}
	if hits := faultpoint.Count("serve.rebuild"); hits < 3 {
		t.Fatalf("rebuild attempted %d times, want >= 3 (two failures + recovery)", hits)
	}
}

// TestReloadPanicContained pins the worst rebuild failure: a panic in
// the loader/rebuild path becomes a counted reload error, not a crash.
func TestReloadPanicContained(t *testing.T) {
	rf := newReloadFixture(t, nil)
	rf.load(t)
	t.Cleanup(faultpoint.Reset)
	_, baseline := rf.do(t, http.MethodPost, "/whatif", whatIfProbe)

	if err := faultpoint.Set("serve.rebuild", "panic"); err != nil {
		t.Fatal(err)
	}
	_, err := rf.srv.ReloadNow(true)
	if err == nil || !strings.Contains(err.Error(), "panic during snapshot rebuild") {
		t.Fatalf("panicking reload returned %v, want contained panic error", err)
	}
	if got := rf.srv.panics.Value(); got != 1 {
		t.Fatalf("panic counter = %d, want 1", got)
	}
	code, body := rf.do(t, http.MethodPost, "/whatif", whatIfProbe)
	if code != http.StatusOK || !bytes.Equal(body, baseline) {
		t.Fatalf("server unusable after contained panic: %d", code)
	}
	faultpoint.Clear("serve.rebuild")
	if out, err := rf.srv.ReloadNow(true); err != nil || out.Result != "swapped" {
		t.Fatalf("reload after heal: %+v, %v", out, err)
	}
}

// TestReloadSurvivesCorruptSnapshot covers the snapshot-file corruption
// taxonomy during reload: a stale fingerprint and an arbitrarily
// truncated or garbage file are each silently bypassed — the reload
// rebuilds from the optimizer, serving never stops, and the rewritten
// snapshot is loadable again.
func TestReloadSurvivesCorruptSnapshot(t *testing.T) {
	snapPath := filepath.Join(t.TempDir(), "star.pcache")
	rf := newReloadFixture(t, func(cfg *Config) { cfg.SnapshotPath = snapPath })
	first := rf.load(t)
	if _, err := os.Stat(snapPath); err != nil {
		t.Fatalf("first load did not persist a snapshot: %v", err)
	}

	// Stale fingerprint: the on-disk snapshot is valid but belongs to the
	// old statistics; the reload must reject it and rebuild.
	queries := starQueries(t)
	rf.setRows(t, splitTable(t, queries), 777_777)
	out, err := rf.srv.ReloadNow(false)
	if err != nil {
		t.Fatal(err)
	}
	if out.Result != "swapped" || out.SnapshotSource == sourceDisk {
		t.Fatalf("stale-snapshot reload: %+v, want a rebuild", out)
	}
	if out.Fingerprint == first.Fingerprint {
		t.Fatal("fingerprint did not move with the statistics")
	}

	// Garbage file: corrupt the freshly saved snapshot, drift again, and
	// the reload must fall back to rebuilding rather than fail.
	if err := os.WriteFile(snapPath, []byte("PINUMPC\x02 definitely not a snapshot"), 0o644); err != nil {
		t.Fatal(err)
	}
	rf.setRows(t, splitTable(t, queries), 888_888)
	out, err = rf.srv.ReloadNow(false)
	if err != nil {
		t.Fatal(err)
	}
	if out.Result != "swapped" || out.SnapshotSource == sourceDisk {
		t.Fatalf("corrupt-snapshot reload: %+v, want a rebuild", out)
	}
	code, body := rf.do(t, http.MethodPost, "/whatif", whatIfProbe)
	if code != http.StatusOK {
		t.Fatalf("/whatif after corrupt-snapshot reload: %d %s", code, body)
	}

	// The reload rewrote the snapshot; a fresh server must load it from
	// disk without touching the optimizer.
	rf2 := newReloadFixture(t, func(cfg *Config) { cfg.SnapshotPath = snapPath })
	rf2.setRows(t, splitTable(t, queries), 888_888)
	out2, err := rf2.srv.ReloadNow(false)
	if err != nil {
		t.Fatal(err)
	}
	if out2.SnapshotSource != sourceDisk {
		t.Fatalf("fresh server loaded from %q, want %q", out2.SnapshotSource, sourceDisk)
	}
	if out2.Fingerprint != out.Fingerprint {
		t.Fatalf("disk snapshot fingerprint %s, want %s", out2.Fingerprint, out.Fingerprint)
	}
}

// TestReadinessGating pins the liveness/readiness split: before the
// first load the process is alive (/healthz 200 "starting") but not
// ready (/readyz 503, compute endpoints 503); afterwards both are green.
// With StrictHealth a degraded server also fails readiness.
func TestReadinessGating(t *testing.T) {
	rf := newReloadFixture(t, func(cfg *Config) { cfg.StrictHealth = true })
	code, body := rf.do(t, http.MethodGet, "/healthz", nil)
	var health map[string]any
	if err := json.Unmarshal(body, &health); err != nil {
		t.Fatal(err)
	}
	if code != http.StatusOK || health["status"] != "starting" {
		t.Fatalf("pre-load /healthz: %d %v", code, health["status"])
	}
	if code, _ = rf.do(t, http.MethodGet, "/readyz", nil); code != http.StatusServiceUnavailable {
		t.Fatalf("pre-load /readyz: %d, want 503", code)
	}
	if code, _ = rf.do(t, http.MethodPost, "/whatif", whatIfProbe); code != http.StatusServiceUnavailable {
		t.Fatalf("pre-load /whatif: %d, want 503", code)
	}

	rf.load(t)
	if code, _ = rf.do(t, http.MethodGet, "/readyz", nil); code != http.StatusOK {
		t.Fatalf("post-load /readyz: %d, want 200", code)
	}

	t.Cleanup(faultpoint.Reset)
	if err := faultpoint.Set("serve.rebuild", "error"); err != nil {
		t.Fatal(err)
	}
	if code, _ = rf.do(t, http.MethodPost, "/reload?wait=1&force=1", nil); code != http.StatusInternalServerError {
		t.Fatalf("failing reload: %d, want 500", code)
	}
	if code, _ = rf.do(t, http.MethodGet, "/readyz", nil); code != http.StatusServiceUnavailable {
		t.Fatalf("degraded strict /readyz: %d, want 503", code)
	}
	faultpoint.Clear("serve.rebuild")
	if _, err := rf.srv.ReloadNow(true); err != nil {
		t.Fatal(err)
	}
	if code, _ = rf.do(t, http.MethodGet, "/readyz", nil); code != http.StatusOK {
		t.Fatalf("healed strict /readyz: %d, want 200", code)
	}
}

// TestAdmissionControl pins the 429 wall: with the single in-flight slot
// occupied, a compute request is refused immediately and counted, and
// health endpoints stay reachable.
func TestAdmissionControl(t *testing.T) {
	rf := newReloadFixture(t, func(cfg *Config) { cfg.MaxInFlight = 1 })
	rf.load(t)

	def := rf.srv.defaultTenant()
	def.inflight <- struct{}{} // occupy the only slot
	code, body := rf.do(t, http.MethodPost, "/whatif", whatIfProbe)
	if code != http.StatusTooManyRequests {
		t.Fatalf("saturated /whatif: %d %s, want 429", code, body)
	}
	if code, _ = rf.do(t, http.MethodGet, "/healthz", nil); code != http.StatusOK {
		t.Fatalf("saturated /healthz: %d, want 200 (health is exempt)", code)
	}
	<-def.inflight
	if code, _ = rf.do(t, http.MethodPost, "/whatif", whatIfProbe); code != http.StatusOK {
		t.Fatalf("/whatif after release: %d, want 200", code)
	}
	if got := def.rejected.Value(); got != 1 {
		t.Fatalf("rejected counter = %d, want 1", got)
	}
}

// TestRequestDeadline pins deadline enforcement end to end: an already
// expired per-request deadline stops the evaluation fan-out and surfaces
// as 504, not as a wrong answer.
func TestRequestDeadline(t *testing.T) {
	rf := newReloadFixture(t, func(cfg *Config) { cfg.RequestTimeout = time.Nanosecond })
	rf.load(t)
	code, body := rf.do(t, http.MethodPost, "/whatif", whatIfProbe)
	if code != http.StatusGatewayTimeout {
		t.Fatalf("expired-deadline /whatif: %d %s, want 504", code, body)
	}
	if !strings.Contains(string(body), "request abandoned") {
		t.Fatalf("timeout error body %s, want the abandoned-request message", body)
	}
}

// TestHandlerPanicIsContained pins the recovery middleware: a panicking
// handler is a counted 500 and the server keeps serving.
func TestHandlerPanicIsContained(t *testing.T) {
	rf := newReloadFixture(t, nil)
	rf.load(t)
	rf.srv.mux.HandleFunc("/boom", rf.srv.instrument("/boom", http.MethodGet, true,
		func(*http.Request) (any, error) { panic("kaboom") }))

	code, body := rf.do(t, http.MethodGet, "/boom", nil)
	if code != http.StatusInternalServerError || !strings.Contains(string(body), "internal panic") {
		t.Fatalf("panicking handler: %d %s, want 500 with panic message", code, body)
	}
	if got := rf.srv.panics.Value(); got != 1 {
		t.Fatalf("panic counter = %d, want 1", got)
	}
	if code, _ = rf.do(t, http.MethodPost, "/whatif", whatIfProbe); code != http.StatusOK {
		t.Fatalf("/whatif after handler panic: %d, want 200", code)
	}
}

// TestReloadPersistsLoadableSnapshot pins the save-after-swap contract:
// the written file matches the new fingerprint exactly (plancache.Load
// verifies the checksum and fingerprint).
func TestReloadPersistsLoadableSnapshot(t *testing.T) {
	snapPath := filepath.Join(t.TempDir(), "star.pcache")
	rf := newReloadFixture(t, func(cfg *Config) { cfg.SnapshotPath = snapPath })
	out := rf.load(t)
	fp, err := strconv.ParseUint(out.Fingerprint, 16, 64)
	if err != nil {
		t.Fatal(err)
	}
	snap, err := plancache.Load(snapPath, fp)
	if err != nil {
		t.Fatal(err)
	}
	if len(snap.Queries) == 0 {
		t.Fatal("persisted snapshot holds no queries")
	}
}

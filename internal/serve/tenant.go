package serve

// Multi-tenant registry: one pinum-serve process fronts N workloads.
// Every tenant is an independently reloadable snapshotSet (PR 8's
// immutable-set + atomic-pointer model, instantiated per entry) keyed by
// tenant name, with the environment fingerprint validating its snapshot
// file on every load. Requests route by the `tenant` body field or the
// X-Pinum-Tenant header; absent both, they hit the default tenant, so a
// single-tenant deployment behaves exactly as before.
//
// Residency: the registry knows every configured tenant, but only up to
// Config.MaxResident of them hold a live snapshot set at a time. A
// request for an evicted (or never-loaded) tenant triggers a singleflight
// cold load — snapshot store first (plancache.Load, fingerprint checked),
// full rebuild as the fallback — and then the least-recently-used
// resident tenant is evicted to restore the cap. Eviction is one atomic
// nil store: in-flight requests keep the immutable set they already
// loaded, so nothing ever blocks on the hot path; the set (and its
// interner and leaf memos) becomes garbage once the last request drops
// it.
//
// Isolation: each tenant has its own max-in-flight admission semaphore,
// so one tenant's /recommend storm 429s against its own cap while every
// other tenant keeps serving, and its own reload/retry state machine, so
// a tenant stuck degraded retries on its own backoff without touching its
// neighbors.

import (
	"fmt"
	"net/http"
	"sync"
	"sync/atomic"
	"time"

	"github.com/pinumdb/pinum/internal/faultpoint"
	"github.com/pinumdb/pinum/internal/obs"
	"github.com/pinumdb/pinum/internal/optimizer"
)

// TenantHeader is the HTTP header that routes a request to a tenant; the
// `tenant` field in a request body is the equivalent in-band form. When
// both are present they must agree.
const TenantHeader = "X-Pinum-Tenant"

// DefaultTenant is the tenant name a single-tenant Config serves under,
// and the one requests without any tenant routing hit in that mode.
const DefaultTenant = "default"

// TenantConfig describes one served workload in a multi-tenant server.
type TenantConfig struct {
	// Name routes requests and keys the tenant's snapshot in the store;
	// it must satisfy plancache.ValidTenantName.
	Name string
	// Loader re-derives this tenant's environment on every (re)load.
	Loader func() (*Environment, error)
	// SnapshotPath, when set, is this tenant's fingerprint-checked
	// snapshot file: consulted before rebuilding on every load, rewritten
	// after every rebuild.
	SnapshotPath string
	// MaxInFlight caps this tenant's concurrently evaluating compute
	// requests (0 = the server's MaxInFlight, negative = unlimited).
	MaxInFlight int
}

// tenant is one workload's complete serving state: the hot-swapped
// snapshot set, the reload/retry machinery that replaces it, the
// admission semaphore that bounds it, and the counters that surface it
// in /statz. Everything PR 8 hung off Server now hangs off the tenant,
// instantiated once per entry.
type tenant struct {
	name         string
	srv          *Server
	loader       func() (*Environment, error)
	snapshotPath string

	// cur is the tenant's live snapshot set; nil while the tenant is cold
	// (never loaded, or evicted by the residency cap). The swap is one
	// atomic pointer flip: handlers load the pointer exactly once per
	// request and never reach the field directly.
	//pinum:atomic-only current,swap
	cur atomic.Pointer[snapshotSet]

	// reloadMu serializes this tenant's loads and reloads — it is also
	// the cold-load singleflight: a thundering herd on a cold tenant
	// queues here while the first request builds, then reuses its set.
	reloadMu    sync.Mutex
	reloadQueue chan struct{}

	// retryMu guards the failed-reload backoff timer state.
	retryMu      sync.Mutex
	retryTimer   *time.Timer
	retryAttempt int
	nextRetryAt  time.Time
	closed       bool

	// inflight is this tenant's admission semaphore (nil = unlimited).
	inflight chan struct{}

	// lastUsed is the registry clock tick of the last request routed
	// here; the residency sweep evicts the smallest value.
	lastUsed atomic.Int64

	// Registry handles for the tenant's counters, resolved once in
	// newTenant so request recording stays lock-free. /statz and /metrics
	// read the same handles.
	reloadsOK      *obs.Counter
	reloadsSkipped *obs.Counter
	reloadsFailed  *obs.Counter
	coldLoads      *obs.Counter
	evictions      *obs.Counter
	rejected       *obs.Counter
	requests       *obs.Counter
	errors         *obs.Counter
	degraded       atomic.Bool
	lastReloadErr  atomic.Value // string
	lastSaveErr    atomic.Value // string

	// Snapshot-shape gauges, refreshed on every publish.
	snapQueries    *obs.Gauge
	snapReused     *obs.Gauge
	snapRebuilt    *obs.Gauge
	snapEntryBytes *obs.Gauge
	snapEnumStates *obs.Gauge
	snapFrInserts  *obs.Gauge
	snapFrDrops    *obs.Gauge
	snapFrEvict    *obs.Gauge
}

// registerTenantMetrics resolves one tenant's registry handles, all
// labeled tenant=<name>, plus the live gauges derived from its state.
func (s *Server) registerTenantMetrics(t *tenant) {
	tl := obs.L("tenant", t.name)
	t.requests = s.reg.Counter("pinum_tenant_requests_total",
		"Compute requests routed to the tenant.", tl)
	t.errors = s.reg.Counter("pinum_tenant_request_errors_total",
		"Tenant compute requests that returned an error.", tl)
	t.rejected = s.reg.Counter("pinum_tenant_rejected_total",
		"Requests refused with 429 by the tenant's admission cap.", tl)
	t.coldLoads = s.reg.Counter("pinum_tenant_cold_loads_total",
		"Cold snapshot loads (first touch, or after eviction).", tl)
	t.evictions = s.reg.Counter("pinum_tenant_evictions_total",
		"LRU residency evictions.", tl)
	const reloadHelp = "Reload outcomes, by result (completed, skipped, failed)."
	t.reloadsOK = s.reg.Counter("pinum_tenant_reloads_total", reloadHelp, tl, obs.L("result", "completed"))
	t.reloadsSkipped = s.reg.Counter("pinum_tenant_reloads_total", reloadHelp, tl, obs.L("result", "skipped"))
	t.reloadsFailed = s.reg.Counter("pinum_tenant_reloads_total", reloadHelp, tl, obs.L("result", "failed"))
	s.reg.GaugeFunc("pinum_tenant_degraded",
		"1 while the tenant's last reload failed (the old set keeps serving).",
		func() float64 {
			if t.degraded.Load() {
				return 1
			}
			return 0
		}, tl)
	s.reg.GaugeFunc("pinum_tenant_resident",
		"1 while the tenant holds a live snapshot set.",
		func() float64 {
			if t.current() != nil {
				return 1
			}
			return 0
		}, tl)
	s.reg.GaugeFunc("pinum_tenant_in_flight",
		"Compute requests currently holding one of the tenant's admission slots.",
		func() float64 {
			if t.inflight == nil {
				return 0
			}
			return float64(len(t.inflight))
		}, tl)
	t.snapQueries = s.reg.Gauge("pinum_snapshot_queries",
		"Queries served by the tenant's live snapshot set.", tl)
	t.snapReused = s.reg.Gauge("pinum_snapshot_queries_reused",
		"Queries whose caches the last (re)load reused without planning.", tl)
	t.snapRebuilt = s.reg.Gauge("pinum_snapshot_queries_rebuilt",
		"Queries the last (re)load re-planned.", tl)
	t.snapEntryBytes = s.reg.Gauge("pinum_snapshot_entry_bytes",
		"Approximate bytes held by the live set's plan-cache entries.", tl)
	t.snapEnumStates = s.reg.Gauge("pinum_planner_enum_states",
		"Planner enumeration states visited building the live set (0 when loaded from disk).", tl)
	t.snapFrInserts = s.reg.Gauge("pinum_planner_frontier_inserts",
		"Dominance-frontier insertions building the live set.", tl)
	t.snapFrDrops = s.reg.Gauge("pinum_planner_frontier_drops",
		"Dominated plans dropped at insertion building the live set.", tl)
	t.snapFrEvict = s.reg.Gauge("pinum_planner_frontier_evictions",
		"Frontier entries evicted by dominance building the live set.", tl)
}

// current returns the tenant's live snapshot set (nil while cold). It is
// the one read-side accessor for the swapped state.
func (t *tenant) current() *snapshotSet { return t.cur.Load() }

// swap publishes a freshly built set — or nil, which is how eviction
// retires one. The single write-side accessor.
func (t *tenant) swap(set *snapshotSet) { t.cur.Store(set) }

// publish makes a successfully built set live and settles the residency
// cap: every code path that swaps in a non-nil set goes through here, so
// the registry can never lose track of a resident tenant.
func (t *tenant) publish(set *snapshotSet) {
	t.swap(set)
	t.snapshotGauges(set)
	t.srv.everLoaded.Store(true)
	t.srv.touch(t)
	t.srv.noteResident(t)
}

// snapshotGauges refreshes the tenant's snapshot-shape metrics from a
// freshly published set: query counts, approximate entry bytes, and the
// aggregated planner work counters its builds recorded (all zero for a
// disk-loaded set, which did no planning).
func (t *tenant) snapshotGauges(set *snapshotSet) {
	var ps optimizer.PlannerStats
	var entryBytes int64
	for _, c := range set.caches {
		ps.Add(c.Stats.Planner)
		entryBytes += c.MemStats().TotalBytes()
	}
	t.snapQueries.Set(float64(len(set.env.Queries)))
	t.snapReused.Set(float64(set.reused))
	t.snapRebuilt.Set(float64(set.rebuilt))
	t.snapEntryBytes.Set(float64(entryBytes))
	t.snapEnumStates.Set(float64(ps.EnumStates))
	t.snapFrInserts.Set(float64(ps.FrontierInserts))
	t.snapFrDrops.Set(float64(ps.FrontierDrops))
	t.snapFrEvict.Set(float64(ps.FrontierEvictions))
}

// admit takes an admission slot against this tenant's cap, or reports it
// full. Caps are per tenant by design: a storm on one tenant exhausts
// its own semaphore and 429s, while every other tenant's slots — and the
// health endpoints — stay free.
func (t *tenant) admit() error {
	if t.inflight == nil {
		return nil
	}
	select {
	case t.inflight <- struct{}{}:
		return nil
	default:
		t.rejected.Inc()
		return &httpError{
			code: http.StatusTooManyRequests,
			err:  fmt.Errorf("tenant %q is at its in-flight request limit (%d); retry later", t.name, cap(t.inflight)),
		}
	}
}

func (t *tenant) release() {
	if t.inflight != nil {
		<-t.inflight
	}
}

// statusWord is this tenant's health summary: cold (no resident set —
// never loaded or evicted; "starting" in single-tenant mode for
// continuity with the pre-tenant health contract), degraded (last reload
// failed; the previous set keeps serving), or ok.
func (t *tenant) statusWord() string {
	switch {
	case t.current() == nil:
		if t.srv.multi {
			return "cold"
		}
		return "starting"
	case t.degraded.Load():
		return "degraded"
	default:
		return "ok"
	}
}

// ------------------------------------------------------- registry ------

// resolveTenant routes a request: the X-Pinum-Tenant header and the
// request body's tenant field must agree when both are set; absent both,
// the default tenant serves, which is what keeps single-tenant requests
// byte-identical to the pre-tenant server.
func (s *Server) resolveTenant(r *http.Request, bodyTenant string) (*tenant, error) {
	name := bodyTenant
	if header := r.Header.Get(TenantHeader); header != "" {
		if bodyTenant != "" && bodyTenant != header {
			return nil, badRequest("tenant %q in the request body disagrees with %s %q",
				bodyTenant, TenantHeader, header)
		}
		name = header
	}
	return s.tenantByName(name)
}

// tenantByName resolves a tenant name ("" = the default tenant).
func (s *Server) tenantByName(name string) (*tenant, error) {
	if name == "" {
		name = s.defaultName
	}
	t := s.tenants[name]
	if t == nil {
		return nil, &httpError{
			code: http.StatusNotFound,
			err:  fmt.Errorf("unknown tenant %q (%d configured)", name, len(s.tenants)),
		}
	}
	return t, nil
}

// defaultTenant returns the tenant unrouted requests hit: the sole
// tenant in single-tenant mode, the first configured one otherwise.
func (s *Server) defaultTenant() *tenant { return s.tenants[s.defaultName] }

// TenantNames lists the configured tenants in sorted order.
func (s *Server) TenantNames() []string {
	out := make([]string, len(s.tenantNames))
	copy(out, s.tenantNames)
	return out
}

// touch stamps t with a fresh recency tick.
func (s *Server) touch(t *tenant) { t.lastUsed.Store(s.clock.Add(1)) }

// acquireSet returns the tenant's live snapshot set, cold-loading it
// first when the residency cap evicted it (or it was never requested).
// The load is singleflight — reloadMu admits one builder; the herd
// queues behind it and reuses the published set — and cheapest-first:
// buildSet consults the tenant's snapshot file (fingerprint-checked)
// before falling back to a full rebuild. A failed cold load is this
// request's 503, not the tenant's death sentence: nothing is retried in
// the background, so the next request simply tries again while every
// other tenant keeps serving untouched.
func (s *Server) acquireSet(t *tenant) (*snapshotSet, error) {
	if set := t.current(); set != nil {
		s.touch(t)
		return set, nil
	}
	if !s.multi {
		// Single-tenant servers keep the pre-tenant contract: requests
		// before the first explicit load are 503, never an implicit
		// multi-second build on a request goroutine.
		return nil, errNotReady()
	}
	t.reloadMu.Lock()
	defer t.reloadMu.Unlock()
	if set := t.current(); set != nil {
		s.touch(t)
		return set, nil
	}
	if err := faultpoint.Hit("serve.tenant.load"); err != nil {
		return nil, s.coldLoadFailed(t, err)
	}
	t.coldLoads.Inc()
	set, _, err := t.buildSetContained(false)
	if err != nil {
		return nil, s.coldLoadFailed(t, err)
	}
	t.publish(set)
	t.saveSnapshot(set)
	s.recordEvent("cold-load", t.name, "",
		fmt.Sprintf("fingerprint=%016x source=%s", set.fingerprint, set.source))
	s.logf("tenant %s: cold load: fingerprint=%016x source=%s", t.name, set.fingerprint, set.source)
	return set, nil
}

func (s *Server) coldLoadFailed(t *tenant, err error) error {
	t.reloadsFailed.Inc()
	t.lastReloadErr.Store(err.Error())
	s.recordEvent("cold-load-failed", t.name, "", err.Error())
	s.logf("tenant %s: cold load failed: %v", t.name, err)
	return &httpError{
		code: http.StatusServiceUnavailable,
		err:  fmt.Errorf("tenant %q: snapshot load failed: %v", t.name, err),
	}
}

// residentCount reports how many tenants currently hold a live set.
func (s *Server) residentCount() int {
	n := 0
	for _, t := range s.tenants {
		if t.current() != nil {
			n++
		}
	}
	return n
}

// noteResident restores the residency invariant after a tenant became
// resident: while more than MaxResident tenants hold live sets, the
// least-recently-used one (other than the tenant that just loaded) is
// evicted. Concurrent cold loads may overshoot the cap transiently; the
// loop converges because every successful publish lands here.
func (s *Server) noteResident(justLoaded *tenant) {
	if !s.multi || s.residentCap <= 0 {
		return
	}
	s.resMu.Lock()
	defer s.resMu.Unlock()
	for {
		resident := 0
		var victim *tenant
		for _, name := range s.tenantNames {
			t := s.tenants[name]
			if t.current() == nil {
				continue
			}
			resident++
			if t == justLoaded {
				continue
			}
			if victim == nil || t.lastUsed.Load() < victim.lastUsed.Load() {
				victim = t
			}
		}
		if resident <= s.residentCap || victim == nil {
			return
		}
		s.evictLocked(victim)
	}
}

// evictLocked retires a tenant's resident set (resMu held): one atomic
// nil store, visible to the next request as a cold load. Requests
// holding the old set finish on it — sets are immutable, so eviction
// never blocks or breaks an in-flight evaluation. The retry timer and
// degraded flag are cleared: an evicted tenant rebuilds its state on the
// next request instead of resurrecting itself in the background. The
// serve.tenant.evict faultpoint (delay mode) widens the evict/load race
// window for tests; error mode is meaningless here and ignored.
func (s *Server) evictLocked(t *tenant) {
	_ = faultpoint.Hit("serve.tenant.evict")
	t.swap(nil)
	t.clearRetry()
	t.degraded.Store(false)
	t.evictions.Inc()
	s.recordEvent("eviction", t.name, "", fmt.Sprintf("LRU, resident cap %d", s.residentCap))
	s.logf("tenant %s: evicted (LRU, resident cap %d)", t.name, s.residentCap)
}

// computeOn is the compute-endpoint spine: route to a tenant, count the
// request, take its admission slot, make it resident, and run fn against
// the immutable set — which fn uses for its whole lifetime regardless of
// concurrent swaps or evictions.
func (s *Server) computeOn(r *http.Request, bodyTenant string, fn func(*tenant, *snapshotSet) (any, error)) (any, error) {
	tr := obs.TraceFrom(r.Context())
	rt := time.Now()
	t, err := s.resolveTenant(r, bodyTenant)
	tr.Add("route", rt, time.Since(rt))
	if err != nil {
		return nil, err
	}
	t.requests.Inc()
	if err := t.admit(); err != nil {
		t.errors.Inc()
		return nil, err
	}
	defer t.release()
	lt := time.Now()
	set, err := s.acquireSet(t)
	tr.Add("load", lt, time.Since(lt))
	if err != nil {
		t.errors.Inc()
		return nil, err
	}
	resp, err := fn(t, set)
	if err != nil {
		t.errors.Inc()
	}
	return resp, err
}

// TenantStats is one tenant's /statz section.
type TenantStats struct {
	Status          string      `json:"status"`
	Resident        bool        `json:"resident"`
	Fingerprint     string      `json:"fingerprint,omitempty"`
	SnapshotSource  string      `json:"snapshot_source,omitempty"`
	Queries         int         `json:"queries,omitempty"`
	QueriesReused   int         `json:"queries_reused,omitempty"`
	QueriesRebuilt  int         `json:"queries_rebuilt,omitempty"`
	InternedIndexes int         `json:"interned_indexes,omitempty"`
	Requests        int64       `json:"requests"`
	Errors          int64       `json:"errors"`
	Rejected        int64       `json:"rejected"`
	InFlight        int         `json:"in_flight"`
	MaxInFlight     int         `json:"max_in_flight,omitempty"`
	ColdLoads       int64       `json:"cold_loads"`
	Evictions       int64       `json:"evictions"`
	Reloads         ReloadStats `json:"reloads"`
}

// stats snapshots the tenant's counters for /statz.
func (t *tenant) stats() TenantStats {
	ts := TenantStats{
		Status:    t.statusWord(),
		Requests:  t.requests.Value(),
		Errors:    t.errors.Value(),
		Rejected:  t.rejected.Value(),
		ColdLoads: t.coldLoads.Value(),
		Evictions: t.evictions.Value(),
		Reloads:   t.reloadStats(),
	}
	if t.inflight != nil {
		ts.InFlight = len(t.inflight)
		ts.MaxInFlight = cap(t.inflight)
	}
	if set := t.current(); set != nil {
		ts.Resident = true
		ts.Fingerprint = fmt.Sprintf("%016x", set.fingerprint)
		ts.SnapshotSource = set.source
		ts.Queries = len(set.env.Queries)
		ts.QueriesReused = set.reused
		ts.QueriesRebuilt = set.rebuilt
		ts.InternedIndexes = set.internedCount()
	}
	return ts
}

// reloadStats snapshots the tenant's reload state machine.
func (t *tenant) reloadStats() ReloadStats {
	rs := ReloadStats{
		Completed:     t.reloadsOK.Value(),
		Skipped:       t.reloadsSkipped.Value(),
		Failed:        t.reloadsFailed.Value(),
		Degraded:      t.degraded.Load(),
		LastError:     loadString(&t.lastReloadErr),
		LastSaveError: loadString(&t.lastSaveErr),
	}
	t.retryMu.Lock()
	rs.RetryAttempt = t.retryAttempt
	if !t.nextRetryAt.IsZero() {
		if ms := time.Until(t.nextRetryAt).Milliseconds(); ms > 0 {
			rs.NextRetryInMs = ms
		} else {
			rs.NextRetryInMs = 1 // due; not yet run
		}
	}
	t.retryMu.Unlock()
	return rs
}

package core

import (
	"math"
	"math/rand"
	"testing"

	"github.com/pinumdb/pinum/internal/inum"
	"github.com/pinumdb/pinum/internal/optimizer"
	"github.com/pinumdb/pinum/internal/query"
	"github.com/pinumdb/pinum/internal/whatif"
	"github.com/pinumdb/pinum/internal/workload"
)

func mustStar(t testing.TB) *workload.Star {
	t.Helper()
	s, err := workload.StarSchema(1.0)
	if err != nil {
		t.Fatalf("StarSchema: %v", err)
	}
	return s
}

func mustQueries(t testing.TB, s *workload.Star) []*query.Query {
	t.Helper()
	qs, err := s.Queries(42)
	if err != nil {
		t.Fatalf("Queries: %v", err)
	}
	return qs
}

func analyze(t testing.TB, s *workload.Star, q *query.Query) *optimizer.Analysis {
	t.Helper()
	a, err := optimizer.NewAnalysis(q, s.Stats, optimizer.DefaultCostParams())
	if err != nil {
		t.Fatalf("NewAnalysis(%s): %v", q.Name, err)
	}
	return a
}

func TestQ5AnalogueComboCount(t *testing.T) {
	s := mustStar(t)
	q, err := s.Q5Analogue()
	if err != nil {
		t.Fatalf("Q5Analogue: %v", err)
	}
	if got := q.ComboCount(); got != 648 {
		t.Fatalf("Q5 analogue has %d interesting order combinations, want 648", got)
	}
}

func TestBuildProducesUsefulPlans(t *testing.T) {
	s := mustStar(t)
	q, err := s.Q5Analogue()
	if err != nil {
		t.Fatalf("Q5Analogue: %v", err)
	}
	a := analyze(t, s, q)
	cache, err := Build(a, whatif.NewSession(s.Catalog))
	if err != nil {
		t.Fatalf("Build: %v", err)
	}
	if cache.Stats.OptimizerCalls != 2 {
		t.Errorf("PINUM made %d optimizer calls, want 2", cache.Stats.OptimizerCalls)
	}
	if cache.Stats.PlansCached == 0 {
		t.Fatalf("PINUM cached no plans")
	}
	// The redundancy observation: far fewer unique plans than combinations.
	if cache.Stats.PlansCached >= cache.Stats.CombosEnumerated/2 {
		t.Errorf("cached %d plans for %d combinations; expected heavy redundancy",
			cache.Stats.PlansCached, cache.Stats.CombosEnumerated)
	}
	t.Logf("Q5 analogue: %d combos, %d unique plans", cache.Stats.CombosEnumerated, cache.Stats.PlansCached)
}

// TestPINUMCostMatchesOptimizer is the paper's central exactness claim
// (observations 1–2 of §II): with the precise nested-loop pruning enabled,
// the cached model's cost must equal a fresh optimizer call on every
// random atomic configuration.
func TestPINUMCostMatchesOptimizer(t *testing.T) {
	s := mustStar(t)
	qs := mustQueries(t, s)
	rng := rand.New(rand.NewSource(7))
	for _, q := range qs[:6] { // the smaller queries keep the test fast
		q := q
		t.Run(q.Name, func(t *testing.T) {
			a := analyze(t, s, q)
			ws := whatif.NewSession(s.Catalog)
			cache, err := BuildPrecise(a, ws)
			if err != nil {
				t.Fatalf("BuildPrecise: %v", err)
			}
			for trial := 0; trial < 40; trial++ {
				cfg, err := workload.RandomAtomicConfig(rng, a, ws, 0.7)
				if err != nil {
					t.Fatalf("RandomAtomicConfig: %v", err)
				}
				res, err := optimizer.Optimize(a, cfg, optimizer.Options{EnableNestLoop: true})
				if err != nil {
					t.Fatalf("Optimize: %v", err)
				}
				got, _, err := cache.Cost(cfg)
				if err != nil {
					t.Fatalf("cache.Cost: %v", err)
				}
				want := res.Best.Cost
				if relErr(got, want) > 1e-6 {
					t.Fatalf("trial %d cfg %s: cache cost %.4f, optimizer cost %.4f (rel err %.2e)",
						trial, cfg, got, want, relErr(got, want))
				}
			}
		})
	}
}

// TestCoarseNLJAccuracy checks the default (paper-mode) cache: exact when
// nested loops are disabled, and within the paper's reported error band
// (≈9 % worst case) when they are enabled.
func TestCoarseNLJAccuracy(t *testing.T) {
	s := mustStar(t)
	qs := mustQueries(t, s)
	rng := rand.New(rand.NewSource(13))
	for _, q := range qs[:6] {
		q := q
		t.Run(q.Name, func(t *testing.T) {
			a := analyze(t, s, q)
			ws := whatif.NewSession(s.Catalog)
			cache, err := Build(a, ws)
			if err != nil {
				t.Fatalf("Build: %v", err)
			}
			var worst float64
			for trial := 0; trial < 40; trial++ {
				cfg, err := workload.RandomAtomicConfig(rng, a, ws, 0.7)
				if err != nil {
					t.Fatalf("RandomAtomicConfig: %v", err)
				}
				res, err := optimizer.Optimize(a, cfg, optimizer.Options{EnableNestLoop: true})
				if err != nil {
					t.Fatalf("Optimize: %v", err)
				}
				got, _, err := cache.Cost(cfg)
				if err != nil {
					t.Fatalf("cache.Cost: %v", err)
				}
				if e := relErr(got, res.Best.Cost); e > worst {
					worst = e
				}
			}
			if worst > 0.15 {
				t.Errorf("coarse cache worst-case error %.1f%% exceeds 15%%", 100*worst)
			}
		})
	}
}

// TestPINUMEqualsINUM checks the one-call-equals-many-calls invariant: the
// PINUM cache and the conventional INUM cache estimate the same costs.
func TestPINUMEqualsINUM(t *testing.T) {
	s := mustStar(t)
	qs := mustQueries(t, s)
	rng := rand.New(rand.NewSource(11))
	for _, q := range qs[:4] {
		q := q
		t.Run(q.Name, func(t *testing.T) {
			a := analyze(t, s, q)
			pin, err := Build(a, whatif.NewSession(s.Catalog))
			if err != nil {
				t.Fatalf("PINUM build: %v", err)
			}
			in, err := inum.Build(a, whatif.NewSession(s.Catalog))
			if err != nil {
				t.Fatalf("INUM build: %v", err)
			}
			if in.Stats.OptimizerCalls <= pin.Stats.OptimizerCalls {
				t.Errorf("INUM made %d calls, PINUM %d; INUM should need many more",
					in.Stats.OptimizerCalls, pin.Stats.OptimizerCalls)
			}
			ws := whatif.NewSession(s.Catalog)
			for trial := 0; trial < 25; trial++ {
				cfg, err := workload.RandomAtomicConfig(rng, a, ws, 0.7)
				if err != nil {
					t.Fatalf("RandomAtomicConfig: %v", err)
				}
				pc, _, err := pin.Cost(cfg)
				if err != nil {
					t.Fatalf("pinum cost: %v", err)
				}
				ic, _, err := in.Cost(cfg)
				if err != nil {
					t.Fatalf("inum cost: %v", err)
				}
				// INUM may miss plans (its per-combination calls return
				// one plan each); it must never be cheaper than PINUM's
				// complete cache.
				if pc > ic*(1+1e-9) {
					t.Fatalf("trial %d: PINUM cost %.4f exceeds INUM cost %.4f", trial, pc, ic)
				}
			}
		})
	}
}

func relErr(a, b float64) float64 {
	d := math.Abs(a - b)
	m := math.Max(math.Abs(a), math.Abs(b))
	if m == 0 {
		return 0
	}
	return d / m
}

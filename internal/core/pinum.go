// Package core implements PINUM, the paper's contribution: filling an INUM
// plan cache with just one optimizer call per nested-loop mode, by
// harvesting the intermediate plans a bottom-up optimizer builds anyway.
//
// Conventional INUM issues one optimizer call per interesting order
// combination (648 for TPC-H Q5). PINUM instead invokes the optimizer once
// with what-if indexes covering *all* interesting orders and the join
// planner switched to subsumption pruning (§V-D): the top level of the
// dynamic program then holds the optimal plan for every useful combination,
// and all of them are exported to the cache. A second call with nested
// loops disabled supplies the NLJ-free plans INUM tracks separately, hence
// exactly two calls per query.
package core

import (
	"time"

	"github.com/pinumdb/pinum/internal/catalog"
	"github.com/pinumdb/pinum/internal/inum"
	"github.com/pinumdb/pinum/internal/optimizer"
	"github.com/pinumdb/pinum/internal/whatif"
)

// Build fills an INUM-compatible plan cache with two optimizer calls (one
// with and one without nested-loop joins), implementing §V-D with the
// paper's default, coarse treatment of nested-loop plans.
func Build(a *optimizer.Analysis, ws *whatif.Session) (*inum.Cache, error) {
	return build(a, ws, false, false)
}

// BuildPrecise fills the cache with the §V-D refinement enabled: nested-
// loop plans that differ in probe count are all retained, trading "a bigger
// plan cache and slower cost lookup" for exact nested-loop costing. The
// ablation benchmarks compare the two.
func BuildPrecise(a *optimizer.Analysis, ws *whatif.Session) (*inum.Cache, error) {
	return build(a, ws, true, false)
}

// BuildSlim fills a slim cache: the same two optimizer calls, but every
// exported plan is reduced to its INUM decomposition on the spot and the
// planner's retained path trees become garbage as soon as each call
// returns. Cost/BaseLeafCosts results are bit-identical to Build's; the
// cache just cannot render EXPLAIN trees or feed the executor. This is
// the construction the persistent snapshot store and the serving layer
// use.
func BuildSlim(a *optimizer.Analysis, ws *whatif.Session) (*inum.Cache, error) {
	return build(a, ws, false, true)
}

// Builder returns the BuildFunc for the given mode flags, the seam batch
// construction (BuildAllWith) and the public API select flavours through.
func Builder(precise, slim bool) BuildFunc {
	return func(a *optimizer.Analysis, ws *whatif.Session) (*inum.Cache, error) {
		return build(a, ws, precise, slim)
	}
}

func build(a *optimizer.Analysis, ws *whatif.Session, precise, slim bool) (*inum.Cache, error) {
	start := time.Now()
	var c *inum.Cache
	if slim {
		c = inum.NewSlimCache(a)
	} else {
		c = inum.NewCache(a)
	}
	c.Stats.CombosEnumerated = a.Q.ComboCount()

	cfg, err := inum.AllOrdersConfig(a, ws)
	if err != nil {
		return nil, err
	}
	// First call: nested loops off; the exported non-NLJ plan set is
	// complete and exact under internal-cost subsumption pruning. Second
	// call: nested loops on; unless the precise refinement is requested,
	// the paper's literal total-cost pruning keeps the NLJ plan set small
	// at the price of the small errors §VI-C reports.
	for _, nlj := range []bool{false, true} {
		res, err := optimizer.Optimize(a, cfg, optimizer.Options{
			EnableNestLoop: nlj,
			ExportAll:      true,
			PreciseNLJ:     precise,
			PaperPrune:     nlj && !precise,
		})
		if err != nil {
			return nil, err
		}
		c.Stats.OptimizerCalls++
		c.Stats.Planner.Add(res.Stats)
		for _, p := range res.Exported {
			c.AddPath(p)
		}
	}
	if slim {
		c.Seal()
	}
	c.Stats.Duration = time.Since(start)
	c.Stats.Mem = c.MemStats()
	return c, nil
}

// CollectAccessCosts harvests the access costs of every candidate index
// with a single optimizer call, using the modified access path collector
// that keeps all index access paths instead of the cheapest per interesting
// order (§V-C).
func CollectAccessCosts(a *optimizer.Analysis, candidates []*catalog.Index) *inum.AccessCostTable {
	start := time.Now()
	t := &inum.AccessCostTable{ByIndex: make(map[string][]optimizer.IndexAccess)}
	cfg := whatif.Config(candidates...)
	res, err := optimizer.Optimize(a, cfg, optimizer.Options{CollectAccessCosts: true})
	if err != nil {
		t.Errors = 1
	} else {
		t.Calls = 1
		for _, ia := range res.AccessCosts {
			t.ByIndex[ia.Index.Name] = append(t.ByIndex[ia.Index.Name], ia)
		}
	}
	t.Duration = time.Since(start)
	return t
}

// Redundancy reports the paper's §IV measurement for one query: how many
// interesting order combinations exist, how many unique plans INUM's
// per-combination optimizer calls actually return, and the fraction of
// those calls that were therefore redundant. (For TPC-H Q5 the paper finds
// 64 unique plans in 648 calls — 90 % redundant.)
type Redundancy struct {
	Query        string
	Combinations int
	UniquePlans  int
	// RedundantCallFraction is 1 − unique/combinations: the share of
	// INUM's per-combination calls that return an already-cached plan.
	RedundantCallFraction float64
}

// MeasureRedundancy performs the paper's §IV analysis: issue one
// conventional optimizer call per interesting order combination (nested
// loops disabled, as in INUM's primary plan set) and count how many
// distinct plans come back. The per-combination configurations use plain
// single-column indexes covering the orders — the realistic what-if
// question a designer asks — under which the optimizer routinely declines
// the offered orders, which is precisely the §IV redundancy.
func MeasureRedundancy(a *optimizer.Analysis, ws *whatif.Session) (Redundancy, error) {
	combos := a.Q.EnumerateCombos()
	unique := make(map[string]bool)
	for _, oc := range combos {
		cfg, err := ws.CoveringConfig(a.Q, oc)
		if err != nil {
			return Redundancy{}, err
		}
		res, err := optimizer.Optimize(a, cfg, optimizer.Options{})
		if err != nil {
			return Redundancy{}, err
		}
		unique[res.Best.Signature()] = true
	}
	frac := 0.0
	if len(combos) > 0 {
		frac = 1 - float64(len(unique))/float64(len(combos))
		if frac < 0 {
			frac = 0
		}
	}
	return Redundancy{
		Query:                 a.Q.Name,
		Combinations:          len(combos),
		UniquePlans:           len(unique),
		RedundantCallFraction: frac,
	}, nil
}

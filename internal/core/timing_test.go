package core

import (
	"testing"
	"time"

	"github.com/pinumdb/pinum/internal/inum"
	"github.com/pinumdb/pinum/internal/optimizer"
	"github.com/pinumdb/pinum/internal/whatif"
)

// TestConstructionSpeedAdvantage asserts the paper's headline claim at test
// granularity: building the cache with PINUM's two exported calls is
// substantially faster than INUM's two-calls-per-combination loop.
func TestConstructionSpeedAdvantage(t *testing.T) {
	if testing.Short() {
		t.Skip("timing comparison skipped in -short mode")
	}
	s := mustStar(t)
	qs := mustQueries(t, s)
	q := qs[4] // a mid-size (4-table) query

	a := analyze(t, s, q)

	start := time.Now()
	pin, err := Build(a, whatif.NewSession(s.Catalog))
	if err != nil {
		t.Fatalf("PINUM build: %v", err)
	}
	pinumTime := time.Since(start)

	start = time.Now()
	in, err := inum.Build(a, whatif.NewSession(s.Catalog))
	if err != nil {
		t.Fatalf("INUM build: %v", err)
	}
	inumTime := time.Since(start)

	t.Logf("%s: combos=%d PINUM=%v (%d calls, %d plans) INUM=%v (%d calls, %d plans)",
		q.Name, a.Q.ComboCount(), pinumTime, pin.Stats.OptimizerCalls, pin.Stats.PlansCached,
		inumTime, in.Stats.OptimizerCalls, in.Stats.PlansCached)
	if pinumTime >= inumTime {
		t.Errorf("PINUM construction (%v) not faster than INUM (%v)", pinumTime, inumTime)
	}
}

// TestSingleCallCosts logs the cost of individual optimizer calls in each
// mode, to keep an eye on the export overhead the paper discusses in §IV.
func TestSingleCallCosts(t *testing.T) {
	if testing.Short() {
		t.Skip("timing log skipped in -short mode")
	}
	s := mustStar(t)
	q, err := s.Q5Analogue()
	if err != nil {
		t.Fatalf("Q5Analogue: %v", err)
	}
	a := analyze(t, s, q)
	ws := whatif.NewSession(s.Catalog)
	cfg, err := inum.AllOrdersConfig(a, ws)
	if err != nil {
		t.Fatalf("AllOrdersConfig: %v", err)
	}

	start := time.Now()
	if _, err := optimizer.Optimize(a, cfg, optimizer.Options{EnableNestLoop: true}); err != nil {
		t.Fatalf("normal call: %v", err)
	}
	normal := time.Since(start)

	start = time.Now()
	res, err := optimizer.Optimize(a, cfg, optimizer.Options{EnableNestLoop: true, ExportAll: true})
	if err != nil {
		t.Fatalf("export call: %v", err)
	}
	export := time.Since(start)
	t.Logf("normal call %v; export call %v (%d paths exported, %d considered)",
		normal, export, len(res.Exported), res.Stats.PathsConsidered)
}

package core

import (
	"context"
	"sync/atomic"
	"testing"
	"time"
)

// TestFanCtxRunsAllWithoutCancellation pins the degenerate case: an
// un-cancelled context dispatches every job exactly once and returns nil.
func TestFanCtxRunsAllWithoutCancellation(t *testing.T) {
	const n = 100
	var done [n]atomic.Int32
	err := FanCtx(context.Background(), n, 4, func() func(int) {
		return func(i int) { done[i].Add(1) }
	})
	if err != nil {
		t.Fatal(err)
	}
	for i := range done {
		if got := done[i].Load(); got != 1 {
			t.Fatalf("job %d ran %d times", i, got)
		}
	}
}

// TestFanCtxStopsDispatchOnCancel cancels mid-flight and requires the
// fan-out to stop dispatching, report the context error, and leave the
// tail of the index space untouched.
func TestFanCtxStopsDispatchOnCancel(t *testing.T) {
	const n = 1000
	ctx, cancel := context.WithCancel(context.Background())
	var ran atomic.Int32
	release := make(chan struct{})
	err := FanCtx(ctx, n, 2, func() func(int) {
		return func(i int) {
			if ran.Add(1) == 2 {
				cancel()
				close(release)
			}
			<-release
		}
	})
	if err != context.Canceled {
		t.Fatalf("FanCtx returned %v, want context.Canceled", err)
	}
	// Two in-flight jobs plus at most the ones already queued before the
	// cancellation won; nowhere near all thousand.
	if got := ran.Load(); got >= n/2 {
		t.Fatalf("%d jobs ran after cancellation, expected dispatch to stop early", got)
	}
}

// TestFanCtxObserved pins the timing hook: every job reports exactly
// once with its own index and a duration no shorter than the work, and
// the nil-observe path still runs everything.
func TestFanCtxObserved(t *testing.T) {
	const n = 20
	var observed [n]atomic.Int32
	var durOK [n]atomic.Int32
	err := FanCtxObserved(context.Background(), n, 4, func() func(int) {
		return func(i int) { time.Sleep(time.Millisecond) }
	}, func(i int, start time.Time, d time.Duration) {
		observed[i].Add(1)
		if d >= time.Millisecond && !start.IsZero() {
			durOK[i].Add(1)
		}
	})
	if err != nil {
		t.Fatal(err)
	}
	for i := range observed {
		if observed[i].Load() != 1 {
			t.Fatalf("job %d observed %d times, want 1", i, observed[i].Load())
		}
		if durOK[i].Load() != 1 {
			t.Fatalf("job %d reported an implausible start/duration", i)
		}
	}
}

// TestFanCtxExpiredDeadline pins the already-dead case: a context that
// expired before the call dispatches nothing (workers start and drain an
// instantly closed queue).
func TestFanCtxExpiredDeadline(t *testing.T) {
	ctx, cancel := context.WithDeadline(context.Background(), time.Now().Add(-time.Second))
	defer cancel()
	var ran atomic.Int32
	err := FanCtx(ctx, 50, 4, func() func(int) {
		return func(int) { ran.Add(1) }
	})
	if err != context.DeadlineExceeded {
		t.Fatalf("FanCtx returned %v, want context.DeadlineExceeded", err)
	}
	if got := ran.Load(); got != 0 {
		t.Fatalf("%d jobs ran under an expired deadline", got)
	}
}

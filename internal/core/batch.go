package core

import (
	"context"
	"runtime"
	"sync"
	"time"

	"github.com/pinumdb/pinum/internal/catalog"
	"github.com/pinumdb/pinum/internal/inum"
	"github.com/pinumdb/pinum/internal/optimizer"
	"github.com/pinumdb/pinum/internal/whatif"
)

// BuildFunc constructs one plan cache for an analysed query using the given
// what-if session (core.Build, core.BuildPrecise, and inum.Build all fit).
type BuildFunc func(*optimizer.Analysis, *whatif.Session) (*inum.Cache, error)

// Fan runs job(i) for every i in [0, n) across a bounded worker pool.
// Each worker calls newWorker once and applies the returned closure to the
// indexes it pulls, so worker-local state (a what-if session, a scratch
// buffer) is built exactly once per worker. Jobs write their results into
// caller-owned slices at their own index, which keeps output deterministic
// regardless of scheduling. workers <= 0 means GOMAXPROCS; workers == 1
// degenerates to one worker goroutine processing jobs in input order.
func Fan(n, workers int, newWorker func() func(i int)) {
	FanCtx(context.Background(), n, workers, newWorker)
}

// FanCtx is Fan with cancellation: once ctx is done no further jobs are
// dispatched, in-flight jobs finish, and ctx.Err() is returned (nil when
// every job was dispatched first). A serving layer threads each request's
// context through here so a disconnected client or an expired deadline
// stops burning workers on per-query evaluations nobody will read.
// Callers must treat their result slices as incomplete whenever the
// returned error is non-nil: indexes past the cancellation point were
// never evaluated.
func FanCtx(ctx context.Context, n, workers int, newWorker func() func(i int)) error {
	return FanCtxObserved(ctx, n, workers, newWorker, nil)
}

// FanCtxObserved is FanCtx with per-job timing: when observe is non-nil,
// every completed job reports (index, start, duration) from its worker
// goroutine — the hook the serving layer uses to attach per-query spans
// to a request trace. observe must be safe for concurrent calls; a nil
// observe takes the exact FanCtx dispatch path with no timestamp reads,
// so untraced requests pay nothing.
func FanCtxObserved(ctx context.Context, n, workers int, newWorker func() func(i int), observe func(i int, start time.Time, d time.Duration)) error {
	if n == 0 {
		return ctx.Err()
	}
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > n {
		workers = n
	}
	jobs := make(chan int)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			job := newWorker()
			if observe == nil {
				for i := range jobs {
					job(i)
				}
				return
			}
			for i := range jobs {
				start := time.Now()
				job(i)
				observe(i, start, time.Since(start))
			}
		}()
	}
	var err error
dispatch:
	for i := 0; i < n; i++ {
		// Check cancellation first: a plain two-case select picks
		// uniformly among ready cases, which would keep dispatching
		// roughly half the remaining jobs after the context died.
		select {
		case <-ctx.Done():
			err = ctx.Err()
			break dispatch
		default:
		}
		select {
		case jobs <- i:
		case <-ctx.Done():
			err = ctx.Err()
			break dispatch
		}
	}
	close(jobs)
	wg.Wait()
	return err
}

// BuildAllWith fills one plan cache per analysis across a bounded worker
// pool, using fn as the constructor. Each worker owns a private what-if
// session (sessions are not safe for concurrent use), and results are
// merged back in input order, so the returned slice is deterministic
// regardless of scheduling: caches[i] is the cache for analyses[i].
//
// workers <= 0 means GOMAXPROCS; workers == 1 degenerates to the serial
// construction. The first error, in input order, aborts the batch.
func BuildAllWith(analyses []*optimizer.Analysis, cat *catalog.Catalog, workers int, fn BuildFunc) ([]*inum.Cache, error) {
	caches := make([]*inum.Cache, len(analyses))
	errs := make([]error, len(analyses))
	Fan(len(analyses), workers, func() func(int) {
		ws := whatif.NewSession(cat)
		return func(i int) {
			caches[i], errs[i] = fn(analyses[i], ws)
		}
	})
	for _, err := range errs {
		if err != nil {
			return nil, err
		}
	}
	return caches, nil
}

// BuildAll fills one PINUM plan cache per analysis across a bounded worker
// pool (see BuildAllWith for the pool semantics).
func BuildAll(analyses []*optimizer.Analysis, cat *catalog.Catalog, workers int, precise bool) ([]*inum.Cache, error) {
	fn := Build
	if precise {
		fn = BuildPrecise
	}
	return BuildAllWith(analyses, cat, workers, fn)
}

// BuildAllSlim fills one slim PINUM plan cache per analysis across a
// bounded worker pool — the batch construction the snapshot store and the
// serving layer start from.
func BuildAllSlim(analyses []*optimizer.Analysis, cat *catalog.Catalog, workers int) ([]*inum.Cache, error) {
	return BuildAllWith(analyses, cat, workers, BuildSlim)
}

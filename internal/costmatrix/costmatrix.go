// Package costmatrix implements the incremental workload-cost engine the
// advisor's greedy search runs on: a shared cost matrix over (query, plan,
// relation) that turns each candidate evaluation from a full re-pricing of
// the workload into a delta computation.
//
// The INUM/CoPhy-style decomposition the engine exploits is that a cached
// plan's cost is Internal + Σ coef × accessCost(leaf, C), and accessCost is
// a min over the configuration's indexes per relation. Adding one candidate
// index to an already-priced configuration therefore only changes leaves on
// the candidate's table, and the new per-leaf cost is
// min(currentBest[rel], leafCost(candidate)) — no other index in the
// configuration needs to be looked at again. A workload-level inverted
// index (table → queries) skips entirely the queries that never reference
// the candidate's table.
//
// The engine consumes only each cached plan's slim decomposition —
// Internal, Leaves, and the BaseLeafCosts snapshot — never the plan's
// path tree, so it runs unchanged over slim and snapshot-loaded caches
// (internal/plancache) as well as tree-backed ones; the serving layer's
// /recommend endpoint relies on exactly that.
//
// The engine's results are bit-identical to pricing each configuration from
// scratch through inum.Cache.Cost: per-leaf minimisation visits indexes in
// the same order (applied set in pick order, candidate last) with the same
// strict < rule, per-plan summation accumulates coef × leaf in relation
// order starting from the internal cost, plan choice scans plans in cache
// order with strict improvement, and workload totals sum weight × query
// cost in registration order. Floating-point min and identical accumulation
// orders make every intermediate equal down to the last bit.
package costmatrix

import (
	"fmt"
	"math"
	"sync/atomic"

	"github.com/pinumdb/pinum/internal/catalog"
	"github.com/pinumdb/pinum/internal/inum"
)

// Query is one workload entry: a built plan cache and its frequency weight
// (weights <= 0 count as 1, matching the advisor's normalisation).
type Query struct {
	Cache  *inum.Cache
	Weight float64
}

// Stats counts the pricing work an engine performed. The interesting ratio
// is QuerySkips : QueryEvals — how much of the workload the table→queries
// index pruned away without touching a single plan.
type Stats struct {
	// CandidateEvals is the number of EvaluateCandidate calls
	// (candidates × rounds in a greedy search).
	CandidateEvals int64
	// QueryEvals is the number of per-query delta evaluations performed —
	// the query referenced the candidate's table, so its plans were
	// re-summed.
	QueryEvals int64
	// QuerySkips is the number of per-query evaluations skipped because
	// the table index proved the candidate cannot affect the query.
	QuerySkips int64
	// PlanEvals is the number of per-plan cost recomputations inside the
	// performed query evaluations.
	PlanEvals int64
	// Applies is the number of committed picks.
	Applies int64
}

// planState is the live state of one cached plan under the applied set.
type planState struct {
	cp *inum.CachedPlan
	// leafBest[rel] is the best access cost for relation rel over the
	// applied indexes (+Inf while no applied index satisfies an ordered or
	// lookup requirement). It is maintained with exactly the minimisation
	// LeafAccessCost runs, one applied index at a time, in pick order.
	leafBest []float64
}

// queryState is the live state of one workload query.
type queryState struct {
	cache  *inum.Cache
	weight float64
	// relsOnTable maps a table name to the query's relation slots on that
	// table, ascending — several slots for self-joins.
	relsOnTable map[string][]int
	plans       []planState
	// best is the winning plan cost under the applied set (what
	// Cache.Cost would return for the equivalent configuration).
	best float64
}

// Engine prices a workload incrementally under a growing index set.
// EvaluateCandidate is safe for concurrent use (a greedy round fans
// candidates over a worker pool); New and Apply are not, and must not run
// concurrently with evaluations.
type Engine struct {
	queries []*queryState
	// byTable maps a table name to the queries referencing it, ascending.
	byTable map[string][]int
	chosen  []*catalog.Index
	// total is the weighted workload cost under the applied set, summed in
	// registration order.
	total float64

	candidateEvals atomic.Int64
	queryEvals     atomic.Int64
	querySkips     atomic.Int64
	planEvals      atomic.Int64
	applies        atomic.Int64
}

// New builds an engine over the workload, priced under the empty
// configuration. It fails if any query has no applicable cached plan (an
// empty cache), mirroring Cache.Cost's error.
func New(queries []Query) (*Engine, error) {
	e := &Engine{byTable: make(map[string][]int)}
	for qi, in := range queries {
		c := in.Cache
		if c == nil {
			return nil, fmt.Errorf("costmatrix: query %d has no plan cache", qi)
		}
		w := in.Weight
		if w <= 0 {
			w = 1
		}
		qs := &queryState{cache: c, weight: w, relsOnTable: make(map[string][]int)}
		for rel, r := range c.Q.Rels {
			t := r.Table.Name
			qs.relsOnTable[t] = append(qs.relsOnTable[t], rel)
		}
		// Queries are processed in registration order, so each per-table
		// list stays ascending without sorting.
		//pinum:nondeterministic-ok per-table lists are disjoint: iteration order only interleaves appends to different e.byTable keys, never reorders within one
		for t := range qs.relsOnTable {
			e.byTable[t] = append(e.byTable[t], qi)
		}
		qs.plans = make([]planState, len(c.Plans))
		for i, cp := range c.Plans {
			qs.plans[i] = planState{cp: cp, leafBest: c.BaseLeafCosts(cp)}
		}
		qs.best = qs.costWith(nil)
		if math.IsInf(qs.best, 1) {
			return nil, fmt.Errorf("costmatrix: no applicable cached plan for query %s under the empty configuration", c.Q.Name)
		}
		e.queries = append(e.queries, qs)
	}
	e.recomputeTotal()
	return e, nil
}

// costWith returns the query's best cached-plan cost under the applied set
// plus an optional extra candidate (nil = applied set only). The
// arithmetic replicates Cache.Cost exactly: per leaf, the candidate folds
// into the stored minimum with the same strict < an index appended last to
// the configuration would see; the plan total accumulates coef × leaf in
// relation order from the internal cost; the plan choice scans plans in
// cache order with strict improvement.
//
//pinum:hotpath
func (qs *queryState) costWith(extra *catalog.Index) float64 {
	var rels []int
	if extra != nil {
		rels = qs.relsOnTable[extra.Table]
	}
	best := math.Inf(1)
	for pi := range qs.plans {
		ps := &qs.plans[pi]
		cost := ps.cp.Internal
		ok := true
		ri := 0
		for rel := range ps.leafBest {
			req := ps.cp.Leaf(rel)
			l := ps.leafBest[rel]
			if ri < len(rels) && rels[ri] == rel {
				ri++
				if c, o := qs.cache.IndexLeafCost(rel, req, extra); o && c < l {
					l = c
				}
			}
			if math.IsInf(l, 1) {
				ok = false
				break
			}
			//pinum:costarith-ok bit-identical mirror of inum.Cache.Cost's fold, pinned by TestBaselineMatchesCacheCost and TestEvaluateAndApplyMatchCacheCost
			cost += req.Coef * l
		}
		if ok && cost < best {
			best = cost
		}
	}
	return best
}

// recomputeTotal refreshes the workload total as the same in-order weighted
// sum EvaluateCandidate produces, so committed and evaluated totals agree
// bit-for-bit.
func (e *Engine) recomputeTotal() {
	total := 0.0
	for _, qs := range e.queries {
		//pinum:costarith-ok same in-order weighted sum as EvaluateCandidate and advisor.workloadCost; pinned by advisor.TestRunMatchesReferenceStarWorkload
		total += qs.weight * qs.best
	}
	e.total = total
}

// TotalCost returns the weighted workload cost under the applied set.
func (e *Engine) TotalCost() float64 { return e.total }

// QueryCosts returns the current per-query costs under the applied set, in
// registration order (unweighted, as Cache.Cost reports them).
func (e *Engine) QueryCosts() []float64 {
	out := make([]float64, len(e.queries))
	for i, qs := range e.queries {
		out[i] = qs.best
	}
	return out
}

// Chosen returns the applied indexes in pick order.
func (e *Engine) Chosen() []*catalog.Index {
	return append([]*catalog.Index(nil), e.chosen...)
}

// EvaluateCandidate prices the workload under the applied set plus ix,
// without committing anything. Only queries referencing ix's table are
// re-priced — every other query contributes its stored cost — but the
// final weighted sum still visits queries in registration order, so the
// result is bit-identical to re-pricing the whole workload from scratch
// under the equivalent configuration. Safe for concurrent use.
//
//pinum:hotpath
func (e *Engine) EvaluateCandidate(ix *catalog.Index) float64 {
	affected := e.byTable[ix.Table]
	total := 0.0
	j := 0
	// Counters accumulate locally and flush once per call: parallel rounds
	// run many evaluations at once, and per-query atomic adds on shared
	// cache lines would make even the skip path contended.
	var evals, skips, plans int64
	for qi, qs := range e.queries {
		c := qs.best
		if j < len(affected) && affected[j] == qi {
			j++
			c = qs.costWith(ix)
			evals++
			plans += int64(len(qs.plans))
		} else {
			skips++
		}
		//pinum:costarith-ok the workload objective Σ wᵢ·cᵢ, mirroring advisor.workloadCost in query order; pinned by advisor.TestRunMatchesReferenceStarWorkload
		total += qs.weight * c
	}
	e.candidateEvals.Add(1)
	e.queryEvals.Add(evals)
	e.querySkips.Add(skips)
	e.planEvals.Add(plans)
	return total
}

// Apply commits a pick: per affected query, each plan's leafBest entries on
// the pick's table fold the pick in (the same min EvaluateCandidate
// computed), the query's winning cost is refreshed, and the workload total
// is re-summed. Unaffected queries are untouched. Not safe to run
// concurrently with evaluations.
func (e *Engine) Apply(pick *catalog.Index) {
	e.applies.Add(1)
	for _, qi := range e.byTable[pick.Table] {
		qs := e.queries[qi]
		rels := qs.relsOnTable[pick.Table]
		for pi := range qs.plans {
			ps := &qs.plans[pi]
			for _, rel := range rels {
				req := ps.cp.Leaf(rel)
				if c, ok := qs.cache.IndexLeafCost(rel, req, pick); ok && c < ps.leafBest[rel] {
					ps.leafBest[rel] = c
				}
			}
		}
		qs.best = qs.costWith(nil)
	}
	e.recomputeTotal()
	e.chosen = append(e.chosen, pick)
}

// Stats snapshots the work counters.
func (e *Engine) Stats() Stats {
	return Stats{
		CandidateEvals: e.candidateEvals.Load(),
		QueryEvals:     e.queryEvals.Load(),
		QuerySkips:     e.querySkips.Load(),
		PlanEvals:      e.planEvals.Load(),
		Applies:        e.applies.Load(),
	}
}

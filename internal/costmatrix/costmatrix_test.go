package costmatrix

import (
	"math"
	"strings"
	"sync"
	"testing"

	"github.com/pinumdb/pinum/internal/catalog"
	"github.com/pinumdb/pinum/internal/core"
	"github.com/pinumdb/pinum/internal/inum"
	"github.com/pinumdb/pinum/internal/optimizer"
	"github.com/pinumdb/pinum/internal/query"
	"github.com/pinumdb/pinum/internal/storage"
	"github.com/pinumdb/pinum/internal/whatif"
	"github.com/pinumdb/pinum/internal/workload"
)

// setup builds caches for the first n star-workload queries and returns the
// schema, the caches, and the weights used throughout these tests.
func setup(t testing.TB, n int) (*workload.Star, []*inum.Cache, []float64) {
	t.Helper()
	s, err := workload.StarSchema(1.0)
	if err != nil {
		t.Fatal(err)
	}
	qs, err := s.Queries(42)
	if err != nil {
		t.Fatal(err)
	}
	qs = qs[:n]
	caches := make([]*inum.Cache, n)
	weights := make([]float64, n)
	for i, q := range qs {
		a, err := optimizer.NewAnalysis(q, s.Stats, optimizer.DefaultCostParams())
		if err != nil {
			t.Fatal(err)
		}
		caches[i], err = core.Build(a, whatif.NewSession(s.Catalog))
		if err != nil {
			t.Fatal(err)
		}
		weights[i] = float64(1 + i%3)
	}
	return s, caches, weights
}

func newEngine(t testing.TB, caches []*inum.Cache, weights []float64) *Engine {
	t.Helper()
	specs := make([]Query, len(caches))
	for i, c := range caches {
		specs[i] = Query{Cache: c, Weight: weights[i]}
	}
	e, err := New(specs)
	if err != nil {
		t.Fatal(err)
	}
	return e
}

// candidatePool builds single-column hypothetical indexes on every
// attribute column of every table — including tables no query references.
func candidatePool(t testing.TB, s *workload.Star) []*catalog.Index {
	t.Helper()
	var pool []*catalog.Index
	for _, tb := range s.Catalog.Tables() {
		for _, col := range tb.Columns {
			if strings.HasPrefix(col.Name, "fk_") {
				continue
			}
			pool = append(pool, storage.HypotheticalIndex(
				"cand_"+tb.Name+"_"+col.Name, tb, []string{col.Name}))
		}
	}
	return pool
}

// naiveWorkloadCost is the from-scratch reference: weight × Cache.Cost per
// query, summed in registration order — exactly what the engine must match
// bit for bit.
func naiveWorkloadCost(t testing.TB, caches []*inum.Cache, weights []float64, cfg []*catalog.Index) float64 {
	t.Helper()
	total := 0.0
	for i, c := range caches {
		cost, _, err := c.Cost(&query.Config{Indexes: cfg})
		if err != nil {
			t.Fatal(err)
		}
		total += weights[i] * cost
	}
	return total
}

// TestBaselineMatchesCacheCost checks the freshly built engine prices the
// empty configuration exactly as Cache.Cost does.
func TestBaselineMatchesCacheCost(t *testing.T) {
	_, caches, weights := setup(t, 4)
	e := newEngine(t, caches, weights)
	per := e.QueryCosts()
	for i, c := range caches {
		want, _, err := c.Cost(&query.Config{})
		if err != nil {
			t.Fatal(err)
		}
		if math.Float64bits(per[i]) != math.Float64bits(want) {
			t.Errorf("query %d: engine baseline %v != Cache.Cost %v", i, per[i], want)
		}
	}
	want := naiveWorkloadCost(t, caches, weights, nil)
	if math.Float64bits(e.TotalCost()) != math.Float64bits(want) {
		t.Errorf("baseline total %v != naive %v", e.TotalCost(), want)
	}
}

// TestEvaluateAndApplyMatchCacheCost walks a pick sequence: at every step,
// every pool candidate's evaluation must be bit-identical to re-pricing
// applied+candidate from scratch, and after each Apply the stored state
// must be bit-identical to re-pricing the applied set.
func TestEvaluateAndApplyMatchCacheCost(t *testing.T) {
	s, caches, weights := setup(t, 4)
	e := newEngine(t, caches, weights)
	pool := candidatePool(t, s)
	if len(pool) < 100 {
		t.Fatalf("pool has only %d candidates, want >= 100", len(pool))
	}
	// Picks span fact (touches every query), a dimension, and a table no
	// query references (must be a perfect no-op).
	var picks []*catalog.Index
	for _, name := range []string{"cand_fact_a1", "cand_dim1_1_a1", "cand_dim3_8_a2", "cand_fact_m1"} {
		for _, ix := range pool {
			if ix.Name == name {
				picks = append(picks, ix)
			}
		}
	}
	if len(picks) != 4 {
		t.Fatalf("found %d of the 4 named picks", len(picks))
	}

	var applied []*catalog.Index
	for step, pick := range picks {
		// Sample the pool rather than evaluating all |pool| × |caches|
		// from-scratch references every step (the naive side is slow).
		for i := 0; i < len(pool); i += 7 {
			cand := pool[i]
			got := e.EvaluateCandidate(cand)
			want := naiveWorkloadCost(t, caches, weights, append(applied[:len(applied):len(applied)], cand))
			if math.Float64bits(got) != math.Float64bits(want) {
				t.Fatalf("step %d, candidate %s: engine %v != naive %v", step, cand.Name, got, want)
			}
		}
		e.Apply(pick)
		applied = append(applied, pick)
		want := naiveWorkloadCost(t, caches, weights, applied)
		if math.Float64bits(e.TotalCost()) != math.Float64bits(want) {
			t.Fatalf("step %d: applied total %v != naive %v", step, e.TotalCost(), want)
		}
		per := e.QueryCosts()
		for i, c := range caches {
			w, _, err := c.Cost(&query.Config{Indexes: applied})
			if err != nil {
				t.Fatal(err)
			}
			if math.Float64bits(per[i]) != math.Float64bits(w) {
				t.Errorf("step %d, query %d: stored %v != Cache.Cost %v", step, i, per[i], w)
			}
		}
	}
	if got := e.Chosen(); len(got) != len(picks) {
		t.Errorf("Chosen() returned %d picks, want %d", len(got), len(picks))
	}
}

// TestSelfJoinMatchesCacheCost exercises the engine on a query joining a
// table to itself: both relation slots live on one table, so a candidate
// on that table must fold into both leaves.
func TestSelfJoinMatchesCacheCost(t *testing.T) {
	s, err := workload.StarSchema(1.0)
	if err != nil {
		t.Fatal(err)
	}
	d := s.Catalog.Table("dim1_1")
	q := &query.Query{
		Name: "selfjoin",
		Rels: []query.Rel{{Table: d, Alias: "e"}, {Table: d, Alias: "m"}},
		Joins: []query.Join{{
			Left:  query.ColRef{Rel: 0, Column: "a1"},
			Right: query.ColRef{Rel: 1, Column: "id"},
		}},
		Select:  []query.ColRef{{Rel: 0, Column: "id"}, {Rel: 1, Column: "a2"}},
		OrderBy: []query.ColRef{{Rel: 0, Column: "a2"}},
	}
	a, err := optimizer.NewAnalysis(q, s.Stats, optimizer.DefaultCostParams())
	if err != nil {
		t.Fatal(err)
	}
	cache, err := core.Build(a, whatif.NewSession(s.Catalog))
	if err != nil {
		t.Fatal(err)
	}
	caches := []*inum.Cache{cache}
	weights := []float64{1}
	e := newEngine(t, caches, weights)

	ws := whatif.NewSession(s.Catalog)
	mk := func(cols ...string) *catalog.Index {
		ix, err := ws.CreateIndex("dim1_1", cols...)
		if err != nil {
			t.Fatal(err)
		}
		return ix
	}
	cands := []*catalog.Index{mk("a1", "id"), mk("id", "a2"), mk("a2"), mk("a1")}
	var applied []*catalog.Index
	for _, pick := range cands {
		for _, cand := range cands {
			got := e.EvaluateCandidate(cand)
			want := naiveWorkloadCost(t, caches, weights, append(applied[:len(applied):len(applied)], cand))
			if math.Float64bits(got) != math.Float64bits(want) {
				t.Fatalf("candidate %s over %d applied: engine %v != naive %v",
					cand.Key(), len(applied), got, want)
			}
		}
		e.Apply(pick)
		applied = append(applied, pick)
	}
	want := naiveWorkloadCost(t, caches, weights, applied)
	if math.Float64bits(e.TotalCost()) != math.Float64bits(want) {
		t.Errorf("final total %v != naive %v", e.TotalCost(), want)
	}
}

// TestStatsCounting checks the work counters: every EvaluateCandidate
// visits each query exactly once (as a delta or as a skip), applies are
// counted, and a candidate on an unreferenced table is skipped everywhere.
func TestStatsCounting(t *testing.T) {
	s, caches, weights := setup(t, 3)
	e := newEngine(t, caches, weights)
	if st := e.Stats(); st != (Stats{}) {
		t.Fatalf("fresh engine has non-zero stats: %+v", st)
	}
	fact := s.Catalog.Table("fact")
	unref := s.Catalog.Table("dim3_8") // no 42-seed query reaches level 3
	onFact := storage.HypotheticalIndex("st_fact", fact, []string{"a1"})
	onUnref := storage.HypotheticalIndex("st_unref", unref, []string{"a1"})

	e.EvaluateCandidate(onFact)
	st := e.Stats()
	if st.CandidateEvals != 1 || st.QueryEvals != int64(len(caches)) || st.QuerySkips != 0 {
		t.Errorf("fact candidate: %+v, want every query evaluated", st)
	}
	if st.PlanEvals == 0 {
		t.Error("fact candidate evaluated zero plans")
	}

	before := e.TotalCost()
	if got := e.EvaluateCandidate(onUnref); math.Float64bits(got) != math.Float64bits(before) {
		t.Errorf("unreferenced-table candidate changed the total: %v != %v", got, before)
	}
	st = e.Stats()
	if st.CandidateEvals != 2 || st.QuerySkips != int64(len(caches)) {
		t.Errorf("unreferenced candidate: %+v, want every query skipped", st)
	}
	if st.QueryEvals+st.QuerySkips != st.CandidateEvals*int64(len(caches)) {
		t.Errorf("evals %d + skips %d != candidates %d × queries %d",
			st.QueryEvals, st.QuerySkips, st.CandidateEvals, len(caches))
	}

	e.Apply(onUnref) // harmless no-op commit
	if math.Float64bits(e.TotalCost()) != math.Float64bits(before) {
		t.Error("applying an unreferenced-table index changed the total")
	}
	if st = e.Stats(); st.Applies != 1 {
		t.Errorf("applies %d, want 1", st.Applies)
	}
}

// TestConcurrentEvaluateMatchesSerial fans candidate evaluations over many
// goroutines and checks bit-identical results against a serial pass; under
// -race this also proves EvaluateCandidate is safe for concurrent use.
func TestConcurrentEvaluateMatchesSerial(t *testing.T) {
	s, caches, weights := setup(t, 4)
	e := newEngine(t, caches, weights)
	pool := candidatePool(t, s)
	e.Apply(pool[0])

	serial := make([]float64, len(pool))
	for i, cand := range pool {
		serial[i] = e.EvaluateCandidate(cand)
	}
	parallel := make([]float64, len(pool))
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := w; i < len(pool); i += 8 {
				parallel[i] = e.EvaluateCandidate(pool[i])
			}
		}(w)
	}
	wg.Wait()
	for i := range pool {
		if math.Float64bits(serial[i]) != math.Float64bits(parallel[i]) {
			t.Errorf("candidate %s: serial %v != parallel %v", pool[i].Name, serial[i], parallel[i])
		}
	}
}

// TestNewRejectsNilCache checks the constructor validates its input.
func TestNewRejectsNilCache(t *testing.T) {
	if _, err := New([]Query{{Cache: nil}}); err == nil {
		t.Error("nil cache accepted")
	}
}
